(* Device passthrough under protection: delegate a NIC's MMIO window to
   an enclave, drive TX/RX from its Kitten driver, and watch a buggy
   neighbour's attempt on the same hardware get contained.

   Run with: dune exec examples/device_passthrough.exe *)

open Covirt_hw
open Covirt_pisces
open Covirt_kitten

let gib = Covirt_sim.Units.gib

let () =
  let machine =
    Machine.create ~zones:2 ~cores_per_zone:3 ~mem_per_zone:(8 * gib) ()
  in
  (* the platform has a NIC; its 64 KiB BAR sits above DRAM *)
  let nic = Nic.create machine ~name:"nic0" in
  Format.printf "nic0 BAR: %a@." Region.pp (Nic.window nic);

  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let covirt =
    Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes)
      ~config:Covirt.Config.mem_ipi
  in
  let pisces = Covirt_hobbes.Hobbes.pisces hobbes in
  let launch name cores zone =
    match
      Covirt_hobbes.Hobbes.launch_enclave hobbes ~name ~cores
        ~mem:[ (zone, 1 * gib) ] ()
    with
    | Ok pair -> pair
    | Error e -> failwith e
  in
  let net_enclave, net_kitten = launch "netstack" [ 1 ] 0 in
  let other_enclave, other_kitten = launch "compute" [ 4 ] 1 in

  (* delegate the NIC to the network enclave; Covirt maps the BAR into
     its EPT before the kernel hears about it *)
  (match Pisces.assign_device pisces net_enclave ~device:"nic0" with
  | Ok window -> Format.printf "delegated nic0 %a to netstack@." Region.pp window
  | Error e -> failwith e);

  (* the driver: an RX interrupt handler and an MSI binding *)
  let vector = 0x61 in
  let rx = ref 0 in
  Kitten.register_irq net_kitten ~vector (fun _ _ -> incr rx);
  Nic.bind_msi nic ~core:1 ~vector;

  (* traffic: ring the doorbell for a burst of frames, take some RX *)
  let ctx = Kitten.context net_kitten ~core:1 in
  for _ = 1 to 8 do
    Nic.ring_tx machine ctx.Kitten.cpu nic
  done;
  for _ = 1 to 3 do
    match Nic.inject_rx machine nic with
    | Ok () -> ()
    | Error e -> failwith e
  done;
  Format.printf "driver: %d frames out, %d interrupts in (handled %d)@."
    (Nic.tx_count nic) (Nic.rx_count nic) !rx;

  (* the neighbour's "driver" pokes hardware it was never given *)
  let octx = Kitten.context other_kitten ~core:4 in
  (match
     Pisces.run_guarded pisces (fun () ->
         Kitten.poke_foreign_mmio octx (Nic.window nic).Region.base)
   with
  | Error crash ->
      Format.printf "intruder contained: %a@." Pisces.pp_crash crash
  | Ok () -> Format.printf "BUG: foreign MMIO went through@.");
  Format.printf "netstack unaffected: %b; node alive: %b@."
    (Enclave.is_running net_enclave)
    (Machine.panicked machine = None);
  ignore other_enclave;
  ignore covirt
