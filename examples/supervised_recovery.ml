(* Supervised-recovery tour: the supervision subsystem end to end.

   A supervisor watches two enclaves.  One keeps crashing and is
   restarted with exponential backoff until the circuit breaker
   quarantines it; the other wedges silently (livelocks with no trap
   and no messages) and only the watchdog's progress tracking gets it
   back.  A third enclave just works, and recovery around it never
   touches it.

   Run with: dune exec examples/supervised_recovery.exe *)

open Covirt_hw
open Covirt_pisces
open Covirt_kitten
open Covirt_resilience

let gib = Covirt_sim.Units.gib
let mib = Covirt_sim.Units.mib

let () =
  let machine =
    Machine.create ~zones:2 ~cores_per_zone:3 ~mem_per_zone:(4 * gib) ()
  in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let pisces = Covirt_hobbes.Hobbes.pisces hobbes in
  let ctrl = Covirt.enable pisces ~config:Covirt.Config.full in

  (* A tight policy so the tour stays short: three restarts, fast
     backoff, a 2M-cycle watchdog deadline. *)
  let policy =
    {
      Supervisor.max_restarts = 3;
      backoff_base = 100_000;
      backoff_factor = 2;
      backoff_cap = 1_000_000;
      stability_window = 50_000_000;
      watchdog_deadline = 2_000_000;
    }
  in
  let sup = Supervisor.create ~policy ~seed:42 ctrl in
  let dog = Watchdog.create sup in
  let manage name core zone =
    match
      Supervisor.manage sup ~name ~launch:(fun () ->
          Covirt_hobbes.Hobbes.launch_enclave hobbes ~name ~cores:[ core ]
            ~mem:[ (zone, 256 * mib) ]
            ())
    with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  manage "flaky" 1 0;
  manage "sleepy" 3 1;
  manage "steady" 4 1;

  (* 1. A crash is recovered: the hypervisor contains the forbidden
     MSR write, the supervisor tears down, backs off and relaunches. *)
  Format.printf "== 1. crash and recovery ==@.";
  (match
     Supervisor.run_protected sup ~name:"flaky" (fun ctx ->
         Kitten.wrmsr_sensitive ctx)
   with
  | `Recovered ->
      Format.printf "flaky recovered; incarnation %d, %d/%d restarts used@."
        (Supervisor.incarnation sup ~name:"flaky")
        (Supervisor.attempts sup ~name:"flaky")
        policy.Supervisor.max_restarts
  | `Ok -> Format.printf "flaky survived?!@."
  | `Quarantined why -> Format.printf "flaky quarantined: %s@." why);

  (* 2. A wedge is invisible to containment — nothing errant happens —
     so run_protected returns Ok.  Host time passes, the enclave shows
     no VM exits and no channel traffic, and the watchdog escalates. *)
  Format.printf "@.== 2. wedge and watchdog ==@.";
  (match
     Supervisor.run_protected sup ~name:"sleepy" (fun ctx ->
         Kitten.spin_wedged ctx ~cycles:10_000_000)
   with
  | `Ok -> Format.printf "containment saw nothing wrong with sleepy@."
  | `Recovered | `Quarantined _ -> assert false);
  let host = Pisces.host_cpu pisces in
  let rec wait_for_watchdog polls =
    if polls > 10 then Format.printf "watchdog never fired?!@."
    else begin
      Cpu.charge host 500_000;
      (* keep the healthy tenants visibly alive *)
      List.iter
        (fun name ->
          ignore
            (Supervisor.run_protected sup ~name (fun ctx ->
                 Kitten.heartbeat ctx)))
        [ "flaky"; "steady" ];
      match Watchdog.poll dog with
      | [] -> wait_for_watchdog (polls + 1)
      | wedged ->
          List.iter
            (fun name ->
              Format.printf
                "watchdog escalated %s after %d polls; incarnation now %d@."
                name polls
                (Supervisor.incarnation sup ~name))
            wedged
    end
  in
  wait_for_watchdog 1;

  (* 3. The circuit breaker: a fault that comes back on every
     incarnation exhausts the restart budget and the enclave is
     quarantined, with the reason on the ledger. *)
  Format.printf "@.== 3. circuit breaker ==@.";
  let rec crash_until_quarantined n =
    match
      Supervisor.run_protected sup ~name:"flaky" (fun ctx ->
          Kitten.trigger_double_fault ctx)
    with
    | `Recovered -> crash_until_quarantined (n + 1)
    | `Quarantined _ ->
        Format.printf "flaky quarantined after %d consecutive crashes@." n
    | `Ok -> Format.printf "flaky survived?!@."
  in
  crash_until_quarantined 1;
  List.iter
    (fun (name, why) -> Format.printf "ledger: %s -> %s@." name why)
    (Supervisor.quarantine_ledger sup);

  (* 4. The bystander: recovery storms around it never touched it. *)
  Format.printf "@.== 4. untouched bystander ==@.";
  (match
     Supervisor.run_protected sup ~name:"steady" (fun ctx ->
         match Covirt_workloads.Stream.run [ ctx ] ~elems:200_000 ~iters:2 () with
         | Ok r ->
             Format.printf "steady ran STREAM: triad %.0f MB/s@."
               r.Covirt_workloads.Stream.triad_mb_s
         | Error e -> failwith e)
   with
  | `Ok ->
      Format.printf "steady: incarnation %d, status healthy@."
        (Supervisor.incarnation sup ~name:"steady")
  | `Recovered | `Quarantined _ -> Format.printf "steady was disturbed?!@.");

  Format.printf "@.== recovery timeline ==@.";
  List.iter
    (fun e -> Format.printf "%a@." Supervisor.pp_event e)
    (Supervisor.timeline sup)
