(* Application composition across enclaves — the Hobbes use case that
   motivates Covirt's design constraints: a simulation component in one
   LWK enclave streams data through an XEMEM-backed IPC channel to an
   analytics component in another, while forwarding I/O system calls to
   the host OS/R.  All of it runs under full protection, and none of it
   pays a hypervisor toll on the data path.

   Run with: dune exec examples/composition.exe *)

open Covirt_kitten

let gib = Covirt_sim.Units.gib

let () =
  let machine =
    Covirt_hw.Machine.create ~zones:2 ~cores_per_zone:3 ~mem_per_zone:(8 * gib)
      ()
  in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let covirt =
    Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes)
      ~config:Covirt.Config.full
  in
  let launch name cores zone =
    match
      Covirt_hobbes.Hobbes.launch_enclave hobbes ~name ~cores
        ~mem:[ (zone, 2 * gib) ] ()
    with
    | Ok pair -> pair
    | Error e -> failwith e
  in
  let sim_enclave, _ = launch "simulation" [ 1; 2 ] 0 in
  let ana_enclave, _ = launch "analytics" [ 3; 4 ] 1 in

  let steps = 20 in
  let app =
    {
      Covirt_hobbes.App.app_name = "insitu";
      components =
        [
          Covirt_hobbes.App.component ~name:"simulation" sim_enclave
            (fun ctx channels ->
              (* a tiny MD run, streaming a frame per step *)
              (match
                 Covirt_workloads.Lammps.run [ ctx ]
                   ~bench:Covirt_workloads.Lammps.Lj ~nominal_atoms:8192
                   ~real_atoms:512 ~steps ()
               with
              | Ok r ->
                  Format.printf "simulation: %d steps, loop %.4fs, KE %.1f@."
                    r.Covirt_workloads.Lammps.steps
                    r.Covirt_workloads.Lammps.loop_seconds
                    r.Covirt_workloads.Lammps.final_kinetic_energy
              | Error e -> failwith e);
              List.iter
                (fun ch ->
                  for _ = 1 to steps do
                    Covirt_hobbes.Ipc.send ch ctx ~words:512
                  done)
                channels;
              (* checkpoint via syscall forwarding to the host OS/R *)
              let written =
                Kitten.syscall ctx ~number:Syscall.nr_write ~arg:4096
              in
              Format.printf "simulation: checkpoint write -> %d@." written);
          Covirt_hobbes.App.component ~name:"analytics" ana_enclave
            (fun ctx _channels ->
              (* crunch whatever arrived *)
              match
                Covirt_workloads.Hpcg.run [ ctx ] ~nominal_dim:32 ~real_dim:10
                  ~iterations:10 ()
              with
              | Ok r ->
                  Format.printf "analytics: CG residual %.2e in %d iters@."
                    r.Covirt_workloads.Hpcg.final_residual
                    r.Covirt_workloads.Hpcg.iterations
              | Error e -> failwith e);
        ];
      wires =
        [
          {
            Covirt_hobbes.App.from_component = "simulation";
            to_component = "analytics";
            ring_bytes = 1024 * 1024;
          };
        ];
    }
  in
  (match Covirt_hobbes.App.launch hobbes app with
  | Ok () -> ()
  | Error e -> failwith e);
  Format.printf "@.%s@." (Covirt.protection_summary covirt);
  Format.printf "%a" Covirt_hobbes.Hobbes.pp_status hobbes;
  Format.printf
    "@.Note the dropped-IPI count is zero: the doorbell vector was@.\
     granted through Hobbes, so the whitelist passes every send —@.\
     the paper's zero-overhead IPC property.@."
