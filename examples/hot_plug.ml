(* Dynamic resource churn under protection.

   Co-kernel memory is "a very dynamic resource": shared regions come
   and go constantly, memory is hot-added and removed, doorbell vectors
   are granted and revoked.  This example hammers those paths while the
   enclave keeps computing, and shows the controller keeping the
   virtualization state consistent throughout — then proves the
   protection still bites afterwards.

   Run with: dune exec examples/hot_plug.exe *)

open Covirt_hw
open Covirt_pisces
open Covirt_kitten

let gib = Covirt_sim.Units.gib
let mib = Covirt_sim.Units.mib

let () =
  let machine =
    Machine.create ~zones:2 ~cores_per_zone:3 ~mem_per_zone:(16 * gib) ()
  in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let covirt =
    Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes)
      ~config:Covirt.Config.mem_ipi
  in
  let pisces = Covirt_hobbes.Hobbes.pisces hobbes in
  let launch name cores zone =
    match
      Covirt_hobbes.Hobbes.launch_enclave hobbes ~name ~cores
        ~mem:[ (zone, 2 * gib) ] ()
    with
    | Ok pair -> pair
    | Error e -> failwith e
  in
  let enclave, kitten = launch "worker" [ 1; 2 ] 0 in
  let exporter, exporter_kitten = launch "peer" [ 4 ] 1 in
  let xemem = Covirt_hobbes.Hobbes.xemem hobbes in

  let instance () =
    Option.get
      (Covirt.Controller.instance_for covirt ~enclave_id:enclave.Enclave.id)
  in
  let mapped_bytes () =
    match (instance ()).Covirt.Controller.ept_mgr with
    | Some mgr -> Covirt.Ept_manager.mapped_bytes mgr
    | None -> 0
  in
  Format.printf "initial EPT footprint: %a@." Covirt_sim.Units.pp_bytes
    (mapped_bytes ());

  (* churn: hot-add/remove memory and attach/detach segments, 50 rounds *)
  let rounds = 50 in
  for round = 1 to rounds do
    let region =
      match Pisces.add_memory pisces enclave ~zone:(round mod 2) ~len:(64 * mib) with
      | Ok r -> r
      | Error e -> failwith e
    in
    let seg_name = Printf.sprintf "scratch-%d" round in
    (match Kitten.kalloc exporter_kitten ~bytes:(8 * mib) with
    | Ok base ->
        (match
           Covirt_xemem.Xemem.export xemem
             ~exporter:
               (Covirt_xemem.Name_service.Enclave_export exporter.Enclave.id)
             ~name:seg_name
             ~pages:[ Region.make ~base ~len:(8 * mib) ]
         with
        | Ok _ -> ()
        | Error e -> failwith e);
        (match Covirt_xemem.Xemem.attach xemem enclave ~name:seg_name with
        | Ok (addr, _) ->
            (* actually use both the hot-added and the shared memory *)
            let ctx = Kitten.context kitten ~core:1 in
            Kitten.store_addr ctx region.Region.base;
            Kitten.store_addr ctx addr
        | Error e -> failwith e);
        (match Covirt_xemem.Xemem.detach xemem enclave ~name:seg_name with
        | Ok () -> ()
        | Error e -> failwith e)
    | Error e -> failwith e);
    match Pisces.remove_memory pisces enclave region with
    | Ok () -> ()
    | Error e -> failwith e
  done;
  Format.printf
    "after %d add/attach/detach/remove rounds: EPT footprint %a (unchanged)@."
    rounds Covirt_sim.Units.pp_bytes (mapped_bytes ());
  Format.printf "flush commands processed: %d@."
    (Covirt.Controller.total_flush_commands covirt);

  (* the virtualization state still mirrors the assignment exactly *)
  let consistent =
    match (instance ()).Covirt.Controller.ept_mgr with
    | Some mgr ->
        Region.Set.equal
          (Ept.regions (Covirt.Ept_manager.ept mgr))
          (Enclave.accessible enclave)
    | None -> false
  in
  Format.printf "EPT mirrors host view: %b@." consistent;

  (* ... and the protection still works: a pointer into memory removed
     40 rounds ago is caught, not silently honoured *)
  let ctx = Kitten.context kitten ~core:1 in
  (match
     Pisces.run_guarded pisces (fun () ->
         Kitten.store_addr ctx ((2 * gib) + (512 * mib)))
   with
  | Error crash ->
      Format.printf "stale pointer after churn: %a@." Pisces.pp_crash crash
  | Ok () -> Format.printf "BUG: stale pointer went through@.");
  Format.printf "node alive: %b@." (Machine.panicked machine = None)
