(* OS-noise profiling (the Fig. 3 experiment, interactively): run the
   Selfish Detour probe under each protection configuration and print
   the detour histograms side by side.

   Run with: dune exec examples/noise_profile.exe *)

let () =
  Format.printf
    "Selfish-Detour noise profiles per Covirt configuration (1 core,@.\
     2 simulated seconds, 10 Hz LWK tick).  Counts are identical@.\
     across configurations — virtualization does not add noise events,@.\
     it only stretches interrupt delivery slightly:@.@.";
  let rows = Covirt_harness.Fig3.run () in
  Covirt_sim.Table.print (Covirt_harness.Fig3.table rows);
  Covirt_harness.Fig3.print_histograms rows
