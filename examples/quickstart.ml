(* Quickstart: bring up a node, protect it with Covirt, run a workload,
   crash the co-kernel, watch the fault stay contained.

   Run with: dune exec examples/quickstart.exe *)

open Covirt_hw
open Covirt_pisces
open Covirt_kitten

let gib = Covirt_sim.Units.gib
let mib = Covirt_sim.Units.mib

let () =
  (* 1. A simulated dual-socket node: 2 NUMA zones x 5 cores, 32 GB per
     zone.  Core 0 stays with the host Linux; the rest are up for
     grabs. *)
  let machine =
    Machine.create ~zones:2 ~cores_per_zone:5 ~mem_per_zone:(32 * gib) ()
  in
  Format.printf "machine: %a@." Numa.pp machine.Machine.topology;

  (* 2. The Hobbes OS/R (master control process) on the host core, and
     Covirt attached with memory + IPI protection.  Everything after
     this line is transparent to the co-kernels. *)
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let covirt =
    Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes)
      ~config:Covirt.Config.mem_ipi
  in

  (* 3. Boot a Kitten LWK into a 4-core, 14 GB enclave. *)
  let enclave, kitten =
    match
      Covirt_hobbes.Hobbes.launch_enclave hobbes ~name:"compute"
        ~cores:[ 1; 2; 5; 6 ]
        ~mem:[ (0, 7 * gib); (1, 7 * gib) ]
        ()
    with
    | Ok pair -> pair
    | Error e -> failwith e
  in
  Format.printf "booted: %a@." Enclave.pp enclave;

  (* 4. Run a real workload on the enclave: STREAM across all 4 cores. *)
  let ctxs =
    List.map (fun core -> Kitten.context kitten ~core) (Kitten.cores kitten)
  in
  (match Covirt_workloads.Stream.run ctxs ~elems:2_000_000 ~iters:3 () with
  | Ok r ->
      Format.printf "STREAM triad: %.0f MB/s (under full protection)@."
        r.Covirt_workloads.Stream.triad_mb_s
  | Error e -> failwith e);

  (* 5. Now the bug: the kernel dereferences an address it was never
     assigned (a corrupted memory map, a stale pointer...).  Natively
     this would corrupt the host kernel and take down the node. *)
  let pisces = Covirt_hobbes.Hobbes.pisces hobbes in
  (match
     Pisces.run_guarded pisces (fun () ->
         Kitten.store_addr (Kitten.context kitten ~core:1) (1 * mib))
   with
  | Ok () -> Format.printf "BUG: the wild write was not contained!@."
  | Error crash ->
      Format.printf "contained: %a@." Pisces.pp_crash crash;
      Format.printf "node still alive: %b@."
        (Machine.panicked machine = None));

  (* 6. The master control process reclaimed everything; the fault
     report is available for debugging. *)
  List.iter
    (fun r -> Format.printf "report: %a@." Covirt.Fault_report.pp r)
    (Covirt.reports covirt ~enclave_id:enclave.Enclave.id);
  Format.printf "enclave state: %a@." Enclave.pp_state enclave.Enclave.state;
  Format.printf "free memory back in zone 0: %a@." Covirt_sim.Units.pp_bytes
    (Phys_mem.free_bytes machine.Machine.mem ~zone:0)
