(* Fault-containment tour: every fault class from the paper's taxonomy,
   executed natively and under Covirt, side by side.

   Run with: dune exec examples/fault_containment.exe *)

open Covirt_hw
open Covirt_pisces
open Covirt_kitten

let gib = Covirt_sim.Units.gib
let mib = Covirt_sim.Units.mib

type outcome =
  | Node_died of string
  | Contained of string
  | Dropped of string
  | Undetected of string

let pp_outcome ppf = function
  | Node_died why -> Format.fprintf ppf "NODE DOWN  (%s)" why
  | Contained why -> Format.fprintf ppf "contained  (%s)" why
  | Dropped why -> Format.fprintf ppf "dropped    (%s)" why
  | Undetected what -> Format.fprintf ppf "UNDETECTED (%s)" what

(* Build a fresh two-enclave stack and run one injection. *)
let run_scenario ~config inject =
  let machine =
    Machine.create ~zones:2 ~cores_per_zone:3 ~mem_per_zone:(8 * gib) ()
  in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let covirt = Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes) ~config in
  let launch name cores zone =
    match
      Covirt_hobbes.Hobbes.launch_enclave hobbes ~name ~cores
        ~mem:[ (zone, 1 * gib) ] ()
    with
    | Ok pair -> pair
    | Error e -> failwith e
  in
  let attacker, attacker_kitten = launch "attacker" [ 1 ] 0 in
  let victim, victim_kitten = launch "victim" [ 3 ] 1 in
  let ctx = Kitten.context attacker_kitten ~core:1 in
  let pisces = Covirt_hobbes.Hobbes.pisces hobbes in
  match
    Pisces.run_guarded pisces (fun () ->
        inject ~ctx ~attacker ~victim ~victim_kitten ~hobbes)
  with
  | exception Machine.Node_panic why -> Node_died why
  | Error crash -> Contained crash.Pisces.reason
  | Ok () -> (
      (* no immediate crash: did anything get silently damaged? *)
      match Kitten.health victim_kitten with
      | `Corrupted cause -> Undetected ("victim corrupted: " ^ cause)
      | `Ok ->
          if Machine.panicked machine <> None then
            Node_died (Option.get (Machine.panicked machine))
          else if
            Covirt.dropped_ipis covirt ~enclave_id:attacker.Enclave.id > 0
          then Dropped "errant IPI blocked by the whitelist"
          else Undetected "fault had no visible effect (yet)")

let scenarios =
  [
    ( "wild write into host kernel memory",
      fun ~ctx ~attacker:_ ~victim:_ ~victim_kitten:_ ~hobbes:_ ->
        Kitten.store_addr ctx (2 * mib) );
    ( "wild write into sibling enclave",
      fun ~ctx ~attacker:_ ~victim ~victim_kitten:_ ~hobbes:_ ->
        let target =
          match Region.Set.to_list victim.Enclave.memory with
          | r :: _ -> r.Region.base + mib
          | [] -> failwith "victim has no memory"
        in
        Kitten.store_addr ctx target );
    ( "memory-map desync (phantom region)",
      fun ~ctx ~attacker:_ ~victim:_ ~victim_kitten:_ ~hobbes:_ ->
        let phantom = Region.make ~base:(6 * gib) ~len:(4 * mib) in
        Kitten.inject_phantom_region ctx.Kitten.kernel phantom;
        Kitten.touch_believed_memory ctx phantom.Region.base );
    ( "errant exception-class IPI (vector 8)",
      fun ~ctx ~attacker:_ ~victim ~victim_kitten:_ ~hobbes:_ ->
        Kitten.send_ipi ctx ~dest:(Enclave.bsp victim) ~vector:8 );
    ( "write to IA32_SMM_MONITOR_CTL",
      fun ~ctx ~attacker:_ ~victim:_ ~victim_kitten:_ ~hobbes:_ ->
        Kitten.wrmsr_sensitive ctx );
    ( "hard reset via port 0xCF9",
      fun ~ctx ~attacker:_ ~victim:_ ~victim_kitten:_ ~hobbes:_ ->
        Kitten.out_reset_port ctx );
    ( "double fault (abort class)",
      fun ~ctx ~attacker:_ ~victim:_ ~victim_kitten:_ ~hobbes:_ ->
        Kitten.trigger_double_fault ctx );
  ]

let () =
  Format.printf
    "Fault containment: native co-kernel vs Covirt (memory+IPI+MSR+I/O)@.@.";
  let t = Covirt_sim.Table.create ~columns:[ "fault"; "native"; "under covirt" ] in
  List.iter
    (fun (name, inject) ->
      let native = run_scenario ~config:Covirt.Config.native inject in
      let covirt = run_scenario ~config:Covirt.Config.full inject in
      Covirt_sim.Table.add_row t
        [
          name;
          Format.asprintf "%a" pp_outcome native;
          Format.asprintf "%a" pp_outcome covirt;
        ])
    scenarios;
  Covirt_sim.Table.print t;
  Format.printf
    "Every fault that kills or silently corrupts the node natively is@.\
     reduced to the termination of the offending enclave (or a dropped@.\
     operation) when Covirt is interposed.@."
