(** Delta-debugging for crashing traces.

    Reduces a failing {!Trace.Trial_batch} to a minimal reproducer:
    ddmin over the input events, a cross-trial pass dropping every
    input of one slot at once, trial-range truncation, and per-payload
    shrinking, iterated to a fixpoint — every candidate validated by
    an actual replay against the [keep] predicate.

    Slot numbers are never compacted: each slot's machine seed derives
    from its index, so renumbering would change the run the trace
    describes.  Observed exits are dropped up front (replay ignores
    them); a minimal reproducer is the scenario header plus the
    fewest, smallest inputs that still fail. *)

type stats = {
  probes : int;  (** replays spent *)
  original_events : int;
  minimized_events : int;
  original_trials : int;
  minimized_trials : int;
}

val default_keep : Scenario.report -> bool
(** The crash oracle: the replay produced at least one crash. *)

val minimize :
  ?keep:(Scenario.report -> bool) ->
  ?preserve_edges:Coverage.t ->
  ?max_probes:int ->
  Trace.t ->
  Trace.t * stats
(** Minimize under [keep] (default {!default_keep}), spending at most
    [max_probes] replays (default 400).  If the failure does not
    reproduce from the trace's inputs alone, the trace is returned
    unreduced (never a non-reproducer).  Minimizing an already-minimal
    trace returns it unchanged — the fixpoint property asserted in
    test_replay.ml.  [Invalid_argument] on soak-shard traces.

    With [preserve_edges], every candidate must additionally still
    cover each given coverage edge when replayed — how the fuzzer
    shrinks corpus entries without losing the edge that earned their
    promotion (pair it with [~keep:(fun _ -> true)]).  Probing with
    edges armed clears this domain's in-progress coverage map. *)
