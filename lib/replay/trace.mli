(** The versioned binary trace format for record/replay.

    A trace is the complete set of {e nondeterministic inputs} a
    simulated run consumed — the scenario parameters (config, seeds,
    trial range), the fault-injector schedule, every fault actually
    applied, plus any synthetic inputs a fuzzer added — interleaved
    with the {e observed} VM-exit stream.  Because the simulator is
    otherwise a pure function of its seeds, a trace fully determines a
    run: the replayer re-executes it and re-captures a bit-identical
    trace ({!Replayer.verify}).

    Wire format (version 1): magic ["CVRT"], varint version, scenario,
    schedule JSON (length-prefixed), dropped-event count, event count,
    then each event.  All small ints are unsigned LEB128 varints; the
    only fixed-width field is the 8-byte little-endian MSR value.
    {!decode} is total — malformed input yields [Error], never an
    exception — so mutated corpus files are themselves safe inputs.

    This module is the {e only} place trace bytes are produced or
    consumed (enforced by covirt-lint): every other layer works with
    the typed {!t}. *)

val magic : string
(** First four bytes of every trace file: ["CVRT"]. *)

val version : int
(** Current format version (1).  {!decode} rejects any other. *)

(** A recorded VM exit's reason, mirroring
    {!Covirt_hw.Vmcs.exit_reason} but self-contained so the format
    cannot drift silently when the simulator's type changes: the
    conversion in {!Recorder} breaks instead. *)
type exit_payload =
  | X_ept of { gpa : int; access : int; not_mapped : bool }
      (** [access]: 0 read, 1 write, 2 exec. *)
  | X_icr of { dest : int; vector : int; kind : int }
      (** [kind]: 0 fixed, 1 NMI, 2 INIT, 3 SIPI. *)
  | X_msr of { msr : int; write : bool; value : int64 }
  | X_io of { port : int; write : bool; value : int }
  | X_cpuid
  | X_xsetbv
  | X_hlt
  | X_intr of { vector : int }
  | X_nmi
  | X_abort of { what : string }

(** A recorded injected fault, mirroring
    {!Covirt_resilience.Fault_injector.fault}. *)
type fault_payload =
  | F_wild of int
  | F_phantom of int
  | F_ipi of { dest : int; vector : int }
  | F_msr
  | F_port
  | F_double
  | F_wedge of { cycles : int }

(** The four corruption classes the sanitizer/verifier oracles must
    detect; a fuzzer plants these as synthetic inputs. *)
type corruption = Cross_owner | Free_map | Stale_grant | Freed_access

type event =
  | Exit of {
      slot : int;  (** trial index the exit occurred in *)
      cpu : int;
      enclave : int;
      tsc : int;
      reason : exit_payload;
    }  (** {e observed}: a VM exit the recorder tapped. *)
  | Fault of { slot : int; fault : fault_payload }
      (** {e input}: a fault the injector applied in this slot. *)
  | Inject_exit of { slot : int; reason : exit_payload }
      (** {e input}: a synthetic exit a fuzzer asks the replayer to
          deliver at the start of this slot. *)
  | Corrupt of { slot : int; cls : corruption }
      (** {e input}: a planted state corruption, applied at the start
          of this slot. *)
  | Xemem_op of { slot : int; attach : bool }
      (** {e input}: an XEMEM attach ([true]) or detach ([false]) the
          attacker performs against the victim's shared segment at the
          start of this slot — the fuzzer interleaves these to stress
          the name service and grant lifecycle. *)
  | Spawn of { slot : int; zone : int }
      (** {e input}: launch an extra enclave in NUMA zone [zone]
          (0 or 1) at the start of this slot, widening the run to a
          multi-enclave scenario.  A no-op when the zone has no free
          core left. *)

(** What kind of run the trace captures — enough to rebuild the run
    from scratch. *)
type scenario =
  | Trial_batch of { config : string; seed : int; trials : int }
      (** [config] is a {!Covirt.Config.of_string} name. *)
  | Soak_shard of { seed : int; lo : int; hi : int; sanitize : bool }
      (** One supervisor-soak shard: trials [lo..hi-1] under
          [shard_seed = seed]. *)

type t = {
  scenario : scenario;
  schedule_json : string;
      (** {!Covirt_resilience.Fault_injector.schedule_to_json} of the
          injector at record time; [""] when no injector was armed. *)
  dropped : int;
      (** Events evicted from the recorder ring before capture: [0]
          means the trace is complete (full bit-identity on replay);
          [> 0] means only the trailing window survived (suffix
          identity). *)
  events : event list;
}

val make :
  ?schedule_json:string -> ?dropped:int -> scenario:scenario -> event list -> t
(** Build a trace ([schedule_json] defaults to [""], [dropped] to
    [0]). *)

val is_input : event -> bool
(** Inputs ([Fault], [Inject_exit], [Corrupt], [Xemem_op], [Spawn])
    are what replay feeds back in; [Exit] events are observations used
    only for verification. *)

val inputs : t -> event list
val observed : t -> event list
val slot_of : event -> int

val corruption_name : corruption -> string
(** ["cross-owner"], ["free-map"], ["stale-grant"], ["freed-access"]
    — matching the covirt-ctl analyze vocabulary. *)

val corruptions : corruption list
(** All four classes, in code order. *)

val encode : t -> string
(** Serialize to the versioned binary format.  Deterministic: equal
    traces encode to equal bytes, so byte comparison of encodings
    {e is} trace equality. *)

val decode : string -> (t, string) result
(** Total inverse of {!encode}.  Rejects bad magic, unknown versions
    and tags, overrunning strings, trailing bytes, out-of-range enum
    codes. *)

val to_file : t -> path:string -> unit
val of_file : path:string -> (t, string) result

val equal : t -> t -> bool
(** Encoding equality — the bit-identity the replay contract is stated
    in. *)

val digest : t -> string
(** Hex digest of the encoding, for corpus filenames and fuzz
    tables. *)

val pp_exit_payload : Format.formatter -> exit_payload -> unit
val pp_fault_payload : Format.formatter -> fault_payload -> unit
val pp_event : Format.formatter -> event -> unit
val pp_scenario : Format.formatter -> scenario -> unit

val pp_summary : Format.formatter -> t -> unit
(** Multi-line human summary: scenario, size, digest, event counts —
    what [covirt-ctl replay] prints before running. *)
