(** Per-run coverage maps — the fuzzer's guidance signal.

    A coverage map is a fixed-size bitset over the behaviour edges a
    replayed trial can exercise:

    - (exit-reason arm {e x} handler outcome) for every delivered VM
      exit — {!Covirt_hw.Vmcs.exit_reason_arms} arms times three
      outcomes (resume / skip / kill);
    - the EPT walk-branch classes (walk-cache hit/fill, uncached walk,
      PT-slot hit/fill, the two violation reasons);
    - the injected fault classes
      ({!Covirt_resilience.Fault_injector.fault_code});
    - the sanitizer violation kinds;
    - planted and detected corruption classes, trial outcomes, the
      crash oracle, XEMEM attach/detach success/failure, enclave
      spawns and the soak-scenario marker.

    Collection reuses the recorder's zero-cost tap contract: each hw
    site pays one branch when disarmed, the tap bodies are a
    Domain-local bit store (no simulated cycles, no randomness, no
    allocation), and arming leaves every transcript byte-identical —
    pinned by test_coverage.ml against the golden translation capture.

    Maps are immutable; the collection state is Domain-local so every
    fleet shard gathers its own trial's coverage independently
    (arming is reference-counted across domains, the recorder
    pattern). *)

type t
(** An immutable coverage snapshot.  Structural ([=]) and {!equal}
    comparison agree, so fuzz results carrying maps stay comparable
    across domains. *)

val total : int
(** Number of edge bits in the map (the fixed map size). *)

val empty : t
(** The all-zeros map. *)

val equal : t -> t -> bool

val mem : t -> int -> bool
(** Is edge [i] set?  [i] must be in [0 .. total - 1]. *)

val count : t -> int
(** Population count: how many distinct edges the run exercised. *)

val union : t -> t -> t

val new_edges : t -> base:t -> int
(** How many edges of the first map are not in [base] — the promotion
    signal ([> 0] means the run found something the corpus hasn't). *)

val subset : t -> of_:t -> bool
(** Is every edge of the first map present in [of_]?  The minimizer's
    preserve-edges check is [subset edges ~of_:candidate]. *)

val to_bytes : t -> string
(** The raw map bytes (length [total/8] rounded up) — what corpus
    entries embed. *)

val of_bytes : string -> (t, string) result
(** Total inverse of {!to_bytes}; rejects any other length, so a
    layout change invalidates stale corpus entries loudly. *)

val edge_name : int -> string
(** Stable human name for edge [i], e.g. ["exit:hlt/resume"],
    ["ept:walk-hit"], ["planted:stale-grant"].  [Invalid_argument]
    outside [0 .. total - 1]. *)

val pp : Format.formatter -> t -> unit
(** ["%d/%d edges:"] followed by the set edges' names. *)

(** {1 Collection}

    Domain-local, reference-counted across domains like
    {!Recorder.arm}. *)

val collecting : unit -> bool
(** Whether this domain is collecting. *)

val arm : unit -> unit
(** Start collecting in this domain with a cleared map; flips the hw
    [cov_on] switches when this is the first domain to arm.  No-op if
    already collecting. *)

val disarm : unit -> unit
(** Stop collecting and clear the map; drops the hw switches when this
    was the last armed domain. *)

val capture : unit -> t
(** Snapshot this domain's map and clear it (collection continues) —
    call once per mutant/trial to get its per-run map. *)

(** {1 Scenario-layer hits}

    Edges the hw taps cannot see — trial verdicts and the synthetic
    input surface — reported by {!Scenario}/{!Replayer}.  Each is a
    no-op unless this domain is collecting. *)

val hit_planted : Trace.corruption -> unit
val hit_detected : Trace.corruption -> unit
val hit_outcome : [ `Survived | `Node_down | `Collateral ] -> unit

val hit_crash : unit -> unit
(** The crash oracle fired (non-simulated exception escaped). *)

val hit_xemem : attach:bool -> ok:bool -> unit
(** An [Xemem_op] input was applied and succeeded/failed. *)

val hit_spawn : ok:bool -> unit
(** A [Spawn] input launched an enclave ([ok]) or found no free core
    ([not ok]). *)

val hit_soak : unit -> unit
(** The run replayed a soak-shard scenario. *)
