(* The recorder: taps the two nondeterministic boundaries — VM-exit
   dispatch ([Vmx.exit_tap]) and fault application
   ([Fault_injector.inject_tap]) — into a per-domain ring of trace
   events.

   Contract (the obs/sanitize pattern): the tap sites are a single
   [!tap_on] branch when disarmed, the tap bodies never charge
   simulated cycles or draw randomness, and arming changes nothing a
   run can observe — the golden translation capture stays
   byte-identical with the recorder armed (asserted in
   test_replay.ml).

   The ring is Domain-local: every fleet shard records its own trial
   without touching its neighbours'.  The tap closures are installed
   once and gate on the domain's [recording] flag, so the global
   [tap_on] booleans only decide whether the (cheap) closure call
   happens at all; a domain that never armed simply ignores the
   callback. *)

open Covirt_hw
module Fault_injector = Covirt_resilience.Fault_injector

(* --- payload conversions -------------------------------------------- *)

let of_exit_reason : Vmcs.exit_reason -> Trace.exit_payload = function
  | Vmcs.Ept_violation { Ept.gpa; access; reason } ->
      Trace.X_ept
        {
          gpa;
          access = (match access with `Read -> 0 | `Write -> 1 | `Exec -> 2);
          not_mapped = (reason = `Not_mapped);
        }
  | Vmcs.Icr_write { Apic.dest; vector; kind } ->
      Trace.X_icr
        {
          dest;
          vector;
          kind =
            (match kind with
            | Apic.Fixed -> 0
            | Apic.Nmi -> 1
            | Apic.Init -> 2
            | Apic.Startup -> 3);
        }
  | Vmcs.Msr_access { msr; write; value } -> Trace.X_msr { msr; write; value }
  | Vmcs.Io_access { port; write; value } -> Trace.X_io { port; write; value }
  | Vmcs.Cpuid -> Trace.X_cpuid
  | Vmcs.Xsetbv -> Trace.X_xsetbv
  | Vmcs.Hlt -> Trace.X_hlt
  | Vmcs.External_interrupt { vector } -> Trace.X_intr { vector }
  | Vmcs.Nmi_exit -> Trace.X_nmi
  | Vmcs.Abort { what } -> Trace.X_abort { what }

let to_exit_reason : Trace.exit_payload -> Vmcs.exit_reason = function
  | Trace.X_ept { gpa; access; not_mapped } ->
      Vmcs.Ept_violation
        {
          Ept.gpa;
          access = (match access with 0 -> `Read | 1 -> `Write | _ -> `Exec);
          reason = (if not_mapped then `Not_mapped else `Perm_denied);
        }
  | Trace.X_icr { dest; vector; kind } ->
      Vmcs.Icr_write
        {
          Apic.dest;
          vector;
          kind =
            (match kind with
            | 0 -> Apic.Fixed
            | 1 -> Apic.Nmi
            | 2 -> Apic.Init
            | _ -> Apic.Startup);
        }
  | Trace.X_msr { msr; write; value } -> Vmcs.Msr_access { msr; write; value }
  | Trace.X_io { port; write; value } -> Vmcs.Io_access { port; write; value }
  | Trace.X_cpuid -> Vmcs.Cpuid
  | Trace.X_xsetbv -> Vmcs.Xsetbv
  | Trace.X_hlt -> Vmcs.Hlt
  | Trace.X_intr { vector } -> Vmcs.External_interrupt { vector }
  | Trace.X_nmi -> Vmcs.Nmi_exit
  | Trace.X_abort { what } -> Vmcs.Abort { what }

let of_fault : Fault_injector.fault -> Trace.fault_payload = function
  | Fault_injector.Wild_write a -> Trace.F_wild a
  | Fault_injector.Phantom_touch a -> Trace.F_phantom a
  | Fault_injector.Errant_ipi { dest; vector } -> Trace.F_ipi { dest; vector }
  | Fault_injector.Msr_write -> Trace.F_msr
  | Fault_injector.Port_reset -> Trace.F_port
  | Fault_injector.Double_fault -> Trace.F_double
  | Fault_injector.Wedge { cycles } -> Trace.F_wedge { cycles }

let to_fault : Trace.fault_payload -> Fault_injector.fault = function
  | Trace.F_wild a -> Fault_injector.Wild_write a
  | Trace.F_phantom a -> Fault_injector.Phantom_touch a
  | Trace.F_ipi { dest; vector } -> Fault_injector.Errant_ipi { dest; vector }
  | Trace.F_msr -> Fault_injector.Msr_write
  | Trace.F_port -> Fault_injector.Port_reset
  | Trace.F_double -> Fault_injector.Double_fault
  | Trace.F_wedge { cycles } -> Fault_injector.Wedge { cycles }

(* --- the per-domain ring -------------------------------------------- *)

let default_capacity = 65536

type dls = {
  mutable recording : bool;
  mutable slot : int;
  mutable ring : Trace.event array;
  mutable start : int;  (** index of the oldest live event *)
  mutable count : int;
  mutable dropped : int;
}

let dls_key =
  Domain.DLS.new_key (fun () ->
      {
        recording = false;
        slot = 0;
        ring = [||];
        start = 0;
        count = 0;
        dropped = 0;
      })

let dls () = Domain.DLS.get dls_key

let push ev =
  let d = dls () in
  let cap = Array.length d.ring in
  if d.count < cap then begin
    d.ring.((d.start + d.count) mod cap) <- ev;
    d.count <- d.count + 1
  end
  else begin
    (* Ring full: evict the oldest so the trailing window survives —
       the shape quarantine captures want. *)
    d.ring.(d.start) <- ev;
    d.start <- (d.start + 1) mod cap;
    d.dropped <- d.dropped + 1
  end

(* --- taps ------------------------------------------------------------ *)

(* How many domains currently want the taps live.  The bool flips are
   idempotent stores; a tap firing in a domain whose [recording] is
   false is ignored, so a momentary overlap between one domain arming
   and another disarming is harmless. *)
let armed = Atomic.make 0

let exit_tap cpu (vmcs : Vmcs.t) reason =
  let d = dls () in
  if d.recording then
    push
      (Trace.Exit
         {
           slot = d.slot;
           cpu = cpu.Cpu.id;
           enclave = vmcs.Vmcs.enclave;
           tsc = cpu.Cpu.tsc;
           reason = of_exit_reason reason;
         })

let fault_tap fault =
  let d = dls () in
  if d.recording then
    push (Trace.Fault { slot = d.slot; fault = of_fault fault })

let () =
  Vmx.exit_tap := exit_tap;
  Fault_injector.inject_tap := fault_tap

let recording () = (dls ()).recording

let arm ?(capacity = default_capacity) () =
  let d = dls () in
  if not d.recording then begin
    d.recording <- true;
    d.slot <- 0;
    d.ring <- Array.make capacity (Trace.Inject_exit { slot = 0; reason = Trace.X_hlt });
    d.start <- 0;
    d.count <- 0;
    d.dropped <- 0;
    if Atomic.fetch_and_add armed 1 = 0 then begin
      Vmx.tap_on := true;
      Fault_injector.tap_on := true
    end
  end

let disarm () =
  let d = dls () in
  if d.recording then begin
    d.recording <- false;
    d.ring <- [||];
    d.count <- 0;
    d.start <- 0;
    if Atomic.fetch_and_add armed (-1) = 1 then begin
      Vmx.tap_on := false;
      Fault_injector.tap_on := false
    end
  end

let set_slot n = (dls ()).slot <- n

let note ev = if (dls ()).recording then push ev

let capture () =
  let d = dls () in
  let events =
    List.init d.count (fun i -> d.ring.((d.start + i) mod Array.length d.ring))
  in
  let dropped = d.dropped in
  d.start <- 0;
  d.count <- 0;
  d.dropped <- 0;
  (events, dropped)
