(* The coverage map: a fixed, compact bitset over the behaviour edges
   a trial can exercise — (exit-reason arm x handler outcome), EPT
   walk-branch classes, injected fault classes, sanitizer violation
   kinds, planted/detected corruption classes, trial outcomes and the
   multi-enclave/XEMEM surface.  The fuzzer uses it as guidance: a
   mutant whose map contains an edge the corpus has never seen is
   promoted.

   Collection obeys the recorder's zero-cost contract: the hw tap
   sites are a single [!cov_on] branch when disarmed, and the tap
   bodies are a Domain-local bit store — no simulated cycles, no
   randomness, no allocation — so a run with coverage armed is
   byte-identical to one without (asserted in test_coverage.ml against
   the golden translation transcript).

   A captured map is an immutable [string], so structural equality on
   fuzz results keeps working and maps can be unioned/compared without
   defensive copies. *)

open Covirt_hw
module Fault_injector = Covirt_resilience.Fault_injector

(* --- edge layout ----------------------------------------------------- *)

(* Dense, stable bit indices.  Derived from the hw-layer arm counts so
   adding an exit reason or fault class grows the map instead of
   silently aliasing; the corpus entry format stores the map size, so
   a layout change invalidates old entries loudly (typed decode
   error), never quietly. *)

let outcome_arms = 3 (* resume / skip / kill *)
let exit_base = 0
let exit_edges = Vmcs.exit_reason_arms * outcome_arms
let ept_base = exit_base + exit_edges
let ept_edges = 7
let fault_base = ept_base + ept_edges
let fault_edges = 7
let san_base = fault_base + fault_edges
let san_edges = 3
let planted_base = san_base + san_edges
let planted_edges = 4
let detected_base = planted_base + planted_edges
let detected_edges = 4
let outcome_base = detected_base + detected_edges
let outcome_edges = 3
let crash_bit = outcome_base + outcome_edges
let xemem_base = crash_bit + 1
let xemem_edges = 4
let spawn_base = xemem_base + xemem_edges
let spawn_edges = 2
let soak_bit = spawn_base + spawn_edges
let total = soak_bit + 1
let bytes_len = (total + 7) / 8

(* --- the immutable map ----------------------------------------------- *)

type t = string

let empty = String.make bytes_len '\000'
let equal = String.equal
let mem t i = Char.code t.[i lsr 3] land (1 lsl (i land 7)) <> 0

let count t =
  let n = ref 0 in
  String.iter
    (fun c ->
      let b = ref (Char.code c) in
      while !b <> 0 do
        b := !b land (!b - 1);
        incr n
      done)
    t;
  !n

let union a b =
  String.init bytes_len (fun i ->
      Char.chr (Char.code a.[i] lor Char.code b.[i]))

let new_edges t ~base =
  let n = ref 0 in
  for i = 0 to total - 1 do
    if mem t i && not (mem base i) then incr n
  done;
  !n

let subset t ~of_ =
  let ok = ref true in
  String.iteri
    (fun i c -> if Char.code c land lnot (Char.code of_.[i]) <> 0 then ok := false)
    t;
  !ok

let to_bytes t = t

let of_bytes s =
  if String.length s <> bytes_len then
    Error
      (Printf.sprintf "coverage map is %d bytes, expected %d" (String.length s)
         bytes_len)
  else Ok s

(* --- edge names ------------------------------------------------------ *)

(* Arm names in Vmcs.exit_reason_code order; the length assert keeps
   this table honest when a constructor is added. *)
let exit_arm_names =
  [|
    "ept-violation"; "icr-write"; "msr-access"; "io-access"; "cpuid";
    "xsetbv"; "hlt"; "external-interrupt"; "nmi"; "abort";
  |]

let () = assert (Array.length exit_arm_names = Vmcs.exit_reason_arms)
let outcome_names = [| "resume"; "skip"; "kill" |]

let ept_names =
  [|
    "walk-hit"; "walk-fill"; "walk-uncached"; "pt-slot-hit"; "pt-slot-fill";
    "viol-not-mapped"; "viol-perm";
  |]

let fault_names =
  [|
    "wild-write"; "phantom-touch"; "errant-ipi"; "msr-write"; "port-reset";
    "double-fault"; "wedge";
  |]

let san_names = [| "cross-owner"; "freed-access"; "corrupt-mapping" |]
let corruption_names = [| "cross-owner"; "free-map"; "stale-grant"; "freed-access" |]
let trial_outcome_names = [| "survived"; "node-down"; "collateral" |]
let xemem_names = [| "attach-ok"; "attach-err"; "detach-ok"; "detach-err" |]
let spawn_names = [| "spawn-ok"; "spawn-noop" |]

let edge_name i =
  if i < 0 || i >= total then invalid_arg "Coverage.edge_name"
  else if i < ept_base then
    Printf.sprintf "exit:%s/%s"
      exit_arm_names.(i / outcome_arms)
      outcome_names.(i mod outcome_arms)
  else if i < fault_base then "ept:" ^ ept_names.(i - ept_base)
  else if i < san_base then "fault:" ^ fault_names.(i - fault_base)
  else if i < planted_base then "san:" ^ san_names.(i - san_base)
  else if i < detected_base then "planted:" ^ corruption_names.(i - planted_base)
  else if i < outcome_base then "detected:" ^ corruption_names.(i - detected_base)
  else if i < crash_bit then "outcome:" ^ trial_outcome_names.(i - outcome_base)
  else if i = crash_bit then "crash"
  else if i < spawn_base then "xemem:" ^ xemem_names.(i - xemem_base)
  else if i < soak_bit then "spawn:" ^ spawn_names.(i - spawn_base)
  else "soak-scenario"

let pp ppf t =
  Format.fprintf ppf "@[<hov 2>%d/%d edges:" (count t) total;
  for i = 0 to total - 1 do
    if mem t i then Format.fprintf ppf "@ %s" (edge_name i)
  done;
  Format.fprintf ppf "@]"

(* --- collection ------------------------------------------------------ *)

type dls = { mutable collecting : bool; map : Bytes.t }

let dls_key =
  Domain.DLS.new_key (fun () ->
      { collecting = false; map = Bytes.make bytes_len '\000' })

let dls () = Domain.DLS.get dls_key

(* The hot store.  Unsafe accesses are in-bounds by construction: every
   caller passes a constant-offset code the hw layer bounds. *)
let mark d i =
  let byte = Char.code (Bytes.unsafe_get d.map (i lsr 3)) in
  Bytes.unsafe_set d.map (i lsr 3)
    (Char.unsafe_chr (byte lor (1 lsl (i land 7))))

(* How many domains currently want the taps live — the recorder's
   refcount pattern.  A tap firing in a domain whose [collecting] is
   false is ignored. *)
let armed = Atomic.make 0

let () =
  Vmx.cov_exit_tap :=
    (fun arm outcome ->
      let d = dls () in
      if d.collecting then mark d (exit_base + (arm * outcome_arms) + outcome));
  Ept.cov_tap :=
    (fun cls ->
      let d = dls () in
      if d.collecting then mark d (ept_base + cls));
  Sanitize.cov_tap :=
    (fun kind ->
      let d = dls () in
      if d.collecting then mark d (san_base + kind));
  Fault_injector.cov_tap :=
    (fun cls ->
      let d = dls () in
      if d.collecting then mark d (fault_base + cls))

let collecting () = (dls ()).collecting

let set_flags v =
  Vmx.cov_on := v;
  Ept.cov_on := v;
  Sanitize.cov_on := v;
  Fault_injector.cov_on := v

let arm () =
  let d = dls () in
  if not d.collecting then begin
    d.collecting <- true;
    Bytes.fill d.map 0 bytes_len '\000';
    if Atomic.fetch_and_add armed 1 = 0 then set_flags true
  end

let disarm () =
  let d = dls () in
  if d.collecting then begin
    d.collecting <- false;
    Bytes.fill d.map 0 bytes_len '\000';
    if Atomic.fetch_and_add armed (-1) = 1 then set_flags false
  end

let capture () =
  let d = dls () in
  let snap = Bytes.to_string d.map in
  Bytes.fill d.map 0 bytes_len '\000';
  snap

(* --- scenario-layer hits --------------------------------------------- *)

(* These are called from [Scenario]/[Replayer] (which sit above this
   module), not from hw taps, so they gate on the domain's own
   [collecting] flag directly. *)

let hit d i = if d.collecting then mark d i

let corruption_code = function
  | Trace.Cross_owner -> 0
  | Trace.Free_map -> 1
  | Trace.Stale_grant -> 2
  | Trace.Freed_access -> 3

let hit_planted cls = hit (dls ()) (planted_base + corruption_code cls)
let hit_detected cls = hit (dls ()) (detected_base + corruption_code cls)

let hit_outcome o =
  hit (dls ())
    (outcome_base
    + match o with `Survived -> 0 | `Node_down -> 1 | `Collateral -> 2)

let hit_crash () = hit (dls ()) crash_bit

let hit_xemem ~attach ~ok =
  hit (dls ())
    (xemem_base + (if attach then 0 else 2) + if ok then 0 else 1)

let hit_spawn ~ok = hit (dls ()) (spawn_base + if ok then 0 else 1)
let hit_soak () = hit (dls ()) soak_bit
