(** The replayer: re-execute a trace, re-capture, compare.

    The replay contract: a trace fully determines its run, so
    replaying it and recording the replay yields the {e same} trace,
    byte for byte.  {!verify} checks this by replaying twice —
    replay(T) must equal replay(replay(T)) always, mutated or not —
    and additionally compares against the input trace, which matches
    exactly when the input was a faithful recording (a mutated trace
    legitimately diverges: its inputs changed the run, so the
    re-captured exit stream differs from the stale recorded one). *)

val run : Trace.t -> Scenario.report
(** One replay.  {!Trace.Trial_batch} traces go through
    {!Scenario.replay}; {!Trace.Soak_shard} traces re-run the soak
    shard (pure in its seed) under the recorder, with the crash oracle
    attached. *)

type verification = {
  report : Scenario.report;  (** the first replay *)
  replay_identical : bool;
      (** replay∘replay fixed point — must always hold; a [false]
          here is a determinism bug. *)
  matches_original : bool;
      (** re-capture equals the input trace byte-for-byte — expected
          for faithful recordings, expected [false] for mutated
          traces. *)
}

val verify : Trace.t -> verification
(** Replay twice and compare encodings. *)
