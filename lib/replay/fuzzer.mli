(** Coverage-guided trace-mutation fuzzing with sanitizer oracles,
    sharded across fleet domains.

    One fuzz trial per shard: pick a mutation base (an explicit
    [base], a seeded {!Corpus} entry, or a freshly recorded two-trial
    batch under a seed-chosen config), apply 1–[mutations] seeded
    mutation operators, replay the mutant under the full oracle
    battery (crash, shadow sanitizer, static verifier, sampled
    replay-fixed-point), and delta-debug any crash to a minimal
    reproducer in-shard.

    With [coverage] each replay runs under the {!Coverage} taps.  A
    non-crashing mutant whose map holds an edge the accumulated
    coverage lacks is {e promoted}: pre-shrunk in-shard under
    [Minimizer ~preserve_edges], then admitted by a pure left fold in
    shard-index order against the corpus baseline — so the promoted
    set, like every other field of the result, is byte-identical for
    any [domains] (the fleet contract, tested at domains 1/2/7).

    Every decision derives from [Rng.split_seed] of the shard seed
    and the merge is a pure fold in shard order. *)

val mutation_names : string list
(** The eight operators, for docs and tables: dup-input, reorder,
    truncate, mutate-fault, mutate-exit, inject-corrupt,
    xemem-interleave, spawn-enclave.  To add one: extend {!Fuzzer}'s
    [apply_mutation] (and this list), keeping every random draw on the
    shard rng. *)

type finding = {
  digest : string;  (** {!Trace.digest} of the minimized trace *)
  shard : int;  (** fuzz trial that found it *)
  slot : int;
  exn : string;  (** the escaping exception's text *)
  trace : Trace.t;  (** minimized reproducer *)
  probes : int;  (** replays the minimizer spent *)
}

type result = {
  trials : int;
  seed : int;
  mutations : int;
  crashes : finding list;  (** unique by minimized digest *)
  planted : (Trace.corruption * int) list;
  detected : (Trace.corruption * int) list;
  escapes : (Trace.corruption * int) list;
      (** planted corruptions no oracle flagged — each one is a
          finding about the oracle set *)
  divergences : int;
      (** sampled replay-fixed-point failures; nonzero means a
          determinism bug *)
  execs : int;  (** total replays across shards, minimizer included *)
  execs_per_shard : (int * int) list;
      (** [(shard, execs)] for every shard — what the [--seconds]
          summary reports *)
  coverage : Coverage.t option;
      (** the accumulated map (corpus baseline included) when guided *)
  new_edges : int;  (** edges beyond the supplied corpus baseline *)
  promoted : Corpus.entry list;
      (** mutants that earned a corpus slot, in shard order — the
          caller persists them with {!Corpus.save} *)
  corpus_size : int;  (** supplied entries + promoted *)
}

val fuzz_configs : string list
(** Configs the fuzzer samples (all presets but native, which has no
    controller instances to corrupt). *)

val classes_for : string -> Trace.corruption list
(** Corruption classes whose oracles can fire under a config:
    freed-access needs EPT enforcement off, the EPT corruptions need
    an EPT, stale-grant works under any enabled config. *)

val run :
  ?trials:int ->
  ?seed:int ->
  ?mutations:int ->
  ?domains:int ->
  ?base:Trace.t ->
  ?corpus:Corpus.entry list ->
  ?coverage:bool ->
  ?minimize_probes:int ->
  unit ->
  result
(** Fuzz [trials] shards (default 100) from [seed] (default 2026),
    each applying 1–[mutations] (default 3) operators.  [base]
    replaces the per-shard mutation base with a fixed trace; otherwise
    shards draw seeded bases from [corpus] (default empty — each shard
    records a fresh two-trial batch).  Soak-shard bases mutate their
    scenario parameters rather than events.  [coverage] (default
    false) arms the coverage taps and fills the guidance fields of the
    result.  [domains] is placement only.  The global sanitizer
    request is saved and restored around the fleet. *)

val table : result -> Covirt_sim.Table.t
(** Summary: trials, unique crashes, divergences, execs (total and
    per-shard spread), the coverage block when guided (edges found,
    new edges, corpus size, new-edge rate), planted/detected per
    corruption class, one row per crash. *)
