(** Trace-mutation fuzzing with sanitizer oracles, sharded across
    fleet domains.

    One fuzz trial per shard: record a small base trial batch under a
    seed-chosen config, apply 1–[mutations] seeded mutation operators,
    replay the mutant under the full oracle battery (crash, shadow
    sanitizer, static verifier, sampled replay-fixed-point), and
    delta-debug any crash to a minimal reproducer in-shard.

    Every decision derives from [Rng.split_seed] of the shard seed and
    the merge is a pure fold in shard order, so the result — table
    included — is byte-identical for any [domains] (the fleet
    contract, tested at domains 1/2/7). *)

val mutation_names : string list
(** The six operators, for docs and tables: dup-input, reorder,
    truncate, mutate-fault, mutate-exit, inject-corrupt.  To add one:
    extend {!Fuzzer}'s [apply_mutation] (and this list), keeping every
    random draw on the shard rng. *)

type finding = {
  digest : string;  (** {!Trace.digest} of the minimized trace *)
  shard : int;  (** fuzz trial that found it *)
  slot : int;
  exn : string;  (** the escaping exception's text *)
  trace : Trace.t;  (** minimized reproducer *)
  probes : int;  (** replays the minimizer spent *)
}

type result = {
  trials : int;
  seed : int;
  mutations : int;
  crashes : finding list;  (** unique by minimized digest *)
  planted : (Trace.corruption * int) list;
  detected : (Trace.corruption * int) list;
  escapes : (Trace.corruption * int) list;
      (** planted corruptions no oracle flagged — each one is a
          finding about the oracle set *)
  divergences : int;
      (** sampled replay-fixed-point failures; nonzero means a
          determinism bug *)
}

val fuzz_configs : string list
(** Configs the fuzzer samples (all presets but native, which has no
    controller instances to corrupt). *)

val classes_for : string -> Trace.corruption list
(** Corruption classes whose oracles can fire under a config:
    freed-access needs EPT enforcement off, the EPT corruptions need
    an EPT, stale-grant works under any enabled config. *)

val run :
  ?trials:int ->
  ?seed:int ->
  ?mutations:int ->
  ?domains:int ->
  ?base:Trace.t ->
  ?minimize_probes:int ->
  unit ->
  result
(** Fuzz [trials] shards (default 100) from [seed] (default 2026),
    each applying 1–[mutations] (default 3) operators.  [base]
    replaces the per-shard recorded base trace with a fixed corpus
    trace (its scenario seeds still drive replay).  [domains] is
    placement only.  The global sanitizer request is saved and
    restored around the fleet. *)

val table : result -> Covirt_sim.Table.t
(** Summary: trials, unique crashes, divergences,
    planted/detected per corruption class, one row per crash. *)
