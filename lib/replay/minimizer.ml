(* Delta-debugging for crashing traces.

   Three reduction passes run to a joint fixpoint, each validated by
   actually replaying the candidate and asking the [keep] predicate
   (default: the crash oracle still fires):

   1. {b ddmin} over the trace's input events — the classic
      Zeller/Hildebrandt algorithm: try complements of ever-finer
      chunk partitions, restart at granularity 2 on progress;
   2. {b trial truncation}: shrink the batch to the last slot that
      still matters (slot numbers are {e preserved}, never compacted —
      each slot's machine seed derives from its index, so renumbering
      would change the run);
   3. {b payload shrinking}: per event, try the schedule-free trace,
      zero then halve every address/value field toward the smallest
      reproducer.

   Observed [Exit] events are dropped up front: replay ignores them,
   so a minimal reproducer is inputs-only (plus the scenario header).
   Every probe is a full replay, so [max_probes] bounds the work. *)

type stats = {
  probes : int;
  original_events : int;
  minimized_events : int;
  original_trials : int;
  minimized_trials : int;
}

let default_keep (r : Scenario.report) = r.Scenario.crashes <> []

let scenario_with_trials scenario trials =
  match scenario with
  | Trace.Trial_batch { config; seed; trials = _ } ->
      Trace.Trial_batch { config; seed; trials }
  | Trace.Soak_shard _ -> assert false

let rebuild ~base ~trials events =
  Trace.make ~schedule_json:base.Trace.schedule_json
    ~scenario:(scenario_with_trials base.Trace.scenario trials)
    events

(* Candidate payload replacements for one event, strongest reduction
   first.  Identity-producing replacements are filtered by the caller. *)
let shrink_event ev =
  let shrink_int n = List.sort_uniq compare [ 0; n / 2 ] in
  let shrink_exit (p : Trace.exit_payload) =
    match p with
    | Trace.X_ept { gpa; access; not_mapped } ->
        List.map
          (fun gpa -> Trace.X_ept { gpa; access; not_mapped })
          (shrink_int gpa)
    | Trace.X_icr { dest; vector; kind } ->
        List.map
          (fun vector -> Trace.X_icr { dest; vector; kind })
          (shrink_int vector)
    | Trace.X_msr { msr; write; value } ->
        List.map
          (fun v -> Trace.X_msr { msr; write; value = Int64.of_int v })
          (shrink_int (Int64.to_int value land max_int))
    | Trace.X_io { port; write; value } ->
        List.map
          (fun value -> Trace.X_io { port; write; value })
          (shrink_int value)
    | Trace.X_abort _ -> [ Trace.X_abort { what = "" } ]
    | _ -> []
  in
  let shrink_fault (f : Trace.fault_payload) =
    match f with
    | Trace.F_wild a -> List.map (fun a -> Trace.F_wild a) (shrink_int a)
    | Trace.F_phantom a -> List.map (fun a -> Trace.F_phantom a) (shrink_int a)
    | Trace.F_ipi { dest; vector } ->
        List.map (fun vector -> Trace.F_ipi { dest; vector })
          (shrink_int vector)
    | Trace.F_wedge { cycles } ->
        List.map (fun cycles -> Trace.F_wedge { cycles }) (shrink_int cycles)
    | _ -> []
  in
  match ev with
  | Trace.Fault { slot; fault } ->
      List.map (fun fault -> Trace.Fault { slot; fault }) (shrink_fault fault)
  | Trace.Inject_exit { slot; reason } ->
      List.map
        (fun reason -> Trace.Inject_exit { slot; reason })
        (shrink_exit reason)
  | Trace.Corrupt _ | Trace.Exit _ | Trace.Xemem_op _ | Trace.Spawn _ -> []

let minimize ?(keep = default_keep) ?preserve_edges ?(max_probes = 400)
    (trace : Trace.t) =
  (match trace.Trace.scenario with
  | Trace.Trial_batch _ -> ()
  | Trace.Soak_shard _ ->
      invalid_arg "Minimizer.minimize: only trial-batch traces minimize");
  let original_trials =
    match trace.Trace.scenario with
    | Trace.Trial_batch { trials; _ } -> trials
    | Trace.Soak_shard _ -> assert false
  in
  let probes = ref 0 in
  let budget () = !probes < max_probes in
  (* One validated probe: the candidate passes [keep], and — when
     [preserve_edges] is given — its replay still covers every
     preserved edge.  Probing with edges armed clears this domain's
     in-progress coverage map (the fuzzer captures its mutant's map
     before minimizing, so nothing is lost). *)
  let probe t =
    incr probes;
    match preserve_edges with
    | None -> keep (Replayer.run t)
    | Some edges ->
        let was = Coverage.collecting () in
        if not was then Coverage.arm ();
        ignore (Coverage.capture () : Coverage.t);
        let r = Replayer.run t in
        let cov = Coverage.capture () in
        if not was then Coverage.disarm ();
        keep r && Coverage.subset edges ~of_:cov
  in
  let check ~trials events = probe (rebuild ~base:trace ~trials events) in
  let inputs = Trace.inputs trace in
  if not (check ~trials:original_trials inputs) then
    (* The failure does not reproduce from inputs alone (or at all) —
       return the trace unreduced rather than "minimize" to a
       non-reproducer. *)
    ( trace,
      {
        probes = !probes;
        original_events = List.length trace.Trace.events;
        minimized_events = List.length trace.Trace.events;
        original_trials;
        minimized_trials = original_trials;
      } )
  else begin
    let trials = ref original_trials in
    (* -- pass 1: ddmin over the input list -- *)
    let split n lst =
      (* n chunks, sizes as equal as possible *)
      let len = List.length lst in
      let base = len / n and extra = len mod n in
      let rec go i rest acc =
        if i = n then List.rev acc
        else
          let size = base + if i < extra then 1 else 0 in
          let chunk = List.filteri (fun j _ -> j < size) rest in
          let rest = List.filteri (fun j _ -> j >= size) rest in
          go (i + 1) rest (chunk :: acc)
      in
      go 0 lst []
    in
    let ddmin events =
      let current = ref events in
      let n = ref 2 in
      while List.length !current >= 2 && !n <= List.length !current && budget ()
      do
        let chunks = split !n !current in
        let complements =
          List.mapi
            (fun i _ -> List.concat (List.filteri (fun j _ -> j <> i) chunks))
            chunks
        in
        match
          List.find_opt (fun c -> budget () && check ~trials:!trials c)
            complements
        with
        | Some c ->
            current := c;
            n := max (!n - 1) 2
        | None ->
            if !n >= List.length !current then n := List.length !current + 1
            else n := min (2 * !n) (List.length !current)
      done;
      !current
    in
    let current = ref (ddmin inputs) in
    (* -- cross-trial pass: drop every input of one slot at once.
       ddmin partitions by position, so inputs of the same trial can
       land in different chunks and survive individually; removing the
       whole trial's inputs in one probe catches reductions the
       positional partition misses (and empties slots so truncation
       below bites). -- *)
    let slot_drop () =
      List.iter
        (fun s ->
          if budget () && List.exists (fun ev -> Trace.slot_of ev = s) !current
          then
            let candidate =
              List.filter (fun ev -> Trace.slot_of ev <> s) !current
            in
            if check ~trials:!trials candidate then current := candidate)
        (List.sort_uniq compare (List.map Trace.slot_of !current))
    in
    slot_drop ();
    (* -- pass 2: truncate trials to the last slot that matters -- *)
    let needed_slots =
      let input_max =
        List.fold_left (fun m ev -> max m (Trace.slot_of ev)) (-1) !current
      in
      input_max
    in
    let try_trials t =
      if t < !trials && t >= 1 && budget () && check ~trials:t !current then begin
        trials := t;
        true
      end
      else false
    in
    ignore (try_trials (max 1 (needed_slots + 1)) : bool);
    (* -- pass 3: payload shrinking, to fixpoint with pass 1 -- *)
    let changed = ref true in
    while !changed && budget () do
      changed := false;
      (* one fewer event still failing? (ddmin can make new single
         removals possible after truncation/shrinks) *)
      let smaller = ddmin !current in
      if List.length smaller < List.length !current then begin
        current := smaller;
        changed := true
      end;
      List.iteri
        (fun i ev ->
          List.iter
            (fun ev' ->
              if ev' <> ev && budget () then
                let candidate =
                  List.mapi (fun j e -> if j = i then ev' else e) !current
                in
                if check ~trials:!trials candidate then begin
                  current := candidate;
                  changed := true
                end)
            (shrink_event ev))
        !current
    done;
    (* -- drop the schedule if the reproducer no longer needs it -- *)
    let final =
      let bare =
        Trace.make ~schedule_json:""
          ~scenario:(scenario_with_trials trace.Trace.scenario !trials)
          !current
      in
      if trace.Trace.schedule_json <> "" && budget () then begin
        if probe bare then bare
        else rebuild ~base:trace ~trials:!trials !current
      end
      else if trace.Trace.schedule_json = "" then bare
      else rebuild ~base:trace ~trials:!trials !current
    in
    ( final,
      {
        probes = !probes;
        original_events = List.length trace.Trace.events;
        minimized_events = List.length final.Trace.events;
        original_trials;
        minimized_trials = !trials;
      } )
  end
