(** The on-disk fuzz corpus.

    A corpus is a directory of content-addressed entries
    ([<digest>.cvcs]), each a trace paired with the coverage map its
    replay produced.  The fuzzer promotes a mutant here when its map
    contains an edge the accumulated corpus coverage lacks; later runs
    seed their mutation bases from these entries, which is what makes
    the guidance adaptive.

    Entry wire format (magic ["CVCS"], version 1): magic, varint
    version, varint-length coverage map, then the embedded trace in
    the {!Trace} wire format.  {!decode} is total — truncated or
    corrupted files yield a typed [Error], never an exception — and a
    stale coverage layout (different map size) is rejected loudly.

    Loading sorts entries by digest, so every fleet shard and host
    observes the same order: base selection from a corpus stays
    deterministic at any [--domains]. *)

val magic : string
(** First four bytes of every entry file: ["CVCS"]. *)

val version : int
(** Current entry format version (1).  {!decode} rejects any other. *)

val extension : string
(** Entry filename suffix: [".cvcs"]. *)

type entry = { trace : Trace.t; coverage : Coverage.t }

val digest : entry -> string
(** {!Trace.digest} of the embedded trace — the entry's filename
    stem. *)

val encode : entry -> string
val decode : string -> (entry, string) result

val to_file : entry -> path:string -> unit
val of_file : path:string -> (entry, string) result

val load : dir:string -> (entry list, string) result
(** Every [.cvcs] entry in [dir], digest-sorted.  A missing directory
    is an empty corpus ([Ok []]); a malformed entry fails the whole
    load with the offending filename in the error. *)

val save : dir:string -> entry -> string
(** Write the entry as [<digest>.cvcs] under [dir] (created if
    needed); returns the path.  Content-addressing makes concurrent
    saves of the same entry idempotent. *)

val union_coverage : entry list -> Coverage.t
(** The corpus's accumulated coverage — the promotion baseline. *)
