(* Coverage-guided trace-mutation fuzzing, sharded across fleet
   domains.

   One fuzz trial = one shard: pick a mutation base (an explicit
   [base], a seeded corpus entry, or a freshly recorded two-trial
   batch), apply 1–n seeded mutations, replay the mutant with the full
   oracle battery, and minimize any crash in-shard.  With [coverage]
   the replay runs under the Coverage taps; a mutant whose map holds
   an edge the corpus lacks is a promotion candidate, pre-shrunk
   in-shard under [Minimizer ~preserve_edges] so the corpus
   accumulates small entries without losing the edges that earned
   them.

   Every decision derives from the shard seed (Rng.split_seed), and
   the merge — including which candidates are promoted against the
   accumulating coverage — is a pure left fold in shard-index order,
   so the fuzz result is byte-identical whatever the domain count,
   exactly like the campaign and the soak.

   Mutation operators (the "where do I add a mutator" list —
   ARCHITECTURE.md points here):
   - dup-input: duplicate an input event within its slot
   - reorder: swap the slots of two input events
   - truncate: drop a suffix of the event list
   - mutate-fault: rewrite a recorded fault's payload fields
   - mutate-exit: replay an observed exit as a synthetic input with a
     perturbed register field
   - inject-corrupt: plant one of the four corruption classes, chosen
     among the classes the trial's config can detect
   - xemem-interleave: insert an attach/detach pair across two seeded
     slots (stressing the name service and grant lifecycle)
   - spawn-enclave: launch an extra enclave in a seeded zone,
     widening the run to a multi-enclave scenario

   Soak-shard bases (from the corpus) mutate their scenario
   parameters instead — seed, trial range, sanitizer arming — since
   a soak replay regenerates its inputs from the shard seed. *)

module Rng = Covirt_sim.Rng

let mutation_names =
  [
    "dup-input"; "reorder"; "truncate"; "mutate-fault"; "mutate-exit";
    "inject-corrupt"; "xemem-interleave"; "spawn-enclave";
  ]

type finding = {
  digest : string;  (** of the {e minimized} trace *)
  shard : int;
  slot : int;
  exn : string;
  trace : Trace.t;  (** minimized reproducer *)
  probes : int;  (** replays the minimizer spent *)
}

type result = {
  trials : int;
  seed : int;
  mutations : int;
  crashes : finding list;
  planted : (Trace.corruption * int) list;
  detected : (Trace.corruption * int) list;
  escapes : (Trace.corruption * int) list;
      (** planted in a trial where no oracle flagged the class *)
  divergences : int;
  execs : int;
  execs_per_shard : (int * int) list;
  coverage : Coverage.t option;
  new_edges : int;
  promoted : Corpus.entry list;
  corpus_size : int;
}

(* Configs worth fuzzing (native has no controller instances to
   corrupt), and the corruption classes whose oracles can fire under
   each: EPT corruptions need an EPT, freed-access needs EPT
   enforcement {e off} (a protected config suppresses the stale store
   before the shadow sees it). *)
let fuzz_configs = [ "none"; "mem"; "ipi"; "mem+ipi"; "full" ]

let classes_for = function
  | "none" -> [ Trace.Freed_access; Trace.Stale_grant ]
  | "ipi" -> [ Trace.Stale_grant ]
  | _ -> [ Trace.Cross_owner; Trace.Free_map; Trace.Stale_grant ]

let pick rng lst = List.nth lst (Rng.int rng ~bound:(List.length lst))

(* --- mutation operators ---------------------------------------------- *)

let input_positions events =
  List.concat
    (List.mapi (fun i ev -> if Trace.is_input ev then [ i ] else []) events)

let exit_positions events =
  List.concat
    (List.mapi
       (fun i ev -> match ev with Trace.Exit _ -> [ i ] | _ -> [])
       events)

let with_slot slot = function
  | Trace.Fault { fault; _ } -> Trace.Fault { slot; fault }
  | Trace.Inject_exit { reason; _ } -> Trace.Inject_exit { slot; reason }
  | Trace.Corrupt { cls; _ } -> Trace.Corrupt { slot; cls }
  | Trace.Xemem_op { attach; _ } -> Trace.Xemem_op { slot; attach }
  | Trace.Spawn { zone; _ } -> Trace.Spawn { slot; zone }
  | Trace.Exit _ as e -> e

let mutate_fault_payload rng = function
  | Trace.F_wild _ -> Trace.F_wild (Rng.int rng ~bound:(1 lsl 33))
  | Trace.F_phantom _ -> Trace.F_phantom (Rng.int rng ~bound:(1 lsl 33))
  | Trace.F_ipi _ ->
      Trace.F_ipi
        { dest = Rng.int rng ~bound:8; vector = Rng.int rng ~bound:256 }
  | Trace.F_wedge _ ->
      Trace.F_wedge { cycles = 1 + Rng.int rng ~bound:10_000_000 }
  | (Trace.F_msr | Trace.F_port | Trace.F_double) as f ->
      (* payload-free faults mutate into a payload-bearing one *)
      ignore f;
      Trace.F_wild (Rng.int rng ~bound:(1 lsl 33))

let mutate_exit_payload rng = function
  | Trace.X_ept { access; not_mapped; _ } ->
      Trace.X_ept { gpa = Rng.int rng ~bound:(1 lsl 33); access; not_mapped }
  | Trace.X_icr { kind; _ } ->
      Trace.X_icr
        { dest = Rng.int rng ~bound:8; vector = Rng.int rng ~bound:256; kind }
  | Trace.X_msr { msr; write; _ } ->
      Trace.X_msr { msr; write; value = Rng.bits64 rng }
  | Trace.X_io { port; write; _ } ->
      Trace.X_io { port; write; value = Rng.int rng ~bound:(1 lsl 16) }
  | Trace.X_intr _ -> Trace.X_intr { vector = Rng.int rng ~bound:256 }
  | p -> p

(* Insert an input ahead of its slot's other inputs (so it lands
   before a same-slot fault can panic the node). *)
let insert_input ev events =
  let slot = Trace.slot_of ev in
  let rec insert = function
    | [] -> [ ev ]
    | e :: rest when Trace.is_input e && Trace.slot_of e = slot ->
        ev :: e :: rest
    | e :: rest -> e :: insert rest
  in
  insert events

let apply_mutation rng ~config ~trials events =
  let op = Rng.int rng ~bound:8 in
  let inputs = input_positions events in
  let exits = exit_positions events in
  match op with
  | 0 when inputs <> [] ->
      (* dup-input *)
      let i = pick rng inputs in
      let ev = List.nth events i in
      List.concat (List.mapi (fun j e -> if j = i then [ e; ev ] else [ e ]) events)
  | 1 when List.length inputs >= 2 ->
      (* reorder: swap the slots of two inputs *)
      let i = pick rng inputs in
      let j = pick rng inputs in
      let si = Trace.slot_of (List.nth events i) in
      let sj = Trace.slot_of (List.nth events j) in
      List.mapi
        (fun k e ->
          if k = i then with_slot sj e
          else if k = j then with_slot si e
          else e)
        events
  | 2 when events <> [] ->
      (* truncate: drop a suffix *)
      let keep = 1 + Rng.int rng ~bound:(List.length events) in
      List.filteri (fun i _ -> i < keep) events
  | 3 when inputs <> [] -> (
      (* mutate-fault *)
      let faults =
        List.filter
          (fun i ->
            match List.nth events i with Trace.Fault _ -> true | _ -> false)
          inputs
      in
      match faults with
      | [] -> events
      | _ ->
          let i = pick rng faults in
          List.mapi
            (fun j e ->
              match (j = i, e) with
              | true, Trace.Fault { slot; fault } ->
                  Trace.Fault { slot; fault = mutate_fault_payload rng fault }
              | _ -> e)
            events)
  | 4 when exits <> [] ->
      (* mutate-exit: replay a perturbed observed exit as an input *)
      let i = pick rng exits in
      let ev =
        match List.nth events i with
        | Trace.Exit { slot; reason; _ } ->
            Trace.Inject_exit
              { slot; reason = mutate_exit_payload rng reason }
        | e -> e
      in
      events @ [ ev ]
  | 6 ->
      (* xemem-interleave: an attach and a detach across two seeded
         slots — same-slot order is attach first when the slots
         collide, detach-before-attach when they don't, so both
         lifecycle orders get exercised. *)
      let bound = max 1 trials in
      let s_attach = Rng.int rng ~bound in
      let s_detach = Rng.int rng ~bound in
      insert_input
        (Trace.Xemem_op { slot = s_attach; attach = true })
        (insert_input
           (Trace.Xemem_op { slot = s_detach; attach = false })
           events)
  | 7 ->
      (* spawn-enclave *)
      let slot = Rng.int rng ~bound:(max 1 trials) in
      let zone = Rng.int rng ~bound:2 in
      insert_input (Trace.Spawn { slot; zone }) events
  | _ ->
      (* inject-corrupt *)
      let cls = pick rng (classes_for config) in
      let slot = Rng.int rng ~bound:(max 1 trials) in
      insert_input (Trace.Corrupt { slot; cls }) events

(* A soak-shard base regenerates its inputs from the shard seed, so
   mutation perturbs the scenario parameters instead of the events. *)
let mutate_soak rng = function
  | Trace.Soak_shard { seed; lo; hi; sanitize } -> (
      match Rng.int rng ~bound:3 with
      | 0 -> Trace.Soak_shard { seed = Rng.int rng ~bound:1_000_000; lo; hi; sanitize }
      | 1 ->
          let hi = lo + 1 + Rng.int rng ~bound:(max 1 (hi - lo + 2)) in
          Trace.Soak_shard { seed; lo; hi; sanitize }
      | _ -> Trace.Soak_shard { seed; lo; hi; sanitize = not sanitize })
  | s -> s

(* --- one fuzz trial --------------------------------------------------- *)

type shard_out = {
  s_crashes : finding list;
  s_planted : Trace.corruption list;
  s_detected : Trace.corruption list;
  s_escapes : Trace.corruption list;
  s_diverged : bool;
  s_mutant : Trace.t;
  s_coverage : Coverage.t option;
  s_execs : int;
}

let fuzz_one ~shard_seed ~index ~base ~corpus ~guided ~baseline ~mutations
    ~minimize_probes =
  let rng = Rng.create ~seed:shard_seed in
  let execs = ref 0 in
  let config = pick rng fuzz_configs in
  let base_trace =
    match (base, corpus) with
    | Some t, _ -> t
    | None, [] ->
        incr execs;
        (Scenario.record ~config
           ~seed:(Rng.split_seed ~seed:shard_seed ~index:1)
           ~trials:2 ())
          .Scenario.trace
    | None, entries -> (pick rng entries).Corpus.trace
  in
  let config, trials =
    match base_trace.Trace.scenario with
    | Trace.Trial_batch { config; trials; _ } -> (config, trials)
    | Trace.Soak_shard _ -> (config, 2)
  in
  let n_mut = 1 + Rng.int rng ~bound:(max 1 mutations) in
  let mutant =
    match base_trace.Trace.scenario with
    | Trace.Soak_shard _ ->
        let scenario = ref base_trace.Trace.scenario in
        for _ = 1 to n_mut do
          scenario := mutate_soak rng !scenario
        done;
        Trace.make ~schedule_json:base_trace.Trace.schedule_json
          ~scenario:!scenario base_trace.Trace.events
    | Trace.Trial_batch _ ->
        let events = ref base_trace.Trace.events in
        for _ = 1 to n_mut do
          events := apply_mutation rng ~config ~trials !events
        done;
        Trace.make ~schedule_json:base_trace.Trace.schedule_json
          ~scenario:base_trace.Trace.scenario !events
  in
  let was_collecting = Coverage.collecting () in
  if guided then begin
    Coverage.arm ();
    (* discard anything base recording contributed *)
    ignore (Coverage.capture () : Coverage.t)
  end;
  incr execs;
  let report = Replayer.run mutant in
  let cov = if guided then Some (Coverage.capture ()) else None in
  (* The determinism oracle, sampled: replay the re-capture and demand
     a fixed point. *)
  let diverged =
    index mod 8 = 0
    &&
    (incr execs;
     not
       (Trace.equal report.Scenario.trace
          (Replayer.run report.Scenario.trace).Scenario.trace))
  in
  let minimizable =
    match mutant.Trace.scenario with
    | Trace.Trial_batch _ -> true
    | Trace.Soak_shard _ -> false
  in
  let crashes =
    List.map
      (fun (slot, exn) ->
        let minimized, probes =
          if minimizable then begin
            let m, stats =
              Minimizer.minimize ~max_probes:minimize_probes mutant
            in
            execs := !execs + stats.Minimizer.probes;
            (m, stats.Minimizer.probes)
          end
          else (mutant, 0)
        in
        {
          digest = Trace.digest minimized;
          shard = index;
          slot;
          exn;
          trace = minimized;
          probes;
        })
      report.Scenario.crashes
  in
  (* Promotion candidate: pre-shrink it in-shard, keeping its whole
     map covered, so whatever the merge fold promotes is already
     small.  The global fold still decides — an edge new against the
     shared baseline may have been claimed by an earlier shard. *)
  let mutant, cov =
    match cov with
    | Some c
      when minimizable && crashes = []
           && Coverage.new_edges c ~base:baseline > 0 -> (
        let m, stats =
          Minimizer.minimize
            ~keep:(fun _ -> true)
            ~preserve_edges:c
            ~max_probes:(min minimize_probes 32)
            mutant
        in
        execs := !execs + stats.Minimizer.probes;
        (m, Some c))
    | _ -> (mutant, cov)
  in
  if guided && not was_collecting then Coverage.disarm ();
  {
    s_crashes = crashes;
    s_planted = report.Scenario.planted;
    s_detected = report.Scenario.detected;
    s_escapes =
      List.filter
        (fun cls -> not (List.mem cls report.Scenario.detected))
        report.Scenario.planted;
    s_diverged = diverged;
    s_mutant = mutant;
    s_coverage = cov;
    s_execs = !execs;
  }

(* --- the sharded run -------------------------------------------------- *)

let count_classes occurrences =
  List.filter_map
    (fun cls ->
      match List.length (List.filter (( = ) cls) occurrences) with
      | 0 -> None
      | n -> Some (cls, n))
    Trace.corruptions

let run ?(trials = 100) ?(seed = 2026) ?(mutations = 3) ?domains ?base
    ?(corpus = []) ?(coverage = false) ?(minimize_probes = 64) () =
  (* The sticky sanitizer request must move outside the fleet: every
     shard's [Covirt.enable] sets it (config.sanitize), so restore the
     caller's state only after all shards joined. *)
  let had_request = Covirt_hw.Sanitize.requested () in
  let baseline =
    if coverage then Corpus.union_coverage corpus else Coverage.empty
  in
  let outs =
    Covirt_fleet.Fleet.map ?domains ~seed ~shards:trials
      (fun ~shard_seed ~index ->
        fuzz_one ~shard_seed ~index ~base ~corpus ~guided:coverage ~baseline
          ~mutations ~minimize_probes)
  in
  if not had_request then Covirt_hw.Sanitize.release ();
  let outs = Array.to_list outs in
  let all f = List.concat_map f outs in
  let crashes =
    (* Dedupe by minimized digest, keeping the first shard that found
       each — a pure fold in shard order. *)
    List.fold_left
      (fun acc c ->
        if List.exists (fun c' -> c'.digest = c.digest) acc then acc
        else acc @ [ c ])
      []
      (all (fun o -> o.s_crashes))
  in
  (* Promotion: a pure left fold in shard-index order against the
     accumulating coverage, starting from the corpus baseline — the
     same entries are promoted at any domain count.  Crashing mutants
     are never promoted (they become reproducers instead). *)
  let promoted, total_cov =
    List.fold_left
      (fun (acc, cov) o ->
        match o.s_coverage with
        | Some c when o.s_crashes = [] && Coverage.new_edges c ~base:cov > 0 ->
            ( acc @ [ { Corpus.trace = o.s_mutant; coverage = c } ],
              Coverage.union cov c )
        | Some c -> (acc, Coverage.union cov c)
        | None -> (acc, cov))
      ([], baseline) outs
  in
  {
    trials;
    seed;
    mutations;
    crashes;
    planted = count_classes (all (fun o -> o.s_planted));
    detected = count_classes (all (fun o -> o.s_detected));
    escapes = count_classes (all (fun o -> o.s_escapes));
    divergences = List.length (List.filter (fun o -> o.s_diverged) outs);
    execs = List.fold_left (fun acc o -> acc + o.s_execs) 0 outs;
    execs_per_shard = List.mapi (fun i o -> (i, o.s_execs)) outs;
    coverage = (if coverage then Some total_cov else None);
    new_edges =
      (if coverage then Coverage.new_edges total_cov ~base:baseline else 0);
    promoted;
    corpus_size = List.length corpus + List.length promoted;
  }

let table r =
  let t = Covirt_sim.Table.create ~columns:[ "metric"; "value" ] in
  let add m v = Covirt_sim.Table.add_row t [ m; v ] in
  add "fuzz trials" (string_of_int r.trials);
  add "seed" (string_of_int r.seed);
  add "crashes (unique)" (string_of_int (List.length r.crashes));
  add "replay divergences" (string_of_int r.divergences);
  add "execs (replays)" (string_of_int r.execs);
  (match r.execs_per_shard with
  | [] -> ()
  | (_, e0) :: _ ->
      let lo, hi =
        List.fold_left
          (fun (lo, hi) (_, e) -> (min lo e, max hi e))
          (e0, e0) r.execs_per_shard
      in
      add "execs/shard min..max" (Printf.sprintf "%d..%d" lo hi));
  (match r.coverage with
  | None -> ()
  | Some cov ->
      add "coverage edges"
        (Printf.sprintf "%d/%d" (Coverage.count cov) Coverage.total);
      add "new edges" (string_of_int r.new_edges);
      add "corpus size"
        (Printf.sprintf "%d (+%d promoted)" r.corpus_size
           (List.length r.promoted));
      add "new-edge rate"
        (Printf.sprintf "%d/%d mutants" (List.length r.promoted) r.trials));
  List.iter
    (fun cls ->
      let get l = Option.value ~default:0 (List.assoc_opt cls l) in
      add
        (Trace.corruption_name cls ^ " planted/detected")
        (Printf.sprintf "%d/%d" (get r.planted) (get r.detected)))
    Trace.corruptions;
  List.iter
    (fun f ->
      add
        ("crash " ^ String.sub f.digest 0 12)
        (Printf.sprintf "shard %d slot %d: %s" f.shard f.slot f.exn))
    r.crashes;
  t
