(* Trace-mutation fuzzing, sharded across fleet domains.

   One fuzz trial = one shard: record a small base batch under a
   seed-chosen config, apply 1–3 seeded mutations, replay the mutant
   with the full oracle battery, and minimize any crash in-shard.
   Every decision derives from the shard seed (Rng.split_seed), and
   the merge is a pure left fold in shard-index order — so the fuzz
   result is byte-identical whatever the domain count, exactly like
   the campaign and the soak.

   Mutation operators (the "where do I add a mutator" list —
   ARCHITECTURE.md points here):
   - dup-input: duplicate an input event within its slot
   - reorder: swap the slots of two input events
   - truncate: drop a suffix of the event list
   - mutate-fault: rewrite a recorded fault's payload fields
   - mutate-exit: replay an observed exit as a synthetic input with a
     perturbed register field
   - inject-corrupt: plant one of the four corruption classes, chosen
     among the classes the trial's config can detect *)

module Rng = Covirt_sim.Rng

let mutation_names =
  [
    "dup-input"; "reorder"; "truncate"; "mutate-fault"; "mutate-exit";
    "inject-corrupt";
  ]

type finding = {
  digest : string;  (** of the {e minimized} trace *)
  shard : int;
  slot : int;
  exn : string;
  trace : Trace.t;  (** minimized reproducer *)
  probes : int;  (** replays the minimizer spent *)
}

type result = {
  trials : int;
  seed : int;
  mutations : int;
  crashes : finding list;
  planted : (Trace.corruption * int) list;
  detected : (Trace.corruption * int) list;
  escapes : (Trace.corruption * int) list;
      (** planted in a trial where no oracle flagged the class *)
  divergences : int;
}

(* Configs worth fuzzing (native has no controller instances to
   corrupt), and the corruption classes whose oracles can fire under
   each: EPT corruptions need an EPT, freed-access needs EPT
   enforcement {e off} (a protected config suppresses the stale store
   before the shadow sees it). *)
let fuzz_configs = [ "none"; "mem"; "ipi"; "mem+ipi"; "full" ]

let classes_for = function
  | "none" -> [ Trace.Freed_access; Trace.Stale_grant ]
  | "ipi" -> [ Trace.Stale_grant ]
  | _ -> [ Trace.Cross_owner; Trace.Free_map; Trace.Stale_grant ]

let pick rng lst = List.nth lst (Rng.int rng ~bound:(List.length lst))

(* --- mutation operators ---------------------------------------------- *)

let input_positions events =
  List.concat
    (List.mapi (fun i ev -> if Trace.is_input ev then [ i ] else []) events)

let exit_positions events =
  List.concat
    (List.mapi
       (fun i ev -> match ev with Trace.Exit _ -> [ i ] | _ -> [])
       events)

let with_slot slot = function
  | Trace.Fault { fault; _ } -> Trace.Fault { slot; fault }
  | Trace.Inject_exit { reason; _ } -> Trace.Inject_exit { slot; reason }
  | Trace.Corrupt { cls; _ } -> Trace.Corrupt { slot; cls }
  | Trace.Exit _ as e -> e

let mutate_fault_payload rng = function
  | Trace.F_wild _ -> Trace.F_wild (Rng.int rng ~bound:(1 lsl 33))
  | Trace.F_phantom _ -> Trace.F_phantom (Rng.int rng ~bound:(1 lsl 33))
  | Trace.F_ipi _ ->
      Trace.F_ipi
        { dest = Rng.int rng ~bound:8; vector = Rng.int rng ~bound:256 }
  | Trace.F_wedge _ ->
      Trace.F_wedge { cycles = 1 + Rng.int rng ~bound:10_000_000 }
  | (Trace.F_msr | Trace.F_port | Trace.F_double) as f ->
      (* payload-free faults mutate into a payload-bearing one *)
      ignore f;
      Trace.F_wild (Rng.int rng ~bound:(1 lsl 33))

let mutate_exit_payload rng = function
  | Trace.X_ept { access; not_mapped; _ } ->
      Trace.X_ept { gpa = Rng.int rng ~bound:(1 lsl 33); access; not_mapped }
  | Trace.X_icr { kind; _ } ->
      Trace.X_icr
        { dest = Rng.int rng ~bound:8; vector = Rng.int rng ~bound:256; kind }
  | Trace.X_msr { msr; write; _ } ->
      Trace.X_msr { msr; write; value = Rng.bits64 rng }
  | Trace.X_io { port; write; _ } ->
      Trace.X_io { port; write; value = Rng.int rng ~bound:(1 lsl 16) }
  | Trace.X_intr _ -> Trace.X_intr { vector = Rng.int rng ~bound:256 }
  | p -> p

let apply_mutation rng ~config ~trials events =
  let op = Rng.int rng ~bound:6 in
  let inputs = input_positions events in
  let exits = exit_positions events in
  match op with
  | 0 when inputs <> [] ->
      (* dup-input *)
      let i = pick rng inputs in
      let ev = List.nth events i in
      List.concat (List.mapi (fun j e -> if j = i then [ e; ev ] else [ e ]) events)
  | 1 when List.length inputs >= 2 ->
      (* reorder: swap the slots of two inputs *)
      let i = pick rng inputs in
      let j = pick rng inputs in
      let si = Trace.slot_of (List.nth events i) in
      let sj = Trace.slot_of (List.nth events j) in
      List.mapi
        (fun k e ->
          if k = i then with_slot sj e
          else if k = j then with_slot si e
          else e)
        events
  | 2 when events <> [] ->
      (* truncate: drop a suffix *)
      let keep = 1 + Rng.int rng ~bound:(List.length events) in
      List.filteri (fun i _ -> i < keep) events
  | 3 when inputs <> [] -> (
      (* mutate-fault *)
      let faults =
        List.filter
          (fun i ->
            match List.nth events i with Trace.Fault _ -> true | _ -> false)
          inputs
      in
      match faults with
      | [] -> events
      | _ ->
          let i = pick rng faults in
          List.mapi
            (fun j e ->
              match (j = i, e) with
              | true, Trace.Fault { slot; fault } ->
                  Trace.Fault { slot; fault = mutate_fault_payload rng fault }
              | _ -> e)
            events)
  | 4 when exits <> [] ->
      (* mutate-exit: replay a perturbed observed exit as an input *)
      let i = pick rng exits in
      let ev =
        match List.nth events i with
        | Trace.Exit { slot; reason; _ } ->
            Trace.Inject_exit
              { slot; reason = mutate_exit_payload rng reason }
        | e -> e
      in
      events @ [ ev ]
  | _ ->
      (* inject-corrupt: planted ahead of the slot's other inputs so
         the corruption lands before a same-slot fault can panic the
         node (the oracles still run post-mortem either way). *)
      let cls = pick rng (classes_for config) in
      let slot = Rng.int rng ~bound:(max 1 trials) in
      let ev = Trace.Corrupt { slot; cls } in
      let rec insert = function
        | [] -> [ ev ]
        | e :: rest when Trace.is_input e && Trace.slot_of e = slot ->
            ev :: e :: rest
        | e :: rest -> e :: insert rest
      in
      insert events

(* --- one fuzz trial --------------------------------------------------- *)

type shard_out = {
  s_crashes : finding list;
  s_planted : Trace.corruption list;
  s_detected : Trace.corruption list;
  s_escapes : Trace.corruption list;
  s_diverged : bool;
}

let fuzz_one ~shard_seed ~index ~base ~mutations ~minimize_probes =
  let rng = Rng.create ~seed:shard_seed in
  let config = pick rng fuzz_configs in
  let base_trace =
    match base with
    | Some t -> t
    | None ->
        (Scenario.record ~config
           ~seed:(Rng.split_seed ~seed:shard_seed ~index:1)
           ~trials:2 ())
          .Scenario.trace
  in
  let config, trials =
    match base_trace.Trace.scenario with
    | Trace.Trial_batch { config; trials; _ } -> (config, trials)
    | Trace.Soak_shard _ -> (config, 2)
  in
  let n_mut = 1 + Rng.int rng ~bound:(max 1 mutations) in
  let events = ref base_trace.Trace.events in
  for _ = 1 to n_mut do
    events := apply_mutation rng ~config ~trials !events
  done;
  let mutant =
    Trace.make ~schedule_json:base_trace.Trace.schedule_json
      ~scenario:base_trace.Trace.scenario !events
  in
  let report = Scenario.replay mutant in
  (* The determinism oracle, sampled: replay the re-capture and demand
     a fixed point. *)
  let diverged =
    index mod 8 = 0
    && not
         (Trace.equal report.Scenario.trace
            (Scenario.replay report.Scenario.trace).Scenario.trace)
  in
  let crashes =
    List.map
      (fun (slot, exn) ->
        let minimized, stats =
          Minimizer.minimize ~max_probes:minimize_probes mutant
        in
        {
          digest = Trace.digest minimized;
          shard = index;
          slot;
          exn;
          trace = minimized;
          probes = stats.Minimizer.probes;
        })
      report.Scenario.crashes
  in
  {
    s_crashes = crashes;
    s_planted = report.Scenario.planted;
    s_detected = report.Scenario.detected;
    s_escapes =
      List.filter
        (fun cls -> not (List.mem cls report.Scenario.detected))
        report.Scenario.planted;
    s_diverged = diverged;
  }

(* --- the sharded run -------------------------------------------------- *)

let count_classes occurrences =
  List.filter_map
    (fun cls ->
      match List.length (List.filter (( = ) cls) occurrences) with
      | 0 -> None
      | n -> Some (cls, n))
    Trace.corruptions

let run ?(trials = 100) ?(seed = 2026) ?(mutations = 3) ?domains ?base
    ?(minimize_probes = 64) () =
  (* The sticky sanitizer request must move outside the fleet: every
     shard's [Covirt.enable] sets it (config.sanitize), so restore the
     caller's state only after all shards joined. *)
  let had_request = Covirt_hw.Sanitize.requested () in
  let outs =
    Covirt_fleet.Fleet.map ?domains ~seed ~shards:trials
      (fun ~shard_seed ~index ->
        fuzz_one ~shard_seed ~index ~base ~mutations ~minimize_probes)
  in
  if not had_request then Covirt_hw.Sanitize.release ();
  let outs = Array.to_list outs in
  let all f = List.concat_map f outs in
  let crashes =
    (* Dedupe by minimized digest, keeping the first shard that found
       each — a pure fold in shard order. *)
    List.fold_left
      (fun acc c ->
        if List.exists (fun c' -> c'.digest = c.digest) acc then acc
        else acc @ [ c ])
      []
      (all (fun o -> o.s_crashes))
  in
  {
    trials;
    seed;
    mutations;
    crashes;
    planted = count_classes (all (fun o -> o.s_planted));
    detected = count_classes (all (fun o -> o.s_detected));
    escapes = count_classes (all (fun o -> o.s_escapes));
    divergences =
      List.length (List.filter (fun o -> o.s_diverged) outs);
  }

let table r =
  let t = Covirt_sim.Table.create ~columns:[ "metric"; "value" ] in
  let add m v = Covirt_sim.Table.add_row t [ m; v ] in
  add "fuzz trials" (string_of_int r.trials);
  add "seed" (string_of_int r.seed);
  add "crashes (unique)" (string_of_int (List.length r.crashes));
  add "replay divergences" (string_of_int r.divergences);
  List.iter
    (fun cls ->
      let get l = Option.value ~default:0 (List.assoc_opt cls l) in
      add
        (Trace.corruption_name cls ^ " planted/detected")
        (Printf.sprintf "%d/%d" (get r.planted) (get r.detected)))
    Trace.corruptions;
  List.iter
    (fun f ->
      add
        ("crash " ^ String.sub f.digest 0 12)
        (Printf.sprintf "shard %d slot %d: %s" f.shard f.slot f.exn))
    r.crashes;
  t
