(* The replayer: re-execute a trace and check the replay contract by
   re-capturing and comparing bytes.

   Trial batches replay through [Scenario.replay] (inputs are applied
   slot by slot).  Soak shards replay by re-running the shard — the
   soak is a pure function of its shard seed, so the recorded inputs
   are regenerated rather than applied; the recorder ring has the same
   capacity as at record time, so even an overflowing shard drops the
   same prefix and the capture is byte-comparable. *)

module Soak = Covirt_resilience.Soak

let replay_soak ~seed ~lo ~hi ~sanitize =
  let was_recording = Recorder.recording () in
  Recorder.arm ();
  Coverage.hit_soak ();
  let crash = ref None in
  (try
     ignore
       (Soak.replay_shard ~on_trial:Recorder.set_slot ~shard_seed:seed ~lo ~hi
          ~sanitize ()
         : Soak.result)
   with e when not (Scenario.simulated_exn e) ->
     crash := Some (Printexc.to_string e));
  if !crash <> None then Coverage.hit_crash ();
  let events, dropped = Recorder.capture () in
  if not was_recording then Recorder.disarm ();
  let trace =
    Trace.make ~dropped ~scenario:(Trace.Soak_shard { seed; lo; hi; sanitize })
      events
  in
  {
    Scenario.trace;
    results = [];
    crashes = (match !crash with None -> [] | Some c -> [ (lo, c) ]);
    planted = [];
    detected = [];
    sanitizer_flags = 0;
  }

let run (trace : Trace.t) =
  match trace.Trace.scenario with
  | Trace.Trial_batch _ -> Scenario.replay trace
  | Trace.Soak_shard { seed; lo; hi; sanitize } ->
      replay_soak ~seed ~lo ~hi ~sanitize

type verification = {
  report : Scenario.report;
  replay_identical : bool;
  matches_original : bool;
}

let verify trace =
  let first = run trace in
  let second = run first.Scenario.trace in
  {
    report = first;
    replay_identical = Trace.equal first.Scenario.trace second.Scenario.trace;
    matches_original = Trace.equal trace first.Scenario.trace;
  }
