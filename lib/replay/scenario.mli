(** The scenario runner: executes trace scenarios in record or replay
    mode with the oracle battery attached.

    A {e trial batch} is the campaign-shaped stack: per trial, a fresh
    2-zone machine (seed split from the batch seed by slot), an
    attacker enclave on core 1 / zone 0 and a victim on core 3 /
    zone 1, one fault injected into the attacker.  Record mode draws
    the fault from the seeded injector and captures the run; replay
    mode re-executes a trace by injecting its recorded inputs instead
    of drawing — and re-captures, so bit-identity is checkable
    ({!Replayer.verify}).

    Oracles, all zero-cost for the simulated run:
    - {b crash}: any exception escaping a trial other than the
      simulated outcomes ({!Covirt_hw.Machine.Node_panic},
      {!Covirt_hw.Vmx.Vm_terminated});
    - {b sanitizer}: the shadow ownership sanitizer's violation-count
      delta (replay always arms it);
    - {b verifier}: a static EPT/grant sweep after any trial that
      planted a corruption, with typed per-class detection. *)

module Fault_injector = Covirt_resilience.Fault_injector

type trial_outcome = Survived | Node_down | Collateral

val outcome_name : trial_outcome -> string

type trial_result = {
  slot : int;
  outcome : trial_outcome;
  crash : string option;  (** crash-oracle text, [None] if clean *)
  sanitizer_delta : int;
  verifier_violations : int;
  planted : Trace.corruption list;  (** classes this trial applied *)
  detected : Trace.corruption list;  (** planted classes an oracle saw *)
}

type report = {
  trace : Trace.t;  (** the (re-)captured trace *)
  results : trial_result list;
  crashes : (int * string) list;  (** (slot, exception) pairs *)
  planted : Trace.corruption list;
  detected : Trace.corruption list;
  sanitizer_flags : int;  (** summed sanitizer deltas *)
}

val config_of_name : string -> Covirt.Config.t option
(** Resolve a scenario config name: the campaign presets plus
    ["full"]. *)

val config_names : string list
(** The names {!config_of_name} accepts (presets plus ["full"]). *)

val simulated_exn : exn -> bool
(** Whether an exception is a legitimate simulated outcome rather
    than a crash. *)

val violation_matches : Trace.corruption -> Covirt_analysis.Violation.t -> bool
(** The typed detection map: which violation kinds count as detecting
    which planted corruption class (cross-owner ←
    cross-owner/corrupt-mapping; free-map ← unbacked/corrupt-mapping;
    stale-grant ← stale-grant; freed-access ← shadow freed-access). *)

val record :
  ?schedule:Fault_injector.t ->
  ?sanitize:bool ->
  config:string ->
  seed:int ->
  trials:int ->
  unit ->
  report
(** Run a trial batch with the recorder armed and return its report;
    [report.trace] is the captured {!Trace.Trial_batch}.  Without
    [schedule] each trial draws one fault from an injector seeded with
    the trial seed; with it, the schedule's due faults are injected
    instead (its JSON rides in the trace).  [sanitize] (default true)
    arms the shadow oracle. *)

val replay : Trace.t -> report
(** Re-execute a {!Trace.Trial_batch}: per slot, apply the trace's
    input events in order — faults through the injector, synthetic
    exits through {!Covirt_hw.Vmx.deliver_exit} on the attacker's boot
    core, corruptions through the analyze-style planting — while
    re-capturing, so [report.trace] is comparable to the input.
    [Invalid_argument] on a {!Trace.Soak_shard} (those replay through
    {!Replayer}). *)
