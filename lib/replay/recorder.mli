(** The trace recorder.

    Taps the two nondeterministic boundaries of a simulated run — VM
    exit dispatch ({!Covirt_hw.Vmx.exit_tap}) and fault application
    ({!Covirt_resilience.Fault_injector.inject_tap}) — into a
    Domain-local ring of {!Trace.event}s.  Per-domain state means every
    fleet shard records its own trial independently.

    The zero-cost contract (same as lib/obs and the sanitizer): each
    tap site is a single boolean branch when disarmed, and the tap
    bodies never charge simulated cycles or consume randomness — so a
    run with the recorder armed is byte-identical to the same run with
    it off (the golden gate in test_replay.ml). *)

open Covirt_hw
module Fault_injector = Covirt_resilience.Fault_injector

(** {1 Payload conversions}

    Total, inverse pairs between the simulator's types and the
    self-contained trace payloads.  Kept here (not in {!Trace}) so the
    codec has no simulator dependencies: when
    {!Covirt_hw.Vmcs.exit_reason} grows a constructor, this module
    fails to compile instead of the format drifting. *)

val of_exit_reason : Vmcs.exit_reason -> Trace.exit_payload
val to_exit_reason : Trace.exit_payload -> Vmcs.exit_reason
val of_fault : Fault_injector.fault -> Trace.fault_payload
val to_fault : Trace.fault_payload -> Fault_injector.fault

(** {1 Recording} *)

val default_capacity : int
(** Ring capacity when {!arm} is not given one (65536 events — ample
    for a full trial batch; soak shards overflow into a trailing
    window). *)

val arm : ?capacity:int -> unit -> unit
(** Start recording in the calling domain: reset the ring and slot to
    empty/0 and (for the first armed domain) flip the global taps on.
    Idempotent while already armed. *)

val disarm : unit -> unit
(** Stop recording in the calling domain and release the ring; the
    last domain to disarm flips the global taps off. *)

val recording : unit -> bool
(** Whether the calling domain is recording. *)

val set_slot : int -> unit
(** Set the trial slot stamped on subsequently recorded events.  The
    scenario runner calls this at the top of each trial. *)

val note : Trace.event -> unit
(** Append an event directly (used by the replayer to re-record the
    inputs it applies, so a replay's capture is comparable to the
    original).  No-op when not recording. *)

val capture : unit -> Trace.event list * int
(** Drain the ring: the recorded events in order plus the count of
    events evicted by overflow ([0] means complete).  Resets the ring
    but stays armed. *)
