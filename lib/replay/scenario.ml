(* The scenario runner: executes a Trial_batch — the campaign-shaped
   attacker/victim stack — in record or replay mode, with the oracle
   battery attached.

   Determinism argument for the replay contract (record -> replay ->
   re-capture is bit-identical):

   - every seed replay needs is in the trace: the batch seed derives
     the per-trial machine seed ([split_seed trial_seed 1]) and the
     per-trial injector seed exactly as record mode derived them;
   - record mode consumes injector randomness only for the one drawn
     fault per trial; replay injects the {e recorded} fault instead of
     drawing, and nothing else reads that stream, so skipping the draw
     perturbs nothing;
   - the taps re-record every input as it is applied (the inject tap
     fires for replayed faults exactly as it did for drawn ones, and
     the replayer notes synthetic inputs before applying them), so a
     replay's capture carries the same input events in the same
     positions, and machine determinism regenerates the same exits.

   The oracles never perturb the run: the recorder and sanitizer obey
   the zero-cost contract, and the static verifier is an offline
   radix walk that charges no simulated cycles. *)

open Covirt_hw
open Covirt_pisces
open Covirt_kitten
open Covirt_analysis
module Fault_injector = Covirt_resilience.Fault_injector

let gib = Covirt_sim.Units.gib
let mib = Covirt_sim.Units.mib
let machine_mem = 8 * gib

type trial_outcome = Survived | Node_down | Collateral

let outcome_name = function
  | Survived -> "survived"
  | Node_down -> "node-down"
  | Collateral -> "collateral"

type trial_result = {
  slot : int;
  outcome : trial_outcome;
  crash : string option;
  sanitizer_delta : int;
  verifier_violations : int;
  planted : Trace.corruption list;
  detected : Trace.corruption list;
}

type report = {
  trace : Trace.t;
  results : trial_result list;
  crashes : (int * string) list;
  planted : Trace.corruption list;
  detected : Trace.corruption list;
  sanitizer_flags : int;
}

let config_of_name name =
  match
    List.assoc_opt name
      (Covirt.Config.presets @ [ ("full(+msr+io)", Covirt.Config.full) ])
  with
  | Some c -> Some c
  | None -> if name = "full" then Some Covirt.Config.full else None

let config_names =
  List.map fst Covirt.Config.presets @ [ "full" ]

(* Exceptions that are legitimate simulated outcomes, not harness
   crashes.  Everything else escaping a trial is the crash oracle
   firing. *)
let simulated_exn = function
  | Machine.Node_panic _ | Vmx.Vm_terminated _ -> true
  | _ -> false

let violation_matches cls (v : Violation.t) =
  match (cls, v.Violation.kind) with
  | ( Trace.Cross_owner,
      ( Violation.Cross_owner_mapping _ | Violation.Shadow_cross_owner _
      | Violation.Shadow_corrupt_mapping _ ) ) ->
      true
  | Trace.Free_map, (Violation.Unbacked_mapping | Violation.Shadow_corrupt_mapping _)
    ->
      true
  | Trace.Stale_grant, Violation.Stale_grant _ -> true
  | Trace.Freed_access, Violation.Shadow_freed_access -> true
  | _ -> false

(* --- one trial ------------------------------------------------------ *)

(* Inputs this trial must apply (replay) or produce (record). *)
type trial_mode =
  | Record_trial of Fault_injector.t option  (** batch schedule, if any *)
  | Replay_trial of Trace.event list  (** this slot's input events *)

let apply_corruption ~machine ~hobbes ~ctrl ~attacker ~victim ~attacker_kitten
    cls =
  let instance_of (e : Enclave.t) =
    Covirt.Controller.instance_for ctrl ~enclave_id:e.Enclave.id
  in
  let attacker_ept () =
    match instance_of attacker with
    | Some { Covirt.Controller.ept_mgr = Some mgr; _ } ->
        Some (Covirt.Ept_manager.ept mgr)
    | _ -> None
  in
  match cls with
  | Trace.Cross_owner -> (
      (* The attacker's EPT suddenly maps a window of the victim's
         memory. *)
      match (attacker_ept (), Region.Set.to_list victim.Enclave.memory) with
      | Some ept, r :: _ ->
          Ept.map_region ept (Region.make ~base:r.Region.base ~len:(4 * mib))
      | _ -> ())
  | Trace.Free_map -> (
      (* Map memory that belongs to nobody: carve from the free pool,
         release, then wire into the attacker's EPT. *)
      match attacker_ept () with
      | Some ept -> (
          let mem = machine.Machine.mem in
          match Phys_mem.alloc mem ~owner:Owner.Host ~zone:1 ~len:(4 * mib) with
          | Ok r ->
              Phys_mem.release mem r;
              Ept.map_region ept r
          | Error _ -> ())
      | None -> ())
  | Trace.Stale_grant -> (
      (* A doorbell towards a core no live enclave owns — planted on
         the victim's (never-faulted) instance so the stale entry
         survives even when a later fault tears the attacker down. *)
      match instance_of victim with
      | Some i -> Covirt.Whitelist.grant i.Covirt.Controller.whitelist
                    ~vector:0xd1 ~dest:5
      | None -> ())
  | Trace.Freed_access -> (
      (* Hot-add memory, hot-remove it, touch the stale address.  Only
         the shadow sanitizer can see this one — and only when EPT
         enforcement is off (a protected config suppresses the stale
         store before the shadow would). *)
      let pisces = Covirt_hobbes.Hobbes.pisces hobbes in
      match Pisces.add_memory pisces attacker ~zone:0 ~len:(4 * mib) with
      | Error _ -> ()
      | Ok r -> (
          match Pisces.remove_memory pisces attacker r with
          | Error _ -> ()
          | Ok () -> (
              let ctx = Kitten.context attacker_kitten ~core:1 in
              match
                Pisces.run_guarded pisces (fun () ->
                    Kitten.store_addr ctx (r.Region.base + 64))
              with
              | Ok () | Error _ -> ())))

let one_trial ~config ~slot ~trial_seed ~mode =
  Recorder.set_slot slot;
  let sanitize_before = Sanitize.violation_count () in
  let machine_seed = Covirt_sim.Rng.split_seed ~seed:trial_seed ~index:1 in
  let crash = ref None in
  let node_down = ref false in
  let planted = ref [] in
  let verifier_violations = ref 0 in
  let detected = ref [] in
  let collateral = ref false in
  (try
     let machine =
       Machine.create ~seed:machine_seed ~zones:2 ~cores_per_zone:3
         ~mem_per_zone:(4 * gib) ()
     in
     let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
     let pisces = Covirt_hobbes.Hobbes.pisces hobbes in
     let ctrl = Covirt.enable pisces ~config in
     let launch name cores zone =
       match
         Covirt_hobbes.Hobbes.launch_enclave hobbes ~name ~cores
           ~mem:[ (zone, 512 * mib) ] ()
       with
       | Ok pair -> pair
       | Error e -> failwith e
     in
     let attacker, attacker_kitten = launch "attacker" [ 1 ] 0 in
     let victim, victim_kitten = launch "victim" [ 3 ] 1 in
     let ctx = Kitten.context attacker_kitten ~core:1 in
     let injector = Fault_injector.create ~seed:trial_seed () in
     (* Multi-enclave surface: cores the fuzzer's [Spawn] inputs may
        still claim (host 0, attacker 1, victim 3 are taken), and the
        lazily-exported victim segment [Xemem_op] inputs target. *)
     let free_cores = ref [ (0, 2); (1, 4); (1, 5) ] in
     let exported = ref false in
     let xemem_seg = "fuzz-seg" in
     let apply_xemem attach =
       let xemem = Covirt_hobbes.Hobbes.xemem hobbes in
       if attach then begin
         (if not !exported then
            match Kitten.kalloc victim_kitten ~bytes:(4 * mib) with
            | Error _ -> ()
            | Ok base -> (
                match
                  Covirt_xemem.Xemem.export xemem
                    ~exporter:
                      (Covirt_xemem.Name_service.Enclave_export
                         victim.Enclave.id)
                    ~name:xemem_seg
                    ~pages:[ Region.make ~base ~len:(4 * mib) ]
                with
                | Ok _ -> exported := true
                | Error _ -> ()));
         match Covirt_xemem.Xemem.attach xemem attacker ~name:xemem_seg with
         | Ok _ -> Coverage.hit_xemem ~attach:true ~ok:true
         | Error _ -> Coverage.hit_xemem ~attach:true ~ok:false
       end
       else
         match Covirt_xemem.Xemem.detach xemem attacker ~name:xemem_seg with
         | Ok () -> Coverage.hit_xemem ~attach:false ~ok:true
         | Error _ -> Coverage.hit_xemem ~attach:false ~ok:false
     in
     let apply_spawn zone =
       match List.find_opt (fun (z, _) -> z = zone) !free_cores with
       | None -> Coverage.hit_spawn ~ok:false
       | Some (_, core) -> (
           free_cores := List.filter (fun (_, c) -> c <> core) !free_cores;
           match
             Covirt_hobbes.Hobbes.launch_enclave hobbes
               ~name:(Printf.sprintf "extra-%d" core)
               ~cores:[ core ]
               ~mem:[ (zone, 128 * mib) ]
               ()
           with
           | Ok _ -> Coverage.hit_spawn ~ok:true
           | Error _ -> Coverage.hit_spawn ~ok:false)
     in
     (* Apply one input under crash guard; a node panic stops applying
        (the machine is gone) but later inputs are still noted so the
        re-captured trace carries them — replaying the capture skips
        at the same point, deterministically. *)
     let guarded f =
       if not !node_down then
         match Pisces.run_guarded pisces f with
         | Ok () | Error _ -> ()
         | exception Machine.Node_panic _ -> node_down := true
     in
     (match mode with
     | Record_trial schedule ->
         let faults =
           match schedule with
           | None ->
               [
                 Fault_injector.draw injector ~machine_mem
                   ~victim_bsp:(Enclave.bsp victim);
               ]
           | Some batch -> (
               match
                 Fault_injector.due batch ~target:"attacker" ~trial:slot ~now:0
               with
               | Fault_injector.Due faults -> faults
               | Fault_injector.End_of_schedule -> [])
         in
         List.iter
           (fun fault -> guarded (fun () -> Fault_injector.inject injector ctx fault))
           faults
     | Replay_trial inputs ->
         List.iter
           (fun ev ->
             match ev with
             | Trace.Fault { fault; _ } ->
                 (* The inject tap re-records this event. *)
                 guarded (fun () ->
                     Fault_injector.inject injector ctx
                       (Recorder.to_fault fault))
             | Trace.Inject_exit { reason; _ } ->
                 Recorder.note ev;
                 guarded (fun () ->
                     let bsp = Enclave.bsp attacker in
                     let cpu = Machine.cpu machine bsp in
                     match Cpu.vmcs cpu with
                     | Some vmcs ->
                         ignore
                           (Vmx.deliver_exit ~model:machine.Machine.model cpu
                              vmcs
                              (Recorder.to_exit_reason reason))
                     | None -> ())
             | Trace.Corrupt { cls; _ } ->
                 Recorder.note ev;
                 planted := !planted @ [ cls ];
                 if not !node_down then
                   apply_corruption ~machine ~hobbes ~ctrl ~attacker ~victim
                     ~attacker_kitten cls
             | Trace.Xemem_op { attach; _ } ->
                 Recorder.note ev;
                 guarded (fun () -> apply_xemem attach)
             | Trace.Spawn { zone; _ } ->
                 Recorder.note ev;
                 guarded (fun () -> apply_spawn zone)
             | Trace.Exit _ -> ())
           inputs);
     if (not !node_down) && Machine.panicked machine <> None then
       node_down := true;
     (if not !node_down then
        match Kitten.health victim_kitten with
        | `Corrupted _ -> collateral := true
        | `Ok -> ());
     (* The detection oracles, only when something was planted: the
        static verifier sweep plus the shadow sanitizer's typed
        violations for this machine.  They run post-mortem too — a
        node panic later in the slot must not hide what the shadow
        already caught (each [Covirt.enable] re-arms the shadow, so
        the violations are this trial's own). *)
     if !planted <> [] then begin
       let vs =
         (Verifier.run
            ~registry:
              (Covirt_xemem.Xemem.registry (Covirt_hobbes.Hobbes.xemem hobbes))
            ctrl)
           .Verifier.violations
         @ (if Shadow.active () then Shadow.violations () else [])
       in
       verifier_violations := List.length vs;
       detected :=
         List.filter
           (fun cls -> List.exists (violation_matches cls) vs)
           (List.sort_uniq compare !planted)
     end
   with e when not (simulated_exn e) -> crash := Some (Printexc.to_string e));
  let outcome =
    if !node_down then Node_down
    else if !collateral then Collateral
    else Survived
  in
  (* Verdict edges the hw taps cannot see — no-ops unless this
     domain's coverage collection is armed. *)
  Coverage.hit_outcome
    (match outcome with
    | Survived -> `Survived
    | Node_down -> `Node_down
    | Collateral -> `Collateral);
  if !crash <> None then Coverage.hit_crash ();
  List.iter Coverage.hit_planted (List.sort_uniq compare !planted);
  List.iter Coverage.hit_detected !detected;
  {
    slot;
    outcome;
    crash = !crash;
    sanitizer_delta = Sanitize.violation_count () - sanitize_before;
    verifier_violations = !verifier_violations;
    planted = List.sort_uniq compare !planted;
    detected = !detected;
  }

(* --- batches -------------------------------------------------------- *)

let summarize ~trace (results : trial_result list) =
  {
    trace;
    results;
    crashes =
      List.filter_map
        (fun (r : trial_result) -> Option.map (fun c -> (r.slot, c)) r.crash)
        results;
    planted =
      List.sort_uniq compare
        (List.concat_map (fun (r : trial_result) -> r.planted) results);
    detected =
      List.sort_uniq compare
        (List.concat_map (fun (r : trial_result) -> r.detected) results);
    sanitizer_flags =
      List.fold_left (fun acc (r : trial_result) -> acc + r.sanitizer_delta) 0
        results;
  }

let resolve_config name =
  match config_of_name name with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Scenario: unknown config %S" name)

let record ?schedule ?(sanitize = true) ~config ~seed ~trials () =
  let cfg = { (resolve_config config) with Covirt.Config.sanitize } in
  let schedule_json =
    match schedule with
    | None -> ""
    | Some inj -> Fault_injector.schedule_to_json inj
  in
  let was_recording = Recorder.recording () in
  Recorder.arm ();
  let results =
    List.init trials (fun slot ->
        let trial_seed = Covirt_sim.Rng.split_seed ~seed ~index:slot in
        one_trial ~config:cfg ~slot ~trial_seed ~mode:(Record_trial schedule))
  in
  let events, dropped = Recorder.capture () in
  if not was_recording then Recorder.disarm ();
  let trace =
    Trace.make ~schedule_json ~dropped
      ~scenario:(Trace.Trial_batch { config; seed; trials })
      events
  in
  summarize ~trace results

let replay (trace : Trace.t) =
  match trace.Trace.scenario with
  | Trace.Soak_shard _ ->
      invalid_arg "Scenario.replay: soak-shard traces replay via Replayer"
  | Trace.Trial_batch { config; seed; trials } ->
      (* Replay always runs with the sanitizer armed: observation-only
         and zero-cost, it cannot perturb the replayed stream, and it
         is one of the oracles. *)
      let cfg = { (resolve_config config) with Covirt.Config.sanitize = true } in
      let inputs = Trace.inputs trace in
      let was_recording = Recorder.recording () in
      Recorder.arm ();
      let results =
        List.init trials (fun slot ->
            let trial_seed = Covirt_sim.Rng.split_seed ~seed ~index:slot in
            let slot_inputs =
              List.filter (fun ev -> Trace.slot_of ev = slot) inputs
            in
            one_trial ~config:cfg ~slot ~trial_seed
              ~mode:(Replay_trial slot_inputs))
      in
      let events, dropped = Recorder.capture () in
      if not was_recording then Recorder.disarm ();
      let recaptured =
        Trace.make ~schedule_json:trace.Trace.schedule_json ~dropped
          ~scenario:trace.Trace.scenario events
      in
      summarize ~trace:recaptured results
