(* The versioned binary trace format.  See trace.mli for the contract;
   the encoding goals are (a) compact — varints for the ubiquitous
   small ints, full bytes only for the one genuine int64 payload — and
   (b) total — decode never throws, every malformed input maps to a
   typed Error, so a mutated or truncated file from a fuzz corpus is
   itself a safe input. *)

let magic = "CVRT"
let version = 1

type exit_payload =
  | X_ept of { gpa : int; access : int; not_mapped : bool }
  | X_icr of { dest : int; vector : int; kind : int }
  | X_msr of { msr : int; write : bool; value : int64 }
  | X_io of { port : int; write : bool; value : int }
  | X_cpuid
  | X_xsetbv
  | X_hlt
  | X_intr of { vector : int }
  | X_nmi
  | X_abort of { what : string }

type fault_payload =
  | F_wild of int
  | F_phantom of int
  | F_ipi of { dest : int; vector : int }
  | F_msr
  | F_port
  | F_double
  | F_wedge of { cycles : int }

type corruption = Cross_owner | Free_map | Stale_grant | Freed_access

type event =
  | Exit of {
      slot : int;
      cpu : int;
      enclave : int;
      tsc : int;
      reason : exit_payload;
    }
  | Fault of { slot : int; fault : fault_payload }
  | Inject_exit of { slot : int; reason : exit_payload }
  | Corrupt of { slot : int; cls : corruption }
  | Xemem_op of { slot : int; attach : bool }
  | Spawn of { slot : int; zone : int }

type scenario =
  | Trial_batch of { config : string; seed : int; trials : int }
  | Soak_shard of { seed : int; lo : int; hi : int; sanitize : bool }

type t = {
  scenario : scenario;
  schedule_json : string;
  dropped : int;
  events : event list;
}

let make ?(schedule_json = "") ?(dropped = 0) ~scenario events =
  { scenario; schedule_json; dropped; events }

let is_input = function
  | Exit _ -> false
  | Fault _ | Inject_exit _ | Corrupt _ | Xemem_op _ | Spawn _ -> true

let inputs t = List.filter is_input t.events
let observed t = List.filter (fun e -> not (is_input e)) t.events

let slot_of = function
  | Exit { slot; _ }
  | Fault { slot; _ }
  | Inject_exit { slot; _ }
  | Corrupt { slot; _ }
  | Xemem_op { slot; _ }
  | Spawn { slot; _ } ->
      slot

let corruption_name = function
  | Cross_owner -> "cross-owner"
  | Free_map -> "free-map"
  | Stale_grant -> "stale-grant"
  | Freed_access -> "freed-access"

let corruptions = [ Cross_owner; Free_map; Stale_grant; Freed_access ]

(* --- encoding ------------------------------------------------------- *)

(* Unsigned LEB128.  Every int field in the format is non-negative by
   construction (addresses, slots, vectors, cycle counts); encode
   asserts it so a negative value can never silently wrap. *)
let put_varint buf n =
  assert (n >= 0);
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let put_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

let put_string buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

let put_int64 buf v =
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done

let put_exit_payload buf = function
  | X_ept { gpa; access; not_mapped } ->
      put_varint buf 0;
      put_varint buf gpa;
      put_varint buf access;
      put_bool buf not_mapped
  | X_icr { dest; vector; kind } ->
      put_varint buf 1;
      put_varint buf dest;
      put_varint buf vector;
      put_varint buf kind
  | X_msr { msr; write; value } ->
      put_varint buf 2;
      put_varint buf msr;
      put_bool buf write;
      put_int64 buf value
  | X_io { port; write; value } ->
      put_varint buf 3;
      put_varint buf port;
      put_bool buf write;
      put_varint buf value
  | X_cpuid -> put_varint buf 4
  | X_xsetbv -> put_varint buf 5
  | X_hlt -> put_varint buf 6
  | X_intr { vector } ->
      put_varint buf 7;
      put_varint buf vector
  | X_nmi -> put_varint buf 8
  | X_abort { what } ->
      put_varint buf 9;
      put_string buf what

let put_fault_payload buf = function
  | F_wild a ->
      put_varint buf 0;
      put_varint buf a
  | F_phantom a ->
      put_varint buf 1;
      put_varint buf a
  | F_ipi { dest; vector } ->
      put_varint buf 2;
      put_varint buf dest;
      put_varint buf vector
  | F_msr -> put_varint buf 3
  | F_port -> put_varint buf 4
  | F_double -> put_varint buf 5
  | F_wedge { cycles } ->
      put_varint buf 6;
      put_varint buf cycles

let corruption_code = function
  | Cross_owner -> 0
  | Free_map -> 1
  | Stale_grant -> 2
  | Freed_access -> 3

let put_event buf = function
  | Exit { slot; cpu; enclave; tsc; reason } ->
      put_varint buf 0;
      put_varint buf slot;
      put_varint buf cpu;
      put_varint buf enclave;
      put_varint buf tsc;
      put_exit_payload buf reason
  | Fault { slot; fault } ->
      put_varint buf 1;
      put_varint buf slot;
      put_fault_payload buf fault
  | Inject_exit { slot; reason } ->
      put_varint buf 2;
      put_varint buf slot;
      put_exit_payload buf reason
  | Corrupt { slot; cls } ->
      put_varint buf 3;
      put_varint buf slot;
      put_varint buf (corruption_code cls)
  | Xemem_op { slot; attach } ->
      put_varint buf 4;
      put_varint buf slot;
      put_bool buf attach
  | Spawn { slot; zone } ->
      put_varint buf 5;
      put_varint buf slot;
      put_varint buf zone

let put_scenario buf = function
  | Trial_batch { config; seed; trials } ->
      put_varint buf 0;
      put_string buf config;
      put_varint buf seed;
      put_varint buf trials
  | Soak_shard { seed; lo; hi; sanitize } ->
      put_varint buf 1;
      put_varint buf seed;
      put_varint buf lo;
      put_varint buf hi;
      put_bool buf sanitize

let encode t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  put_varint buf version;
  put_scenario buf t.scenario;
  put_string buf t.schedule_json;
  put_varint buf t.dropped;
  put_varint buf (List.length t.events);
  List.iter (put_event buf) t.events;
  Buffer.contents buf

(* --- decoding ------------------------------------------------------- *)

exception Malformed of string

let decode s =
  let n = String.length s in
  let pos = ref 0 in
  let byte () =
    if !pos >= n then raise (Malformed "unexpected end of trace");
    let c = Char.code s.[!pos] in
    incr pos;
    c
  in
  let get_varint () =
    let rec go shift acc =
      if shift > 62 then raise (Malformed "varint overflow");
      let b = byte () in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0
  in
  let get_bool () =
    match byte () with
    | 0 -> false
    | 1 -> true
    | b -> raise (Malformed (Printf.sprintf "bad boolean byte %d" b))
  in
  let get_string () =
    let len = get_varint () in
    if !pos + len > n then raise (Malformed "string overruns trace");
    let str = String.sub s !pos len in
    pos := !pos + len;
    str
  in
  let get_int64 () =
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (byte ())) (8 * i))
    done;
    !v
  in
  let get_exit_payload () =
    match get_varint () with
    | 0 ->
        let gpa = get_varint () in
        let access = get_varint () in
        if access > 2 then raise (Malformed "bad EPT access code");
        X_ept { gpa; access; not_mapped = get_bool () }
    | 1 ->
        let dest = get_varint () in
        let vector = get_varint () in
        let kind = get_varint () in
        if kind > 3 then raise (Malformed "bad IPI kind code");
        X_icr { dest; vector; kind }
    | 2 ->
        let msr = get_varint () in
        let write = get_bool () in
        X_msr { msr; write; value = get_int64 () }
    | 3 ->
        let port = get_varint () in
        let write = get_bool () in
        X_io { port; write; value = get_varint () }
    | 4 -> X_cpuid
    | 5 -> X_xsetbv
    | 6 -> X_hlt
    | 7 -> X_intr { vector = get_varint () }
    | 8 -> X_nmi
    | 9 -> X_abort { what = get_string () }
    | c -> raise (Malformed (Printf.sprintf "unknown exit payload tag %d" c))
  in
  let get_fault_payload () =
    match get_varint () with
    | 0 -> F_wild (get_varint ())
    | 1 -> F_phantom (get_varint ())
    | 2 ->
        let dest = get_varint () in
        F_ipi { dest; vector = get_varint () }
    | 3 -> F_msr
    | 4 -> F_port
    | 5 -> F_double
    | 6 -> F_wedge { cycles = get_varint () }
    | c -> raise (Malformed (Printf.sprintf "unknown fault payload tag %d" c))
  in
  let get_event () =
    match get_varint () with
    | 0 ->
        let slot = get_varint () in
        let cpu = get_varint () in
        let enclave = get_varint () in
        let tsc = get_varint () in
        Exit { slot; cpu; enclave; tsc; reason = get_exit_payload () }
    | 1 ->
        let slot = get_varint () in
        Fault { slot; fault = get_fault_payload () }
    | 2 ->
        let slot = get_varint () in
        Inject_exit { slot; reason = get_exit_payload () }
    | 3 ->
        let slot = get_varint () in
        Corrupt
          {
            slot;
            cls =
              (match get_varint () with
              | 0 -> Cross_owner
              | 1 -> Free_map
              | 2 -> Stale_grant
              | 3 -> Freed_access
              | c ->
                  raise
                    (Malformed (Printf.sprintf "unknown corruption code %d" c)));
          }
    | 4 ->
        let slot = get_varint () in
        Xemem_op { slot; attach = get_bool () }
    | 5 ->
        let slot = get_varint () in
        let zone = get_varint () in
        if zone > 1 then raise (Malformed "bad spawn zone");
        Spawn { slot; zone }
    | c -> raise (Malformed (Printf.sprintf "unknown event tag %d" c))
  in
  match
    if n < 4 || String.sub s 0 4 <> magic then
      raise (Malformed "bad magic (not a Covirt trace)");
    pos := 4;
    let v = get_varint () in
    if v <> version then
      raise (Malformed (Printf.sprintf "unsupported trace version %d" v));
    let scenario =
      match get_varint () with
      | 0 ->
          let config = get_string () in
          let seed = get_varint () in
          Trial_batch { config; seed; trials = get_varint () }
      | 1 ->
          let seed = get_varint () in
          let lo = get_varint () in
          let hi = get_varint () in
          Soak_shard { seed; lo; hi; sanitize = get_bool () }
      | c -> raise (Malformed (Printf.sprintf "unknown scenario tag %d" c))
    in
    let schedule_json = get_string () in
    let dropped = get_varint () in
    let count = get_varint () in
    let events = List.init count (fun _ -> get_event ()) in
    if !pos <> n then raise (Malformed "trailing bytes after last event");
    { scenario; schedule_json; dropped; events }
  with
  | t -> Ok t
  | exception Malformed why -> Error why

(* --- files, identity ------------------------------------------------ *)

let to_file t ~path =
  let oc = open_out_bin path in
  output_string oc (encode t);
  close_out oc

let of_file ~path =
  match open_in_bin path with
  | exception Sys_error why -> Error why
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      decode s

let equal a b = String.equal (encode a) (encode b)
let digest t = Digest.to_hex (Digest.string (encode t))

(* --- rendering ------------------------------------------------------ *)

let access_name = function 0 -> "read" | 1 -> "write" | _ -> "exec"

let pp_exit_payload ppf = function
  | X_ept { gpa; access; not_mapped } ->
      Format.fprintf ppf "ept-violation(gpa=0x%x,%s,%s)" gpa
        (access_name access)
        (if not_mapped then "not-mapped" else "perm")
  | X_icr { dest; vector; kind } ->
      Format.fprintf ppf "icr-write(dest=%d,vec=%d,kind=%d)" dest vector kind
  | X_msr { msr; write; value } ->
      Format.fprintf ppf "msr-%s(0x%x,0x%Lx)"
        (if write then "write" else "read")
        msr value
  | X_io { port; write; value } ->
      Format.fprintf ppf "io-%s(0x%x,%d)"
        (if write then "out" else "in")
        port value
  | X_cpuid -> Format.pp_print_string ppf "cpuid"
  | X_xsetbv -> Format.pp_print_string ppf "xsetbv"
  | X_hlt -> Format.pp_print_string ppf "hlt"
  | X_intr { vector } -> Format.fprintf ppf "external-interrupt(%d)" vector
  | X_nmi -> Format.pp_print_string ppf "nmi"
  | X_abort { what } -> Format.fprintf ppf "abort(%s)" what

let pp_fault_payload ppf = function
  | F_wild a -> Format.fprintf ppf "wild-write(0x%x)" a
  | F_phantom a -> Format.fprintf ppf "phantom-touch(0x%x)" a
  | F_ipi { dest; vector } ->
      Format.fprintf ppf "errant-ipi(core%d,vec%d)" dest vector
  | F_msr -> Format.pp_print_string ppf "msr-write"
  | F_port -> Format.pp_print_string ppf "port-reset"
  | F_double -> Format.pp_print_string ppf "double-fault"
  | F_wedge { cycles } -> Format.fprintf ppf "wedge(%d)" cycles

let pp_event ppf = function
  | Exit { slot; cpu; enclave; tsc; reason } ->
      Format.fprintf ppf "[%d] exit cpu%d enc%d tsc=%d %a" slot cpu enclave tsc
        pp_exit_payload reason
  | Fault { slot; fault } ->
      Format.fprintf ppf "[%d] fault %a" slot pp_fault_payload fault
  | Inject_exit { slot; reason } ->
      Format.fprintf ppf "[%d] inject-exit %a" slot pp_exit_payload reason
  | Corrupt { slot; cls } ->
      Format.fprintf ppf "[%d] corrupt %s" slot (corruption_name cls)
  | Xemem_op { slot; attach } ->
      Format.fprintf ppf "[%d] xemem-%s" slot
        (if attach then "attach" else "detach")
  | Spawn { slot; zone } ->
      Format.fprintf ppf "[%d] spawn-enclave zone%d" slot zone

let pp_scenario ppf = function
  | Trial_batch { config; seed; trials } ->
      Format.fprintf ppf "trial-batch config=%s seed=%d trials=%d" config seed
        trials
  | Soak_shard { seed; lo; hi; sanitize } ->
      Format.fprintf ppf "soak-shard seed=%d trials=%d..%d%s" seed (lo + 1) hi
        (if sanitize then " sanitized" else "")

let pp_summary ppf t =
  let count p = List.length (List.filter p t.events) in
  Format.fprintf ppf
    "@[<v>scenario: %a@,\
     version %d, %d bytes, digest %s@,\
     events: %d exits, %d faults, %d injected exits, %d corruptions, %d \
     xemem ops, %d spawns%s@]"
    pp_scenario t.scenario version
    (String.length (encode t))
    (digest t)
    (count (function Exit _ -> true | _ -> false))
    (count (function Fault _ -> true | _ -> false))
    (count (function Inject_exit _ -> true | _ -> false))
    (count (function Corrupt _ -> true | _ -> false))
    (count (function Xemem_op _ -> true | _ -> false))
    (count (function Spawn _ -> true | _ -> false))
    (if t.dropped > 0 then
       Printf.sprintf " (+%d dropped: trailing window only)" t.dropped
     else "")
