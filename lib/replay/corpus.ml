(* The on-disk fuzz corpus: traces that earned their keep by covering
   an edge nothing else had, each stored next to the coverage map its
   replay produced.

   Entry wire format (magic "CVCS", version 1): magic, varint version,
   varint coverage-map length + raw map bytes, then the trace in the
   Trace wire format.  Decode is total like Trace.decode — every
   malformed or truncated file maps to a typed Error, so a corpus
   directory that picked up garbage is a safe input.  The map length
   is checked against the current layout, so a coverage-layout change
   invalidates stale entries loudly instead of mis-attributing bits.

   Filenames are content-addressed ([<digest>.cvcs]); loading sorts by
   digest, so every shard and every host sees the same entry order —
   part of the fuzzer's determinism argument. *)

let magic = "CVCS"
let version = 1
let extension = ".cvcs"

type entry = { trace : Trace.t; coverage : Coverage.t }

let digest e = Trace.digest e.trace

let encode e =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  let rec varint n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      varint (n lsr 7)
    end
  in
  varint version;
  let cov = Coverage.to_bytes e.coverage in
  varint (String.length cov);
  Buffer.add_string buf cov;
  Buffer.add_string buf (Trace.encode e.trace);
  Buffer.contents buf

exception Malformed of string

let decode s =
  let n = String.length s in
  let pos = ref 0 in
  let byte () =
    if !pos >= n then raise (Malformed "unexpected end of corpus entry");
    let c = Char.code s.[!pos] in
    incr pos;
    c
  in
  let get_varint () =
    let rec go shift acc =
      if shift > 62 then raise (Malformed "varint overflow");
      let b = byte () in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0
  in
  match
    if n < 4 || String.sub s 0 4 <> magic then
      raise (Malformed "bad magic (not a corpus entry)");
    pos := 4;
    let v = get_varint () in
    if v <> version then
      raise (Malformed (Printf.sprintf "unsupported corpus version %d" v));
    let cov_len = get_varint () in
    if !pos + cov_len > n then
      raise (Malformed "coverage map overruns entry");
    let cov_bytes = String.sub s !pos cov_len in
    pos := !pos + cov_len;
    let coverage =
      match Coverage.of_bytes cov_bytes with
      | Ok c -> c
      | Error why -> raise (Malformed why)
    in
    let trace =
      match Trace.decode (String.sub s !pos (n - !pos)) with
      | Ok t -> t
      | Error why -> raise (Malformed ("embedded trace: " ^ why))
    in
    { trace; coverage }
  with
  | e -> Ok e
  | exception Malformed why -> Error why

let to_file e ~path =
  let oc = open_out_bin path in
  output_string oc (encode e);
  close_out oc

let of_file ~path =
  match open_in_bin path with
  | exception Sys_error why -> Error why
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      decode s

(* --- directories ----------------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    (* A concurrent shard may have won the race; that is fine. *)
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let load ~dir =
  if not (Sys.file_exists dir) then Ok []
  else if not (Sys.is_directory dir) then
    Error (Printf.sprintf "%s: not a directory" dir)
  else
    let files =
      List.sort compare
        (List.filter
           (fun f -> Filename.check_suffix f extension)
           (Array.to_list (Sys.readdir dir)))
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | f :: rest -> (
          match of_file ~path:(Filename.concat dir f) with
          | Ok e -> go (e :: acc) rest
          | Error why -> Error (Printf.sprintf "%s: %s" f why))
    in
    go [] files

let save ~dir e =
  mkdir_p dir;
  let path = Filename.concat dir (digest e ^ extension) in
  to_file e ~path;
  path

let union_coverage entries =
  List.fold_left
    (fun acc e -> Coverage.union acc e.coverage)
    Coverage.empty entries
