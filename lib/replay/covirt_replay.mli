(** Record/replay of VM-exit streams and trace-mutation fuzzing
    ([covirt.replay]).

    The robustness loop the paper's evaluation leans on, closed: every
    nondeterministic input of a simulated run — seeds, the
    fault-injector schedule, each fault as applied — is captured into
    a compact versioned binary {!Trace}, which replays bit-identically
    (verified by re-capturing) and doubles as fuzz substrate:

    - {!Trace} — the codec: the {e only} module that touches trace
      bytes (covirt-lint enforces the confinement);
    - {!Recorder} — Domain-local taps on VM-exit dispatch and fault
      injection, zero-cost when disarmed (golden transcripts stay
      byte-identical armed);
    - {!Scenario} — record/replay execution of trial batches with the
      oracle battery (crash, shadow sanitizer, static verifier);
    - {!Replayer} — replay + re-capture + byte comparison, including
      soak-shard traces;
    - {!Minimizer} — ddmin + payload shrinking of crashing traces to
      checked-in minimal reproducers;
    - {!Fuzzer} — seeded trace mutation sharded across fleet domains,
      byte-identical at any domain count.

    Surfaced as [covirt-ctl record / replay / fuzz]. *)

module Trace = Trace
module Recorder = Recorder
module Scenario = Scenario
module Replayer = Replayer
module Minimizer = Minimizer
module Fuzzer = Fuzzer
