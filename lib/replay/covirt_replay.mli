(** Record/replay of VM-exit streams and coverage-guided
    trace-mutation fuzzing ([covirt.replay]).

    The robustness loop the paper's evaluation leans on, closed: every
    nondeterministic input of a simulated run — seeds, the
    fault-injector schedule, each fault as applied — is captured into
    a compact versioned binary {!Trace}, which replays bit-identically
    (verified by re-capturing) and doubles as fuzz substrate:

    - {!Trace} — the codec: the {e only} module that touches trace
      bytes (covirt-lint enforces the confinement);
    - {!Coverage} — the per-run coverage bitset (exit-arm x outcome,
      EPT walk classes, fault/violation classes, oracle verdicts),
      collected through zero-cost taps (golden transcripts stay
      byte-identical armed);
    - {!Recorder} — Domain-local taps on VM-exit dispatch and fault
      injection, zero-cost when disarmed;
    - {!Scenario} — record/replay execution of trial batches with the
      oracle battery (crash, shadow sanitizer, static verifier);
    - {!Replayer} — replay + re-capture + byte comparison, including
      soak-shard traces;
    - {!Corpus} — the on-disk corpus of coverage-earning traces the
      fuzzer promotes into and seeds its mutation bases from;
    - {!Minimizer} — ddmin + cross-trial + payload shrinking of
      crashing traces (optionally preserving covering edges) to
      checked-in minimal reproducers;
    - {!Fuzzer} — seeded, coverage-guided trace mutation sharded
      across fleet domains, byte-identical at any domain count.

    Surfaced as [covirt-ctl record / replay / fuzz]. *)

module Trace = Trace
module Coverage = Coverage
module Recorder = Recorder
module Scenario = Scenario
module Replayer = Replayer
module Corpus = Corpus
module Minimizer = Minimizer
module Fuzzer = Fuzzer
