module Trace = Trace
module Coverage = Coverage
module Recorder = Recorder
module Scenario = Scenario
module Replayer = Replayer
module Corpus = Corpus
module Minimizer = Minimizer
module Fuzzer = Fuzzer
