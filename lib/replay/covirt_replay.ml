module Trace = Trace
module Recorder = Recorder
module Scenario = Scenario
module Replayer = Replayer
module Minimizer = Minimizer
module Fuzzer = Fuzzer
