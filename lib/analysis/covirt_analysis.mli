(** The isolation sanitizer ([covirt.analysis]).

    A correctness backstop for everything the rest of the repo trusts:
    that the EPT manager, the IPI whitelist and the [Phys_mem]
    ownership bookkeeping actually agree with each other.  Three
    parts:

    - {!Verifier} — an offline static pass cross-checking every EPT
      leaf and whitelist grant against authoritative ownership;
    - {!Shadow} — an opt-in runtime mode (ASan-style) that catches
      ownership-boundary crossings the instant they happen;
    - [bin/covirt_lint] — the source-convention gate (separate
      executable; no library surface).

    Surfaced as [covirt-ctl analyze]. *)

module Violation = Violation
module Verifier = Verifier
module Shadow = Shadow
