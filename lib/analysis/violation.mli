(** Typed isolation violations.

    The common currency of the analysis layer: both the static
    verifier ({!Verifier}) and the shadow sanitizer ({!Shadow}) report
    in these terms, so tests assert on structure rather than on
    message strings. *)

open Covirt_hw

type severity = Info | Warning | Critical

type kind =
  | Cross_owner_mapping of { actual : Owner.t }
      (** an EPT leaf maps memory owned by [actual] — the host,
          another enclave, or an undelegated device — outside any
          XEMEM-registered shared region *)
  | Unbacked_mapping  (** an EPT leaf maps [Free] / unassigned memory *)
  | Overlapping_leaves of { other : Addr.t }
      (** two live leaves cover the same GPA (radix corruption —
          unreachable through the public [Ept] API, checked anyway) *)
  | Writable_device_bar of { device : string }
      (** a writable leaf over the BAR of a device that was never
          delegated to this enclave *)
  | Stale_grant of { vector : int; dest : int }
      (** a whitelist grant whose destination core no longer belongs
          to any live enclave *)
  | Shadow_cross_owner of { actual : Owner.t }
      (** runtime: an access crossed an ownership boundary *)
  | Shadow_freed_access  (** runtime: an access hit a freed region *)
  | Shadow_corrupt_mapping of { actual : Owner.t }
      (** runtime: an EPT leaf was installed over foreign memory,
          caught at write time *)

type t = {
  owner : Owner.t;  (** the enclave whose state is at fault *)
  gpa : Addr.t;  (** guest-physical start of the offending range *)
  hpa : Addr.t;  (** host-physical (identity-mapped: equals [gpa]) *)
  len : int;  (** bytes; [0] for non-memory violations *)
  severity : severity;
  kind : kind;
  detail : string;  (** human-readable elaboration *)
}

val severity_name : severity -> string
(** ["info"] / ["warning"] / ["critical"]. *)

val kind_name : kind -> string
(** Stable kebab-case name, e.g. ["cross-owner-mapping"]. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering. *)

val to_json : t -> string
(** One JSON object (hand-rolled; no dependency). *)
