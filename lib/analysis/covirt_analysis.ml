module Violation = Violation
module Verifier = Verifier
module Shadow = Shadow
