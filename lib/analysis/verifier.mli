(** The static isolation verifier.

    An offline pass over an attached controller: walks every enclave's
    4-level EPT radix tables leaf by leaf ({!Covirt_hw.Ept.fold_leaves})
    and cross-checks each 4K/2M/1G leaf against the authoritative
    {!Covirt_hw.Phys_mem} ownership snapshot, then audits every IPI
    whitelist grant against live core ownership.

    The verifier trusts nothing the controller believes: the blessed
    set comes from the enclave's own resource records (plus the
    XEMEM registry when supplied), the actual owners from [Phys_mem],
    and the leaves from the radix structure the hardware would walk.
    Anything inconsistent becomes a typed {!Violation.t}. *)

type report = {
  enclaves_checked : int;  (** live controller instances examined *)
  leaves_checked : int;  (** EPT leaves walked across all enclaves *)
  grants_checked : int;  (** whitelist grants audited *)
  violations : Violation.t list;  (** discovery order *)
}

val run :
  ?registry:Covirt_xemem.Name_service.t -> Covirt.Controller.t -> report
(** Verify every instance of the controller.  [registry] supplies the
    XEMEM name service, so registered shared segments an enclave
    exported or attached count as legitimately accessible; without it,
    only the enclave's own resource records bless a mapping. *)

val clean : report -> bool
(** No violations at all. *)

val table : report -> Covirt_sim.Table.t
(** The violations as a rendered report table (empty when clean). *)

val to_json : report -> string
(** The whole report as one JSON object — the CI artifact format. *)
