open Covirt_hw

type severity = Info | Warning | Critical

type kind =
  | Cross_owner_mapping of { actual : Owner.t }
  | Unbacked_mapping
  | Overlapping_leaves of { other : Addr.t }
  | Writable_device_bar of { device : string }
  | Stale_grant of { vector : int; dest : int }
  | Shadow_cross_owner of { actual : Owner.t }
  | Shadow_freed_access
  | Shadow_corrupt_mapping of { actual : Owner.t }

type t = {
  owner : Owner.t;
  gpa : Addr.t;
  hpa : Addr.t;
  len : int;
  severity : severity;
  kind : kind;
  detail : string;
}

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Critical -> "critical"

let kind_name = function
  | Cross_owner_mapping _ -> "cross-owner-mapping"
  | Unbacked_mapping -> "unbacked-mapping"
  | Overlapping_leaves _ -> "overlapping-leaves"
  | Writable_device_bar _ -> "writable-device-bar"
  | Stale_grant _ -> "stale-grant"
  | Shadow_cross_owner _ -> "shadow-cross-owner"
  | Shadow_freed_access -> "shadow-freed-access"
  | Shadow_corrupt_mapping _ -> "shadow-corrupt-mapping"

let pp_kind ppf = function
  | Cross_owner_mapping { actual } ->
      Format.fprintf ppf "cross-owner mapping (actual %a)" Owner.pp actual
  | Unbacked_mapping -> Format.pp_print_string ppf "mapping into free memory"
  | Overlapping_leaves { other } ->
      Format.fprintf ppf "overlaps leaf at %a" Addr.pp other
  | Writable_device_bar { device } ->
      Format.fprintf ppf "writable BAR of undelegated device %s" device
  | Stale_grant { vector; dest } ->
      Format.fprintf ppf "stale grant vec%d -> core%d" vector dest
  | Shadow_cross_owner { actual } ->
      Format.fprintf ppf "shadow: cross-owner access (actual %a)" Owner.pp
        actual
  | Shadow_freed_access ->
      Format.pp_print_string ppf "shadow: freed-region access"
  | Shadow_corrupt_mapping { actual } ->
      Format.fprintf ppf "shadow: corrupt mapping (actual %a)" Owner.pp actual

let pp ppf t =
  Format.fprintf ppf "[%s] %a gpa %a+%d: %a — %s" (severity_name t.severity)
    Owner.pp t.owner Addr.pp t.gpa t.len pp_kind t.kind t.detail

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  Printf.sprintf
    {|{"kind":"%s","severity":"%s","owner":"%s","gpa":%d,"hpa":%d,"len":%d,"detail":"%s"}|}
    (kind_name t.kind)
    (severity_name t.severity)
    (json_escape (Owner.to_string t.owner))
    t.gpa t.hpa t.len (json_escape t.detail)
