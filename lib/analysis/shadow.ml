open Covirt_hw

let request = Sanitize.request
let requested = Sanitize.requested
let release = Sanitize.release
let active = Sanitize.active
let violation_count = Sanitize.violation_count

type stats = Sanitize.stats = {
  accesses : int;
  ept_writes : int;
  tlb_installs : int;
}

let stats = Sanitize.stats

let convert (v : Sanitize.violation) =
  let kind =
    match v.Sanitize.kind with
    | Sanitize.Cross_owner { actual } -> Violation.Shadow_cross_owner { actual }
    | Sanitize.Freed_access -> Violation.Shadow_freed_access
    | Sanitize.Corrupt_mapping { actual } ->
        Violation.Shadow_corrupt_mapping { actual }
  in
  {
    Violation.owner = v.Sanitize.owner;
    gpa = v.Sanitize.addr;
    hpa = v.Sanitize.addr;
    len = v.Sanitize.len;
    severity = Violation.Critical;
    kind;
    detail = Format.asprintf "%a" Sanitize.pp_violation v;
  }

let violations () = List.map convert (Sanitize.violations ())

let table () =
  let t =
    Covirt_sim.Table.create ~columns:[ "kind"; "owner"; "addr"; "len"; "detail" ]
  in
  List.iter
    (fun (v : Violation.t) ->
      Covirt_sim.Table.add_row t
        [
          Violation.kind_name v.kind;
          Owner.to_string v.owner;
          Format.asprintf "%a" Addr.pp v.gpa;
          string_of_int v.len;
          v.detail;
        ])
    (violations ());
  t

let to_json () =
  let s = stats () in
  Printf.sprintf
    {|{"accesses":%d,"ept_writes":%d,"tlb_installs":%d,"violation_count":%d,"violations":[%s]}|}
    s.accesses s.ept_writes s.tlb_installs (violation_count ())
    (String.concat "," (List.map Violation.to_json (violations ())))
