open Covirt_hw
open Covirt_pisces

type report = {
  enclaves_checked : int;
  leaves_checked : int;
  grants_checked : int;
  violations : Violation.t list;
}

let clean r = r.violations = []

(* Split [piece] by the actual owner of each sub-range, from the
   authoritative Phys_mem assignment snapshot; anything no assignment
   covers is Free DRAM (or an unregistered MMIO hole above the DRAM
   limit). *)
let by_actual_owner assignments ~mmio_base piece =
  let piece_set = Region.Set.of_list [ piece ] in
  let covered, owned =
    List.fold_left
      (fun (cov, acc) (region, owner) ->
        let inter =
          Region.Set.inter piece_set (Region.Set.of_list [ region ])
        in
        if Region.Set.is_empty inter then (cov, acc)
        else
          ( Region.Set.union cov inter,
            Region.Set.fold (fun acc r -> (r, owner) :: acc) acc inter ))
      (Region.Set.empty, [])
      assignments
  in
  Region.Set.fold
    (fun acc r ->
      let owner =
        if r.Region.base >= mmio_base then Owner.Device "unmapped-mmio"
        else Owner.Free
      in
      (r, owner) :: acc)
    owned
    (Region.Set.diff piece_set covered)

let leaf_violations ~assignments ~mmio_base ~id ~allowed leaves =
  (* [leaves] is in ascending GPA order (Ept.fold_leaves).  First the
     structural check — two live leaves covering the same GPA is radix
     corruption, unreachable through the public API but checked anyway
     — then the ownership cross-check of every unblessed sub-range. *)
  let violations = ref [] in
  let emit v = violations := v :: !violations in
  let prev = ref None in
  List.iter
    (fun (base, page_size, (_ : Ept.perms)) ->
      (match !prev with
      | Some (pbase, plimit) when base < plimit ->
          emit
            {
              Violation.owner = Owner.Enclave id;
              gpa = base;
              hpa = base;
              len = plimit - base;
              severity = Violation.Critical;
              kind = Violation.Overlapping_leaves { other = pbase };
              detail =
                Format.asprintf "leaf at %a extends past %a" Addr.pp pbase
                  Addr.pp base;
            }
      | _ -> ());
      let bytes = Addr.bytes_of_page_size page_size in
      let limit = base + bytes in
      (match !prev with
      | Some (_, plimit) when plimit > limit -> ()
      | _ -> prev := Some (base, limit));
      let leaf = Region.make ~base ~len:bytes in
      Region.Set.iter
        (fun offending ->
          List.iter
            (fun (r, actual) ->
              let mk severity kind detail =
                emit
                  {
                    Violation.owner = Owner.Enclave id;
                    gpa = r.Region.base;
                    hpa = r.Region.base;
                    len = r.Region.len;
                    severity;
                    kind;
                    detail;
                  }
              in
              match actual with
              | Owner.Free ->
                  mk Violation.Critical Violation.Unbacked_mapping
                    "EPT leaf maps unassigned DRAM"
              | Owner.Enclave j when j = id ->
                  mk Violation.Warning
                    (Violation.Cross_owner_mapping { actual })
                    "owned by this enclave but outside its believed \
                     accessible set"
              | Owner.Device device ->
                  mk Violation.Critical
                    (Violation.Writable_device_bar { device })
                    (Printf.sprintf
                       "BAR of %s mapped without delegation" device)
              | actual ->
                  mk Violation.Critical
                    (Violation.Cross_owner_mapping { actual })
                    (Format.asprintf
                       "EPT leaf maps %a memory outside any registered \
                        share" Owner.pp actual))
            (by_actual_owner assignments ~mmio_base offending))
        (Region.Set.diff (Region.Set.of_list [ leaf ]) allowed))
    leaves;
  List.rev !violations

let grant_violations machine ~live ~id whitelist =
  List.filter_map
    (fun (vector, dest) ->
      let valid =
        dest >= 0
        && dest < Machine.ncores machine
        &&
        match (Machine.cpu machine dest).Cpu.owner with
        | Owner.Enclave j -> live j
        | _ -> false
      in
      if valid then None
      else
        let detail =
          if dest < 0 || dest >= Machine.ncores machine then
            Printf.sprintf "destination core %d does not exist" dest
          else
            let cpu = Machine.cpu machine dest in
            Format.asprintf
              "core %d now belongs to %a; %d vector(s) still pending in \
               its IRR"
              dest Owner.pp cpu.Cpu.owner
              (List.length (Apic.pending_vectors cpu.Cpu.apic))
        in
        Some
          {
            Violation.owner = Owner.Enclave id;
            gpa = 0;
            hpa = 0;
            len = 0;
            severity = Violation.Warning;
            kind = Violation.Stale_grant { vector; dest };
            detail;
          })
    (Covirt.Whitelist.grants whitelist)

let run ?registry ctrl =
  let pisces = Covirt.Controller.pisces ctrl in
  let machine = Pisces.machine pisces in
  let mem = machine.Machine.mem in
  let assignments = Phys_mem.snapshot mem in
  let mmio_base = Phys_mem.mmio_base mem in
  let instances = Covirt.Controller.instances ctrl in
  let live id =
    List.exists
      (fun (i : Covirt.Controller.instance) -> i.enclave.Enclave.id = id)
      instances
  in
  let shared_for id =
    match registry with
    | Some ns -> Covirt_xemem.Name_service.regions_for ns ~enclave:id
    | None -> Region.Set.empty
  in
  let leaves_checked = ref 0 in
  let grants_checked = ref 0 in
  let violations =
    List.concat_map
      (fun (i : Covirt.Controller.instance) ->
        let id = i.enclave.Enclave.id in
        let from_leaves =
          match i.ept_mgr with
          | None -> []
          | Some mgr ->
              let allowed =
                Region.Set.union
                  (Enclave.accessible i.enclave)
                  (shared_for id)
              in
              let leaves =
                Ept.fold_leaves
                  (Covirt.Ept_manager.ept mgr)
                  ~init:[]
                  ~f:(fun acc ~base ~page_size ~perms ->
                    (base, page_size, perms) :: acc)
                |> List.rev
              in
              leaves_checked := !leaves_checked + List.length leaves;
              leaf_violations ~assignments ~mmio_base ~id ~allowed leaves
        in
        grants_checked :=
          !grants_checked + List.length (Covirt.Whitelist.grants i.whitelist);
        from_leaves @ grant_violations machine ~live ~id i.whitelist)
      instances
  in
  {
    enclaves_checked = List.length instances;
    leaves_checked = !leaves_checked;
    grants_checked = !grants_checked;
    violations;
  }

let table r =
  let t =
    Covirt_sim.Table.create
      ~columns:[ "severity"; "kind"; "owner"; "gpa"; "len"; "detail" ]
  in
  List.iter
    (fun (v : Violation.t) ->
      Covirt_sim.Table.add_row t
        [
          Violation.severity_name v.severity;
          Violation.kind_name v.kind;
          Owner.to_string v.owner;
          Format.asprintf "%a" Addr.pp v.gpa;
          string_of_int v.len;
          v.detail;
        ])
    r.violations;
  t

let to_json r =
  Printf.sprintf
    {|{"enclaves_checked":%d,"leaves_checked":%d,"grants_checked":%d,"clean":%b,"violations":[%s]}|}
    r.enclaves_checked r.leaves_checked r.grants_checked (clean r)
    (String.concat "," (List.map Violation.to_json r.violations))
