(** The shadow sanitizer, in analysis-layer terms.

    A thin policy wrapper over {!Covirt_hw.Sanitize} (the hook
    registry the hw hot paths feed): request/release the mode, and
    read back what it caught as typed {!Violation.t}s instead of raw
    hw records.

    Enable it either via [Config.sanitize] on a controller attach, or
    by calling {!request} before building a stack — the next attach
    arms the shadow state for its machine.  Zero simulated-cycle cost
    and a byte-identical golden transcript are part of the contract
    (enforced by [test/test_analysis.ml]). *)

val request : unit -> unit
(** Sticky opt-in: the next controller attach arms the sanitizer. *)

val requested : unit -> bool
val release : unit -> unit
(** Clear the request and tear down any active shadow state. *)

val active : unit -> bool
(** A shadow state is currently armed and checking. *)

val violations : unit -> Violation.t list
(** What the sanitizer caught since it was armed, oldest first (the hw
    layer caps retention at 512 records; {!violation_count} keeps
    counting past the cap). *)

val violation_count : unit -> int
(** Cumulative count across re-arms — campaigns diff this per trial. *)

type stats = Covirt_hw.Sanitize.stats = {
  accesses : int;  (** translated accesses checked *)
  ept_writes : int;  (** EPT map/unmap events mirrored *)
  tlb_installs : int;  (** TLB fills mirrored *)
}

val stats : unit -> stats

val table : unit -> Covirt_sim.Table.t
(** Current violations as a rendered table. *)

val to_json : unit -> string
(** Stats plus violations as one JSON object. *)
