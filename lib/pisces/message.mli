(** Messages exchanged over the Pisces control channel.

    Pisces coordinates with its co-kernels through an in-memory
    channel: resource assignment updates flow host-to-enclave, acks
    and forwarded system calls flow back.  XEMEM page-frame lists
    ("memory lists of page frame information", Section IV-C) ride the
    same channel — the Covirt controller intercepts them before or
    after transmission depending on direction. *)

open Covirt_hw

type host_to_enclave =
  | Add_memory of { seq : int; region : Region.t }
  | Remove_memory of { seq : int; region : Region.t }
  | Xemem_map of { seq : int; segid : int; pages : Region.t list }
      (** attach: make a foreign segment's frames usable *)
  | Xemem_unmap of { seq : int; segid : int; pages : Region.t list }
  | Grant_ipi_vector of { seq : int; vector : int; peer_core : int }
  | Revoke_ipi_vector of { seq : int; vector : int; dest : int option }
      (** [dest = None] revokes the vector for every destination *)
  | Assign_device of { seq : int; device : string; window : Region.t }
      (** delegate a device's MMIO window to the enclave *)
  | Revoke_device of { seq : int; device : string; window : Region.t }
  | Syscall_reply of { seq : int; ret : int }
  | Shutdown of { seq : int }

type enclave_to_host =
  | Ready
  | Ack of { seq : int }
  | Nack of { seq : int; why : string }
  | Syscall_request of { seq : int; number : int; arg : int }
  | Console of string
  | Heartbeat of { tsc : int }
      (** periodic sign of life from the co-kernel's boot core; the
          watchdog treats its arrival as proof of progress *)

val seq_of_host_msg : host_to_enclave -> int
val pp_host_msg : Format.formatter -> host_to_enclave -> unit
val pp_enclave_msg : Format.formatter -> enclave_to_host -> unit
