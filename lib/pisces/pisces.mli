(** The Pisces co-kernel framework.

    Partitions the machine into enclaves, boots co-kernels into them,
    and runs the host side of the control protocol: dynamic memory
    assignment, XEMEM page-list transmission, IPI-vector granting,
    system-call forwarding, teardown and crash reclamation.

    Pisces itself provides {e no} protection: it trusts every
    co-kernel to respect its assignment.  Covirt attaches to the
    {!Hooks.t} exposed here. *)

open Covirt_hw

type kernel = {
  kernel_name : string;
  boot_core :
    Machine.t -> Enclave.t -> Cpu.t -> bsp:bool -> Boot_params.pisces -> unit;
      (** the co-kernel entry point the trampoline jumps to; called
          once per assigned core, boot core first *)
}

type crash = { enclave_id : int; cpu_id : int; reason : string }

type t

val create : Machine.t -> host_core:int -> t
(** The master control process runs on [host_core], which must stay
    host-owned for the lifetime of the framework. *)

val machine : t -> Machine.t
val host_cpu : t -> Cpu.t

val host_tsc : t -> int
(** Current TSC of the host control core — exposed so layers above the
    hardware boundary (e.g. the load generator) can timestamp control
    operations without reaching into [lib/hw]. *)

val core_tsc : t -> int -> int
(** Current TSC of an arbitrary core, by id. *)

val tsc_ghz : t -> float
(** The machine cost model's TSC frequency in GHz — for converting
    measured cycles to wall units above the hardware boundary. *)

val hooks : t -> Hooks.t

val enclaves : t -> Enclave.t list
(** The {e live} enclaves (newest first).  Destroyed and reclaimed
    enclaves are removed from the registry — a dense node cycling
    thousands of tenants must not grow this list monotonically. *)

val find_enclave : t -> int -> Enclave.t option
(** Live enclaves only; [None] once destroyed or reclaimed. *)

val create_enclave :
  t ->
  name:string ->
  cores:int list ->
  mem:(Numa.zone * int) list ->
  ?timer_hz:float ->
  unit ->
  (Enclave.t, string) result
(** Claim the cores and allocate contiguous memory per zone.  Fails if
    a core is the host core, offline, or already assigned, or if
    memory cannot be allocated.  [timer_hz] defaults to 10 (an LWK
    keeps its tick rate minimal). *)

val boot : t -> Enclave.t -> kernel:kernel -> (unit, string) result
(** Assign cores, build boot parameters, and enter the kernel on every
    core (through the boot interposer when one is installed).  Returns
    an error if the kernel never reported ready. *)

val add_memory :
  t -> Enclave.t -> zone:Numa.zone -> len:int -> (Region.t, string) result
(** Hot-add memory: allocate, run [pre_memory_map] hooks, transmit the
    region, await the ack. *)

val remove_memory : t -> Enclave.t -> Region.t -> (unit, string) result
(** Hot-remove: transmit, await ack, run [post_memory_unmap] hooks,
    then release the frames to the host pool — in that order. *)

val map_shared :
  t -> Enclave.t -> segid:int -> pages:Region.t list ->
  (unit, string) result
(** XEMEM attach path: [pre_memory_map] hooks first, then page-list
    transmission (charged per frame entry), then ack. *)

val unmap_shared :
  t -> Enclave.t -> segid:int -> pages:Region.t list ->
  ?skip_enclave_notify:bool -> unit -> (unit, string) result
(** XEMEM detach path: transmission + ack, then [post_memory_unmap]
    hooks.  [skip_enclave_notify] simulates the paper's war-story
    cleanup bug: the host-side teardown (including Covirt's EPT
    unmap) runs, but the co-kernel is never told and its memory map
    goes stale. *)

val assign_device :
  t -> Enclave.t -> device:string -> (Region.t, string) result
(** Delegate a device's MMIO window to the enclave: ownership moves to
    the enclave, [pre_memory_map] hooks make the window accessible in
    the virtualization context, then the kernel is told where its
    device lives.  Fails if the device is unknown or already
    delegated. *)

val revoke_device : t -> Enclave.t -> device:string -> (unit, string) result
(** Take the window back: kernel notified and acked, hooks pull the
    mapping (with flushes), ownership returns to the device. *)

val grant_ipi_vector :
  t -> Enclave.t -> vector:int -> peer_core:int -> (unit, string) result

val revoke_ipi_vector :
  ?peer_core:int -> t -> Enclave.t -> vector:int -> (unit, string) result
(** Revoke the grant for [(vector, peer_core)] only; with [peer_core]
    omitted, revoke the vector for every destination.  Grants of the
    same vector to other cores survive a narrowed revocation. *)

val set_syscall_handler : t -> (number:int -> arg:int -> int) -> unit
(** Host-side servicing of forwarded system calls. *)

val service_channel : ?max:int -> t -> Enclave.t -> int
(** Process pending enclave-to-host messages (syscall requests,
    console output); returns the number serviced.  [max] bounds how
    many messages one poll drains (all by default) — the batched mode
    the dense control plane uses to keep per-poll work amortised O(1)
    per message while preserving per-enclave FIFO order. *)

val run_guarded : t -> (unit -> 'a) -> ('a, crash) result
(** Run enclave code, converting a {!Vmx.Vm_terminated} (Covirt
    containment) into a reclaimed enclave and a [crash] result.  A
    {!Machine.Node_panic} is {e not} caught: an unprotected fault
    takes the node down, as on hardware. *)

val destroy : t -> Enclave.t -> unit
(** Graceful shutdown: notify the kernel, run destroy hooks, reclaim
    cores and memory, and drop the enclave from the live registry. *)

val reclaim_crashed : t -> Enclave.t -> reason:string -> unit
(** Post-crash reclamation (what the master control process does after
    the hypervisor reports a termination).  Also drops the enclave
    from the live registry. *)

val pp_crash : Format.formatter -> crash -> unit
