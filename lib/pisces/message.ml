open Covirt_hw

type host_to_enclave =
  | Add_memory of { seq : int; region : Region.t }
  | Remove_memory of { seq : int; region : Region.t }
  | Xemem_map of { seq : int; segid : int; pages : Region.t list }
  | Xemem_unmap of { seq : int; segid : int; pages : Region.t list }
  | Grant_ipi_vector of { seq : int; vector : int; peer_core : int }
  | Revoke_ipi_vector of { seq : int; vector : int; dest : int option }
  | Assign_device of { seq : int; device : string; window : Region.t }
  | Revoke_device of { seq : int; device : string; window : Region.t }
  | Syscall_reply of { seq : int; ret : int }
  | Shutdown of { seq : int }

type enclave_to_host =
  | Ready
  | Ack of { seq : int }
  | Nack of { seq : int; why : string }
  | Syscall_request of { seq : int; number : int; arg : int }
  | Console of string
  | Heartbeat of { tsc : int }

let seq_of_host_msg = function
  | Add_memory { seq; _ }
  | Remove_memory { seq; _ }
  | Xemem_map { seq; _ }
  | Xemem_unmap { seq; _ }
  | Grant_ipi_vector { seq; _ }
  | Revoke_ipi_vector { seq; _ }
  | Assign_device { seq; _ }
  | Revoke_device { seq; _ }
  | Syscall_reply { seq; _ }
  | Shutdown { seq } ->
      seq

let pp_host_msg ppf = function
  | Add_memory { seq; region } ->
      Format.fprintf ppf "add-memory#%d %a" seq Region.pp region
  | Remove_memory { seq; region } ->
      Format.fprintf ppf "remove-memory#%d %a" seq Region.pp region
  | Xemem_map { seq; segid; pages } ->
      Format.fprintf ppf "xemem-map#%d seg%d (%d frames)" seq segid
        (List.length pages)
  | Xemem_unmap { seq; segid; pages } ->
      Format.fprintf ppf "xemem-unmap#%d seg%d (%d frames)" seq segid
        (List.length pages)
  | Grant_ipi_vector { seq; vector; peer_core } ->
      Format.fprintf ppf "grant-ipi#%d vec%d core%d" seq vector peer_core
  | Revoke_ipi_vector { seq; vector; dest } ->
      Format.fprintf ppf "revoke-ipi#%d vec%d%s" seq vector
        (match dest with
        | Some d -> Printf.sprintf " core%d" d
        | None -> "")
  | Assign_device { seq; device; window } ->
      Format.fprintf ppf "assign-device#%d %s %a" seq device Region.pp window
  | Revoke_device { seq; device; window } ->
      Format.fprintf ppf "revoke-device#%d %s %a" seq device Region.pp window
  | Syscall_reply { seq; ret } ->
      Format.fprintf ppf "syscall-reply#%d ret=%d" seq ret
  | Shutdown { seq } -> Format.fprintf ppf "shutdown#%d" seq

let pp_enclave_msg ppf = function
  | Ready -> Format.pp_print_string ppf "ready"
  | Ack { seq } -> Format.fprintf ppf "ack#%d" seq
  | Nack { seq; why } -> Format.fprintf ppf "nack#%d (%s)" seq why
  | Syscall_request { seq; number; arg } ->
      Format.fprintf ppf "syscall#%d nr=%d arg=%d" seq number arg
  | Console s -> Format.fprintf ppf "console %S" s
  | Heartbeat { tsc } -> Format.fprintf ppf "heartbeat@%d" tsc
