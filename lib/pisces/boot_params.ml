open Covirt_hw

type pisces = {
  enclave_id : int;
  entry_addr : Addr.t;
  assigned_cores : int list;
  assigned_memory : Region.t list;
  channel : Ctrl_channel.t;
  timer_hz : float;
}

type covirt = {
  pisces_params : pisces;
  vmcs_addr : Addr.t;
  command_queue_addr : Addr.t;
  hypervisor_stack : Region.t;
}

let hypervisor_stack_bytes = 8 * 1024

let make_pisces ~enclave_id ~entry_addr ~assigned_cores ~assigned_memory
    ~channel ~timer_hz =
  { enclave_id; entry_addr; assigned_cores; assigned_memory; channel; timer_hz }

let pp_pisces ppf p =
  Format.fprintf ppf "enclave %d entry=%a cores=[%s] mem=%a" p.enclave_id
    Addr.pp p.entry_addr
    (String.concat "," (List.map string_of_int p.assigned_cores))
    Covirt_sim.Units.pp_bytes
    (List.fold_left (fun acc r -> acc + r.Region.len) 0 p.assigned_memory)
