open Covirt_hw

type t = {
  to_enclave : Message.host_to_enclave Queue.t;
  to_host : Message.enclave_to_host Queue.t;
  acks : (int, (unit, string) result) Hashtbl.t;
      (* seq -> Ok () for Ack, Error why for Nack.  Acks are routed
         here at send time so [take_ack] is a constant-time lookup
         instead of a scan of everything the enclave has pending —
         under thousands of in-flight control operations the old
         scan-and-requeue hunt was quadratic in channel depth. *)
  mutable sent : int;
  mutable to_host_count : int;
  mutable last_enclave_tsc : int;
}

let create () =
  {
    to_enclave = Queue.create ();
    to_host = Queue.create ();
    acks = Hashtbl.create 4;
    sent = 0;
    to_host_count = 0;
    last_enclave_tsc = 0;
  }

let charge machine cpu =
  Cpu.charge cpu machine.Machine.model.Cost_model.ctrl_channel_msg

let send_to_enclave machine ~host_cpu t msg =
  charge machine host_cpu;
  t.sent <- t.sent + 1;
  Queue.push msg t.to_enclave

let send_to_host machine ~enclave_cpu t msg =
  charge machine enclave_cpu;
  t.sent <- t.sent + 1;
  t.to_host_count <- t.to_host_count + 1;
  t.last_enclave_tsc <- Cpu.rdtsc enclave_cpu;
  (* Acks and nacks answer a specific sequence number; they go to the
     reply slot keyed by it.  Everything else (console, syscalls,
     heartbeats, ready) stays in FIFO order for the drain paths. *)
  match msg with
  | Message.Ack { seq } -> Hashtbl.replace t.acks seq (Ok ())
  | Message.Nack { seq; why } -> Hashtbl.replace t.acks seq (Error why)
  | _ -> Queue.push msg t.to_host

let drain q =
  let acc = ref [] in
  while not (Queue.is_empty q) do
    acc := Queue.pop q :: !acc
  done;
  List.rev !acc

let drain_enclave_side t = drain t.to_enclave
let drain_host_side t = drain t.to_host

let drain_host_side_n t ~max =
  if max < 0 then invalid_arg "Ctrl_channel.drain_host_side_n";
  let rec go n acc =
    if n = 0 then List.rev acc
    else
      match Queue.take_opt t.to_host with
      | None -> List.rev acc
      | Some m -> go (n - 1) (m :: acc)
  in
  go max []

let peek_host_side t = Queue.peek_opt t.to_host

let take_ack t ~seq =
  match Hashtbl.find_opt t.acks seq with
  | Some result ->
      Hashtbl.remove t.acks seq;
      result
  | None -> Error (Printf.sprintf "no ack for seq %d" seq)

let pending_to_enclave t = Queue.length t.to_enclave
let pending_host_side t = Queue.length t.to_host
let pending_acks t = Hashtbl.length t.acks
let messages_sent t = t.sent
let enclave_messages_sent t = t.to_host_count
let last_enclave_activity t = t.last_enclave_tsc
