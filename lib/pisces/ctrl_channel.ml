open Covirt_hw

type t = {
  to_enclave : Message.host_to_enclave Queue.t;
  to_host : Message.enclave_to_host Queue.t;
  mutable sent : int;
  mutable to_host_count : int;
  mutable last_enclave_tsc : int;
}

let create () =
  {
    to_enclave = Queue.create ();
    to_host = Queue.create ();
    sent = 0;
    to_host_count = 0;
    last_enclave_tsc = 0;
  }

let charge machine cpu =
  Cpu.charge cpu machine.Machine.model.Cost_model.ctrl_channel_msg

let send_to_enclave machine ~host_cpu t msg =
  charge machine host_cpu;
  t.sent <- t.sent + 1;
  Queue.push msg t.to_enclave

let send_to_host machine ~enclave_cpu t msg =
  charge machine enclave_cpu;
  t.sent <- t.sent + 1;
  t.to_host_count <- t.to_host_count + 1;
  t.last_enclave_tsc <- Cpu.rdtsc enclave_cpu;
  Queue.push msg t.to_host

let drain q =
  let acc = ref [] in
  while not (Queue.is_empty q) do
    acc := Queue.pop q :: !acc
  done;
  List.rev !acc

let drain_enclave_side t = drain t.to_enclave
let drain_host_side t = drain t.to_host
let peek_host_side t = Queue.peek_opt t.to_host

let take_ack t ~seq =
  (* Scan for the matching Ack/Nack, preserving other messages
     (e.g. interleaved console output or syscall requests). *)
  let others = Queue.create () in
  let rec hunt () =
    match Queue.take_opt t.to_host with
    | None -> Error (Printf.sprintf "no ack for seq %d" seq)
    | Some (Message.Ack { seq = s }) when s = seq -> Ok ()
    | Some (Message.Nack { seq = s; why }) when s = seq -> Error why
    | Some other ->
        Queue.push other others;
        hunt ()
  in
  let result = hunt () in
  (* Put unrelated messages back in order, in front of the rest. *)
  Queue.transfer t.to_host others;
  Queue.transfer others t.to_host;
  result

let pending_to_enclave t = Queue.length t.to_enclave
let messages_sent t = t.sent
let enclave_messages_sent t = t.to_host_count
let last_enclave_activity t = t.last_enclave_tsc
