open Covirt_hw

type t = {
  mutable on_enclave_created : (Enclave.t -> unit) list;
  mutable pre_memory_map : (Enclave.t -> Region.t -> unit) list;
  mutable post_memory_unmap : (Enclave.t -> Region.t -> unit) list;
  mutable pre_vector_grant : (Enclave.t -> vector:int -> peer_core:int -> unit) list;
  mutable post_vector_revoke :
    (Enclave.t -> vector:int -> dest:int option -> unit) list;
  mutable on_enclave_destroyed : (Enclave.t -> unit) list;
  mutable boot_interposer :
    (Enclave.t -> Cpu.t -> bsp:bool -> (unit -> unit) -> unit) option;
}

let create () =
  {
    on_enclave_created = [];
    pre_memory_map = [];
    post_memory_unmap = [];
    pre_vector_grant = [];
    post_vector_revoke = [];
    on_enclave_destroyed = [];
    boot_interposer = None;
  }

let fire hooks arg = List.iter (fun f -> f arg) hooks

let set_boot_interposer t f =
  match t.boot_interposer with
  | Some _ -> invalid_arg "Hooks.set_boot_interposer: already installed"
  | None -> t.boot_interposer <- Some f

let clear_boot_interposer t = t.boot_interposer <- None
