open Covirt_hw

type kernel = {
  kernel_name : string;
  boot_core :
    Machine.t -> Enclave.t -> Cpu.t -> bsp:bool -> Boot_params.pisces -> unit;
}

type crash = { enclave_id : int; cpu_id : int; reason : string }

type t = {
  machine : Machine.t;
  host_core : int;
  hooks : Hooks.t;
  mutable enclaves : Enclave.t list;
  mutable next_id : int;
  mutable syscall_handler : (number:int -> arg:int -> int) option;
}

let create machine ~host_core =
  if host_core < 0 || host_core >= Machine.ncores machine then
    invalid_arg "Pisces.create: bad host core";
  {
    machine;
    host_core;
    hooks = Hooks.create ();
    enclaves = [];
    next_id = 1;
    syscall_handler = None;
  }

let machine t = t.machine
let host_cpu t = Machine.cpu t.machine t.host_core
let host_tsc t = Cpu.rdtsc (host_cpu t)
let core_tsc t core = Cpu.rdtsc (Machine.cpu t.machine core)
let tsc_ghz t = t.machine.Machine.model.Cost_model.ghz
let hooks t = t.hooks
let enclaves t = t.enclaves
let find_enclave t id = List.find_opt (fun e -> e.Enclave.id = id) t.enclaves

let trace t fmt =
  let cpu = host_cpu t in
  Covirt_sim.Trace.recordf t.machine.Machine.trace ~tsc:cpu.Cpu.tsc
    ~cpu:cpu.Cpu.id ~severity:Covirt_sim.Trace.Info fmt

(* ------------------------------------------------------------------ *)
(* Enclave creation.                                                   *)

let core_available t id =
  if id = t.host_core then Error "core is the host control core"
  else if id < 0 || id >= Machine.ncores t.machine then Error "no such core"
  else
    let cpu = Machine.cpu t.machine id in
    if not (Owner.equal cpu.Cpu.owner Owner.Host) then
      Error (Printf.sprintf "core %d already assigned" id)
    else Ok ()

let create_enclave t ~name ~cores ~mem ?(timer_hz = 10.0) () =
  let rec check_cores = function
    | [] -> Ok ()
    | c :: rest -> (
        match core_available t c with
        | Ok () -> check_cores rest
        | Error _ as e -> e)
  in
  match check_cores cores with
  | Error e -> Error e
  | Ok () -> (
      let id = t.next_id in
      let enclave = Enclave.make ~id ~name ~cores in
      let rec alloc_all acc = function
        | [] -> Ok (List.rev acc)
        | (zone, len) :: rest -> (
            match
              Phys_mem.alloc t.machine.Machine.mem ~owner:(Owner.Enclave id)
                ~zone ~len
            with
            | Ok region -> alloc_all (region :: acc) rest
            | Error e ->
                (* Roll back partial allocations. *)
                List.iter (Phys_mem.release t.machine.Machine.mem) acc;
                Error e)
      in
      match alloc_all [] mem with
      | Error e -> Error e
      | Ok regions ->
          t.next_id <- t.next_id + 1;
          enclave.Enclave.memory <- Region.Set.of_list regions;
          enclave.Enclave.timer_hz <- timer_hz;
          t.enclaves <- enclave :: t.enclaves;
          trace t "created enclave %d (%s)" id name;
          Hooks.fire t.hooks.Hooks.on_enclave_created enclave;
          Ok enclave)

(* ------------------------------------------------------------------ *)
(* Boot.                                                               *)

let entry_offset = 0x100000 (* co-kernel image loaded 1 MiB into the region *)

let boot t enclave ~kernel =
  if enclave.Enclave.state <> Enclave.Created then
    Error "enclave not in created state"
  else begin
    enclave.Enclave.state <- Enclave.Booting;
    let first_region =
      match Region.Set.to_list enclave.Enclave.memory with
      | r :: _ -> r
      | [] -> invalid_arg "Pisces.boot: enclave has no memory"
    in
    let timer_hz = enclave.Enclave.timer_hz in
    let params =
      Boot_params.make_pisces ~enclave_id:enclave.Enclave.id
        ~entry_addr:(first_region.Region.base + entry_offset)
        ~assigned_cores:enclave.Enclave.cores
        ~assigned_memory:(Region.Set.to_list enclave.Enclave.memory)
        ~channel:enclave.Enclave.channel ~timer_hz
    in
    enclave.Enclave.boot_params <- Some params;
    let owner = Owner.Enclave enclave.Enclave.id in
    List.iter
      (fun core ->
        let cpu = Machine.cpu t.machine core in
        cpu.Cpu.owner <- owner;
        Apic.set_timer_hz cpu.Cpu.apic timer_hz)
      enclave.Enclave.cores;
    let bsp_core = Enclave.bsp enclave in
    List.iter
      (fun core ->
        let cpu = Machine.cpu t.machine core in
        let bsp = core = bsp_core in
        let jump () = kernel.boot_core t.machine enclave cpu ~bsp params in
        match t.hooks.Hooks.boot_interposer with
        | None -> jump ()
        | Some interpose -> interpose enclave cpu ~bsp jump)
      enclave.Enclave.cores;
    (* The kernel reports ready on its control channel once the boot
       core finishes initialization. *)
    let ready =
      List.exists
        (function Message.Ready -> true | _ -> false)
        (Ctrl_channel.drain_host_side enclave.Enclave.channel)
    in
    if ready then begin
      enclave.Enclave.state <- Enclave.Running;
      trace t "enclave %d (%s) running %s" enclave.Enclave.id
        enclave.Enclave.name kernel.kernel_name;
      Ok ()
    end
    else Error "co-kernel never reported ready"
  end

(* ------------------------------------------------------------------ *)
(* Synchronous control operations.                                     *)

let deliver_pending t enclave =
  match enclave.Enclave.msg_handler with
  | None -> ()
  | Some handler ->
      List.iter handler (Ctrl_channel.drain_enclave_side enclave.Enclave.channel);
      ignore t

let transact t enclave msg ~seq =
  Ctrl_channel.send_to_enclave t.machine ~host_cpu:(host_cpu t)
    enclave.Enclave.channel msg;
  deliver_pending t enclave;
  Ctrl_channel.take_ack enclave.Enclave.channel ~seq

let charge_page_list t ?(overlapped = 0) pages =
  let frames =
    List.fold_left
      (fun acc r -> acc + (r.Region.len / Addr.page_size_4k))
      0 pages
  in
  let cycles = frames * t.machine.Machine.model.Cost_model.page_list_per_page in
  Cpu.charge (host_cpu t) (max 0 (cycles - overlapped))

let add_memory t enclave ~zone ~len =
  if not (Enclave.is_running enclave) then Error "enclave not running"
  else
    match
      Phys_mem.alloc t.machine.Machine.mem
        ~owner:(Owner.Enclave enclave.Enclave.id) ~zone ~len
    with
    | Error e -> Error e
    | Ok region -> (
        (* Protection-before-visibility: hooks map the region into the
           virtualization context before the kernel hears about it.
           The hook work (EPT updates) proceeds concurrently with the
           page-frame-list marshalling, so the critical path pays the
           longer of the two — the paper's "masked by other
           operations". *)
        let hook_start = Cpu.rdtsc (host_cpu t) in
        List.iter
          (fun f -> f enclave region)
          t.hooks.Hooks.pre_memory_map;
        let hook_cycles = Cpu.rdtsc (host_cpu t) - hook_start in
        let seq = Enclave.next_seq enclave in
        charge_page_list t ~overlapped:hook_cycles [ region ];
        match transact t enclave (Message.Add_memory { seq; region }) ~seq with
        | Ok () ->
            enclave.Enclave.memory <- Region.Set.add enclave.Enclave.memory region;
            Ok region
        | Error e ->
            Phys_mem.release t.machine.Machine.mem region;
            Error e)

let remove_memory t enclave region =
  if not (Enclave.is_running enclave) then Error "enclave not running"
  else if
    not
      (Region.Set.mem_range enclave.Enclave.memory ~base:region.Region.base
         ~len:region.Region.len)
  then Error "region not assigned to enclave"
  else
    let seq = Enclave.next_seq enclave in
    charge_page_list t [ region ];
    match transact t enclave (Message.Remove_memory { seq; region }) ~seq with
    | Error e -> Error e
    | Ok () ->
        (* Ack received: the kernel dropped the region from its map.
           Now the hooks pull it from the virtualization context (with
           TLB flushes) and only then do the frames return to the host
           pool. *)
        List.iter (fun f -> f enclave region) t.hooks.Hooks.post_memory_unmap;
        enclave.Enclave.memory <- Region.Set.remove enclave.Enclave.memory region;
        Phys_mem.release t.machine.Machine.mem region;
        Ok ()

let map_shared t enclave ~segid ~pages =
  if not (Enclave.is_running enclave) then Error "enclave not running"
  else begin
    let hook_start = Cpu.rdtsc (host_cpu t) in
    List.iter
      (fun region ->
        List.iter (fun f -> f enclave region) t.hooks.Hooks.pre_memory_map)
      pages;
    let hook_cycles = Cpu.rdtsc (host_cpu t) - hook_start in
    let seq = Enclave.next_seq enclave in
    charge_page_list t ~overlapped:hook_cycles pages;
    match transact t enclave (Message.Xemem_map { seq; segid; pages }) ~seq with
    | Ok () ->
        enclave.Enclave.shared <-
          List.fold_left Region.Set.add enclave.Enclave.shared pages;
        Ok ()
    | Error e -> Error e
  end

let unmap_shared t enclave ~segid ~pages ?(skip_enclave_notify = false) () =
  if not (Enclave.is_running enclave) then Error "enclave not running"
  else begin
    let notify_result =
      if skip_enclave_notify then Ok ()
        (* The war-story bug: the co-kernel is never told, its
           believed map keeps the stale segment. *)
      else begin
        let seq = Enclave.next_seq enclave in
        charge_page_list t pages;
        transact t enclave (Message.Xemem_unmap { seq; segid; pages }) ~seq
      end
    in
    match notify_result with
    | Error e -> Error e
    | Ok () ->
        List.iter
          (fun region ->
            List.iter
              (fun f -> f enclave region)
              t.hooks.Hooks.post_memory_unmap)
          pages;
        enclave.Enclave.shared <-
          List.fold_left Region.Set.remove enclave.Enclave.shared pages;
        Ok ()
  end

let assign_device t enclave ~device =
  if not (Enclave.is_running enclave) then Error "enclave not running"
  else
    match Phys_mem.find_device t.machine.Machine.mem ~name:device with
    | None -> Error (Printf.sprintf "no device %S" device)
    | Some window -> (
        match Phys_mem.owner_at t.machine.Machine.mem window.Region.base with
        | Owner.Device _ ->
            Phys_mem.chown t.machine.Machine.mem window
              (Owner.Enclave enclave.Enclave.id);
            List.iter
              (fun f -> f enclave window)
              t.hooks.Hooks.pre_memory_map;
            let seq = Enclave.next_seq enclave in
            (match
               transact t enclave
                 (Message.Assign_device { seq; device; window })
                 ~seq
             with
            | Ok () ->
                enclave.Enclave.devices <-
                  (device, window) :: enclave.Enclave.devices;
                Ok window
            | Error e ->
                Phys_mem.chown t.machine.Machine.mem window
                  (Owner.Device device);
                Error e)
        | Owner.Host | Owner.Enclave _ | Owner.Free ->
            Error (Printf.sprintf "device %S already delegated" device))

let revoke_device t enclave ~device =
  if not (Enclave.is_running enclave) then Error "enclave not running"
  else
    match List.assoc_opt device enclave.Enclave.devices with
    | None -> Error (Printf.sprintf "device %S not held by enclave" device)
    | Some window -> (
        let seq = Enclave.next_seq enclave in
        match
          transact t enclave (Message.Revoke_device { seq; device; window }) ~seq
        with
        | Error e -> Error e
        | Ok () ->
            List.iter
              (fun f -> f enclave window)
              t.hooks.Hooks.post_memory_unmap;
            enclave.Enclave.devices <-
              List.remove_assoc device enclave.Enclave.devices;
            Phys_mem.chown t.machine.Machine.mem window (Owner.Device device);
            Ok ())

let grant_ipi_vector t enclave ~vector ~peer_core =
  if not (Enclave.is_running enclave) then Error "enclave not running"
  else begin
    List.iter
      (fun f -> f enclave ~vector ~peer_core)
      t.hooks.Hooks.pre_vector_grant;
    let seq = Enclave.next_seq enclave in
    match
      transact t enclave
        (Message.Grant_ipi_vector { seq; vector; peer_core })
        ~seq
    with
    | Ok () ->
        enclave.Enclave.granted_vectors <-
          (vector, peer_core) :: enclave.Enclave.granted_vectors;
        Ok ()
    | Error e -> Error e
  end

let revoke_ipi_vector ?peer_core t enclave ~vector =
  if not (Enclave.is_running enclave) then Error "enclave not running"
  else
    let seq = Enclave.next_seq enclave in
    match
      transact t enclave
        (Message.Revoke_ipi_vector { seq; vector; dest = peer_core })
        ~seq
    with
    | Ok () ->
        enclave.Enclave.granted_vectors <-
          List.filter
            (fun (v, d) ->
              v <> vector
              || match peer_core with Some pc -> d <> pc | None -> false)
            enclave.Enclave.granted_vectors;
        List.iter
          (fun f -> f enclave ~vector ~dest:peer_core)
          t.hooks.Hooks.post_vector_revoke;
        Ok ()
    | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Syscall forwarding (host side).                                     *)

let set_syscall_handler t handler = t.syscall_handler <- Some handler

let service_channel ?max t enclave =
  let messages =
    match max with
    | None -> Ctrl_channel.drain_host_side enclave.Enclave.channel
    | Some n -> Ctrl_channel.drain_host_side_n enclave.Enclave.channel ~max:n
  in
  let serviced = ref 0 in
  List.iter
    (fun msg ->
      match msg with
      | Message.Syscall_request { seq; number; arg } ->
          incr serviced;
          let ret =
            match t.syscall_handler with
            | Some handler -> handler ~number ~arg
            | None -> -38 (* -ENOSYS *)
          in
          Ctrl_channel.send_to_enclave t.machine ~host_cpu:(host_cpu t)
            enclave.Enclave.channel
            (Message.Syscall_reply { seq; ret });
          deliver_pending t enclave
      | Message.Console line ->
          incr serviced;
          trace t "enclave %d console: %s" enclave.Enclave.id line
      | Message.Heartbeat _ ->
          (* Liveness only: the channel already recorded the activity
             at send time; nothing to service. *)
          ()
      | Message.Ready | Message.Ack _ | Message.Nack _ -> ())
    messages;
  !serviced

(* ------------------------------------------------------------------ *)
(* Teardown and crash handling.                                        *)

let release_resources t enclave =
  Region.Set.iter
    (fun r -> Phys_mem.release t.machine.Machine.mem r)
    enclave.Enclave.memory;
  List.iter
    (fun (device, window) ->
      Phys_mem.chown t.machine.Machine.mem window (Owner.Device device))
    enclave.Enclave.devices;
  enclave.Enclave.devices <- [];
  enclave.Enclave.memory <- Region.Set.empty;
  enclave.Enclave.shared <- Region.Set.empty;
  (* Per-vector grant state must not outlive the enclave: a dead
     enclave with live grants is exactly the stale-grant violation the
     static verifier hunts. *)
  enclave.Enclave.granted_vectors <- [];
  List.iter
    (fun core ->
      let cpu = Machine.cpu t.machine core in
      Vmx.teardown cpu;
      cpu.Cpu.owner <- Owner.Host;
      cpu.Cpu.isr <- None;
      cpu.Cpu.guest_pt <- None;
      Apic.set_timer_hz cpu.Cpu.apic 0.0)
    enclave.Enclave.cores

(* The registry must hold live enclaves only: with thousands of
   tenants cycling through create/destroy, a grow-only list makes
   [find_enclave] O(everything that ever existed) and is itself a
   monotonic leak.  The caller's [Enclave.t] record stays valid (state
   records the outcome); it just no longer appears in [enclaves]. *)
let forget t enclave =
  t.enclaves <-
    List.filter (fun e -> e.Enclave.id <> enclave.Enclave.id) t.enclaves

let destroy t enclave =
  (if Enclave.is_running enclave then
     let seq = Enclave.next_seq enclave in
     ignore (transact t enclave (Message.Shutdown { seq }) ~seq));
  Hooks.fire t.hooks.Hooks.on_enclave_destroyed enclave;
  release_resources t enclave;
  enclave.Enclave.state <- Enclave.Stopped;
  forget t enclave;
  trace t "enclave %d destroyed" enclave.Enclave.id

let reclaim_crashed t enclave ~reason =
  Hooks.fire t.hooks.Hooks.on_enclave_destroyed enclave;
  release_resources t enclave;
  enclave.Enclave.state <- Enclave.Crashed reason;
  forget t enclave;
  trace t "enclave %d reclaimed after crash: %s" enclave.Enclave.id reason

let run_guarded t f =
  try Ok (f ()) with
  | Vmx.Vm_terminated { cpu_id; enclave; reason } ->
      (match find_enclave t enclave with
      | Some e -> reclaim_crashed t e ~reason
      | None -> ());
      Error { enclave_id = enclave; cpu_id; reason }

let pp_crash ppf { enclave_id; cpu_id; reason } =
  Format.fprintf ppf "enclave %d terminated on cpu %d: %s" enclave_id cpu_id
    reason
