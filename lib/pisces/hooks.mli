(** Resource-management hook points.

    Covirt's controller "places a series of callback routines into
    various locations within the Hobbes infrastructure in order to
    capture notifications when resource management operations are
    performed" (Section IV-C).  These are those locations.  The hook
    ordering encodes the paper's consistency protocol:

    - [pre_memory_map] runs {e before} a page-frame list is
      transmitted to the co-kernel, so new memory is mapped in the
      virtualization context before the kernel can possibly touch it;
    - [post_memory_unmap] runs {e after} the co-kernel has
      acknowledged removal but {e before} the memory is released to
      the host, so frames leave the virtualization context (with TLB
      flushes completed) before anyone can reuse them.

    [boot_interposer] is the enclave-initialization hook: Covirt
    replaces the direct jump into the co-kernel with hypervisor
    setup + VM launch. *)

open Covirt_hw

type t = {
  mutable on_enclave_created : (Enclave.t -> unit) list;
  mutable pre_memory_map : (Enclave.t -> Region.t -> unit) list;
  mutable post_memory_unmap : (Enclave.t -> Region.t -> unit) list;
  mutable pre_vector_grant : (Enclave.t -> vector:int -> peer_core:int -> unit) list;
  mutable post_vector_revoke :
    (Enclave.t -> vector:int -> dest:int option -> unit) list;
      (** [dest = None] means every destination for the vector was
          revoked; [Some core] narrows it to one grant *)
  mutable on_enclave_destroyed : (Enclave.t -> unit) list;
  mutable boot_interposer :
    (Enclave.t -> Cpu.t -> bsp:bool -> (unit -> unit) -> unit) option;
}

val create : unit -> t
(** All hook lists empty, no interposer. *)

val fire : ('a -> unit) list -> 'a -> unit
(** Run hooks in registration order. *)

val set_boot_interposer :
  t -> (Enclave.t -> Cpu.t -> bsp:bool -> (unit -> unit) -> unit) -> unit
(** [Invalid_argument] if one is already installed (only one Covirt
    instance can own an enclave's boot path). *)

val clear_boot_interposer : t -> unit
