(** The host/enclave control channel.

    A pair of in-memory message queues living in a shared page that is
    part of the boot-parameter structure.  Sends charge the executing
    core the channel-message cost; delivery is by explicit drain (the
    receiving kernel polls it from its message loop) or, for the
    synchronous host-side operations, by the framework running the
    enclave's registered handler inline.

    Ack/Nack replies are kept in a per-sequence reply slot rather than
    the FIFO, so {!take_ack} is O(1) whatever the channel depth, and a
    batched drain ({!drain_host_side_n}) never has to step over
    replies to reach serviceable traffic.  Per-enclave FIFO order of
    the non-reply messages is preserved exactly. *)

open Covirt_hw

type t

val create : unit -> t

val send_to_enclave : Machine.t -> host_cpu:Cpu.t -> t ->
  Message.host_to_enclave -> unit

val send_to_host : Machine.t -> enclave_cpu:Cpu.t -> t ->
  Message.enclave_to_host -> unit

val drain_enclave_side : t -> Message.host_to_enclave list
(** All pending host-to-enclave messages, in order. *)

val drain_host_side : t -> Message.enclave_to_host list
(** All pending non-reply enclave-to-host messages, in order.
    Ack/Nack replies never appear here; they are consumed through
    {!take_ack}. *)

val drain_host_side_n : t -> max:int -> Message.enclave_to_host list
(** Like {!drain_host_side} but at most [max] messages — the batched
    poll the dense control plane uses to bound per-poll work while
    keeping FIFO order.  [Invalid_argument] on negative [max]. *)

val peek_host_side : t -> Message.enclave_to_host option
(** Without removing. *)

val take_ack : t -> seq:int -> (unit, string) result
(** Remove the Ack/Nack for [seq] from the reply slot; an error if the
    reply is a [Nack] or no reply is pending (the co-kernel never
    answered — a protocol bug).  O(1), independent of how much other
    traffic is pending. *)

val pending_to_enclave : t -> int

val pending_host_side : t -> int
(** Non-reply messages awaiting a host-side drain. *)

val pending_acks : t -> int
(** Unclaimed Ack/Nack replies.  A quiesced enclave should have none;
    a monotonic count here is a leaked-transaction bug. *)

val messages_sent : t -> int

val enclave_messages_sent : t -> int
(** Count of enclave-to-host sends only — any traffic here (acks,
    syscalls, console, heartbeats) is a sign of life from the
    co-kernel, which is what the watchdog monitors. *)

val last_enclave_activity : t -> int
(** TSC of the sending enclave core at its most recent
    enclave-to-host message (0 if it never sent one). *)
