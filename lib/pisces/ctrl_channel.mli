(** The host/enclave control channel.

    A pair of in-memory message queues living in a shared page that is
    part of the boot-parameter structure.  Sends charge the executing
    core the channel-message cost; delivery is by explicit drain (the
    receiving kernel polls it from its message loop) or, for the
    synchronous host-side operations, by the framework running the
    enclave's registered handler inline. *)

open Covirt_hw

type t

val create : unit -> t

val send_to_enclave : Machine.t -> host_cpu:Cpu.t -> t ->
  Message.host_to_enclave -> unit

val send_to_host : Machine.t -> enclave_cpu:Cpu.t -> t ->
  Message.enclave_to_host -> unit

val drain_enclave_side : t -> Message.host_to_enclave list
(** All pending host-to-enclave messages, in order. *)

val drain_host_side : t -> Message.enclave_to_host list

val peek_host_side : t -> Message.enclave_to_host option
(** Without removing. *)

val take_ack : t -> seq:int -> (unit, string) result
(** Remove the Ack/Nack for [seq] from the host-side queue; an error
    if the next ackable message is a [Nack] or no reply is pending
    (the co-kernel never answered — a protocol bug). *)

val pending_to_enclave : t -> int
val messages_sent : t -> int

val enclave_messages_sent : t -> int
(** Count of enclave-to-host sends only — any traffic here (acks,
    syscalls, console, heartbeats) is a sign of life from the
    co-kernel, which is what the watchdog monitors. *)

val last_enclave_activity : t -> int
(** TSC of the sending enclave core at its most recent
    enclave-to-host message (0 if it never sent one). *)
