(** Enclave state (host-side view).

    An enclave is a hardware partition — cores, memory, IPI vectors —
    plus the lifecycle of the OS/R running in it.  The [memory] and
    [shared] sets are the {e host's authoritative view} of what the
    enclave may touch; the co-kernel keeps its own believed memory map
    inside its kernel state, and the divergence between the two is
    exactly the class of bug Covirt contains. *)

open Covirt_hw

type state =
  | Created
  | Booting
  | Running
  | Crashed of string
  | Stopped

type t = {
  id : int;
  name : string;
  mutable state : state;
  mutable cores : int list;  (** first element is the boot core *)
  mutable memory : Region.Set.t;  (** owned RAM *)
  mutable shared : Region.Set.t;  (** attached XEMEM frames (foreign-owned) *)
  mutable granted_vectors : (int * int) list;  (** (vector, peer core) *)
  mutable devices : (string * Region.t) list;
      (** delegated device MMIO windows *)
  channel : Ctrl_channel.t;
  mutable boot_params : Boot_params.pisces option;
  mutable msg_handler : (Message.host_to_enclave -> unit) option;
      (** installed by the co-kernel at boot; runs on the boot core *)
  mutable seq : int;  (** control-channel sequence counter *)
  mutable timer_hz : float;  (** LWK tick rate chosen at creation *)
}

val make : id:int -> name:string -> cores:int list -> t
val next_seq : t -> int
val bsp : t -> int
(** Boot core id. *)

val accessible : t -> Region.Set.t
(** [memory] union [shared] union delegated device windows: everything
    the enclave is entitled to touch — the set Covirt's EPT must
    mirror. *)

val is_running : t -> bool
val pp_state : Format.formatter -> state -> unit
val pp : Format.formatter -> t -> unit
