(** Boot-parameter structures.

    Pisces passes a co-kernel its initial configuration through a
    structure in memory whose address the trampoline hands over in a
    register.  When Covirt interposes, it {e replaces} that structure
    with its own — containing the VM configuration and the hypervisor
    command queue — and tucks a pointer to the unmodified Pisces
    structure inside, which is what the co-kernel ultimately receives
    (Section IV-C, "Initializing Covirt").  Modelling both structures
    separately keeps that transparency property testable: the
    co-kernel sees an identical [pisces] structure whether or not
    Covirt is underneath it. *)

open Covirt_hw

type pisces = {
  enclave_id : int;
  entry_addr : Addr.t;  (** where the trampoline jumps *)
  assigned_cores : int list;
  assigned_memory : Region.t list;
  channel : Ctrl_channel.t;
  timer_hz : float;
}

type covirt = {
  pisces_params : pisces;  (** address passed to the co-kernel at VM launch *)
  vmcs_addr : Addr.t;  (** where the controller wrote the VMCS *)
  command_queue_addr : Addr.t;
  hypervisor_stack : Region.t;  (** the preallocated 8KB stack *)
}

val hypervisor_stack_bytes : int
(** 8 KiB, per the paper. *)

val make_pisces :
  enclave_id:int ->
  entry_addr:Addr.t ->
  assigned_cores:int list ->
  assigned_memory:Region.t list ->
  channel:Ctrl_channel.t ->
  timer_hz:float ->
  pisces

val pp_pisces : Format.formatter -> pisces -> unit
