open Covirt_hw

type state =
  | Created
  | Booting
  | Running
  | Crashed of string
  | Stopped

type t = {
  id : int;
  name : string;
  mutable state : state;
  mutable cores : int list;
  mutable memory : Region.Set.t;
  mutable shared : Region.Set.t;
  mutable granted_vectors : (int * int) list;
  mutable devices : (string * Region.t) list;
  channel : Ctrl_channel.t;
  mutable boot_params : Boot_params.pisces option;
  mutable msg_handler : (Message.host_to_enclave -> unit) option;
  mutable seq : int;
  mutable timer_hz : float;
}

let make ~id ~name ~cores =
  if cores = [] then invalid_arg "Enclave.make: no cores";
  {
    id;
    name;
    state = Created;
    cores;
    memory = Region.Set.empty;
    shared = Region.Set.empty;
    granted_vectors = [];
    devices = [];
    channel = Ctrl_channel.create ();
    boot_params = None;
    msg_handler = None;
    seq = 0;
    timer_hz = 10.0;
  }

let next_seq t =
  t.seq <- t.seq + 1;
  t.seq

let bsp t =
  match t.cores with
  | c :: _ -> c
  | [] -> invalid_arg "Enclave.bsp: no cores"

let accessible t =
  List.fold_left
    (fun acc (_, window) -> Region.Set.add acc window)
    (Region.Set.union t.memory t.shared)
    t.devices
let is_running t = t.state = Running

let pp_state ppf = function
  | Created -> Format.pp_print_string ppf "created"
  | Booting -> Format.pp_print_string ppf "booting"
  | Running -> Format.pp_print_string ppf "running"
  | Crashed why -> Format.fprintf ppf "crashed(%s)" why
  | Stopped -> Format.pp_print_string ppf "stopped"

let pp ppf t =
  Format.fprintf ppf "enclave %d (%s) %a cores=[%s] mem=%a shared=%a" t.id
    t.name pp_state t.state
    (String.concat "," (List.map string_of_int t.cores))
    Covirt_sim.Units.pp_bytes
    (Region.Set.total_bytes t.memory)
    Covirt_sim.Units.pp_bytes
    (Region.Set.total_bytes t.shared)
