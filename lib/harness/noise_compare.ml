open Covirt_hw
open Covirt_workloads

type row = {
  environment : string;
  detours : int;
  noise_fraction : float;
  max_detour_us : float;
}

(* Linux-grade noise: a 250 Hz tick plus frequent daemon/softirq
   activity (mean interarrival 2 ms, ~30 us apiece). *)
let linux_timer_hz = 250.0
let linux_background_mean_s = 0.002
let linux_background_cost = 50_000

let summarize environment (r : Selfish.result) =
  {
    environment;
    detours = List.length r.Selfish.detours;
    noise_fraction = r.Selfish.noise_fraction;
    max_detour_us =
      List.fold_left
        (fun acc d -> Float.max acc d.Selfish.duration_us)
        0.0 r.Selfish.detours;
  }

let host_row ~duration_s ~seed =
  let machine =
    Machine.create ~seed ~zones:1 ~cores_per_zone:2
      ~mem_per_zone:(2 * Covirt_sim.Units.gib) ()
  in
  let cpu = Machine.cpu machine 1 in
  Apic.set_timer_hz cpu.Cpu.apic linux_timer_hz;
  summarize "host Linux core (250 Hz + daemons)"
    (Selfish.run_on_cpu machine cpu ~duration_s
       ~background_mean_s:linux_background_mean_s
       ~background_cost_cycles:linux_background_cost ())

let enclave_row ~duration_s ~seed ~config name =
  Experiments.with_setup ~config ~layout:Experiments.layout_1x1 ~seed
    (fun setup ->
      let ctx = List.hd (Experiments.contexts setup) in
      summarize name (Selfish.run ctx ~duration_s ()))

let run ?(duration_s = 2.0) ?(seed = 42) () =
  [
    host_row ~duration_s ~seed;
    enclave_row ~duration_s ~seed ~config:Covirt.Config.native
      "Kitten enclave, native";
    enclave_row ~duration_s ~seed ~config:Covirt.Config.mem_ipi
      "Kitten enclave, Covirt mem+ipi";
  ]

let table rows =
  let t =
    Covirt_sim.Table.create
      ~columns:[ "environment"; "detours"; "noise fraction"; "max detour (us)" ]
  in
  List.iter
    (fun r ->
      Covirt_sim.Table.add_row t
        [
          r.environment;
          string_of_int r.detours;
          Format.asprintf "%.5f%%" (r.noise_fraction *. 100.0);
          Covirt_sim.Table.cell_f r.max_detour_us;
        ])
    rows;
  t
