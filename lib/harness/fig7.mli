(** Fig. 7 — HPCG scaling over CPU-core/NUMA-zone layouts.

    Expected shape: "Covirt does impose minor overheads, but they stay
    consistent across Covirt feature configurations and varying
    hardware layout configurations ... in the worst case, Covirt only
    degrades HPCG's performance by 1.4%." *)

type cell = { config : string; gflops : float; overhead : float }
type row = { layout : string; cells : cell list }

val run : ?quick:bool -> ?seed:int -> unit -> row list
val table : row list -> Covirt_sim.Table.t
val worst_overhead : row list -> float
(** Worst overhead across every layout and non-native config. *)
