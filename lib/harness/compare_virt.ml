open Covirt_hw

open Covirt_kitten

type ipc_row = { architecture : string; cycles_per_message : float }

let mib = Covirt_sim.Units.mib
let gib = Covirt_sim.Units.gib

let measured_ipc ~words ~messages config =
  let machine =
    Machine.create ~zones:2 ~cores_per_zone:3 ~mem_per_zone:(4 * gib) ()
  in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let _controller = Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes) ~config in
  let launch name cores zone =
    match
      Covirt_hobbes.Hobbes.launch_enclave hobbes ~name ~cores
        ~mem:[ (zone, 512 * mib) ] ()
    with
    | Ok pair -> pair
    | Error e -> failwith e
  in
  let producer = launch "p" [ 1 ] 0 in
  let consumer = launch "c" [ 3 ] 1 in
  let channel =
    match
      Covirt_hobbes.Ipc.connect hobbes ~producer ~consumer ~name:"cmp"
        ~ring_bytes:(words * 8)
    with
    | Ok ch -> ch
    | Error e -> failwith e
  in
  let ctx = Kitten.context (snd producer) ~core:1 in
  let cons_cpu = Machine.cpu machine 3 in
  let t0 = Cpu.rdtsc ctx.Kitten.cpu + Cpu.rdtsc cons_cpu in
  for _ = 1 to messages do
    Covirt_hobbes.Ipc.send channel ctx ~words
  done;
  let t1 = Cpu.rdtsc ctx.Kitten.cpu + Cpu.rdtsc cons_cpu in
  float_of_int (t1 - t0) /. float_of_int messages

let ipc ?(words = 64) ?(messages = 500) () =
  [
    {
      architecture = "native co-kernels";
      cycles_per_message = measured_ipc ~words ~messages Covirt.Config.native;
    };
    {
      architecture = "Covirt (mem+ipi)";
      cycles_per_message = measured_ipc ~words ~messages Covirt.Config.mem_ipi;
    };
    {
      architecture = "full virtualization (model)";
      cycles_per_message =
        Covirt_baselines.Full_virt.ipc_message_cycles Cost_model.default ~words;
    };
  ]

let ipc_table rows =
  let t =
    Covirt_sim.Table.create ~columns:[ "architecture"; "cycles/message" ]
  in
  List.iter
    (fun r ->
      Covirt_sim.Table.add_row t
        [ r.architecture; Format.asprintf "%.0f" r.cycles_per_message ])
    rows;
  t

type share_row = {
  size_bytes : int;
  covirt_attach_us : float;
  full_virt_us : float;
  ratio : float;
}

let sharing ?(quick = false) () =
  let points = Fig4.run ~quick () in
  List.map
    (fun p ->
      let full_virt_us =
        Covirt_baselines.Full_virt.attach_equivalent_us Cost_model.default
          ~bytes:p.Fig4.size_bytes ~vcpus:1
      in
      {
        size_bytes = p.Fig4.size_bytes;
        covirt_attach_us = p.Fig4.covirt_us;
        full_virt_us;
        ratio = full_virt_us /. p.Fig4.covirt_us;
      })
    points

let sharing_table rows =
  let t =
    Covirt_sim.Table.create
      ~columns:
        [ "region size"; "covirt attach (us)"; "full-virt remap (us)"; "ratio" ]
  in
  List.iter
    (fun r ->
      Covirt_sim.Table.add_row t
        [
          Format.asprintf "%a" Covirt_sim.Units.pp_bytes r.size_bytes;
          Covirt_sim.Table.cell_f r.covirt_attach_us;
          Covirt_sim.Table.cell_f r.full_virt_us;
          Format.asprintf "%.1fx" r.ratio;
        ])
    rows;
  t
