(** Fig. 4 — XEMEM attach delay vs region size, Covirt on/off.

    "Operation latencies were measured by sampling the co-kernel's
    hardware TSC counter immediately before and after an XEMEM attach
    operation" for region sizes up to 1024 MB.  The expected result:
    Covirt imposes little to no overhead, because the controller's EPT
    update is coalesced into a handful of large-page entry writes and
    is dwarfed by the per-frame page-list transmission both
    configurations pay. *)

type point = {
  size_bytes : int;
  native_us : float;
  covirt_us : float;
  overhead : float;  (** relative *)
}

val run : ?quick:bool -> ?seed:int -> unit -> point list
(** Region sizes 1 MB .. 1024 MB in powers of two ([quick]: up to
    64 MB). *)

val table : point list -> Covirt_sim.Table.t
