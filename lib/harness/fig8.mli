(** Fig. 8 — LAMMPS loop times per workload and configuration.

    8-core enclave split across 2 NUMA zones, the four stock
    benchmarks.  Expected shape: LJ, EAM and chain are flat across
    configurations; chute is the most protection-sensitive, with
    native and no-feature fastest. *)

type cell = { config : string; loop_seconds : float; overhead : float }
type row = { bench : string; cells : cell list }

val run : ?quick:bool -> ?seed:int -> unit -> row list
val table : row list -> Covirt_sim.Table.t
val chute_is_most_sensitive : row list -> bool
