(** Randomized fault-injection campaign.

    The statistical version of the containment story: inject a random
    fault from the paper's taxonomy (wild writes at random addresses,
    phantom-map touches, errant IPIs with random vectors/destinations,
    MSR/port/abort events) into a fresh two-enclave stack, under each
    protection configuration, many times — and tabulate what happened:

    - {b contained}: the offending enclave was terminated (or the
      operation dropped) and nothing else was harmed;
    - {b node down}: the injected fault killed the simulated node;
    - {b collateral}: some other tenant was corrupted or crashed;
    - {b latent}: the fault executed with no detected consequence (a
      write to free memory — a time bomb).

    The expected shape: native contains nothing; each feature contains
    exactly its fault classes; the full configuration contains
    everything. *)

type outcome = Contained | Node_down | Collateral | Latent

type row = {
  config : string;
  trials : int;
  contained : int;
  node_down : int;
  collateral : int;
  latent : int;
  sanitizer_flagged : int;
      (** trials in which the shadow sanitizer flagged at least one
          ownership violation; [0] when [sanitize] was off *)
}

val run :
  ?trials:int -> ?seed:int -> ?sanitize:bool -> ?domains:int -> unit -> row list
(** [trials] faults per configuration (default 60).  With [sanitize]
    (default [false]) every trial runs under the shadow sanitizer
    ([Covirt_hw.Sanitize]), so injected EPT/ownership corruption is
    {e detected by the analyzer} rather than merely observed as a
    crash or a latent time bomb; outcomes and the fault sequence are
    unchanged (the sanitizer charges nothing).

    Trials run as fleet shards over [domains] domains (default
    [Covirt_fleet.Fleet.recommended_domains ()]); each trial derives
    its fault and machine seeds from [Rng.split_seed ~seed ~index], and
    within a trial the same fault is replayed against every
    configuration.  Rows are a pure fold over trial order, so the
    table is byte-identical for any [domains]. *)

val table : row list -> Covirt_sim.Table.t
(** Adds a ["flagged"] column only when some row has
    [sanitizer_flagged > 0], keeping default output byte-identical. *)

val containment_rate : row -> float
