(** Ablation studies for Covirt's design decisions.

    Each returns a rendered table quantifying what a design choice
    buys:

    - {!coalescing}: EPT large-page coalescing (the 2M/1G mappings of
      Section IV-C) vs a naive 4K-only EPT, on RandomAccess — walk
      depth and entry-count effects;
    - {!piv_vs_full}: posted-interrupt (PIV) delivery vs full APIC
      trap-and-emulate, on cross-enclave doorbell IPC — the cost of
      exit-per-incoming-interrupt;
    - {!sync_vs_async}: the split controller/hypervisor architecture's
      asynchronous configuration updates vs a strawman that traps every
      enclave core for each update, on XEMEM attach latency. *)

type coalescing_row = {
  ept_pages : string;
  gups : float;
  overhead_vs_native : float;
  leaves : int;
}

val coalescing : ?quick:bool -> ?domains:int -> unit -> coalescing_row list
(** The native baseline and the three EPT-page cases run as fleet
    shards over [domains] domains (placement only — rows are identical
    for any value). *)

val coalescing_table : coalescing_row list -> Covirt_sim.Table.t

type ipi_row = {
  mode : string;
  cycles_per_doorbell : float;
  incoming_exits : int;
  cycles_per_device_rx : float;
      (** external (device MSI) interrupt cost — exits even under PIV *)
}

val piv_vs_full : ?doorbells:int -> unit -> ipi_row list
val piv_table : ipi_row list -> Covirt_sim.Table.t

type sync_row = {
  size_bytes : int;
  async_us : float;
  sync_us : float;
  penalty : float;
}

val sync_vs_async : ?quick:bool -> unit -> sync_row list
val sync_table : sync_row list -> Covirt_sim.Table.t
