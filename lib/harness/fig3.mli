(** Fig. 3 — Selfish-Detour noise profiles per Covirt configuration.

    The paper plots detour events over time for each protection
    configuration and finds "little variation in their noise
    profiles".  We reproduce the same single-core runs and report, per
    configuration, the event count, total noise, noise fraction and
    the log-bucketed duration histogram. *)

type row = {
  config : string;
  detour_count : int;
  total_detour_us : float;
  noise_fraction : float;
  median_detour_us : float;
  max_detour_us : float;
  histogram : Covirt_sim.Histogram.t;
  detours : (float * float) list;  (** (at_us, duration_us) *)
}

val run : ?quick:bool -> ?seed:int -> ?domains:int -> unit -> row list
(** One row per preset configuration (native, none, mem, ipi,
    mem+ipi); [quick] shortens the probed interval.  Configurations
    run as fleet shards over [domains] domains (default
    [Covirt_fleet.Fleet.recommended_domains ()]); each leg is
    deterministic in (config, seed), so the rows are identical for any
    [domains]. *)

val table : row list -> Covirt_sim.Table.t
val print_histograms : row list -> unit

val print_scatter : row list -> duration_s:float -> unit
(** ASCII rendering of the paper's actual plot: detour occurrences over
    time, magnitude encoded as . : * # (quartiles of the log range). *)
