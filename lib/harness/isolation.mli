(** Performance isolation across the partition (the Pisces premise).

    Co-kernels promise performance isolation through hardware
    partitioning — but memory bandwidth is only partitioned if the
    zones are.  This runner measures an enclave's STREAM bandwidth
    while background pressure (host daemons, a noisy co-tenant's
    streaming phase) runs in (a) no zone, (b) the {e other} NUMA zone,
    and (c) the enclave's {e own} zone — under native and protected
    configurations.  Expected shape: cross-zone pressure is free,
    same-zone pressure hurts identically with and without Covirt
    (protection neither causes nor cures bandwidth interference). *)

type row = {
  scenario : string;
  native_mb_s : float;
  covirt_mb_s : float;
  interference_native : float;  (** slowdown vs the quiet scenario *)
  interference_covirt : float;
}

val run : ?quick:bool -> ?pressure:int -> unit -> row list
(** [pressure] background streamer count (default 6). *)

val table : row list -> Covirt_sim.Table.t
