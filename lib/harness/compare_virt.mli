(** Covirt vs traditional virtualization (the Fig. 1 architecture
    comparison, quantified).

    The paper's motivation for not just running co-kernels in VMs:
    full virtualization mediates every cross-OS/R interaction.  These
    runners measure Covirt's actual IPC and attach paths and set them
    against the {!Covirt_baselines.Full_virt} model. *)

type ipc_row = { architecture : string; cycles_per_message : float }

val ipc : ?words:int -> ?messages:int -> unit -> ipc_row list
(** Cross-enclave message cost: native co-kernels, Covirt-protected
    co-kernels, and full virtualization. *)

val ipc_table : ipc_row list -> Covirt_sim.Table.t

type share_row = {
  size_bytes : int;
  covirt_attach_us : float;
  full_virt_us : float;
  ratio : float;
}

val sharing : ?quick:bool -> unit -> share_row list
(** Dynamic memory sharing: XEMEM attach under Covirt vs the
    balloon/remap round trip a VM boundary forces. *)

val sharing_table : share_row list -> Covirt_sim.Table.t
