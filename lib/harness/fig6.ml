open Covirt_workloads

type cell = { config : string; gflops : float; overhead : float }
type row = { layout : string; cells : cell list }

let measure ~quick ~seed ~layout config =
  Experiments.with_setup ~config ~layout ~seed (fun setup ->
      let ctxs = Experiments.contexts setup in
      let real_dim = if quick then 10 else 16 in
      let iterations = if quick then 10 else 60 in
      match Minife.run ctxs ~real_dim ~iterations () with
      | Ok r ->
          assert (r.Minife.final_residual < 1.0);
          r.Minife.solve_gflops
      | Error e -> failwith ("fig6 minife: " ^ e))

let run ?(quick = false) ?(seed = 42) () =
  List.map
    (fun layout ->
      let raws =
        List.map
          (fun (name, config) ->
            (name, measure ~quick ~seed ~layout config))
          Covirt.Config.presets
      in
      let baseline = List.assoc "native" raws in
      {
        layout = layout.Experiments.layout_name;
        cells =
          List.map
            (fun (name, gflops) ->
              {
                config = name;
                gflops;
                overhead =
                  Covirt_sim.Stats.relative_slowdown_of_rates
                    ~baseline ~measured:gflops;
              })
            raws;
      })
    Experiments.scaling_layouts

let table rows =
  let configs = List.map fst Covirt.Config.presets in
  let t =
    Covirt_sim.Table.create
      ~columns:("layout" :: List.concat_map (fun c -> [ c; "ovh" ]) configs)
  in
  List.iter
    (fun row ->
      Covirt_sim.Table.add_row t
        (row.layout
        :: List.concat_map
             (fun cell ->
               [
                 Covirt_sim.Table.cell_f cell.gflops;
                 Covirt_sim.Table.cell_pct cell.overhead;
               ])
             row.cells))
    rows;
  t
