(** Experiment scaffolding shared by every figure runner.

    Reproduces the paper's testbed shape: a dual-socket node (two NUMA
    zones), 14 GB of enclave memory "spread across the two NUMA
    zones", and the four CPU-core/NUMA-zone layouts of Figs. 6-7.
    Each measurement builds a {e fresh} machine (seeded per run),
    attaches Covirt in the configuration under test, boots a Kitten
    enclave and hands the caller its contexts. *)

open Covirt_hw
open Covirt_pisces
open Covirt_kitten

type layout = {
  layout_name : string;
  cores : int list;  (** machine core ids for the enclave *)
  mem : (Numa.zone * int) list;
}

val layout_1x1 : layout
(** 1 core, 1 NUMA zone, 14 GB local. *)

val layout_4x2 : layout
(** 4 cores split across 2 zones, memory split evenly. *)

val layout_4x1 : layout
(** 4 cores in one zone. *)

val layout_8x2 : layout
(** 8 cores split across 2 zones. *)

val scaling_layouts : layout list
(** The Fig. 6/7 sweep, in paper order. *)

type setup = {
  machine : Machine.t;
  hobbes : Covirt_hobbes.Hobbes.t;
  controller : Covirt.Controller.t;
  enclave : Enclave.t;
  kitten : Kitten.t;
  config : Covirt.Config.t;
}

val with_setup :
  config:Covirt.Config.t ->
  ?layout:layout ->
  ?seed:int ->
  ?timer_hz:float ->
  (setup -> 'a) ->
  'a
(** Build machine + Hobbes + Covirt (controller attached even for the
    native config — it simply declines to interpose), launch the
    enclave, run the body.  [layout] defaults to {!layout_1x1};
    [timer_hz] defaults to 10 (LWK tick). *)

val contexts : setup -> Kitten.context list
(** One context per enclave core, boot core first. *)

val table1 : (string * string * string) list
(** Benchmark name, version, parameters — the paper's Table I. *)

val enclave_mem_bytes : int
(** 14 GiB. *)
