(** Golden snapshot of the simulated observables guarded by the
    translation-fast-path bit-equality invariant: every figure table
    (rendered and at full float precision), the ablation and campaign
    studies, the supervised-soak residuals, and the per-CPU TSC values
    of a granular load/store scenario.  The capture contains no host
    timing, so equal code ⇒ equal string; the committed copy under
    [test/golden/] is asserted by [test_golden]. *)

val capture : unit -> string
