(** Golden snapshot of the simulated observables guarded by the
    translation-fast-path bit-equality invariant: every figure table
    (rendered and at full float precision), the ablation and campaign
    studies, the supervised-soak residuals — sequential and sharded —
    and the per-CPU TSC values of a granular load/store scenario.  The
    capture contains no host timing, so equal code ⇒ equal string; the
    committed copy under [test/golden/] is asserted by [test_golden].

    [domains] is the fleet placement used for the campaign, soak and
    sweep sections (default
    [Covirt_fleet.Fleet.recommended_domains ()]).  It must never
    change a byte of the capture — [test_fleet] asserts
    [capture ~domains:1 () = capture ~domains:4 ()]. *)

val capture : ?domains:int -> unit -> string
