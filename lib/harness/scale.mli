(** Protection cost vs enclave count.

    Co-kernel nodes run several enclaves at once; Covirt replicates the
    hypervisor context per core and keeps one EPT per enclave, so the
    per-enclave overhead should not grow with the number of co-resident
    enclaves.  This runner boots 1..N protected enclaves, runs the same
    RandomAccess workload in each, and reports per-enclave throughput
    and the controller's aggregate footprint. *)

type row = {
  enclaves : int;
  gups_each : float list;  (** per-enclave throughput, enclave order *)
  worst_vs_solo : float;  (** worst per-enclave slowdown vs the 1-enclave run *)
  total_ept_leaves : int;
}

val run : ?max_enclaves:int -> ?quick:bool -> ?domains:int -> unit -> row list
(** One fleet shard per co-residency level, over [domains] domains
    (placement only — rows are identical for any value); the n=1 shard
    doubles as the solo baseline. *)

val table : row list -> Covirt_sim.Table.t
