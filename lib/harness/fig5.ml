open Covirt_workloads

type row = {
  config : string;
  triad_mb_s : float;
  copy_mb_s : float;
  gups : float;
  stream_overhead : float;
  gups_overhead : float;
}

type raw = { r_triad : float; r_copy : float; r_gups : float }

let measure ~quick ~seed config =
  Experiments.with_setup ~config ~layout:Experiments.layout_1x1 ~seed
    (fun setup ->
      let ctxs = Experiments.contexts setup in
      let elems = if quick then 1_000_000 else Stream.default_elems in
      let iters = if quick then 3 else 10 in
      let stream =
        match Stream.run ctxs ~elems ~iters () with
        | Ok r -> r
        | Error e -> failwith ("fig5 stream: " ^ e)
      in
      let log2_table = if quick then 22 else Random_access.default_log2_table in
      let gups =
        match Random_access.run ctxs ~log2_table () with
        | Ok r -> r
        | Error e -> failwith ("fig5 gups: " ^ e)
      in
      assert (gups.Random_access.verify_errors = 0);
      {
        r_triad = stream.Stream.triad_mb_s;
        r_copy = stream.Stream.copy_mb_s;
        r_gups = gups.Random_access.gups;
      })

let run ?(quick = false) ?(seed = 42) ?domains () =
  let presets = Array.of_list Covirt.Config.presets in
  (* One fleet shard per configuration; each measurement is
     deterministic in (config, seed), so the shard seed is unused and
     the table is identical for any [domains].  The native baseline
     divide happens after the join — it needs all rows. *)
  let raws =
    Array.to_list
      (Covirt_fleet.Fleet.map ?domains ~seed ~shards:(Array.length presets)
         (fun ~shard_seed:_ ~index ->
           let name, config = presets.(index) in
           (name, measure ~quick ~seed config)))
  in
  let baseline = List.assoc "native" raws in
  List.map
    (fun (name, raw) ->
      {
        config = name;
        triad_mb_s = raw.r_triad;
        copy_mb_s = raw.r_copy;
        gups = raw.r_gups;
        stream_overhead =
          Covirt_sim.Stats.relative_slowdown_of_rates
            ~baseline:baseline.r_triad ~measured:raw.r_triad;
        gups_overhead =
          Covirt_sim.Stats.relative_slowdown_of_rates ~baseline:baseline.r_gups
            ~measured:raw.r_gups;
      })
    raws

let stream_table rows =
  let t =
    Covirt_sim.Table.create
      ~columns:[ "config"; "copy MB/s"; "triad MB/s"; "vs native" ]
  in
  List.iter
    (fun r ->
      Covirt_sim.Table.add_row t
        [
          r.config;
          Covirt_sim.Table.cell_f r.copy_mb_s;
          Covirt_sim.Table.cell_f r.triad_mb_s;
          Covirt_sim.Table.cell_pct r.stream_overhead;
        ])
    rows;
  t

let gups_table rows =
  let t =
    Covirt_sim.Table.create ~columns:[ "config"; "GUPS"; "vs native" ]
  in
  List.iter
    (fun r ->
      Covirt_sim.Table.add_row t
        [
          r.config;
          Format.asprintf "%.5f" r.gups;
          Covirt_sim.Table.cell_pct r.gups_overhead;
        ])
    rows;
  t
