open Covirt_hw
open Covirt_pisces

type row = {
  kernel : string;
  integration : string;
  boots_under_covirt : bool;
  syscall_cycles : int option;
  wild_write_contained : bool;
  covirt_loc_for_support : int;
}

let mib = Covirt_sim.Units.mib

let fresh_stack () =
  let machine =
    Machine.create ~seed:11 ~zones:2 ~cores_per_zone:2
      ~mem_per_zone:(2 * Covirt_sim.Units.gib)
      ~host_reserved_per_zone:(128 * mib) ()
  in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let _controller =
    Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes)
      ~config:Covirt.Config.mem_ipi
  in
  (machine, hobbes)

let boot_generic pisces kernel =
  let enclave =
    Pisces.create_enclave pisces ~name:"k" ~cores:[ 1 ] ~mem:[ (0, 256 * mib) ] ()
    |> Result.get_ok
  in
  (enclave, Pisces.boot pisces enclave ~kernel)

let contained pisces inject =
  match Pisces.run_guarded pisces inject with Error _ -> true | Ok _ -> false

let kitten_row () =
  let machine, hobbes = fresh_stack () in
  ignore machine;
  let pisces = Covirt_hobbes.Hobbes.pisces hobbes in
  match
    Covirt_hobbes.Hobbes.launch_enclave hobbes ~name:"kit" ~cores:[ 1 ]
      ~mem:[ (0, 256 * mib) ] ()
  with
  | Error e -> failwith e
  | Ok (enclave, kitten) ->
      let ctx = Covirt_kitten.Kitten.context kitten ~core:1 in
      let cpu = ctx.Covirt_kitten.Kitten.cpu in
      let t0 = Cpu.rdtsc cpu in
      ignore
        (Covirt_kitten.Kitten.syscall ctx
           ~number:Covirt_kitten.Syscall.nr_getpid ~arg:0);
      let cost = Cpu.rdtsc cpu - t0 in
      let booted = Enclave.is_running enclave in
      let caught =
        contained pisces (fun () -> Covirt_kitten.Kitten.store_addr ctx 0x3000)
      in
      {
        kernel = "Kitten (Hobbes/Pisces)";
        integration = "shared interfaces, local fast paths";
        boots_under_covirt = booted;
        syscall_cycles = Some cost;
        wild_write_contained = caught;
        covirt_loc_for_support = 0;
      }

let mckernel_row () =
  let machine, hobbes = fresh_stack () in
  let pisces = Covirt_hobbes.Hobbes.pisces hobbes in
  let kernel, get = Covirt_mckernel.Mckernel.make_kernel () in
  let enclave, boot = boot_generic pisces kernel in
  (match boot with Ok () -> () | Error e -> failwith e);
  let mck = Option.get (get ()) in
  let cpu = Machine.cpu machine 1 in
  let t0 = Cpu.rdtsc cpu in
  ignore (Covirt_mckernel.Mckernel.syscall mck ~core:1 ~number:39 ~buffer:None);
  let cost = Cpu.rdtsc cpu - t0 in
  let booted = Enclave.is_running enclave in
  let caught =
    contained pisces (fun () ->
        Covirt_mckernel.Mckernel.wild_write mck ~core:1 0x3000)
  in
  {
    kernel = "McKernel (IHK)";
    integration = "full delegation via proxy process";
    boots_under_covirt = booted;
    syscall_cycles = Some cost;
    wild_write_contained = caught;
    covirt_loc_for_support = 0;
  }

let nautilus_row () =
  let _, hobbes = fresh_stack () in
  let pisces = Covirt_hobbes.Hobbes.pisces hobbes in
  let kernel, get = Covirt_nautilus.Nautilus.make_kernel () in
  let enclave, boot = boot_generic pisces kernel in
  (match boot with Ok () -> () | Error e -> failwith e);
  let naut = Option.get (get ()) in
  (* nautilus' wild write needs the porting-bug mapping first *)
  Covirt_nautilus.Nautilus.map_extra naut
    (Region.make ~base:0 ~len:(4 * mib));
  let booted = Enclave.is_running enclave in
  let caught =
    contained pisces (fun () ->
        Covirt_nautilus.Nautilus.wild_write naut ~core:1 0x3000)
  in
  {
    kernel = "Nautilus (aerokernel)";
    integration = "standalone, threads only";
    boots_under_covirt = booted;
    syscall_cycles = None;
    wild_write_contained = caught;
    covirt_loc_for_support = 0;
  }

let mos_row () =
  let machine, hobbes = fresh_stack () in
  let pisces = Covirt_hobbes.Hobbes.pisces hobbes in
  let kernel, get =
    Covirt_mos.Mos.make_kernel ~host_syscall:(fun ~number ~arg ->
        number + arg)
      ()
  in
  let enclave, boot = boot_generic pisces kernel in
  (match boot with Ok () -> () | Error e -> failwith e);
  let mos = Option.get (get ()) in
  let cpu = Machine.cpu machine 1 in
  let t0 = Cpu.rdtsc cpu in
  ignore (Covirt_mos.Mos.syscall mos ~core:1 ~number:39 ~arg:0 : int);
  let cost = Cpu.rdtsc cpu - t0 in
  let booted = Enclave.is_running enclave in
  let caught =
    contained pisces (fun () -> Covirt_mos.Mos.wild_write mos ~core:1 0x3000)
  in
  {
    kernel = "mOS (embedded LWK)";
    integration = "compiled into the host, shared state";
    boots_under_covirt = booted;
    syscall_cycles = Some cost;
    wild_write_contained = caught;
    covirt_loc_for_support = 0;
  }

let matrix () =
  [ kitten_row (); mckernel_row (); nautilus_row (); mos_row () ]

let table rows =
  let t =
    Covirt_sim.Table.create
      ~columns:
        [
          "kernel"; "integration model"; "boots under covirt";
          "getpid-class cycles"; "wild write contained";
          "kernel-specific covirt code";
        ]
  in
  List.iter
    (fun r ->
      Covirt_sim.Table.add_row t
        [
          r.kernel;
          r.integration;
          string_of_bool r.boots_under_covirt;
          (match r.syscall_cycles with
          | Some c -> string_of_int c
          | None -> "n/a");
          string_of_bool r.wild_write_contained;
          Printf.sprintf "%d lines" r.covirt_loc_for_support;
        ])
    rows;
  t
