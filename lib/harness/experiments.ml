open Covirt_hw
open Covirt_pisces
open Covirt_kitten

type layout = {
  layout_name : string;
  cores : int list;
  mem : (Numa.zone * int) list;
}

let gib = Covirt_sim.Units.gib
let enclave_mem_bytes = 14 * gib
let half_mem = enclave_mem_bytes / 2

(* Machine shape: 2 zones x 5 cores; core 0 is the host control core,
   cores 1-4 are zone 0, cores 5-9 are zone 1. *)
let cores_per_zone = 5

let layout_1x1 =
  { layout_name = "1 core / 1 zone"; cores = [ 1 ]; mem = [ (0, enclave_mem_bytes) ] }

let layout_4x2 =
  {
    layout_name = "4 cores / 2 zones";
    cores = [ 1; 2; 5; 6 ];
    mem = [ (0, half_mem); (1, half_mem) ];
  }

let layout_4x1 =
  {
    layout_name = "4 cores / 1 zone";
    cores = [ 1; 2; 3; 4 ];
    mem = [ (0, enclave_mem_bytes) ];
  }

let layout_8x2 =
  {
    layout_name = "8 cores / 2 zones";
    cores = [ 1; 2; 3; 4; 5; 6; 7; 8 ];
    mem = [ (0, half_mem); (1, half_mem) ];
  }

let scaling_layouts = [ layout_1x1; layout_4x2; layout_4x1; layout_8x2 ]

type setup = {
  machine : Machine.t;
  hobbes : Covirt_hobbes.Hobbes.t;
  controller : Covirt.Controller.t;
  enclave : Enclave.t;
  kitten : Kitten.t;
  config : Covirt.Config.t;
}

let with_setup ~config ?(layout = layout_1x1) ?(seed = 42) ?(timer_hz = 10.0)
    body =
  let machine =
    Machine.create ~seed ~zones:2 ~cores_per_zone ~mem_per_zone:(32 * gib) ()
  in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let controller =
    Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes) ~config
  in
  match
    Covirt_hobbes.Hobbes.launch_enclave hobbes ~name:"bench" ~cores:layout.cores
      ~mem:layout.mem ~timer_hz ()
  with
  | Error e -> failwith ("Experiments.with_setup: " ^ e)
  | Ok (enclave, kitten) ->
      body { machine; hobbes; controller; enclave; kitten; config }

let contexts setup =
  List.map
    (fun core -> Kitten.context setup.kitten ~core)
    (Kitten.cores setup.kitten)

let table1 =
  [
    ("Selfish Detour", "1.0.7", "None");
    ("STREAM", "5.10", "None");
    ("RandomAccess_OMP", "10/28/04", "25");
    ("HPCG", "Revision 3.1", "104 104 104 330");
    ("MiniFE", "2.0", "nx 250 ny 250 nz 250");
    ("LAMMPS", "3 Mar 2020", "None");
  ]
