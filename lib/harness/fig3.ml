open Covirt_workloads

type row = {
  config : string;
  detour_count : int;
  total_detour_us : float;
  noise_fraction : float;
  median_detour_us : float;
  max_detour_us : float;
  histogram : Covirt_sim.Histogram.t;
  detours : (float * float) list;  (* (at_us, duration_us) *)
}

let run ?(quick = false) ?(seed = 42) ?domains () =
  let duration_s = if quick then 0.5 else 2.0 in
  let presets = Array.of_list Covirt.Config.presets in
  (* One fleet shard per configuration.  Each leg is deterministic in
     (config, seed) — the shard seed is deliberately unused, so the
     rows match a sequential sweep exactly for any [domains]. *)
  let rows =
    Covirt_fleet.Fleet.map ?domains ~seed ~shards:(Array.length presets)
      (fun ~shard_seed:_ ~index ->
        let name, config = presets.(index) in
        (* Phase label per configuration: when the profiler is on,
           covirt-ctl stats can attribute cycles to each sweep leg. *)
        Covirt_obs.Profiler.set_phase name;
        Experiments.with_setup ~config ~seed (fun setup ->
            let ctx = List.hd (Experiments.contexts setup) in
            let result = Selfish.run ctx ~duration_s () in
            let durations =
              Array.of_list
                (List.map
                   (fun d -> d.Selfish.duration_us)
                   result.Selfish.detours)
            in
            {
              config = name;
              detour_count = List.length result.Selfish.detours;
              total_detour_us = result.Selfish.total_detour_us;
              noise_fraction = result.Selfish.noise_fraction;
              median_detour_us =
                (if Array.length durations = 0 then 0.0
                 else Covirt_sim.Stats.percentile durations ~p:50.0);
              max_detour_us = Array.fold_left Float.max 0.0 durations;
              histogram = result.Selfish.histogram;
              detours =
                List.map
                  (fun d -> (d.Selfish.at_us, d.Selfish.duration_us))
                  result.Selfish.detours;
            }))
  in
  Array.to_list rows

let table rows =
  let t =
    Covirt_sim.Table.create
      ~columns:
        [ "config"; "detours"; "total noise (us)"; "noise fraction";
          "median (us)"; "max (us)" ]
  in
  List.iter
    (fun r ->
      Covirt_sim.Table.add_row t
        [
          r.config;
          string_of_int r.detour_count;
          Covirt_sim.Table.cell_f r.total_detour_us;
          Format.asprintf "%.5f%%" (r.noise_fraction *. 100.0);
          Covirt_sim.Table.cell_f r.median_detour_us;
          Covirt_sim.Table.cell_f r.max_detour_us;
        ])
    rows;
  t

let print_histograms rows =
  List.iter
    (fun r ->
      Format.printf "-- %s --@.%a@." r.config Covirt_sim.Histogram.pp
        r.histogram)
    rows

let print_scatter rows ~duration_s =
  (* time on the x axis (columns), detour magnitude as a glyph: the
     shape of the paper's Fig. 3 panels *)
  let columns = 72 in
  let duration_us = duration_s *. 1e6 in
  List.iter
    (fun row ->
      let cells = Array.make columns ' ' in
      List.iter
        (fun (at_us, duration) ->
          let col =
            min (columns - 1)
              (int_of_float (at_us /. duration_us *. float_of_int columns))
          in
          let glyph =
            if duration < 1.0 then '.'
            else if duration < 2.0 then ':'
            else if duration < 4.0 then '*'
            else '#'
          in
          (* keep the largest glyph per column *)
          let rank c =
            match c with '.' -> 1 | ':' -> 2 | '*' -> 3 | '#' -> 4 | _ -> 0
          in
          if rank glyph > rank cells.(col) then cells.(col) <- glyph)
        row.detours;
      Format.printf "%-8s |%s|@." row.config (String.init columns (Array.get cells)))
    rows;
  Format.printf "%-8s  %s@." "" (String.make columns '-');
  Format.printf "%-8s  0s%*s@." "" (columns - 2)
    (Format.asprintf "%.1fs" duration_s)
