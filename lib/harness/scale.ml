open Covirt_hw
open Covirt_workloads

type row = {
  enclaves : int;
  gups_each : float list;
  worst_vs_solo : float;
  total_ept_leaves : int;
}

let gib = Covirt_sim.Units.gib

let run_n ~quick n =
  let machine =
    Machine.create ~seed:42 ~zones:2 ~cores_per_zone:(n + 1)
      ~mem_per_zone:(16 * gib) ()
  in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let controller =
    Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes)
      ~config:Covirt.Config.mem_ipi
  in
  let log2_table = if quick then 22 else 25 in
  let cores_per_zone = n + 1 in
  let gups_each =
    List.init n (fun i ->
        (* place each enclave's core in the same zone as its memory
           (core 0 of zone 0 is the host's) *)
        let zone = i mod 2 in
        let ordinal = i / 2 in
        let core =
          if zone = 0 then 1 + ordinal else cores_per_zone + ordinal
        in
        match
          Covirt_hobbes.Hobbes.launch_enclave hobbes
            ~name:(Printf.sprintf "scale-%d" i)
            ~cores:[ core ]
            ~mem:[ (zone, 2 * gib) ]
            ()
        with
        | Error e -> failwith e
        | Ok (_, kitten) -> (
            let ctx = Covirt_kitten.Kitten.context kitten ~core in
            match Random_access.run [ ctx ] ~log2_table () with
            | Ok r -> r.Random_access.gups
            | Error e -> failwith e))
  in
  let total_ept_leaves =
    List.fold_left
      (fun acc (i : Covirt.Controller.instance) ->
        match i.Covirt.Controller.ept_mgr with
        | Some mgr ->
            let a, b, c = Covirt.Ept_manager.leaf_counts mgr in
            acc + a + b + c
        | None -> acc)
      0
      (Covirt.Controller.instances controller)
  in
  (gups_each, total_ept_leaves)

let run ?(max_enclaves = 3) ?(quick = false) ?domains () =
  (* One fleet shard per co-residency level ([run_n] is deterministic
     in [n]; the shard seed is unused).  The solo baseline IS the n=1
     shard — a separate warm-up run would repeat it bit-identically. *)
  let per_n =
    Covirt_fleet.Fleet.map ?domains ~seed:42 ~shards:max_enclaves
      (fun ~shard_seed:_ ~index -> run_n ~quick (index + 1))
  in
  let solo_gups = List.hd (fst per_n.(0)) in
  List.init max_enclaves (fun i ->
      let gups_each, total_ept_leaves = per_n.(i) in
      let worst_vs_solo =
        List.fold_left
          (fun acc g -> Float.max acc ((solo_gups -. g) /. solo_gups))
          0.0 gups_each
      in
      { enclaves = i + 1; gups_each; worst_vs_solo; total_ept_leaves })

let table rows =
  let t =
    Covirt_sim.Table.create
      ~columns:
        [ "co-resident enclaves"; "per-enclave GUPS"; "worst vs solo";
          "total EPT leaves" ]
  in
  List.iter
    (fun r ->
      Covirt_sim.Table.add_row t
        [
          string_of_int r.enclaves;
          String.concat " / "
            (List.map (fun g -> Format.asprintf "%.5f" g) r.gups_each);
          Covirt_sim.Table.cell_pct r.worst_vs_solo;
          string_of_int r.total_ept_leaves;
        ])
    rows;
  t
