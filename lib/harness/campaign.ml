open Covirt_hw
open Covirt_pisces
open Covirt_kitten

type outcome = Contained | Node_down | Collateral | Latent

type row = {
  config : string;
  trials : int;
  contained : int;
  node_down : int;
  collateral : int;
  latent : int;
}

let gib = Covirt_sim.Units.gib
let mib = Covirt_sim.Units.mib

type fault =
  | Wild_write of Addr.t
  | Phantom_touch of Addr.t
  | Errant_ipi of { dest : int; vector : int }
  | Msr_write
  | Port_reset
  | Double_fault

let random_fault rng ~machine_mem ~victim_bsp =
  match Covirt_sim.Rng.int rng ~bound:6 with
  | 0 ->
      (* anywhere in physical memory, 8-byte aligned *)
      Wild_write (Covirt_sim.Rng.int rng ~bound:(machine_mem / 8) * 8)
  | 1 ->
      let page =
        Covirt_sim.Rng.int rng ~bound:(machine_mem / Addr.page_size_2m)
      in
      Phantom_touch (page * Addr.page_size_2m)
  | 2 ->
      Errant_ipi
        { dest = victim_bsp; vector = Covirt_sim.Rng.int rng ~bound:256 }
  | 3 -> Msr_write
  | 4 -> Port_reset
  | 5 -> Double_fault
  | _ -> assert false

let one_trial ~config ~seed fault_of =
  let machine =
    Machine.create ~seed ~zones:2 ~cores_per_zone:3 ~mem_per_zone:(4 * gib) ()
  in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let _controller = Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes) ~config in
  let launch name cores zone =
    match
      Covirt_hobbes.Hobbes.launch_enclave hobbes ~name ~cores
        ~mem:[ (zone, 512 * mib) ] ()
    with
    | Ok pair -> pair
    | Error e -> failwith e
  in
  let attacker, attacker_kitten = launch "attacker" [ 1 ] 0 in
  let victim, victim_kitten = launch "victim" [ 3 ] 1 in
  ignore attacker;
  let ctx = Kitten.context attacker_kitten ~core:1 in
  let fault = fault_of ~victim_bsp:(Enclave.bsp victim) in
  let inject () =
    match fault with
    | Wild_write addr -> Kitten.store_addr ctx addr
    | Phantom_touch addr ->
        Kitten.inject_phantom_region attacker_kitten
          (Region.make ~base:(Addr.page_down addr ~size:Addr.page_size_2m)
             ~len:Addr.page_size_2m);
        Kitten.store_addr ctx addr
    | Errant_ipi { dest; vector } -> Kitten.send_ipi ctx ~dest ~vector
    | Msr_write -> Kitten.wrmsr_sensitive ctx
    | Port_reset -> Kitten.out_reset_port ctx
    | Double_fault -> Kitten.trigger_double_fault ctx
  in
  match Pisces.run_guarded (Covirt_hobbes.Hobbes.pisces hobbes) inject with
  | exception Machine.Node_panic _ -> Node_down
  | Error _ -> Contained
  | Ok () -> (
      if Machine.panicked machine <> None then Node_down
      else
        match Kitten.health victim_kitten with
        | `Corrupted _ -> Collateral
        | `Ok -> (
            (* a self-inflicted wound only hurts the attacker; a
               dropped errant op is containment *)
            match fault with
            | Errant_ipi _ -> Contained (* delivered nowhere harmful or dropped *)
            | Wild_write _ | Phantom_touch _ -> Latent
            | Msr_write | Port_reset | Double_fault -> Latent))

let run ?(trials = 60) ?(seed = 2026) () =
  List.map
    (fun (name, config) ->
      let rng = Covirt_sim.Rng.create ~seed in
      let tally = Hashtbl.create 4 in
      let bump outcome =
        Hashtbl.replace tally outcome
          (1 + Option.value ~default:0 (Hashtbl.find_opt tally outcome))
      in
      for i = 1 to trials do
        let machine_mem = 8 * gib in
        let outcome =
          one_trial ~config ~seed:(seed + i) (fun ~victim_bsp ->
              random_fault rng ~machine_mem ~victim_bsp)
        in
        bump outcome
      done;
      let count o = Option.value ~default:0 (Hashtbl.find_opt tally o) in
      {
        config = name;
        trials;
        contained = count Contained;
        node_down = count Node_down;
        collateral = count Collateral;
        latent = count Latent;
      })
    (Covirt.Config.presets @ [ ("full(+msr+io)", Covirt.Config.full) ])

let table rows =
  let t =
    Covirt_sim.Table.create
      ~columns:
        [ "config"; "trials"; "contained"; "node down"; "collateral"; "latent" ]
  in
  List.iter
    (fun r ->
      Covirt_sim.Table.add_row t
        [
          r.config;
          string_of_int r.trials;
          string_of_int r.contained;
          string_of_int r.node_down;
          string_of_int r.collateral;
          string_of_int r.latent;
        ])
    rows;
  t

let containment_rate r = float_of_int r.contained /. float_of_int r.trials
