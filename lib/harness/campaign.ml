open Covirt_hw
open Covirt_pisces
open Covirt_kitten
module Fault_injector = Covirt_resilience.Fault_injector

type outcome = Contained | Node_down | Collateral | Latent

type row = {
  config : string;
  trials : int;
  contained : int;
  node_down : int;
  collateral : int;
  latent : int;
  sanitizer_flagged : int;
}

let gib = Covirt_sim.Units.gib
let mib = Covirt_sim.Units.mib

let one_trial ~config ~seed ~injector fault_of =
  let machine =
    Machine.create ~seed ~zones:2 ~cores_per_zone:3 ~mem_per_zone:(4 * gib) ()
  in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let _controller = Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes) ~config in
  let launch name cores zone =
    match
      Covirt_hobbes.Hobbes.launch_enclave hobbes ~name ~cores
        ~mem:[ (zone, 512 * mib) ] ()
    with
    | Ok pair -> pair
    | Error e -> failwith e
  in
  let attacker, attacker_kitten = launch "attacker" [ 1 ] 0 in
  let victim, victim_kitten = launch "victim" [ 3 ] 1 in
  ignore attacker;
  let ctx = Kitten.context attacker_kitten ~core:1 in
  let fault = fault_of ~victim_bsp:(Enclave.bsp victim) in
  let inject () = Fault_injector.inject injector ctx fault in
  match Pisces.run_guarded (Covirt_hobbes.Hobbes.pisces hobbes) inject with
  | exception Machine.Node_panic _ -> Node_down
  | Error _ -> Contained
  | Ok () -> (
      if Machine.panicked machine <> None then Node_down
      else
        match Kitten.health victim_kitten with
        | `Corrupted _ -> Collateral
        | `Ok -> (
            (* a self-inflicted wound only hurts the attacker; a
               dropped errant op is containment *)
            match fault with
            | Fault_injector.Errant_ipi _ ->
                Contained (* delivered nowhere harmful or dropped *)
            | Fault_injector.Wild_write _ | Fault_injector.Phantom_touch _ ->
                Latent
            | Fault_injector.Msr_write | Fault_injector.Port_reset
            | Fault_injector.Double_fault ->
                Latent
            | Fault_injector.Wedge _ ->
                Latent (* still livelocked; only a watchdog notices *)))

let run ?(trials = 60) ?(seed = 2026) ?(sanitize = false) () =
  (* The request is sticky: each trial's [Covirt.enable] arms the
     shadow sanitizer for its fresh machine.  Restore the prior state
     afterwards so default campaign runs stay byte-identical. *)
  let had_request = Covirt_hw.Sanitize.requested () in
  if sanitize then Covirt_hw.Sanitize.request ();
  let rows = List.map
    (fun (name, config) ->
      (* One injector per configuration sweep: the same seed replays
         the same fault sequence against every configuration. *)
      let injector = Fault_injector.create ~seed () in
      let tally = Hashtbl.create 4 in
      let bump outcome =
        Hashtbl.replace tally outcome
          (1 + Option.value ~default:0 (Hashtbl.find_opt tally outcome))
      in
      let flagged = ref 0 in
      for i = 1 to trials do
        let machine_mem = 8 * gib in
        (* Gate on the [sanitize] argument, not on global sanitizer
           state: a campaign that wasn't asked to report flags must
           produce the same table even if a caller armed the shadow
           for its own purposes (golden byte-identity). *)
        let before = if sanitize then Covirt_hw.Sanitize.violation_count () else 0 in
        let outcome =
          one_trial ~config ~seed:(seed + i) ~injector (fun ~victim_bsp ->
              Fault_injector.draw injector ~machine_mem ~victim_bsp)
        in
        if sanitize && Covirt_hw.Sanitize.violation_count () > before then
          incr flagged;
        bump outcome
      done;
      let count o = Option.value ~default:0 (Hashtbl.find_opt tally o) in
      {
        config = name;
        trials;
        contained = count Contained;
        node_down = count Node_down;
        collateral = count Collateral;
        latent = count Latent;
        sanitizer_flagged = !flagged;
      })
    (Covirt.Config.presets @ [ ("full(+msr+io)", Covirt.Config.full) ])
  in
  if sanitize && not had_request then Covirt_hw.Sanitize.release ();
  rows

let table rows =
  (* The sanitizer column only appears when the campaign actually ran
     under the sanitizer — the default table stays byte-identical for
     the golden transcript. *)
  let with_sanitizer = List.exists (fun r -> r.sanitizer_flagged > 0) rows in
  let base =
    [ "config"; "trials"; "contained"; "node down"; "collateral"; "latent" ]
  in
  let t =
    Covirt_sim.Table.create
      ~columns:(if with_sanitizer then base @ [ "flagged" ] else base)
  in
  List.iter
    (fun r ->
      let cells =
        [
          r.config;
          string_of_int r.trials;
          string_of_int r.contained;
          string_of_int r.node_down;
          string_of_int r.collateral;
          string_of_int r.latent;
        ]
      in
      Covirt_sim.Table.add_row t
        (if with_sanitizer then cells @ [ string_of_int r.sanitizer_flagged ]
         else cells))
    rows;
  t

let containment_rate r = float_of_int r.contained /. float_of_int r.trials
