open Covirt_hw
open Covirt_pisces
open Covirt_kitten
module Fault_injector = Covirt_resilience.Fault_injector

type outcome = Contained | Node_down | Collateral | Latent

type row = {
  config : string;
  trials : int;
  contained : int;
  node_down : int;
  collateral : int;
  latent : int;
  sanitizer_flagged : int;
}

let gib = Covirt_sim.Units.gib
let mib = Covirt_sim.Units.mib

let one_trial ~config ~seed ~injector fault_of =
  let machine =
    Machine.create ~seed ~zones:2 ~cores_per_zone:3 ~mem_per_zone:(4 * gib) ()
  in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let _controller = Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes) ~config in
  let launch name cores zone =
    match
      Covirt_hobbes.Hobbes.launch_enclave hobbes ~name ~cores
        ~mem:[ (zone, 512 * mib) ] ()
    with
    | Ok pair -> pair
    | Error e -> failwith e
  in
  let attacker, attacker_kitten = launch "attacker" [ 1 ] 0 in
  let victim, victim_kitten = launch "victim" [ 3 ] 1 in
  ignore attacker;
  let ctx = Kitten.context attacker_kitten ~core:1 in
  let fault = fault_of ~victim_bsp:(Enclave.bsp victim) in
  let inject () = Fault_injector.inject injector ctx fault in
  match Pisces.run_guarded (Covirt_hobbes.Hobbes.pisces hobbes) inject with
  | exception Machine.Node_panic _ -> Node_down
  | Error _ -> Contained
  | Ok () -> (
      if Machine.panicked machine <> None then Node_down
      else
        match Kitten.health victim_kitten with
        | `Corrupted _ -> Collateral
        | `Ok -> (
            (* a self-inflicted wound only hurts the attacker; a
               dropped errant op is containment *)
            match fault with
            | Fault_injector.Errant_ipi _ ->
                Contained (* delivered nowhere harmful or dropped *)
            | Fault_injector.Wild_write _ | Fault_injector.Phantom_touch _ ->
                Latent
            | Fault_injector.Msr_write | Fault_injector.Port_reset
            | Fault_injector.Double_fault ->
                Latent
            | Fault_injector.Wedge _ ->
                Latent (* still livelocked; only a watchdog notices *)))

let configs () = Covirt.Config.presets @ [ ("full(+msr+io)", Covirt.Config.full) ]

let run ?(trials = 60) ?(seed = 2026) ?(sanitize = false) ?domains () =
  (* The request is sticky: each trial's [Covirt.enable] arms the
     shadow sanitizer for its fresh machine (per-domain, so shards
     don't interfere).  Restore the prior state afterwards so default
     campaign runs stay byte-identical.  It must be set before the
     fleet spawns — shards only read it. *)
  let had_request = Covirt_hw.Sanitize.requested () in
  if sanitize then Covirt_hw.Sanitize.request ();
  let configs = configs () in
  (* One shard per trial.  A shard replays the {e same} fault against
     every configuration: each per-config injector is seeded with the
     shard seed, and the machine seed is split off it — so the
     cross-config comparison (the whole point of the campaign table)
     holds whatever the shard-to-domain placement. *)
  let per_trial =
    Covirt_fleet.Fleet.map ?domains ~seed ~shards:trials
      (fun ~shard_seed ~index:_ ->
        let machine_seed = Covirt_sim.Rng.split_seed ~seed:shard_seed ~index:1 in
        List.map
          (fun (_name, config) ->
            let injector = Fault_injector.create ~seed:shard_seed () in
            let machine_mem = 8 * gib in
            (* Gate on the [sanitize] argument, not on global sanitizer
               state: a campaign that wasn't asked to report flags must
               produce the same table even if a caller armed the shadow
               for its own purposes (golden byte-identity). *)
            let before =
              if sanitize then Covirt_hw.Sanitize.violation_count () else 0
            in
            let outcome =
              one_trial ~config ~seed:machine_seed ~injector
                (fun ~victim_bsp ->
                  Fault_injector.draw injector ~machine_mem ~victim_bsp)
            in
            let flagged =
              sanitize && Covirt_hw.Sanitize.violation_count () > before
            in
            (outcome, flagged))
          configs)
  in
  if sanitize && not had_request then Covirt_hw.Sanitize.release ();
  (* Merge: a pure left fold over the trial slots, per configuration. *)
  let rows =
    List.mapi
      (fun ci (name, _config) ->
        let count o =
          Array.fold_left
            (fun acc trial ->
              if fst (List.nth trial ci) = o then acc + 1 else acc)
            0 per_trial
        in
        let flagged =
          Array.fold_left
            (fun acc trial -> if snd (List.nth trial ci) then acc + 1 else acc)
            0 per_trial
        in
        {
          config = name;
          trials;
          contained = count Contained;
          node_down = count Node_down;
          collateral = count Collateral;
          latent = count Latent;
          sanitizer_flagged = flagged;
        })
      configs
  in
  rows

let table rows =
  (* The sanitizer column only appears when the campaign actually ran
     under the sanitizer — the default table stays byte-identical for
     the golden transcript. *)
  let with_sanitizer = List.exists (fun r -> r.sanitizer_flagged > 0) rows in
  let base =
    [ "config"; "trials"; "contained"; "node down"; "collateral"; "latent" ]
  in
  let t =
    Covirt_sim.Table.create
      ~columns:(if with_sanitizer then base @ [ "flagged" ] else base)
  in
  List.iter
    (fun r ->
      let cells =
        [
          r.config;
          string_of_int r.trials;
          string_of_int r.contained;
          string_of_int r.node_down;
          string_of_int r.collateral;
          string_of_int r.latent;
        ]
      in
      Covirt_sim.Table.add_row t
        (if with_sanitizer then cells @ [ string_of_int r.sanitizer_flagged ]
         else cells))
    rows;
  t

let containment_rate r = float_of_int r.contained /. float_of_int r.trials
