(** Fig. 6 — MiniFE scaling over CPU-core/NUMA-zone layouts.

    All four layouts x all five configurations.  Expected shape:
    Covirt imposes "little to no overhead ... across all
    configurations" — MiniFE's banded accesses never leave the
    prefetch window, and its sparse synchronization keeps
    interrupt-path costs invisible. *)

type cell = { config : string; gflops : float; overhead : float }
type row = { layout : string; cells : cell list }

val run : ?quick:bool -> ?seed:int -> unit -> row list
val table : row list -> Covirt_sim.Table.t
