(** Fig. 5 — STREAM (a) and RandomAccess (b) per configuration.

    Single-core runs; the expected shape: STREAM is indistinguishable
    from native in every configuration, RandomAccess degrades slightly
    — ~1.8% with memory protection and at worst ~3.1% with memory+IPI
    — because its TLB-hostile updates expose the nested page walk. *)

type row = {
  config : string;
  triad_mb_s : float;
  copy_mb_s : float;
  gups : float;
  stream_overhead : float;  (** triad slowdown vs native *)
  gups_overhead : float;
}

val run : ?quick:bool -> ?seed:int -> ?domains:int -> unit -> row list
(** One row per preset configuration, measured as fleet shards over
    [domains] domains (placement only — rows are identical for any
    value); overheads are computed against the native row after the
    join. *)

val stream_table : row list -> Covirt_sim.Table.t
val gups_table : row list -> Covirt_sim.Table.t
