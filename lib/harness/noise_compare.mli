(** The co-kernel premise, measured: OS noise on a general-purpose host
    core vs an LWK enclave vs a Covirt-protected LWK enclave.

    The motivation for running HPC applications in LWK co-kernels at
    all is the noise of a general-purpose OS (250 Hz ticks, daemons,
    softirqs).  This runner puts the same Selfish-Detour probe on all
    three environments and shows (a) the orders-of-magnitude gap the
    LWK buys, and (b) that Covirt does not give it back. *)

type row = {
  environment : string;
  detours : int;
  noise_fraction : float;
  max_detour_us : float;
}

val run : ?duration_s:float -> ?seed:int -> unit -> row list
val table : row list -> Covirt_sim.Table.t
