open Covirt_hw
open Covirt_pisces
open Covirt_kitten
open Covirt_workloads

let mib = Covirt_sim.Units.mib

(* ------------------------------------------------------------------ *)
(* EPT coalescing.                                                     *)

type coalescing_row = {
  ept_pages : string;
  gups : float;
  overhead_vs_native : float;
  leaves : int;
}

let gups_with ~quick config =
  Experiments.with_setup ~config ~layout:Experiments.layout_1x1 (fun setup ->
      let ctxs = Experiments.contexts setup in
      let log2_table = if quick then 22 else 25 in
      let gups =
        match Random_access.run ctxs ~log2_table () with
        | Ok r -> r.Random_access.gups
        | Error e -> failwith e
      in
      let leaves =
        match
          Covirt.Controller.instance_for setup.Experiments.controller
            ~enclave_id:setup.Experiments.enclave.Enclave.id
        with
        | Some { Covirt.Controller.ept_mgr = Some mgr; _ } ->
            let a, b, c = Covirt.Ept_manager.leaf_counts mgr in
            a + b + c
        | Some { Covirt.Controller.ept_mgr = None; _ } | None -> 0
      in
      (gups, leaves))

let coalescing ?(quick = false) ?domains () =
  let cases =
    [|
      ("native", Covirt.Config.native);
      ("1G (coalesced)", { Covirt.Config.mem with max_ept_page = Addr.Page_1g });
      ("2M cap", { Covirt.Config.mem with max_ept_page = Addr.Page_2m });
      ("4K only", { Covirt.Config.mem with max_ept_page = Addr.Page_4k });
    |]
  in
  (* The native baseline runs as shard 0 alongside the three EPT-page
     cases; each case is deterministic in its config (the shard seed is
     unused), and the overhead divide happens after the join. *)
  let measured =
    Covirt_fleet.Fleet.map ?domains ~seed:42 ~shards:(Array.length cases)
      (fun ~shard_seed:_ ~index -> gups_with ~quick (snd cases.(index)))
  in
  let native, _ = measured.(0) in
  List.init
    (Array.length cases - 1)
    (fun i ->
      let name = fst cases.(i + 1) in
      let gups, leaves = measured.(i + 1) in
      {
        ept_pages = name;
        gups;
        overhead_vs_native =
          Covirt_sim.Stats.relative_slowdown_of_rates ~baseline:native
            ~measured:gups;
        leaves;
      })

let coalescing_table rows =
  let t =
    Covirt_sim.Table.create
      ~columns:[ "EPT pages"; "GUPS"; "overhead vs native"; "EPT leaves" ]
  in
  List.iter
    (fun r ->
      Covirt_sim.Table.add_row t
        [
          r.ept_pages;
          Format.asprintf "%.5f" r.gups;
          Covirt_sim.Table.cell_pct r.overhead_vs_native;
          string_of_int r.leaves;
        ])
    rows;
  t

(* ------------------------------------------------------------------ *)
(* PIV vs full APIC virtualization.                                    *)

type ipi_row = {
  mode : string;
  cycles_per_doorbell : float;
  incoming_exits : int;
  cycles_per_device_rx : float;
}

let doorbell_run ~doorbells config =
  let machine = Machine.create ~zones:2 ~cores_per_zone:3
      ~mem_per_zone:(4 * Covirt_sim.Units.gib) () in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let controller = Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes) ~config in
  let launch name cores zone =
    match
      Covirt_hobbes.Hobbes.launch_enclave hobbes ~name ~cores
        ~mem:[ (zone, 512 * mib) ] ()
    with
    | Ok pair -> pair
    | Error e -> failwith e
  in
  let producer = launch "producer" [ 1 ] 0 in
  let consumer = launch "consumer" [ 3 ] 1 in
  let channel =
    match
      Covirt_hobbes.Ipc.connect hobbes ~producer ~consumer ~name:"bell"
        ~ring_bytes:4096
    with
    | Ok ch -> ch
    | Error e -> failwith e
  in
  let prod_ctx = Kitten.context (snd producer) ~core:1 in
  let cons_cpu = Machine.cpu machine 3 in
  let start_prod = Cpu.rdtsc prod_ctx.Kitten.cpu in
  let start_cons = Cpu.rdtsc cons_cpu in
  for _ = 1 to doorbells do
    Covirt_hobbes.Ipc.send channel prod_ctx ~words:1
  done;
  assert (Covirt_hobbes.Ipc.receipts channel = doorbells);
  let cycles =
    Cpu.rdtsc prod_ctx.Kitten.cpu - start_prod
    + (Cpu.rdtsc cons_cpu - start_cons)
  in
  let incoming_exits =
    match
      Covirt.Controller.instance_for controller
        ~enclave_id:(fst consumer).Enclave.id
    with
    | Some inst ->
        List.fold_left
          (fun acc (_, hv) ->
            acc
            + (Covirt.Hypervisor.vmcs hv).Vmcs.stats.Vmcs.exits_interrupt)
          0 inst.Covirt.Controller.hypervisors
    | None -> 0
  in
  (* device-RX cost in the same configuration: a NIC MSI at the
     consumer core *)
  let nic = Nic.create machine ~name:"bench-nic" in
  Nic.bind_msi nic ~core:3 ~vector:0x62;
  (match
     Pisces.assign_device (Covirt_hobbes.Hobbes.pisces hobbes) (fst consumer)
       ~device:"bench-nic"
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  let rx_before = Cpu.rdtsc cons_cpu in
  let rx_rounds = 100 in
  for _ = 1 to rx_rounds do
    match Nic.inject_rx machine nic with
    | Ok () -> ()
    | Error e -> failwith e
  done;
  let rx_cycles =
    float_of_int (Cpu.rdtsc cons_cpu - rx_before) /. float_of_int rx_rounds
  in
  ( float_of_int cycles /. float_of_int doorbells,
    incoming_exits,
    rx_cycles )

let piv_vs_full ?(doorbells = 1000) () =
  let cases =
    [
      ("native", Covirt.Config.native);
      ("vapic-full", { Covirt.Config.none with ipi = Covirt.Config.Ipi_vapic_full });
      ("piv", Covirt.Config.ipi);
    ]
  in
  List.map
    (fun (name, config) ->
      let cycles, exits, rx = doorbell_run ~doorbells config in
      {
        mode = name;
        cycles_per_doorbell = cycles;
        incoming_exits = exits;
        cycles_per_device_rx = rx;
      })
    cases

let piv_table rows =
  let t =
    Covirt_sim.Table.create
      ~columns:
        [ "delivery mode"; "cycles/doorbell"; "incoming-interrupt exits";
          "cycles/device RX" ]
  in
  List.iter
    (fun r ->
      Covirt_sim.Table.add_row t
        [
          r.mode;
          Format.asprintf "%.0f" r.cycles_per_doorbell;
          string_of_int r.incoming_exits;
          Format.asprintf "%.0f" r.cycles_per_device_rx;
        ])
    rows;
  t

(* ------------------------------------------------------------------ *)
(* Asynchronous vs synchronous configuration updates.                  *)

type sync_row = {
  size_bytes : int;
  async_us : float;
  sync_us : float;
  penalty : float;
}

(* Strawman synchronous design: every mapping update pauses every
   enclave core (NMI + exit round trip) and the EPT write happens on
   the enclave's critical path rather than overlapped on the host.
   We model it by installing an extra pre-map hook behind Covirt's
   that re-charges the EPT work to the caller and fires a doorbell per
   core. *)
let attach_with ~sync ~size =
  Experiments.with_setup ~config:Covirt.Config.mem_ipi
    ~layout:Experiments.layout_1x1 (fun setup ->
      let machine = setup.Experiments.machine in
      let pisces = Covirt_hobbes.Hobbes.pisces setup.Experiments.hobbes in
      if sync then begin
        let hooks = Pisces.hooks pisces in
        hooks.Hooks.pre_memory_map <-
          hooks.Hooks.pre_memory_map
          @ [
              (fun enclave region ->
                let caller = Machine.cpu machine (Enclave.bsp enclave) in
                (* serial EPT write cost on the enclave's critical path *)
                let entries = region.Region.len / Addr.page_size_4k in
                Cpu.charge caller
                  (entries * machine.Machine.model.Cost_model.ept_entry_update);
                (* and a trap of every enclave core *)
                List.iter
                  (fun core -> Machine.post_host_nmi machine ~dest:core)
                  enclave.Enclave.cores);
            ]
      end;
      (* export from a second enclave, attach, measure the caller *)
      match
        Covirt_hobbes.Hobbes.launch_enclave setup.Experiments.hobbes
          ~name:"exporter" ~cores:[ 9 ]
          ~mem:[ (1, (2 * Covirt_sim.Units.gib) + (2 * size)) ]
          ()
      with
      | Error e -> failwith e
      | Ok (exp_enclave, exp_kitten) -> (
          let base =
            match Kitten.kalloc exp_kitten ~bytes:size with
            | Ok b -> b
            | Error e -> failwith e
          in
          let xemem = Covirt_hobbes.Hobbes.xemem setup.Experiments.hobbes in
          (match
             Covirt_xemem.Xemem.export xemem
               ~exporter:
                 (Covirt_xemem.Name_service.Enclave_export exp_enclave.Enclave.id)
               ~name:"seg"
               ~pages:[ Region.make ~base ~len:size ]
           with
          | Ok _ -> ()
          | Error e -> failwith e);
          let caller =
            Machine.cpu machine (Enclave.bsp setup.Experiments.enclave)
          in
          let t0 = Cpu.rdtsc caller in
          match
            Covirt_xemem.Xemem.attach xemem setup.Experiments.enclave ~name:"seg"
          with
          | Error e -> failwith e
          | Ok _ ->
              Covirt_sim.Units.cycles_to_us
                ~ghz:machine.Machine.model.Cost_model.ghz
                (Cpu.rdtsc caller - t0)))

let sync_vs_async ?(quick = false) () =
  let sizes =
    List.init (if quick then 5 else 9) (fun i -> (1 lsl i) * 2 * mib)
  in
  List.map
    (fun size ->
      let async_us = attach_with ~sync:false ~size in
      let sync_us = attach_with ~sync:true ~size in
      {
        size_bytes = size;
        async_us;
        sync_us;
        penalty =
          Covirt_sim.Stats.relative_overhead ~baseline:async_us
            ~measured:sync_us;
      })
    sizes

let sync_table rows =
  let t =
    Covirt_sim.Table.create
      ~columns:
        [ "region size"; "async update (us)"; "sync strawman (us)"; "penalty" ]
  in
  List.iter
    (fun r ->
      Covirt_sim.Table.add_row t
        [
          Format.asprintf "%a" Covirt_sim.Units.pp_bytes r.size_bytes;
          Covirt_sim.Table.cell_f r.async_us;
          Covirt_sim.Table.cell_f r.sync_us;
          Covirt_sim.Table.cell_pct r.penalty;
        ])
    rows;
  t
