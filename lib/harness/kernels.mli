(** The co-kernel architecture matrix.

    "While each of these co-kernels represent a unique point in the
    design space ... Covirt represents a unique capability that could
    be adapted to suit the full range of co-kernel approaches."  This
    runner boots all three implemented kernel architectures (Kitten,
    Nautilus, McKernel) natively and under Covirt, measures their
    characteristic syscall path, and verifies the same injected fault
    is contained in each — with zero kernel-specific code in the
    controller. *)

type row = {
  kernel : string;
  integration : string;  (** where it sits on the paper's integration axis *)
  boots_under_covirt : bool;
  syscall_cycles : int option;
      (** getpid-class call; [None] where the kernel has no syscall
          interface (Nautilus) *)
  wild_write_contained : bool;
  covirt_loc_for_support : int;  (** always 0 — the point of the table *)
}

val matrix : unit -> row list
val table : row list -> Covirt_sim.Table.t
