open Covirt_hw
open Covirt_workloads

type row = {
  scenario : string;
  native_mb_s : float;
  covirt_mb_s : float;
  interference_native : float;
  interference_covirt : float;
}

(* STREAM on a single zone-0 core, with background pressure dialled
   into the chosen zone before the run. *)
let stream_with ~quick ~config ~pressure_zone ~pressure =
  Experiments.with_setup ~config ~layout:Experiments.layout_1x1 (fun setup ->
      (match pressure_zone with
      | Some zone ->
          Machine.set_background_streamers setup.Experiments.machine ~zone
            pressure
      | None -> ());
      let ctxs = Experiments.contexts setup in
      let elems = if quick then 1_000_000 else Stream.default_elems in
      match Stream.run ctxs ~elems ~iters:(if quick then 3 else 10) () with
      | Ok r -> r.Stream.triad_mb_s
      | Error e -> failwith e)

let run ?(quick = false) ?(pressure = 6) () =
  let scenarios =
    [
      ("quiet node", None);
      ("pressure in the other zone", Some 1);
      ("pressure in the enclave's zone", Some 0);
    ]
  in
  let measure config pressure_zone =
    stream_with ~quick ~config ~pressure_zone ~pressure
  in
  let base_native = measure Covirt.Config.native None in
  let base_covirt = measure Covirt.Config.mem_ipi None in
  List.map
    (fun (name, pressure_zone) ->
      let native_mb_s = measure Covirt.Config.native pressure_zone in
      let covirt_mb_s = measure Covirt.Config.mem_ipi pressure_zone in
      {
        scenario = name;
        native_mb_s;
        covirt_mb_s;
        interference_native =
          Covirt_sim.Stats.relative_slowdown_of_rates ~baseline:base_native
            ~measured:native_mb_s;
        interference_covirt =
          Covirt_sim.Stats.relative_slowdown_of_rates ~baseline:base_covirt
            ~measured:covirt_mb_s;
      })
    scenarios

let table rows =
  let t =
    Covirt_sim.Table.create
      ~columns:
        [ "scenario"; "native MB/s"; "covirt MB/s"; "native slowdown";
          "covirt slowdown" ]
  in
  List.iter
    (fun r ->
      Covirt_sim.Table.add_row t
        [
          r.scenario;
          Covirt_sim.Table.cell_f r.native_mb_s;
          Covirt_sim.Table.cell_f r.covirt_mb_s;
          Covirt_sim.Table.cell_pct r.interference_native;
          Covirt_sim.Table.cell_pct r.interference_covirt;
        ])
    rows;
  t
