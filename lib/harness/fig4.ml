open Covirt_hw
open Covirt_pisces
open Covirt_kitten

type point = {
  size_bytes : int;
  native_us : float;
  covirt_us : float;
  overhead : float;
}

let mib = Covirt_sim.Units.mib

(* One attach measurement: a second enclave exports a region of the
   given size; the benchmark enclave attaches and we read its boot
   core's TSC around the call. *)
let measure_attach setup ~size =
  let hobbes = setup.Experiments.hobbes in
  match
    Covirt_hobbes.Hobbes.launch_enclave hobbes ~name:"exporter" ~cores:[ 9 ]
      ~mem:[ (1, (2 * Covirt_sim.Units.gib) + (2 * size)) ]
      ()
  with
  | Error e -> failwith ("fig4 exporter: " ^ e)
  | Ok (exporter_enclave, exporter_kitten) -> (
      let name = Printf.sprintf "seg-%d" size in
      (match Kitten.kalloc exporter_kitten ~bytes:size with
      | Error e -> failwith ("fig4 kalloc: " ^ e)
      | Ok base -> (
          let xemem = Covirt_hobbes.Hobbes.xemem hobbes in
          match
            Covirt_xemem.Xemem.export xemem
              ~exporter:
                (Covirt_xemem.Name_service.Enclave_export
                   exporter_enclave.Enclave.id)
              ~name
              ~pages:[ Region.make ~base ~len:size ]
          with
          | Error e -> failwith ("fig4 export: " ^ e)
          | Ok _segid -> (
              let caller =
                Machine.cpu setup.Experiments.machine
                  (Enclave.bsp setup.Experiments.enclave)
              in
              let t0 = Cpu.rdtsc caller in
              match
                Covirt_xemem.Xemem.attach xemem setup.Experiments.enclave ~name
              with
              | Error e -> failwith ("fig4 attach: " ^ e)
              | Ok (_addr, _len) ->
                  let dt = Cpu.rdtsc caller - t0 in
                  let us =
                    Covirt_sim.Units.cycles_to_us
                      ~ghz:
                        setup.Experiments.machine.Machine.model
                          .Cost_model.ghz
                      dt
                  in
                  (match
                     Covirt_xemem.Xemem.detach xemem setup.Experiments.enclave
                       ~name
                   with
                  | Ok () -> ()
                  | Error e -> failwith ("fig4 detach: " ^ e));
                  us))))

let sizes ~quick =
  let max_log2 = if quick then 6 else 10 in
  List.init (max_log2 + 1) (fun i -> (1 lsl i) * mib)

let run ?(quick = false) ?(seed = 42) () =
  let measure config size =
    Experiments.with_setup ~config ~layout:Experiments.layout_1x1 ~seed
      (fun setup -> measure_attach setup ~size)
  in
  List.map
    (fun size ->
      let native_us = measure Covirt.Config.native size in
      let covirt_us = measure Covirt.Config.mem_ipi size in
      {
        size_bytes = size;
        native_us;
        covirt_us;
        overhead =
          Covirt_sim.Stats.relative_overhead ~baseline:native_us
            ~measured:covirt_us;
      })
    (sizes ~quick)

let table points =
  let t =
    Covirt_sim.Table.create
      ~columns:[ "region size"; "native (us)"; "covirt (us)"; "overhead" ]
  in
  List.iter
    (fun p ->
      Covirt_sim.Table.add_row t
        [
          Format.asprintf "%a" Covirt_sim.Units.pp_bytes p.size_bytes;
          Covirt_sim.Table.cell_f p.native_us;
          Covirt_sim.Table.cell_f p.covirt_us;
          Covirt_sim.Table.cell_pct p.overhead;
        ])
    points;
  t
