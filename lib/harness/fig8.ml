open Covirt_workloads

type cell = { config : string; loop_seconds : float; overhead : float }
type row = { bench : string; cells : cell list }

let measure ~quick ~seed ~bench config =
  Experiments.with_setup ~config ~layout:Experiments.layout_8x2 ~seed
    (fun setup ->
      let ctxs = Experiments.contexts setup in
      let real_atoms = if quick then 512 else 2048 in
      let steps = if quick then 40 else 100 in
      match Lammps.run ctxs ~bench ~real_atoms ~steps () with
      | Ok r ->
          assert r.Lammps.stable;
          r.Lammps.loop_seconds
      | Error e -> failwith ("fig8 lammps: " ^ e))

let run ?(quick = false) ?(seed = 42) () =
  List.map
    (fun bench ->
      let raws =
        List.map
          (fun (name, config) -> (name, measure ~quick ~seed ~bench config))
          Covirt.Config.presets
      in
      let baseline = List.assoc "native" raws in
      {
        bench = Lammps.bench_name bench;
        cells =
          List.map
            (fun (name, loop_seconds) ->
              {
                config = name;
                loop_seconds;
                overhead =
                  Covirt_sim.Stats.relative_overhead ~baseline
                    ~measured:loop_seconds;
              })
            raws;
      })
    Lammps.all_benches

let table rows =
  let configs = List.map fst Covirt.Config.presets in
  let t =
    Covirt_sim.Table.create
      ~columns:("bench" :: List.concat_map (fun c -> [ c ^ " (s)"; "ovh" ]) configs)
  in
  List.iter
    (fun row ->
      Covirt_sim.Table.add_row t
        (row.bench
        :: List.concat_map
             (fun cell ->
               [
                 Covirt_sim.Table.cell_f cell.loop_seconds;
                 Covirt_sim.Table.cell_pct cell.overhead;
               ])
             row.cells))
    rows;
  t

let worst_of row =
  List.fold_left
    (fun acc cell ->
      if cell.config = "native" then acc else Float.max acc cell.overhead)
    0.0 row.cells

let chute_is_most_sensitive rows =
  match List.partition (fun r -> r.bench = "chute") rows with
  | [ chute ], others ->
      List.for_all (fun other -> worst_of chute >= worst_of other) others
  | _ -> false
