(* Golden snapshot of every simulated observable the translation fast
   path could perturb.  The capture is pure simulation — no host
   timing — so the string is bit-stable run over run; the committed
   copy in test/golden/ pins the pre-optimisation outputs and the
   golden test asserts equality after every change to the TLB/EPT/cost
   paths. *)

open Covirt_hw

let mib = Covirt_sim.Units.mib
let gib = Covirt_sim.Units.gib

let section buf name =
  Buffer.add_string buf ("\n== " ^ name ^ " ==\n")

let table buf t = Buffer.add_string buf (Covirt_sim.Table.render t)

let linef buf fmt = Format.kasprintf (Buffer.add_string buf) (fmt ^^ "@\n")

(* Exact float: tables round to 4 significant digits, which could mask
   a small perturbation; the raw rows are dumped at full precision. *)
let f = Printf.sprintf "%.17g"

let figures ?domains buf =
  section buf "fig3";
  let rows = Fig3.run ~quick:true ?domains () in
  table buf (Fig3.table rows);
  List.iter
    (fun (r : Fig3.row) ->
      linef buf "fig3 %s detours=%d noise=%s" r.Fig3.config r.Fig3.detour_count
        (f r.Fig3.noise_fraction))
    rows;
  section buf "fig4";
  let points = Fig4.run ~quick:true () in
  table buf (Fig4.table points);
  List.iter
    (fun (p : Fig4.point) ->
      linef buf "fig4 native_us=%s covirt_us=%s overhead=%s" (f p.Fig4.native_us)
        (f p.Fig4.covirt_us) (f p.Fig4.overhead))
    points;
  section buf "fig5";
  let rows = Fig5.run ~quick:true ?domains () in
  table buf (Fig5.stream_table rows);
  table buf (Fig5.gups_table rows);
  List.iter
    (fun (r : Fig5.row) ->
      linef buf "fig5 %s triad=%s copy=%s gups=%s so=%s go=%s" r.Fig5.config
        (f r.Fig5.triad_mb_s) (f r.Fig5.copy_mb_s) (f r.Fig5.gups)
        (f r.Fig5.stream_overhead) (f r.Fig5.gups_overhead))
    rows;
  section buf "fig6";
  let rows = Fig6.run ~quick:true () in
  table buf (Fig6.table rows);
  List.iter
    (fun (r : Fig6.row) ->
      List.iter
        (fun (c : Fig6.cell) ->
          linef buf "fig6 %s %s gflops=%s overhead=%s" r.Fig6.layout
            c.Fig6.config (f c.Fig6.gflops) (f c.Fig6.overhead))
        r.Fig6.cells)
    rows;
  section buf "fig7";
  let rows = Fig7.run ~quick:true () in
  table buf (Fig7.table rows);
  List.iter
    (fun (r : Fig7.row) ->
      List.iter
        (fun (c : Fig7.cell) ->
          linef buf "fig7 %s %s gflops=%s overhead=%s" r.Fig7.layout
            c.Fig7.config (f c.Fig7.gflops) (f c.Fig7.overhead))
        r.Fig7.cells)
    rows;
  section buf "fig8";
  let rows = Fig8.run ~quick:true () in
  table buf (Fig8.table rows);
  List.iter
    (fun (r : Fig8.row) ->
      List.iter
        (fun (c : Fig8.cell) ->
          linef buf "fig8 %s %s loop_s=%s overhead=%s" r.Fig8.bench
            c.Fig8.config (f c.Fig8.loop_seconds) (f c.Fig8.overhead))
        r.Fig8.cells)
    rows

let studies ?domains buf =
  section buf "ablate-coalesce";
  table buf (Ablate.coalescing_table (Ablate.coalescing ~quick:true ?domains ()));
  section buf "ablate-piv";
  table buf (Ablate.piv_table (Ablate.piv_vs_full ()));
  section buf "ablate-sync";
  table buf (Ablate.sync_table (Ablate.sync_vs_async ~quick:true ()));
  section buf "compare";
  table buf (Compare_virt.ipc_table (Compare_virt.ipc ()));
  table buf (Compare_virt.sharing_table (Compare_virt.sharing ~quick:true ()));
  section buf "noise";
  table buf (Noise_compare.table (Noise_compare.run ()));
  section buf "scale";
  table buf (Scale.table (Scale.run ~quick:true ?domains ()));
  section buf "kernels";
  table buf (Kernels.table (Kernels.matrix ()));
  section buf "isolation";
  table buf (Isolation.table (Isolation.run ~quick:true ()));
  section buf "campaign";
  let rows = Campaign.run ~trials:30 ?domains () in
  table buf (Campaign.table rows);
  List.iter
    (fun (r : Campaign.row) ->
      linef buf "campaign %s contained=%d down=%d collateral=%d latent=%d"
        r.Campaign.config r.Campaign.contained r.Campaign.node_down
        r.Campaign.collateral r.Campaign.latent)
    rows

let soak ?domains buf =
  section buf "soak";
  let r = Covirt_resilience.Soak.run ~trials:60 ~seed:2026 ?domains () in
  linef buf "soak faults=%d fatal_recoveries=%d wedges=%d/%d budget=%b"
    r.Covirt_resilience.Soak.faults_injected
    r.Covirt_resilience.Soak.fatal_recoveries
    r.Covirt_resilience.Soak.wedges_detected
    r.Covirt_resilience.Soak.wedges_injected
    r.Covirt_resilience.Soak.budget_respected;
  linef buf "soak sibling_residual=%s reference_residual=%s unperturbed=%b"
    (f r.Covirt_resilience.Soak.sibling_residual)
    (f r.Covirt_resilience.Soak.reference_residual)
    r.Covirt_resilience.Soak.sibling_unperturbed;
  List.iter
    (fun (name, n) -> linef buf "soak incarnations %s=%d" name n)
    r.Covirt_resilience.Soak.incarnations

(* Granular scenario: loads/stores through the real (stateful) TLB and
   EPT on a protected stack, with flushes in between — the per-CPU TSC
   values at the end pin the cycle-exact behaviour of the granular
   translation path. *)
let granular buf =
  section buf "granular";
  let machine =
    Machine.create ~seed:11 ~zones:2 ~cores_per_zone:2
      ~mem_per_zone:(2 * gib) ~host_reserved_per_zone:(128 * mib) ()
  in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let _controller =
    Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes)
      ~config:Covirt.Config.full
  in
  match
    Covirt_hobbes.Hobbes.launch_enclave hobbes ~name:"golden" ~cores:[ 1; 2 ]
      ~mem:[ (0, 256 * mib); (1, 256 * mib) ] ()
  with
  | Error e -> failwith ("golden granular boot: " ^ e)
  | Ok (_enclave, kitten) ->
      let ctx1 = Covirt_kitten.Kitten.context kitten ~core:1 in
      let ctx2 = Covirt_kitten.Kitten.context kitten ~core:2 in
      let alloc (ctx : Covirt_kitten.Kitten.context) bytes =
        match
          Covirt_kitten.Kitten.kalloc ~near_core:ctx.Covirt_kitten.Kitten.cpu.Cpu.id
            ctx.Covirt_kitten.Kitten.kernel ~bytes
        with
        | Ok base -> base
        | Error e -> failwith ("golden granular alloc: " ^ e)
      in
      let b1 = alloc ctx1 (16 * mib) in
      let b2 = alloc ctx2 (16 * mib) in
      let cpu1 = ctx1.Covirt_kitten.Kitten.cpu in
      let cpu2 = ctx2.Covirt_kitten.Kitten.cpu in
      for _pass = 1 to 3 do
        for i = 0 to 1023 do
          Machine.load machine cpu1 (b1 + (i * Addr.page_size_4k));
          Machine.store machine cpu2 (b2 + (i * Addr.page_size_4k))
        done
      done;
      (* Flush part of each TLB and re-touch: exercises flush_range
         precision and re-install. *)
      Tlb.flush_range cpu1.Cpu.tlb
        (Region.make ~base:b1 ~len:(2 * mib));
      Tlb.flush_all cpu2.Cpu.tlb;
      for i = 0 to 511 do
        Machine.load machine cpu1 (b1 + (i * Addr.page_size_4k));
        Machine.load machine cpu2 (b2 + (i * Addr.page_size_4k))
      done;
      (* Cross-enclave-free observables. *)
      for core = 0 to Machine.ncores machine - 1 do
        let cpu = Machine.cpu machine core in
        linef buf "granular cpu%d tsc=%d tlb_entries=%d flushes=%d" core
          (Cpu.rdtsc cpu)
          (Tlb.entry_count cpu.Cpu.tlb)
          (Tlb.flush_count cpu.Cpu.tlb)
      done;
      linef buf "granular wild_reads=%d" machine.Machine.wild_reads;
      (match Cpu.vmcs cpu1 with
      | Some vmcs -> (
          match vmcs.Vmcs.controls.Vmcs.ept with
          | Some ept ->
              let n4k, n2m, n1g = Ept.leaf_counts ept in
              linef buf "granular ept leaves=%d/%d/%d writes=%d" n4k n2m n1g
                (Ept.entry_writes ept)
          | None -> linef buf "granular ept none")
      | None -> linef buf "granular host mode")

(* The sharded soak is part of the golden surface: its merged counters
   must be a pure function of the shard seeds — the same whether the
   four shards ran on one domain or eight. *)
let soak_sharded ?domains buf =
  section buf "soak-sharded";
  let r = Covirt_resilience.Soak.run ~trials:60 ~seed:2026 ~shards:4 ?domains () in
  linef buf "soak4 faults=%d fatal_recoveries=%d wedges=%d/%d budget=%b"
    r.Covirt_resilience.Soak.faults_injected
    r.Covirt_resilience.Soak.fatal_recoveries
    r.Covirt_resilience.Soak.wedges_detected
    r.Covirt_resilience.Soak.wedges_injected
    r.Covirt_resilience.Soak.budget_respected;
  linef buf "soak4 unperturbed=%b" r.Covirt_resilience.Soak.sibling_unperturbed;
  List.iter
    (fun (name, n) -> linef buf "soak4 incarnations %s=%d" name n)
    r.Covirt_resilience.Soak.incarnations

let capture ?domains () =
  let buf = Buffer.create (1 lsl 16) in
  figures ?domains buf;
  studies ?domains buf;
  soak ?domains buf;
  soak_sharded ?domains buf;
  granular buf;
  Buffer.contents buf
