(* Shard-deterministic parallel runner.  See fleet.mli for the
   contract; the load-bearing properties are all here:

   - shard index, not domain, decides the seed (Rng.split_seed);
   - shards map to domains as contiguous blocks, no stealing, so a
     shard's neighbours-in-domain are a pure function of (shards,
     domains) — and nothing about the result depends on them anyway;
   - results are returned in index order (the per-domain blocks are
     ascending and contiguous, so concatenation IS the index order);
   - a shard's exception is caught inside its own slot, retried, and
     never unwinds another domain. *)

type error = { shard : int; attempts : int; message : string }

exception Shard_failed of error

let () =
  Printexc.register_printer (function
    | Shard_failed { shard; attempts; message } ->
        Some
          (Printf.sprintf "Fleet.Shard_failed(shard %d after %d attempts: %s)"
             shard attempts message)
    | _ -> None)

let recommended_domains () = max 1 (Domain.recommended_domain_count ())

let slice ~n ~shards k =
  let q = n / shards and r = n mod shards in
  let lo = (k * q) + min k r in
  let hi = lo + q + if k < r then 1 else 0 in
  (lo, hi)

(* Run one shard to a result, retrying on any exception.  A retry
   re-derives the same shard seed, so a deterministic body either
   succeeds identically or fails identically — retries only help
   against nondeterministic failures, and a deterministic failure
   costs [retries] extra attempts before surfacing. *)
let attempt ~retries ~seed ~index f =
  let shard_seed = Covirt_sim.Rng.split_seed ~seed ~index in
  let rec go attempts =
    match f ~shard_seed ~index with
    | v -> Ok v
    | exception exn ->
        if attempts <= retries then go (attempts + 1)
        else
          Error
            { shard = index; attempts; message = Printexc.to_string exn }
  in
  go 1

let map_result ?domains ?(retries = 1) ~seed ~shards f =
  if shards < 0 then invalid_arg "Fleet.map: shards must be non-negative";
  let requested =
    match domains with Some d -> d | None -> recommended_domains ()
  in
  if requested < 1 then invalid_arg "Fleet.map: domains must be positive";
  let blocks = max 1 (min requested shards) in
  let run_block k =
    let lo, hi = slice ~n:shards ~shards:blocks k in
    Array.init (hi - lo) (fun j -> attempt ~retries ~seed ~index:(lo + j) f)
  in
  let per_block =
    if blocks = 1 then [| run_block 0 |]
    else begin
      let spawned =
        Array.init (blocks - 1) (fun i ->
            Domain.spawn (fun () -> run_block (i + 1)))
      in
      (* The calling domain takes block 0 while the others run. *)
      let own = run_block 0 in
      Array.append [| own |] (Array.map Domain.join spawned)
    end
  in
  Array.concat (Array.to_list per_block)

let map ?domains ?retries ~seed ~shards f =
  Array.map
    (function Ok v -> v | Error e -> raise (Shard_failed e))
    (map_result ?domains ?retries ~seed ~shards f)
