(** Shard-deterministic parallel runner on OCaml 5 domains.

    The repo's strongest invariant is seeded bit-for-bit determinism;
    this module parallelises the statistical harnesses — campaigns,
    soaks, configuration sweeps, bench repetitions — without giving it
    up.  The contract:

    - Work is cut into [shards] {e semantic} units.  The shard count
      is part of an experiment's identity: changing it may change
      results (each shard owns an RNG stream and a machine stack).
    - The {e domain} count is physical placement only.  Shards are
      assigned to domains as contiguous index blocks with no work
      stealing, every shard derives its seed as
      [Covirt_sim.Rng.split_seed ~seed ~index], results land in the
      slot keyed by their index, and the caller's merge is a pure left
      fold over that array — so [domains:1] and [domains:8] produce
      byte-identical tables, golden files and JSON.
    - No shared mutable hardware state crosses a domain boundary:
      every shard builds its own [Machine], and the per-domain
      observability / sanitizer registries (Domain-local storage in
      [lib/obs] and [lib/hw/sanitize]) keep measurement domain-local.
      This library depends only on [covirt_sim]; the lint gate forbids
      it from reaching into [lib/hw], and forbids [Domain.spawn]
      anywhere else in [lib/].

    A shard that raises fails only its own slot: it is retried
    ([retries] times, default once), and if it still fails the error
    is carried as a typed {!error} — the other shards complete
    normally. *)

type error = {
  shard : int;  (** index of the failing shard *)
  attempts : int;  (** attempts made, including retries *)
  message : string;  (** [Printexc.to_string] of the last exception *)
}

exception Shard_failed of error
(** Raised by {!map} (after every shard has completed) for the
    lowest-indexed shard whose final retry still raised. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()], clamped to at least 1.  The
    default for every [?domains] argument in the harnesses. *)

val slice : n:int -> shards:int -> int -> int * int
(** [slice ~n ~shards k] is the half-open range [(lo, hi)] of the [n]
    work items owned by shard [k] of [shards]: contiguous, balanced
    (sizes differ by at most one), and covering [0..n-1] exactly.
    Consumers that shard a trial loop (e.g. the soak) use this so the
    global trial numbers — which schedule wedges and alternate targets
    — are preserved whatever the shard count. *)

val map :
  ?domains:int ->
  ?retries:int ->
  seed:int ->
  shards:int ->
  (shard_seed:int -> index:int -> 'a) ->
  'a array
(** [map ~domains ~seed ~shards f] evaluates
    [f ~shard_seed:(Rng.split_seed ~seed ~index) ~index] for every
    [index] in [0..shards-1], distributing contiguous index blocks
    over [domains] domains (default {!recommended_domains}; clamped to
    [shards]), and returns the results in index order.  [domains:1]
    runs inline on the calling domain.  A shard whose body raises is
    retried [retries] times (default [1]); if the last attempt still
    raises, [map] finishes the remaining shards and then raises
    {!Shard_failed}.  Raises [Invalid_argument] on negative [shards]
    or non-positive [domains]. *)

val map_result :
  ?domains:int ->
  ?retries:int ->
  seed:int ->
  shards:int ->
  (shard_seed:int -> index:int -> 'a) ->
  ('a, error) result array
(** Like {!map}, but a failed shard surfaces as [Error] in its own
    slot instead of raising, so callers can tolerate partial
    completion. *)
