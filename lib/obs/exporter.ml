(* Bounded trace-event buffer + hand-rolled Chrome trace_event JSON
   serialisation (the repo carries no JSON library, and the format is a
   flat array of small objects). *)

let on = ref false
let enable () = on := true
let disable () = on := false
let enabled () = !on

type event = {
  name : string;
  cat : string;
  ph : string;
  ts : int;
  dur : int;
  pid : int;
  tid : int;
  args : (string * string) list;
}

(* [capacity] and the cycle/us scale are configuration — shared, set
   before a run; the buffer itself is per-domain (Domain-local
   storage) so fleet shards trace into their own rings. *)
let capacity = ref 65536
let cycles_per_us = ref 1700.

let set_cycles_per_us c = cycles_per_us := c

type ring = {
  mutable buf : event array;
  mutable len : int;
  mutable dropped : int;
}

let ring_key =
  Domain.DLS.new_key (fun () -> { buf = [||]; len = 0; dropped = 0 })

let ring () = Domain.DLS.get ring_key

let clear () =
  let r = ring () in
  r.buf <- [||];
  r.len <- 0;
  r.dropped <- 0

let set_capacity c =
  capacity := max 1 c;
  clear ()

let dummy =
  { name = ""; cat = ""; ph = ""; ts = 0; dur = 0; pid = 0; tid = 0; args = [] }

let emit e =
  let r = ring () in
  if Array.length r.buf = 0 then r.buf <- Array.make !capacity dummy;
  if r.len >= Array.length r.buf then r.dropped <- r.dropped + 1
  else begin
    r.buf.(r.len) <- e;
    r.len <- r.len + 1
  end

let events () =
  let r = ring () in
  Array.to_list (Array.sub r.buf 0 r.len)

let length () = (ring ()).len
let dropped () = (ring ()).dropped

(* ------------------------------------------------------------------ *)
(* Serialisation.                                                      *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us_of_cycles c = float_of_int c /. !cycles_per_us

let event_json b e =
  Buffer.add_string b
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f"
       (json_escape e.name) (json_escape e.cat) (json_escape e.ph)
       (us_of_cycles e.ts));
  if e.ph = "X" then
    Buffer.add_string b (Printf.sprintf ",\"dur\":%.3f" (us_of_cycles e.dur));
  if e.ph = "i" then Buffer.add_string b ",\"s\":\"t\"";
  Buffer.add_string b (Printf.sprintf ",\"pid\":%d,\"tid\":%d" e.pid e.tid);
  let args = ("cycles", string_of_int e.dur) :: e.args in
  Buffer.add_string b ",\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
    args;
  Buffer.add_string b "}}"

let to_chrome_json () =
  let r = ring () in
  let b = Buffer.create ((256 * r.len) + 128) in
  Buffer.add_string b "{\"traceEvents\":[";
  for i = 0 to r.len - 1 do
    if i > 0 then Buffer.add_char b ',';
    Buffer.add_char b '\n';
    event_json b r.buf.(i)
  done;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\"";
  if r.dropped > 0 then
    Buffer.add_string b
      (Printf.sprintf ",\"otherData\":{\"dropped\":\"%d\"}" r.dropped);
  Buffer.add_string b "}\n";
  Buffer.contents b

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_chrome_json ~path = write_file ~path (to_chrome_json ())

let write_jsonl ~path =
  let r = ring () in
  let b = Buffer.create (256 * r.len) in
  for i = 0 to r.len - 1 do
    event_json b r.buf.(i);
    Buffer.add_char b '\n'
  done;
  write_file ~path (Buffer.contents b)
