(** Span construction helpers over {!Exporter}.

    A span is a named interval on an (enclave, CPU) track; an instant is
    a zero-length marker.  All emitters check {!Exporter.on} themselves,
    so instrumentation sites may call them unconditionally — though hot
    paths should still guard to avoid building argument lists.

    Timestamps are simulated TSC cycles (the exporter converts to
    microseconds at serialisation time). *)

type t
(** An open span: name, category, track, and start timestamp. *)

val begin_ :
  name:string -> cat:string -> pid:int -> tid:int -> ts:int -> t
(** Open a span starting at cycle [ts] on track ([pid], [tid]). *)

val finish : ?args:(string * string) list -> t -> ts:int -> unit
(** Close a span at cycle [ts], emitting a Chrome complete ("X") event.
    No-op when the exporter is disabled. *)

val complete :
  ?args:(string * string) list ->
  name:string ->
  cat:string ->
  pid:int ->
  tid:int ->
  ts:int ->
  dur:int ->
  unit ->
  unit
(** Emit a closed span in one call — the usual shape for exit dispatch,
    where start and duration are both known when the handler returns. *)

val instant :
  ?args:(string * string) list ->
  name:string ->
  cat:string ->
  pid:int ->
  tid:int ->
  ts:int ->
  unit ->
  unit
(** Emit a zero-length marker ("i" event) — faults, recovery decisions,
    watchdog escalations. *)
