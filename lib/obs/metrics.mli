(** Typed metrics registry: counters, gauges, and log-scale latency
    histograms, labeled per enclave × CPU × dimension.

    The registry is ambient — instrumentation sites anywhere in the
    stack reach it without threading a handle — but {e per-domain}:
    families and cells are pure descriptors, and each record resolves
    the mutable state through Domain-local storage.  A fleet shard
    (see [Covirt_fleet]) therefore only ever mutates its own domain's
    tables; per-shard deltas are joined afterwards with {!merge}.
    Every hot-path site guards on {!on} — a single [bool ref] read and
    branch — so a disabled registry costs one predictable branch per
    site and records nothing.

    Recording never charges simulated cycles: metrics are measurement
    apparatus, not part of the machine model, so enabling them leaves
    simulation results (and the golden transcript) bit-identical.

    Typical instrumentation shape:
    {[
      let hits = Metrics.(unlabeled (counter "tlb.lookup.hit"))

      let lookup t addr =
        ...
        if !Metrics.on then Metrics.add hits 1;
        ...
    ]}

    Families are interned by name: calling {!counter} twice with the same
    name returns the same family, so handles can be created at module
    initialisation time and survive {!reset}. *)

(** {1 Enabling} *)

val on : bool ref
(** Master switch.  Instrumentation sites must check [!on] before touching
    any cell; {!add}/{!observe}/{!set} themselves do not re-check it.
    Prefer {!enable}/{!disable} over writing the ref directly.  The
    switch is shared across domains: flip it only before spawning a
    fleet or after joining it. *)

val enable : unit -> unit
(** Turn recording on. *)

val disable : unit -> unit
(** Turn recording off.  Existing values are kept (use {!reset} to zero). *)

val enabled : unit -> bool
(** [enabled ()] is [!on]. *)

(** {1 Labels} *)

type label = {
  enclave : int;  (** owning enclave id, or [-1] when not enclave-scoped *)
  cpu : int;  (** APIC / core id, or [-1] when not CPU-scoped *)
  dim : string;
      (** free-form dimension: exit-reason name, operation kind, ... *)
}
(** A metric series is identified by family name plus one [label]. *)

val no_label : label
(** [{ enclave = -1; cpu = -1; dim = "" }] — the label of unlabeled
    series. *)

val pp_label : Format.formatter -> label -> unit
(** Renders as [enclave=E cpu=C dim=D], omitting [-1]/empty components. *)

(** {1 Families and cells} *)

type family
(** A named metric with a fixed kind and a set of labeled series. *)

type cell
(** One series of a family: the handle instrumentation sites record
    through.  A cell is a pure (family, label) descriptor — recording
    resolves it in the {e current} domain's registry — so cells are
    cheap to hold, safe to share across domains, and survive
    {!reset}. *)

val counter : ?max_series:int -> string -> family
(** [counter name] interns a monotonically increasing integer family.
    [max_series] bounds label cardinality (default [512]): once the bound
    is reached, {!cell} routes further labels to a shared overflow series
    and bumps {!dropped_series}, so a label-cardinality bug cannot grow
    memory without bound.  Raises [Invalid_argument] if [name] is already
    interned with a different kind — kind consistency is checked
    process-wide, not per-domain. *)

val gauge : ?max_series:int -> string -> family
(** [gauge name] interns a last-value-wins float family.  See {!counter}
    for [max_series]. *)

val histogram : ?max_series:int -> string -> family
(** [histogram name] interns a log-scale (geometric-bucket) distribution
    family for latency-like values.  Relative quantile error is bounded
    by the bucket growth factor ({!Hist.base}); the maximum is tracked
    exactly.  See {!counter} for [max_series]. *)

val cell : family -> label -> cell
(** [cell family label] interns and returns the series for [label],
    creating it on first use.  Returns the family's overflow series when
    the cardinality bound is hit.  Amortised O(1); fine on warm paths,
    though static sites should intern once at module init. *)

val unlabeled : family -> cell
(** [unlabeled f] is [cell f no_label]. *)

val dropped_series : family -> int
(** Number of distinct labels that were routed to the overflow series
    because the family hit its cardinality bound, in the current
    domain. *)

val series_count : family -> int
(** Number of live (interned) series in the current domain, excluding
    the overflow series. *)

(** {1 Recording}

    None of these check {!on}; the caller's guard is the single
    disabled-path branch. *)

val add : cell -> int -> unit
(** [add c n] increments a counter cell by [n].  No-op on other kinds. *)

val set : cell -> float -> unit
(** [set c v] overwrites a gauge cell.  No-op on other kinds. *)

val observe : cell -> float -> unit
(** [observe c v] records one sample into a histogram cell.  Values below
    [1.0] (including negatives) land in the first bucket.  No-op on other
    kinds. *)

(** {1 Snapshots}

    Snapshots are immutable copies of the registry used for reporting and
    for before/after diffing around a workload (the bench [--trace-out]
    summary and [Covirt_resilience.Soak] consume these). *)

module Hist : sig
  type t = {
    base : float;  (** geometric bucket growth factor *)
    counts : int array;  (** per-bucket sample counts *)
    n : int;  (** total samples *)
    sum : float;  (** sum of samples *)
    max_v : float;  (** exact maximum sample, [0.] when empty *)
  }
  (** Immutable histogram snapshot. *)

  val quantile : t -> p:float -> float
  (** [quantile h ~p] estimates the [p]-th percentile ([0. <= p <= 100.])
      as the geometric midpoint of the bucket holding that rank; the
      relative error is bounded by [base].  [p >= 100.] returns the exact
      maximum.  Returns [0.] on an empty histogram. *)

  val merge : t -> t -> t
  (** Bucket-wise sum of two snapshots (same [base] assumed). *)

  val is_zero : t -> bool
  (** No samples recorded. *)
end

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Hist.t
      (** Snapshot of one series' value, tagged by family kind. *)

type snapshot = (string * (label * value) list) list
(** Family name to labeled series, both in first-interned order. *)

val empty : snapshot
(** The snapshot of a registry that recorded nothing: [[]].  The unit
    of {!merge}. *)

val snapshot : unit -> snapshot
(** Deep copy of every live series in the {e current} domain's registry
    (including overflow series, under a reserved label with
    [dim = "(overflow)"]). *)

val diff : before:snapshot -> after:snapshot -> snapshot
(** Series-wise difference ([after] - [before]) for counters, gauges
    and histograms, so [diff ~before:s ~after:s] {!is_zero} always
    holds.  A diffed histogram's [max_v] is the [after] maximum (the
    window max is not recoverable from two endpoints).  Series absent
    from [before] pass through unchanged; series absent from [after]
    are dropped. *)

val is_zero : snapshot -> bool
(** True when every counter is [0], every histogram empty, and every
    gauge [0.] — e.g. [is_zero (diff ~before:s ~after:s)]. *)

val merge : snapshot -> snapshot -> snapshot
(** Join two snapshots (typically per-shard {!diff} deltas from a
    fleet run): counters sum, histograms merge bucket-wise, gauges are
    last-value-wins (the right operand, i.e. the later shard in a left
    fold).  The result is canonical — all-zero series and empty
    families are pruned, families sorted by name and series by label —
    so a left fold over shard order is a pure function of the shard
    values, independent of how shards were placed on domains.
    [merge empty s] and [merge s empty] both canonicalise [s]. *)

val find : snapshot -> string -> (label * value) list
(** Series of one family, [[]] if the family is absent. *)

val total_counter : snapshot -> string -> int
(** Sum of a counter family across all labels, [0] if absent. *)

val merged_hist : snapshot -> string -> dim:string -> Hist.t option
(** Merge a histogram family's series whose label [dim] matches,
    across all enclaves and CPUs.  [None] if no series matches. *)

val dims : snapshot -> string -> string list
(** Distinct label [dim]s of a family, in first-interned order. *)

val pp : Format.formatter -> snapshot -> unit
(** Debug rendering, one series per line. *)

(** {1 Lifecycle} *)

val reset : unit -> unit
(** Zero every cell of the current domain's registry in place and clear
    its per-family drop counts.  Handles (families and cells) held by
    instrumentation sites stay valid. *)
