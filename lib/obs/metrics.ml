(* Process-global metrics registry.  See metrics.mli for the contract.

   Everything here is deliberately allocation-light on the record path:
   a cell update is a field mutation (plus one array store for
   histograms), and the disabled path is the caller's single [!on]
   branch.  Nothing charges simulated cycles. *)

let on = ref false
let enable () = on := true
let disable () = on := false
let enabled () = !on

(* ------------------------------------------------------------------ *)
(* Labels.                                                             *)

type label = { enclave : int; cpu : int; dim : string }

let no_label = { enclave = -1; cpu = -1; dim = "" }
let overflow_label = { enclave = -1; cpu = -1; dim = "(overflow)" }

let pp_label ppf l =
  let parts =
    (if l.enclave >= 0 then [ Printf.sprintf "enclave=%d" l.enclave ] else [])
    @ (if l.cpu >= 0 then [ Printf.sprintf "cpu=%d" l.cpu ] else [])
    @ if l.dim <> "" then [ Printf.sprintf "dim=%s" l.dim ] else []
  in
  match parts with
  | [] -> Format.pp_print_string ppf "(unlabeled)"
  | ps -> Format.pp_print_string ppf (String.concat " " ps)

(* ------------------------------------------------------------------ *)
(* Histogram snapshots.                                                *)

(* Geometric buckets: bucket 0 covers [0, 1); bucket i >= 1 covers
   [base^(i-1), base^i).  With base = 1.15 and 256 buckets the last
   finite edge is ~3.5e15 — beyond any simulated cycle count — and the
   relative quantile error is bounded by the 15% bucket growth. *)
let hist_base = 1.15
let hist_buckets = 256
let log_base = log hist_base

let bucket_of v =
  if v < 1.0 then 0
  else
    let i = 1 + int_of_float (log v /. log_base) in
    if i >= hist_buckets then hist_buckets - 1 else i

(* Geometric midpoint of a bucket, used as its quantile representative. *)
let bucket_mid i =
  if i = 0 then 0.5 else hist_base ** (float_of_int i -. 0.5)

module Hist = struct
  type t = {
    base : float;
    counts : int array;
    n : int;
    sum : float;
    max_v : float;
  }

  let is_zero h = h.n = 0

  let quantile h ~p =
    if h.n = 0 then 0.
    else if p >= 100. then h.max_v
    else begin
      let rank =
        let r = int_of_float (ceil (p /. 100. *. float_of_int h.n)) in
        if r < 1 then 1 else if r > h.n then h.n else r
      in
      let acc = ref 0 and found = ref (-1) and i = ref 0 in
      while !found < 0 && !i < Array.length h.counts do
        acc := !acc + h.counts.(!i);
        if !acc >= rank then found := !i;
        incr i
      done;
      if !found < 0 then h.max_v else Float.min (bucket_mid !found) h.max_v
    end

  let merge a b =
    let counts = Array.copy a.counts in
    Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) b.counts;
    {
      base = a.base;
      counts;
      n = a.n + b.n;
      sum = a.sum +. b.sum;
      max_v = Float.max a.max_v b.max_v;
    }
end

(* ------------------------------------------------------------------ *)
(* Cells and families.                                                 *)

type cell =
  | C of { mutable c : int }
  | G of { mutable g : float }
  | H of {
      counts : int array;
      mutable n : int;
      mutable sum : float;
      mutable max_v : float;
    }

type kind = Kcounter | Kgauge | Khist

let kind_name = function
  | Kcounter -> "counter"
  | Kgauge -> "gauge"
  | Khist -> "histogram"

type family = {
  name : string;
  kind : kind;
  max_series : int;
  series : (label, cell) Hashtbl.t;
  mutable order : label list;  (* newest first *)
  mutable dropped : int;
  mutable overflow : cell option;
}

let registry : (string, family) Hashtbl.t = Hashtbl.create 32
let reg_order : string list ref = ref []  (* newest first *)

let new_cell = function
  | Kcounter -> C { c = 0 }
  | Kgauge -> G { g = 0. }
  | Khist -> H { counts = Array.make hist_buckets 0; n = 0; sum = 0.; max_v = 0. }

let intern ~kind ~max_series name =
  match Hashtbl.find_opt registry name with
  | Some f ->
      if f.kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %S already registered as a %s" name
             (kind_name f.kind));
      f
  | None ->
      let f =
        {
          name;
          kind;
          max_series;
          series = Hashtbl.create 8;
          order = [];
          dropped = 0;
          overflow = None;
        }
      in
      Hashtbl.replace registry name f;
      reg_order := name :: !reg_order;
      f

let counter ?(max_series = 512) name = intern ~kind:Kcounter ~max_series name
let gauge ?(max_series = 512) name = intern ~kind:Kgauge ~max_series name
let histogram ?(max_series = 512) name = intern ~kind:Khist ~max_series name

let cell f label =
  match Hashtbl.find_opt f.series label with
  | Some c -> c
  | None ->
      if Hashtbl.length f.series >= f.max_series then begin
        f.dropped <- f.dropped + 1;
        match f.overflow with
        | Some c -> c
        | None ->
            let c = new_cell f.kind in
            f.overflow <- Some c;
            c
      end
      else begin
        let c = new_cell f.kind in
        Hashtbl.replace f.series label c;
        f.order <- label :: f.order;
        c
      end

let unlabeled f = cell f no_label
let dropped_series f = f.dropped
let series_count f = Hashtbl.length f.series

let add c n = match c with C r -> r.c <- r.c + n | _ -> ()
let set c v = match c with G r -> r.g <- v | _ -> ()

let observe c v =
  match c with
  | H r ->
      let b = bucket_of v in
      r.counts.(b) <- r.counts.(b) + 1;
      r.n <- r.n + 1;
      r.sum <- r.sum +. v;
      if v > r.max_v then r.max_v <- v
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Snapshots.                                                          *)

type value = Counter of int | Gauge of float | Histogram of Hist.t

type snapshot = (string * (label * value) list) list

let value_of = function
  | C r -> Counter r.c
  | G r -> Gauge r.g
  | H r ->
      Histogram
        {
          Hist.base = hist_base;
          counts = Array.copy r.counts;
          n = r.n;
          sum = r.sum;
          max_v = r.max_v;
        }

let snapshot () =
  List.rev_map
    (fun name ->
      let f = Hashtbl.find registry name in
      let series =
        List.rev_map
          (fun l -> (l, value_of (Hashtbl.find f.series l)))
          f.order
      in
      let series =
        match f.overflow with
        | Some c -> series @ [ (overflow_label, value_of c) ]
        | None -> series
      in
      (name, series))
    !reg_order

let sub_value ~before ~after =
  match (before, after) with
  | Counter b, Counter a -> Counter (a - b)
  | Gauge b, Gauge a -> Gauge (a -. b)
  | Histogram b, Histogram a ->
      let counts = Array.copy a.Hist.counts in
      Array.iteri (fun i c -> counts.(i) <- counts.(i) - c) b.Hist.counts;
      let n = a.Hist.n - b.Hist.n in
      Histogram
        {
          Hist.base = a.Hist.base;
          counts;
          n;
          sum = a.Hist.sum -. b.Hist.sum;
          max_v = (if n > 0 then a.Hist.max_v else 0.);
        }
  | _, after -> after

let diff ~before ~after =
  List.map
    (fun (name, series) ->
      let bseries =
        match List.assoc_opt name before with Some s -> s | None -> []
      in
      ( name,
        List.map
          (fun (label, v) ->
            match List.assoc_opt label bseries with
            | Some bv -> (label, sub_value ~before:bv ~after:v)
            | None -> (label, v))
          series ))
    after

let value_is_zero = function
  | Counter c -> c = 0
  | Gauge g -> g = 0.
  | Histogram h -> Hist.is_zero h

let is_zero snap =
  List.for_all
    (fun (_, series) -> List.for_all (fun (_, v) -> value_is_zero v) series)
    snap

let find snap name =
  match List.assoc_opt name snap with Some s -> s | None -> []

let total_counter snap name =
  List.fold_left
    (fun acc (_, v) -> match v with Counter c -> acc + c | _ -> acc)
    0 (find snap name)

let merged_hist snap name ~dim =
  List.fold_left
    (fun acc (l, v) ->
      match v with
      | Histogram h when l.dim = dim -> (
          match acc with None -> Some h | Some m -> Some (Hist.merge m h))
      | _ -> acc)
    None (find snap name)

let dims snap name =
  List.fold_left
    (fun acc (l, _) -> if List.mem l.dim acc then acc else acc @ [ l.dim ])
    [] (find snap name)

let pp ppf snap =
  List.iter
    (fun (name, series) ->
      List.iter
        (fun (l, v) ->
          let pp_v ppf = function
            | Counter c -> Format.fprintf ppf "%d" c
            | Gauge g -> Format.fprintf ppf "%.3f" g
            | Histogram h ->
                Format.fprintf ppf "n=%d p50=%.1f p99=%.1f max=%.1f" h.Hist.n
                  (Hist.quantile h ~p:50.) (Hist.quantile h ~p:99.)
                  h.Hist.max_v
          in
          Format.fprintf ppf "@[<h>%s{%a} = %a@]@." name pp_label l pp_v v)
        series)
    snap

(* ------------------------------------------------------------------ *)
(* Lifecycle.                                                          *)

let reset_cell = function
  | C r -> r.c <- 0
  | G r -> r.g <- 0.
  | H r ->
      Array.fill r.counts 0 (Array.length r.counts) 0;
      r.n <- 0;
      r.sum <- 0.;
      r.max_v <- 0.

let reset () =
  Hashtbl.iter
    (fun _ f ->
      Hashtbl.iter (fun _ c -> reset_cell c) f.series;
      Option.iter reset_cell f.overflow;
      f.dropped <- 0)
    registry
