(* Metrics registry.  See metrics.mli for the contract.

   Since the fleet runner (lib/fleet) runs harness shards on OCaml 5
   domains, the registry is per-domain: families and cells are pure
   descriptors, and every record resolves its mutable state through
   Domain-local storage, so no instrumentation site ever mutates
   another domain's tables.  The only cross-domain state is the [on]
   switch (written before a fleet spawns, read-only inside shards) and
   the descriptor table that enforces kind consistency (mutex-guarded;
   touched only at family-intern time, never on the record path).

   The record path is a DLS read plus two small hashtable lookups and a
   field mutation; the disabled path is still the caller's single [!on]
   branch.  Nothing charges simulated cycles. *)

let on = ref false
let enable () = on := true
let disable () = on := false
let enabled () = !on

(* ------------------------------------------------------------------ *)
(* Labels.                                                             *)

type label = { enclave : int; cpu : int; dim : string }

let no_label = { enclave = -1; cpu = -1; dim = "" }
let overflow_label = { enclave = -1; cpu = -1; dim = "(overflow)" }

let pp_label ppf l =
  let parts =
    (if l.enclave >= 0 then [ Printf.sprintf "enclave=%d" l.enclave ] else [])
    @ (if l.cpu >= 0 then [ Printf.sprintf "cpu=%d" l.cpu ] else [])
    @ if l.dim <> "" then [ Printf.sprintf "dim=%s" l.dim ] else []
  in
  match parts with
  | [] -> Format.pp_print_string ppf "(unlabeled)"
  | ps -> Format.pp_print_string ppf (String.concat " " ps)

(* ------------------------------------------------------------------ *)
(* Histogram snapshots.                                                *)

(* Geometric buckets: bucket 0 covers [0, 1); bucket i >= 1 covers
   [base^(i-1), base^i).  With base = 1.15 and 256 buckets the last
   finite edge is ~3.5e15 — beyond any simulated cycle count — and the
   relative quantile error is bounded by the 15% bucket growth. *)
let hist_base = 1.15
let hist_buckets = 256
let log_base = log hist_base

let bucket_of v =
  if v < 1.0 then 0
  else
    let i = 1 + int_of_float (log v /. log_base) in
    if i >= hist_buckets then hist_buckets - 1 else i

(* Geometric midpoint of a bucket, used as its quantile representative. *)
let bucket_mid i =
  if i = 0 then 0.5 else hist_base ** (float_of_int i -. 0.5)

module Hist = struct
  type t = {
    base : float;
    counts : int array;
    n : int;
    sum : float;
    max_v : float;
  }

  let is_zero h = h.n = 0

  let quantile h ~p =
    if h.n = 0 then 0.
    else if p >= 100. then h.max_v
    else begin
      let rank =
        let r = int_of_float (ceil (p /. 100. *. float_of_int h.n)) in
        if r < 1 then 1 else if r > h.n then h.n else r
      in
      let acc = ref 0 and found = ref (-1) and i = ref 0 in
      while !found < 0 && !i < Array.length h.counts do
        acc := !acc + h.counts.(!i);
        if !acc >= rank then found := !i;
        incr i
      done;
      if !found < 0 then h.max_v else Float.min (bucket_mid !found) h.max_v
    end

  let merge a b =
    let counts = Array.copy a.counts in
    Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) b.counts;
    {
      base = a.base;
      counts;
      n = a.n + b.n;
      sum = a.sum +. b.sum;
      max_v = Float.max a.max_v b.max_v;
    }
end

(* ------------------------------------------------------------------ *)
(* Families and cells: pure descriptors.                               *)

type kind = Kcounter | Kgauge | Khist

let kind_name = function
  | Kcounter -> "counter"
  | Kgauge -> "gauge"
  | Khist -> "histogram"

type family = { name : string; kind : kind; max_series : int }
type cell = { fam : family; label : label }

(* Per-domain mutable state. *)

type cellstate =
  | C of { mutable c : int }
  | G of { mutable g : float }
  | H of {
      counts : int array;
      mutable n : int;
      mutable sum : float;
      mutable max_v : float;
    }

type fstate = {
  fam : family;
  series : (label, cellstate) Hashtbl.t;
  mutable order : label list;  (* newest first *)
  mutable dropped : int;
  mutable overflow : cellstate option;
}

type registry = {
  families : (string, fstate) Hashtbl.t;
  mutable forder : string list;  (* newest first *)
}

let registry_key =
  Domain.DLS.new_key (fun () -> { families = Hashtbl.create 32; forder = [] })

let registry () = Domain.DLS.get registry_key

(* [fstate] and [intern_series] are the record path — [add]/[set]/
   [observe] resolve through them on every enabled-mode record, so
   both probe with [Hashtbl.find] + the constant [Not_found] rather
   than the option-returning finder (which allocates a [Some] per
   call).  Zero minor allocation on the hit paths is asserted by the
   obs-on allocation tests and the bench allocation gate. *)
(* warm-begin: family resolution on the record path *)
let fstate fam =
  let r = registry () in
  match Hashtbl.find r.families fam.name with
  | fs -> fs
  | exception Not_found ->
      let fs =
        {
          fam;
          series = Hashtbl.create 8;
          order = [];
          dropped = 0;
          overflow = None;
        }
      in
      Hashtbl.replace r.families fam.name fs;
      r.forder <- fam.name :: r.forder;
      fs
(* warm-end *)

(* Kind consistency is a process-wide property: interning "x" as a
   counter on one domain and as a gauge on another must fail just like
   it would on one.  The first intern also pins max_series. *)
let descriptors : (string, kind * int) Hashtbl.t = Hashtbl.create 32
let descriptors_mu = Mutex.create ()

let intern ~kind ~max_series name =
  let fam =
    Mutex.protect descriptors_mu (fun () ->
        match Hashtbl.find_opt descriptors name with
        | Some (k, ms) ->
            if k <> kind then
              invalid_arg
                (Printf.sprintf "Metrics: %S already registered as a %s" name
                   (kind_name k));
            { name; kind; max_series = ms }
        | None ->
            Hashtbl.replace descriptors name (kind, max_series);
            { name; kind; max_series })
  in
  (* Materialise in this domain so empty families still snapshot. *)
  ignore (fstate fam : fstate);
  fam

let counter ?(max_series = 512) name = intern ~kind:Kcounter ~max_series name
let gauge ?(max_series = 512) name = intern ~kind:Kgauge ~max_series name
let histogram ?(max_series = 512) name = intern ~kind:Khist ~max_series name

let new_cellstate = function
  | Kcounter -> C { c = 0 }
  | Kgauge -> G { g = 0. }
  | Khist ->
      H { counts = Array.make hist_buckets 0; n = 0; sum = 0.; max_v = 0. }

(* [count_drop] distinguishes the explicit [cell] call (which accounts
   every routed-to-overflow call, as the cardinality contract
   specifies) from the record path's resolution (which must not
   double-count a label [cell] just accounted). *)
(* warm-begin: series resolution and the record mutators *)
let intern_series ~count_drop fs label =
  match Hashtbl.find fs.series label with
  | cs -> cs
  | exception Not_found ->
      if Hashtbl.length fs.series >= fs.fam.max_series then begin
        if count_drop then fs.dropped <- fs.dropped + 1;
        match fs.overflow with
        | Some cs -> cs
        | None ->
            let cs = new_cellstate fs.fam.kind in
            fs.overflow <- Some cs;
            cs
      end
      else begin
        let cs = new_cellstate fs.fam.kind in
        Hashtbl.replace fs.series label cs;
        fs.order <- label :: fs.order;
        cs
      end

(* warm-end *)

(* [cell] and the inspection helpers below are cold interning — the
   returned handle is what callers hold statically; only [resolve] and
   the record mutators run per record. *)
let cell f label =
  ignore (intern_series ~count_drop:true (fstate f) label : cellstate);
  { fam = f; label }

let unlabeled f = cell f no_label
let dropped_series f = (fstate f).dropped
let series_count f = Hashtbl.length (fstate f).series

(* Resolve a cell in the *current* domain: a statically-interned cell
   handle recorded into from a fleet shard lands in that domain's
   registry, not the interning domain's. *)
(* warm-begin: per-record cell resolution and the record mutators *)
let resolve (c : cell) = intern_series ~count_drop:false (fstate c.fam) c.label

let add c n = match resolve c with C r -> r.c <- r.c + n | _ -> ()
let set c v = match resolve c with G r -> r.g <- v | _ -> ()

let observe c v =
  match resolve c with
  | H r ->
      let b = bucket_of v in
      r.counts.(b) <- r.counts.(b) + 1;
      r.n <- r.n + 1;
      r.sum <- r.sum +. v;
      if v > r.max_v then r.max_v <- v
  | _ -> ()
(* warm-end *)

(* ------------------------------------------------------------------ *)
(* Snapshots.                                                          *)

type value = Counter of int | Gauge of float | Histogram of Hist.t

type snapshot = (string * (label * value) list) list

let empty : snapshot = []

let value_of = function
  | C r -> Counter r.c
  | G r -> Gauge r.g
  | H r ->
      Histogram
        {
          Hist.base = hist_base;
          counts = Array.copy r.counts;
          n = r.n;
          sum = r.sum;
          max_v = r.max_v;
        }

let snapshot () =
  let r = registry () in
  List.rev_map
    (fun name ->
      let fs = Hashtbl.find r.families name in
      let series =
        List.rev_map
          (fun l -> (l, value_of (Hashtbl.find fs.series l)))
          fs.order
      in
      let series =
        match fs.overflow with
        | Some c -> series @ [ (overflow_label, value_of c) ]
        | None -> series
      in
      (name, series))
    r.forder

let sub_value ~before ~after =
  match (before, after) with
  | Counter b, Counter a -> Counter (a - b)
  | Gauge b, Gauge a -> Gauge (a -. b)
  | Histogram b, Histogram a ->
      let counts = Array.copy a.Hist.counts in
      Array.iteri (fun i c -> counts.(i) <- counts.(i) - c) b.Hist.counts;
      let n = a.Hist.n - b.Hist.n in
      Histogram
        {
          Hist.base = a.Hist.base;
          counts;
          n;
          sum = a.Hist.sum -. b.Hist.sum;
          max_v = (if n > 0 then a.Hist.max_v else 0.);
        }
  | _, after -> after

let diff ~before ~after =
  List.map
    (fun (name, series) ->
      let bseries =
        match List.assoc_opt name before with Some s -> s | None -> []
      in
      ( name,
        List.map
          (fun (label, v) ->
            match List.assoc_opt label bseries with
            | Some bv -> (label, sub_value ~before:bv ~after:v)
            | None -> (label, v))
          series ))
    after

let value_is_zero = function
  | Counter c -> c = 0
  | Gauge g -> g = 0.
  | Histogram h -> Hist.is_zero h

let is_zero snap =
  List.for_all
    (fun (_, series) -> List.for_all (fun (_, v) -> value_is_zero v) series)
    snap

(* ------------------------------------------------------------------ *)
(* Merge: join per-shard deltas into one placement-independent
   snapshot.  Two canonicalisations make the result a pure function of
   the shard values, independent of which domain ran which shard:
   series that recorded nothing are dropped (a shard's diff mentions
   every family its domain ever interned — an accident of placement),
   and the survivors are sorted by (family, label) rather than kept in
   interning order (also an accident of placement). *)

let compare_label a b =
  match compare a.enclave b.enclave with
  | 0 -> ( match compare a.cpu b.cpu with 0 -> compare a.dim b.dim | c -> c)
  | c -> c

let canonical snap =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (List.filter_map
       (fun (name, series) ->
         match
           List.sort
             (fun (a, _) (b, _) -> compare_label a b)
             (List.filter (fun (_, v) -> not (value_is_zero v)) series)
         with
         | [] -> None
         | series -> Some (name, series))
       snap)

let merge_value a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Histogram x, Histogram y -> Histogram (Hist.merge x y)
  (* Gauges are last-value-wins; in a left fold over shard order the
     right operand is the later shard. *)
  | Gauge _, Gauge y -> Gauge y
  | _, b -> b

let merge a b =
  let a = canonical a and b = canonical b in
  let joined =
    List.map
      (fun (name, aseries) ->
        match List.assoc_opt name b with
        | None -> (name, aseries)
        | Some bseries ->
            let shared =
              List.map
                (fun (l, av) ->
                  match List.assoc_opt l bseries with
                  | Some bv -> (l, merge_value av bv)
                  | None -> (l, av))
                aseries
            in
            let extra =
              List.filter
                (fun (l, _) -> not (List.mem_assoc l aseries))
                bseries
            in
            ( name,
              List.sort
                (fun (x, _) (y, _) -> compare_label x y)
                (shared @ extra) ))
      a
  in
  canonical
    (joined @ List.filter (fun (name, _) -> not (List.mem_assoc name a)) b)

(* ------------------------------------------------------------------ *)
(* Queries.                                                            *)

let find snap name =
  match List.assoc_opt name snap with Some s -> s | None -> []

let total_counter snap name =
  List.fold_left
    (fun acc (_, v) -> match v with Counter c -> acc + c | _ -> acc)
    0 (find snap name)

let merged_hist snap name ~dim =
  List.fold_left
    (fun acc (l, v) ->
      match v with
      | Histogram h when l.dim = dim -> (
          match acc with None -> Some h | Some m -> Some (Hist.merge m h))
      | _ -> acc)
    None (find snap name)

let dims snap name =
  List.fold_left
    (fun acc (l, _) -> if List.mem l.dim acc then acc else acc @ [ l.dim ])
    [] (find snap name)

let pp ppf snap =
  List.iter
    (fun (name, series) ->
      List.iter
        (fun (l, v) ->
          let pp_v ppf = function
            | Counter c -> Format.fprintf ppf "%d" c
            | Gauge g -> Format.fprintf ppf "%.3f" g
            | Histogram h ->
                Format.fprintf ppf "n=%d p50=%.1f p99=%.1f max=%.1f" h.Hist.n
                  (Hist.quantile h ~p:50.) (Hist.quantile h ~p:99.)
                  h.Hist.max_v
          in
          Format.fprintf ppf "@[<h>%s{%a} = %a@]@." name pp_label l pp_v v)
        series)
    snap

(* ------------------------------------------------------------------ *)
(* Lifecycle.                                                          *)

let reset_cell = function
  | C r -> r.c <- 0
  | G r -> r.g <- 0.
  | H r ->
      Array.fill r.counts 0 (Array.length r.counts) 0;
      r.n <- 0;
      r.sum <- 0.;
      r.max_v <- 0.

let reset () =
  Hashtbl.iter
    (fun _ fs ->
      Hashtbl.iter (fun _ c -> reset_cell c) fs.series;
      Option.iter reset_cell fs.overflow;
      fs.dropped <- 0)
    (registry ()).families
