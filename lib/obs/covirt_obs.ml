module Metrics = Metrics
module Profiler = Profiler
module Span = Span
module Exporter = Exporter

let enable () = Metrics.enable ()

let disable () =
  Metrics.disable ();
  Exporter.disable ()

let enabled () = Metrics.enabled ()

let reset () =
  Metrics.reset ();
  Profiler.reset ();
  Exporter.clear ()

let configure ?cycles_per_us ~observe ~trace_spans () =
  Option.iter Exporter.set_cycles_per_us cycles_per_us;
  if observe then Metrics.enable ();
  if trace_spans then Exporter.enable ()

module Vmexit = struct
  let count = Metrics.counter "vmexit.count"
  let cycles = Metrics.histogram "vmexit.cycles"

  let record ~enclave ~cpu ~reason ~t0 ~t1 =
    let dur = t1 - t0 in
    if !Metrics.on then begin
      let label = { Metrics.enclave; cpu; dim = reason } in
      Metrics.add (Metrics.cell count label) 1;
      Metrics.observe (Metrics.cell cycles label) (float_of_int dur);
      Profiler.record ~reason ~cycles:dur
    end;
    if !Exporter.on then
      Span.complete ~name:reason ~cat:"vmexit" ~pid:enclave ~tid:cpu ~ts:t0
        ~dur ()
end
