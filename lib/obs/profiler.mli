(** Simulated-cycle attribution: where did the guest's time go?

    The profiler answers the question behind the paper's figures — which
    VM-exit reasons eat how many cycles, and during which phase of the
    guest's life (boot, measurement loop, teardown, one bench experiment
    per phase, ...).  It accumulates the per-exit cycle deltas recorded
    by the exit-dispatch instrumentation (see {!Covirt_obs.Vmexit}) into
    two attribution axes:

    - per exit reason: exits and cycles for ["hlt"], ["icr-write"], ...
    - per phase: exits and cycles attributed to the current {!set_phase}
      label at the time each exit retired.

    Like {!Metrics}, the profiler is ambient but per-domain (each fleet
    shard attributes into its own domain's tables), gated by the same
    single-branch discipline, and never charges simulated cycles. *)

val set_phase : string -> unit
(** [set_phase name] labels all subsequent exits with [name] until the
    next call.  Cheap (one ref write); safe to call when disabled. *)

val current_phase : unit -> string
(** The active phase label; [""] initially. *)

val record : reason:string -> cycles:int -> unit
(** [record ~reason ~cycles] attributes one exit.  Called by the exit
    dispatch hook; callers must guard on {!Metrics.on}. *)

type row = { key : string; exits : int; cycles : int }
(** One attribution line: [key] is an exit-reason name or a phase
    label. *)

val by_reason : unit -> row list
(** Per-exit-reason attribution, sorted by descending cycles. *)

val by_phase : unit -> row list
(** Per-phase attribution, in first-seen phase order. *)

val attribution_table : unit -> string
(** Rendered per-reason table: exits, total cycles, mean cycles/exit,
    and the share of all attributed cycles. *)

val phase_table : unit -> string
(** Rendered per-phase table with the same columns. *)

val reset : unit -> unit
(** Drop all attribution (the current phase label is kept). *)
