(* Cycle attribution per exit reason and per guest phase.  Process
   global; the record path is two hashtable upserts on pre-allocated
   mutable rows. *)

type acc = { mutable a_exits : int; mutable a_cycles : int }

let reasons : (string, acc) Hashtbl.t = Hashtbl.create 16
let reason_order : string list ref = ref []  (* newest first *)
let phases : (string, acc) Hashtbl.t = Hashtbl.create 16
let phase_order : string list ref = ref []  (* newest first *)
let phase = ref ""

let set_phase name = phase := name
let current_phase () = !phase

let bump table order key ~cycles =
  let a =
    match Hashtbl.find_opt table key with
    | Some a -> a
    | None ->
        let a = { a_exits = 0; a_cycles = 0 } in
        Hashtbl.replace table key a;
        order := key :: !order;
        a
  in
  a.a_exits <- a.a_exits + 1;
  a.a_cycles <- a.a_cycles + cycles

let record ~reason ~cycles =
  bump reasons reason_order reason ~cycles;
  bump phases phase_order !phase ~cycles

type row = { key : string; exits : int; cycles : int }

let rows table order =
  List.rev_map
    (fun key ->
      let a = Hashtbl.find table key in
      { key; exits = a.a_exits; cycles = a.a_cycles })
    !order

let by_reason () =
  List.sort (fun a b -> compare b.cycles a.cycles) (rows reasons reason_order)

let by_phase () = rows phases phase_order

let render ~title ~key_col rws =
  let total = List.fold_left (fun acc r -> acc + r.cycles) 0 rws in
  let t =
    Covirt_sim.Table.create
      ~columns:[ key_col; "exits"; "cycles"; "cyc/exit"; "share" ]
  in
  List.iter
    (fun r ->
      let mean =
        if r.exits = 0 then 0. else float_of_int r.cycles /. float_of_int r.exits
      in
      let share =
        if total = 0 then 0. else float_of_int r.cycles /. float_of_int total
      in
      Covirt_sim.Table.add_row t
        [
          r.key;
          string_of_int r.exits;
          string_of_int r.cycles;
          Covirt_sim.Table.cell_f mean;
          Covirt_sim.Table.cell_pct share;
        ])
    rws;
  Printf.sprintf "%s\n%s" title (Covirt_sim.Table.render t)

let attribution_table () =
  render ~title:"cycle attribution by exit reason" ~key_col:"exit reason"
    (by_reason ())

let phase_table () =
  render ~title:"cycle attribution by phase" ~key_col:"phase" (by_phase ())

let reset () =
  Hashtbl.reset reasons;
  reason_order := [];
  Hashtbl.reset phases;
  phase_order := []
