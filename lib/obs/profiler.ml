(* Cycle attribution per exit reason and per guest phase.  Ambient but
   per-domain (Domain-local storage) so fleet shards attribute into
   their own tables; the record path is one DLS read plus two
   hashtable upserts on pre-allocated mutable rows. *)

type acc = { mutable a_exits : int; mutable a_cycles : int }

type state = {
  reasons : (string, acc) Hashtbl.t;
  mutable reason_order : string list; (* newest first *)
  phases : (string, acc) Hashtbl.t;
  mutable phase_order : string list; (* newest first *)
  mutable phase : string;
}

let key =
  Domain.DLS.new_key (fun () ->
      {
        reasons = Hashtbl.create 16;
        reason_order = [];
        phases = Hashtbl.create 16;
        phase_order = [];
        phase = "";
      })

let state () = Domain.DLS.get key

let set_phase name = (state ()).phase <- name
let current_phase () = (state ()).phase

let bump table set_order order key ~cycles =
  let a =
    match Hashtbl.find_opt table key with
    | Some a -> a
    | None ->
        let a = { a_exits = 0; a_cycles = 0 } in
        Hashtbl.replace table key a;
        set_order (key :: order);
        a
  in
  a.a_exits <- a.a_exits + 1;
  a.a_cycles <- a.a_cycles + cycles

let record ~reason ~cycles =
  let s = state () in
  bump s.reasons (fun o -> s.reason_order <- o) s.reason_order reason ~cycles;
  bump s.phases (fun o -> s.phase_order <- o) s.phase_order s.phase ~cycles

type row = { key : string; exits : int; cycles : int }

let rows table order =
  List.rev_map
    (fun key ->
      let a = Hashtbl.find table key in
      { key; exits = a.a_exits; cycles = a.a_cycles })
    order

let by_reason () =
  let s = state () in
  List.sort (fun a b -> compare b.cycles a.cycles) (rows s.reasons s.reason_order)

let by_phase () =
  let s = state () in
  rows s.phases s.phase_order

let render ~title ~key_col rws =
  let total = List.fold_left (fun acc r -> acc + r.cycles) 0 rws in
  let t =
    Covirt_sim.Table.create
      ~columns:[ key_col; "exits"; "cycles"; "cyc/exit"; "share" ]
  in
  List.iter
    (fun r ->
      let mean =
        if r.exits = 0 then 0. else float_of_int r.cycles /. float_of_int r.exits
      in
      let share =
        if total = 0 then 0. else float_of_int r.cycles /. float_of_int total
      in
      Covirt_sim.Table.add_row t
        [
          r.key;
          string_of_int r.exits;
          string_of_int r.cycles;
          Covirt_sim.Table.cell_f mean;
          Covirt_sim.Table.cell_pct share;
        ])
    rws;
  Printf.sprintf "%s\n%s" title (Covirt_sim.Table.render t)

let attribution_table () =
  render ~title:"cycle attribution by exit reason" ~key_col:"exit reason"
    (by_reason ())

let phase_table () =
  render ~title:"cycle attribution by phase" ~key_col:"phase" (by_phase ())

let reset () =
  let s = state () in
  Hashtbl.reset s.reasons;
  s.reason_order <- [];
  Hashtbl.reset s.phases;
  s.phase_order <- []
