type t = { name : string; cat : string; pid : int; tid : int; ts : int }

let begin_ ~name ~cat ~pid ~tid ~ts = { name; cat; pid; tid; ts }

let complete ?(args = []) ~name ~cat ~pid ~tid ~ts ~dur () =
  if !Exporter.on then
    Exporter.emit
      { Exporter.name; cat; ph = "X"; ts; dur; pid; tid; args }

let finish ?(args = []) t ~ts =
  complete ~args ~name:t.name ~cat:t.cat ~pid:t.pid ~tid:t.tid ~ts:t.ts
    ~dur:(ts - t.ts) ()

let instant ?(args = []) ~name ~cat ~pid ~tid ~ts () =
  if !Exporter.on then
    Exporter.emit
      { Exporter.name; cat; ph = "i"; ts; dur = 0; pid; tid; args }
