(** Observability for the Covirt stack: metrics, cycle attribution, and
    Chrome-trace export.

    This is the library's public surface.  The three subsystems share a
    design contract:

    - {b zero-cost when disabled}: every instrumentation site in the hot
      path guards on one [bool ref] ({!Metrics.on} or {!Exporter.on}),
      so a build with observability off pays a single predictable branch
      per site (enforced by the quick-bench 25% gate);
    - {b measurement, not model}: recording never charges simulated
      cycles, so enabling observability leaves simulation results — and
      the golden transcript — bit-identical;
    - {b process-global}: instrumentation sites anywhere in the layer
      stack reach the registry without threading handles.

    Wiring: [Config.observe] / [Config.trace_spans] feed
    {!configure} when a controller attaches, and [covirt-ctl stats] /
    [--trace-out] expose the results on the CLI. *)

module Metrics = Metrics
module Profiler = Profiler
module Span = Span
module Exporter = Exporter

val enable : unit -> unit
(** Turn on metrics + profiler recording (not span export). *)

val disable : unit -> unit
(** Turn off both metrics and span export.  Recorded data is kept. *)

val enabled : unit -> bool
(** True when metrics recording is on. *)

val reset : unit -> unit
(** Zero metrics, drop profiler attribution, clear the span buffer. *)

val configure :
  ?cycles_per_us:float -> observe:bool -> trace_spans:bool -> unit -> unit
(** Apply config knobs.  Enable-only: [observe:true] turns metrics on,
    [trace_spans:true] turns span export on, [false] leaves the current
    state alone — so one instrumented controller among many is enough to
    switch recording on, and a later plain attach cannot silence it.
    [cycles_per_us] forwards to {!Exporter.set_cycles_per_us}. *)

(** VM-exit recording hook, shared by every exit-delivery site. *)
module Vmexit : sig
  val record :
    enclave:int -> cpu:int -> reason:string -> t0:int -> t1:int -> unit
  (** [record ~enclave ~cpu ~reason ~t0 ~t1] attributes one delivered
      exit whose handling spanned simulated cycles [t0..t1]: bumps the
      per-label ["vmexit.count"] counter and ["vmexit.cycles"]
      histogram, feeds the {!Profiler}, and (when export is on) emits a
      complete span on the (enclave, cpu) track.  Safe to call
      unconditionally — it carries its own enabled checks — but the
      dispatch site guards anyway to keep the disabled path to one
      branch. *)
end
