(** Trace-event buffer and Chrome [trace_event] / JSONL export.

    The exporter collects the spans and instants emitted by {!Span} into
    a bounded in-memory buffer and serialises them in the Chrome
    [trace_event] format — the [{"traceEvents": [...]}] JSON that
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto} load
    directly — or as one-event-per-line JSONL for streaming pipelines.

    Timestamps arrive as simulated TSC cycles and are converted to
    microseconds at serialisation time using {!set_cycles_per_us} (the
    machine's cost model sets this from its clock when observability is
    wired up; the default corresponds to the stock 1.7 GHz model).
    Enclave ids map to Chrome [pid]s and CPU ids to [tid]s, so Perfetto
    renders one track group per enclave with one track per core.

    Like {!Metrics}, recording is gated by a single [!on] branch at each
    emission site, and a full buffer drops new events (counting them in
    {!dropped}) rather than growing without bound.  The buffer is
    per-domain (Domain-local storage): a fleet shard traces into its
    own ring, and {!events}/{!to_chrome_json} read the calling domain's
    ring only.  The [on]/{!set_capacity}/{!set_cycles_per_us}
    configuration is shared — set it before spawning a fleet. *)

val on : bool ref
(** Master switch for span emission; {!Span} checks it so instrumented
    code can emit unconditionally.  Prefer {!enable}/{!disable}. *)

val enable : unit -> unit
(** Turn span collection on. *)

val disable : unit -> unit
(** Turn span collection off.  Buffered events are kept. *)

val enabled : unit -> bool
(** [enabled ()] is [!on]. *)

val set_capacity : int -> unit
(** Resize the event buffer (default [65536] events) and clear it. *)

val set_cycles_per_us : float -> unit
(** Cycles-per-microsecond used to convert TSC timestamps at export
    time (default [1700.], i.e. a 1.7 GHz clock). *)

type event = {
  name : string;  (** event label, e.g. the exit-reason name *)
  cat : string;  (** category, e.g. ["vmexit"], ["fault"] *)
  ph : string;  (** Chrome phase: ["X"] complete, ["i"] instant *)
  ts : int;  (** start, in simulated TSC cycles *)
  dur : int;  (** duration in cycles; [0] for instants *)
  pid : int;  (** enclave id ([0] = host) *)
  tid : int;  (** CPU / core id *)
  args : (string * string) list;  (** extra key/value payload *)
}
(** One buffered trace event, timestamps still in cycles. *)

val emit : event -> unit
(** Append an event; drops (and counts) when the buffer is full.  Does
    not check {!on} — {!Span} carries the guard. *)

val events : unit -> event list
(** Buffered events, oldest first. *)

val length : unit -> int
(** Number of buffered events. *)

val dropped : unit -> int
(** Events discarded because the buffer was full. *)

val clear : unit -> unit
(** Empty the buffer and zero {!dropped}. *)

val to_chrome_json : unit -> string
(** The buffer as a Chrome [trace_event] JSON document. *)

val write_chrome_json : path:string -> unit
(** Write {!to_chrome_json} to [path] (truncating). *)

val write_jsonl : path:string -> unit
(** Write one JSON event object per line to [path] (truncating). *)
