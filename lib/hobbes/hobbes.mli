(** The Hobbes OS/R runtime (master control process).

    Ties the substrates together the way the Hobbes stack does on real
    systems: Pisces partitions and boots, Kitten runs in the enclaves,
    XEMEM carries shared memory, and this runtime owns the global
    resource coordination — enclave registry, the application-IPI
    vector space, system-call forwarding, and composite-application
    launch.  Covirt's controller module integrates with the master
    control process; it attaches to the {!Covirt_pisces.Hooks.t}
    reachable through [Pisces.hooks (pisces t)]. *)

open Covirt_hw
open Covirt_pisces
open Covirt_kitten

type t

val create : Machine.t -> host_core:int -> t
val pisces : t -> Pisces.t
val xemem : t -> Covirt_xemem.Xemem.t
val machine : t -> Machine.t

val launch_enclave :
  t ->
  name:string ->
  cores:int list ->
  mem:(Numa.zone * int) list ->
  ?timer_hz:float ->
  unit ->
  (Enclave.t * Kitten.t, string) result
(** Create a Pisces enclave, boot Kitten into it, wire the host-side
    channel servicing and the default syscall handler. *)

val kernel_of : t -> Enclave.t -> Kitten.t option

val alloc_ipi_vector : t -> (int, string) result
(** Carve a vector out of the globally allocatable application-IPI
    space ("per-core IPI vectors are a globally allocatable
    application resource"). *)

val free_ipi_vector : t -> int -> unit

val grant_vector_pair :
  t -> Enclave.t -> Enclave.t -> (int * int, string) result
(** Allocate and grant a doorbell vector in each direction between two
    enclaves; returns [(vector_a_to_b, vector_b_to_a)]. *)

val syscalls_serviced : t -> int
val pp_status : Format.formatter -> t -> unit
