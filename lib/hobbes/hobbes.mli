(** The Hobbes OS/R runtime (master control process).

    Ties the substrates together the way the Hobbes stack does on real
    systems: Pisces partitions and boots, Kitten runs in the enclaves,
    XEMEM carries shared memory, and this runtime owns the global
    resource coordination — enclave registry, the application-IPI
    vector space, system-call forwarding, and composite-application
    launch.  Covirt's controller module integrates with the master
    control process; it attaches to the {!Covirt_pisces.Hooks.t}
    reachable through [Pisces.hooks (pisces t)]. *)

open Covirt_hw
open Covirt_pisces
open Covirt_kitten

type t

val create : Machine.t -> host_core:int -> t
(** Also registers the runtime's destroy-time scrub on the framework's
    [on_enclave_destroyed] hook: kernel-registry entry, allocated
    application-IPI vectors and name-service records of a destroyed
    (or crash-reclaimed) enclave are retired automatically, so dense
    create/destroy churn leaves no monotonic state behind.  Segments
    the dead enclave exported are reclaimed through the proper XEMEM
    path — surviving attachers are notified and unmapped — and
    surviving enclaves' IPI grants whose destination core belonged
    to the dead enclave are revoked (stale per-core whitelist state
    the verifier would otherwise flag as [Stale_grant]). *)

val create_node :
  ?seed:int ->
  ?zones:int ->
  ?host_reserved_mib:int ->
  cores_per_zone:int ->
  mem_mib_per_zone:int ->
  unit ->
  t
(** Build a fresh machine (host core 0) and a runtime on it — the
    whole-node constructor layers above the hardware boundary (e.g.
    the load generator, which may not touch [lib/hw]) use.  Memory
    arguments are in MiB; [host_reserved_mib] defaults to 128. *)

val pisces : t -> Pisces.t
val xemem : t -> Covirt_xemem.Xemem.t
val machine : t -> Machine.t

val launch_enclave :
  t ->
  name:string ->
  cores:int list ->
  mem:(Numa.zone * int) list ->
  ?timer_hz:float ->
  unit ->
  (Enclave.t * Kitten.t, string) result
(** Create a Pisces enclave, boot Kitten into it, wire the host-side
    channel servicing and the default syscall handler. *)

val kernel_of : t -> Enclave.t -> Kitten.t option

val kernel_count : t -> int
(** Live kernel-registry entries — equals the live enclave count when
    nothing leaks (churn observability). *)

val export_window :
  t ->
  Enclave.t ->
  name:string ->
  offset:int ->
  len:int ->
  (int, string) result
(** Export a [len]-byte window at [offset] into the enclave's first
    owned region as a named XEMEM segment; returns the segid.  Offset
    and length must be page-multiples and lie inside the region. *)

val alloc_ipi_vector : t -> (int, string) result
(** Carve a vector out of the globally allocatable application-IPI
    space ("per-core IPI vectors are a globally allocatable
    application resource"). *)

val free_ipi_vector : t -> int -> unit

val free_vector_count : t -> int
(** Vectors currently in the allocatable pool. *)

val allocated_vector_count : t -> int
(** Vectors handed out by {!alloc_ipi_vector} and not yet freed.
    [free_vector_count + allocated_vector_count] is conserved at the
    vector-space size when nothing leaks. *)

val grant_vector_pair :
  t -> Enclave.t -> Enclave.t -> (int * int, string) result
(** Allocate and grant a doorbell vector in each direction between two
    enclaves; returns [(vector_a_to_b, vector_b_to_a)]. *)

val syscalls_serviced : t -> int
val pp_status : Format.formatter -> t -> unit
