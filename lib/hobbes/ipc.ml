open Covirt_hw
open Covirt_pisces
open Covirt_kitten

type channel = {
  name : string;
  producer : Enclave.t;
  consumer : Enclave.t;
  ring : Region.t;
  doorbell : int;
  mutable sends : int;
  mutable receipts : int;
}

let connect hobbes ~producer:(prod_enclave, prod_kernel)
    ~consumer:(cons_enclave, cons_kernel) ~name ~ring_bytes =
  if ring_bytes <= 0 then invalid_arg "Ipc.connect: ring_bytes";
  match Kitten.kalloc prod_kernel ~bytes:ring_bytes with
  | Error e -> Error e
  | Ok base -> (
      let ring = Region.make ~base ~len:(Addr.page_up ring_bytes ~size:Addr.page_size_4k) in
      let xemem = Hobbes.xemem hobbes in
      match
        Covirt_xemem.Xemem.export xemem
          ~exporter:(Covirt_xemem.Name_service.Enclave_export prod_enclave.Enclave.id)
          ~name ~pages:[ ring ]
      with
      | Error e -> Error e
      | Ok _segid -> (
          match Covirt_xemem.Xemem.attach xemem cons_enclave ~name with
          | Error e -> Error e
          | Ok (_addr, _len) -> (
              match Hobbes.alloc_ipi_vector hobbes with
              | Error e -> Error e
              | Ok doorbell -> (
                  match
                    Pisces.grant_ipi_vector (Hobbes.pisces hobbes) prod_enclave
                      ~vector:doorbell
                      ~peer_core:(Enclave.bsp cons_enclave)
                  with
                  | Error e -> Error e
                  | Ok () ->
                      let channel =
                        {
                          name;
                          producer = prod_enclave;
                          consumer = cons_enclave;
                          ring;
                          doorbell;
                          sends = 0;
                          receipts = 0;
                        }
                      in
                      Kitten.register_irq cons_kernel ~vector:doorbell
                        (fun _ctx _vector ->
                          channel.receipts <- channel.receipts + 1);
                      Ok channel))))

let send channel (ctx : Kitten.context) ~words =
  if words <= 0 then invalid_arg "Ipc.send: words";
  let slots = channel.ring.Region.len / 8 in
  for i = 0 to min words slots - 1 do
    Kitten.store_addr ctx (channel.ring.Region.base + (8 * i))
  done;
  channel.sends <- channel.sends + 1;
  Kitten.send_ipi ctx
    ~dest:(Enclave.bsp channel.consumer)
    ~vector:channel.doorbell

let receipts channel = channel.receipts

let pp ppf c =
  Format.fprintf ppf "channel %S: enclave %d -> %d, ring %a, doorbell 0x%x, %d/%d"
    c.name c.producer.Enclave.id c.consumer.Enclave.id Region.pp c.ring
    c.doorbell c.sends c.receipts
