(** Cross-enclave IPC channels.

    The Hobbes composition primitive: a shared-memory ring exported
    over XEMEM plus a doorbell IPI vector in each direction.  This is
    the "zero overhead IPC" property Covirt preserves: data moves
    through the shared mapping with no hypervisor involvement, and
    only the doorbell transmission crosses the (whitelisted) ICR trap. *)

open Covirt_hw
open Covirt_pisces
open Covirt_kitten

type channel = {
  name : string;
  producer : Enclave.t;
  consumer : Enclave.t;
  ring : Region.t;  (** the shared buffer (owned by the producer) *)
  doorbell : int;  (** vector the producer rings on the consumer's core *)
  mutable sends : int;
  mutable receipts : int;
}

val connect :
  Hobbes.t ->
  producer:Enclave.t * Kitten.t ->
  consumer:Enclave.t * Kitten.t ->
  name:string ->
  ring_bytes:int ->
  (channel, string) result
(** Allocate the ring from the producer's heap, export/attach it via
    XEMEM, grant the doorbell vector, and register the consumer's IRQ
    handler. *)

val send : channel -> Kitten.context -> words:int -> unit
(** Producer side: write [words] 8-byte slots into the ring (granular
    stores through the full translation path) and ring the doorbell. *)

val receipts : channel -> int
(** Messages observed by the consumer's interrupt handler. *)

val pp : Format.formatter -> channel -> unit
