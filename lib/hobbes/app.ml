open Covirt_pisces
open Covirt_kitten

type component = {
  component_name : string;
  enclave : Enclave.t;
  run : Kitten.context -> Ipc.channel list -> unit;
}

type wire = { from_component : string; to_component : string; ring_bytes : int }

type t = { app_name : string; components : component list; wires : wire list }

let component ~name enclave run = { component_name = name; enclave; run }

let find_component t name =
  List.find_opt (fun c -> c.component_name = name) t.components

let launch hobbes t =
  let kernel_of enclave =
    match Hobbes.kernel_of hobbes enclave with
    | Some k -> Ok k
    | None ->
        Error
          (Printf.sprintf "enclave %d has no kitten instance"
             enclave.Enclave.id)
  in
  let build_wire w =
    match (find_component t w.from_component, find_component t w.to_component) with
    | None, _ -> Error (Printf.sprintf "unknown component %S" w.from_component)
    | _, None -> Error (Printf.sprintf "unknown component %S" w.to_component)
    | Some producer, Some consumer -> (
        match (kernel_of producer.enclave, kernel_of consumer.enclave) with
        | Ok pk, Ok ck ->
            Ipc.connect hobbes
              ~producer:(producer.enclave, pk)
              ~consumer:(consumer.enclave, ck)
              ~name:
                (Printf.sprintf "%s/%s->%s" t.app_name w.from_component
                   w.to_component)
              ~ring_bytes:w.ring_bytes
            |> Result.map (fun ch -> (w.from_component, ch))
        | Error e, _ | _, Error e -> Error e)
  in
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | w :: rest -> (
        match build_wire w with
        | Ok ch -> build (ch :: acc) rest
        | Error _ as e -> e)
  in
  match build [] t.wires with
  | Error e -> Error e
  | Ok channels ->
      let rec run_all = function
        | [] -> Ok ()
        | c :: rest -> (
            match kernel_of c.enclave with
            | Error e -> Error e
            | Ok kernel ->
                let ctx = Kitten.context kernel ~core:(Enclave.bsp c.enclave) in
                let outgoing =
                  List.filter_map
                    (fun (from, ch) ->
                      if from = c.component_name then Some ch else None)
                    channels
                in
                c.run ctx outgoing;
                run_all rest)
      in
      run_all t.components
