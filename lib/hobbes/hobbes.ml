open Covirt_hw
open Covirt_pisces
open Covirt_kitten

type t = {
  pisces : Pisces.t;
  xemem : Covirt_xemem.Xemem.t;
  kernels : (int, Kitten.t) Hashtbl.t;
  mutable free_vectors : int list;
  allocated_vectors : (int, unit) Hashtbl.t;
      (* vectors handed out by [alloc_ipi_vector] and not yet freed —
         the set the destroy-time scrub may legitimately return to the
         pool (a vector granted by hand in a test was never ours to
         reclaim) *)
  mutable syscalls : int;
}

(* Application IPI vectors live between the syscall/exception space and
   the system vectors (timer at 0xef, XEMEM doorbells etc. above). *)
let app_vector_lo = 0x40
let app_vector_hi = 0xdf
let vector_space = app_vector_hi - app_vector_lo + 1

let free_ipi_vector t v =
  if v < app_vector_lo || v > app_vector_hi then
    invalid_arg "Hobbes.free_ipi_vector";
  Hashtbl.remove t.allocated_vectors v;
  if not (List.mem v t.free_vectors) then t.free_vectors <- v :: t.free_vectors

(* Destroy-time scrub: under enclave churn every per-tenant entry in
   the global tables is a leak unless something reclaims it when the
   enclave goes away.  This hook (fired by both [Pisces.destroy] and
   [Pisces.reclaim_crashed], before resources are released) retires:
   - the kernel registry entry,
   - every application IPI vector the runtime allocated for grants the
     enclave still holds,
   - every {e surviving} enclave's grant whose destination core belongs
     to the dead enclave — the whitelist entry is per destination core,
     so once the core changes hands the grant is stale per-core state
     the static verifier flags as [Stale_grant]; revoking it here keeps
     a dense churn loop verifier-clean,
   - the name-service records: segments the enclave exported are
     reclaimed through the proper XEMEM path (live attachers are
     notified and unmapped — the war-story bug done right), and the
     enclave is dropped from the attacher lists of surviving
     segments. *)
let scrub_on_destroy t (enclave : Enclave.t) =
  let id = enclave.Enclave.id in
  Hashtbl.remove t.kernels id;
  List.iter
    (fun (v, _peer) ->
      if
        v >= app_vector_lo && v <= app_vector_hi
        && Hashtbl.mem t.allocated_vectors v
      then free_ipi_vector t v)
    enclave.Enclave.granted_vectors;
  let dead_cores = enclave.Enclave.cores in
  let still_granted v =
    List.exists
      (fun (e : Enclave.t) ->
        e.Enclave.id <> id
        && List.exists (fun (v', _) -> v' = v) e.Enclave.granted_vectors)
      (Pisces.enclaves t.pisces)
  in
  List.iter
    (fun (peer : Enclave.t) ->
      if peer.Enclave.id <> id then
        List.iter
          (fun (v, dest) ->
            if List.mem dest dead_cores then begin
              (match
                 Pisces.revoke_ipi_vector ~peer_core:dest t.pisces peer
                   ~vector:v
               with
              | Ok () | Error _ -> ());
              if Hashtbl.mem t.allocated_vectors v && not (still_granted v)
              then free_ipi_vector t v
            end)
          peer.Enclave.granted_vectors)
    (Pisces.enclaves t.pisces);
  let registry = Covirt_xemem.Xemem.registry t.xemem in
  List.iter
    (fun (seg : Covirt_xemem.Name_service.segment) ->
      match seg.Covirt_xemem.Name_service.exporter with
      | Covirt_xemem.Name_service.Enclave_export e when e = id -> (
          match
            Covirt_xemem.Xemem.reclaim_export t.xemem
              ~name:seg.Covirt_xemem.Name_service.name ()
          with
          | Ok () -> ()
          | Error _ ->
              (* An attacher refused the unmap (e.g. it is mid-crash
                 itself); the record must still not outlive its
                 exporter. *)
              Covirt_xemem.Name_service.remove registry
                ~segid:seg.Covirt_xemem.Name_service.segid)
      | _ ->
          if List.mem id seg.Covirt_xemem.Name_service.attachers then
            Covirt_xemem.Name_service.note_detach registry
              ~segid:seg.Covirt_xemem.Name_service.segid ~enclave:id)
    (Covirt_xemem.Name_service.segments registry)

let create machine ~host_core =
  let pisces = Pisces.create machine ~host_core in
  let t =
    {
      pisces;
      xemem = Covirt_xemem.Xemem.create pisces;
      kernels = Hashtbl.create 8;
      free_vectors = List.init vector_space (fun i -> app_vector_lo + i);
      allocated_vectors = Hashtbl.create 8;
      syscalls = 0;
    }
  in
  Pisces.set_syscall_handler pisces (fun ~number ~arg ->
      t.syscalls <- t.syscalls + 1;
      (* The general-purpose OS/R services the forwarded call; model a
         successful completion echoing the argument size for
         read/write. *)
      ignore number;
      arg);
  let hooks = Pisces.hooks pisces in
  hooks.Hooks.on_enclave_destroyed <-
    hooks.Hooks.on_enclave_destroyed @ [ scrub_on_destroy t ];
  t

let pisces t = t.pisces
let xemem t = t.xemem
let machine t = Pisces.machine t.pisces

let create_node ?(seed = 7) ?(zones = 2) ?host_reserved_mib ~cores_per_zone
    ~mem_mib_per_zone () =
  let mib = Covirt_sim.Units.mib in
  let host_reserved_per_zone =
    match host_reserved_mib with Some m -> m * mib | None -> 128 * mib
  in
  let machine =
    Machine.create ~seed ~zones ~cores_per_zone
      ~mem_per_zone:(mem_mib_per_zone * mib) ~host_reserved_per_zone ()
  in
  create machine ~host_core:0

let launch_enclave t ~name ~cores ~mem ?timer_hz () =
  match Pisces.create_enclave t.pisces ~name ~cores ~mem ?timer_hz () with
  | Error e -> Error e
  | Ok enclave -> (
      let kernel, get = Kitten.make_kernel () in
      match Pisces.boot t.pisces enclave ~kernel with
      | Error e -> Error e
      | Ok () -> (
          match get () with
          | None -> Error "kitten did not initialize"
          | Some kitten ->
              Hashtbl.replace t.kernels enclave.Enclave.id kitten;
              Kitten.set_host_poke kitten (fun () ->
                  ignore (Pisces.service_channel t.pisces enclave));
              Ok (enclave, kitten)))

let kernel_of t enclave = Hashtbl.find_opt t.kernels enclave.Enclave.id
let kernel_count t = Hashtbl.length t.kernels

let export_window t (enclave : Enclave.t) ~name ~offset ~len =
  match Region.Set.to_list enclave.Enclave.memory with
  | [] -> Error "enclave has no memory"
  | r :: _ ->
      if offset < 0 || len <= 0 || offset + len > r.Region.len then
        Error "window outside the enclave's first region"
      else
        Covirt_xemem.Xemem.export t.xemem
          ~exporter:(Covirt_xemem.Name_service.Enclave_export enclave.Enclave.id)
          ~name
          ~pages:[ Region.make ~base:(r.Region.base + offset) ~len ]

let alloc_ipi_vector t =
  match t.free_vectors with
  | [] -> Error "application IPI vector space exhausted"
  | v :: rest ->
      t.free_vectors <- rest;
      Hashtbl.replace t.allocated_vectors v ();
      Ok v

let free_vector_count t = List.length t.free_vectors
let allocated_vector_count t = Hashtbl.length t.allocated_vectors

let grant_vector_pair t a b =
  match (alloc_ipi_vector t, alloc_ipi_vector t) with
  | Ok va, Ok vb -> (
      let grant enclave vector peer =
        Pisces.grant_ipi_vector t.pisces enclave ~vector
          ~peer_core:(Enclave.bsp peer)
      in
      match (grant a va b, grant b vb a) with
      | Ok (), Ok () -> Ok (va, vb)
      | Error e, _ | _, Error e ->
          free_ipi_vector t va;
          free_ipi_vector t vb;
          Error e)
  | Error e, _ | _, Error e -> Error e

let syscalls_serviced t = t.syscalls

let pp_status ppf t =
  Format.fprintf ppf "hobbes: %d enclaves, %d xemem segments, %d syscalls@."
    (List.length (Pisces.enclaves t.pisces))
    (List.length
       (Covirt_xemem.Name_service.segments
          (Covirt_xemem.Xemem.registry t.xemem)))
    t.syscalls;
  List.iter
    (fun e -> Format.fprintf ppf "  %a@." Enclave.pp e)
    (Pisces.enclaves t.pisces)
