open Covirt_pisces
open Covirt_kitten

type t = {
  pisces : Pisces.t;
  xemem : Covirt_xemem.Xemem.t;
  kernels : (int, Kitten.t) Hashtbl.t;
  mutable free_vectors : int list;
  mutable syscalls : int;
}

(* Application IPI vectors live between the syscall/exception space and
   the system vectors (timer at 0xef, XEMEM doorbells etc. above). *)
let app_vector_lo = 0x40
let app_vector_hi = 0xdf

let create machine ~host_core =
  let pisces = Pisces.create machine ~host_core in
  let t =
    {
      pisces;
      xemem = Covirt_xemem.Xemem.create pisces;
      kernels = Hashtbl.create 8;
      free_vectors =
        List.init (app_vector_hi - app_vector_lo + 1) (fun i ->
            app_vector_lo + i);
      syscalls = 0;
    }
  in
  Pisces.set_syscall_handler pisces (fun ~number ~arg ->
      t.syscalls <- t.syscalls + 1;
      (* The general-purpose OS/R services the forwarded call; model a
         successful completion echoing the argument size for
         read/write. *)
      ignore number;
      arg);
  t

let pisces t = t.pisces
let xemem t = t.xemem
let machine t = Pisces.machine t.pisces

let launch_enclave t ~name ~cores ~mem ?timer_hz () =
  match Pisces.create_enclave t.pisces ~name ~cores ~mem ?timer_hz () with
  | Error e -> Error e
  | Ok enclave -> (
      let kernel, get = Kitten.make_kernel () in
      match Pisces.boot t.pisces enclave ~kernel with
      | Error e -> Error e
      | Ok () -> (
          match get () with
          | None -> Error "kitten did not initialize"
          | Some kitten ->
              Hashtbl.replace t.kernels enclave.Enclave.id kitten;
              Kitten.set_host_poke kitten (fun () ->
                  ignore (Pisces.service_channel t.pisces enclave));
              Ok (enclave, kitten)))

let kernel_of t enclave = Hashtbl.find_opt t.kernels enclave.Enclave.id

let alloc_ipi_vector t =
  match t.free_vectors with
  | [] -> Error "application IPI vector space exhausted"
  | v :: rest ->
      t.free_vectors <- rest;
      Ok v

let free_ipi_vector t v =
  if v < app_vector_lo || v > app_vector_hi then
    invalid_arg "Hobbes.free_ipi_vector";
  if not (List.mem v t.free_vectors) then t.free_vectors <- v :: t.free_vectors

let grant_vector_pair t a b =
  match (alloc_ipi_vector t, alloc_ipi_vector t) with
  | Ok va, Ok vb -> (
      let grant enclave vector peer =
        Pisces.grant_ipi_vector t.pisces enclave ~vector
          ~peer_core:(Enclave.bsp peer)
      in
      match (grant a va b, grant b vb a) with
      | Ok (), Ok () -> Ok (va, vb)
      | Error e, _ | _, Error e ->
          free_ipi_vector t va;
          free_ipi_vector t vb;
          Error e)
  | Error e, _ | _, Error e -> Error e

let syscalls_serviced t = t.syscalls

let pp_status ppf t =
  Format.fprintf ppf "hobbes: %d enclaves, %d xemem segments, %d syscalls@."
    (List.length (Pisces.enclaves t.pisces))
    (List.length
       (Covirt_xemem.Name_service.segments
          (Covirt_xemem.Xemem.registry t.xemem)))
    t.syscalls;
  List.iter
    (fun e -> Format.fprintf ppf "  %a@." Enclave.pp e)
    (Pisces.enclaves t.pisces)
