(** Composite applications.

    Hobbes "enables composite applications that are agnostic to the
    kernel(s) they are running on": an application is a set of
    components, each pinned to an enclave, wired together with IPC
    channels.  The launcher resolves enclaves, builds the channels and
    runs each component with its Kitten context. *)

open Covirt_pisces
open Covirt_kitten

type component = {
  component_name : string;
  enclave : Enclave.t;
  run : Kitten.context -> Ipc.channel list -> unit;
      (** receives the channels this component produces on *)
}

type wire = { from_component : string; to_component : string; ring_bytes : int }

type t = { app_name : string; components : component list; wires : wire list }

val launch : Hobbes.t -> t -> (unit, string) result
(** Build every wire, then run components in declaration order (the
    simulation is sequential; producers run before consumers when
    declared so). *)

val component : name:string -> Enclave.t ->
  (Kitten.context -> Ipc.channel list -> unit) -> component
