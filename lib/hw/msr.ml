type t = (int, int64) Hashtbl.t

let ia32_apic_base = 0x1b
let ia32_efer = 0xc0000080
let ia32_pat = 0x277
let ia32_tsc_deadline = 0x6e0
let ia32_smm_monitor_ctl = 0x9b

let create () =
  let t = Hashtbl.create 32 in
  Hashtbl.replace t ia32_apic_base 0xfee00900L;
  Hashtbl.replace t ia32_efer 0x500L (* LME|LMA: 64-bit long mode *);
  Hashtbl.replace t ia32_pat 0x0007040600070406L;
  t

let read t msr = Option.value ~default:0L (Hashtbl.find_opt t msr)
let write t msr v = Hashtbl.replace t msr v

module Bitmap = struct
  type t = (int, unit) Hashtbl.t

  let create () = Hashtbl.create 16
  let protect t msr = Hashtbl.replace t msr ()
  let unprotect t msr = Hashtbl.remove t msr
  let is_protected t msr = Hashtbl.mem t msr

  let default_sensitive () =
    let t = create () in
    List.iter (protect t)
      [ ia32_apic_base; ia32_efer; ia32_smm_monitor_ctl; ia32_tsc_deadline ];
    t
end
