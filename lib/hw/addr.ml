type t = int

let page_size_4k = 4096
let page_size_2m = 2 * 1024 * 1024
let page_size_1g = 1024 * 1024 * 1024

type page_size = Page_4k | Page_2m | Page_1g

let bytes_of_page_size = function
  | Page_4k -> page_size_4k
  | Page_2m -> page_size_2m
  | Page_1g -> page_size_1g

let pp_page_size ppf ps =
  Format.pp_print_string ppf
    (match ps with Page_4k -> "4K" | Page_2m -> "2M" | Page_1g -> "1G")

let check_pow2 size =
  assert (size > 0 && size land (size - 1) = 0)

let page_down a ~size =
  check_pow2 size;
  a land lnot (size - 1)

let page_up a ~size =
  check_pow2 size;
  (a + size - 1) land lnot (size - 1)

let is_aligned a ~size =
  check_pow2 size;
  a land (size - 1) = 0

let pfn a ~size =
  check_pow2 size;
  a / size

let pp ppf a = Format.fprintf ppf "0x%x" a
