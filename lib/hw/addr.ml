type t = int

let page_size_4k = 4096
let page_size_2m = 2 * 1024 * 1024
let page_size_1g = 1024 * 1024 * 1024

type page_size = Page_4k | Page_2m | Page_1g

let bytes_of_page_size = function
  | Page_4k -> page_size_4k
  | Page_2m -> page_size_2m
  | Page_1g -> page_size_1g

(* Integer codes for the unboxed-result convention on the translation
   hot path (Ept.translate_code): success is a non-negative page-size
   code, failures are negative sentinels, and no caller allocates an
   option, tuple or result to learn the outcome. *)
let page_size_code = function Page_4k -> 0 | Page_2m -> 1 | Page_1g -> 2

let page_size_of_code = function
  | 0 -> Page_4k
  | 1 -> Page_2m
  | 2 -> Page_1g
  | c -> invalid_arg (Printf.sprintf "Addr.page_size_of_code: %d" c)

let pp_page_size ppf ps =
  Format.pp_print_string ppf
    (match ps with Page_4k -> "4K" | Page_2m -> "2M" | Page_1g -> "1G")

let check_pow2 size =
  assert (size > 0 && size land (size - 1) = 0)

let page_down a ~size =
  check_pow2 size;
  a land lnot (size - 1)

let page_up a ~size =
  check_pow2 size;
  (a + size - 1) land lnot (size - 1)

let is_aligned a ~size =
  check_pow2 size;
  a land (size - 1) = 0

let pfn a ~size =
  check_pow2 size;
  a / size

let pp ppf a = Format.fprintf ppf "0x%x" a
