(** Local APIC, one per CPU core.

    Holds the interrupt state Covirt's IPI protection operates on: the
    interrupt request register (IRR), the interrupt command register
    (ICR) used to transmit IPIs, the local timer, and the
    posted-interrupt descriptor (PIR) used by the PIV delivery mode.
    Delivery mechanics (routing an ICR write to the destination core,
    trapping in the hypervisor) live in {!Machine}; this module is the
    per-core register state. *)

type ipi_kind = Fixed | Nmi | Init | Startup

type icr = { dest : int; vector : int; kind : ipi_kind }

type t

val create : apic_id:int -> t
val apic_id : t -> int

(* Interrupt request register. *)

val raise_irr : t -> vector:int -> unit
(** Latch a pending interrupt.  Vectors 0-255; [Invalid_argument]
    outside. *)

val ack_highest : t -> int option
(** Pop the highest-priority pending vector, or [None]. *)

val irr_pending : t -> vector:int -> bool
val pending_count : t -> int

val pending_vectors : t -> int list
(** Every vector currently raised in the IRR, ascending — lets the
    static verifier name what a stale whitelist grant left behind. *)

(* Posted-interrupt descriptor. *)

val pir_post : t -> vector:int -> unit
val pir_drain : t -> int list
(** Atomically collect-and-clear posted vectors (what the hardware
    does at VM entry / notification). *)

val pir_outstanding : t -> bool

(* NMI. *)

val raise_nmi : t -> unit
val take_nmi : t -> bool
(** True if an NMI was pending; clears it. *)

(* Timer. *)

val set_timer_hz : t -> float -> unit
val timer_hz : t -> float

(* Counters (observability). *)

val ipis_sent : t -> int
val note_ipi_sent : t -> unit

val pp_icr : Format.formatter -> icr -> unit
