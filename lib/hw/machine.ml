exception Node_panic of string

exception
  Guest_page_fault of { cpu_id : int; owner : Owner.t; gva : Addr.t }

type t = {
  model : Cost_model.t;
  topology : Numa.t;
  mem : Phys_mem.t;
  cores : Cpu.t array;
  msrs : Msr.t;
  ports : Io_port.t;
  trace : Covirt_sim.Trace.t;
  rng : Covirt_sim.Rng.t;
  corrupted : (int, string) Hashtbl.t;
  mutable wild_reads : int;
  mutable spurious_ipis : int;
  mutable panicked : string option;
  background_streamers_by_zone : int array;
  charge_memo : Charge_memo.t;
  mutable bg_gen : int;
  zone_shares : int array;
}

let create ?(model = Cost_model.default) ?(seed = 42)
    ?(host_reserved_per_zone = 512 * Covirt_sim.Units.mib) ~zones
    ~cores_per_zone ~mem_per_zone () =
  let topology = Numa.create ~zones ~cores_per_zone ~mem_per_zone in
  let rng = Covirt_sim.Rng.create ~seed in
  let cores =
    Array.init (Numa.cores topology) (fun id ->
        Cpu.create ~id
          ~zone:(Numa.zone_of_core topology ~core:id)
          ~model
          ~rng:(Covirt_sim.Rng.split rng))
  in
  {
    model;
    topology;
    mem = Phys_mem.create ~topology ~host_reserved_per_zone;
    cores;
    msrs = Msr.create ();
    ports = Io_port.create ();
    trace = Covirt_sim.Trace.create ();
    rng;
    corrupted = Hashtbl.create 8;
    wild_reads = 0;
    spurious_ipis = 0;
    panicked = None;
    background_streamers_by_zone = Array.make zones 0;
    charge_memo = Charge_memo.create ();
    bg_gen = 0;
    zone_shares = Array.make zones 0;
  }

let cpu t i = t.cores.(i)
let ncores t = Array.length t.cores

let trace t (cpu : Cpu.t) severity fmt =
  Covirt_sim.Trace.recordf t.trace ~tsc:cpu.Cpu.tsc ~cpu:cpu.Cpu.id ~severity
    fmt

let mark_corrupted t ~enclave ~cause =
  if not (Hashtbl.mem t.corrupted enclave) then
    Hashtbl.replace t.corrupted enclave cause

let is_corrupted t ~enclave = Hashtbl.find_opt t.corrupted enclave
let panicked t = t.panicked

let panic t (cpu : Cpu.t) msg =
  t.panicked <- Some msg;
  trace t cpu Covirt_sim.Trace.Error "NODE PANIC: %s" msg;
  raise (Node_panic msg)

(* ------------------------------------------------------------------ *)
(* Failure model: side effects of accesses that reach memory.          *)

let write_effect t (cpu : Cpu.t) addr =
  let victim = Phys_mem.owner_at t.mem addr in
  if not (Owner.equal victim cpu.Cpu.owner) then
    match victim with
    | Owner.Host ->
        panic t cpu
          (Format.asprintf "%a wrote host kernel memory at %a" Owner.pp
             cpu.Cpu.owner Addr.pp addr)
    | Owner.Enclave e ->
        trace t cpu Covirt_sim.Trace.Warn
          "wild write from %s into enclave %d at 0x%x"
          (Owner.to_string cpu.Cpu.owner)
          e addr;
        mark_corrupted t ~enclave:e
          ~cause:
            (Format.asprintf "memory corrupted by %a" Owner.pp cpu.Cpu.owner)
    | Owner.Device d ->
        panic t cpu
          (Format.asprintf "%a misprogrammed device %s via MMIO at %a"
             Owner.pp cpu.Cpu.owner d Addr.pp addr)
    | Owner.Free ->
        trace t cpu Covirt_sim.Trace.Debug
          "write to free memory at 0x%x (latent)" addr

let read_effect t (cpu : Cpu.t) addr =
  let victim = Phys_mem.owner_at t.mem addr in
  if not (Owner.equal victim cpu.Cpu.owner) then t.wild_reads <- t.wild_reads + 1

(* ------------------------------------------------------------------ *)
(* Translation.                                                        *)

(* Page size the guest's own page tables use: Kitten identity-maps its
   contiguous allocations with 2M pages. *)
let native_page_size = Addr.Page_2m

let vapic_active (cpu : Cpu.t) =
  match cpu.Cpu.mode with
  | Cpu.Host_mode -> false
  | Cpu.Guest_mode vmcs -> (
      match vmcs.Vmcs.controls.Vmcs.vapic with
      | Vmcs.Vapic_off -> false
      | Vmcs.Vapic_full | Vmcs.Vapic_piv _ -> true)

let translation_extra_per_miss t (cpu : Cpu.t) ~probe =
  match cpu.Cpu.mode with
  | Cpu.Host_mode -> 0.0
  | Cpu.Guest_mode vmcs ->
      let m = t.model in
      let guest_tax = float_of_int m.Cost_model.guest_tlbmiss_tax in
      let ept_extra =
        match vmcs.Vmcs.controls.Vmcs.ept with
        | None -> 0.0
        | Some ept ->
            let ps =
              match Ept.page_size_at ept probe with
              | Some ps -> ps
              | None -> Ept.max_page ept
            in
            float_of_int (Cost_model.ept_walk_extra m ps)
      in
      let vapic_tax =
        if vapic_active cpu then float_of_int m.Cost_model.vapic_tlbmiss_tax
        else 0.0
      in
      guest_tax +. ept_extra +. vapic_tax

(* Granular translation: exercises the real TLB and EPT.  Returns
   [`Proceed] when the access should reach memory, [`Suppressed] when a
   hypervisor swallowed it. *)
let walk_kernel_pt t (cpu : Cpu.t) addr =
  (* The kernel's own page tables translate first (any execution
     mode); a miss is the kernel's page fault, not a protection
     event. *)
  match cpu.Cpu.guest_pt with
  | None -> native_page_size
  | Some pt -> (
      match Guest_pt.translate pt addr with
      | Ok ps -> ps
      | Error gva ->
          trace t cpu Covirt_sim.Trace.Warn
            "kernel page fault at 0x%x" gva;
          raise
            (Guest_page_fault
               { cpu_id = cpu.Cpu.id; owner = cpu.Cpu.owner; gva }))

(* warm-begin: the granular warm path is a TLB hit — one probe, one
   charge, no allocation (bench allocation gate; covirt-lint check 6).
   The miss continuation walks and installs (which may allocate: it is
   the cold fill), and builds a violation record only when a walk
   failure is about to become a VM exit. *)
let translate_granular t (cpu : Cpu.t) addr ~access =
  if Tlb.lookup_hit cpu.Cpu.tlb addr then begin
    Cpu.charge cpu t.model.Cost_model.l1_hit;
    `Proceed
  end
  (* warm-end *)
  else begin
    let kernel_ps = walk_kernel_pt t cpu addr in
    ignore kernel_ps;
    match cpu.Cpu.mode with
    | Cpu.Host_mode ->
        Cpu.charge cpu t.model.Cost_model.pt_walk_native;
        Tlb.install cpu.Cpu.tlb addr ~page_size:kernel_ps;
        `Proceed
    | Cpu.Guest_mode vmcs -> (
        Cpu.charge cpu t.model.Cost_model.pt_walk_native;
        match vmcs.Vmcs.controls.Vmcs.ept with
        | None ->
            Cpu.charge cpu t.model.Cost_model.guest_tlbmiss_tax;
            Tlb.install cpu.Cpu.tlb addr ~page_size:kernel_ps;
            `Proceed
        | Some ept ->
            let code = Ept.translate_code ept addr ~access in
            if code >= 0 then begin
              let ps = Addr.page_size_of_code code in
              Cpu.charge cpu (Cost_model.ept_walk_extra t.model ps);
              Tlb.install cpu.Cpu.tlb addr ~page_size:ps;
              `Proceed
            end
            else begin
              let violation = Ept.violation_of_code code addr ~access in
              match
                Vmx.deliver_exit ~model:t.model cpu vmcs
                  (Vmcs.Ept_violation violation)
              with
              | `Resume -> `Proceed
              | `Skip -> `Suppressed
            end)
  end

let data_cost t (cpu : Cpu.t) addr =
  (* Nominal cache cost for a granular (control-path) access. *)
  let local = Numa.is_local t.topology ~core:cpu.Cpu.id ~addr in
  if local then t.model.Cost_model.l2_hit else t.model.Cost_model.l3_hit

let sanitize_access t (cpu : Cpu.t) ~base ~len ~access =
  if !Sanitize.on then
    Sanitize.access ~mem_uid:(Phys_mem.uid t.mem) ~cpu:cpu.Cpu.id
      ~owner:cpu.Cpu.owner ~base ~len ~access

let load t cpu addr =
  match translate_granular t cpu addr ~access:`Read with
  | `Suppressed -> ()
  | `Proceed ->
      if !Sanitize.on then sanitize_access t cpu ~base:addr ~len:1 ~access:`Read;
      Cpu.charge cpu (data_cost t cpu addr);
      read_effect t cpu addr

let store t cpu addr =
  match translate_granular t cpu addr ~access:`Write with
  | `Suppressed -> ()
  | `Proceed ->
      if !Sanitize.on then
        sanitize_access t cpu ~base:addr ~len:1 ~access:`Write;
      Cpu.charge cpu (data_cost t cpu addr);
      write_effect t cpu addr

let check_range t (cpu : Cpu.t) ~base ~len ~access =
  match cpu.Cpu.mode with
  | Cpu.Host_mode -> ()
  | Cpu.Guest_mode vmcs -> (
      match vmcs.Vmcs.controls.Vmcs.ept with
      | None -> ()
      | Some ept ->
          if not (Ept.covers ept ~base ~len) then begin
            let gpa =
              (* First uncovered address: either the base itself or the
                 end of the covering region containing it. *)
              match Region.Set.find (Ept.regions ept) base with
              | None -> base
              | Some r -> Region.limit r
            in
            let access = (access :> [ `Read | `Write | `Exec ]) in
            let violation =
              { Ept.gpa; access; reason = `Not_mapped }
            in
            match
              Vmx.deliver_exit ~model:t.model cpu vmcs
                (Vmcs.Ept_violation violation)
            with
            | `Resume | `Skip -> ()
          end)

(* ------------------------------------------------------------------ *)
(* Bulk cost charging.                                                 *)

let zone_split_into t ~base ~len =
  (* Bytes of [base, base+len) local to each zone, written into the
     machine's preallocated [zone_shares] scratch array (machines are
     shard-local, so one scratch per machine suffices).  Consumers
     derive fractions as [share / len] in ascending zone order —
     exactly the (zone, fraction) list this used to build per call. *)
  let nz = Numa.zones t.topology in
  let mz = Numa.mem_per_zone t.topology in
  let shares = t.zone_shares in
  let lim = base + len in
  let counted = ref 0 in
  for z = 0 to nz - 1 do
    let zlo = z * mz in
    let zhi = zlo + mz in
    let lo = if base > zlo then base else zlo in
    let hi = if lim < zhi then lim else zhi in
    let s = if hi > lo then hi - lo else 0 in
    shares.(z) <- s;
    counted := !counted + s
  done;
  (* MMIO or out-of-range space counts as the last zone. *)
  if !counted < len then shares.(nz - 1) <- shares.(nz - 1) + (len - !counted)

let set_background_streamers t ~zone n =
  if n < 0 then invalid_arg "Machine.set_background_streamers";
  t.background_streamers_by_zone.(zone) <- n;
  t.bg_gen <- t.bg_gen + 1

let background_streamers t ~zone = t.background_streamers_by_zone.(zone)

let contention_factor t ~zone ~sharers =
  let contenders = sharers + t.background_streamers_by_zone.(zone) in
  Float.max 1.0
    (float_of_int contenders
    /. float_of_int t.model.Cost_model.bw_channels_per_zone)

(* warm-begin: the charge fast path mutates the memo's preallocated
   scratch key in place — every field an immediate int, the old mode
   variant unpacked into mode/ept_uid/ept_gen sentinels — then probes.
   A hit allocates nothing (bench allocation gate; covirt-lint check
   6); a miss falls through to the cold compute below. *)
let set_charge_key t (cpu : Cpu.t) ~kind ~base ~len ~sharers ~page_code =
  let k = Charge_memo.scratch t.charge_memo in
  k.Charge_memo.kind <- kind;
  k.Charge_memo.zone <- cpu.Cpu.zone;
  k.Charge_memo.base <- base;
  k.Charge_memo.len <- len;
  k.Charge_memo.sharers <- sharers;
  k.Charge_memo.page <- page_code;
  (match cpu.Cpu.mode with
  | Cpu.Host_mode ->
      k.Charge_memo.mode <- 0;
      k.Charge_memo.ept_uid <- -1;
      k.Charge_memo.ept_gen <- 0
  | Cpu.Guest_mode vmcs -> (
      k.Charge_memo.mode <- (if vapic_active cpu then 2 else 1);
      match vmcs.Vmcs.controls.Vmcs.ept with
      | None ->
          k.Charge_memo.ept_uid <- -1;
          k.Charge_memo.ept_gen <- 0
      | Some e ->
          k.Charge_memo.ept_uid <- Ept.uid e;
          k.Charge_memo.ept_gen <- Ept.generation e));
  k.Charge_memo.bg_gen <- t.bg_gen
(* warm-end *)

(* Cold-path cost formulas.  The zone loops visit zones in ascending
   order and skip empty shares — the same visit order and the same
   float operations as the old (zone, fraction) list folds, so cached
   per-line / per-op charges stay bit-identical (golden gate). *)
let stream_per_line t (cpu : Cpu.t) ~base ~bytes ~sharers ~page_size =
  let m = t.model in
  zone_split_into t ~base ~len:bytes;
  let shares = t.zone_shares in
  let line_cost = ref 0.0 in
  for z = 0 to Numa.zones t.topology - 1 do
    let s = shares.(z) in
    if s > 0 then begin
      let frac = float_of_int s /. float_of_int bytes in
      let local = z = cpu.Cpu.zone in
      line_cost :=
        !line_cost
        +. frac
           *. float_of_int (Cost_model.stream_line m ~local)
           *. contention_factor t ~zone:z ~sharers
    end
  done;
  let miss_rate = Tlb.stream_miss_rate ~model:m ~page_size in
  let trans =
    miss_rate
    *. (float_of_int m.Cost_model.pt_walk_native
       +. translation_extra_per_miss t cpu ~probe:(base + (bytes / 2)))
  in
  !line_cost +. trans

let random_per_op t (cpu : Cpu.t) ~base ~working_set ~sharers ~page_size =
  let m = t.model in
  let cycles, dram_fraction =
    Cost_model.random_profile m ~working_set ~sharers
  in
  zone_split_into t ~base ~len:working_set;
  let shares = t.zone_shares in
  let remote_fraction = ref 0.0 in
  for z = 0 to Numa.zones t.topology - 1 do
    let s = shares.(z) in
    if s > 0 && z <> cpu.Cpu.zone then
      remote_fraction :=
        !remote_fraction +. (float_of_int s /. float_of_int working_set)
  done;
  let numa_penalty =
    dram_fraction *. !remote_fraction
    *. float_of_int (m.Cost_model.dram_remote - m.Cost_model.dram_local)
  in
  let miss_rate = Tlb.bulk_miss_rate ~model:m ~page_size ~working_set in
  let trans =
    miss_rate
    *. (float_of_int m.Cost_model.pt_walk_native
       +. translation_extra_per_miss t cpu ~probe:(base + (working_set / 2)))
  in
  cycles +. numa_penalty +. trans

(* warm-begin: warm charge = key mutation + one probe + one Cpu.charge
   (bench allocation gate; covirt-lint check 6).  The Not_found arm is
   the cold fill. *)
let charge_stream t (cpu : Cpu.t) ~base ~bytes ~sharers ~page_size =
  if bytes <= 0 then invalid_arg "Machine.charge_stream";
  if !Sanitize.on then sanitize_access t cpu ~base ~len:bytes ~access:`Read;
  set_charge_key t cpu ~kind:0 ~base ~len:bytes ~sharers
    ~page_code:(Addr.page_size_code page_size);
  let per_line =
    match Charge_memo.probe t.charge_memo with
    | v -> v
    | exception Not_found ->
        let v = stream_per_line t cpu ~base ~bytes ~sharers ~page_size in
        Charge_memo.commit t.charge_memo v;
        v
  in
  let lines = float_of_int (max 1 (bytes / t.model.Cost_model.line_bytes)) in
  Cpu.charge cpu (int_of_float (lines *. per_line))

let charge_random t (cpu : Cpu.t) ~ops ~base ~working_set ~sharers ~page_size =
  if ops <= 0 || working_set <= 0 then invalid_arg "Machine.charge_random";
  if !Sanitize.on then
    sanitize_access t cpu ~base ~len:working_set ~access:`Read;
  set_charge_key t cpu ~kind:1 ~base ~len:working_set ~sharers
    ~page_code:(Addr.page_size_code page_size);
  let per_op =
    match Charge_memo.probe t.charge_memo with
    | v -> v
    | exception Not_found ->
        let v = random_per_op t cpu ~base ~working_set ~sharers ~page_size in
        Charge_memo.commit t.charge_memo v;
        v
  in
  Cpu.charge cpu (int_of_float (float_of_int ops *. per_op))
(* warm-end *)

let charge_flops t cpu n =
  if n < 0 then invalid_arg "Machine.charge_flops";
  Cpu.charge cpu (int_of_float (float_of_int n *. t.model.Cost_model.flop_cycles))

(* ------------------------------------------------------------------ *)
(* Trapped instructions.                                               *)

let msr_sensitive msr =
  msr = Msr.ia32_smm_monitor_ctl || msr = Msr.ia32_efer
  || msr = Msr.ia32_apic_base

let rdmsr t (cpu : Cpu.t) msr =
  match cpu.Cpu.mode with
  | Cpu.Guest_mode vmcs
    when (match vmcs.Vmcs.controls.Vmcs.msr_bitmap with
         | Some bm -> Msr.Bitmap.is_protected bm msr
         | None -> false) -> (
      match
        Vmx.deliver_exit ~model:t.model cpu vmcs
          (Vmcs.Msr_access { msr; write = false; value = 0L })
      with
      | `Resume -> Msr.read t.msrs msr
      | `Skip -> 0L)
  | Cpu.Guest_mode _ | Cpu.Host_mode ->
      Cpu.charge cpu 30;
      Msr.read t.msrs msr

let wrmsr t (cpu : Cpu.t) msr value =
  match cpu.Cpu.mode with
  | Cpu.Guest_mode vmcs
    when (match vmcs.Vmcs.controls.Vmcs.msr_bitmap with
         | Some bm -> Msr.Bitmap.is_protected bm msr
         | None -> false) -> (
      match
        Vmx.deliver_exit ~model:t.model cpu vmcs
          (Vmcs.Msr_access { msr; write = true; value })
      with
      | `Resume -> Msr.write t.msrs msr value
      | `Skip -> ())
  | Cpu.Guest_mode _ | Cpu.Host_mode ->
      Cpu.charge cpu 40;
      if msr_sensitive msr && not (Owner.equal cpu.Cpu.owner Owner.Host) then
        panic t cpu
          (Format.asprintf "%a wrote sensitive MSR 0x%x natively" Owner.pp
             cpu.Cpu.owner msr)
      else Msr.write t.msrs msr value

let inb t (cpu : Cpu.t) port =
  match cpu.Cpu.mode with
  | Cpu.Guest_mode vmcs
    when (match vmcs.Vmcs.controls.Vmcs.io_bitmap with
         | Some bm -> Io_port.Bitmap.is_protected bm port
         | None -> false) -> (
      match
        Vmx.deliver_exit ~model:t.model cpu vmcs
          (Vmcs.Io_access { port; write = false; value = 0 })
      with
      | `Resume -> Io_port.read t.ports port
      | `Skip -> 0)
  | Cpu.Guest_mode _ | Cpu.Host_mode ->
      Cpu.charge cpu 200;
      Io_port.read t.ports port

let outb t (cpu : Cpu.t) port value =
  match cpu.Cpu.mode with
  | Cpu.Guest_mode vmcs
    when (match vmcs.Vmcs.controls.Vmcs.io_bitmap with
         | Some bm -> Io_port.Bitmap.is_protected bm port
         | None -> false) -> (
      match
        Vmx.deliver_exit ~model:t.model cpu vmcs
          (Vmcs.Io_access { port; write = true; value })
      with
      | `Resume -> Io_port.write t.ports port value
      | `Skip -> ())
  | Cpu.Guest_mode _ | Cpu.Host_mode ->
      Cpu.charge cpu 200;
      if
        port = Io_port.reset_port
        && value land 0x4 <> 0
        && not (Owner.equal cpu.Cpu.owner Owner.Host)
      then
        panic t cpu
          (Format.asprintf "%a hard-reset the node via port 0xCF9" Owner.pp
             cpu.Cpu.owner)
      else Io_port.write t.ports port value

let emulated_instruction t (cpu : Cpu.t) reason =
  (* cpuid/xsetbv exit unconditionally in VMX non-root mode. *)
  match cpu.Cpu.mode with
  | Cpu.Host_mode -> Cpu.charge cpu 100
  | Cpu.Guest_mode vmcs -> (
      match Vmx.deliver_exit ~model:t.model cpu vmcs reason with
      | `Resume | `Skip -> ())

let cpuid t cpu = emulated_instruction t cpu Vmcs.Cpuid
let xsetbv t cpu = emulated_instruction t cpu Vmcs.Xsetbv

let hlt t (cpu : Cpu.t) =
  match cpu.Cpu.mode with
  | Cpu.Host_mode -> Cpu.charge cpu 50
  | Cpu.Guest_mode vmcs -> (
      match Vmx.deliver_exit ~model:t.model cpu vmcs Vmcs.Hlt with
      | `Resume | `Skip -> ())

let raise_abort t (cpu : Cpu.t) ~what =
  match cpu.Cpu.mode with
  | Cpu.Host_mode ->
      (* A double fault escalates to a triple fault: platform reset. *)
      panic t cpu
        (Format.asprintf "abort (%s) on %a escalated to triple fault" what
           Owner.pp cpu.Cpu.owner)
  | Cpu.Guest_mode vmcs -> (
      match
        Vmx.deliver_exit ~model:t.model cpu vmcs (Vmcs.Abort { what })
      with
      | `Resume | `Skip -> ())

(* ------------------------------------------------------------------ *)
(* Interrupts.                                                         *)

let dispatch_vector t (dest : Cpu.t) =
  match Apic.ack_highest dest.Cpu.apic with
  | None -> ()
  | Some vector -> (
      ignore t;
      match dest.Cpu.isr with
      | Some isr -> isr dest vector
      | None -> ())

let handle_nmi t (dest : Cpu.t) =
  Cpu.charge dest t.model.Cost_model.nmi_roundtrip;
  if Apic.take_nmi dest.Cpu.apic then
    match dest.Cpu.mode with
    | Cpu.Guest_mode vmcs -> (
        (* NMIs unconditionally exit; the Covirt hypervisor's NMI
           handler drains the command queue. *)
        match Vmx.deliver_exit ~model:t.model dest vmcs Vmcs.Nmi_exit with
        | `Resume | `Skip -> ())
    | Cpu.Host_mode -> (
        match dest.Cpu.nmi_handler with
        | Some handler -> handler dest
        | None -> ())

let deliver_fixed t (dest : Cpu.t) ~vector ~from_owner =
  let cross = not (Owner.equal dest.Cpu.owner from_owner) in
  if cross && vector < 32 then
    (* An exception-class vector injected into a foreign kernel is a
       kernel crash for the victim. *)
    match dest.Cpu.owner with
    | Owner.Host ->
        t.panicked <- Some "host kernel crashed by errant exception IPI";
        raise (Node_panic "host kernel crashed by errant exception IPI")
    | Owner.Enclave e ->
        mark_corrupted t ~enclave:e
          ~cause:
            (Format.asprintf "errant exception-class IPI (vector %d) from %a"
               vector Owner.pp from_owner)
    | Owner.Device _ | Owner.Free -> ()
  else begin
    if cross then t.spurious_ipis <- t.spurious_ipis + 1;
    match dest.Cpu.mode with
    | Cpu.Host_mode ->
        Apic.raise_irr dest.Cpu.apic ~vector;
        Cpu.charge dest t.model.Cost_model.ipi_recv_native;
        dispatch_vector t dest
    | Cpu.Guest_mode vmcs -> (
        match vmcs.Vmcs.controls.Vmcs.vapic with
        | Vmcs.Vapic_off ->
            Apic.raise_irr dest.Cpu.apic ~vector;
            Cpu.charge dest t.model.Cost_model.ipi_recv_native;
            dispatch_vector t dest
        | Vmcs.Vapic_full -> (
            (* Incoming interrupts force an exit; the hypervisor
               re-injects. *)
            match
              Vmx.deliver_exit ~model:t.model dest vmcs
                (Vmcs.External_interrupt { vector })
            with
            | `Resume ->
                Apic.raise_irr dest.Cpu.apic ~vector;
                Cpu.charge dest t.model.Cost_model.vapic_inject;
                dispatch_vector t dest
            | `Skip -> ())
        | Vmcs.Vapic_piv _ ->
            (* Exitless posted delivery. *)
            Apic.pir_post dest.Cpu.apic ~vector;
            Cpu.charge dest t.model.Cost_model.piv_post;
            List.iter
              (fun v -> Apic.raise_irr dest.Cpu.apic ~vector:v)
              (Apic.pir_drain dest.Cpu.apic);
            dispatch_vector t dest)
  end

let send_ipi t ~from ~dest ~vector ~kind =
  if dest < 0 || dest >= ncores t then invalid_arg "Machine.send_ipi: dest";
  Apic.note_ipi_sent from.Cpu.apic;
  Cpu.charge from t.model.Cost_model.ipi_send_native;
  let allowed =
    match from.Cpu.mode with
    | Cpu.Guest_mode vmcs when vapic_active from -> (
        match
          Vmx.deliver_exit ~model:t.model from vmcs
            (Vmcs.Icr_write { Apic.dest; vector; kind })
        with
        | `Resume -> true
        | `Skip -> false)
    | Cpu.Guest_mode _ | Cpu.Host_mode -> true
  in
  if allowed then begin
    let dest_cpu = t.cores.(dest) in
    match kind with
    | Apic.Nmi ->
        Apic.raise_nmi dest_cpu.Cpu.apic;
        handle_nmi t dest_cpu
    | Apic.Fixed -> deliver_fixed t dest_cpu ~vector ~from_owner:from.Cpu.owner
    | Apic.Init | Apic.Startup ->
        (* INIT/SIPI to a foreign core resets it mid-execution: fatal
           for whoever owns it. *)
        if not (Owner.equal dest_cpu.Cpu.owner from.Cpu.owner) then
          match dest_cpu.Cpu.owner with
          | Owner.Host -> panic t from "errant INIT IPI reset a host core"
          | Owner.Enclave e ->
              mark_corrupted t ~enclave:e ~cause:"errant INIT/SIPI reset"
          | Owner.Device _ | Owner.Free -> ()
  end

let post_host_nmi t ~dest =
  if dest < 0 || dest >= ncores t then invalid_arg "Machine.post_host_nmi";
  let dest_cpu = t.cores.(dest) in
  Apic.raise_nmi dest_cpu.Cpu.apic;
  handle_nmi t dest_cpu

let deliver_external_irq t ~dest ~vector =
  if dest < 0 || dest >= ncores t then
    invalid_arg "Machine.deliver_external_irq";
  let cpu = t.cores.(dest) in
  (match cpu.Cpu.mode with
  | Cpu.Host_mode -> Cpu.charge cpu t.model.Cost_model.ipi_recv_native
  | Cpu.Guest_mode vmcs -> (
      match vmcs.Vmcs.controls.Vmcs.vapic with
      | Vmcs.Vapic_off -> Cpu.charge cpu t.model.Cost_model.ipi_recv_native
      | Vmcs.Vapic_full | Vmcs.Vapic_piv _ -> (
          (* device interrupts exit even under PIV *)
          match
            Vmx.deliver_exit ~model:t.model cpu vmcs
              (Vmcs.External_interrupt { vector })
          with
          | `Resume -> Cpu.charge cpu t.model.Cost_model.vapic_inject
          | `Skip -> ())));
  Apic.raise_irr cpu.Cpu.apic ~vector;
  dispatch_vector t cpu

let timer_vector = 0xef

let timer_tick_cost t (cpu : Cpu.t) =
  let m = t.model in
  match cpu.Cpu.mode with
  | Cpu.Host_mode -> m.Cost_model.timer_handler
  | Cpu.Guest_mode vmcs -> (
      match vmcs.Vmcs.controls.Vmcs.vapic with
      | Vmcs.Vapic_off -> m.Cost_model.timer_handler
      | Vmcs.Vapic_full | Vmcs.Vapic_piv _ ->
          (* The local APIC timer is an external interrupt: it exits
             even under PIV (the paper calls this out explicitly). *)
          Vmx.vmexit_cost ~model:m + m.Cost_model.vapic_inject
          + m.Cost_model.timer_handler)

let timer_tick t (cpu : Cpu.t) =
  (match cpu.Cpu.mode with
  | Cpu.Host_mode -> Cpu.charge cpu t.model.Cost_model.timer_handler
  | Cpu.Guest_mode vmcs -> (
      match vmcs.Vmcs.controls.Vmcs.vapic with
      | Vmcs.Vapic_off -> Cpu.charge cpu t.model.Cost_model.timer_handler
      | Vmcs.Vapic_full | Vmcs.Vapic_piv _ -> (
          match
            Vmx.deliver_exit ~model:t.model cpu vmcs
              (Vmcs.External_interrupt { vector = timer_vector })
          with
          | `Resume ->
              Cpu.charge cpu
                (t.model.Cost_model.vapic_inject
                + t.model.Cost_model.timer_handler)
          | `Skip -> ())));
  Apic.raise_irr cpu.Cpu.apic ~vector:timer_vector;
  dispatch_vector t cpu
