type zone = int

type t = { zones : int; cores_per_zone : int; mem_per_zone : int }

let create ~zones ~cores_per_zone ~mem_per_zone =
  if zones <= 0 || cores_per_zone <= 0 || mem_per_zone <= 0 then
    invalid_arg "Numa.create";
  { zones; cores_per_zone; mem_per_zone }

let zones t = t.zones
let cores_per_zone t = t.cores_per_zone
let cores t = t.zones * t.cores_per_zone
let mem_per_zone t = t.mem_per_zone
let total_mem t = t.zones * t.mem_per_zone

let zone_of_core t ~core =
  if core < 0 || core >= cores t then invalid_arg "Numa.zone_of_core";
  core / t.cores_per_zone

let zone_of_addr t a =
  if a < 0 then invalid_arg "Numa.zone_of_addr";
  min (a / t.mem_per_zone) (t.zones - 1)

let cores_of_zone t z =
  if z < 0 || z >= t.zones then invalid_arg "Numa.cores_of_zone";
  List.init t.cores_per_zone (fun i -> (z * t.cores_per_zone) + i)

let zone_range t z =
  if z < 0 || z >= t.zones then invalid_arg "Numa.zone_range";
  Region.make ~base:(z * t.mem_per_zone) ~len:t.mem_per_zone

let is_local t ~core ~addr = zone_of_core t ~core = zone_of_addr t addr

let pp ppf t =
  Format.fprintf ppf "%d zones x (%d cores, %a)" t.zones t.cores_per_zone
    Covirt_sim.Units.pp_bytes t.mem_per_zone
