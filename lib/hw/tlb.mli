(** Translation lookaside buffer.

    Two faces:

    - a {e stateful} TLB used on the granular access path (fault
      injection, control operations).  This is what makes the
      unmap/flush ordering protocol observable: after the controller
      removes an EPT mapping, a stale entry still translates until the
      hypervisor processes a flush command — exactly the window
      Covirt's unmap protocol closes before memory is reclaimed.

    - {e analytic} miss-rate estimators used by the bulk workload
      path, where simulating per-access entries would be absurdly
      slow.

    Entries are tagged with the page size they were installed at, so
    EPT large-page coalescing changes both reach and walk cost.

    The stateful TLB is set-associative (see {!Cost_model.tlb_geometry}):
    each size class is a bank of power-of-two sets indexed by
    [vpn land (sets - 1)] with a small number of ways, so [lookup],
    [install] and (for small regions) [flush_range] probe O(ways)
    slots instead of scanning every entry.  Eviction within a set is
    pseudo-LRU, driven by a monotonic tick stamped on every hit and
    install — deterministic, unlike the random victim the linear TLB
    used, and invisible to simulated cycle counts on any access
    pattern that does not overcommit a set. *)

type entry = { vpn : int; page_size : Addr.page_size; epoch : int }
(** A cached translation: virtual page number, the size it was
    installed at, and the flush epoch that validates it. *)

type t
(** A stateful per-CPU TLB (all size-class banks). *)

val create : model:Cost_model.t -> rng:Covirt_sim.Rng.t -> t
(** Fresh, empty TLB with the geometry [model] prescribes.  [rng] is
    kept for compatibility with the historic random-victim policy; the
    set-associative replacement no longer draws from it. *)

val lookup : t -> Addr.t -> entry option
(** Hit if a valid entry covers the address.  Allocation-free on both
    outcomes: a hit returns the option stored in the slot array itself
    and a miss is the immediate [None], so the warm translation path
    never touches the minor heap (asserted by the bench allocation
    gate and the zero-allocation tests). *)

val lookup_hit : t -> Addr.t -> bool
(** [lookup] collapsed to its outcome — the unboxed entry point the
    machine's granular translation path uses.  Identical probe, touch
    and observability behaviour to {!lookup}. *)

val install : t -> Addr.t -> page_size:Addr.page_size -> unit
(** Install the translation covering [addr]; refreshes the entry in
    place if present, else fills a free way, else evicts the
    pseudo-LRU victim of the indexed set. *)

val geometry : t -> Addr.page_size -> int * int
(** [(sets, ways)] of the bank holding entries of this page size. *)

val flush_all : t -> unit
(** Invalidate every entry and advance the flush epoch. *)

val flush_range : t -> Region.t -> unit
(** Invalidate entries whose page overlaps the region. *)

val entry_count : t -> int
(** Live (valid) entries across all banks. *)

val flush_count : t -> int
(** Number of full flushes performed (observability for tests). *)

val bulk_miss_rate :
  model:Cost_model.t -> page_size:Addr.page_size -> working_set:int -> float
(** Expected miss probability for one access uniformly distributed in
    [working_set], given the TLB reach at [page_size]. *)

val stream_miss_rate :
  model:Cost_model.t -> page_size:Addr.page_size -> float
(** Miss probability per cacheline of a sequential stream: one miss
    per page, i.e. [line_bytes / page_bytes]. *)
