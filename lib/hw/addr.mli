(** Physical/guest-physical addresses and page geometry.

    The simulated machine uses identity mappings throughout (a design
    pillar of both Pisces and Covirt), so a single address type serves
    for host-physical, guest-physical and guest-virtual addresses.
    Addresses are plain [int]s (63 bits is ample for a 64 GB node). *)

type t = int

val page_size_4k : int
val page_size_2m : int
val page_size_1g : int

type page_size = Page_4k | Page_2m | Page_1g

val bytes_of_page_size : page_size -> int
val pp_page_size : Format.formatter -> page_size -> unit

val page_size_code : page_size -> int
(** Immediate integer code: [Page_4k -> 0], [Page_2m -> 1],
    [Page_1g -> 2].  Part of the unboxed-result convention on the
    translation hot path ({!Ept.translate_code}): success outcomes
    travel as these codes so the warm path never allocates. *)

val page_size_of_code : int -> page_size
(** Inverse of {!page_size_code}; [Invalid_argument] on any other
    code (including the negative failure sentinels). *)

val page_down : t -> size:int -> t
(** Round down to a [size]-aligned boundary. [size] must be a power of
    two. *)

val page_up : t -> size:int -> t
(** Round up. *)

val is_aligned : t -> size:int -> bool
val pfn : t -> size:int -> int
(** Page frame number at the given granularity. *)

val pp : Format.formatter -> t -> unit
(** Hex rendering ("0x1_0000_0000"-style without separators). *)
