type t = { base : Addr.t; len : int }

let make ~base ~len =
  if len <= 0 then invalid_arg "Region.make: len <= 0";
  if base < 0 then invalid_arg "Region.make: negative base";
  { base; len }

let last r = r.base + r.len - 1
let limit r = r.base + r.len
let contains r a = a >= r.base && a < limit r

let contains_range r ~base ~len =
  len > 0 && base >= r.base && base + len <= limit r

let overlaps a b = a.base < limit b && b.base < limit a
let equal a b = a.base = b.base && a.len = b.len

let compare a b =
  match Int.compare a.base b.base with
  | 0 -> Int.compare a.len b.len
  | c -> c

let pp ppf r =
  Format.fprintf ppf "[%a, %a)" Addr.pp r.base Addr.pp (limit r)

module Set = struct
  type region = t

  (* Invariant: sorted by base, pairwise disjoint, no two adjacent
     regions touch (they would have been coalesced). *)
  type nonrec t = region list

  let empty = []
  let to_list t = t
  let is_empty t = t = []
  let cardinal = List.length

  let normalize regions =
    let sorted = List.sort compare regions in
    let rec merge acc = function
      | [] -> List.rev acc
      | r :: rest -> (
          match acc with
          | prev :: acc' when r.base <= limit prev ->
              let merged =
                { base = prev.base; len = max (limit prev) (limit r) - prev.base }
              in
              merge (merged :: acc') rest
          | _ -> merge (r :: acc) rest)
    in
    merge [] sorted

  let of_list regions = normalize regions
  let add t r = normalize (r :: t)

  let remove t hole =
    let cut r =
      if not (overlaps r hole) then [ r ]
      else
        let left =
          if r.base < hole.base then [ { base = r.base; len = hole.base - r.base } ]
          else []
        in
        let right =
          if limit r > limit hole then
            [ { base = limit hole; len = limit r - limit hole } ]
          else []
        in
        left @ right
    in
    List.concat_map cut t

  let find t a = List.find_opt (fun r -> contains r a) t
  let mem t a = Option.is_some (find t a)

  let mem_range t ~base ~len =
    len > 0
    &&
    match find t base with
    | None -> false
    | Some r -> base + len <= limit r

  let total_bytes t = List.fold_left (fun acc r -> acc + r.len) 0 t
  let union a b = normalize (a @ b)
  let diff a b = List.fold_left remove a b

  let inter a b =
    let clip r =
      List.filter_map
        (fun s ->
          if overlaps r s then
            let base = max r.base s.base in
            let lim = min (limit r) (limit s) in
            Some { base; len = lim - base }
          else None)
        b
    in
    normalize (List.concat_map clip a)

  let iter f t = List.iter f t
  let fold f acc t = List.fold_left f acc t
  let equal a b = List.equal equal a b

  let pp ppf t =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp)
      t
end
