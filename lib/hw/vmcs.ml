type vapic_mode =
  | Vapic_off
  | Vapic_full
  | Vapic_piv of { notification_vector : int }

type controls = {
  ept : Ept.t option;
  msr_bitmap : Msr.Bitmap.t option;
  io_bitmap : Io_port.Bitmap.t option;
  vapic : vapic_mode;
}

type guest_state = {
  entry_rip : Addr.t;
  boot_params_gpa : Addr.t;
  long_mode : bool;
}

type exit_reason =
  | Ept_violation of Ept.violation
  | Icr_write of Apic.icr
  | Msr_access of { msr : int; write : bool; value : int64 }
  | Io_access of { port : int; write : bool; value : int }
  | Cpuid
  | Xsetbv
  | Hlt
  | External_interrupt of { vector : int }
  | Nmi_exit
  | Abort of { what : string }

type action = Resume | Skip | Kill of { reason : string }

type stats = {
  mutable exits_total : int;
  mutable exits_ept : int;
  mutable exits_icr : int;
  mutable exits_msr : int;
  mutable exits_io : int;
  mutable exits_interrupt : int;
  mutable exits_nmi : int;
  mutable exits_hlt : int;
  mutable exits_emul : int;
  mutable exits_abort : int;
}

type t = {
  vcpu : int;
  enclave : int;
  guest : guest_state;
  mutable controls : controls;
  mutable exit_handler : (exit_reason -> action) option;
  mutable launched : bool;
  stats : stats;
}

let fresh_stats () =
  {
    exits_total = 0;
    exits_ept = 0;
    exits_icr = 0;
    exits_msr = 0;
    exits_io = 0;
    exits_interrupt = 0;
    exits_nmi = 0;
    exits_hlt = 0;
    exits_emul = 0;
    exits_abort = 0;
  }

let create ~vcpu ~enclave ~guest ~controls =
  {
    vcpu;
    enclave;
    guest;
    controls;
    exit_handler = None;
    launched = false;
    stats = fresh_stats ();
  }

let no_controls =
  { ept = None; msr_bitmap = None; io_bitmap = None; vapic = Vapic_off }

let note_exit t reason =
  let s = t.stats in
  s.exits_total <- s.exits_total + 1;
  match reason with
  | Ept_violation _ -> s.exits_ept <- s.exits_ept + 1
  | Icr_write _ -> s.exits_icr <- s.exits_icr + 1
  | Msr_access _ -> s.exits_msr <- s.exits_msr + 1
  | Io_access _ -> s.exits_io <- s.exits_io + 1
  | External_interrupt _ -> s.exits_interrupt <- s.exits_interrupt + 1
  | Nmi_exit -> s.exits_nmi <- s.exits_nmi + 1
  | Hlt -> s.exits_hlt <- s.exits_hlt + 1
  | Cpuid | Xsetbv -> s.exits_emul <- s.exits_emul + 1
  | Abort _ -> s.exits_abort <- s.exits_abort + 1

(* Dense arm index for the coverage map — one code per constructor, in
   declaration order, so the replay layer's coverage bitset can key on
   (arm x handler outcome) without depending on this type's shape. *)
let exit_reason_code = function
  | Ept_violation _ -> 0
  | Icr_write _ -> 1
  | Msr_access _ -> 2
  | Io_access _ -> 3
  | Cpuid -> 4
  | Xsetbv -> 5
  | Hlt -> 6
  | External_interrupt _ -> 7
  | Nmi_exit -> 8
  | Abort _ -> 9

let exit_reason_arms = 10

let exit_reason_name = function
  | Ept_violation _ -> "ept-violation"
  | Icr_write _ -> "icr-write"
  | Msr_access _ -> "msr-access"
  | Io_access _ -> "io-access"
  | Cpuid -> "cpuid"
  | Xsetbv -> "xsetbv"
  | Hlt -> "hlt"
  | External_interrupt _ -> "external-interrupt"
  | Nmi_exit -> "nmi"
  | Abort _ -> "abort"

let pp_exit_reason ppf = function
  | Ept_violation v ->
      Format.fprintf ppf "EPT-violation(gpa=%a,%s)" Addr.pp v.Ept.gpa
        (match v.Ept.reason with
        | `Not_mapped -> "not-mapped"
        | `Perm_denied -> "perm")
  | Icr_write icr -> Format.fprintf ppf "ICR-write(%a)" Apic.pp_icr icr
  | Msr_access { msr; write; _ } ->
      Format.fprintf ppf "MSR-%s(0x%x)" (if write then "write" else "read") msr
  | Io_access { port; write; _ } ->
      Format.fprintf ppf "IO-%s(0x%x)" (if write then "out" else "in") port
  | Cpuid -> Format.pp_print_string ppf "CPUID"
  | Xsetbv -> Format.pp_print_string ppf "XSETBV"
  | Hlt -> Format.pp_print_string ppf "HLT"
  | External_interrupt { vector } ->
      Format.fprintf ppf "external-interrupt(%d)" vector
  | Nmi_exit -> Format.pp_print_string ppf "NMI"
  | Abort { what } -> Format.fprintf ppf "abort(%s)" what
