type mode = Host_mode | Guest_mode of Vmcs.t

type t = {
  id : int;
  zone : Numa.zone;
  apic : Apic.t;
  tlb : Tlb.t;
  mutable tsc : int;
  mutable mode : mode;
  mutable owner : Owner.t;
  mutable online : bool;
  mutable isr : (t -> int -> unit) option;
  mutable nmi_handler : (t -> unit) option;
  mutable guest_pt : Guest_pt.t option;
}

let create ~id ~zone ~model ~rng =
  {
    id;
    zone;
    apic = Apic.create ~apic_id:id;
    tlb = Tlb.create ~model ~rng;
    tsc = 0;
    mode = Host_mode;
    owner = Owner.Host;
    online = true;
    isr = None;
    nmi_handler = None;
    guest_pt = None;
  }

let charge t cycles =
  if cycles < 0 then invalid_arg "Cpu.charge: negative";
  t.tsc <- t.tsc + cycles

let rdtsc t = t.tsc

let vmcs t = match t.mode with Host_mode -> None | Guest_mode v -> Some v
let in_guest t = Option.is_some (vmcs t)

let enclave t =
  match t.owner with
  | Owner.Enclave e -> Some e
  | Owner.Host | Owner.Device _ | Owner.Free -> None

let pp ppf t =
  Format.fprintf ppf "cpu%d[zone%d %s %s tsc=%d]" t.id t.zone
    (Owner.to_string t.owner)
    (if in_guest t then "guest" else "host")
    t.tsc
