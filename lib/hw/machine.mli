(** The simulated node.

    Assembles cores, NUMA topology, physical memory, MSR and port
    spaces into one machine and implements the access paths everything
    above runs on:

    - {b granular} loads/stores used by control paths and fault
      injection, which exercise the real TLB and EPT structures (so
      stale-TLB windows, flush ordering and EPT violations behave like
      hardware);
    - {b bulk} cost-charging used by workload kernels, which applies
      the analytic cache/TLB/EPT models (simulating 10^9 individual
      accesses would be pointless);
    - the {b interrupt} paths: IPIs (with sender-side ICR trapping and
      the three incoming-delivery modes), NMI doorbells, timer ticks;
    - trapped instructions: [wrmsr]/[rdmsr], port I/O, [cpuid],
      [xsetbv], [hlt].

    The machine also implements the {e failure model}: what wild
    accesses do when no protection intervenes.  A write landing in
    host-kernel memory panics the node ({!Node_panic}); one landing in
    another enclave marks it corrupted (a latent fault its kernel will
    eventually trip over); an exception-class IPI vector delivered to
    a foreign kernel crashes it.  Covirt's job, demonstrated by the
    integration tests, is to turn all of these into contained
    {!Vmx.Vm_terminated} events. *)

exception Node_panic of string

exception
  Guest_page_fault of { cpu_id : int; owner : Owner.t; gva : Addr.t }
(** A kernel-level page fault on the granular path: the running
    kernel's own page tables do not map the address.  This is the
    kernel's bug to handle (natively it oopses that kernel only);
    Covirt never sees it — the fault classes are disjoint by
    construction and the tests assert it. *)

type t = {
  model : Cost_model.t;
  topology : Numa.t;
  mem : Phys_mem.t;
  cores : Cpu.t array;
  msrs : Msr.t;
  ports : Io_port.t;
  trace : Covirt_sim.Trace.t;
  rng : Covirt_sim.Rng.t;
  corrupted : (int, string) Hashtbl.t;  (** enclave id -> cause *)
  mutable wild_reads : int;
  mutable spurious_ipis : int;
  mutable panicked : string option;
  background_streamers_by_zone : int array;
  charge_memo : Charge_memo.t;
      (** memoized per-line/per-op bulk charge costs; see
          {!Charge_memo} for the invalidation key *)
  mutable bg_gen : int;
      (** bumped by {!set_background_streamers} — part of the memo key *)
  zone_shares : int array;
      (** preallocated per-zone byte-share scratch for the cold charge
          formulas (one slot per NUMA zone) — machines are shard-local,
          so reusing it keeps the bulk-charge path allocation-free *)
}

val create :
  ?model:Cost_model.t ->
  ?seed:int ->
  ?host_reserved_per_zone:int ->
  zones:int ->
  cores_per_zone:int ->
  mem_per_zone:int ->
  unit ->
  t
(** Defaults: the paper's testbed shape is [create ~zones:2
    ~cores_per_zone:4 ~mem_per_zone:32GiB ()]; tests use smaller
    machines.  [host_reserved_per_zone] defaults to 512 MiB. *)

val cpu : t -> int -> Cpu.t
val ncores : t -> int

(* Granular accesses (control paths, fault injection). *)

val load : t -> Cpu.t -> Addr.t -> unit
val store : t -> Cpu.t -> Addr.t -> unit

(* Bulk cost charging (workload kernels). *)

val charge_stream :
  t -> Cpu.t -> base:Addr.t -> bytes:int -> sharers:int ->
  page_size:Addr.page_size -> unit
(** Sequential sweep over [\[base, base+bytes)], with [sharers] cores
    concurrently streaming from the data's zone.  NUMA locality is
    derived from the address range vs the core's zone. *)

val charge_random :
  t -> Cpu.t -> ops:int -> base:Addr.t -> working_set:int -> sharers:int ->
  page_size:Addr.page_size -> unit
(** [ops] independent 8-byte accesses uniform over
    [\[base, base+working_set)]. *)

val charge_flops : t -> Cpu.t -> int -> unit

val set_background_streamers : t -> zone:Numa.zone -> int -> unit
(** Declare standing memory-bandwidth pressure in a zone (e.g. host
    daemons, a co-tenant's streaming phase).  Bulk charges in that
    zone see the extra contenders on top of the caller's own
    [sharers].  The partitioning story this makes measurable: pressure
    in the {e other} zone costs an enclave nothing. *)

val background_streamers : t -> zone:Numa.zone -> int

val translation_extra_per_miss : t -> Cpu.t -> probe:Addr.t -> float
(** Per-TLB-miss translation cycles beyond the native walk, as decided
    by the core's current mode and VMCS controls (guest tax, EPT walk
    by page size at [probe], APIC-virtualization tax).  Exposed for
    tests and the analytic docs; the bulk paths use it internally. *)

val check_range :
  t -> Cpu.t -> base:Addr.t -> len:int -> access:[ `Read | `Write ] -> unit
(** Bulk containment check a workload performs when it first touches a
    buffer: under EPT, an uncovered range triggers an EPT-violation
    exit exactly like a granular access would. *)

(* Trapped instructions. *)

val rdmsr : t -> Cpu.t -> int -> int64
val wrmsr : t -> Cpu.t -> int -> int64 -> unit
val inb : t -> Cpu.t -> int -> int
val outb : t -> Cpu.t -> int -> int -> unit
val cpuid : t -> Cpu.t -> unit
val xsetbv : t -> Cpu.t -> unit
val hlt : t -> Cpu.t -> unit
val raise_abort : t -> Cpu.t -> what:string -> unit
(** A double-fault-class abort on the core: natively this is fatal to
    the whole node (the handler state is gone); under Covirt it exits
    and the enclave is terminated. *)

(* Interrupts. *)

val send_ipi : t -> from:Cpu.t -> dest:int -> vector:int ->
  kind:Apic.ipi_kind -> unit

val post_host_nmi : t -> dest:int -> unit
(** Host-side NMI doorbell (the controller's command-queue signal). *)

val timer_tick : t -> Cpu.t -> unit
(** One local-APIC timer expiry on the core, with mode-dependent
    delivery cost. *)

val deliver_external_irq : t -> dest:int -> vector:int -> unit
(** A hardware device interrupt (MSI) aimed at a core.  Like the timer
    — and unlike IPIs — external interrupts exit even under posted
    interrupts ("it still requires exits for all external interrupts
    generated by hardware devices"); natively and with APIC
    virtualization off they are delivered directly. *)

val timer_tick_cost : t -> Cpu.t -> int
(** Cycles one tick costs the core in its current mode (used by the
    analytic noise model). *)

(* Failure model observability. *)

val is_corrupted : t -> enclave:int -> string option
val mark_corrupted : t -> enclave:int -> cause:string -> unit
val panicked : t -> string option
