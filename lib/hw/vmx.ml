exception
  Vm_terminated of { cpu_id : int; enclave : int; reason : string }

(* Record tap: the replay recorder (lib/replay) observes every
   delivered exit through this hook.  Same contract as the obs and
   sanitizer hooks — one [!tap_on] branch when disarmed, and the tap
   itself never charges simulated cycles, so a recorded run is
   byte-identical to an unrecorded one. *)
let tap_on = ref false
let exit_tap : (Cpu.t -> Vmcs.t -> Vmcs.exit_reason -> unit) ref =
  ref (fun _ _ _ -> ())

(* Coverage tap: the replay fuzzer's guidance observes every
   (exit-reason arm, handler outcome) edge through this hook.  Same
   zero-cost contract as [exit_tap]: one [!cov_on] branch when
   disarmed, and the tap never charges simulated cycles or draws
   randomness, so an armed run stays byte-identical. *)
let cov_on = ref false
let cov_exit_tap : (int -> int -> unit) ref = ref (fun _ _ -> ())

let vmlaunch ~model cpu vmcs =
  if Cpu.in_guest cpu then invalid_arg "Vmx.vmlaunch: already in guest mode";
  Cpu.charge cpu Cost_model.(model.vmcs_load + model.vmlaunch);
  vmcs.Vmcs.launched <- true;
  cpu.Cpu.mode <- Cpu.Guest_mode vmcs

let vmexit_cost ~model = Cost_model.(model.vmexit_roundtrip + model.exit_dispatch)

let deliver_exit ~model cpu vmcs reason =
  let t0 = cpu.Cpu.tsc in
  Cpu.charge cpu (vmexit_cost ~model);
  Vmcs.note_exit vmcs reason;
  (* Tap before the handler runs so killed exits are recorded too. *)
  if !tap_on then !exit_tap cpu vmcs reason;
  let action =
    match vmcs.Vmcs.exit_handler with
    | Some handler -> handler reason
    | None ->
        (* No hypervisor: nothing can make progress safely. *)
        Vmcs.Kill { reason = "no exit handler installed" }
  in
  (* Coverage edge: reason arm x what the handler decided.  Observed
     before acting so killed exits contribute their edge too. *)
  if !cov_on then
    !cov_exit_tap
      (Vmcs.exit_reason_code reason)
      (match action with
      | Vmcs.Resume -> 0
      | Vmcs.Skip -> 1
      | Vmcs.Kill _ -> 2);
  (* Record before acting so killed exits are attributed too.  Guarded
     observation only: no simulated cycles move here. *)
  if !Covirt_obs.Metrics.on || !Covirt_obs.Exporter.on then
    Covirt_obs.Vmexit.record ~enclave:vmcs.Vmcs.enclave ~cpu:cpu.Cpu.id
      ~reason:(Vmcs.exit_reason_name reason) ~t0 ~t1:cpu.Cpu.tsc;
  match action with
  | Vmcs.Kill { reason = why } ->
      cpu.Cpu.online <- false;
      raise
        (Vm_terminated
           { cpu_id = cpu.Cpu.id; enclave = vmcs.Vmcs.enclave; reason = why })
  | Vmcs.Resume -> `Resume
  | Vmcs.Skip -> `Skip

let teardown cpu =
  cpu.Cpu.mode <- Cpu.Host_mode;
  cpu.Cpu.online <- true
