(** Memo table for the bulk charge models.

    The per-line / per-op float cost that [Machine.charge_stream] and
    [Machine.charge_random] derive is a pure function of the fields in
    {!key}: the access shape, the caller's NUMA zone, and a
    fingerprint of everything the translation tax can see — the CPU's
    execution mode, the EPT's identity and generation, the
    APIC-virtualization state, and the machine's background-streamer
    generation.  Caching it turns the per-call cost into one hash
    probe while producing bit-identical charges (the cached float is
    the same float the formula would recompute).

    The table is bounded; overflowing it resets the memo (correctness
    never depends on retention). *)

type mode = Host | Guest of { ept : (int * int) option; vapic : bool }

type key = {
  kind : [ `Stream | `Random ];
  zone : int;
  base : Addr.t;
  len : int;  (** bytes streamed, or the random working set *)
  sharers : int;
  page_size : Addr.page_size;
  mode : mode;
  bg_gen : int;  (** background-streamer configuration generation *)
}

type t

val create : unit -> t
val find : t -> key -> float option
val store : t -> key -> float -> unit
val stats : t -> int * int
(** [(hits, misses)]. *)
