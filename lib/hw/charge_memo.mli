(** Memo table for the bulk charge models.

    The per-line / per-op float cost that [Machine.charge_stream] and
    [Machine.charge_random] derive is a pure function of the fields in
    {!key}: the access shape, the caller's NUMA zone, and a
    fingerprint of everything the translation tax can see — the CPU's
    execution mode, the EPT's identity and generation, the
    APIC-virtualization state, and the machine's background-streamer
    generation.  Caching it turns the per-call cost into one hash
    probe while producing bit-identical charges (the cached float is
    the same float the formula would recompute).

    The key is deliberately {e flat}: every field is an immediate int,
    with the old [mode] variant unpacked into [mode]/[ept_uid]/
    [ept_gen] sentinels.  Each memo owns one preallocated {!scratch}
    key; the caller mutates its fields in place and {!probe}s, so a
    warm charge performs zero minor allocation (asserted by the bench
    allocation gate).  Only a {!commit} — the cold path — copies the
    scratch into a fresh stored key.

    The table is bounded; overflowing it resets the memo (correctness
    never depends on retention). *)

type key = {
  mutable kind : int;  (** 0 = stream, 1 = random *)
  mutable zone : int;
  mutable base : Addr.t;
  mutable len : int;  (** bytes streamed, or the random working set *)
  mutable sharers : int;
  mutable page : int;  (** [Addr.page_size_code] *)
  mutable mode : int;  (** 0 = host; 1 = guest; 2 = guest + vapic *)
  mutable ept_uid : int;  (** [-1] when no EPT is active *)
  mutable ept_gen : int;  (** [0] when no EPT is active *)
  mutable bg_gen : int;  (** background-streamer configuration generation *)
}

type t

val create : unit -> t

val scratch : t -> key
(** The memo's preallocated probe key.  Mutate every field, then
    {!probe}.  Never retained by the table. *)

val probe : t -> float
(** Look up the current {!scratch} contents; raises [Not_found] on a
    miss (a constant exception — the warm hit path allocates
    nothing).  Counts a hit or a miss either way. *)

val commit : t -> float -> unit
(** Store the value under a {e copy} of the current scratch key (the
    cold path after a {!probe} miss). *)

val stats : t -> int * int
(** [(hits, misses)]. *)
