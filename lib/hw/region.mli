(** Half-open physical memory regions [\[base, base+len)].

    Regions are the currency of resource assignment: Pisces assigns
    them to enclaves, XEMEM shares them between enclaves, and the
    Covirt controller maps and unmaps them in EPTs.  The [Set]
    submodule maintains a normalised (sorted, coalesced) set of
    disjoint regions — the representation used for both enclave memory
    maps and EPT region indexes. *)

type t = { base : Addr.t; len : int }

val make : base:Addr.t -> len:int -> t
(** Raises [Invalid_argument] if [len <= 0] or [base < 0]. *)

val last : t -> Addr.t
(** Last byte address contained, i.e. [base + len - 1]. *)

val limit : t -> Addr.t
(** One past the end: [base + len]. *)

val contains : t -> Addr.t -> bool
val contains_range : t -> base:Addr.t -> len:int -> bool
val overlaps : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
(** Orders by base, then length. *)

val pp : Format.formatter -> t -> unit

module Set : sig
  type region = t
  type t

  val empty : t
  val of_list : region list -> t
  (** Overlapping inputs are unioned. *)

  val to_list : t -> region list
  (** Disjoint, sorted, maximally coalesced. *)

  val add : t -> region -> t
  val remove : t -> region -> t
  (** Punch a hole; removing unmapped space is a no-op. *)

  val mem : t -> Addr.t -> bool
  val mem_range : t -> base:Addr.t -> len:int -> bool
  (** Whole range covered (possibly spanning several contiguous
      regions — coalescing makes this a single lookup). *)

  val find : t -> Addr.t -> region option
  val total_bytes : t -> int
  val is_empty : t -> bool
  val cardinal : t -> int
  val inter : t -> t -> t
  val union : t -> t -> t
  val diff : t -> t -> t
  val iter : (region -> unit) -> t -> unit
  val fold : ('a -> region -> 'a) -> 'a -> t -> 'a
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
