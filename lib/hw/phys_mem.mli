(** Host physical memory map: ownership and allocation.

    Tracks which owner holds each region of physical memory, supports
    contiguous NUMA-aware allocation (Kitten's memory policy demands
    physically contiguous blocks), and answers the "whose memory is
    this?" question the fault-injection machinery needs.  A slice of
    the top of the address space is reserved as device MMIO windows. *)

type t

val create : topology:Numa.t -> host_reserved_per_zone:int -> t
(** The host OS keeps [host_reserved_per_zone] bytes at the bottom of
    each zone (kernel text/data — writing there from an enclave is the
    node-killing fault); the rest starts [Free]. *)

val topology : t -> Numa.t

val uid : t -> int
(** Unique per [create]d map — the shadow sanitizer keys its mirror by
    this, so hooks from other machines are ignored. *)

val snapshot : t -> (Region.t * Owner.t) list
(** Every current assignment (disjoint, unsorted) — seeds the shadow
    sanitizer and backs the static verifier's cross-check. *)

val alloc :
  t -> owner:Owner.t -> zone:Numa.zone -> len:int -> (Region.t, string) result
(** Carve a contiguous, 2M-aligned block out of free memory in the
    zone and assign it. *)

val assign : t -> owner:Owner.t -> Region.t -> (unit, string) result
(** Explicitly assign a free region (must be entirely free). *)

val release : t -> Region.t -> unit
(** Return a region to the free pool, whoever owned it. *)

val owner_at : t -> Addr.t -> Owner.t
(** Device MMIO windows report [Device]; out-of-range addresses are
    also treated as device space (the machine maps MMIO above DRAM). *)

val owned_by : t -> Owner.t -> Region.Set.t
val free_bytes : t -> zone:Numa.zone -> int

val add_device : t -> name:string -> len:int -> Region.t
(** Register an MMIO window above DRAM; returns its region. *)

val find_device : t -> name:string -> Region.t option
(** The window registered under [name], whoever currently owns it. *)

val chown : t -> Region.t -> Owner.t -> unit
(** Transfer ownership of a region unconditionally (device
    delegation / reclamation — the framework has already validated the
    operation). *)

val mmio_base : t -> Addr.t
val pp : Format.formatter -> t -> unit
