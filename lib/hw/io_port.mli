(** Legacy I/O port space.

    Co-kernels touch a handful of ports (PIC, PIT, serial); errant
    port I/O can reprogram devices owned by another OS/R.  Covirt's
    I/O protection points the VMCS at a port bitmap so guest port
    accesses trap. *)

type t

val pic_master_cmd : int
val pit_channel0 : int
val serial_com1 : int
val reset_port : int
(** Port 0xCF9 — writing 0x6 here hard-resets the node; the canonical
    catastrophic port fault. *)

val create : unit -> t
val read : t -> int -> int
val write : t -> int -> int -> unit

module Bitmap : sig
  type t

  val create : unit -> t
  val protect : t -> int -> unit
  val protect_range : t -> lo:int -> hi:int -> unit
  val is_protected : t -> int -> bool
  val default_sensitive : unit -> t
  (** PIC, PIT and reset ports. *)
end
