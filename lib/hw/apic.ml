type ipi_kind = Fixed | Nmi | Init | Startup

type icr = { dest : int; vector : int; kind : ipi_kind }

type t = {
  apic_id : int;
  irr : bool array; (* 256 vectors *)
  pir : bool array;
  mutable nmi_pending : bool;
  mutable timer_hz : float;
  mutable sent : int;
}

let create ~apic_id =
  {
    apic_id;
    irr = Array.make 256 false;
    pir = Array.make 256 false;
    nmi_pending = false;
    timer_hz = 0.0;
    sent = 0;
  }

let apic_id t = t.apic_id

let check_vector vector =
  if vector < 0 || vector > 255 then invalid_arg "Apic: bad vector"

let raise_irr t ~vector =
  check_vector vector;
  t.irr.(vector) <- true

let ack_highest t =
  let rec scan v = if v < 0 then None else if t.irr.(v) then Some v else scan (v - 1) in
  match scan 255 with
  | None -> None
  | Some v ->
      t.irr.(v) <- false;
      Some v

let irr_pending t ~vector =
  check_vector vector;
  t.irr.(vector)

let pending_count t = Array.fold_left (fun n b -> if b then n + 1 else n) 0 t.irr

let pending_vectors t =
  let acc = ref [] in
  for v = 255 downto 0 do
    if t.irr.(v) then acc := v :: !acc
  done;
  !acc

let pir_post t ~vector =
  check_vector vector;
  t.pir.(vector) <- true

let pir_drain t =
  let acc = ref [] in
  for v = 255 downto 0 do
    if t.pir.(v) then begin
      t.pir.(v) <- false;
      acc := v :: !acc
    end
  done;
  !acc

let pir_outstanding t = Array.exists Fun.id t.pir

let raise_nmi t = t.nmi_pending <- true

let take_nmi t =
  let was = t.nmi_pending in
  t.nmi_pending <- false;
  was

let set_timer_hz t hz =
  if hz < 0.0 then invalid_arg "Apic.set_timer_hz";
  t.timer_hz <- hz

let timer_hz t = t.timer_hz
let ipis_sent t = t.sent
let note_ipi_sent t = t.sent <- t.sent + 1

let pp_icr ppf { dest; vector; kind } =
  let kind_s =
    match kind with
    | Fixed -> "fixed"
    | Nmi -> "nmi"
    | Init -> "init"
    | Startup -> "startup"
  in
  Format.fprintf ppf "ICR{dest=%d vec=%d %s}" dest vector kind_s
