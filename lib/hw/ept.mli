(** Extended (nested) page tables.

    A sparse 4-level radix table mapping guest-physical to
    host-physical addresses.  Covirt builds identity maps, so leaves
    record permissions and page size rather than a remapped target.
    Contiguous ranges are coalesced into 2M and 1G leaves whenever
    alignment allows ([max_page] caps this for the coalescing
    ablation); partially unmapping a large leaf splits it into smaller
    pages, as a real EPT manager must.

    A [Region.Set] index mirrors the radix structure for O(regions)
    bulk containment checks on the workload fast path; the radix table
    is authoritative and the two are kept consistent (validated by
    property tests).

    Two host-side caches accelerate the hot read paths without
    changing any result:

    - a {e paging-structure walk cache} memoizing how each 2M-aligned
      GPA window resolves (a uniform >=2M leaf / unmapped, or its
      level-1 PT node), so a warm [translate] is one or two hash
      probes instead of a four-level descent;
    - a [covers] memo keyed by [(base, len)].

    Both are invalidated wholesale by the generation counter — the
    [entry_writes] tally, which every leaf install and removal bumps —
    so cached answers are always those the uncached walk would give
    (asserted by a property test over random map/unmap/access
    sequences). *)

type perms = { read : bool; write : bool; exec : bool }
(** Leaf permissions. *)

val rwx : perms
(** Read + write + execute — the identity-map default. *)

val ro : perms
(** Read-only. *)

type violation = {
  gpa : Addr.t;  (** the faulting guest-physical address *)
  access : [ `Read | `Write | `Exec ];  (** what the guest attempted *)
  reason : [ `Not_mapped | `Perm_denied ];
      (** no translation at all, vs a translation without the needed
          permission *)
}
(** An EPT violation — the payload of the corresponding VM exit. *)

type t
(** One nested page table (one per enclave). *)

val create : ?max_page:Addr.page_size -> ?walk_cache:bool -> unit -> t
(** [max_page] defaults to [Page_1g].  [walk_cache] (default [true])
    disables the paging-structure walk cache when [false] — the
    reference configuration the equivalence property tests and the
    cold-walk benchmarks compare against. *)

val max_page : t -> Addr.page_size
(** The largest leaf size coalescing may produce for this table. *)

val uid : t -> int
(** Unique per [create]d table — lets callers key their own memos by
    EPT identity. *)

val generation : t -> int
(** Mapping generation: advances whenever any leaf is installed or
    removed (it is the [entry_writes] counter).  Anything cached
    against a generation is still valid iff the generation is
    unchanged. *)

val walk_cache_stats : t -> int * int
(** [(hits, misses)] of the walk cache — observability for tests and
    benchmarks; [(0, 0)] forever when the cache is disabled. *)

val cov_on : bool ref
(** Arms {!cov_tap}.  Do not flip directly — the [covirt.replay]
    coverage collector owns it, reference-counted across domains.  One
    branch per walk/violation when off. *)

val cov_tap : (int -> unit) ref
(** Called while [cov_on] with the walk-branch class taken: 0
    walk-cache hit, 1 walk-cache fill, 2 uncached walk, 3 PT-slot hit,
    4 PT-slot fill, 5 violation/not-mapped, 6 violation/perm-denied.
    The tap must not allocate, charge cycles or draw randomness —
    arming leaves the zero-GC warm path and any recorded transcript
    byte-identical. *)

val map_region : t -> ?perms:perms -> Region.t -> unit
(** Identity-map a page-aligned region (base and length must be
    4K-aligned; [Invalid_argument] otherwise).  Remapping an
    already-mapped range updates permissions. *)

val unmap_region : t -> Region.t -> unit
(** Unmap; unmapped space inside the range is ignored.  Large leaves
    straddling the boundary are split. *)

val translate : t -> Addr.t -> access:[ `Read | `Write | `Exec ] ->
  (Addr.page_size, violation) result
(** Hardware-walk one address: the leaf's page size on success (the
    caller derives walk depth via {!walk_levels}), a {!violation}
    otherwise.  Allocates the [result] wrapper; hot callers use
    {!translate_code} instead. *)

val translate_code : t -> Addr.t -> access:[ `Read | `Write | `Exec ] -> int
(** The allocation-free walk: [Addr.page_size_code] of the leaf on
    success (non-negative), {!not_mapped_code} or {!perm_denied_code}
    on failure.  Identical walk, cache and observability behaviour to
    {!translate} — a warm call (walk-cache hit) performs zero minor
    allocation, asserted by the bench allocation gate. *)

val not_mapped_code : int
(** [-1]: {!translate_code}'s "no translation at all". *)

val perm_denied_code : int
(** [-2]: {!translate_code}'s "translation without the permission". *)

val violation_of_code :
  int -> Addr.t -> access:[ `Read | `Write | `Exec ] -> violation
(** Rebuild the {!violation} a failing {!translate_code} stands for —
    called only on the cold exit-delivery path. *)

val covers : t -> base:Addr.t -> len:int -> bool
(** Bulk check: the whole range is mapped (permissions not checked —
    Covirt maps everything RWX, violations are containment events). *)

val page_size_at : t -> Addr.t -> Addr.page_size option
(** Size of the leaf mapping this address, [None] if unmapped. *)

val fold_leaves :
  t ->
  init:'a ->
  f:('a -> base:Addr.t -> page_size:Addr.page_size -> perms:perms -> 'a) ->
  'a
(** Fold over every live leaf in ascending GPA order, by walking the
    radix structure itself (not the index) — so an offline verifier
    cross-checks exactly what the hardware would translate. *)

val regions : t -> Region.Set.t
(** The mapped set, from the index. *)

val leaf_counts : t -> int * int * int
(** [(n4k, n2m, n1g)] live leaves — footprint/coalescing metric. *)

val entry_writes : t -> int
(** Total leaf installs+removals performed; the controller charges
    [Cost_model.ept_entry_update] per write. *)

val walk_levels : Addr.page_size -> int
(** Levels touched by a hardware walk ending at a leaf of this size:
    1G leaf -> 2, 2M -> 3, 4K -> 4. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: the mapped region set and per-size leaf counts. *)
