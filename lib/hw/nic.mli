(** A simulated NIC: the device half of MMIO delegation.

    A minimal but complete device model for driving the
    device-passthrough path end to end: a register window (doorbell,
    status and MSI-binding registers at fixed offsets), a TX path the
    driver rings through an MMIO store, and an RX path where "hardware"
    raises an MSI at whatever core/vector the driver programmed.

    The protection story: the window is delegated through
    {!Covirt_pisces.Pisces.assign_device}, driver register writes
    are plain guest stores policed by the EPT, and RX interrupts are
    external interrupts — which exit even under posted-interrupt
    delivery, exactly like the local APIC timer. *)

type t

val doorbell_offset : int
val msi_vector_offset : int

val create : Machine.t -> name:string -> t
(** Registers the MMIO window with the machine's physical memory map
    (64 KiB BAR). *)

val name : t -> string
val window : t -> Region.t

val bind_msi : t -> core:int -> vector:int -> unit
(** What the driver's write to the MSI registers means: subsequent RX
    events interrupt [core] at [vector]. *)

val ring_tx : Machine.t -> Cpu.t -> t -> unit
(** Driver side: store to the doorbell register (a guest MMIO write
    through the full translation path) and count a transmitted
    frame. *)

val inject_rx : Machine.t -> t -> (unit, string) result
(** Hardware side: a frame arrived; raise the bound MSI.  Fails if the
    driver never bound one. *)

val tx_count : t -> int
val rx_count : t -> int
