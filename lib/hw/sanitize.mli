(** Shadow ownership sanitizer — the hw half of [covirt.analysis].

    An opt-in runtime mode (ASan-style) that mirrors every [Phys_mem]
    ownership event, [Ept] entry write, TLB install and translated
    access into a compact shadow ownership map, and flags the instant
    an access crosses an ownership boundary or lands in a freed
    region.

    Contract (the same one [lib/obs] keeps): each instrumented site
    tests the single [!on] branch and does nothing else when the mode
    is off; enabling it never charges simulated cycles and leaves the
    golden transcript byte-identical ([test/test_analysis.ml] enforces
    this).

    Layering: this module depends only on {!Addr} / {!Region} /
    {!Owner}, so every other hw module may feed it.  Policy — which
    enclave may touch what — flows {e down} from the controller via
    {!note_enclave} / {!allow} / {!disallow}, exactly as upward-visible
    data flows into [lib/obs].

    Domains: the [on] / {!request} switches are shared (write them
    only before spawning a fleet or after joining it), but the armed
    shadow state, the cumulative {!violation_count} and the
    {!set_on_violation} callback are per-domain — each fleet shard's
    controller arms the sanitizer for its own machine without touching
    the shards running beside it. *)

type access = [ `Read | `Write | `Exec ]

type kind =
  | Cross_owner of { actual : Owner.t }
      (** touched memory the shadow map assigns to someone else *)
  | Freed_access  (** touched memory the shadow map marks free *)
  | Corrupt_mapping of { actual : Owner.t }
      (** an EPT leaf was installed over memory the enclave does not
          own — flagged at write time, before any access *)

type source = Access | Ept_write | Tlb_install

type violation = {
  owner : Owner.t;  (** who performed the operation *)
  enclave : int;  (** its enclave id *)
  cpu : int;  (** faulting core, [-1] for non-access events *)
  addr : Addr.t;  (** start of the offending range *)
  len : int;  (** its length in bytes *)
  kind : kind;
  source : source;
}

val pp_violation : Format.formatter -> violation -> unit
(** One-line rendering, e.g.
    ["access by enclave#2 cpu3 at 0x40000000+8: freed-region access"]. *)

(** {1 Switches} *)

val on : bool ref
(** The single branch hot paths test.  Do not set directly — use
    {!enable} / {!disable} (or {!request} plus a controller attach). *)

val cov_on : bool ref
(** Arms {!cov_tap}.  Do not flip directly — the [covirt.replay]
    coverage collector owns it, reference-counted across domains.  One
    branch per reported violation when off. *)

val cov_tap : (int -> unit) ref
(** Called while [cov_on] with the violation-kind code of every
    reported violation: 0 cross-owner, 1 freed-access, 2
    corrupt-mapping.  Must never charge simulated cycles or draw
    randomness — arming keeps runs byte-identical. *)

val request : unit -> unit
(** Sticky opt-in: the next controller attach arms the shadow state
    for its machine.  Harnesses call this before building a stack. *)

val requested : unit -> bool
(** Whether {!request} is pending ([Config.sanitize] also sets it). *)

val release : unit -> unit
(** Clear the request and tear down this domain's shadow state. *)

val enable : mem_uid:int -> assignments:(Region.t * Owner.t) list -> unit
(** Arm the shadow map for the machine whose [Phys_mem] has [mem_uid],
    seeding it from a {!Phys_mem.snapshot}.  Called by the controller;
    only events for that machine are mirrored afterwards. *)

val disable : unit -> unit
(** Drop this domain's shadow state and callback.  [on] only falls
    back to [false] when no sticky {!request} is pending — another
    domain's shard may still be armed under it. *)

val active : unit -> bool
(** [!on], as a function. *)

val set_on_violation : (violation -> unit) -> unit
(** Install this domain's violation callback, invoked synchronously
    for every violation (the controller turns these into non-fatal
    [Fault_report]s).  Reset by {!disable}. *)

(** {1 Controller-facing feeds} *)

val note_enclave : id:int -> Region.t list -> unit
(** Declare the blessed set for enclave [id] (its accessible memory,
    shared windows and device BARs), replacing any previous set. *)

val note_ept : ept_uid:int -> id:int -> unit
(** Associate an EPT (by {!Ept.uid}) with its owning enclave, so leaf
    installs can be checked against the right blessed set. *)

val allow : id:int -> Region.t -> unit
(** Extend enclave [id]'s blessed set (hot-add, XEMEM attach, device
    delegation). *)

val disallow : id:int -> Region.t -> unit
(** Shrink it (memory removal, XEMEM detach, device revocation). *)

val drop_enclave : id:int -> unit
(** Forget enclave [id] entirely (enclave destroyed). *)

(** {1 Hw-facing hooks — call only under [if !on]} *)

val phys_event : mem_uid:int -> Region.t -> Owner.t -> unit
(** Mirror a [Phys_mem] ownership change: [region] now belongs to the
    given owner ([Free] on release). *)

val access :
  mem_uid:int -> cpu:int -> owner:Owner.t -> base:Addr.t -> len:int ->
  access:access -> unit
(** Check one translated access by the core owned by [owner].  Flags
    {!Cross_owner} / {!Freed_access} when the range leaves the blessed
    set; host cores and unmanaged enclaves are never flagged. *)

val ept_write : ept_uid:int -> base:Addr.t -> len:int -> present:bool -> unit
(** Mirror an EPT map ([present = true]) or unmap event.  A mapping
    outside the owner's blessed set is flagged as {!Corrupt_mapping}
    at install time — before any guest access touches it. *)

val tlb_install : Addr.t -> page_size:int -> unit
(** Count a TLB fill (kept for the stats surface; fills are already
    covered by the access check). *)

(** {1 Introspection} *)

val violations : unit -> violation list
(** Violations recorded since {!enable}, oldest first (capped at 512;
    the count keeps incrementing past the cap). *)

val violation_count : unit -> int
(** Cumulative violations across enables in this domain — campaigns
    diff this per trial (each trial runs wholly inside one shard, so
    the delta is well-defined). *)

type stats = {
  accesses : int;  (** translated accesses checked *)
  ept_writes : int;  (** EPT map/unmap events mirrored *)
  tlb_installs : int;  (** TLB fills mirrored *)
}

val stats : unit -> stats
(** Mirroring counters for the current shadow state (zeros when off). *)
