type perms = { read : bool; write : bool; exec : bool }

let rwx = { read = true; write = true; exec = true }
let ro = { read = true; write = false; exec = true }

type violation = {
  gpa : Addr.t;
  access : [ `Read | `Write | `Exec ];
  reason : [ `Not_mapped | `Perm_denied ];
}

(* The radix is indexed by 9-bit slices of the guest-physical address:
   level 4 = PML4 (512G per entry), 3 = PDPT (1G), 2 = PD (2M),
   1 = PT (4K).  Leaves may sit at levels 3 (1G), 2 (2M) and 1 (4K). *)

type node = { entries : (int, entry) Hashtbl.t }
and entry = Table of node | Leaf of { page_size : Addr.page_size; perms : perms }

(* Paging-structure walk cache: what the hardware's PDE/PDPTE caches
   buy a real walker.  Direct-mapped by the 2M-aligned window of the
   GPA; a window resolves either uniformly (a >=2M leaf, or nothing
   mapped at that level) or through its level-1 PT node, in which case
   the per-4K answers are themselves resolved lazily into a 512-slot
   array — a warm lookup is two array reads and an int compare, no
   hashing.  The cache carries the [writes] counter it was filled
   under and self-invalidates wholesale when any leaf is installed or
   removed. *)
type walk_entry =
  | Uniform of (Addr.page_size * perms) option
  | Pt of {
      node : node;
      slots : (Addr.page_size * perms) option option array;
          (* outer option: slot not resolved yet; inner: the walk's
             answer for that 4K page, including "unmapped" *)
    }

type wslot = { mutable wkey : int; mutable wentry : walk_entry }

let walk_cache_slots = 1024

type t = {
  uid : int;
  root : node;
  max_page : Addr.page_size;
  mutable index : Region.Set.t;
  mutable writes : int;
  mutable n4k : int;
  mutable n2m : int;
  mutable n1g : int;
  walk_cache : wslot array option;
  mutable walk_cache_gen : int;
  mutable walk_hits : int;
  mutable walk_misses : int;
  covers_cache : (int * int, bool) Hashtbl.t;
  mutable covers_cache_gen : int;
}

(* Atomic: EPTs are created concurrently by fleet shards, and the uid
   keys per-domain sanitizer/memo tables — a duplicated uid would
   alias two machines' state. *)
let next_uid = Atomic.make 0

let create ?(max_page = Addr.Page_1g) ?(walk_cache = true) () =
  {
    uid = 1 + Atomic.fetch_and_add next_uid 1;
    root = { entries = Hashtbl.create 16 };
    max_page;
    index = Region.Set.empty;
    writes = 0;
    n4k = 0;
    n2m = 0;
    n1g = 0;
    walk_cache =
      (if walk_cache then
         Some
           (Array.init walk_cache_slots (fun _ ->
                { wkey = -1; wentry = Uniform None }))
       else None);
    walk_cache_gen = 0;
    walk_hits = 0;
    walk_misses = 0;
    covers_cache = Hashtbl.create 32;
    covers_cache_gen = 0;
  }

let max_page t = t.max_page
let uid t = t.uid
let generation t = t.writes
let walk_cache_stats t = (t.walk_hits, t.walk_misses)

let level_shift = function 4 -> 39 | 3 -> 30 | 2 -> 21 | 1 -> 12 | _ -> assert false
let slice addr level = (addr lsr level_shift level) land 0x1ff

let page_size_of_level = function
  | 3 -> Addr.Page_1g
  | 2 -> Addr.Page_2m
  | 1 -> Addr.Page_4k
  | _ -> assert false

let level_of_page_size = function
  | Addr.Page_1g -> 3
  | Addr.Page_2m -> 2
  | Addr.Page_4k -> 1

let count_delta t page_size d =
  match page_size with
  | Addr.Page_4k -> t.n4k <- t.n4k + d
  | Addr.Page_2m -> t.n2m <- t.n2m + d
  | Addr.Page_1g -> t.n1g <- t.n1g + d

(* Install a leaf of [page_size] covering [addr] (which must be
   aligned).  Any leaf already present at exactly that slot is
   replaced; the caller is responsible for never asking to overwrite a
   Table with a Leaf (map_region splits work so that cannot happen for
   well-formed inputs). *)
let install_leaf t addr ~page_size ~perms =
  let target_level = level_of_page_size page_size in
  let rec descend node level =
    if level = target_level then begin
      let idx = slice addr level in
      (match Hashtbl.find_opt node.entries idx with
      | Some (Leaf l) -> count_delta t l.page_size (-1)
      | Some (Table _) ->
          (* Mapping a large page over an existing finer table: drop
             the subtree.  Count removal of its leaves. *)
          let rec drop n =
            Hashtbl.iter
              (fun _ e ->
                match e with
                | Leaf l -> count_delta t l.page_size (-1)
                | Table n' -> drop n')
              n.entries
          in
          (match Hashtbl.find_opt node.entries idx with
          | Some (Table n) -> drop n
          | Some (Leaf _) | None -> ())
      | None -> ());
      Hashtbl.replace node.entries idx (Leaf { page_size; perms });
      count_delta t page_size 1;
      t.writes <- t.writes + 1
    end
    else
      let idx = slice addr level in
      let child =
        match Hashtbl.find_opt node.entries idx with
        | Some (Table n) -> n
        | Some (Leaf _) ->
            (* A larger leaf covers this range already; splitting is
               handled by unmap/split paths, and map_region only emits
               aligned chunks, so reaching here means the caller remaps
               inside an existing large page.  Split it. *)
            assert false
        | None ->
            let n = { entries = Hashtbl.create 16 } in
            Hashtbl.replace node.entries idx (Table n);
            n
      in
      descend child (level - 1)
  in
  descend t.root 4

(* Bulk-fill one whole 2M window with 512 identity 4K leaves.  The
   dense path map_region takes when coalescing is capped below 2M;
   equivalent to 512 install_leaf calls into an empty window (counts
   and [writes] advance identically) without re-descending from the
   root per page or growing a 16-bucket table 512 times. *)
let install_pt_window t addr ~perms =
  let rec descend node level =
    if level = 2 then begin
      let idx = slice addr 2 in
      let child =
        match Hashtbl.find_opt node.entries idx with
        | Some (Table n) -> n
        | Some (Leaf _) -> assert false (* map_region cleared overlaps *)
        | None ->
            let n = { entries = Hashtbl.create 512 } in
            Hashtbl.replace node.entries idx (Table n);
            n
      in
      for i = 0 to 511 do
        (match Hashtbl.find_opt child.entries i with
        | Some (Leaf l) -> count_delta t l.page_size (-1)
        | Some (Table _) -> assert false
        | None -> ());
        Hashtbl.replace child.entries i (Leaf { page_size = Addr.Page_4k; perms })
      done;
      count_delta t Addr.Page_4k 512;
      t.writes <- t.writes + 512
    end
    else
      let idx = slice addr level in
      let child =
        match Hashtbl.find_opt node.entries idx with
        | Some (Table n) -> n
        | Some (Leaf _) -> assert false
        | None ->
            let n = { entries = Hashtbl.create 16 } in
            Hashtbl.replace node.entries idx (Table n);
            n
      in
      descend child (level - 1)
  in
  descend t.root 4

(* Split the leaf at slot [idx] of [node] (a level-[level] leaf) into
   512 identity children one level down, preserving permissions. *)
let split_leaf t node idx level ~perms =
  let child = { entries = Hashtbl.create 512 } in
  let child_ps = page_size_of_level (level - 1) in
  for i = 0 to 511 do
    Hashtbl.replace child.entries i (Leaf { page_size = child_ps; perms })
  done;
  count_delta t (page_size_of_level level) (-1);
  count_delta t child_ps 512;
  t.writes <- t.writes + 512;
  Hashtbl.replace node.entries idx (Table child)

let find_leaf_uncached t addr =
  let rec descend node level =
    if level = 0 then None
    else
      match Hashtbl.find_opt node.entries (slice addr level) with
      | None -> None
      | Some (Leaf { page_size; perms }) -> Some (page_size, perms)
      | Some (Table n) -> descend n (level - 1)
  in
  descend t.root 4

let pt_lookup node addr =
  match Hashtbl.find_opt node.entries (slice addr 1) with
  | Some (Leaf { page_size; perms }) -> Some (page_size, perms)
  | Some (Table _) -> assert false (* level 0 cannot be a table *)
  | None -> None

(* Walk once, remembering how the 2M window resolves. *)
let fill_walk_entry t addr =
  let rec descend node level =
    if level = 2 then
      match Hashtbl.find_opt node.entries (slice addr 2) with
      | None -> Uniform None
      | Some (Leaf { page_size; perms }) -> Uniform (Some (page_size, perms))
      | Some (Table n) -> Pt { node = n; slots = Array.make 512 None }
    else
      match Hashtbl.find_opt node.entries (slice addr level) with
      | None -> Uniform None
      | Some (Leaf { page_size; perms }) -> Uniform (Some (page_size, perms))
      | Some (Table n) -> descend n (level - 1)
  in
  descend t.root 4

(* Observability cells for the walk-cache hit/miss path and for
   translation violations; interned once, guarded by one branch. *)
let m_walk_hit = lazy Covirt_obs.Metrics.(unlabeled (counter "ept.walk.hit"))
let m_walk_miss = lazy Covirt_obs.Metrics.(unlabeled (counter "ept.walk.miss"))

let m_violation =
  lazy (Covirt_obs.Metrics.counter "ept.violation" ~max_series:8)

(* Coverage tap (the replay fuzzer's guidance): walk-branch class
   codes — 0 walk-cache hit, 1 walk-cache fill, 2 uncached walk,
   3 PT-slot hit, 4 PT-slot fill, 5 violation/not-mapped,
   6 violation/perm-denied.  Same contract as the obs cells above:
   one [!cov_on] branch when disarmed, no cycles, no allocation
   (the tap body is a bitset store), so arming never perturbs the
   zero-GC warm path below. *)
let cov_on = ref false
let cov_tap : (int -> unit) ref = ref (fun _ -> ())

(* warm-begin: allocation-free walk.  A warm [find_leaf] is two array
   reads and an int compare; the per-4K slot answers are the stored
   [(page_size * perms) option] values themselves, so nothing on the
   hit path allocates (enforced by the bench allocation gate and
   covirt-lint check 6).  The wholesale invalidation scan is a plain
   loop — a closure there would charge every post-write translate. *)
let find_leaf t addr =
  match t.walk_cache with
  | None ->
      if !cov_on then !cov_tap 2;
      find_leaf_uncached t addr
  | Some cache ->
      if t.walk_cache_gen <> t.writes then begin
        for i = 0 to walk_cache_slots - 1 do
          cache.(i).wkey <- -1
        done;
        t.walk_cache_gen <- t.writes
      end;
      let key = addr lsr 21 in
      let s = cache.(key land (walk_cache_slots - 1)) in
      if s.wkey = key then begin
        t.walk_hits <- t.walk_hits + 1;
        if !cov_on then !cov_tap 0;
        if !Covirt_obs.Metrics.on then
          Covirt_obs.Metrics.add (Lazy.force m_walk_hit) 1
      end
      else begin
        t.walk_misses <- t.walk_misses + 1;
        if !cov_on then !cov_tap 1;
        if !Covirt_obs.Metrics.on then
          Covirt_obs.Metrics.add (Lazy.force m_walk_miss) 1;
        s.wentry <- fill_walk_entry t addr;
        s.wkey <- key
      end;
      (match s.wentry with
      | Uniform r -> r
      | Pt { node; slots } -> (
          let i = slice addr 1 in
          match slots.(i) with
          | Some r ->
              if !cov_on then !cov_tap 3;
              r
          | None ->
              if !cov_on then !cov_tap 4;
              let r = pt_lookup node addr in
              (* lint: allow warm-alloc — pt-slot cold fill: the boxed
                 answer is stored and handed back unwrapped on later
                 hits, so the [Some] is paid once per slot, not per
                 translate. *)
              slots.(i) <- Some r;
              r))

let note_violation reason =
  if !cov_on then
    !cov_tap (match reason with `Not_mapped -> 5 | `Perm_denied -> 6);
  if !Covirt_obs.Metrics.on then
    let dim =
      match reason with `Not_mapped -> "not-mapped" | `Perm_denied -> "perm"
    in
    Covirt_obs.Metrics.add
      (Covirt_obs.Metrics.cell (Lazy.force m_violation)
         { Covirt_obs.Metrics.no_label with dim })
      1

(* Unboxed-result translation: non-negative [Addr.page_size_code] on
   success, [not_mapped_code]/[perm_denied_code] on failure.  The hot
   callers (Machine.translate_granular, the warm benches) branch on
   the code and build a [violation] record only on the cold exit
   path. *)
let not_mapped_code = -1
let perm_denied_code = -2

let translate_code t addr ~access =
  match find_leaf t addr with
  | None ->
      note_violation `Not_mapped;
      not_mapped_code
  | Some (page_size, perms) ->
      let ok =
        match access with
        | `Read -> perms.read
        | `Write -> perms.write
        | `Exec -> perms.exec
      in
      if ok then Addr.page_size_code page_size
      else begin
        note_violation `Perm_denied;
        perm_denied_code
      end
(* warm-end *)

let violation_of_code code addr ~access =
  {
    gpa = addr;
    access;
    reason = (if code = not_mapped_code then `Not_mapped else `Perm_denied);
  }

let translate t addr ~access =
  let code = translate_code t addr ~access in
  if code >= 0 then Ok (Addr.page_size_of_code code)
  else Error (violation_of_code code addr ~access)

let page_size_at t addr = Option.map fst (find_leaf t addr)

let aligned_4k region =
  Addr.is_aligned region.Region.base ~size:Addr.page_size_4k
  && Addr.is_aligned region.Region.len ~size:Addr.page_size_4k

(* Ensure no leaf straddles a boundary of [region]: any leaf that
   overlaps the region without being fully contained in it is split
   into children one level down, repeatedly, until every leaf is
   either fully inside or fully outside.  Needed before unmapping (or
   remapping) so removal can proceed leaf-by-leaf.  After a split the
   descent continues into the freshly created table — the old
   implementation restarted from the root after every split. *)
let split_straddling t region point =
  let rec descend node level =
    match Hashtbl.find_opt node.entries (slice point level) with
    | None -> ()
    | Some (Leaf l) ->
        if level > 1 then begin
          let bytes = Addr.bytes_of_page_size (page_size_of_level level) in
          let base = Addr.page_down point ~size:bytes in
          let contained = Region.contains_range region ~base ~len:bytes in
          if not contained then begin
            split_leaf t node (slice point level) level ~perms:l.perms;
            match Hashtbl.find_opt node.entries (slice point level) with
            | Some (Table n) -> descend n (level - 1)
            | Some (Leaf _) | None -> assert false
          end
        end
    | Some (Table n) -> descend n (level - 1)
  in
  descend t.root 4

let remove_leaves t region =
  (* After boundary splitting, every leaf is either fully inside or
     fully outside [region]; remove the inside ones. *)
  let rec scrub node level base_of_slot =
    let removals = ref [] in
    Hashtbl.iter
      (fun idx e ->
        let slot_base = base_of_slot idx in
        let slot_bytes = 1 lsl level_shift level in
        let slot = Region.make ~base:slot_base ~len:slot_bytes in
        if Region.overlaps slot region then
          match e with
          | Leaf l ->
              if Region.contains_range region ~base:slot_base ~len:slot_bytes
              then begin
                count_delta t l.page_size (-1);
                t.writes <- t.writes + 1;
                removals := idx :: !removals
              end
          | Table n ->
              scrub n (level - 1) (fun i ->
                  slot_base + (i * (1 lsl level_shift (level - 1))));
              if Hashtbl.length n.entries = 0 then removals := idx :: !removals)
      node.entries;
    List.iter (Hashtbl.remove node.entries) !removals
  in
  scrub t.root 4 (fun i -> i * (1 lsl level_shift 4))

(* Greedy aligned chunking, installed as we go: the largest permitted
   page that is aligned and fits, with the dense sub-2M case handed to
   install_pt_window rather than 512 root descents. *)
let install_range t region ~perms =
  let open Region in
  let cap = Addr.bytes_of_page_size t.max_page in
  let lim = limit region in
  let rec go addr =
    if addr < lim then begin
      let remaining = lim - addr in
      if
        cap >= Addr.page_size_1g
        && Addr.is_aligned addr ~size:Addr.page_size_1g
        && remaining >= Addr.page_size_1g
      then begin
        install_leaf t addr ~page_size:Addr.Page_1g ~perms;
        go (addr + Addr.page_size_1g)
      end
      else if
        Addr.is_aligned addr ~size:Addr.page_size_2m
        && remaining >= Addr.page_size_2m
      then begin
        if cap >= Addr.page_size_2m then
          install_leaf t addr ~page_size:Addr.Page_2m ~perms
        else install_pt_window t addr ~perms;
        go (addr + Addr.page_size_2m)
      end
      else if Addr.is_aligned addr ~size:Addr.page_size_4k then begin
        install_leaf t addr ~page_size:Addr.Page_4k ~perms;
        go (addr + Addr.page_size_4k)
      end
      else invalid_arg "Ept: region not 4K-aligned"
    end
  in
  go region.base

let map_region t ?(perms = rwx) region =
  if not (aligned_4k region) then invalid_arg "Ept.map_region: unaligned";
  (* Remapping over existing mappings: clear first so leaf installs
     never collide with finer tables. *)
  let covered = Region.Set.inter t.index (Region.Set.of_list [ region ]) in
  Region.Set.iter
    (fun r ->
      split_straddling t r r.Region.base;
      split_straddling t r (Region.limit r - Addr.page_size_4k);
      remove_leaves t r)
    covered;
  install_range t region ~perms;
  t.index <- Region.Set.add t.index region;
  if !Sanitize.on then
    Sanitize.ept_write ~ept_uid:t.uid ~base:region.Region.base
      ~len:region.Region.len ~present:true

let unmap_region t region =
  if not (aligned_4k region) then invalid_arg "Ept.unmap_region: unaligned";
  let present = Region.Set.inter t.index (Region.Set.of_list [ region ]) in
  Region.Set.iter
    (fun r ->
      split_straddling t r r.Region.base;
      split_straddling t r (Region.limit r - Addr.page_size_4k);
      remove_leaves t r)
    present;
  t.index <- Region.Set.remove t.index region;
  if !Sanitize.on then
    Sanitize.ept_write ~ept_uid:t.uid ~base:region.Region.base
      ~len:region.Region.len ~present:false

let covers t ~base ~len =
  (* Memoized per (base, len): workloads re-check the same buffer on
     every pass.  Any mapping change bumps [writes], which empties the
     memo on the next query. *)
  if t.covers_cache_gen <> t.writes then begin
    Hashtbl.reset t.covers_cache;
    t.covers_cache_gen <- t.writes
  end;
  match Hashtbl.find_opt t.covers_cache (base, len) with
  | Some answer -> answer
  | None ->
      let answer = Region.Set.mem_range t.index ~base ~len in
      Hashtbl.replace t.covers_cache (base, len) answer;
      answer

(* Offline descent over every live leaf in ascending GPA order — the
   static verifier's raw material.  Walks the radix structure itself
   (not the index) so a verifier cross-checks what the hardware would
   actually translate. *)
let fold_leaves t ~init ~f =
  let sorted_keys entries =
    Hashtbl.fold (fun k _ acc -> k :: acc) entries [] |> List.sort compare
  in
  let rec go node level base acc =
    List.fold_left
      (fun acc idx ->
        let slot_base = base + (idx * (1 lsl level_shift level)) in
        match Hashtbl.find node.entries idx with
        | Leaf { page_size; perms } -> f acc ~base:slot_base ~page_size ~perms
        | Table child -> go child (level - 1) slot_base acc)
      acc (sorted_keys node.entries)
  in
  go t.root 4 0 init

let regions t = t.index
let leaf_counts t = (t.n4k, t.n2m, t.n1g)
let entry_writes t = t.writes

let walk_levels = function
  | Addr.Page_1g -> 2
  | Addr.Page_2m -> 3
  | Addr.Page_4k -> 4

let pp ppf t =
  let n4k, n2m, n1g = leaf_counts t in
  Format.fprintf ppf "EPT{%a; leaves 4K=%d 2M=%d 1G=%d}" Region.Set.pp t.index
    n4k n2m n1g
