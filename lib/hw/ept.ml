type perms = { read : bool; write : bool; exec : bool }

let rwx = { read = true; write = true; exec = true }
let ro = { read = true; write = false; exec = true }

type violation = {
  gpa : Addr.t;
  access : [ `Read | `Write | `Exec ];
  reason : [ `Not_mapped | `Perm_denied ];
}

(* The radix is indexed by 9-bit slices of the guest-physical address:
   level 4 = PML4 (512G per entry), 3 = PDPT (1G), 2 = PD (2M),
   1 = PT (4K).  Leaves may sit at levels 3 (1G), 2 (2M) and 1 (4K). *)

type node = { entries : (int, entry) Hashtbl.t }
and entry = Table of node | Leaf of { page_size : Addr.page_size; perms : perms }

type t = {
  root : node;
  max_page : Addr.page_size;
  mutable index : Region.Set.t;
  mutable writes : int;
  mutable n4k : int;
  mutable n2m : int;
  mutable n1g : int;
}

let create ?(max_page = Addr.Page_1g) () =
  {
    root = { entries = Hashtbl.create 16 };
    max_page;
    index = Region.Set.empty;
    writes = 0;
    n4k = 0;
    n2m = 0;
    n1g = 0;
  }

let max_page t = t.max_page

let level_shift = function 4 -> 39 | 3 -> 30 | 2 -> 21 | 1 -> 12 | _ -> assert false
let slice addr level = (addr lsr level_shift level) land 0x1ff

let page_size_of_level = function
  | 3 -> Addr.Page_1g
  | 2 -> Addr.Page_2m
  | 1 -> Addr.Page_4k
  | _ -> assert false

let level_of_page_size = function
  | Addr.Page_1g -> 3
  | Addr.Page_2m -> 2
  | Addr.Page_4k -> 1

let count_delta t page_size d =
  match page_size with
  | Addr.Page_4k -> t.n4k <- t.n4k + d
  | Addr.Page_2m -> t.n2m <- t.n2m + d
  | Addr.Page_1g -> t.n1g <- t.n1g + d

(* Install a leaf of [page_size] covering [addr] (which must be
   aligned).  Any leaf already present at exactly that slot is
   replaced; the caller is responsible for never asking to overwrite a
   Table with a Leaf (map_region splits work so that cannot happen for
   well-formed inputs). *)
let install_leaf t addr ~page_size ~perms =
  let target_level = level_of_page_size page_size in
  let rec descend node level =
    if level = target_level then begin
      let idx = slice addr level in
      (match Hashtbl.find_opt node.entries idx with
      | Some (Leaf l) -> count_delta t l.page_size (-1)
      | Some (Table _) ->
          (* Mapping a large page over an existing finer table: drop
             the subtree.  Count removal of its leaves. *)
          let rec drop n =
            Hashtbl.iter
              (fun _ e ->
                match e with
                | Leaf l -> count_delta t l.page_size (-1)
                | Table n' -> drop n')
              n.entries
          in
          (match Hashtbl.find_opt node.entries idx with
          | Some (Table n) -> drop n
          | Some (Leaf _) | None -> ())
      | None -> ());
      Hashtbl.replace node.entries idx (Leaf { page_size; perms });
      count_delta t page_size 1;
      t.writes <- t.writes + 1
    end
    else
      let idx = slice addr level in
      let child =
        match Hashtbl.find_opt node.entries idx with
        | Some (Table n) -> n
        | Some (Leaf _) ->
            (* A larger leaf covers this range already; splitting is
               handled by unmap/split paths, and map_region only emits
               aligned chunks, so reaching here means the caller remaps
               inside an existing large page.  Split it. *)
            assert false
        | None ->
            let n = { entries = Hashtbl.create 16 } in
            Hashtbl.replace node.entries idx (Table n);
            n
      in
      descend child (level - 1)
  in
  descend t.root 4

(* Split the leaf at slot [idx] of [node] (a level-[level] leaf) into
   512 identity children one level down, preserving permissions. *)
let split_leaf t node idx level ~perms =
  let child = { entries = Hashtbl.create 512 } in
  let child_ps = page_size_of_level (level - 1) in
  for i = 0 to 511 do
    Hashtbl.replace child.entries i (Leaf { page_size = child_ps; perms })
  done;
  count_delta t (page_size_of_level level) (-1);
  count_delta t child_ps 512;
  t.writes <- t.writes + 512;
  Hashtbl.replace node.entries idx (Table child)

let find_leaf t addr =
  let rec descend node level =
    if level = 0 then None
    else
      match Hashtbl.find_opt node.entries (slice addr level) with
      | None -> None
      | Some (Leaf { page_size; perms }) -> Some (page_size, perms)
      | Some (Table n) -> descend n (level - 1)
  in
  descend t.root 4

let translate t addr ~access =
  match find_leaf t addr with
  | None -> Error { gpa = addr; access; reason = `Not_mapped }
  | Some (page_size, perms) ->
      let ok =
        match access with
        | `Read -> perms.read
        | `Write -> perms.write
        | `Exec -> perms.exec
      in
      if ok then Ok page_size
      else Error { gpa = addr; access; reason = `Perm_denied }

let page_size_at t addr = Option.map fst (find_leaf t addr)

(* Greedy aligned chunking: walk the region emitting the largest
   permitted page that is aligned and fits. *)
let chunks_of_region ~max_page region =
  let open Region in
  let sizes =
    let all = [ Addr.page_size_1g; Addr.page_size_2m; Addr.page_size_4k ] in
    let cap = Addr.bytes_of_page_size max_page in
    List.filter (fun s -> s <= cap) all
  in
  let rec go addr acc =
    if addr >= limit region then List.rev acc
    else
      let remaining = limit region - addr in
      let size =
        match
          List.find_opt
            (fun s -> Addr.is_aligned addr ~size:s && s <= remaining)
            sizes
        with
        | Some s -> s
        | None -> invalid_arg "Ept: region not 4K-aligned"
      in
      let ps =
        if size = Addr.page_size_1g then Addr.Page_1g
        else if size = Addr.page_size_2m then Addr.Page_2m
        else Addr.Page_4k
      in
      go (addr + size) ((addr, ps) :: acc)
  in
  go region.base []

let aligned_4k region =
  Addr.is_aligned region.Region.base ~size:Addr.page_size_4k
  && Addr.is_aligned region.Region.len ~size:Addr.page_size_4k

(* Ensure no leaf straddles a boundary of [region]: any leaf that
   overlaps the region without being fully contained in it is split
   into children one level down, repeatedly, until every leaf is
   either fully inside or fully outside.  Needed before unmapping (or
   remapping) so removal can proceed leaf-by-leaf. *)
let split_straddling t region point =
  let rec once () =
    let did_split = ref false in
    let rec descend node level =
      match Hashtbl.find_opt node.entries (slice point level) with
      | None -> ()
      | Some (Leaf l) ->
          if level > 1 then begin
            let bytes = Addr.bytes_of_page_size (page_size_of_level level) in
            let base = Addr.page_down point ~size:bytes in
            let contained =
              Region.contains_range region ~base ~len:bytes
            in
            if not contained then begin
              split_leaf t node (slice point level) level ~perms:l.perms;
              did_split := true
            end
          end
      | Some (Table n) -> descend n (level - 1)
    in
    descend t.root 4;
    if !did_split then once ()
  in
  once ()

let remove_leaves t region =
  (* After boundary splitting, every leaf is either fully inside or
     fully outside [region]; remove the inside ones. *)
  let rec scrub node level base_of_slot =
    let removals = ref [] in
    Hashtbl.iter
      (fun idx e ->
        let slot_base = base_of_slot idx in
        let slot_bytes = 1 lsl level_shift level in
        let slot = Region.make ~base:slot_base ~len:slot_bytes in
        if Region.overlaps slot region then
          match e with
          | Leaf l ->
              if Region.contains_range region ~base:slot_base ~len:slot_bytes
              then begin
                count_delta t l.page_size (-1);
                t.writes <- t.writes + 1;
                removals := idx :: !removals
              end
          | Table n ->
              scrub n (level - 1) (fun i ->
                  slot_base + (i * (1 lsl level_shift (level - 1))));
              if Hashtbl.length n.entries = 0 then removals := idx :: !removals)
      node.entries;
    List.iter (Hashtbl.remove node.entries) !removals
  in
  scrub t.root 4 (fun i -> i * (1 lsl level_shift 4))

let map_region t ?(perms = rwx) region =
  if not (aligned_4k region) then invalid_arg "Ept.map_region: unaligned";
  (* Remapping over existing mappings: clear first so leaf installs
     never collide with finer tables. *)
  let covered = Region.Set.inter t.index (Region.Set.of_list [ region ]) in
  Region.Set.iter
    (fun r ->
      split_straddling t r r.Region.base;
      split_straddling t r (Region.limit r - Addr.page_size_4k);
      remove_leaves t r)
    covered;
  List.iter
    (fun (addr, ps) -> install_leaf t addr ~page_size:ps ~perms)
    (chunks_of_region ~max_page:t.max_page region);
  t.index <- Region.Set.add t.index region

let unmap_region t region =
  if not (aligned_4k region) then invalid_arg "Ept.unmap_region: unaligned";
  let present = Region.Set.inter t.index (Region.Set.of_list [ region ]) in
  Region.Set.iter
    (fun r ->
      split_straddling t r r.Region.base;
      split_straddling t r (Region.limit r - Addr.page_size_4k);
      remove_leaves t r)
    present;
  t.index <- Region.Set.remove t.index region

let covers t ~base ~len = Region.Set.mem_range t.index ~base ~len
let regions t = t.index
let leaf_counts t = (t.n4k, t.n2m, t.n1g)
let entry_writes t = t.writes

let walk_levels = function
  | Addr.Page_1g -> 2
  | Addr.Page_2m -> 3
  | Addr.Page_4k -> 4

let pp ppf t =
  let n4k, n2m, n1g = leaf_counts t in
  Format.fprintf ppf "EPT{%a; leaves 4K=%d 2M=%d 1G=%d}" Region.Set.pp t.index
    n4k n2m n1g
