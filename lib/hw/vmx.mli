(** VMX root/non-root transitions.

    Launching a guest, delivering synchronous VM exits to the
    installed handler with entry/exit costs charged, and tearing a
    guest down.  The Covirt hypervisor is a client of this module: it
    installs the exit handler and calls {!vmlaunch}; the machine's
    access paths call {!deliver_exit} when a trapped operation occurs. *)

exception
  Vm_terminated of { cpu_id : int; enclave : int; reason : string }
(** Raised when an exit handler returns [Kill] (or when no handler is
    installed).  The co-kernel framework catches this to reclaim the
    enclave — the fault is contained to the raising core's enclave. *)

val tap_on : bool ref
(** Arms {!exit_tap}.  Do not flip directly — the [covirt.replay]
    recorder owns it, reference-counted across domains.  Each
    {!deliver_exit} site pays exactly one branch when the tap is
    off. *)

val exit_tap : (Cpu.t -> Vmcs.t -> Vmcs.exit_reason -> unit) ref
(** Called for every delivered exit while [tap_on] — before the
    handler runs, so exits whose handler kills the enclave are
    observed too.  The tap must never charge simulated cycles or draw
    from any RNG: recording armed is byte-identical to recording
    off. *)

val cov_on : bool ref
(** Arms {!cov_exit_tap}.  Do not flip directly — the
    [covirt.replay] coverage collector owns it, reference-counted
    across domains.  One branch per delivered exit when off. *)

val cov_exit_tap : (int -> int -> unit) ref
(** Called while [cov_on] with ({!Vmcs.exit_reason_code},
    handler-outcome code: 0 resume, 1 skip, 2 kill) for every
    delivered exit — the (arm x outcome) coverage edge.  Must never
    charge simulated cycles or draw randomness: collection armed is
    byte-identical to collection off. *)

val vmlaunch : model:Cost_model.t -> Cpu.t -> Vmcs.t -> unit
(** Load the VMCS onto the core and enter the guest: flips the core to
    [Guest_mode], charges [vmcs_load + vmlaunch], marks the VMCS
    launched.  [Invalid_argument] if the core is already in guest
    mode. *)

val deliver_exit : model:Cost_model.t -> Cpu.t -> Vmcs.t ->
  Vmcs.exit_reason -> [ `Resume | `Skip ]
(** Charge a full exit round trip plus dispatch, bump the exit
    statistics, run the handler.  A [Kill] action raises
    {!Vm_terminated} after marking the core offline (the paper's
    "safely halting the CPU"), so only [`Resume] and [`Skip] are ever
    returned. *)

val vmexit_cost : model:Cost_model.t -> int
(** The charged cost of one exit round trip including dispatch. *)

val teardown : Cpu.t -> unit
(** Return the core to host mode (used during reclamation). *)
