type t = Ept.t

let create ?max_page () = Ept.create ?max_page ()
let map_region t region = Ept.map_region t region
let unmap_region t region = Ept.unmap_region t region

let translate t addr =
  match Ept.translate t addr ~access:`Read with
  | Ok ps -> Ok ps
  | Error _ -> Error addr

let maps t addr = Result.is_ok (translate t addr)
let mapped t = Ept.regions t
let leaf_counts t = Ept.leaf_counts t

let direct_map ~total_mem =
  let t = create () in
  let len = Addr.page_up total_mem ~size:Addr.page_size_4k in
  map_region t (Region.make ~base:0 ~len);
  t
