(* Shadow ownership sanitizer (hw side).

   This module is the low half of the isolation sanitizer: a
   process-global hook registry that the hot paths in [Phys_mem],
   [Ept], [Tlb] and [Machine] feed when — and only when — sanitizing
   is enabled.  It deliberately depends on nothing but the address
   vocabulary ([Addr] / [Region] / [Owner]) so that every other hw
   module may call into it without creating a cycle.

   The contract mirrors lib/obs: a single [!on] branch per site, no
   simulated-cycle charges ever, and byte-identical transcripts with
   the mode enabled.  The controller (lib/core) owns the policy half:
   it enables the shadow state from a [Phys_mem] snapshot, feeds the
   per-enclave blessed sets, and translates violations into
   [Fault_report]s. *)

type access = [ `Read | `Write | `Exec ]

type kind =
  | Cross_owner of { actual : Owner.t }
  | Freed_access
  | Corrupt_mapping of { actual : Owner.t }

type source = Access | Ept_write | Tlb_install

type violation = {
  owner : Owner.t;
  enclave : int;
  cpu : int;
  addr : Addr.t;
  len : int;
  kind : kind;
  source : source;
}

let pp_kind ppf = function
  | Cross_owner { actual } ->
      Format.fprintf ppf "cross-owner (actual %a)" Owner.pp actual
  | Freed_access -> Format.fprintf ppf "freed-region access"
  | Corrupt_mapping { actual } ->
      Format.fprintf ppf "corrupt mapping (actual %a)" Owner.pp actual

let source_name = function
  | Access -> "access"
  | Ept_write -> "ept-write"
  | Tlb_install -> "tlb-install"

let pp_violation ppf v =
  Format.fprintf ppf "%s by %a cpu%d at %a+%d: %a" (source_name v.source)
    Owner.pp v.owner v.cpu Addr.pp v.addr v.len pp_kind v.kind

(* --- switches ------------------------------------------------------- *)

(* [on] is the single branch every hot-path site tests.  [wanted] is
   the sticky request flag: harnesses flip it before building a stack,
   and the next [Covirt.Controller.attach] arms the shadow state for
   its machine.  Both are shared across domains and must only be
   written outside a fleet (before spawn / after join); the shadow
   state itself is per-domain (below), so each fleet shard arms and
   tears down its own machine's sanitizer without touching its
   neighbours'. *)
let on = ref false
let wanted = ref false
let request () = wanted := true
let requested () = !wanted

type stats = {
  accesses : int;  (** translated accesses checked *)
  ept_writes : int;  (** EPT map/unmap events mirrored *)
  tlb_installs : int;  (** TLB fills mirrored *)
}

type state = {
  mem_uid : int;
  (* shadow ownership map: owner -> regions, mirrored from Phys_mem
     events.  A handful of owners, so an assoc list beats a map. *)
  mutable shadow : (Owner.t * Region.Set.t) list;
  (* enclave id -> regions the control plane believes it may touch *)
  allowed : (int, Region.Set.t) Hashtbl.t;
  (* ept uid -> owning enclave id *)
  epts : (int, int) Hashtbl.t;
  mutable violations : violation list;  (* newest first, capped *)
  mutable kept : int;
  mutable accesses : int;
  mutable ept_writes : int;
  mutable tlb_installs : int;
}

let max_kept = 512

(* Per-domain: the armed shadow state, the cumulative violation count
   (survives re-attach so campaigns can diff it per trial), and the
   controller's violation callback.  All three travel together — a
   violation raised in one domain must never invoke another domain's
   controller. *)
type dls = {
  mutable st : state option;
  mutable total : int;
  mutable callback : violation -> unit;
}

let dls_key =
  Domain.DLS.new_key (fun () ->
      { st = None; total = 0; callback = (fun _ -> ()) })

let dls () = Domain.DLS.get dls_key

let set_on_violation f = (dls ()).callback <- f

let disable () =
  let d = dls () in
  d.st <- None;
  d.callback <- (fun _ -> ());
  (* Other domains' shards may still be armed under the same sticky
     request, so a disable only drops [on] once the request is gone. *)
  on := !wanted

let release () =
  wanted := false;
  disable ()

(* --- shadow map maintenance ----------------------------------------- *)

let shadow_add shadow owner region =
  let rec go = function
    | [] -> [ (owner, Region.Set.of_list [ region ]) ]
    | (o, set) :: rest when Owner.equal o owner ->
        (o, Region.Set.add set region) :: rest
    | pair :: rest -> pair :: go rest
  in
  go shadow

let shadow_clear shadow region =
  List.map (fun (o, set) -> (o, Region.Set.remove set region)) shadow

let shadow_owner st addr =
  let rec go = function
    | [] -> Owner.Free
    | (o, set) :: rest -> if Region.Set.mem set addr then o else go rest
  in
  go st.shadow

let enable ~mem_uid ~assignments =
  let shadow =
    List.fold_left
      (fun acc (region, owner) -> shadow_add acc owner region)
      [] assignments
  in
  (dls ()).st <-
    Some
      {
        mem_uid;
        shadow;
        allowed = Hashtbl.create 8;
        epts = Hashtbl.create 8;
        violations = [];
        kept = 0;
        accesses = 0;
        ept_writes = 0;
        tlb_installs = 0;
      };
  on := true

(* --- controller-facing feeds ---------------------------------------- *)

let with_state f = match (dls ()).st with Some st -> f st | None -> ()

let note_enclave ~id regions =
  with_state (fun st ->
      Hashtbl.replace st.allowed id (Region.Set.of_list regions))

let note_ept ~ept_uid ~id =
  with_state (fun st -> Hashtbl.replace st.epts ept_uid id)

let allow ~id region =
  with_state (fun st ->
      let set =
        match Hashtbl.find_opt st.allowed id with
        | Some set -> Region.Set.add set region
        | None -> Region.Set.of_list [ region ]
      in
      Hashtbl.replace st.allowed id set)

let disallow ~id region =
  with_state (fun st ->
      match Hashtbl.find_opt st.allowed id with
      | Some set -> Hashtbl.replace st.allowed id (Region.Set.remove set region)
      | None -> ())

let drop_enclave ~id =
  with_state (fun st ->
      Hashtbl.remove st.allowed id;
      let stale =
        Hashtbl.fold
          (fun uid owner acc -> if owner = id then uid :: acc else acc)
          st.epts []
      in
      List.iter (Hashtbl.remove st.epts) stale)

(* --- violation recording -------------------------------------------- *)

(* Coverage tap (the replay fuzzer's guidance): violation-kind codes —
   0 cross-owner, 1 freed-access, 2 corrupt-mapping.  One [!cov_on]
   branch when disarmed; the tap never charges cycles or draws
   randomness, so arming keeps runs byte-identical. *)
let cov_on = ref false
let cov_tap : (int -> unit) ref = ref (fun _ -> ())

let report st v =
  if !cov_on then
    !cov_tap
      (match v.kind with
      | Cross_owner _ -> 0
      | Freed_access -> 1
      | Corrupt_mapping _ -> 2);
  let d = dls () in
  d.total <- d.total + 1;
  if st.kept < max_kept then begin
    st.violations <- v :: st.violations;
    st.kept <- st.kept + 1
  end;
  d.callback v

(* --- hw-facing hooks ------------------------------------------------- *)

let phys_event ~mem_uid region owner =
  match (dls ()).st with
  | Some st when st.mem_uid = mem_uid ->
      let cleared = shadow_clear st.shadow region in
      st.shadow <-
        (match owner with
        | Owner.Free -> cleared
        | owner -> shadow_add cleared owner region)
  | _ -> ()

(* Classify the pieces of [base,len) the control plane never blessed
   for [id], using the shadow map to name the actual owner. *)
let classify st ~id ~allowed ~base ~len ~mk =
  let offending =
    Region.Set.diff
      (Region.Set.of_list [ Region.make ~base ~len ])
      allowed
  in
  Region.Set.iter
    (fun r ->
      let actual = shadow_owner st r.Region.base in
      match actual with
      | Owner.Enclave j when j = id ->
          (* Owned by the accessor but not (yet) blessed: a transient
             bookkeeping window, not an isolation breach. *)
          ()
      | Owner.Free -> report st (mk r Freed_access)
      | actual -> report st (mk r (Cross_owner { actual })))
    offending

let access ~mem_uid ~cpu ~owner ~base ~len ~access:(_ : access) =
  match (dls ()).st with
  | Some st when st.mem_uid = mem_uid -> (
      match owner with
      | Owner.Enclave id -> (
          match Hashtbl.find_opt st.allowed id with
          | None -> ()  (* not a controller-managed enclave *)
          | Some allowed ->
              st.accesses <- st.accesses + 1;
              if not (Region.Set.mem_range allowed ~base ~len) then
                classify st ~id ~allowed ~base ~len ~mk:(fun r kind ->
                    {
                      owner;
                      enclave = id;
                      cpu;
                      addr = r.Region.base;
                      len = r.Region.len;
                      kind;
                      source = Access;
                    }))
      | _ -> ())
  | _ -> ()

let ept_write ~ept_uid ~base ~len ~present =
  with_state (fun st ->
      st.ept_writes <- st.ept_writes + 1;
      if present then
        match Hashtbl.find_opt st.epts ept_uid with
        | None -> ()
        | Some id -> (
            match Hashtbl.find_opt st.allowed id with
            | None -> ()
            | Some allowed ->
                if not (Region.Set.mem_range allowed ~base ~len) then
                  let mk r kind =
                    let kind =
                      match kind with
                      | Cross_owner { actual } | Corrupt_mapping { actual } ->
                          Corrupt_mapping { actual }
                      | Freed_access -> Corrupt_mapping { actual = Owner.Free }
                    in
                    {
                      owner = Owner.Enclave id;
                      enclave = id;
                      cpu = -1;
                      addr = r.Region.base;
                      len = r.Region.len;
                      kind;
                      source = Ept_write;
                    }
                  in
                  classify st ~id ~allowed ~base ~len ~mk))

let tlb_install (_ : Addr.t) ~page_size:(_ : int) =
  with_state (fun st -> st.tlb_installs <- st.tlb_installs + 1)

(* --- introspection --------------------------------------------------- *)

let violations () =
  match (dls ()).st with Some st -> List.rev st.violations | None -> []

let violation_count () = (dls ()).total

let stats () =
  match (dls ()).st with
  | Some st ->
      {
        accesses = st.accesses;
        ept_writes = st.ept_writes;
        tlb_installs = st.tlb_installs;
      }
  | None -> { accesses = 0; ept_writes = 0; tlb_installs = 0 }

let active () = !on
