type assignment = { region : Region.t; owner : Owner.t }

type t = {
  uid : int;
  topology : Numa.t;
  mutable assignments : assignment list; (* disjoint, unsorted *)
  mutable free : Region.Set.t;
  mutable next_mmio : Addr.t;
  mmio_base : Addr.t;
  devices : (string, Region.t) Hashtbl.t;
}

(* Atomic: machines are created concurrently by fleet shards, and the
   uid gates the per-domain shadow-sanitizer hooks. *)
let uid_counter = Atomic.make 0

let create ~topology ~host_reserved_per_zone =
  let uid = 1 + Atomic.fetch_and_add uid_counter 1 in
  let total = Numa.total_mem topology in
  let free = ref (Region.Set.of_list [ Region.make ~base:0 ~len:total ]) in
  let assignments = ref [] in
  for z = 0 to Numa.zones topology - 1 do
    let zr = Numa.zone_range topology z in
    let host = Region.make ~base:zr.Region.base ~len:host_reserved_per_zone in
    free := Region.Set.remove !free host;
    assignments := { region = host; owner = Owner.Host } :: !assignments
  done;
  {
    uid;
    topology;
    assignments = !assignments;
    free = !free;
    next_mmio = total;
    mmio_base = total;
    devices = Hashtbl.create 4;
  }

let topology t = t.topology
let uid t = t.uid

let snapshot t =
  List.map (fun a -> (a.region, a.owner)) t.assignments

(* Mirror an ownership change into the shadow sanitizer; one branch,
   nothing else, when the mode is off. *)
let sanitize_event t region owner =
  if !Sanitize.on then Sanitize.phys_event ~mem_uid:t.uid region owner

let align = Addr.page_size_2m

let alloc t ~owner ~zone ~len =
  if len <= 0 then invalid_arg "Phys_mem.alloc";
  let len = Addr.page_up len ~size:Addr.page_size_4k in
  let zr = Numa.zone_range t.topology zone in
  let candidate =
    Region.Set.to_list (Region.Set.inter t.free (Region.Set.of_list [ zr ]))
    |> List.find_map (fun r ->
           let base = Addr.page_up r.Region.base ~size:align in
           if base + len <= Region.limit r then
             Some (Region.make ~base ~len)
           else None)
  in
  match candidate with
  | None ->
      Error
        (Format.asprintf "no contiguous %a block free in zone %d"
           Covirt_sim.Units.pp_bytes len zone)
  | Some region ->
      t.free <- Region.Set.remove t.free region;
      t.assignments <- { region; owner } :: t.assignments;
      sanitize_event t region owner;
      Ok region

let assign t ~owner region =
  if Region.Set.mem_range t.free ~base:region.Region.base ~len:region.Region.len
  then begin
    t.free <- Region.Set.remove t.free region;
    t.assignments <- { region; owner } :: t.assignments;
    sanitize_event t region owner;
    Ok ()
  end
  else Error "Phys_mem.assign: region not entirely free"

let release t region =
  let keep, cut =
    List.partition
      (fun a -> not (Region.overlaps a.region region))
      t.assignments
  in
  (* Partial releases shrink the assignment. *)
  let remnants =
    List.concat_map
      (fun a ->
        Region.Set.to_list
          (Region.Set.remove (Region.Set.of_list [ a.region ]) region)
        |> List.map (fun r -> { region = r; owner = a.owner }))
      cut
  in
  t.assignments <- remnants @ keep;
  t.free <- Region.Set.add t.free region;
  sanitize_event t region Owner.Free

let owner_at t addr =
  if addr >= t.mmio_base then
    match
      List.find_opt (fun a -> Region.contains a.region addr) t.assignments
    with
    | Some a -> a.owner
    | None -> Owner.Device "unmapped-mmio"
  else
    match
      List.find_opt (fun a -> Region.contains a.region addr) t.assignments
    with
    | Some a -> a.owner
    | None -> Owner.Free

let owned_by t owner =
  List.filter_map
    (fun a -> if Owner.equal a.owner owner then Some a.region else None)
    t.assignments
  |> Region.Set.of_list

let free_bytes t ~zone =
  let zr = Numa.zone_range t.topology zone in
  Region.Set.total_bytes
    (Region.Set.inter t.free (Region.Set.of_list [ zr ]))

let add_device t ~name ~len =
  if Hashtbl.mem t.devices name then invalid_arg "Phys_mem.add_device: duplicate";
  let len = Addr.page_up len ~size:Addr.page_size_4k in
  let region = Region.make ~base:t.next_mmio ~len in
  t.next_mmio <- t.next_mmio + len;
  t.assignments <- { region; owner = Owner.Device name } :: t.assignments;
  Hashtbl.replace t.devices name region;
  sanitize_event t region (Owner.Device name);
  region

let find_device t ~name = Hashtbl.find_opt t.devices name

let chown t region owner =
  let keep, cut =
    List.partition (fun a -> not (Region.overlaps a.region region)) t.assignments
  in
  let remnants =
    List.concat_map
      (fun a ->
        Region.Set.to_list
          (Region.Set.remove (Region.Set.of_list [ a.region ]) region)
        |> List.map (fun r -> { region = r; owner = a.owner }))
      cut
  in
  t.free <- Region.Set.remove t.free region;
  t.assignments <- ({ region; owner } :: remnants) @ keep;
  sanitize_event t region owner

let mmio_base t = t.mmio_base

let pp ppf t =
  let sorted =
    List.sort (fun a b -> Region.compare a.region b.region) t.assignments
  in
  List.iter
    (fun a ->
      Format.fprintf ppf "%a %a@." Region.pp a.region Owner.pp a.owner)
    sorted;
  Format.fprintf ppf "free: %a" Covirt_sim.Units.pp_bytes
    (Region.Set.total_bytes t.free)
