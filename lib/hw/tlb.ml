type entry = { vpn : int; page_size : Addr.page_size; epoch : int }

(* Set-associative geometry, one bank per size class.  Slots are laid
   out set-major: the slot for way [w] of set [s] is [s * ways + w].
   [stamps] carries the pseudo-LRU epoch (a monotonically increasing
   tick updated on hit and install); eviction picks the stalest way of
   the probed set, so every operation is O(ways) instead of
   O(entries). *)
type bank = {
  sets : int; (* power of two *)
  ways : int;
  slots : entry option array; (* length sets * ways *)
  stamps : int array;
}

type t = {
  model : Cost_model.t;
  b4k : bank;
  b2m : bank;
  b1g : bank;
  mutable epoch : int;
  mutable flushes : int;
  mutable tick : int;
}

let make_bank entries =
  let sets, ways = Cost_model.tlb_geometry ~entries in
  {
    sets;
    ways;
    slots = Array.make (sets * ways) None;
    stamps = Array.make (sets * ways) 0;
  }

let create ~model ~rng:_ =
  (* The RNG parameter is kept for interface stability: eviction used
     to pick a random victim; pseudo-LRU is deterministic and draws
     nothing. *)
  {
    model;
    b4k = make_bank Cost_model.(model.dtlb_entries_4k);
    b2m = make_bank Cost_model.(model.dtlb_entries_2m);
    b1g = make_bank Cost_model.(model.dtlb_entries_1g);
    epoch = 0;
    flushes = 0;
    tick = 0;
  }

let bank_for t = function
  | Addr.Page_4k -> t.b4k
  | Addr.Page_2m -> t.b2m
  | Addr.Page_1g -> t.b1g

let geometry t page_size =
  let b = bank_for t page_size in
  (b.sets, b.ways)

let classes = [ Addr.Page_4k; Addr.Page_2m; Addr.Page_1g ]

let touch t b slot = b.stamps.(slot) <- (t.tick <- t.tick + 1; t.tick)

(* Observability cells, interned once: a TLB lookup is the hottest
   operation in the translation path, so the disabled cost must stay at
   the single [!Metrics.on] branch. *)
let m_hit = lazy Covirt_obs.Metrics.(unlabeled (counter "tlb.lookup.hit"))
let m_miss = lazy Covirt_obs.Metrics.(unlabeled (counter "tlb.lookup.miss"))
let m_flush = lazy Covirt_obs.Metrics.(unlabeled (counter "tlb.flush"))

(* warm-begin: allocation-free lookup.  Module-level recursion with
   every binding passed as an argument (no closure capture), hits
   return the [entry option] stored in the slot array itself — the
   warm path allocates no options, closures or tuples, enforced by the
   bench allocation gate and covirt-lint check 6. *)
let rec probe_way (slots : entry option array) vpn base w ways =
  if w >= ways then -1
  else
    match slots.(base + w) with
    | Some e when e.vpn = vpn -> base + w
    | Some _ | None -> probe_way slots vpn base (w + 1) ways

let bank_slot b vpn = probe_way b.slots vpn (vpn land (b.sets - 1) * b.ways) 0 b.ways

let lookup t addr =
  (* First match wins, in the same class order the linear TLB used. *)
  let result =
    let s = bank_slot t.b4k (Addr.pfn addr ~size:Addr.page_size_4k) in
    if s >= 0 then begin
      touch t t.b4k s;
      t.b4k.slots.(s)
    end
    else
      let s = bank_slot t.b2m (Addr.pfn addr ~size:Addr.page_size_2m) in
      if s >= 0 then begin
        touch t t.b2m s;
        t.b2m.slots.(s)
      end
      else
        let s = bank_slot t.b1g (Addr.pfn addr ~size:Addr.page_size_1g) in
        if s >= 0 then begin
          touch t t.b1g s;
          t.b1g.slots.(s)
        end
        else None
  in
  if !Covirt_obs.Metrics.on then
    Covirt_obs.Metrics.add
      (Lazy.force (match result with Some _ -> m_hit | None -> m_miss))
      1;
  result

let lookup_hit t addr =
  match lookup t addr with Some _ -> true | None -> false
(* warm-end *)

let install t addr ~page_size =
  if !Sanitize.on then
    Sanitize.tlb_install addr ~page_size:(Addr.bytes_of_page_size page_size);
  let vpn = Addr.pfn addr ~size:(Addr.bytes_of_page_size page_size) in
  let b = bank_for t page_size in
  let base = vpn land (b.sets - 1) * b.ways in
  let entry = Some { vpn; page_size; epoch = t.epoch } in
  (* One O(ways) probe decides: refresh an existing translation, fill
     a free way, or evict the pseudo-LRU victim. *)
  let victim = ref (-1) in
  let free = ref (-1) in
  let stalest = ref base in
  for w = b.ways - 1 downto 0 do
    let slot = base + w in
    match b.slots.(slot) with
    | Some e -> if e.vpn = vpn then victim := slot
        else if b.stamps.(slot) <= b.stamps.(!stalest) then stalest := slot
    | None -> free := slot
  done;
  let slot =
    if !victim >= 0 then !victim else if !free >= 0 then !free else !stalest
  in
  b.slots.(slot) <- entry;
  touch t b slot

let flush_all t =
  let wipe b = Array.fill b.slots 0 (Array.length b.slots) None in
  wipe t.b4k;
  wipe t.b2m;
  wipe t.b1g;
  t.epoch <- t.epoch + 1;
  t.flushes <- t.flushes + 1;
  if !Covirt_obs.Metrics.on then Covirt_obs.Metrics.add (Lazy.force m_flush) 1

let flush_range t region =
  (* An entry's page [vpn*bytes, (vpn+1)*bytes) overlaps [region] iff
     vpn lies in [base/bytes, (limit-1)/bytes] — integer compares, no
     allocation.  When the region spans fewer pages than there are
     sets, only the sets those pages index can hold a match. *)
  let scrub ps =
    let bytes = Addr.bytes_of_page_size ps in
    let b = bank_for t ps in
    let vpn_lo = region.Region.base / bytes in
    let vpn_hi = (Region.limit region - 1) / bytes in
    let clear_set set =
      let base = set * b.ways in
      for w = 0 to b.ways - 1 do
        match b.slots.(base + w) with
        | Some e when e.vpn >= vpn_lo && e.vpn <= vpn_hi ->
            b.slots.(base + w) <- None
        | Some _ | None -> ()
      done
    in
    if vpn_hi - vpn_lo + 1 >= b.sets then
      for set = 0 to b.sets - 1 do clear_set set done
    else
      for vpn = vpn_lo to vpn_hi do clear_set (vpn land (b.sets - 1)) done
  in
  List.iter scrub classes

let entry_count t =
  let live b =
    Array.fold_left (fun n e -> if Option.is_some e then n + 1 else n) 0 b.slots
  in
  live t.b4k + live t.b2m + live t.b1g

let flush_count t = t.flushes

let bulk_miss_rate ~model ~page_size ~working_set =
  if working_set <= 0 then invalid_arg "Tlb.bulk_miss_rate";
  let reach = Cost_model.tlb_reach model ~page_size in
  Float.max 0.0 (1.0 -. (float_of_int reach /. float_of_int working_set))

let stream_miss_rate ~model ~page_size =
  float_of_int model.Cost_model.line_bytes
  /. float_of_int (Addr.bytes_of_page_size page_size)
