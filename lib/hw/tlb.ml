type entry = { vpn : int; page_size : Addr.page_size; epoch : int }

type slot = entry option array

type t = {
  model : Cost_model.t;
  rng : Covirt_sim.Rng.t;
  slots_4k : slot;
  slots_2m : slot;
  slots_1g : slot;
  mutable epoch : int;
  mutable flushes : int;
}

let create ~model ~rng =
  {
    model;
    rng;
    slots_4k = Array.make Cost_model.(model.dtlb_entries_4k) None;
    slots_2m = Array.make Cost_model.(model.dtlb_entries_2m) None;
    slots_1g = Array.make Cost_model.(model.dtlb_entries_1g) None;
    epoch = 0;
    flushes = 0;
  }

let slots_for t = function
  | Addr.Page_4k -> t.slots_4k
  | Addr.Page_2m -> t.slots_2m
  | Addr.Page_1g -> t.slots_1g

let classes = [ Addr.Page_4k; Addr.Page_2m; Addr.Page_1g ]

let lookup t addr =
  let hit_in ps =
    let vpn = Addr.pfn addr ~size:(Addr.bytes_of_page_size ps) in
    let slots = slots_for t ps in
    Array.fold_left
      (fun acc e ->
        match (acc, e) with
        | (Some _ as found), _ -> found
        | None, Some e when e.vpn = vpn && e.page_size = ps -> Some e
        | None, _ -> None)
      None slots
  in
  List.fold_left
    (fun acc ps -> match acc with Some _ -> acc | None -> hit_in ps)
    None classes

let install t addr ~page_size =
  let vpn = Addr.pfn addr ~size:(Addr.bytes_of_page_size page_size) in
  let slots = slots_for t page_size in
  let entry = Some { vpn; page_size; epoch = t.epoch } in
  let n = Array.length slots in
  let rec find_free i = if i >= n then None else
      match slots.(i) with None -> Some i | Some _ -> find_free (i + 1)
  in
  let victim =
    match find_free 0 with
    | Some i -> i
    | None -> Covirt_sim.Rng.int t.rng ~bound:n
  in
  slots.(victim) <- entry

let flush_all t =
  let wipe slots = Array.fill slots 0 (Array.length slots) None in
  wipe t.slots_4k;
  wipe t.slots_2m;
  wipe t.slots_1g;
  t.epoch <- t.epoch + 1;
  t.flushes <- t.flushes + 1

let flush_range t region =
  let scrub ps =
    let bytes = Addr.bytes_of_page_size ps in
    let slots = slots_for t ps in
    Array.iteri
      (fun i e ->
        match e with
        | Some e when e.page_size = ps ->
            let page = Region.make ~base:(e.vpn * bytes) ~len:bytes in
            if Region.overlaps page region then slots.(i) <- None
        | Some _ | None -> ())
      slots
  in
  List.iter scrub classes

let entry_count t =
  let live slots =
    Array.fold_left (fun n e -> if Option.is_some e then n + 1 else n) 0 slots
  in
  live t.slots_4k + live t.slots_2m + live t.slots_1g

let flush_count t = t.flushes

let bulk_miss_rate ~model ~page_size ~working_set =
  if working_set <= 0 then invalid_arg "Tlb.bulk_miss_rate";
  let reach = Cost_model.tlb_reach model ~page_size in
  Float.max 0.0 (1.0 -. (float_of_int reach /. float_of_int working_set))

let stream_miss_rate ~model ~page_size =
  float_of_int model.Cost_model.line_bytes
  /. float_of_int (Addr.bytes_of_page_size page_size)
