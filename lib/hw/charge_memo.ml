(* Memo for the bulk charge models.  The key is a flat record of
   immediate ints — no nested options, tuples or variants — so the hot
   probe can reuse one preallocated scratch key per memo: the caller
   mutates the scratch fields in place and [probe] hashes it against
   the table without allocating a word.  Only a miss copies the
   scratch into a fresh key for storage (the scratch itself must never
   be stored: it is mutated by the next call). *)

type key = {
  mutable kind : int;  (* 0 = stream, 1 = random *)
  mutable zone : int;
  mutable base : Addr.t;
  mutable len : int;
  mutable sharers : int;
  mutable page : int;  (* Addr.page_size_code *)
  mutable mode : int;  (* 0 = host; 1 = guest; 2 = guest + vapic *)
  mutable ept_uid : int;  (* -1 when no EPT is active *)
  mutable ept_gen : int;
  mutable bg_gen : int;
}

type t = {
  table : (key, float) Hashtbl.t;
  scratch : key;
  mutable hits : int;
  mutable misses : int;
}

let max_entries = 4096

let fresh_key () =
  {
    kind = 0;
    zone = 0;
    base = 0;
    len = 0;
    sharers = 0;
    page = 0;
    mode = 0;
    ept_uid = -1;
    ept_gen = 0;
    bg_gen = 0;
  }

let create () =
  { table = Hashtbl.create 64; scratch = fresh_key (); hits = 0; misses = 0 }

(* warm-begin: the scratch-key probe is on the zero-allocation charge
   path (covirt-lint warm-alloc; bench allocation gate).  The type,
   [fresh_key] and [create] above are cold construction — only
   [scratch] access and the probe itself are warm. *)
let scratch t = t.scratch

let probe t =
  match Hashtbl.find t.table t.scratch with
  | v ->
      t.hits <- t.hits + 1;
      v
  | exception Not_found ->
      t.misses <- t.misses + 1;
      raise Not_found
(* warm-end *)

(* Cold path: the scratch is copied so later mutations cannot alias a
   stored key. *)
let commit t v =
  if Hashtbl.length t.table >= max_entries then Hashtbl.reset t.table;
  Hashtbl.replace t.table { t.scratch with kind = t.scratch.kind } v

let stats t = (t.hits, t.misses)
