type mode =
  | Host
  | Guest of { ept : (int * int) option; vapic : bool }
      (** [ept] is [(uid, generation)] — pins both which table the core
          runs under and its exact mapping state. *)

type key = {
  kind : [ `Stream | `Random ];
  zone : int;
  base : Addr.t;
  len : int;
  sharers : int;
  page_size : Addr.page_size;
  mode : mode;
  bg_gen : int;
}

type t = {
  table : (key, float) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let max_entries = 4096

let create () = { table = Hashtbl.create 64; hits = 0; misses = 0 }

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some _ as hit ->
      t.hits <- t.hits + 1;
      hit
  | None ->
      t.misses <- t.misses + 1;
      None

let store t key v =
  if Hashtbl.length t.table >= max_entries then Hashtbl.reset t.table;
  Hashtbl.replace t.table key v

let stats t = (t.hits, t.misses)
