type t = Host | Enclave of int | Device of string | Free

let equal a b =
  match (a, b) with
  | Host, Host | Free, Free -> true
  | Enclave i, Enclave j -> i = j
  | Device d, Device e -> String.equal d e
  | (Host | Enclave _ | Device _ | Free), _ -> false

let to_string = function
  | Host -> "host"
  | Enclave i -> Printf.sprintf "enclave-%d" i
  | Device d -> Printf.sprintf "device-%s" d
  | Free -> "free"

let pp ppf t = Format.pp_print_string ppf (to_string t)
