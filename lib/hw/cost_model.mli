(** Cycle-cost model for the simulated machine.

    All latency constants live here, defaulted to published
    measurements of Broadwell-class Xeons (the paper's testbed is a
    dual-socket E5-2603 v4 at 1.7 GHz).  Absolute numbers are not the
    reproduction target — the *relative* overheads of the protection
    features are — but grounding the constants keeps the relative
    results honest.  Each field is documented with its role; the
    calibration-sensitive ones are marked.

    Virtualization-overhead terms and what they model:
    - [vmexit_roundtrip]: a VM exit + VM entry pair (state save/restore).
    - [ept_walk_extra_*]: added cycles per TLB miss for the two
      dimensional (guest PT x EPT) page walk, by the EPT page size
      that maps the faulting address.  Large EPT pages shorten the
      nested walk — this is why the controller coalesces (Section
      IV-C of the paper).
    - [guest_tlbmiss_tax]: per-TLB-miss cost of executing in VMX
      non-root mode even with no protection features (VPID-tagged
      lookups, paging-structure cache pressure).  Calibrated.
    - [vapic_tlbmiss_tax]: additional per-TLB-miss cost when APIC
      virtualization is active (APIC-access page range checks share
      the translation path).  Calibrated so that the memory+IPI
      configuration reproduces the paper's 3.1% RandomAccess worst
      case. *)

type t = {
  ghz : float;  (** core clock, cycles per nanosecond *)
  (* Cache hierarchy (latencies in cycles, sizes in bytes). *)
  l1_size : int;
  l2_size : int;
  l3_size : int;
  l1_hit : int;
  l2_hit : int;
  l3_hit : int;
  dram_local : int;
  dram_remote : int;
  line_bytes : int;
  stream_line_local : int;
      (** amortised per-cacheline cost of a prefetch-friendly stream *)
  stream_line_remote : int;
  bw_channels_per_zone : int;
      (** concurrent streamers a zone sustains before contention *)
  (* Flops. *)
  flop_cycles : float;  (** amortised cycles per double-precision flop *)
  (* TLB geometry. *)
  dtlb_entries_4k : int;
  dtlb_entries_2m : int;
  dtlb_entries_1g : int;
  stlb_entries_4k : int;
  (* Translation costs. *)
  pt_walk_native : int;  (** cached 4-level walk on TLB miss *)
  ept_walk_extra_4k : int;
  ept_walk_extra_2m : int;
  ept_walk_extra_1g : int;
  guest_tlbmiss_tax : int;
  vapic_tlbmiss_tax : int;
  (* VMX events. *)
  vmexit_roundtrip : int;
  exit_dispatch : int;  (** hypervisor software dispatch on top of the trip *)
  vmcs_load : int;
  vmlaunch : int;
  (* Interrupts. *)
  ipi_send_native : int;
  ipi_recv_native : int;
  icr_whitelist_check : int;
  piv_post : int;  (** hardware posted-interrupt delivery, no exit *)
  vapic_inject : int;  (** software injection after an interrupt exit *)
  nmi_roundtrip : int;
  timer_handler : int;  (** LWK timer-tick handler body *)
  (* Control-path costs (host side, not charged to the enclave). *)
  ept_entry_update : int;  (** write one EPT entry *)
  ctrl_channel_msg : int;  (** one control-channel message each way *)
  page_list_per_page : int;  (** building/consuming one PFN list entry *)
}

val default : t
(** Broadwell-ish defaults at 1.7 GHz. *)

val dram : t -> local:bool -> int
val stream_line : t -> local:bool -> int

val tlb_geometry : entries:int -> int * int
(** [(sets, ways)] of a set-associative TLB bank with [entries] slots:
    4-way (fewer when the bank is smaller), sets the largest power of
    two fitting [entries / ways] so the set index is [vpn land
    (sets - 1)].  Raises [Invalid_argument] when [entries <= 0]. *)

val tlb_reach : t -> page_size:Addr.page_size -> int
(** Bytes covered by the (D)TLB at a page size.  The second-level TLB
    in this model holds 4K translations only, so large-page reach is
    first-level only — matching the microarchitectures where 2M
    entries never populate the STLB. *)

val ept_walk_extra : t -> Addr.page_size -> int

val expected_random_cycles : t -> working_set:int -> sharers:int -> float
(** Expected cycles for one 8-byte access uniformly distributed over a
    [working_set], with [sharers] cores dividing the L3. *)

val random_profile :
  t -> working_set:int -> sharers:int -> float * float
(** [(expected_cycles, dram_fraction)] — the expected per-access cost
    and the probability the access misses to DRAM (needed to apply
    NUMA remote penalties only to the DRAM-bound share). *)
