type t = {
  nic_name : string;
  window : Region.t;
  mutable msi : (int * int) option; (* (core, vector) *)
  mutable tx : int;
  mutable rx : int;
}

let doorbell_offset = 0x0
let msi_vector_offset = 0x10
let bar_bytes = 64 * 1024

let create machine ~name =
  let window = Phys_mem.add_device machine.Machine.mem ~name ~len:bar_bytes in
  { nic_name = name; window; msi = None; tx = 0; rx = 0 }

let name t = t.nic_name
let window t = t.window

let bind_msi t ~core ~vector =
  if vector < 32 || vector > 255 then invalid_arg "Nic.bind_msi: vector";
  t.msi <- Some (core, vector)

let ring_tx machine cpu t =
  (* a real MMIO store: translated, EPT-policed, side effects applied *)
  Machine.store machine cpu (t.window.Region.base + doorbell_offset);
  t.tx <- t.tx + 1

let inject_rx machine t =
  match t.msi with
  | None -> Error (Printf.sprintf "nic %s: no MSI bound" t.nic_name)
  | Some (core, vector) ->
      t.rx <- t.rx + 1;
      Machine.deliver_external_irq machine ~dest:core ~vector;
      Ok ()

let tx_count t = t.tx
let rx_count t = t.rx
