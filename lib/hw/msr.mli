(** Model-specific registers.

    A sparse MSR file plus a protection bitmap.  With Covirt's MSR
    protection enabled, the VMCS points at a bitmap; guest accesses to
    protected MSRs cause VM exits (and, for the sensitive set, enclave
    termination).  Well-known MSR numbers used by the co-kernel stack
    are exported as constants. *)

type t

val ia32_apic_base : int
val ia32_efer : int
val ia32_pat : int
val ia32_tsc_deadline : int
val ia32_smm_monitor_ctl : int
(** Writing this from a co-kernel is the canonical "sensitive MSR"
    fault in our injection suite. *)

val create : unit -> t
(** Pre-populates architectural MSRs with sane reset values. *)

val read : t -> int -> int64
(** Unknown MSRs read as zero (the simulated machine does not #GP). *)

val write : t -> int -> int64 -> unit

module Bitmap : sig
  type t
  (** The set of MSR numbers whose access traps. *)

  val create : unit -> t
  val protect : t -> int -> unit
  val unprotect : t -> int -> unit
  val is_protected : t -> int -> bool
  val default_sensitive : unit -> t
  (** The MSRs Covirt always traps: APIC base, EFER, SMM monitor
      control, TSC deadline. *)
end
