(** NUMA topology.

    The evaluation platform is a dual-socket Xeon node; Figs. 6 and 7
    scale enclaves across core/NUMA-zone layouts, so the simulated
    machine models zones explicitly: each CPU and each memory region
    belongs to a zone, and the cost model charges a remote-access
    penalty when they differ. *)

type zone = int

type t

val create : zones:int -> cores_per_zone:int -> mem_per_zone:int -> t
(** A symmetric topology.  [mem_per_zone] is in bytes; zone [z] owns
    the physical range [\[z * mem_per_zone, (z+1) * mem_per_zone)]. *)

val zones : t -> int
val cores : t -> int
val cores_per_zone : t -> int
val mem_per_zone : t -> int
val total_mem : t -> int

val zone_of_core : t -> core:int -> zone
val zone_of_addr : t -> Addr.t -> zone
(** Addresses past the end of memory report the last zone (device /
    MMIO space hangs off the top in our machine layout). *)

val cores_of_zone : t -> zone -> int list
val zone_range : t -> zone -> Region.t
val is_local : t -> core:int -> addr:Addr.t -> bool
val pp : Format.formatter -> t -> unit
