(** Virtual Machine Control Structure.

    The per-core hardware context describing one guest: its entry
    state (mirroring what the Pisces trampoline would have handed the
    co-kernel), the execution controls selecting which operations trap,
    and the exit plumbing.  The Covirt controller writes this structure
    from the host side; the Covirt hypervisor loads it and handles its
    exits — the split that gives the paper's architecture its
    asynchronous-update property.

    The exit handler is installed by the hypervisor at launch.  Exits
    are delivered synchronously by {!Vmx} with entry/exit costs charged
    to the guest's core. *)

type vapic_mode =
  | Vapic_off  (** no APIC virtualization: ICR writes go to hardware *)
  | Vapic_full
      (** trap-and-emulate: ICR writes exit, incoming interrupts exit *)
  | Vapic_piv of { notification_vector : int }
      (** ICR writes still exit (whitelisting), incoming IPIs are
          posted exitlessly; external interrupts (timer) still exit *)

type controls = {
  ept : Ept.t option;  (** memory protection *)
  msr_bitmap : Msr.Bitmap.t option;
  io_bitmap : Io_port.Bitmap.t option;
  vapic : vapic_mode;
}

type guest_state = {
  entry_rip : Addr.t;  (** co-kernel start address *)
  boot_params_gpa : Addr.t;  (** passed in a register at launch *)
  long_mode : bool;  (** launched directly into 64-bit long mode *)
}

type exit_reason =
  | Ept_violation of Ept.violation
  | Icr_write of Apic.icr
  | Msr_access of { msr : int; write : bool; value : int64 }
  | Io_access of { port : int; write : bool; value : int }
  | Cpuid
  | Xsetbv
  | Hlt
  | External_interrupt of { vector : int }
  | Nmi_exit
  | Abort of { what : string }
      (** double fault / triple fault class errors *)

type action =
  | Resume  (** retry / continue the guest (after emulation) *)
  | Skip  (** suppress the trapped operation (e.g. drop an errant IPI) *)
  | Kill of { reason : string }  (** terminate the enclave *)

type stats = {
  mutable exits_total : int;
  mutable exits_ept : int;
  mutable exits_icr : int;
  mutable exits_msr : int;
  mutable exits_io : int;
  mutable exits_interrupt : int;
  mutable exits_nmi : int;
  mutable exits_hlt : int;
  mutable exits_emul : int;  (** cpuid/xsetbv *)
  mutable exits_abort : int;
}

type t = {
  vcpu : int;  (** core this context is bound to *)
  enclave : int;
  guest : guest_state;
  mutable controls : controls;
  mutable exit_handler : (exit_reason -> action) option;
  mutable launched : bool;
  stats : stats;
}

val create :
  vcpu:int -> enclave:int -> guest:guest_state -> controls:controls -> t

val no_controls : controls
(** Everything off: the "Covirt with no features" configuration. *)

val note_exit : t -> exit_reason -> unit
(** Update the per-reason counters. *)

val exit_reason_name : exit_reason -> string
(** Stable, payload-free short name for an exit reason
    (["ept-violation"], ["icr-write"], ...) — the metric/trace label
    dimension used by the observability layer. *)

val exit_reason_code : exit_reason -> int
(** Dense arm index ([0 .. exit_reason_arms - 1]) in declaration
    order — the coverage-map key the replay fuzzer's guidance uses.
    Adding a constructor must extend this (the compiler enforces it)
    and bump {!exit_reason_arms}. *)

val exit_reason_arms : int
(** Number of {!exit_reason} constructors (the coverage-map arm
    dimension). *)

val pp_exit_reason : Format.formatter -> exit_reason -> unit
(** Full rendering including the reason's payload (faulting GPA, MSR
    number, vector, ...). *)
