(** Resource owners.

    Every CPU core and physical memory region is owned by the host OS,
    by an enclave, or (for memory) by a device's MMIO window; free
    memory is owned by nobody.  Ownership is what Covirt enforces, so
    it is a first-class notion of the simulated machine. *)

type t = Host | Enclave of int | Device of string | Free

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
