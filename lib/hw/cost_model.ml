type t = {
  ghz : float;
  l1_size : int;
  l2_size : int;
  l3_size : int;
  l1_hit : int;
  l2_hit : int;
  l3_hit : int;
  dram_local : int;
  dram_remote : int;
  line_bytes : int;
  stream_line_local : int;
  stream_line_remote : int;
  bw_channels_per_zone : int;
  flop_cycles : float;
  dtlb_entries_4k : int;
  dtlb_entries_2m : int;
  dtlb_entries_1g : int;
  stlb_entries_4k : int;
  pt_walk_native : int;
  ept_walk_extra_4k : int;
  ept_walk_extra_2m : int;
  ept_walk_extra_1g : int;
  guest_tlbmiss_tax : int;
  vapic_tlbmiss_tax : int;
  vmexit_roundtrip : int;
  exit_dispatch : int;
  vmcs_load : int;
  vmlaunch : int;
  ipi_send_native : int;
  ipi_recv_native : int;
  icr_whitelist_check : int;
  piv_post : int;
  vapic_inject : int;
  nmi_roundtrip : int;
  timer_handler : int;
  ept_entry_update : int;
  ctrl_channel_msg : int;
  page_list_per_page : int;
}

let default =
  {
    ghz = 1.7;
    l1_size = 32 * 1024;
    l2_size = 256 * 1024;
    l3_size = 15 * 1024 * 1024;
    l1_hit = 4;
    l2_hit = 12;
    l3_hit = 42;
    dram_local = 190;
    dram_remote = 310;
    line_bytes = 64;
    stream_line_local = 12;
    stream_line_remote = 20;
    bw_channels_per_zone = 2;
    flop_cycles = 0.5;
    dtlb_entries_4k = 64;
    dtlb_entries_2m = 32;
    dtlb_entries_1g = 4;
    stlb_entries_4k = 1536;
    pt_walk_native = 30;
    ept_walk_extra_4k = 24;
    ept_walk_extra_2m = 4;
    ept_walk_extra_1g = 2;
    guest_tlbmiss_tax = 1;
    vapic_tlbmiss_tax = 4;
    vmexit_roundtrip = 1300;
    exit_dispatch = 250;
    vmcs_load = 900;
    vmlaunch = 1100;
    ipi_send_native = 500;
    ipi_recv_native = 650;
    icr_whitelist_check = 90;
    piv_post = 150;
    vapic_inject = 800;
    nmi_roundtrip = 1500;
    timer_handler = 1800;
    ept_entry_update = 12;
    ctrl_channel_msg = 1200;
    page_list_per_page = 35;
  }

(* Set-associative geometry for a TLB bank of [entries] slots:
   Broadwell-style 4-way banks, sets rounded down to a power of two so
   the index is a mask.  Tiny banks (the 1G class) degenerate to one
   fully-associative set. *)
let tlb_geometry ~entries =
  if entries <= 0 then invalid_arg "Cost_model.tlb_geometry";
  let ways = min 4 entries in
  let target = max 1 (entries / ways) in
  let rec pow2_floor p = if p * 2 <= target then pow2_floor (p * 2) else p in
  (pow2_floor 1, ways)

let dram t ~local = if local then t.dram_local else t.dram_remote
let stream_line t ~local = if local then t.stream_line_local else t.stream_line_remote

let tlb_reach t ~page_size =
  match (page_size : Addr.page_size) with
  | Page_4k -> (t.dtlb_entries_4k + t.stlb_entries_4k) * Addr.page_size_4k
  | Page_2m -> t.dtlb_entries_2m * Addr.page_size_2m
  | Page_1g -> t.dtlb_entries_1g * Addr.page_size_1g

let ept_walk_extra t = function
  | Addr.Page_4k -> t.ept_walk_extra_4k
  | Addr.Page_2m -> t.ept_walk_extra_2m
  | Addr.Page_1g -> t.ept_walk_extra_1g

let random_profile t ~working_set ~sharers =
  assert (working_set > 0 && sharers > 0);
  let ws = float_of_int working_set in
  let effective_l3 = float_of_int t.l3_size /. float_of_int sharers in
  let level_hit size = Float.min 1.0 (size /. ws) in
  let p1 = level_hit (float_of_int t.l1_size) in
  let p2 = Float.max 0.0 (level_hit (float_of_int t.l2_size) -. p1) in
  let p3 = Float.max 0.0 (level_hit effective_l3 -. p1 -. p2) in
  let pm = Float.max 0.0 (1.0 -. p1 -. p2 -. p3) in
  let cycles =
    (p1 *. float_of_int t.l1_hit)
    +. (p2 *. float_of_int t.l2_hit)
    +. (p3 *. float_of_int t.l3_hit)
    +. (pm *. float_of_int t.dram_local)
  in
  (cycles, pm)

let expected_random_cycles t ~working_set ~sharers =
  fst (random_profile t ~working_set ~sharers)
