(** Guest page tables (the kernel's own mappings).

    An x86-64 kernel owns a radix page table of exactly the same shape
    as an EPT; only the walk's consumer differs.  We reuse the
    {!Ept} radix structure for the mapping machinery and give it
    kernel-side semantics: a miss here is a {e guest page fault},
    delivered to the kernel itself — not a protection event, and
    invisible to Covirt.  Kitten builds an identity {e direct map} of
    all physical RAM at boot (the LWK policy that makes wild writes
    physically possible natively — the hardware will happily translate
    them; only Covirt's EPT can veto). *)

type t

val create : ?max_page:Addr.page_size -> unit -> t
val map_region : t -> Region.t -> unit
val unmap_region : t -> Region.t -> unit

val translate : t -> Addr.t -> (Addr.page_size, Addr.t) result
(** [Error gva] is a page fault at that address. *)

val maps : t -> Addr.t -> bool
val mapped : t -> Region.Set.t
val leaf_counts : t -> int * int * int

val direct_map : total_mem:int -> t
(** The boot-time identity map of [\[0, total_mem)], coalesced into
    the largest possible pages. *)
