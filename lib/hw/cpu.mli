(** A CPU core.

    Carries the per-core state the rest of the stack operates on: the
    timestamp counter that accumulates simulated cycles, the local
    APIC, the TLB, the execution mode (host or VMX non-root under a
    VMCS), and the owner the core is currently assigned to. *)

type mode = Host_mode | Guest_mode of Vmcs.t

type t = {
  id : int;
  zone : Numa.zone;
  apic : Apic.t;
  tlb : Tlb.t;
  mutable tsc : int;
  mutable mode : mode;
  mutable owner : Owner.t;
  mutable online : bool;
  mutable isr : (t -> int -> unit) option;
      (** the running kernel's interrupt dispatch entry point *)
  mutable nmi_handler : (t -> unit) option;
  mutable guest_pt : Guest_pt.t option;
      (** the running kernel's page tables; [None] until a kernel
          installs its CR3 *)
}

val create : id:int -> zone:Numa.zone -> model:Cost_model.t ->
  rng:Covirt_sim.Rng.t -> t

val charge : t -> int -> unit
(** Advance the TSC by a cycle count ([Invalid_argument] if
    negative). *)

val rdtsc : t -> int

val vmcs : t -> Vmcs.t option
val in_guest : t -> bool
val enclave : t -> int option
(** Enclave id when the core is owned by one (independent of mode —
    native co-kernels own cores without a VMCS). *)

val pp : Format.formatter -> t -> unit
