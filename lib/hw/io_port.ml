type t = (int, int) Hashtbl.t

let pic_master_cmd = 0x20
let pit_channel0 = 0x40
let serial_com1 = 0x3f8
let reset_port = 0xcf9

let create () = Hashtbl.create 16
let read t port = Option.value ~default:0 (Hashtbl.find_opt t port)
let write t port v = Hashtbl.replace t port (v land 0xff)

module Bitmap = struct
  type t = Bytes.t (* 65536 ports, one bit each *)

  let create () = Bytes.make 8192 '\000'

  let protect t port =
    if port < 0 || port > 0xffff then invalid_arg "Io_port.Bitmap.protect";
    let byte = port lsr 3 and bit = port land 7 in
    Bytes.set t byte (Char.chr (Char.code (Bytes.get t byte) lor (1 lsl bit)))

  let protect_range t ~lo ~hi =
    for p = lo to hi do
      protect t p
    done

  let is_protected t port =
    if port < 0 || port > 0xffff then invalid_arg "Io_port.Bitmap.is_protected";
    let byte = port lsr 3 and bit = port land 7 in
    Char.code (Bytes.get t byte) land (1 lsl bit) <> 0

  let default_sensitive () =
    let t = create () in
    protect_range t ~lo:pic_master_cmd ~hi:(pic_master_cmd + 1);
    protect_range t ~lo:0xa0 ~hi:0xa1 (* PIC slave *);
    protect_range t ~lo:pit_channel0 ~hi:(pit_channel0 + 3);
    protect t reset_port;
    t
end
