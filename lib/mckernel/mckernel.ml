open Covirt_hw
open Covirt_pisces

type t = {
  machine : Machine.t;
  enclave : Enclave.t;
  page_table : Guest_pt.t;
  mutable believed : Region.Set.t;
  mutable heap_free : Region.Set.t;
  proxy : Proxy.t;
  mutable delegated : int;
}

let enclave_id t = t.enclave.Enclave.id
let memmap t = t.believed
let proxy t = t.proxy
let context_cpu t ~core = Machine.cpu t.machine core
let syscalls_delegated t = t.delegated

let kernel_reserved = 16 * Covirt_sim.Units.mib

let handle_host_msg t msg =
  let bsp = Machine.cpu t.machine (Enclave.bsp t.enclave) in
  let ack seq =
    Ctrl_channel.send_to_host t.machine ~enclave_cpu:bsp t.enclave.Enclave.channel
      (Message.Ack { seq })
  in
  Cpu.charge bsp 500;
  match msg with
  | Message.Add_memory { seq; region } ->
      t.believed <- Region.Set.add t.believed region;
      t.heap_free <- Region.Set.add t.heap_free region;
      ack seq
  | Message.Remove_memory { seq; region } ->
      t.believed <- Region.Set.remove t.believed region;
      t.heap_free <- Region.Set.remove t.heap_free region;
      ack seq
  | Message.Xemem_map { seq; _ } | Message.Xemem_unmap { seq; _ } ->
      (* IHK/McKernel shares through replication, not XEMEM *)
      ack seq
  | Message.Grant_ipi_vector { seq; _ } | Message.Revoke_ipi_vector { seq; _ }
  | Message.Assign_device { seq; _ } | Message.Revoke_device { seq; _ }
  | Message.Shutdown { seq } ->
      ack seq
  | Message.Syscall_reply _ -> ()

let boot_core_body instance_ref machine enclave (cpu : Cpu.t) ~bsp params =
  Machine.cpuid machine cpu;
  Machine.xsetbv machine cpu;
  Cpu.charge cpu 60_000 (* heavier bring-up: the IHK layer *);
  if bsp then begin
    let believed = Region.Set.of_list params.Boot_params.assigned_memory in
    let heap =
      match params.Boot_params.assigned_memory with
      | [] -> Region.Set.empty
      | first :: _ ->
          Region.Set.remove believed
            (Region.make ~base:first.Region.base ~len:kernel_reserved)
    in
    let t =
      {
        machine;
        enclave;
        page_table =
          Guest_pt.direct_map
            ~total_mem:(Numa.total_mem machine.Machine.topology);
        believed;
        heap_free = heap;
        proxy =
          Proxy.create machine
            ~host_cpu:(Machine.cpu machine 0)
            ~enclave_id:enclave.Enclave.id;
        delegated = 0;
      }
    in
    instance_ref := Some t;
    enclave.Enclave.msg_handler <- Some (handle_host_msg t);
    Ctrl_channel.send_to_host machine ~enclave_cpu:cpu enclave.Enclave.channel
      Message.Ready
  end;
  (match !instance_ref with
  | Some t -> cpu.Cpu.guest_pt <- Some t.page_table
  | None -> ());
  Cpu.charge cpu 8_000

let make_kernel () =
  let instance_ref = ref None in
  let kernel =
    {
      Pisces.kernel_name = "mckernel";
      boot_core =
        (fun machine enclave cpu ~bsp params ->
          boot_core_body instance_ref machine enclave cpu ~bsp params);
    }
  in
  (kernel, fun () -> !instance_ref)

let alloc_app_memory t ~bytes =
  if bytes <= 0 then invalid_arg "Mckernel.alloc_app_memory";
  let bytes = Addr.page_up bytes ~size:Addr.page_size_4k in
  let candidate =
    Region.Set.to_list t.heap_free
    |> List.find_map (fun r ->
           let base = Addr.page_up r.Region.base ~size:Addr.page_size_2m in
           if base + bytes <= Region.limit r then
             Some (Region.make ~base ~len:bytes)
           else None)
  in
  match candidate with
  | None -> Error "mckernel: out of contiguous memory"
  | Some region ->
      t.heap_free <- Region.Set.remove t.heap_free region;
      (* the IHK contract: replicate before anything can reference it *)
      Proxy.mirror t.proxy region;
      Ok region

let free_app_memory t region =
  Proxy.unmirror t.proxy region;
  t.heap_free <- Region.Set.add t.heap_free region

let syscall t ~core ~number ~buffer =
  let cpu = Machine.cpu t.machine core in
  t.delegated <- t.delegated + 1;
  (* trap into McKernel, marshal, IPI the host, wait for the proxy *)
  Cpu.charge cpu 900;
  Ctrl_channel.send_to_host t.machine ~enclave_cpu:cpu t.enclave.Enclave.channel
    (Message.Syscall_request { seq = -t.delegated; number; arg = 0 });
  let host = Machine.cpu t.machine 0 in
  let host_start = Cpu.rdtsc host in
  let ret = Proxy.delegate t.proxy ~number ~buffer in
  (* the caller blocks on the proxy *)
  Cpu.charge cpu (Cpu.rdtsc host - host_start);
  ret

let wild_write t ~core addr =
  Machine.store t.machine (Machine.cpu t.machine core) addr

let desync_mirror t region = Proxy.unmirror t.proxy region
