(** The IHK/McKernel proxy process (host side).

    IHK/McKernel's signature design point: every McKernel process has a
    shadow "proxy process" on the host Linux, and system calls are
    delegated to it — which "requires address space replication" so the
    proxy can dereference the application's pointers.  This module is
    that host-side half: a mirror of the application's memory regions
    that must be kept in sync (per-page transmission costs, charged to
    the host core) and a delegation endpoint that services forwarded
    calls against the mirror.

    The replication is also a fault surface of its own: a syscall whose
    buffer lies outside the mirrored set is a delegation failure the
    kernel must surface (modelled as -EFAULT), unlike Hobbes' XEMEM
    forwarding where the regions are shared rather than replicated. *)

open Covirt_hw

type t

val create : Machine.t -> host_cpu:Cpu.t -> enclave_id:int -> t

val mirror : t -> Region.t -> unit
(** Replicate an application region into the proxy's address space
    (charged per 4K page). *)

val unmirror : t -> Region.t -> unit

val mirrored : t -> Region.Set.t

val delegate : t -> number:int -> buffer:Region.t option -> int
(** Service a delegated syscall.  A buffer outside the mirror is
    -EFAULT (-14); otherwise the call succeeds with a nominal result
    and the proxy charges the host for the work. *)

val delegations : t -> int
val faults : t -> int
(** -EFAULT count (mirror desyncs observed). *)
