open Covirt_hw

type t = {
  machine : Machine.t;
  host_cpu : Cpu.t;
  enclave_id : int;
  mutable mirrored : Region.Set.t;
  mutable delegations : int;
  mutable faults : int;
}

let create machine ~host_cpu ~enclave_id =
  {
    machine;
    host_cpu;
    enclave_id;
    mirrored = Region.Set.empty;
    delegations = 0;
    faults = 0;
  }

let page_cost t pages =
  Cpu.charge t.host_cpu
    (pages * t.machine.Machine.model.Cost_model.page_list_per_page)

let pages_of region = region.Region.len / Addr.page_size_4k

let mirror t region =
  page_cost t (pages_of region);
  t.mirrored <- Region.Set.add t.mirrored region

let unmirror t region =
  page_cost t (pages_of region / 4 (* teardown is cheaper than setup *));
  t.mirrored <- Region.Set.remove t.mirrored region

let mirrored t = t.mirrored

let delegate t ~number ~buffer =
  t.delegations <- t.delegations + 1;
  (* entering the proxy costs a host context switch either way *)
  Cpu.charge t.host_cpu 2_000;
  match buffer with
  | Some region
    when not
           (Region.Set.mem_range t.mirrored ~base:region.Region.base
              ~len:region.Region.len) ->
      t.faults <- t.faults + 1;
      -14 (* -EFAULT: the mirror is out of sync with the application *)
  | Some region ->
      (* the proxy touches the replicated buffer *)
      Cpu.charge t.host_cpu
        (max 1 (region.Region.len / t.machine.Machine.model.Cost_model.line_bytes)
        * t.machine.Machine.model.Cost_model.l3_hit);
      ignore number;
      region.Region.len
  | None -> 0

let delegations t = t.delegations
let faults t = t.faults
