(** The McKernel lightweight kernel (IHK/McKernel architecture).

    A third co-kernel design point, "similar in many ways to Hobbes,
    except the degree of integration between the co-kernel and host
    OS, Linux, is substantially higher": {e every} system call is
    delegated to the host through the per-process {!Proxy}, and the
    application's address space is replicated into the proxy so the
    host can dereference its pointers.

    The Covirt-relevant properties match Kitten's where they must (a
    believed memory map synchronized over the control channel, a full
    direct map, native hardware access) and differ where IHK/McKernel
    differs (no local syscall fast path, replication instead of shared
    mappings, a mirror that can desynchronize).  The controller
    protects it with zero McKernel-specific code — the paper's
    generalizability claim. *)

open Covirt_hw
open Covirt_pisces

type t

val make_kernel : unit -> Pisces.kernel * (unit -> t option)
val enclave_id : t -> int
val memmap : t -> Region.Set.t
(** The believed usable set. *)

val proxy : t -> Proxy.t
val context_cpu : t -> core:int -> Cpu.t

val alloc_app_memory : t -> bytes:int -> (Region.t, string) result
(** Allocate application memory AND replicate it into the proxy (the
    IHK/McKernel contract: allocation is visible host-side before any
    syscall can reference it). *)

val free_app_memory : t -> Region.t -> unit
(** Release and unmirror. *)

val syscall : t -> core:int -> number:int -> buffer:Region.t option -> int
(** Always delegated: trap into the kernel, ship to the proxy, charge
    the delegation round trip, return the proxy's result. *)

val syscalls_delegated : t -> int

(* Fault injectors. *)

val wild_write : t -> core:int -> Addr.t -> unit

val desync_mirror : t -> Region.t -> unit
(** The replication-bug class: drop a region from the proxy's mirror
    while the application still uses it (the IHK/McKernel analogue of
    the XEMEM cleanup bug). *)
