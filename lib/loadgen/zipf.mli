(** Zipf-distributed rank sampling.

    Tenant traffic on a dense node is famously skewed: a handful of
    hot tenants dominate the control channel while a long tail of cold
    ones mostly sits idle.  The load generator models that with a
    Zipf(s) distribution over tenant ranks — rank [k] (0-based) is
    drawn with probability proportional to [1 / (k+1)^s].

    The sampler is a precomputed CDF table walked by binary search:
    creation is O(n), each draw is one [Rng.float] plus O(log n), and
    equal seeds give equal rank sequences bit for bit — the property
    the fleet-sharded load generator's determinism rests on. *)

type t

val create : n:int -> s:float -> t
(** Distribution over ranks [0 .. n-1] with exponent [s >= 0.].
    [s = 0.] is uniform.  [Invalid_argument] on [n <= 0], negative or
    non-finite [s]. *)

val n : t -> int
val s : t -> float

val sample : t -> Covirt_sim.Rng.t -> int
(** Draw a rank in [0 .. n-1]. *)

val pmf : t -> int -> float
(** Exact probability of rank [k]. *)

val cdf : t -> int -> float
(** Cumulative probability of ranks [0 .. k]. *)
