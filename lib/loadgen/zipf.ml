module Rng = Covirt_sim.Rng

type t = { n : int; s : float; cum : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if (not (Float.is_finite s)) || s < 0. then
    invalid_arg "Zipf.create: s must be finite and non-negative";
  let cum = Array.make n 0. in
  let acc = ref 0. in
  for k = 0 to n - 1 do
    acc := !acc +. (1. /. Float.pow (float_of_int (k + 1)) s);
    cum.(k) <- !acc
  done;
  let total = !acc in
  for k = 0 to n - 1 do
    cum.(k) <- cum.(k) /. total
  done;
  cum.(n - 1) <- 1.;
  { n; s; cum }

let n t = t.n
let s t = t.s

let sample t rng =
  let u = Rng.float rng in
  (* First rank whose cumulative probability exceeds [u]. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cum.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

let pmf t k =
  if k < 0 || k >= t.n then invalid_arg "Zipf.pmf";
  if k = 0 then t.cum.(0) else t.cum.(k) -. t.cum.(k - 1)

let cdf t k =
  if k < 0 || k >= t.n then invalid_arg "Zipf.cdf";
  t.cum.(k)
