open Covirt_pisces
module Rng = Covirt_sim.Rng
module Units = Covirt_sim.Units
module Table = Covirt_sim.Table
module Metrics = Covirt_obs.Metrics
module Fleet = Covirt_fleet.Fleet
module Hobbes = Covirt_hobbes.Hobbes
module Kitten = Covirt_kitten.Kitten
module Xemem = Covirt_xemem.Xemem
module Name_service = Covirt_xemem.Name_service
module Supervisor = Covirt_resilience.Supervisor
module Verifier = Covirt_analysis.Verifier
module Admission = Covirt.Admission

type fault_plan = { tenant : int; after_op : int }

type spec = {
  tenants : int;
  ops : int;
  zipf_s : float;
  seed : int;
  shards : int;
  config : Covirt.Config.t;
  max_in_flight : int;
  bucket_capacity : int;
  refill_cycles : int;
  settle_ops : int;
  tenant_mib : int;
  fault : fault_plan option;
}

let spec ?(tenants = 64) ?(ops = 512) ?(zipf_s = 1.1) ?(seed = 9) ?(shards = 4)
    ?(config = Covirt.Config.full) ?(max_in_flight = 8) ?(bucket_capacity = 8)
    ?(refill_cycles = 0) ?(settle_ops = 4) ?(tenant_mib = 24) ?fault () =
  {
    tenants;
    ops;
    zipf_s;
    seed;
    shards;
    config;
    max_in_flight;
    bucket_capacity;
    refill_cycles;
    settle_ops;
    tenant_mib;
    fault;
  }

let validate spec =
  if spec.tenants <= 0 then invalid_arg "Loadgen: tenants must be positive";
  if spec.ops < 0 then invalid_arg "Loadgen: ops must be non-negative";
  if spec.shards <= 0 then invalid_arg "Loadgen: shards must be positive";
  if spec.shards > spec.tenants then
    invalid_arg "Loadgen: shards must not exceed tenants";
  if spec.tenant_mib < 18 then
    (* Kitten reserves a 16 MiB kernel head of the first region; the
       heap needs at least one 2M-aligned chunk beyond it. *)
    invalid_arg "Loadgen: tenant_mib must be at least 18";
  if spec.settle_ops < 0 then
    invalid_arg "Loadgen: settle_ops must be non-negative"

type counters = {
  creates : int;
  works : int;
  exports : int;
  attaches : int;
  detaches : int;
  grants : int;
  revokes : int;
  destroys : int;
  op_errors : int;
  rejected_boot_limit : int;
  rejected_rate_limited : int;
  faults_injected : int;
  recoveries : int;
}

type leak_report = {
  tenant_slots : int;
  live_tenants : int;
  live_enclaves : int;
  kernel_entries : int;
  controller_instances : int;
  live_exports : int;
  segments : int;
  vectors_outstanding : int;
  vectors_expected : int;
  vectors_lost : int;
  unclaimed_acks : int;
  admission_tenants : int;
}

let leak_free l =
  l.live_enclaves = l.live_tenants
  && l.kernel_entries = l.live_tenants
  && l.controller_instances = l.live_tenants
  && l.segments = l.live_exports
  && l.vectors_outstanding = l.vectors_expected
  && l.vectors_lost = 0 && l.unclaimed_acks = 0
  && l.admission_tenants <= l.tenant_slots

type shard_report = {
  shard : int;
  sc : counters;
  admitted : int;
  peak_in_flight : int;
  leaks : leak_report;
  enclaves_checked : int;
  leaves_checked : int;
  grants_checked : int;
  violations : int;
  ghz : float;
  metrics : Metrics.snapshot;
}

type report = {
  spec : spec;
  shards : shard_report array;
  merged : Metrics.snapshot;
}

(* ------------------------------------------------------------------ *)
(* One shard = one node.                                               *)

type tenant = {
  g : int;  (* global tenant id *)
  local : int;
  core : int;
  zone : int;
  t_rng : Rng.t;  (* this tenant's private op stream *)
  mutable enclave : Enclave.t option;
  mutable kitten : Kitten.t option;
  mutable heap : int option;
  mutable export_name : string option;
  mutable export_gen : int;
  mutable attached : string option;
  mutable grant : (int * int * int) option;  (* va, vb, peer enclave id *)
}

type mut_counters = {
  mutable m_creates : int;
  mutable m_works : int;
  mutable m_exports : int;
  mutable m_attaches : int;
  mutable m_detaches : int;
  mutable m_grants : int;
  mutable m_revokes : int;
  mutable m_destroys : int;
  mutable m_op_errors : int;
  mutable m_rej_boot : int;
  mutable m_rej_rate : int;
  mutable m_injected : int;
  mutable m_recovered : int;
}

let hist_family () = Metrics.histogram ~max_series:65536 "loadgen.op.cycles"
let ops_family () = Metrics.counter ~max_series:64 "loadgen.ops"

let reject_family () =
  Metrics.counter ~max_series:64 "loadgen.admission.rejected"

let tenant_name g = Printf.sprintf "lg-%d" g

let run_shard spec ~shard_seed ~index =
  let mib = Units.mib in
  let lo, hi = Fleet.slice ~n:spec.tenants ~shards:spec.shards index in
  let nlocal = hi - lo in
  let olo, ohi = Fleet.slice ~n:spec.ops ~shards:spec.shards index in
  let zones = 2 in
  let cores_per_zone = max 1 ((nlocal + 1 + zones - 1) / zones) in
  let mem_mib_per_zone = 128 + (cores_per_zone * (spec.tenant_mib + 2)) + 64 in
  let h =
    Hobbes.create_node ~seed:shard_seed ~zones ~cores_per_zone
      ~mem_mib_per_zone ()
  in
  let ps = Hobbes.pisces h in
  let xem = Hobbes.xemem h in
  let controller = Covirt.enable ps ~config:spec.config in
  let ghz = Pisces.tsc_ghz ps in
  let vector_space = Hobbes.free_vector_count h in
  let adm =
    Admission.create ~bucket_capacity:spec.bucket_capacity
      ~refill_cycles:spec.refill_cycles ~max_in_flight:spec.max_in_flight ()
  in
  let before = Metrics.snapshot () in
  let hist = hist_family () in
  let ops_ctr = ops_family () in
  let rej_ctr = reject_family () in
  let shard_rng = Rng.create ~seed:(Rng.split_seed ~seed:shard_seed ~index:0) in
  let zipf = Zipf.create ~n:nlocal ~s:spec.zipf_s in
  let tenants =
    Array.init nlocal (fun i ->
        let core = 1 + i in
        {
          g = lo + i;
          local = i;
          core;
          zone = core / cores_per_zone;
          t_rng = Rng.create ~seed:(Rng.split_seed ~seed:shard_seed ~index:(i + 1));
          enclave = None;
          kitten = None;
          heap = None;
          export_name = None;
          export_gen = 0;
          attached = None;
          grant = None;
        })
  in
  let victim_local =
    match spec.fault with
    | Some f when f.tenant >= lo && f.tenant < hi -> Some (f.tenant - lo)
    | _ -> None
  in
  let sup =
    match victim_local with
    | Some _ ->
        Some
          (Supervisor.create
             ~seed:(Rng.split_seed ~seed:shard_seed ~index:0x5afe)
             controller)
    | None -> None
  in
  let cnt =
    {
      m_creates = 0;
      m_works = 0;
      m_exports = 0;
      m_attaches = 0;
      m_detaches = 0;
      m_grants = 0;
      m_revokes = 0;
      m_destroys = 0;
      m_op_errors = 0;
      m_rej_boot = 0;
      m_rej_rate = 0;
      m_injected = 0;
      m_recovered = 0;
    }
  in
  let pending = Queue.create () in
  (* Latency = host control-core work plus the tenant's own core work
     for the op; both are content-dependent cycle charges, so one
     tenant's history (including a crash recovery) cannot move a
     neighbour's numbers. *)
  let measure tn kind f =
    let h0 = Pisces.host_tsc ps and c0 = Pisces.core_tsc ps tn.core in
    let r = f () in
    let dt =
      Pisces.host_tsc ps - h0 + (Pisces.core_tsc ps tn.core - c0)
    in
    if !Metrics.on then begin
      Metrics.observe
        (Metrics.cell hist { Metrics.enclave = tn.g; cpu = -1; dim = kind })
        (float_of_int dt);
      Metrics.add
        (Metrics.cell ops_ctr { Metrics.enclave = -1; cpu = -1; dim = kind })
        1
    end;
    r
  in
  let note_reject tn rej =
    let dim =
      match rej with
      | Admission.Boot_limit _ ->
          cnt.m_rej_boot <- cnt.m_rej_boot + 1;
          "boot-limit"
      | Admission.Rate_limited _ ->
          cnt.m_rej_rate <- cnt.m_rej_rate + 1;
          "rate-limited"
    in
    if !Metrics.on then
      Metrics.add
        (Metrics.cell rej_ctr { Metrics.enclave = tn.g; cpu = -1; dim })
        1
  in
  let clear_tenant tn =
    tn.enclave <- None;
    tn.kitten <- None;
    tn.heap <- None;
    tn.export_name <- None;
    tn.attached <- None;
    tn.grant <- None
  in
  let launch tn () =
    Hobbes.launch_enclave h ~name:(tenant_name tn.g) ~cores:[ tn.core ]
      ~mem:[ (tn.zone, spec.tenant_mib * mib) ]
      ()
  in
  let neighbour tn = tenants.((tn.local + 1) mod nlocal) in
  let do_work tn =
    match tn.kitten with
    | None -> ()
    | Some k ->
        cnt.m_works <- cnt.m_works + 1;
        measure tn "work" (fun () ->
            let ctx = Kitten.context k ~core:tn.core in
            Kitten.run_with_ticks ctx (fun () ->
                Kitten.heartbeat ctx;
                let heap =
                  match tn.heap with
                  | Some a -> a
                  | None -> (
                      match Kitten.kalloc k ~bytes:(64 * 1024) with
                      | Ok a ->
                          tn.heap <- Some a;
                          a
                      | Error e -> failwith ("loadgen: kalloc: " ^ e))
                in
                Kitten.store_addr ctx (heap + 128);
                Kitten.load_addr ctx (heap + 128)))
  in
  let do_create tn ~opi =
    match
      Admission.admit_boot adm ~tenant:tn.g ~now:(Pisces.core_tsc ps tn.core)
    with
    | Error rej -> note_reject tn rej
    | Ok token -> (
        let res =
          measure tn "create" (fun () ->
              match (sup, victim_local) with
              | Some s, Some v when v = tn.local ->
                  Supervisor.manage s ~name:(tenant_name tn.g)
                    ~launch:(launch tn)
              | _ -> launch tn ())
        in
        match res with
        | Ok (e, k) ->
            tn.enclave <- Some e;
            tn.kitten <- Some k;
            cnt.m_creates <- cnt.m_creates + 1;
            Queue.push (token, opi + spec.settle_ops) pending
        | Error msg ->
            Admission.settle adm token;
            failwith ("loadgen: launch failed: " ^ msg))
  in
  let do_export tn =
    match (tn.enclave, tn.export_name) with
    | Some e, None ->
        let name = Printf.sprintf "seg-%d-%d" tn.g tn.export_gen in
        measure tn "export" (fun () ->
            match
              Hobbes.export_window h e ~name ~offset:(4 * mib) ~len:(2 * mib)
            with
            | Ok _segid ->
                tn.export_name <- Some name;
                tn.export_gen <- tn.export_gen + 1;
                cnt.m_exports <- cnt.m_exports + 1
            | Error _ -> cnt.m_op_errors <- cnt.m_op_errors + 1)
    | _ -> do_work tn
  in
  let do_attach tn =
    let nb = neighbour tn in
    match (tn.enclave, tn.attached, nb.export_name) with
    | Some e, None, Some name when nb.local <> tn.local ->
        measure tn "attach" (fun () ->
            match Xemem.attach xem e ~name with
            | Ok (_addr, _len) ->
                tn.attached <- Some name;
                cnt.m_attaches <- cnt.m_attaches + 1
            | Error _ -> cnt.m_op_errors <- cnt.m_op_errors + 1)
    | _ -> do_work tn
  in
  let do_detach tn =
    match (tn.enclave, tn.attached) with
    | Some e, Some name ->
        measure tn "detach" (fun () ->
            (* The segment may be gone already: its exporter died and
               the runtime reclaimed it, force-detaching us.  Either
               way the attachment is over. *)
            (match Xemem.detach xem e ~name with
            | Ok () -> ()
            | Error _ -> ());
            tn.attached <- None;
            cnt.m_detaches <- cnt.m_detaches + 1)
    | _ -> do_work tn
  in
  let do_grant tn =
    let nb = neighbour tn in
    match (tn.enclave, tn.grant, nb.enclave) with
    | Some e, None, Some ne when nb.local <> tn.local ->
        measure tn "grant" (fun () ->
            match Hobbes.grant_vector_pair h e ne with
            | Ok (va, vb) ->
                tn.grant <- Some (va, vb, ne.Enclave.id);
                cnt.m_grants <- cnt.m_grants + 1
            | Error _ ->
                (* Vector space exhausted: a typed resource failure,
                   not a bug — the pool is finite by design. *)
                cnt.m_op_errors <- cnt.m_op_errors + 1)
    | _ -> do_work tn
  in
  let do_revoke tn =
    let nb = neighbour tn in
    match (tn.enclave, tn.grant) with
    | Some e, Some (va, vb, peer_id) ->
        measure tn "revoke" (fun () ->
            (match nb.enclave with
            | Some ne when ne.Enclave.id = peer_id ->
                (* Both incarnations still up: proper two-sided
                   revocation, vectors back to the pool. *)
                (match Pisces.revoke_ipi_vector ps e ~vector:va with
                | Ok () | Error _ -> ());
                (match Pisces.revoke_ipi_vector ps ne ~vector:vb with
                | Ok () | Error _ -> ());
                Hobbes.free_ipi_vector h va;
                Hobbes.free_ipi_vector h vb
            | _ ->
                (* The peer died since the grant: the destroy-time
                   scrub already revoked and freed both directions. *)
                ());
            tn.grant <- None;
            cnt.m_revokes <- cnt.m_revokes + 1)
    | _ -> do_work tn
  in
  let do_destroy tn =
    match tn.enclave with
    | Some e when victim_local <> Some tn.local ->
        measure tn "destroy" (fun () ->
            Pisces.destroy ps e;
            clear_tenant tn;
            cnt.m_destroys <- cnt.m_destroys + 1)
    | _ -> do_work tn
  in
  let injected = ref false in
  (* The injection is an extra action bolted onto an op slot: it draws
     from no stream, so the schedule every other tenant sees is the
     same as in a fault-free run. *)
  let maybe_inject opi =
    match (spec.fault, sup, victim_local) with
    | Some f, Some s, Some v when (not !injected) && opi >= f.after_op -> (
        let tn = tenants.(v) in
        match tn.enclave with
        | None -> ()  (* victim not booted yet; retry next op *)
        | Some _ -> (
            injected := true;
            cnt.m_injected <- cnt.m_injected + 1;
            let name = tenant_name tn.g in
            match
              Supervisor.run_protected s ~name (fun ctx ->
                  (* Wild write into host-reserved memory: outside the
                     victim's partition, contained by Covirt. *)
                  Kitten.store_addr ctx 4096)
            with
            | `Ok -> ()
            | `Recovered ->
                cnt.m_recovered <- cnt.m_recovered + 1;
                clear_tenant tn;
                tn.enclave <- Supervisor.enclave s ~name;
                tn.kitten <- Supervisor.kitten s ~name
            | `Quarantined _ -> clear_tenant tn))
    | _ -> ()
  in
  let run_op tn ~opi =
    match tn.enclave with
    | None -> do_create tn ~opi
    | Some _ -> (
        match
          Admission.admit_op adm ~tenant:tn.g
            ~now:(Pisces.core_tsc ps tn.core)
        with
        | Error rej -> note_reject tn rej
        | Ok () ->
            let d = Rng.int tn.t_rng ~bound:100 in
            if d < 30 then do_work tn
            else if d < 45 then do_export tn
            else if d < 60 then do_attach tn
            else if d < 70 then do_detach tn
            else if d < 80 then do_grant tn
            else if d < 88 then do_revoke tn
            else do_destroy tn)
  in
  for opi = olo to ohi - 1 do
    while
      (not (Queue.is_empty pending)) && snd (Queue.peek pending) <= opi
    do
      Admission.settle adm (fst (Queue.pop pending))
    done;
    maybe_inject opi;
    let rank = Zipf.sample zipf shard_rng in
    run_op tenants.(rank) ~opi
  done;
  (* Quiesce: settle outstanding boots, drain every channel, then audit. *)
  Queue.iter (fun (token, _) -> Admission.settle adm token) pending;
  Queue.clear pending;
  List.iter (fun e -> ignore (Pisces.service_channel ps e)) (Pisces.enclaves ps);
  let live_list = Array.to_list tenants |> List.filter (fun t -> t.enclave <> None) in
  let live = List.length live_list in
  let live_exports =
    List.length (List.filter (fun t -> t.export_name <> None) live_list)
  in
  let live_pairs =
    Array.to_list tenants
    |> List.filter (fun t ->
           t.enclave <> None
           &&
           match t.grant with
           | Some (_, _, peer_id) -> (
               match (neighbour t).enclave with
               | Some ne -> ne.Enclave.id = peer_id
               | None -> false)
           | None -> false)
    |> List.length
  in
  let unclaimed_acks =
    List.fold_left
      (fun acc (e : Enclave.t) ->
        acc + Ctrl_channel.pending_acks e.Enclave.channel)
      0 (Pisces.enclaves ps)
  in
  let free_v = Hobbes.free_vector_count h in
  let alloc_v = Hobbes.allocated_vector_count h in
  let leaks =
    {
      tenant_slots = nlocal;
      live_tenants = live;
      live_enclaves = List.length (Pisces.enclaves ps);
      kernel_entries = Hobbes.kernel_count h;
      controller_instances = List.length (Covirt.Controller.instances controller);
      live_exports;
      segments = List.length (Name_service.segments (Xemem.registry xem));
      vectors_outstanding = alloc_v;
      vectors_expected = 2 * live_pairs;
      vectors_lost = vector_space - free_v - alloc_v;
      unclaimed_acks;
      admission_tenants = Admission.tracked_tenants adm;
    }
  in
  let vr = Verifier.run ~registry:(Xemem.registry xem) controller in
  let sc =
    {
      creates = cnt.m_creates;
      works = cnt.m_works;
      exports = cnt.m_exports;
      attaches = cnt.m_attaches;
      detaches = cnt.m_detaches;
      grants = cnt.m_grants;
      revokes = cnt.m_revokes;
      destroys = cnt.m_destroys;
      op_errors = cnt.m_op_errors;
      rejected_boot_limit = cnt.m_rej_boot;
      rejected_rate_limited = cnt.m_rej_rate;
      faults_injected = cnt.m_injected;
      recoveries = cnt.m_recovered;
    }
  in
  {
    shard = index;
    sc;
    admitted = Admission.admitted adm;
    peak_in_flight = Admission.peak_in_flight adm;
    leaks;
    enclaves_checked = vr.Verifier.enclaves_checked;
    leaves_checked = vr.Verifier.leaves_checked;
    grants_checked = vr.Verifier.grants_checked;
    violations = List.length vr.Verifier.violations;
    ghz;
    metrics = Metrics.diff ~before ~after:(Metrics.snapshot ());
  }

let run ?domains spec =
  validate spec;
  let was = Metrics.enabled () in
  Metrics.enable ();
  let shards =
    Fleet.map ?domains ~seed:spec.seed ~shards:spec.shards
      (fun ~shard_seed ~index -> run_shard spec ~shard_seed ~index)
  in
  if not was then Metrics.disable ();
  let merged =
    Array.fold_left (fun acc s -> Metrics.merge acc s.metrics) Metrics.empty
      shards
  in
  { spec; shards; merged }

(* ------------------------------------------------------------------ *)
(* Derived views.                                                      *)

let totals r =
  Array.fold_left
    (fun a s ->
      let c = s.sc in
      {
        creates = a.creates + c.creates;
        works = a.works + c.works;
        exports = a.exports + c.exports;
        attaches = a.attaches + c.attaches;
        detaches = a.detaches + c.detaches;
        grants = a.grants + c.grants;
        revokes = a.revokes + c.revokes;
        destroys = a.destroys + c.destroys;
        op_errors = a.op_errors + c.op_errors;
        rejected_boot_limit = a.rejected_boot_limit + c.rejected_boot_limit;
        rejected_rate_limited =
          a.rejected_rate_limited + c.rejected_rate_limited;
        faults_injected = a.faults_injected + c.faults_injected;
        recoveries = a.recoveries + c.recoveries;
      })
    {
      creates = 0;
      works = 0;
      exports = 0;
      attaches = 0;
      detaches = 0;
      grants = 0;
      revokes = 0;
      destroys = 0;
      op_errors = 0;
      rejected_boot_limit = 0;
      rejected_rate_limited = 0;
      faults_injected = 0;
      recoveries = 0;
    }
    r.shards

let admitted r = Array.fold_left (fun a s -> a + s.admitted) 0 r.shards

let peak_in_flight r =
  Array.fold_left (fun a s -> max a s.peak_in_flight) 0 r.shards

let violations r = Array.fold_left (fun a s -> a + s.violations) 0 r.shards

let ok r =
  Array.for_all
    (fun s ->
      leak_free s.leaks && s.violations = 0
      && s.peak_in_flight <= r.spec.max_in_flight)
    r.shards

let ghz r = if Array.length r.shards = 0 then 1. else r.shards.(0).ghz

let hist_series r =
  match Metrics.find r.merged "loadgen.op.cycles" with
  | series -> series
  | exception Not_found -> []

let overall_hist r =
  List.fold_left
    (fun acc (_, v) ->
      match v with
      | Metrics.Histogram h -> (
          match acc with None -> Some h | Some a -> Some (Metrics.Hist.merge a h))
      | _ -> acc)
    None (hist_series r)
  |> function
  | Some h -> h
  | None ->
      { Metrics.Hist.base = 1.1; counts = [||]; n = 0; sum = 0.; max_v = 0. }

let cycles_to_ns r c = c /. ghz r

let quantile_ns r ~p =
  cycles_to_ns r (Metrics.Hist.quantile (overall_hist r) ~p)

let per_tenant r =
  let by_tenant = Hashtbl.create 256 in
  List.iter
    (fun ((l : Metrics.label), v) ->
      match v with
      | Metrics.Histogram h when l.Metrics.enclave >= 0 ->
          let cur =
            match Hashtbl.find_opt by_tenant l.Metrics.enclave with
            | Some a -> Metrics.Hist.merge a h
            | None -> h
          in
          Hashtbl.replace by_tenant l.Metrics.enclave cur
      | _ -> ())
    (hist_series r);
  Hashtbl.fold (fun g h acc -> (g, h) :: acc) by_tenant []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let transcript r =
  let buf = Buffer.create 4096 in
  let t = totals r in
  Buffer.add_string buf
    (Printf.sprintf
       "covirt loadgen: tenants=%d ops=%d zipf=%.2f seed=%d shards=%d \
        max-in-flight=%d bucket=%d refill=%d\n"
       r.spec.tenants r.spec.ops r.spec.zipf_s r.spec.seed r.spec.shards
       r.spec.max_in_flight r.spec.bucket_capacity r.spec.refill_cycles);
  let ops_tbl = Table.create ~columns:[ "op"; "count" ] in
  List.iter
    (fun (k, v) -> Table.add_row ops_tbl [ k; string_of_int v ])
    [
      ("create", t.creates);
      ("work", t.works);
      ("export", t.exports);
      ("attach", t.attaches);
      ("detach", t.detaches);
      ("grant", t.grants);
      ("revoke", t.revokes);
      ("destroy", t.destroys);
      ("errors", t.op_errors);
    ];
  Buffer.add_string buf (Table.render ops_tbl);
  Buffer.add_string buf
    (Printf.sprintf
       "admission: admitted=%d peak-in-flight=%d (bound %d) \
        boot-limit-rejects=%d rate-rejects=%d\n"
       (admitted r) (peak_in_flight r) r.spec.max_in_flight
       t.rejected_boot_limit t.rejected_rate_limited);
  if t.faults_injected > 0 || t.recoveries > 0 then
    Buffer.add_string buf
      (Printf.sprintf "faults: injected=%d recovered=%d\n" t.faults_injected
         t.recoveries);
  let lat_tbl =
    Table.create ~columns:[ "tenant"; "ops"; "p50 ns"; "p95 ns"; "p99 ns" ]
  in
  List.iter
    (fun (g, h) ->
      let q p = cycles_to_ns r (Metrics.Hist.quantile h ~p) in
      Table.add_row lat_tbl
        [
          string_of_int g;
          string_of_int h.Metrics.Hist.n;
          Printf.sprintf "%.0f" (q 50.);
          Printf.sprintf "%.0f" (q 95.);
          Printf.sprintf "%.0f" (q 99.);
        ])
    (per_tenant r);
  Buffer.add_string buf (Table.render lat_tbl);
  Buffer.add_string buf
    (Printf.sprintf "overall latency ns: p50=%.0f p95=%.0f p99=%.0f\n"
       (quantile_ns r ~p:50.) (quantile_ns r ~p:95.) (quantile_ns r ~p:99.));
  Array.iter
    (fun s ->
      let l = s.leaks in
      Buffer.add_string buf
        (Printf.sprintf
           "shard %d: live=%d/%d enclaves=%d kernels=%d instances=%d \
            segments=%d/%d vectors=%d/%d lost=%d acks=%d buckets=%d %s\n"
           s.shard l.live_tenants l.tenant_slots l.live_enclaves
           l.kernel_entries l.controller_instances l.segments l.live_exports
           l.vectors_outstanding l.vectors_expected l.vectors_lost
           l.unclaimed_acks l.admission_tenants
           (if leak_free l then "leak-free" else "LEAKS")))
    r.shards;
  let enclaves_checked =
    Array.fold_left (fun a s -> a + s.enclaves_checked) 0 r.shards
  and leaves = Array.fold_left (fun a s -> a + s.leaves_checked) 0 r.shards
  and grants = Array.fold_left (fun a s -> a + s.grants_checked) 0 r.shards in
  Buffer.add_string buf
    (Printf.sprintf
       "verifier: enclaves=%d leaves=%d grants=%d violations=%d\n"
       enclaves_checked leaves grants (violations r));
  Buffer.contents buf

let to_json r =
  let t = totals r in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{";
  Buffer.add_string buf
    (Printf.sprintf
       {|"schema":"covirt-loadgen/1","spec":{"tenants":%d,"ops":%d,"zipf_s":%.3f,"seed":%d,"shards":%d,"max_in_flight":%d,"bucket_capacity":%d,"refill_cycles":%d},|}
       r.spec.tenants r.spec.ops r.spec.zipf_s r.spec.seed r.spec.shards
       r.spec.max_in_flight r.spec.bucket_capacity r.spec.refill_cycles);
  Buffer.add_string buf
    (Printf.sprintf
       {|"counters":{"create":%d,"work":%d,"export":%d,"attach":%d,"detach":%d,"grant":%d,"revoke":%d,"destroy":%d,"errors":%d},|}
       t.creates t.works t.exports t.attaches t.detaches t.grants t.revokes
       t.destroys t.op_errors);
  Buffer.add_string buf
    (Printf.sprintf
       {|"admission":{"admitted":%d,"peak_in_flight":%d,"max_in_flight":%d,"rejected_boot_limit":%d,"rejected_rate_limited":%d},|}
       (admitted r) (peak_in_flight r) r.spec.max_in_flight
       t.rejected_boot_limit t.rejected_rate_limited);
  Buffer.add_string buf
    (Printf.sprintf
       {|"faults":{"injected":%d,"recovered":%d},|}
       t.faults_injected t.recoveries);
  Buffer.add_string buf
    (Printf.sprintf
       {|"latency_ns":{"p50":%.1f,"p95":%.1f,"p99":%.1f},|}
       (quantile_ns r ~p:50.) (quantile_ns r ~p:95.) (quantile_ns r ~p:99.));
  Buffer.add_string buf {|"tenants":[|};
  List.iteri
    (fun i (g, h) ->
      if i > 0 then Buffer.add_char buf ',';
      let q p = cycles_to_ns r (Metrics.Hist.quantile h ~p) in
      Buffer.add_string buf
        (Printf.sprintf
           {|{"tenant":%d,"ops":%d,"p50_ns":%.1f,"p95_ns":%.1f,"p99_ns":%.1f}|}
           g h.Metrics.Hist.n (q 50.) (q 95.) (q 99.)))
    (per_tenant r);
  Buffer.add_string buf "],";
  let leaks_clean = Array.for_all (fun s -> leak_free s.leaks) r.shards in
  Buffer.add_string buf
    (Printf.sprintf
       {|"verifier":{"violations":%d},"leaks_clean":%b,"ok":%b}|}
       (violations r) leaks_clean (ok r));
  Buffer.contents buf
