(** Enclave-dense control-plane load generator.

    Drives the Pisces/Hobbes control paths — create, boot, XEMEM
    export/attach/detach, IPI vector grant/revoke, destroy — against
    hundreds to thousands of enclaves with Zipf-distributed tenant
    traffic, and audits the node afterwards: admission bounds held,
    nothing leaked, the static isolation verifier is clean.

    {b Sharding and determinism.}  The tenant population is split into
    [spec.shards] contiguous shards ({!Covirt_fleet.Fleet.slice}); each
    shard runs an independent node ({!Covirt_hobbes.Hobbes.create_node})
    whose control-plane state never touches another shard's.  The shard
    count is part of the experiment's identity; the [?domains] argument
    of {!run} is placement only — results are byte-identical at any
    domain count, which the dense-node CI job diffs for real.  All
    randomness derives from {!Covirt_sim.Rng.split_seed}: one selection
    stream per shard (Zipf rank draws) and one op stream per tenant,
    so a tenant's behaviour depends only on its own history and the
    order it was scheduled.

    {b Admission.}  Each shard's node runs a {!Covirt.Admission}
    controller: at most [max_in_flight] boots are pending at once
    (boots settle [settle_ops] ops after launch), and per-tenant token
    buckets rate-limit chatty tenants when [refill_cycles > 0].
    Rejected operations consume the op slot, are counted, and leave no
    partial state behind.

    {b Fault plan.}  With [fault = Some f], the shard owning tenant
    [f.tenant] arms a {!Covirt_resilience.Supervisor} over it and, at
    the first op at index [>= f.after_op] where the victim is live,
    injects a wild write outside the victim's partition as an {e extra}
    action — no selection or op-stream draw is consumed, so every
    other tenant sees the exact same schedule as a fault-free run.
    Containment, teardown and relaunch all happen inside that op. *)

module Metrics = Covirt_obs.Metrics

type fault_plan = { tenant : int;  (** global tenant id *) after_op : int }

type spec = {
  tenants : int;
  ops : int;
  zipf_s : float;
  seed : int;
  shards : int;
  config : Covirt.Config.t;
  max_in_flight : int;
  bucket_capacity : int;
  refill_cycles : int;
  settle_ops : int;
  tenant_mib : int;
  fault : fault_plan option;
}

val spec :
  ?tenants:int ->
  ?ops:int ->
  ?zipf_s:float ->
  ?seed:int ->
  ?shards:int ->
  ?config:Covirt.Config.t ->
  ?max_in_flight:int ->
  ?bucket_capacity:int ->
  ?refill_cycles:int ->
  ?settle_ops:int ->
  ?tenant_mib:int ->
  ?fault:fault_plan ->
  unit ->
  spec
(** Defaults: 64 tenants, 512 ops, s=1.1, seed 9, 4 shards,
    {!Covirt.Config.full}, 8 boots in flight, bucket capacity 8,
    refill 0 (rate limiting off), settle after 4 ops, 24 MiB per
    tenant, no fault. *)

type counters = {
  creates : int;
  works : int;
  exports : int;
  attaches : int;
  detaches : int;
  grants : int;
  revokes : int;
  destroys : int;
  op_errors : int;  (** control calls that returned [Error] (e.g. vector
                        exhaustion) — counted, never fatal *)
  rejected_boot_limit : int;
  rejected_rate_limited : int;
  faults_injected : int;
  recoveries : int;
}

type leak_report = {
  tenant_slots : int;  (** tenants this shard owns *)
  live_tenants : int;  (** tenants whose enclave is up at quiesce *)
  live_enclaves : int;  (** Pisces live-registry length *)
  kernel_entries : int;  (** Hobbes kernel-registry length *)
  controller_instances : int;  (** live Covirt instances *)
  live_exports : int;  (** segments whose exporter is live *)
  segments : int;  (** name-service registry length *)
  vectors_outstanding : int;
  vectors_expected : int;  (** 2 per fully-live grant pair *)
  vectors_lost : int;  (** vector-space conservation deficit *)
  unclaimed_acks : int;  (** ack-slot entries never taken *)
  admission_tenants : int;  (** token buckets tracked *)
}

val leak_free : leak_report -> bool
(** Every gauge equals its expected value: registries match live
    tenants, the vector space is conserved, no ack was orphaned and
    the admission table is bounded by the tenant population. *)

type shard_report = {
  shard : int;
  sc : counters;
  admitted : int;
  peak_in_flight : int;
  leaks : leak_report;
  enclaves_checked : int;
  leaves_checked : int;
  grants_checked : int;
  violations : int;
  ghz : float;
  metrics : Metrics.snapshot;  (** this shard's metric delta *)
}

type report = {
  spec : spec;
  shards : shard_report array;
  merged : Metrics.snapshot;
}

val run : ?domains:int -> spec -> report
(** Execute the spec.  [Invalid_argument] on a non-positive or
    inconsistent spec (e.g. [shards > tenants], [tenant_mib < 18]). *)

(** {2 Derived views} *)

val totals : report -> counters
val admitted : report -> int
val peak_in_flight : report -> int
(** Maximum over shards (each shard runs its own admission
    controller, so the bound is per shard). *)

val violations : report -> int

val ok : report -> bool
(** Leak-free on every shard, zero verifier violations, and no shard's
    peak in-flight boot count exceeded the admission bound. *)

val overall_hist : report -> Metrics.Hist.t
(** All op-latency samples, all tenants and kinds merged. *)

val quantile_ns : report -> p:float -> float
(** Percentile of {!overall_hist} converted to nanoseconds. *)

val per_tenant : report -> (int * Metrics.Hist.t) list
(** Per-tenant latency histograms (all op kinds merged), sorted by
    global tenant id.  Tenants that never executed an op are absent. *)

val transcript : report -> string
(** The full deterministic rendering — summary counters, admission
    line, per-tenant latency table, per-shard leak/verifier audit.
    Byte-identical at any domain count; the golden gate and the
    dense-node CI diff capture exactly this. *)

val to_json : report -> string
(** Machine-readable form of {!transcript} (schema
    [covirt-loadgen/1]); per-tenant p50/p95/p99 in nanoseconds. *)
