open Covirt_hw

type exporter = Host_export | Enclave_export of int

type segment = {
  segid : int;
  name : string;
  exporter : exporter;
  pages : Region.t list;
  mutable attachers : int list;
}

type t = {
  by_name : (string, segment) Hashtbl.t;
  by_segid : (int, segment) Hashtbl.t;
  mutable next_segid : int;
}

let create () =
  { by_name = Hashtbl.create 16; by_segid = Hashtbl.create 16; next_segid = 0x100 }

let aligned r =
  Addr.is_aligned r.Region.base ~size:Addr.page_size_4k
  && Addr.is_aligned r.Region.len ~size:Addr.page_size_4k

let register t ~name ~exporter ~pages =
  if Hashtbl.mem t.by_name name then
    Error (Printf.sprintf "segment %S already exported" name)
  else if pages = [] then Error "empty page list"
  else if not (List.for_all aligned pages) then
    Error "XEMEM shares whole 4K frames; pages must be frame-aligned"
  else begin
    let segid = t.next_segid in
    t.next_segid <- t.next_segid + 1;
    let segment = { segid; name; exporter; pages; attachers = [] } in
    Hashtbl.replace t.by_name name segment;
    Hashtbl.replace t.by_segid segid segment;
    Ok segment
  end

let lookup t ~name = Hashtbl.find_opt t.by_name name

let regions_for t ~enclave =
  Hashtbl.fold
    (fun _ s acc ->
      if
        s.exporter = Enclave_export enclave || List.mem enclave s.attachers
      then List.fold_left Region.Set.add acc s.pages
      else acc)
    t.by_segid Region.Set.empty
let lookup_segid t ~segid = Hashtbl.find_opt t.by_segid segid

let note_attach t ~segid ~enclave =
  match lookup_segid t ~segid with
  | Some s -> if not (List.mem enclave s.attachers) then
        s.attachers <- enclave :: s.attachers
  | None -> ()

let note_detach t ~segid ~enclave =
  match lookup_segid t ~segid with
  | Some s -> s.attachers <- List.filter (( <> ) enclave) s.attachers
  | None -> ()

let remove t ~segid =
  match lookup_segid t ~segid with
  | Some s ->
      Hashtbl.remove t.by_name s.name;
      Hashtbl.remove t.by_segid segid
  | None -> ()

let segments t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.by_segid []
  |> List.sort (fun a b -> compare a.segid b.segid)
