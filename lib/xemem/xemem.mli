(** XEMEM inter-enclave shared memory.

    The XPMEM-compatible make/search/attach/detach API on top of the
    name service and the Pisces page-list transmission paths.  An
    attach makes a foreign segment's physical frames usable by the
    attaching enclave: the host transmits the frame list, the enclave
    kernel adds it to its believed map — and, when Covirt is present,
    the controller has already mapped the frames into the enclave's
    EPT before the list was sent (the [pre_memory_map] hook ordering).

    Attaching is synchronous from the caller's point of view: the
    calling enclave core blocks while the host performs the mapping,
    so the host-side processing time is charged to the caller.  That
    blocked duration is exactly what Fig. 4 of the paper measures. *)

open Covirt_hw
open Covirt_pisces

type t

val create : Pisces.t -> t
val pisces : t -> Pisces.t
val registry : t -> Name_service.t

val export :
  t -> exporter:Name_service.exporter -> name:string -> pages:Region.t list ->
  (int, string) result
(** Register a segment; returns the segid.  The pages must belong to
    the exporter (enforced against the host's authoritative view). *)

val attach :
  t -> Enclave.t -> name:string -> (Addr.t * int, string) result
(** Attach the named segment into [enclave]: returns the base address
    of the first frame run and the total byte length.  Charges the
    enclave's boot core for the blocked duration. *)

val attach_host : t -> name:string -> (Addr.t * int, string) result
(** The host side attaching an enclave-exported segment (host address
    spaces are unrestricted; only bookkeeping happens). *)

val detach : t -> Enclave.t -> name:string -> (unit, string) result

val reclaim_export :
  t -> name:string -> ?simulate_cleanup_bug:bool -> unit ->
  (unit, string) result
(** Tear an export down, force-detaching every attacher.  With
    [simulate_cleanup_bug] the attachers' kernels are {e not} notified
    (the paper's war story: "a bug in an XEMEM cleanup path resulted
    in stale shared memory regions persisting in the co-kernel state
    ... after they had been reclaimed by the host OS") — but any
    host-side protection hooks still run, which is why Covirt contains
    the fallout. *)

val attach_count : t -> int
(** Total successful attaches (observability). *)
