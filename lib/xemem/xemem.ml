open Covirt_hw
open Covirt_pisces

type t = {
  pisces : Pisces.t;
  registry : Name_service.t;
  mutable attaches : int;
}

let create pisces = { pisces; registry = Name_service.create (); attaches = 0 }
let pisces t = t.pisces
let registry t = t.registry

let owner_of_exporter = function
  | Name_service.Host_export -> Owner.Host
  | Name_service.Enclave_export id -> Owner.Enclave id

let export t ~exporter ~name ~pages =
  let machine = Pisces.machine t.pisces in
  let expected = owner_of_exporter exporter in
  let owned r =
    (* Every frame of the segment must belong to the exporter in the
       host's authoritative ownership map. *)
    let rec check addr =
      if addr >= Region.limit r then true
      else
        Owner.equal (Phys_mem.owner_at machine.Machine.mem addr) expected
        && check (addr + Addr.page_size_4k)
    in
    check r.Region.base
  in
  if not (List.for_all owned pages) then
    Error "exporter does not own all pages of the segment"
  else
    match Name_service.register t.registry ~name ~exporter ~pages with
    | Ok segment -> Ok segment.Name_service.segid
    | Error e -> Error e

let span pages =
  match pages with
  | [] -> invalid_arg "Xemem.span: empty"
  | first :: _ ->
      let total = List.fold_left (fun acc r -> acc + r.Region.len) 0 pages in
      (first.Region.base, total)

let attach t enclave ~name =
  match Name_service.lookup t.registry ~name with
  | None -> Error (Printf.sprintf "no segment named %S" name)
  | Some segment ->
      let machine = Pisces.machine t.pisces in
      let host = Pisces.host_cpu t.pisces in
      let caller = Machine.cpu machine (Enclave.bsp enclave) in
      let host_start = Cpu.rdtsc host in
      let result =
        Pisces.map_shared t.pisces enclave ~segid:segment.Name_service.segid
          ~pages:segment.Name_service.pages
      in
      (* The caller blocks while the host maps; its clock advances by
         the host-side processing time. *)
      Cpu.charge caller (Cpu.rdtsc host - host_start);
      (match result with
      | Ok () ->
          t.attaches <- t.attaches + 1;
          Name_service.note_attach t.registry ~segid:segment.Name_service.segid
            ~enclave:enclave.Enclave.id;
          Ok (span segment.Name_service.pages)
      | Error e -> Error e)

let attach_host t ~name =
  match Name_service.lookup t.registry ~name with
  | None -> Error (Printf.sprintf "no segment named %S" name)
  | Some segment ->
      (* The host's address space is unrestricted; attaching is pure
         bookkeeping plus the page-list walk. *)
      let host = Pisces.host_cpu t.pisces in
      let machine = Pisces.machine t.pisces in
      let frames =
        List.fold_left
          (fun acc r -> acc + (r.Region.len / Addr.page_size_4k))
          0 segment.Name_service.pages
      in
      Cpu.charge host
        (frames * machine.Machine.model.Cost_model.page_list_per_page);
      t.attaches <- t.attaches + 1;
      Ok (span segment.Name_service.pages)

let detach t enclave ~name =
  match Name_service.lookup t.registry ~name with
  | None -> Error (Printf.sprintf "no segment named %S" name)
  | Some segment ->
      let result =
        Pisces.unmap_shared t.pisces enclave
          ~segid:segment.Name_service.segid ~pages:segment.Name_service.pages
          ()
      in
      (match result with
      | Ok () ->
          Name_service.note_detach t.registry
            ~segid:segment.Name_service.segid ~enclave:enclave.Enclave.id;
          Ok ()
      | Error e -> Error e)

let reclaim_export t ~name ?(simulate_cleanup_bug = false) () =
  match Name_service.lookup t.registry ~name with
  | None -> Error (Printf.sprintf "no segment named %S" name)
  | Some segment ->
      let detach_one enclave_id =
        match Pisces.find_enclave t.pisces enclave_id with
        | None -> Ok ()
        | Some enclave ->
            Pisces.unmap_shared t.pisces enclave
              ~segid:segment.Name_service.segid
              ~pages:segment.Name_service.pages
              ~skip_enclave_notify:simulate_cleanup_bug ()
      in
      let rec all = function
        | [] -> Ok ()
        | e :: rest -> (
            match detach_one e with Ok () -> all rest | Error _ as err -> err)
      in
      (match all segment.Name_service.attachers with
      | Error e -> Error e
      | Ok () ->
          Name_service.remove t.registry ~segid:segment.Name_service.segid;
          Ok ())

let attach_count t = t.attaches
