(** XEMEM node-local name service.

    XEMEM provides "a global view of shared memory through the use of
    XPMEM segment IDs managed across the entire system by a node-local
    name service".  This is that service: names map to segment ids,
    segment ids map to export records (owner, page frames) and the set
    of current attachers — the bookkeeping reclamation needs. *)

open Covirt_hw

type exporter = Host_export | Enclave_export of int

type segment = {
  segid : int;
  name : string;
  exporter : exporter;
  pages : Region.t list;
  mutable attachers : int list;  (** enclave ids currently attached *)
}

type t

val create : unit -> t

val register :
  t -> name:string -> exporter:exporter -> pages:Region.t list ->
  (segment, string) result
(** Fails on duplicate names or empty/misaligned page lists (XEMEM
    shares whole frames). *)

val lookup : t -> name:string -> segment option

val regions_for : t -> enclave:int -> Covirt_hw.Region.Set.t
(** Every frame of every live segment the enclave exported or is
    attached to — the registered-share closure the static verifier
    treats as legitimately cross-owner. *)

val lookup_segid : t -> segid:int -> segment option
val note_attach : t -> segid:int -> enclave:int -> unit
val note_detach : t -> segid:int -> enclave:int -> unit
val remove : t -> segid:int -> unit
val segments : t -> segment list
