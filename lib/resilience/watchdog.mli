(** The enclave watchdog: progress tracking for the fault class
    containment cannot see.

    A wedged co-kernel (livelocked, interrupt storm, scheduler bug)
    does nothing errant — no EPT violation, no forbidden instruction,
    no stray IPI — so the hypervisor has no exit to act on.  The
    watchdog instead watches two host-observable progress signals:

    - total VM exits across the enclave's per-core hypervisors (a
      healthy kernel ticks, traps and services commands);
    - enclave→host control-channel traffic, including the explicit
      {!Covirt_kitten.Kitten.heartbeat}.

    When neither signal advances for the policy's [watchdog_deadline]
    (in simulated host cycles), the enclave is declared wedged and
    escalated into the supervisor's teardown-and-recovery path.
    Snapshots are incarnation-aware: a relaunched enclave starts a
    fresh grace period. *)

type t
(** One watchdog, bound to a supervisor's set of managed enclaves. *)

val create : Supervisor.t -> t
(** Watch every enclave managed by the supervisor (including ones
    registered after this call). *)

val poll : t -> string list
(** Check all supervised, healthy enclaves against the deadline, at
    the current host TSC.  Each wedged enclave is escalated through
    {!Supervisor.escalate_wedged} (recording a
    [Watchdog_timeout] fault report, tearing down and recovering);
    returns the names escalated by this poll, in management order. *)

val stalled_for : t -> name:string -> int option
(** Host cycles since the enclave's progress signature last advanced
    (as of the last {!poll}); [None] if never polled, unmanaged or
    quarantined. *)
