(** The reusable fault-injection engine.

    Generalizes the ad-hoc fault list that used to live inside the
    campaign harness into a seeded, schedulable module, so campaigns,
    tests and the supervisor soak all drive the {e same} deterministic
    injector (the IRIS lesson: recovery paths are only trustworthy if
    the faults that exercise them are systematic and replayable).

    Two sources of faults coexist in one engine:

    - a {b seeded random stream} ({!draw}) reproducing the campaign's
      fault taxonomy — equal seeds yield equal fault sequences;
    - a {b schedule} of rules ({!due}) that fire a specific fault at a
      specific enclave at a given trial, every N trials, or once a
      cycle deadline passes. *)

open Covirt_hw
open Covirt_kitten

type fault =
  | Wild_write of Addr.t  (** raw store anywhere in physical memory *)
  | Phantom_touch of Addr.t
      (** desynchronize the believed memory map, then touch it *)
  | Errant_ipi of { dest : int; vector : int }
  | Msr_write  (** write a protected MSR *)
  | Port_reset  (** hard reset via port 0xCF9 *)
  | Double_fault  (** abort-class exception *)
  | Wedge of { cycles : int }
      (** livelock the core: no trap, no message, no progress — the
          fault class only the watchdog can notice *)

val pp_fault : Format.formatter -> fault -> unit
(** Human-readable fault name with its payload. *)

val is_wedge : fault -> bool
(** True for {!Wedge} — the class that produces no trap and must be
    caught by the watchdog rather than containment. *)

val is_fatal_under_full_protection : fault -> bool
(** Whether the fault, injected under the full protection config,
    terminates the enclave ([Errant_ipi] is dropped, [Wedge] hangs,
    [Wild_write] depends on where it lands — reported [false]). *)

type trigger =
  | At_trial of int  (** fire exactly once, at that trial number *)
  | Every_n_trials of int  (** fire whenever [trial mod n = 0] *)
  | At_cycle of int  (** fire once, at the first check past this TSC *)

type rule = { target : string; trigger : trigger; fault : fault }
(** Inject [fault] into the enclave named [target] when [trigger]
    fires. *)

type t
(** One injector: a seeded stream plus a (mutable) schedule. *)

val create : seed:int -> ?rules:rule list -> unit -> t
(** Fresh injector.  Equal [seed]s yield equal {!draw} sequences;
    [rules] seeds the schedule (default none). *)

val seed : t -> int
(** The seed this injector was created with (serialized into replay
    traces so a trace fully determines the fault stream). *)

val draw : t -> machine_mem:int -> victim_bsp:int -> fault
(** Next fault from the seeded random stream — the campaign taxonomy:
    wild write, phantom touch, errant IPI at the victim's boot core,
    MSR write, port reset, double fault (never [Wedge]). *)

type schedule_status =
  | Due of fault list
      (** scheduled faults firing now (possibly none, with more rules
          still live) *)
  | End_of_schedule
      (** every rule in a non-empty schedule is spent: all one-shot
          triggers have fired and no recurring rule remains.  Typed so
          callers can stop consulting the schedule — and so a replayer
          knows a trace carries every fault the schedule will ever
          produce — rather than reading an empty list forever. *)

val due : t -> target:string -> trial:int -> now:int -> schedule_status
(** Scheduled faults firing for [target] at this [trial] / [now] TSC.
    One-shot triggers are consumed.  An injector created without rules
    always answers [Due []] (there is no schedule to exhaust). *)

val schedule_exhausted : t -> bool
(** Whether a non-empty schedule has no rule that can ever fire
    again. *)

val schedule_to_json : t -> string
(** Serialize the seed and the schedule — fired flags included — as
    one JSON object, so a replay trace or quarantine capture fully
    determines the injected faults.  Round-trips through
    {!of_json}. *)

val of_json : string -> (t, string) result
(** Rebuild an injector from {!schedule_to_json} output: same seed
    (hence the same {!draw} stream from the start) and the same
    schedule state.  The random stream position is {e not} part of the
    format — replay re-runs from the beginning, it does not resume
    mid-stream. *)

val tap_on : bool ref
(** Arms {!inject_tap}.  Owned by the replay recorder; one branch per
    {!inject} when off. *)

val inject_tap : (fault -> unit) ref
(** Called with every fault as it is applied while [tap_on] — before
    the fault's own exception can escape, so faults that kill their
    enclave are recorded too.  Must not charge cycles or draw
    randomness. *)

val cov_on : bool ref
(** Arms {!cov_tap}.  Do not flip directly — the [covirt.replay]
    coverage collector owns it, reference-counted across domains.  One
    branch per {!inject} when off. *)

val cov_tap : (int -> unit) ref
(** Called while [cov_on] with {!fault_code} of every applied fault.
    Same zero-cost contract as {!inject_tap}. *)

val fault_code : fault -> int
(** Dense fault-class index ([0 .. 6]) in declaration order — the
    coverage-map key for injected faults. *)

val inject : t -> Kitten.context -> fault -> unit
(** Apply the fault on the given execution context and count it.  May
    raise whatever the fault raises (e.g. {!Covirt_hw.Vmx.Vm_terminated}
    under protection, {!Covirt_hw.Machine.Node_panic} natively). *)

val injected : t -> int
(** Total faults applied through {!inject}. *)
