(** The reusable fault-injection engine.

    Generalizes the ad-hoc fault list that used to live inside the
    campaign harness into a seeded, schedulable module, so campaigns,
    tests and the supervisor soak all drive the {e same} deterministic
    injector (the IRIS lesson: recovery paths are only trustworthy if
    the faults that exercise them are systematic and replayable).

    Two sources of faults coexist in one engine:

    - a {b seeded random stream} ({!draw}) reproducing the campaign's
      fault taxonomy — equal seeds yield equal fault sequences;
    - a {b schedule} of rules ({!due}) that fire a specific fault at a
      specific enclave at a given trial, every N trials, or once a
      cycle deadline passes. *)

open Covirt_hw
open Covirt_kitten

type fault =
  | Wild_write of Addr.t  (** raw store anywhere in physical memory *)
  | Phantom_touch of Addr.t
      (** desynchronize the believed memory map, then touch it *)
  | Errant_ipi of { dest : int; vector : int }
  | Msr_write  (** write a protected MSR *)
  | Port_reset  (** hard reset via port 0xCF9 *)
  | Double_fault  (** abort-class exception *)
  | Wedge of { cycles : int }
      (** livelock the core: no trap, no message, no progress — the
          fault class only the watchdog can notice *)

val pp_fault : Format.formatter -> fault -> unit
(** Human-readable fault name with its payload. *)

val is_wedge : fault -> bool
(** True for {!Wedge} — the class that produces no trap and must be
    caught by the watchdog rather than containment. *)

val is_fatal_under_full_protection : fault -> bool
(** Whether the fault, injected under the full protection config,
    terminates the enclave ([Errant_ipi] is dropped, [Wedge] hangs,
    [Wild_write] depends on where it lands — reported [false]). *)

type trigger =
  | At_trial of int  (** fire exactly once, at that trial number *)
  | Every_n_trials of int  (** fire whenever [trial mod n = 0] *)
  | At_cycle of int  (** fire once, at the first check past this TSC *)

type rule = { target : string; trigger : trigger; fault : fault }
(** Inject [fault] into the enclave named [target] when [trigger]
    fires. *)

type t
(** One injector: a seeded stream plus a (mutable) schedule. *)

val create : seed:int -> ?rules:rule list -> unit -> t
(** Fresh injector.  Equal [seed]s yield equal {!draw} sequences;
    [rules] seeds the schedule (default none). *)

val draw : t -> machine_mem:int -> victim_bsp:int -> fault
(** Next fault from the seeded random stream — the campaign taxonomy:
    wild write, phantom touch, errant IPI at the victim's boot core,
    MSR write, port reset, double fault (never [Wedge]). *)

val due : t -> target:string -> trial:int -> now:int -> fault list
(** Scheduled faults firing for [target] at this [trial] / [now] TSC.
    One-shot triggers are consumed. *)

val inject : t -> Kitten.context -> fault -> unit
(** Apply the fault on the given execution context and count it.  May
    raise whatever the fault raises (e.g. {!Covirt_hw.Vmx.Vm_terminated}
    under protection, {!Covirt_hw.Machine.Node_panic} natively). *)

val injected : t -> int
(** Total faults applied through {!inject}. *)
