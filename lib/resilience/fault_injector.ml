open Covirt_hw
open Covirt_kitten

type fault =
  | Wild_write of Addr.t
  | Phantom_touch of Addr.t
  | Errant_ipi of { dest : int; vector : int }
  | Msr_write
  | Port_reset
  | Double_fault
  | Wedge of { cycles : int }

let pp_fault ppf = function
  | Wild_write a -> Format.fprintf ppf "wild-write %a" Addr.pp a
  | Phantom_touch a -> Format.fprintf ppf "phantom-touch %a" Addr.pp a
  | Errant_ipi { dest; vector } ->
      Format.fprintf ppf "errant-ipi core%d vec%d" dest vector
  | Msr_write -> Format.pp_print_string ppf "msr-write"
  | Port_reset -> Format.pp_print_string ppf "port-reset"
  | Double_fault -> Format.pp_print_string ppf "double-fault"
  | Wedge { cycles } -> Format.fprintf ppf "wedge %d cycles" cycles

let is_wedge = function Wedge _ -> true | _ -> false

let is_fatal_under_full_protection = function
  | Msr_write | Port_reset | Double_fault | Phantom_touch _ -> true
  | Wild_write _ | Errant_ipi _ | Wedge _ -> false

type trigger = At_trial of int | Every_n_trials of int | At_cycle of int

type rule = { target : string; trigger : trigger; fault : fault }

type armed_rule = { rule : rule; mutable fired : bool }

type t = {
  seed : int;
  rng : Covirt_sim.Rng.t;
  rules : armed_rule list;
  mutable applied : int;
}

let create ~seed ?(rules = []) () =
  {
    seed;
    rng = Covirt_sim.Rng.create ~seed;
    rules = List.map (fun rule -> { rule; fired = false }) rules;
    applied = 0;
  }

let seed t = t.seed

(* The campaign's original fault distribution, draw-for-draw: six
   classes, uniform, with addresses spread over physical memory. *)
let draw t ~machine_mem ~victim_bsp =
  match Covirt_sim.Rng.int t.rng ~bound:6 with
  | 0 ->
      (* anywhere in physical memory, 8-byte aligned *)
      Wild_write (Covirt_sim.Rng.int t.rng ~bound:(machine_mem / 8) * 8)
  | 1 ->
      let page =
        Covirt_sim.Rng.int t.rng ~bound:(machine_mem / Addr.page_size_2m)
      in
      Phantom_touch (page * Addr.page_size_2m)
  | 2 ->
      Errant_ipi
        { dest = victim_bsp; vector = Covirt_sim.Rng.int t.rng ~bound:256 }
  | 3 -> Msr_write
  | 4 -> Port_reset
  | 5 -> Double_fault
  | _ -> assert false

type schedule_status = Due of fault list | End_of_schedule

(* A rule can never fire again once a one-shot trigger is consumed;
   [Every_n_trials] keeps a schedule live forever. *)
let rule_spent armed =
  match armed.rule.trigger with
  | At_trial _ | At_cycle _ -> armed.fired
  | Every_n_trials n -> n <= 0

let schedule_exhausted t = t.rules <> [] && List.for_all rule_spent t.rules

let due t ~target ~trial ~now =
  let faults =
    List.filter_map
      (fun armed ->
        let { target = rule_target; trigger; fault } = armed.rule in
        if rule_target <> target then None
        else
          match trigger with
          | At_trial n ->
              if (not armed.fired) && trial = n then begin
                armed.fired <- true;
                Some fault
              end
              else None
          | Every_n_trials n ->
              if n > 0 && trial mod n = 0 then Some fault else None
          | At_cycle c ->
              if (not armed.fired) && now >= c then begin
                armed.fired <- true;
                Some fault
              end
              else None)
      t.rules
  in
  (* An exhausted schedule answers typed, not with a silent no-op:
     callers can stop consulting it (and a replayer knows the trace
     carries every fault the schedule will ever produce). *)
  if faults = [] && schedule_exhausted t then End_of_schedule else Due faults

(* Record tap for the replay recorder — same zero-cost contract as
   [Covirt_hw.Vmx.exit_tap]: one branch when disarmed, and the tap
   never charges cycles or draws randomness. *)
let tap_on = ref false
let inject_tap : (fault -> unit) ref = ref (fun _ -> ())

(* Coverage tap (the replay fuzzer's guidance): dense fault-class
   codes in declaration order.  Same zero-cost contract as
   [inject_tap]. *)
let cov_on = ref false
let cov_tap : (int -> unit) ref = ref (fun _ -> ())

let fault_code = function
  | Wild_write _ -> 0
  | Phantom_touch _ -> 1
  | Errant_ipi _ -> 2
  | Msr_write -> 3
  | Port_reset -> 4
  | Double_fault -> 5
  | Wedge _ -> 6

let inject t (ctx : Kitten.context) fault =
  t.applied <- t.applied + 1;
  if !tap_on then !inject_tap fault;
  if !cov_on then !cov_tap (fault_code fault);
  match fault with
  | Wild_write addr -> Kitten.store_addr ctx addr
  | Phantom_touch addr ->
      Kitten.inject_phantom_region ctx.Kitten.kernel
        (Region.make
           ~base:(Addr.page_down addr ~size:Addr.page_size_2m)
           ~len:Addr.page_size_2m);
      Kitten.store_addr ctx addr
  | Errant_ipi { dest; vector } -> Kitten.send_ipi ctx ~dest ~vector
  | Msr_write -> Kitten.wrmsr_sensitive ctx
  | Port_reset -> Kitten.out_reset_port ctx
  | Double_fault -> Kitten.trigger_double_fault ctx
  | Wedge { cycles } -> Kitten.spin_wedged ctx ~cycles

let injected t = t.applied

(* ------------------------------------------------------------------ *)
(* Schedule serialization: a trace must fully determine the faults a
   replayed run injects, so the seeded schedule travels as JSON inside
   the trace header (and in quarantine-capture sidecars).  The format
   round-trips through [of_json], fired flags included, so a schedule
   serialized mid-run resumes exactly where it stopped. *)

let fault_to_json = function
  | Wild_write a -> Printf.sprintf {|{"kind":"wild-write","addr":%d}|} a
  | Phantom_touch a -> Printf.sprintf {|{"kind":"phantom-touch","addr":%d}|} a
  | Errant_ipi { dest; vector } ->
      Printf.sprintf {|{"kind":"errant-ipi","dest":%d,"vector":%d}|} dest vector
  | Msr_write -> {|{"kind":"msr-write"}|}
  | Port_reset -> {|{"kind":"port-reset"}|}
  | Double_fault -> {|{"kind":"double-fault"}|}
  | Wedge { cycles } -> Printf.sprintf {|{"kind":"wedge","cycles":%d}|} cycles

let trigger_to_json = function
  | At_trial n -> Printf.sprintf {|{"kind":"at-trial","n":%d}|} n
  | Every_n_trials n -> Printf.sprintf {|{"kind":"every-n-trials","n":%d}|} n
  | At_cycle c -> Printf.sprintf {|{"kind":"at-cycle","cycle":%d}|} c

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let schedule_to_json t =
  let rule armed =
    Printf.sprintf {|{"target":"%s","trigger":%s,"fired":%b,"fault":%s}|}
      (json_escape armed.rule.target)
      (trigger_to_json armed.rule.trigger)
      armed.fired
      (fault_to_json armed.rule.fault)
  in
  Printf.sprintf {|{"seed":%d,"rules":[%s]}|} t.seed
    (String.concat "," (List.map rule t.rules))

(* A minimal recursive-descent parser over the subset [schedule_to_json]
   emits (objects, arrays, strings with the escapes above, integers,
   booleans).  Self-contained on purpose: the repo carries no JSON
   dependency, and the sidecar format is ours. *)

type jv =
  | J_obj of (string * jv) list
  | J_arr of jv list
  | J_str of string
  | J_int of int
  | J_bool of bool

exception Parse of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> raise (Parse (Printf.sprintf "expected %c at byte %d" c !pos))
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise (Parse "unterminated string")
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then raise (Parse "unterminated escape")
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | 'n' -> Buffer.add_char buf '\n'
               | 'u' ->
                   if !pos + 4 >= n then raise (Parse "short \\u escape");
                   let code =
                     int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
                   in
                   Buffer.add_char buf (Char.chr (code land 0xff));
                   pos := !pos + 4
               | c -> raise (Parse (Printf.sprintf "bad escape \\%c" c)));
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          J_obj []
        end
        else
          let rec fields acc =
            let key = parse_string () in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                skip_ws ();
                fields ((key, v) :: acc)
            | Some '}' ->
                advance ();
                J_obj (List.rev ((key, v) :: acc))
            | _ -> raise (Parse "expected , or } in object")
          in
          (skip_ws ();
           fields [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          J_arr []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                J_arr (List.rev (v :: acc))
            | _ -> raise (Parse "expected , or ] in array")
          in
          items []
    | Some '"' -> J_str (parse_string ())
    | Some 't' ->
        pos := !pos + 4;
        J_bool true
    | Some 'f' ->
        pos := !pos + 5;
        J_bool false
    | Some ('-' | '0' .. '9') ->
        let start = !pos in
        if peek () = Some '-' then advance ();
        let rec digits () =
          match peek () with
          | Some '0' .. '9' ->
              advance ();
              digits ()
          | _ -> ()
        in
        digits ();
        J_int (int_of_string (String.sub s start (!pos - start)))
    | _ -> raise (Parse (Printf.sprintf "unexpected input at byte %d" !pos))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Parse "trailing garbage after JSON value");
  v

let field name = function
  | J_obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> raise (Parse ("missing field " ^ name)))
  | _ -> raise (Parse ("expected object around field " ^ name))

let as_int = function J_int i -> i | _ -> raise (Parse "expected integer")
let as_str = function J_str s -> s | _ -> raise (Parse "expected string")
let as_bool = function J_bool b -> b | _ -> raise (Parse "expected boolean")
let as_arr = function J_arr l -> l | _ -> raise (Parse "expected array")

let fault_of_jv jv =
  match as_str (field "kind" jv) with
  | "wild-write" -> Wild_write (as_int (field "addr" jv))
  | "phantom-touch" -> Phantom_touch (as_int (field "addr" jv))
  | "errant-ipi" ->
      Errant_ipi
        { dest = as_int (field "dest" jv); vector = as_int (field "vector" jv) }
  | "msr-write" -> Msr_write
  | "port-reset" -> Port_reset
  | "double-fault" -> Double_fault
  | "wedge" -> Wedge { cycles = as_int (field "cycles" jv) }
  | k -> raise (Parse ("unknown fault kind " ^ k))

let trigger_of_jv jv =
  match as_str (field "kind" jv) with
  | "at-trial" -> At_trial (as_int (field "n" jv))
  | "every-n-trials" -> Every_n_trials (as_int (field "n" jv))
  | "at-cycle" -> At_cycle (as_int (field "cycle" jv))
  | k -> raise (Parse ("unknown trigger kind " ^ k))

let of_json s =
  match parse_json s with
  | jv ->
      let seed = as_int (field "seed" jv) in
      let t = create ~seed () in
      let rules =
        List.map
          (fun rv ->
            {
              rule =
                {
                  target = as_str (field "target" rv);
                  trigger = trigger_of_jv (field "trigger" rv);
                  fault = fault_of_jv (field "fault" rv);
                };
              fired = as_bool (field "fired" rv);
            })
          (as_arr (field "rules" jv))
      in
      Ok { t with rules }
  | exception Parse why -> Error ("fault schedule: " ^ why)
  | exception Failure why -> Error ("fault schedule: " ^ why)
