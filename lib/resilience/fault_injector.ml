open Covirt_hw
open Covirt_kitten

type fault =
  | Wild_write of Addr.t
  | Phantom_touch of Addr.t
  | Errant_ipi of { dest : int; vector : int }
  | Msr_write
  | Port_reset
  | Double_fault
  | Wedge of { cycles : int }

let pp_fault ppf = function
  | Wild_write a -> Format.fprintf ppf "wild-write %a" Addr.pp a
  | Phantom_touch a -> Format.fprintf ppf "phantom-touch %a" Addr.pp a
  | Errant_ipi { dest; vector } ->
      Format.fprintf ppf "errant-ipi core%d vec%d" dest vector
  | Msr_write -> Format.pp_print_string ppf "msr-write"
  | Port_reset -> Format.pp_print_string ppf "port-reset"
  | Double_fault -> Format.pp_print_string ppf "double-fault"
  | Wedge { cycles } -> Format.fprintf ppf "wedge %d cycles" cycles

let is_wedge = function Wedge _ -> true | _ -> false

let is_fatal_under_full_protection = function
  | Msr_write | Port_reset | Double_fault | Phantom_touch _ -> true
  | Wild_write _ | Errant_ipi _ | Wedge _ -> false

type trigger = At_trial of int | Every_n_trials of int | At_cycle of int

type rule = { target : string; trigger : trigger; fault : fault }

type armed_rule = { rule : rule; mutable fired : bool }

type t = {
  rng : Covirt_sim.Rng.t;
  rules : armed_rule list;
  mutable applied : int;
}

let create ~seed ?(rules = []) () =
  {
    rng = Covirt_sim.Rng.create ~seed;
    rules = List.map (fun rule -> { rule; fired = false }) rules;
    applied = 0;
  }

(* The campaign's original fault distribution, draw-for-draw: six
   classes, uniform, with addresses spread over physical memory. *)
let draw t ~machine_mem ~victim_bsp =
  match Covirt_sim.Rng.int t.rng ~bound:6 with
  | 0 ->
      (* anywhere in physical memory, 8-byte aligned *)
      Wild_write (Covirt_sim.Rng.int t.rng ~bound:(machine_mem / 8) * 8)
  | 1 ->
      let page =
        Covirt_sim.Rng.int t.rng ~bound:(machine_mem / Addr.page_size_2m)
      in
      Phantom_touch (page * Addr.page_size_2m)
  | 2 ->
      Errant_ipi
        { dest = victim_bsp; vector = Covirt_sim.Rng.int t.rng ~bound:256 }
  | 3 -> Msr_write
  | 4 -> Port_reset
  | 5 -> Double_fault
  | _ -> assert false

let due t ~target ~trial ~now =
  List.filter_map
    (fun armed ->
      let { target = rule_target; trigger; fault } = armed.rule in
      if rule_target <> target then None
      else
        match trigger with
        | At_trial n ->
            if (not armed.fired) && trial = n then begin
              armed.fired <- true;
              Some fault
            end
            else None
        | Every_n_trials n ->
            if n > 0 && trial mod n = 0 then Some fault else None
        | At_cycle c ->
            if (not armed.fired) && now >= c then begin
              armed.fired <- true;
              Some fault
            end
            else None)
    t.rules

let inject t (ctx : Kitten.context) fault =
  t.applied <- t.applied + 1;
  match fault with
  | Wild_write addr -> Kitten.store_addr ctx addr
  | Phantom_touch addr ->
      Kitten.inject_phantom_region ctx.Kitten.kernel
        (Region.make
           ~base:(Addr.page_down addr ~size:Addr.page_size_2m)
           ~len:Addr.page_size_2m);
      Kitten.store_addr ctx addr
  | Errant_ipi { dest; vector } -> Kitten.send_ipi ctx ~dest ~vector
  | Msr_write -> Kitten.wrmsr_sensitive ctx
  | Port_reset -> Kitten.out_reset_port ctx
  | Double_fault -> Kitten.trigger_double_fault ctx
  | Wedge { cycles } -> Kitten.spin_wedged ctx ~cycles

let injected t = t.applied
