open Covirt_hw
open Covirt_pisces
open Covirt_kitten

type policy = {
  max_restarts : int;
  backoff_base : int;
  backoff_factor : int;
  backoff_cap : int;
  stability_window : int;
  watchdog_deadline : int;
}

let policy_of_config (c : Covirt.Config.t) =
  {
    max_restarts = c.Covirt.Config.restart_budget;
    backoff_base = c.Covirt.Config.backoff_base;
    backoff_factor = c.Covirt.Config.backoff_factor;
    backoff_cap = c.Covirt.Config.backoff_cap;
    stability_window = c.Covirt.Config.stability_window;
    watchdog_deadline = c.Covirt.Config.watchdog_deadline;
  }

let default_policy = policy_of_config Covirt.Config.native

type event_kind =
  | Fault_detected of string
  | Wedge_detected of string
  | Torn_down
  | Backing_off of { cycles : int; attempt : int }
  | Relaunched of { enclave_id : int }
  | Relaunch_failed of string
  | Quarantine of string

type event = { tsc : int; name : string; incarnation : int; kind : event_kind }

let pp_event ppf e =
  let pp_kind ppf = function
    | Fault_detected why -> Format.fprintf ppf "fault detected: %s" why
    | Wedge_detected why -> Format.fprintf ppf "wedge detected: %s" why
    | Torn_down -> Format.pp_print_string ppf "torn down"
    | Backing_off { cycles; attempt } ->
        Format.fprintf ppf "backing off %d cycles (attempt %d)" cycles attempt
    | Relaunched { enclave_id } ->
        Format.fprintf ppf "relaunched as enclave %d" enclave_id
    | Relaunch_failed why -> Format.fprintf ppf "relaunch failed: %s" why
    | Quarantine why -> Format.fprintf ppf "quarantined: %s" why
  in
  Format.fprintf ppf "@[<h>[%d] %s#%d: %a@]" e.tsc e.name e.incarnation pp_kind
    e.kind

type status = Healthy | Quarantined of string

type managed = {
  m_name : string;
  launch : unit -> (Enclave.t * Kitten.t, string) result;
  mutable enclave : Enclave.t option;
  mutable kitten : Kitten.t option;
  mutable attempts : int;  (* restarts consumed since last reset *)
  mutable incarnation : int;
  mutable quarantined : string option;
  mutable relaunched_at : int;  (* host TSC of the latest launch *)
}

type t = {
  ctrl : Covirt.Controller.t;
  pol : policy;
  rng : Covirt_sim.Rng.t;
  mutable managed : (string * managed) list;  (* registration order *)
  mutable events : event list;  (* newest first *)
  mutable ledger : (string * string) list;  (* quarantine order *)
  mutable quarantine_hook : name:string -> why:string -> string option;
      (* archival callback run at the moment the breaker trips *)
  mutable captures : (string * string) list;  (* (name, archive path) *)
  pending : (int, Covirt.Fault_report.t) Hashtbl.t;
      (* latest fatal report per enclave id: the "why" of a recovery *)
}

let controller t = t.ctrl
let policy t = t.pol
let host_cpu t = Pisces.host_cpu (Covirt.Controller.pisces t.ctrl)
let now t = Cpu.rdtsc (host_cpu t)

let create ?policy ~seed ctrl =
  let pol =
    match policy with
    | Some p -> p
    | None -> policy_of_config (Covirt.Controller.default_config ctrl)
  in
  let t =
    {
      ctrl;
      pol;
      rng = Covirt_sim.Rng.create ~seed;
      managed = [];
      events = [];
      ledger = [];
      quarantine_hook = (fun ~name:_ ~why:_ -> None);
      captures = [];
      pending = Hashtbl.create 4;
    }
  in
  Covirt.subscribe ctrl (fun r ->
      if r.Covirt.Fault_report.fatal then
        Hashtbl.replace t.pending r.Covirt.Fault_report.enclave r);
  t

let find t name = List.assoc_opt name t.managed

let find_exn t name =
  match find t name with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Supervisor: %S is not managed" name)

let event_tag = function
  | Fault_detected _ -> "fault-detected"
  | Wedge_detected _ -> "wedge-detected"
  | Torn_down -> "torn-down"
  | Backing_off _ -> "backing-off"
  | Relaunched _ -> "relaunched"
  | Relaunch_failed _ -> "relaunch-failed"
  | Quarantine _ -> "quarantine"

(* Recovery events feed the observability layer: a per-kind counter and
   an instant on the host track (pid 0 — supervision is host work). *)
let m_events = lazy (Covirt_obs.Metrics.counter "supervisor.events")

let push t m kind =
  let tsc = now t in
  (if !Covirt_obs.Metrics.on || !Covirt_obs.Exporter.on then
     let tag = event_tag kind in
     if !Covirt_obs.Metrics.on then
       Covirt_obs.Metrics.add
         (Covirt_obs.Metrics.cell (Lazy.force m_events)
            { Covirt_obs.Metrics.no_label with dim = tag })
         1;
     if !Covirt_obs.Exporter.on then
       Covirt_obs.Span.instant
         ~name:("supervisor:" ^ tag)
         ~cat:"supervision"
         ~args:
           [
             ("managed", m.m_name);
             ("incarnation", string_of_int m.incarnation);
           ]
         ~pid:0
         ~tid:(host_cpu t).Cpu.id ~ts:tsc ());
  t.events <-
    { tsc; name = m.m_name; incarnation = m.incarnation; kind } :: t.events

let manage t ~name ~launch =
  if find t name <> None then
    invalid_arg (Printf.sprintf "Supervisor.manage: %S already managed" name);
  let m =
    {
      m_name = name;
      launch;
      enclave = None;
      kitten = None;
      attempts = 0;
      incarnation = 0;
      quarantined = None;
      relaunched_at = 0;
    }
  in
  match launch () with
  | Error _ as e -> e
  | Ok (enclave, kitten) as ok ->
      m.enclave <- Some enclave;
      m.kitten <- Some kitten;
      m.relaunched_at <- now t;
      t.managed <- t.managed @ [ (name, m) ];
      ok

(* The fault report that explains why this enclave went down, consumed
   from the subscription feed. *)
let consume_pending t enclave_id =
  match Hashtbl.find_opt t.pending enclave_id with
  | Some r ->
      Hashtbl.remove t.pending enclave_id;
      Some r
  | None -> None

let backoff_delay t ~attempt =
  let rec grow d n =
    if n <= 1 then d else grow (min t.pol.backoff_cap (d * t.pol.backoff_factor)) (n - 1)
  in
  let base = grow t.pol.backoff_base attempt in
  base + Covirt_sim.Rng.int t.rng ~bound:(max 1 (t.pol.backoff_base / 8))

let quarantine t m ~cause =
  let why =
    Printf.sprintf "restart budget exhausted (%d/%d restarts); last fault: %s"
      m.attempts t.pol.max_restarts cause
  in
  m.quarantined <- Some why;
  m.enclave <- None;
  m.kitten <- None;
  push t m (Quarantine why);
  t.ledger <- t.ledger @ [ (m.m_name, why) ];
  (* Archive while the wreckage is fresh: the hook runs before the
     caller learns of the quarantine, so a recorder's trailing window
     still holds the exits that led here. *)
  (match t.quarantine_hook ~name:m.m_name ~why with
  | Some path -> t.captures <- t.captures @ [ (m.m_name, path) ]
  | None -> ());
  why

(* Relaunch with exponential backoff until a launch sticks or the
   circuit breaker trips.  The waiting is simulated time, charged to
   the host control core — recovery is host work. *)
let rec relaunch t m ~cause =
  if m.attempts >= t.pol.max_restarts then `Quarantined (quarantine t m ~cause)
  else begin
    m.attempts <- m.attempts + 1;
    let delay = backoff_delay t ~attempt:m.attempts in
    push t m (Backing_off { cycles = delay; attempt = m.attempts });
    Cpu.charge (host_cpu t) delay;
    match m.launch () with
    | Ok (enclave, kitten) ->
        m.enclave <- Some enclave;
        m.kitten <- Some kitten;
        m.incarnation <- m.incarnation + 1;
        m.relaunched_at <- now t;
        push t m (Relaunched { enclave_id = enclave.Enclave.id });
        `Recovered
    | Error why ->
        push t m (Relaunch_failed why);
        relaunch t m ~cause
  end

(* Halt a still-running (wedged) enclave through the per-core command
   queues: a halt command followed by the NMI doorbell makes each
   hypervisor kill its core on the drain; then Pisces reclaims the
   partition (firing the destroy hook, which unmaps the EPT and
   archives the whitelist). *)
let teardown_wedged t (enclave : Enclave.t) ~reason =
  let pisces = Covirt.Controller.pisces t.ctrl in
  let machine = Pisces.machine pisces in
  (match
     Covirt.Controller.instance_for t.ctrl ~enclave_id:enclave.Enclave.id
   with
  | Some inst ->
      List.iter
        (fun (core, hv) ->
          let queue = Covirt.Hypervisor.queue hv in
          (match Covirt.Command.enqueue queue Covirt.Command.Halt_core with
          | Ok () -> ()
          | Error _ ->
              (* Ring full: drain by NMI first, then the halt fits. *)
              (try Machine.post_host_nmi machine ~dest:core
               with Vmx.Vm_terminated _ -> ());
              ignore (Covirt.Command.enqueue queue Covirt.Command.Halt_core));
          try Machine.post_host_nmi machine ~dest:core
          with Vmx.Vm_terminated _ -> ())
        inst.Covirt.Controller.hypervisors
  | None -> ());
  if Enclave.is_running enclave then Pisces.reclaim_crashed pisces enclave ~reason

let stability_reset t m =
  if m.attempts > 0 && now t - m.relaunched_at >= t.pol.stability_window then
    m.attempts <- 0

let run_protected t ~name f =
  let m = find_exn t name in
  match m.quarantined with
  | Some why -> `Quarantined why
  | None -> (
      match (m.enclave, m.kitten) with
      | Some enclave, Some kitten -> (
          stability_reset t m;
          let ctx = Kitten.context kitten ~core:(Enclave.bsp enclave) in
          let pisces = Covirt.Controller.pisces t.ctrl in
          match Pisces.run_guarded pisces (fun () -> f ctx) with
          | Ok () -> `Ok
          | Error crash ->
              (* run_guarded already reclaimed the partition. *)
              let cause =
                match consume_pending t crash.Pisces.enclave_id with
                | Some r ->
                    (* Route the detail through the trace-severity gate:
                       forcing it unconditionally here would undo the
                       report's laziness for severity-filtered events. *)
                    let trace =
                      (Pisces.machine pisces).Machine.trace
                    in
                    Format.asprintf "%s on cpu %d (%s)"
                      (Covirt.Fault_report.kind_name r.Covirt.Fault_report.kind)
                      r.Covirt.Fault_report.cpu
                      (Covirt.Fault_report.rendered_detail r ~trace)
                | None -> crash.Pisces.reason
              in
              push t m (Fault_detected cause);
              push t m Torn_down;
              m.enclave <- None;
              m.kitten <- None;
              relaunch t m ~cause)
      | _ -> `Quarantined "not running")

let escalate_wedged t ~name ~detail =
  let m = find_exn t name in
  match (m.quarantined, m.enclave) with
  | Some _, _ | _, None -> ()
  | None, Some enclave ->
      stability_reset t m;
      Covirt.Controller.record_report t.ctrl
        {
          Covirt.Fault_report.enclave = enclave.Enclave.id;
          cpu = Enclave.bsp enclave;
          tsc = now t;
          kind = Covirt.Fault_report.Watchdog_timeout;
          fatal = true;
          detail = Lazy.from_val detail;
        };
      push t m (Wedge_detected detail);
      teardown_wedged t enclave ~reason:("watchdog: " ^ detail);
      push t m Torn_down;
      m.enclave <- None;
      m.kitten <- None;
      Hashtbl.remove t.pending enclave.Enclave.id;
      ignore (relaunch t m ~cause:detail)

(* ------------------------------------------------------------------ *)
(* Introspection.                                                      *)

let names t = List.map fst t.managed
let enclave t ~name = Option.bind (find t name) (fun m -> m.enclave)
let kitten t ~name = Option.bind (find t name) (fun m -> m.kitten)

let status t ~name =
  match (find_exn t name).quarantined with
  | None -> Healthy
  | Some why -> Quarantined why

let attempts t ~name = (find_exn t name).attempts
let incarnation t ~name = (find_exn t name).incarnation
let timeline t = List.rev t.events
let quarantine_ledger t = t.ledger
let set_quarantine_hook t hook = t.quarantine_hook <- hook
let captures t = t.captures
