(** The enclave supervisor: fault-driven containment-and-recovery.

    Turns a fatal fault report into a full recovery protocol instead
    of a dead end (the Quest-V model: reboot the failed kernel while
    the rest of the machine keeps running).  Per managed enclave it
    runs a restart policy:

    - {b teardown}: if the enclave is still nominally running (the
      wedged case), its cores are halted through the hypervisor
      command queue (NMI doorbell + halt command), then the enclave is
      reclaimed through Pisces — which unmaps the EPT and releases
      cores, memory and vectors through the controller's destroy hook;
    - {b backoff}: relaunch waits an exponentially growing number of
      {e simulated cycles} (with deterministic seeded jitter), charged
      to the host control core;
    - {b relaunch}: the registered launch closure boots a fresh
      incarnation under the same name (and hence the same Covirt
      config override);
    - {b circuit breaker}: an enclave that exhausts its restart budget
      without a stability window elapsing is permanently quarantined,
      and the quarantine ledger records why.

    The supervisor subscribes to the controller's fault-report feed,
    so every recovery decision can name the report that triggered it.
    All timing is in simulated cycles — equal seeds yield equal
    recovery timelines. *)

open Covirt_pisces
open Covirt_kitten

type policy = {
  max_restarts : int;  (** restart budget before quarantine *)
  backoff_base : int;  (** first backoff delay, cycles *)
  backoff_factor : int;  (** exponential multiplier *)
  backoff_cap : int;  (** ceiling on one backoff delay *)
  stability_window : int;
      (** healthy cycles after a relaunch that reset the budget *)
  watchdog_deadline : int;  (** silence tolerated before wedge verdict *)
}

val policy_of_config : Covirt.Config.t -> policy
(** Lift the supervision knobs out of a protection config. *)

val default_policy : policy
(** {!policy_of_config} of the default protection config. *)

(** What happened at one step of the recovery protocol. *)
type event_kind =
  | Fault_detected of string  (** a fatal fault report arrived *)
  | Wedge_detected of string  (** the watchdog escalated a stall *)
  | Torn_down  (** cores halted, partition reclaimed *)
  | Backing_off of { cycles : int; attempt : int }
      (** waiting before relaunch attempt [attempt] *)
  | Relaunched of { enclave_id : int }  (** a fresh incarnation is up *)
  | Relaunch_failed of string  (** the launch closure failed *)
  | Quarantine of string  (** the circuit breaker tripped *)

type event = {
  tsc : int;  (** host TSC when the event was recorded *)
  name : string;  (** managed enclave name *)
  incarnation : int;  (** 0 for the original launch, +1 per relaunch *)
  kind : event_kind;
}

val pp_event : Format.formatter -> event -> unit
(** One timeline line: TSC, enclave, incarnation, kind. *)

type status = Healthy | Quarantined of string
(** An enclave is either restartable or permanently parked (with the
    ledger explanation). *)

type t
(** One supervisor; manages any number of named enclaves. *)

val create : ?policy:policy -> seed:int -> Covirt.Controller.t -> t
(** Attach to the controller's fault feed.  [policy] defaults to
    {!policy_of_config} of the controller's default config. *)

val manage :
  t ->
  name:string ->
  launch:(unit -> (Enclave.t * Kitten.t, string) result) ->
  (Enclave.t * Kitten.t, string) result
(** Perform the initial launch and put the enclave under supervision.
    [launch] is kept for relaunches; it must boot an enclave under
    [name]. *)

val run_protected :
  t ->
  name:string ->
  (Kitten.context -> unit) ->
  [ `Ok | `Recovered | `Quarantined of string ]
(** Run enclave code (on the current incarnation's boot core) under
    crash guard.  On containment the recovery protocol runs before
    returning: [`Recovered] if a fresh incarnation is up,
    [`Quarantined] if the circuit breaker tripped.  Already-quarantined
    enclaves are not run at all. *)

val escalate_wedged : t -> name:string -> detail:string -> unit
(** The watchdog's entry point: record a {!Covirt.Fault_report.Watchdog_timeout}
    report against the current incarnation, then run the same
    teardown-and-recovery protocol as a crash. *)

(** {2 Introspection} *)

val names : t -> string list
(** Managed enclave names, in management order. *)

val enclave : t -> name:string -> Enclave.t option
(** The current incarnation's enclave, [None] if unmanaged or down. *)

val kitten : t -> name:string -> Kitten.t option
(** The current incarnation's kernel, [None] if unmanaged or down. *)

val status : t -> name:string -> status
(** {!Healthy} unless quarantined.  Unmanaged names are healthy. *)

val attempts : t -> name:string -> int
(** Restarts consumed since the budget was last reset. *)

val incarnation : t -> name:string -> int
(** 0 for the original launch, +1 per successful relaunch. *)

val controller : t -> Covirt.Controller.t
(** The controller this supervisor subscribed to. *)

val policy : t -> policy
(** The active restart policy. *)

val timeline : t -> event list
(** All events, oldest first. *)

val quarantine_ledger : t -> (string * string) list
(** [(name, explanation)] for every permanently-down enclave, in
    quarantine order.  The explanation names the triggering fault
    report and the consumed budget. *)

val set_quarantine_hook : t -> (name:string -> why:string -> string option) -> unit
(** Install an archival callback run at the instant the circuit
    breaker trips — before the quarantine verdict reaches the caller,
    so a trace recorder's trailing window still holds the exits
    leading up to the failure.  Returning [Some path] records the
    archive in {!captures}.  The hook must not touch the supervisor
    (it runs mid-protocol); default returns [None]. *)

val captures : t -> (string * string) list
(** [(name, archive path)] for every quarantine whose hook archived
    state, in quarantine order. *)
