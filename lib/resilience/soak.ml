open Covirt_hw
open Covirt_pisces
open Covirt_kitten

type result = {
  seed : int;
  trials : int;
  faults_injected : int;
  fatal_recoveries : int;
  wedges_injected : int;
  wedges_detected : int;
  quarantined : (string * string) list;
  captures : (string * string) list;
  budget_respected : bool;
  sibling_residual : float;
  reference_residual : float;
  sibling_unperturbed : bool;
  timeline : Supervisor.event list;
  incarnations : (string * int) list;
  metrics_delta : Covirt_obs.Metrics.snapshot;
  sanitizer_flags : int option;
}

let gib = Covirt_sim.Units.gib
let mib = Covirt_sim.Units.mib

(* Soak timing is compressed relative to the production defaults so
   hundreds of fault/recovery cycles fit in one run: short backoffs, a
   tight stability window (the budget recharges between trials — the
   soak exercises recovery, the quarantine tests exercise the
   breaker), and a watchdog deadline of four trial epochs. *)
let epoch = 1_000_000 (* host cycles of soak time per trial *)

let soak_policy =
  {
    Supervisor.max_restarts = 25;
    backoff_base = 50_000;
    backoff_factor = 2;
    backoff_cap = 5_000_000;
    stability_window = 2 * epoch;
    watchdog_deadline = 4 * epoch;
  }

let worker_a = "worker-a"
let worker_b = "worker-b"
let sibling = "sibling"

(* Scheduled wedges, matched to the target alternation (worker-a takes
   even trials, worker-b odd ones). *)
let wedge_rules =
  let wedge target trial =
    {
      Fault_injector.target;
      trigger = Fault_injector.At_trial trial;
      fault = Fault_injector.Wedge { cycles = 8_000_000 };
    }
  in
  List.map (wedge worker_a) [ 40; 96; 150 ]
  @ List.map (wedge worker_b) [ 61; 121; 181 ]

let launcher hobbes ~name ~core ~zone () =
  Covirt_hobbes.Hobbes.launch_enclave hobbes ~name ~cores:[ core ]
    ~mem:[ (zone, 512 * mib) ]
    ()

let hpcg_residual ctxs =
  match
    Covirt_workloads.Hpcg.run ctxs ~nominal_dim:64 ~real_dim:12 ~iterations:25
      ()
  with
  | Ok r -> r.Covirt_workloads.Hpcg.final_residual
  | Error e -> failwith ("soak: HPCG failed: " ^ e)

(* A clean machine with the identical launch sequence and solve, for
   the unperturbed-sibling comparison.  The residual is pure
   arithmetic, so any supervision interference on the soaked machine
   would show up as a mismatch. *)
let reference_residual ~seed =
  let machine =
    Machine.create ~seed ~zones:2 ~cores_per_zone:3 ~mem_per_zone:(4 * gib) ()
  in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let _ctrl =
    Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes)
      ~config:Covirt.Config.full
  in
  match launcher hobbes ~name:sibling ~core:4 ~zone:1 () with
  | Error e -> failwith ("soak reference: " ^ e)
  | Ok (enclave, kitten) ->
      hpcg_residual [ Kitten.context kitten ~core:(Enclave.bsp enclave) ]

(* One shard of the soak: a complete machine stack (machine, hobbes,
   supervisor, watchdog, injector) owning the {e global} trial numbers
   [lo+1 .. hi] — preserving the wedge schedule and target alternation
   whatever the shard count — seeded entirely from [shard_seed]. *)
let run_shard ?(on_trial = fun (_ : int) -> ()) ?on_quarantine ~shard_seed ~lo
    ~hi ~sanitize () =
  let obs_before = Covirt_obs.Metrics.snapshot () in
  let sanitize_before = Covirt_hw.Sanitize.violation_count () in
  let machine =
    Machine.create ~seed:shard_seed ~zones:2 ~cores_per_zone:3
      ~mem_per_zone:(4 * gib) ()
  in
  let machine_mem = 8 * gib in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let pisces = Covirt_hobbes.Hobbes.pisces hobbes in
  let ctrl = Covirt.enable pisces ~config:Covirt.Config.full in
  let sup = Supervisor.create ~policy:soak_policy ~seed:shard_seed ctrl in
  (match on_quarantine with
  | Some hook ->
      Supervisor.set_quarantine_hook sup (fun ~name ~why ->
          hook ~shard_seed ~lo ~hi ~name ~why)
  | None -> ());
  let dog = Watchdog.create sup in
  let injector =
    Fault_injector.create
      ~seed:(Covirt_sim.Rng.split_seed ~seed:shard_seed ~index:1)
      ~rules:wedge_rules ()
  in
  let launch name core zone =
    match Supervisor.manage sup ~name ~launch:(launcher hobbes ~name ~core ~zone)
    with
    | Ok _ -> ()
    | Error e -> failwith ("soak: launch of " ^ name ^ " failed: " ^ e)
  in
  launch worker_a 1 0;
  launch worker_b 3 1;
  launch sibling 4 1;
  let wedged = Hashtbl.create 2 in
  let fatal_recoveries = ref 0 in
  let wedges_injected = ref 0 in
  let wedges_detected = ref 0 in
  let host = Pisces.host_cpu pisces in
  (* [inject = false] runs a quiet epoch: heartbeats and soak time
     only, no fault opportunity.  Used by the post-loop drain. *)
  let epoch_step ~inject trial =
    on_trial trial;
    (* Soak time passes on the host between fault opportunities. *)
    Cpu.charge host epoch;
    let target = if trial mod 2 = 0 then worker_a else worker_b in
    List.iter
      (fun name ->
        if Hashtbl.mem wedged name then
          (* A wedged kernel does nothing observable: no heartbeat, no
             work — only the watchdog below can get it back. *)
          ()
        else
          let is_target = inject && name = target in
          let outcome =
            Supervisor.run_protected sup ~name (fun ctx ->
                Kitten.heartbeat ctx;
                Cpu.charge ctx.Kitten.cpu 10_000;
                if is_target then begin
                  let now = Cpu.rdtsc host in
                  let scheduled =
                    (* A spent schedule answers typed; the random
                       draw below still runs, so the trial stream is
                       unchanged. *)
                    match Fault_injector.due injector ~target:name ~trial ~now
                    with
                    | Fault_injector.Due faults -> faults
                    | Fault_injector.End_of_schedule -> []
                  in
                  if List.exists Fault_injector.is_wedge scheduled then begin
                    (* Wedge trials wedge and nothing else, so the
                       stall is attributable. *)
                    incr wedges_injected;
                    Hashtbl.replace wedged name ();
                    List.iter (Fault_injector.inject injector ctx) scheduled
                  end
                  else begin
                    List.iter (Fault_injector.inject injector ctx) scheduled;
                    let victim_bsp =
                      match Supervisor.enclave sup ~name:sibling with
                      | Some e -> Enclave.bsp e
                      | None -> 4
                    in
                    Fault_injector.inject injector ctx
                      (Fault_injector.draw injector ~machine_mem ~victim_bsp)
                  end
                end)
          in
          match outcome with
          | `Ok -> ()
          | `Recovered ->
              incr fatal_recoveries;
              Hashtbl.remove wedged name
          | `Quarantined _ -> Hashtbl.remove wedged name)
      [ worker_a; worker_b; sibling ];
    List.iter
      (fun name ->
        incr wedges_detected;
        Hashtbl.remove wedged name)
      (Watchdog.poll dog)
  in
  for trial = lo + 1 to hi do
    epoch_step ~inject:true trial
  done;
  (* Drain: a wedge injected near the shard's last trial has had no
     epochs for the watchdog deadline to expire.  Run quiet epochs —
     heartbeats keep healthy enclaves off the watchdog's list — until
     every wedge is caught (bounded by the deadline plus slack). *)
  let drain_limit = (soak_policy.Supervisor.watchdog_deadline / epoch) + 2 in
  let drained = ref 0 in
  while Hashtbl.length wedged > 0 && !drained < drain_limit do
    incr drained;
    epoch_step ~inject:false (hi + !drained)
  done;
  (* The never-faulted sibling must now produce the exact result a
     clean machine produces. *)
  let sibling_res = ref nan in
  (match
     Supervisor.run_protected sup ~name:sibling (fun ctx ->
         sibling_res := hpcg_residual [ ctx ])
   with
  | `Ok -> ()
  | `Recovered | `Quarantined _ ->
      failwith "soak: sibling needed recovery during the final solve");
  (* Count the soaked machine's sanitizer flags before the clean
     reference machine attaches (its attach re-arms the shadow state
     for the reference machine). *)
  let sanitizer_flags =
    if sanitize then
      Some (Covirt_hw.Sanitize.violation_count () - sanitize_before)
    else None
  in
  let reference = reference_residual ~seed:shard_seed in
  let timeline = Supervisor.timeline sup in
  let budget_respected =
    List.for_all
      (fun (e : Supervisor.event) ->
        match e.Supervisor.kind with
        | Supervisor.Backing_off { attempt; _ } ->
            attempt <= soak_policy.Supervisor.max_restarts
        | _ -> true)
      timeline
    && List.for_all
         (fun name ->
           match Supervisor.status sup ~name with
           | Supervisor.Quarantined _ ->
               List.mem_assoc name (Supervisor.quarantine_ledger sup)
           | Supervisor.Healthy -> true)
         (Supervisor.names sup)
  in
  let sibling_healthy =
    match Supervisor.kitten sup ~name:sibling with
    | Some k -> Kitten.health k = `Ok
    | None -> false
  in
  {
    seed = shard_seed;
    trials = hi - lo;
    faults_injected = Fault_injector.injected injector;
    fatal_recoveries = !fatal_recoveries;
    wedges_injected = !wedges_injected;
    wedges_detected = !wedges_detected;
    quarantined = Supervisor.quarantine_ledger sup;
    captures = Supervisor.captures sup;
    budget_respected;
    sibling_residual = !sibling_res;
    reference_residual = reference;
    sibling_unperturbed =
      Supervisor.incarnation sup ~name:sibling = 0
      && Supervisor.status sup ~name:sibling = Supervisor.Healthy
      && sibling_healthy
      && !sibling_res = reference;
    timeline;
    incarnations =
      List.map
        (fun name -> (name, Supervisor.incarnation sup ~name))
        (Supervisor.names sup);
    metrics_delta =
      Covirt_obs.Metrics.diff ~before:obs_before
        ~after:(Covirt_obs.Metrics.snapshot ());
    sanitizer_flags;
  }

(* Merge shard results left-to-right in shard order: counters sum,
   ledgers and timelines concatenate, invariants conjoin, and the
   metrics deltas join through [Metrics.merge] — all pure functions of
   the shard values, so the merged result is placement-independent. *)
let merge_results ~seed ~trials = function
  | [] -> invalid_arg "Soak.run: no shards"
  | first :: rest ->
      let merged =
        List.fold_left
          (fun acc r ->
            {
              seed;
              trials;
              faults_injected = acc.faults_injected + r.faults_injected;
              fatal_recoveries = acc.fatal_recoveries + r.fatal_recoveries;
              wedges_injected = acc.wedges_injected + r.wedges_injected;
              wedges_detected = acc.wedges_detected + r.wedges_detected;
              quarantined = acc.quarantined @ r.quarantined;
              captures = acc.captures @ r.captures;
              budget_respected = acc.budget_respected && r.budget_respected;
              (* The residual pair reported is the first shard's; every
                 shard checks its own against its own reference. *)
              sibling_residual = acc.sibling_residual;
              reference_residual = acc.reference_residual;
              sibling_unperturbed =
                acc.sibling_unperturbed && r.sibling_unperturbed;
              timeline = acc.timeline @ r.timeline;
              incarnations =
                List.map
                  (fun (name, inc) ->
                    ( name,
                      inc
                      + Option.value ~default:0
                          (List.assoc_opt name r.incarnations) ))
                  acc.incarnations;
              metrics_delta =
                Covirt_obs.Metrics.merge acc.metrics_delta r.metrics_delta;
              sanitizer_flags =
                (match (acc.sanitizer_flags, r.sanitizer_flags) with
                | Some a, Some b -> Some (a + b)
                | _ -> None);
            })
          { first with seed; trials;
            metrics_delta =
              Covirt_obs.Metrics.merge Covirt_obs.Metrics.empty
                first.metrics_delta }
          rest
      in
      merged

(* Replay entry point: one shard, run in the calling domain, with the
   sanitizer request handled here (a replayer is not a fleet, so the
   request/release pairing the parallel [run] does around its spawns
   happens inline).  Pure in [shard_seed], so a recorded soak-shard
   trace re-runs bit-identically. *)
let replay_shard ?on_trial ?on_quarantine ~shard_seed ~lo ~hi ~sanitize () =
  let had_request = Covirt_hw.Sanitize.requested () in
  if sanitize then Covirt_hw.Sanitize.request ();
  let finish () =
    if sanitize && not had_request then Covirt_hw.Sanitize.release ()
  in
  match run_shard ?on_trial ?on_quarantine ~shard_seed ~lo ~hi ~sanitize () with
  | r ->
      finish ();
      r
  | exception e ->
      finish ();
      raise e

let run ?(trials = 200) ?(seed = 2026) ?(sanitize = false) ?(shards = 1)
    ?domains ?shard_wrap ?on_trial ?on_quarantine () =
  let had_request = Covirt_hw.Sanitize.requested () in
  if sanitize then Covirt_hw.Sanitize.request ();
  let wrap = match shard_wrap with Some w -> w | None -> fun body -> body () in
  let shard_results =
    Covirt_fleet.Fleet.map ?domains ~seed ~shards
      (fun ~shard_seed ~index ->
        let lo, hi = Covirt_fleet.Fleet.slice ~n:trials ~shards index in
        wrap (fun () ->
            run_shard ?on_trial ?on_quarantine ~shard_seed ~lo ~hi ~sanitize ()))
  in
  if sanitize && not had_request then Covirt_hw.Sanitize.release ();
  merge_results ~seed ~trials (Array.to_list shard_results)

let table r =
  let t =
    Covirt_sim.Table.create
      ~columns:[ "metric"; "value" ]
  in
  let add metric value = Covirt_sim.Table.add_row t [ metric; value ] in
  add "trials" (string_of_int r.trials);
  add "faults injected" (string_of_int r.faults_injected);
  add "fatal -> recovered" (string_of_int r.fatal_recoveries);
  add "wedges injected" (string_of_int r.wedges_injected);
  add "wedges detected" (string_of_int r.wedges_detected);
  add "quarantined" (string_of_int (List.length r.quarantined));
  add "budget respected" (string_of_bool r.budget_respected);
  List.iter
    (fun (name, inc) -> add (name ^ " relaunches") (string_of_int inc))
    r.incarnations;
  (* Capture rows only when a quarantine hook archived something, so
     default soak output is byte-identical. *)
  List.iter
    (fun (name, path) -> add (name ^ " capture") path)
    r.captures;
  add "sibling residual" (Printf.sprintf "%.6e" r.sibling_residual);
  add "reference residual" (Printf.sprintf "%.6e" r.reference_residual);
  add "sibling unperturbed" (string_of_bool r.sibling_unperturbed);
  (* Observability rows only when something was recorded, so the table
     is unchanged — and the golden transcript stable — with obs off. *)
  if not (Covirt_obs.Metrics.is_zero r.metrics_delta) then begin
    let total name = Covirt_obs.Metrics.total_counter r.metrics_delta name in
    add "obs: vm exits" (string_of_int (total "vmexit.count"));
    add "obs: fault reports" (string_of_int (total "fault.report"));
    add "obs: supervisor events" (string_of_int (total "supervisor.events"));
    add "obs: watchdog polls" (string_of_int (total "watchdog.polls"))
  end;
  (* A sanitizer row only when the soak actually ran under it, keeping
     default output byte-identical. *)
  (match r.sanitizer_flags with
  | Some n -> add "sanitizer violations" (string_of_int n)
  | None -> ());
  t
