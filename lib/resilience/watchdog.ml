open Covirt_hw
open Covirt_pisces

(* Per-enclave progress snapshot.  [s_incarnation] ties it to one
   launch of the enclave; a relaunch resets the grace period. *)
type snap = {
  s_incarnation : int;
  mutable s_sig : int * int;  (* (vm exits, enclave->host messages) *)
  mutable s_progress_tsc : int;  (* host TSC of the last advance *)
  mutable s_stalled : int;  (* cycles stalled as of the last poll *)
}

type t = {
  sup : Supervisor.t;
  snaps : (string, snap) Hashtbl.t;
}

let create sup = { sup; snaps = Hashtbl.create 4 }

(* The progress signature: anything a live kernel does shows up either
   as a VM exit (timer tick, emulation, command drain) or as traffic
   on the Pisces control channel (syscall forwarding, console,
   heartbeat).  Both are visible from the host without touching the
   enclave. *)
let signature t (enclave : Enclave.t) =
  let exits =
    match
      Covirt.Controller.instance_for
        (Supervisor.controller t.sup)
        ~enclave_id:enclave.Enclave.id
    with
    | None -> 0 (* unprotected: only the channel signal remains *)
    | Some inst ->
        List.fold_left
          (fun acc (_, hv) ->
            acc + (Covirt.Hypervisor.vmcs hv).Vmcs.stats.Vmcs.exits_total)
          0 inst.Covirt.Controller.hypervisors
  in
  (exits, Ctrl_channel.enclave_messages_sent enclave.Enclave.channel)

let now t =
  Cpu.rdtsc (Pisces.host_cpu (Covirt.Controller.pisces (Supervisor.controller t.sup)))

(* Health-monitoring observability: how often the watchdog looked, and
   how often it had to pull the trigger. *)
let m_polls = lazy Covirt_obs.Metrics.(unlabeled (counter "watchdog.polls"))

let m_escalations =
  lazy Covirt_obs.Metrics.(unlabeled (counter "watchdog.escalations"))

let poll t =
  if !Covirt_obs.Metrics.on then
    Covirt_obs.Metrics.add (Lazy.force m_polls) 1;
  let deadline = (Supervisor.policy t.sup).Supervisor.watchdog_deadline in
  let tsc = now t in
  List.filter
    (fun name ->
      match
        (Supervisor.status t.sup ~name, Supervisor.enclave t.sup ~name)
      with
      | Supervisor.Quarantined _, _ | _, None ->
          Hashtbl.remove t.snaps name;
          false
      | Supervisor.Healthy, Some enclave -> (
          let incarnation = Supervisor.incarnation t.sup ~name in
          let current = signature t enclave in
          let snap =
            match Hashtbl.find_opt t.snaps name with
            | Some s when s.s_incarnation = incarnation -> s
            | _ ->
                (* First sight of this incarnation: full grace period. *)
                let s =
                  {
                    s_incarnation = incarnation;
                    s_sig = current;
                    s_progress_tsc = tsc;
                    s_stalled = 0;
                  }
                in
                Hashtbl.replace t.snaps name s;
                s
          in
          if current <> snap.s_sig then begin
            snap.s_sig <- current;
            snap.s_progress_tsc <- tsc;
            snap.s_stalled <- 0;
            false
          end
          else begin
            snap.s_stalled <- tsc - snap.s_progress_tsc;
            if snap.s_stalled < deadline then false
            else begin
              let exits, msgs = current in
              if !Covirt_obs.Metrics.on then
                Covirt_obs.Metrics.add (Lazy.force m_escalations) 1;
              Supervisor.escalate_wedged t.sup ~name
                ~detail:
                  (Printf.sprintf
                     "no progress for %d cycles (deadline %d): stuck at %d VM \
                      exits, %d channel messages"
                     snap.s_stalled deadline exits msgs);
              Hashtbl.remove t.snaps name;
              true
            end
          end))
    (Supervisor.names t.sup)

let stalled_for t ~name =
  Option.map (fun s -> s.s_stalled) (Hashtbl.find_opt t.snaps name)
