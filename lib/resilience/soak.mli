(** The supervised soak: the supervision subsystem's end-to-end
    evaluation.

    A seeded campaign on one simulated node: two worker enclaves take
    alternating faults from the {!Fault_injector} — the random
    containment taxonomy plus scheduled wedges only the watchdog can
    catch — while a third, never-faulted sibling enclave heartbeats
    through the whole run and then computes an HPCG solve.  The
    supervisor must recover every recoverable fault within its restart
    budget, the watchdog must catch every wedge, and the sibling's
    numerical result must be bit-identical to a clean reference
    machine that saw no faults at all.

    Everything is driven by one seed; equal seeds give equal
    timelines. *)

type result = {
  seed : int;
  trials : int;
  faults_injected : int;  (** total faults applied by the injector *)
  fatal_recoveries : int;  (** contained kills turned into relaunches *)
  wedges_injected : int;
  wedges_detected : int;  (** wedges the watchdog escalated *)
  quarantined : (string * string) list;  (** the supervisor's ledger *)
  captures : (string * string) list;
      (** [(name, archive path)] for every quarantine a hook archived
          (see {!Supervisor.set_quarantine_hook}); empty without an
          [on_quarantine] callback *)
  budget_respected : bool;
      (** no backoff attempt ever exceeded the restart budget, and
          every permanently-down enclave is explained by the ledger *)
  sibling_residual : float;  (** HPCG residual on the soaked machine *)
  reference_residual : float;  (** same solve on a clean machine *)
  sibling_unperturbed : bool;
      (** sibling never restarted, never corrupted, and its residual
          matches the reference exactly *)
  timeline : Supervisor.event list;  (** full recovery timeline *)
  incarnations : (string * int) list;  (** relaunch count per enclave *)
  metrics_delta : Covirt_obs.Metrics.snapshot;
      (** snapshot-diff of the observability registry across the run:
          the campaign's own counters, isolated from anything recorded
          before it.  All-zero when observability is disabled. *)
  sanitizer_flags : int option;
      (** violations the shadow sanitizer recorded during the soak;
          [None] when the soak ran without [sanitize].  Under the full
          protection config this should be [Some 0]: every injected
          fault is contained before it can reach foreign memory, and a
          nonzero count here means the sanitizer produced a false
          positive under heavy fault-and-recovery churn. *)
}

val run :
  ?trials:int ->
  ?seed:int ->
  ?sanitize:bool ->
  ?shards:int ->
  ?domains:int ->
  ?shard_wrap:((unit -> result) -> result) ->
  ?on_trial:(int -> unit) ->
  ?on_quarantine:
    (shard_seed:int ->
    lo:int ->
    hi:int ->
    name:string ->
    why:string ->
    string option) ->
  unit ->
  result
(** Defaults: 200 trials, seed 2026.  [sanitize] (default [false])
    runs the whole soak — injections, recoveries, the final solve —
    under the shadow sanitizer ({!Covirt_hw.Sanitize}); timelines and
    residuals are unchanged (the sanitizer charges nothing).

    [shards] (default [1]) splits the trial range into contiguous
    blocks, each soaked on its own complete machine stack seeded from
    [Rng.split_seed ~seed ~index] — the shard count is part of the
    experiment's identity.  [domains] (default
    [Covirt_fleet.Fleet.recommended_domains ()]) is placement only:
    the merged result — counters summed, ledgers and timelines
    concatenated in shard order, metrics deltas joined with
    [Metrics.merge] — is byte-identical for any [domains].  Global
    trial numbers (which schedule wedges and alternate targets) are
    preserved across shard boundaries, and each shard runs quiet drain
    epochs at its end so a wedge injected near the boundary is still
    caught by its own watchdog.

    The three callbacks run {e inside} the shard's domain and must be
    domain-safe: [shard_wrap] brackets a whole shard body (a trace
    recorder arms/disarms here), [on_trial] fires at the top of every
    epoch with the global trial number (slot stamping), and
    [on_quarantine] is installed as each shard supervisor's
    {!Supervisor.set_quarantine_hook} — its [Some path] returns are
    collected into [result.captures] and printed by {!table}.  All
    default to no-ops, leaving results byte-identical. *)

val replay_shard :
  ?on_trial:(int -> unit) ->
  ?on_quarantine:
    (shard_seed:int ->
    lo:int ->
    hi:int ->
    name:string ->
    why:string ->
    string option) ->
  shard_seed:int ->
  lo:int ->
  hi:int ->
  sanitize:bool ->
  unit ->
  result
(** Re-run exactly one shard — trials [lo+1 .. hi] under [shard_seed]
    — in the calling domain, handling the sanitizer request/release
    inline.  Pure in its arguments: this is the soak half of the
    replay contract, used by [covirt.replay] to re-execute a recorded
    soak-shard trace bit-identically. *)

val table : result -> Covirt_sim.Table.t
(** Summary table for the CLI. *)
