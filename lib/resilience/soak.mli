(** The supervised soak: the supervision subsystem's end-to-end
    evaluation.

    A seeded campaign on one simulated node: two worker enclaves take
    alternating faults from the {!Fault_injector} — the random
    containment taxonomy plus scheduled wedges only the watchdog can
    catch — while a third, never-faulted sibling enclave heartbeats
    through the whole run and then computes an HPCG solve.  The
    supervisor must recover every recoverable fault within its restart
    budget, the watchdog must catch every wedge, and the sibling's
    numerical result must be bit-identical to a clean reference
    machine that saw no faults at all.

    Everything is driven by one seed; equal seeds give equal
    timelines. *)

type result = {
  seed : int;
  trials : int;
  faults_injected : int;  (** total faults applied by the injector *)
  fatal_recoveries : int;  (** contained kills turned into relaunches *)
  wedges_injected : int;
  wedges_detected : int;  (** wedges the watchdog escalated *)
  quarantined : (string * string) list;  (** the supervisor's ledger *)
  budget_respected : bool;
      (** no backoff attempt ever exceeded the restart budget, and
          every permanently-down enclave is explained by the ledger *)
  sibling_residual : float;  (** HPCG residual on the soaked machine *)
  reference_residual : float;  (** same solve on a clean machine *)
  sibling_unperturbed : bool;
      (** sibling never restarted, never corrupted, and its residual
          matches the reference exactly *)
  timeline : Supervisor.event list;  (** full recovery timeline *)
  incarnations : (string * int) list;  (** relaunch count per enclave *)
  metrics_delta : Covirt_obs.Metrics.snapshot;
      (** snapshot-diff of the observability registry across the run:
          the campaign's own counters, isolated from anything recorded
          before it.  All-zero when observability is disabled. *)
  sanitizer_flags : int option;
      (** violations the shadow sanitizer recorded during the soak;
          [None] when the soak ran without [sanitize].  Under the full
          protection config this should be [Some 0]: every injected
          fault is contained before it can reach foreign memory, and a
          nonzero count here means the sanitizer produced a false
          positive under heavy fault-and-recovery churn. *)
}

val run : ?trials:int -> ?seed:int -> ?sanitize:bool -> unit -> result
(** Defaults: 200 trials, seed 2026.  [sanitize] (default [false])
    runs the whole soak — injections, recoveries, the final solve —
    under the shadow sanitizer ({!Covirt_hw.Sanitize}); timelines and
    residuals are unchanged (the sanitizer charges nothing). *)

val table : result -> Covirt_sim.Table.t
(** Summary table for the CLI. *)
