(** Traditional full virtualization — the comparison point of Fig. 1b.

    The paper's related-work argument: running each co-kernel in a
    dedicated VM {e would} give isolation, but "IPC interfaces are
    mediated by the underlying virtualization layer, requiring added
    overhead for any communication spanning an OS/R boundary" — and
    resource assignment is coarse and static.  This module is an
    analytic model of that architecture, calibrated against the same
    {!Covirt_hw.Cost_model}, so the bench harness can put concrete
    numbers on the paper's qualitative claims:

    - cross-VM IPC through a virtio-style device: the sender's
      doorbell traps, the hypervisor copies the payload between
      address spaces (no shared identity mappings exist), and the
      receiver takes an injected interrupt (another exit pair);
    - dynamic memory reassignment: a ballooning round trip that pauses
      the VM, rewrites the second-level mappings and resumes — per
      operation, orders of magnitude above Covirt's asynchronous EPT
      update. *)

open Covirt_hw

val ipc_message_cycles : Cost_model.t -> words:int -> float
(** Cycles for one cross-VM message of [words] 8-byte slots through a
    paravirtual channel. *)

val memory_reassign_cycles : Cost_model.t -> bytes:int -> vcpus:int -> float
(** Cycles to move [bytes] between VMs via a balloon/remap cycle that
    must pause all [vcpus]. *)

val attach_equivalent_us : Cost_model.t -> bytes:int -> vcpus:int -> float
(** The full-virtualization cost of what XEMEM attach does, in
    microseconds (for the Fig. 4-style comparison). *)
