open Covirt_hw

(* A virtio-style ring transfer: doorbell exit on the sender, the
   hypervisor walks the descriptor and copies the payload (it cannot
   share identity mappings between distinct guest physical address
   spaces), then injects a completion interrupt into the receiver —
   which, under full virtualization, is itself an exit pair on the
   receiving vCPU. *)
let ipc_message_cycles (m : Cost_model.t) ~words =
  if words <= 0 then invalid_arg "Full_virt.ipc_message_cycles";
  let exits = 2.0 (* sender doorbell + receiver interrupt window *) in
  let exit_cost = float_of_int (m.Cost_model.vmexit_roundtrip + m.Cost_model.exit_dispatch) in
  let copy =
    (* the hypervisor copy touches each line twice (read + write) *)
    let lines = float_of_int (max 1 (words * 8 / m.Cost_model.line_bytes)) in
    2.0 *. lines *. float_of_int m.Cost_model.l3_hit
  in
  let inject = float_of_int m.Cost_model.vapic_inject in
  (exits *. exit_cost) +. copy +. inject
    +. float_of_int m.Cost_model.ipi_send_native

(* Ballooning: the donor's balloon driver frees each 4K page and
   reports it (guest-side allocator work per page), one exit per 2M
   chunk hands batches to the hypervisor, the second-level mappings
   are rewritten, and every vCPU of the recipient is paused/resumed to
   install them — after which the recipient's balloon driver hands the
   pages to its allocator, again per page.  Note what this does NOT
   buy: a shared mapping.  The frames changed hands; actually sharing
   data across the VM boundary still requires copying it through a
   paravirtual channel on every use. *)
let balloon_page_cycles (m : Cost_model.t) =
  (* free + report on the donor, allocate + install on the recipient *)
  (2 * m.Cost_model.page_list_per_page) + 60

let memory_reassign_cycles (m : Cost_model.t) ~bytes ~vcpus =
  if bytes <= 0 || vcpus <= 0 then invalid_arg "Full_virt.memory_reassign_cycles";
  let pages = float_of_int (max 1 (bytes / Addr.page_size_4k)) in
  let chunks = float_of_int (max 1 (bytes / Addr.page_size_2m)) in
  let per_chunk =
    float_of_int (m.Cost_model.vmexit_roundtrip + m.Cost_model.exit_dispatch)
    +. float_of_int (512 * m.Cost_model.ept_entry_update)
  in
  let pause_resume =
    float_of_int vcpus
    *. float_of_int (m.Cost_model.nmi_roundtrip + m.Cost_model.vmcs_load)
  in
  (pages *. float_of_int (balloon_page_cycles m))
  +. (chunks *. per_chunk) +. pause_resume

let attach_equivalent_us (m : Cost_model.t) ~bytes ~vcpus =
  Covirt_sim.Units.cycles_to_us ~ghz:m.Cost_model.ghz
    (int_of_float (memory_reassign_cycles m ~bytes ~vcpus))
