(* The check catalogue.  Each check is a pure function from a parsed
   source (plus, for the tree checks, the file list) to findings; the
   engine owns suppression accounting and rendering.  Path scoping
   lives here so a check can be exercised against fixture text under a
   virtual path. *)

open Parsetree

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let in_dir dir path = starts_with ~prefix:(dir ^ "/") path
let in_lib path = in_dir "lib" path

let hot_layers = [ "lib/hw"; "lib/core" ]
let tap_layers = [ "lib/hw"; "lib/core"; "lib/resilience" ]
let in_any dirs path = List.exists (fun d -> in_dir d path) dirs

let finding ~check ~src ~line ~col msg =
  Finding.v ~check ~file:src.Source.path ~line ~col msg

(* The registry rows: id and a one-line description (the CLI's
   [--list] output and the docs' check catalogue are generated from
   the same data). *)
let catalogue =
  [
    ( "mli-presence",
      "every module under lib/ has an interface (.mli next to the .ml)" );
    ( "no-print",
      "the hot layers (lib/hw, lib/core) never print to stdout/stderr \
       directly" );
    ( "guarded-obs",
      "observability emissions in the hot layers are dominated by an \
       enable-flag guard" );
    ( "fleet-monopoly",
      "Domain.spawn only under lib/fleet; lib/fleet never references \
       Covirt_hw" );
    ( "replay-confinement",
      "Covirt_replay referenced by no other lib layer; the trace magic \
       literal lives only in lib/replay/trace.ml" );
    ( "warm-alloc",
      "warm regions are allocation-free by construction (closures, tuples, \
       list/array literals, boxing constructors, Printf/Format, combinator \
       calls)" );
    ( "tap-zero-cost",
      "every Obs/Sanitize/Recorder/Coverage tap site sits under a pure \
       !flag guard that itself allocates nothing" );
    ( "layer-deps",
      "inter-layer module references match the declared layer rule table" );
    ( "determinism",
      "no wall-clock or self-seeded randomness in lib/; no Hashtbl \
       iteration feeding merged fleet results" );
  ]

(* --- check: no-print ---------------------------------------------- *)

let print_idents =
  [ [ "Printf"; "printf" ]; [ "Printf"; "eprintf" ]; [ "Format"; "printf" ];
    [ "Format"; "eprintf" ]; [ "print_endline" ]; [ "print_string" ];
    [ "print_newline" ]; [ "print_int" ]; [ "print_float" ];
    [ "prerr_endline" ]; [ "prerr_string" ]; [ "prerr_newline" ] ]

let check_no_print (src : Source.t) =
  if not (in_any hot_layers src.path && src.kind = Source.Ml) then []
  else
    List.filter_map
      (fun (r : Ast_scan.lid_ref) ->
        if List.mem r.r_path print_idents then
          Some
            (finding ~check:"no-print" ~src ~line:r.r_line ~col:r.r_col
               (Printf.sprintf
                  "direct output via %s (use a pp function or Table)"
                  (String.concat "." r.r_path)))
        else None)
      (Ast_scan.refs src)

(* --- checks: guarded-obs and tap-zero-cost ------------------------ *)

(* Both walk the same emission sites with the guard-tracking iterator.
   [guarded-obs] (the ported check 3) demands that an observability
   emission be dominated by *some* enable-flag guard; [tap-zero-cost]
   (the hardened contract) additionally covers Sanitize and the
   coverage/recorder tap refs, and demands the dominating guard be a
   pure flag test — no closures, strings, tuples or general calls (the
   allocation surface) in the condition. *)

let emissions_of_structure str =
  let acc = ref [] in
  Ast_scan.iter_guarded str ~on_expr:(fun ctx e ->
      match Ast_scan.emission_of e with
      | Some em -> acc := (ctx, em, e) :: !acc
      | None -> ());
  List.rev !acc

let structure_of src =
  match src.Source.ast with Source.Impl s -> Some s | _ -> None

let check_guarded_obs (src : Source.t) =
  if not (in_any hot_layers src.path && src.kind = Source.Ml) then []
  else
    match structure_of src with
    | None -> []
    | Some str ->
        List.filter_map
          (fun (ctx, em, e) ->
            match em with
            | Ast_scan.Obs name ->
                if List.exists Ast_scan.mentions_on_flag ctx.Ast_scan.guards
                then None
                else
                  Some
                    (finding ~check:"guarded-obs" ~src
                       ~line:(Ast_scan.line_of e) ~col:(Ast_scan.col_of e)
                       (Printf.sprintf
                          "%s emission not dominated by an enable-flag \
                           guard (!Metrics.on / !Exporter.on)"
                          name))
            | _ -> None)
          (emissions_of_structure str)

let check_tap_zero_cost (src : Source.t) =
  if not (in_any tap_layers src.path && src.kind = Source.Ml) then []
  else
    match structure_of src with
    | None -> []
    | Some str ->
        List.filter_map
          (fun (ctx, em, e) ->
            let name = Ast_scan.emission_name em in
            let line = Ast_scan.line_of e and col = Ast_scan.col_of e in
            match
              List.find_opt Ast_scan.mentions_on_flag ctx.Ast_scan.guards
            with
            | None ->
                Some
                  (finding ~check:"tap-zero-cost" ~src ~line ~col
                     (Printf.sprintf
                        "%s tap site has no dominating !flag guard — the \
                         disabled path must be a single boolean deref"
                        name))
            | Some g ->
                if Ast_scan.pure_guard g then None
                else
                  Some
                    (finding ~check:"tap-zero-cost" ~src ~line ~col
                       (Printf.sprintf
                          "%s tap guard is not a pure flag test (closures, \
                           strings, tuples and calls allocate on the \
                           disabled path)"
                          name)))
          (emissions_of_structure str)

(* --- check: fleet-monopoly ---------------------------------------- *)

let rec has_pair a b = function
  | x :: (y :: _ as rest) -> (x = a && y = b) || has_pair a b rest
  | _ -> false

let check_fleet_monopoly (src : Source.t) =
  if not (in_lib src.path) then []
  else
    let in_fleet = in_dir "lib/fleet" src.path in
    List.filter_map
      (fun (r : Ast_scan.lid_ref) ->
        if (not in_fleet) && has_pair "Domain" "spawn" r.r_path then
          Some
            (finding ~check:"fleet-monopoly" ~src ~line:r.r_line ~col:r.r_col
               "Domain.spawn outside lib/fleet (go through \
                Covirt_fleet.Fleet)")
        else if
          in_fleet && (match r.r_path with "Covirt_hw" :: _ -> true | _ -> false)
        then
          Some
            (finding ~check:"fleet-monopoly" ~src ~line:r.r_line ~col:r.r_col
               "lib/fleet must not reference Covirt_hw (hardware state \
                stays shard-local)")
        else None)
      (Ast_scan.refs src)

(* --- check: replay-confinement ------------------------------------ *)

(* The magic literal is assembled at runtime so this file never trips
   its own check. *)
let trace_magic = "CV" ^ "RT"

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let string_constants str =
  let acc = ref [] in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun iter e ->
          (match e.pexp_desc with
          | Pexp_constant (Pconst_string (s, loc, _)) ->
              acc := (s, loc.Location.loc_start) :: !acc
          | _ -> ());
          default_iterator.expr iter e);
    }
  in
  it.structure it str;
  List.rev !acc

let check_replay_confinement (src : Source.t) =
  let refs_findings =
    if in_lib src.path && not (in_dir "lib/replay" src.path) then
      List.filter_map
        (fun (r : Ast_scan.lid_ref) ->
          match r.r_path with
          | "Covirt_replay" :: _ ->
              Some
                (finding ~check:"replay-confinement" ~src ~line:r.r_line
                   ~col:r.r_col
                   "Covirt_replay referenced outside lib/replay (traces \
                    enter other layers only through bin/ and test/)")
          | _ -> None)
        (Ast_scan.refs src)
    else []
  in
  let magic_findings =
    if
      (in_lib src.path || in_dir "bin" src.path)
      && src.path <> "lib/replay/trace.ml"
    then
      match structure_of src with
      | None -> []
      | Some str ->
          List.filter_map
            (fun (s, (pos : Lexing.position)) ->
              if contains_sub s trace_magic then
                Some
                  (finding ~check:"replay-confinement" ~src
                     ~line:pos.pos_lnum
                     ~col:(pos.pos_cnum - pos.pos_bol)
                     "trace magic literal outside lib/replay/trace.ml (one \
                      codec only — go through Covirt_replay.Trace)")
              else None)
            (string_constants str)
    else []
  in
  refs_findings @ magic_findings

(* --- check: warm-alloc -------------------------------------------- *)

(* The files whose warm paths carry the zero-GC contract (DESIGN.md
   §13): each must still carry at least one warm-region marker. *)
let warm_files =
  [ "lib/hw/machine.ml"; "lib/hw/tlb.ml"; "lib/hw/ept.ml";
    "lib/hw/charge_memo.ml"; "lib/obs/metrics.ml" ]

let banned_combinator (path : string list) =
  match path with
  | [ "Printf"; _ ] | [ "Format"; _ ] -> Some "formatted output"
  | [ "List"; _ ] -> Some "List combinator"
  | [ "Array"; f ]
    when List.mem f
           [ "map"; "mapi"; "iter"; "iteri"; "fold_left"; "fold_right";
             "to_list"; "of_list"; "init"; "make"; "create_float"; "copy";
             "append"; "concat"; "sub" ] ->
      Some "Array combinator"
  | [ "Option"; f ] when List.mem f [ "map"; "iter"; "bind"; "join"; "to_list" ]
    ->
      Some "Option combinator"
  | [ "String"; f ] when List.mem f [ "concat"; "cat"; "init"; "map"; "sub" ]
    ->
      Some "String builder"
  | [ "Bytes"; f ] when List.mem f [ "create"; "make"; "init"; "sub"; "copy" ]
    ->
      Some "Bytes builder"
  | [ "^" ] | [ "@" ] | [ "^^" ] -> Some "concatenation operator"
  | [ "ref" ] -> Some "ref cell"
  | _ -> (
      match List.rev path with
      | "find_opt" :: _ -> Some "option-returning probe"
      | _ -> None)

(* Collect the [Pexp_fun]/[Pexp_function] nodes that are the immediate
   right-hand side of a value binding — named function definitions,
   evaluated once, not per-call closures. *)
let definition_funs str =
  let locs = Hashtbl.create 64 in
  let rec skip_fun_chain (e : expression) =
    match e.pexp_desc with
    | Pexp_fun (_, _, _, body) ->
        Hashtbl.replace locs e.pexp_loc ();
        skip_fun_chain body
    | Pexp_newtype (_, body) ->
        Hashtbl.replace locs e.pexp_loc ();
        skip_fun_chain body
    | Pexp_function _ -> Hashtbl.replace locs e.pexp_loc ()
    | _ -> ()
  in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      value_binding =
        (fun iter vb ->
          skip_fun_chain vb.pvb_expr;
          default_iterator.value_binding iter vb);
    }
  in
  it.structure it str;
  locs

let check_warm_alloc (src : Source.t) =
  if not (in_lib src.path && src.kind = Source.Ml) then []
  else
    let spans = Source.warm_spans src in
    let marker_findings =
      if List.mem src.path warm_files && spans = [] then
        [
          finding ~check:"warm-alloc" ~src ~line:1 ~col:0
            "no \"(* warm-begin\" marker — the hot-path module lost its \
             warm-region annotations";
        ]
      else []
    in
    if spans = [] then marker_findings
    else
      match structure_of src with
      | None -> marker_findings
      | Some str ->
          let def_funs = definition_funs str in
          (* [a :: b] parses as a cons construct carrying a synthetic
             (head, tail) tuple — one allocation, not two.  Pre-order
             visiting sees the cons first, so its payload tuple can be
             remembered and skipped. *)
          let cons_payloads = Hashtbl.create 8 in
          let acc = ref [] in
          let flag e what =
            acc :=
              finding ~check:"warm-alloc" ~src ~line:(Ast_scan.line_of e)
                ~col:(Ast_scan.col_of e)
                (Printf.sprintf
                   "%s inside a warm region (zero-allocation contract; \
                    hoist to module level, move it past the warm-end \
                    marker, or put the cold fill in an exception branch)"
                   what)
              :: !acc
          in
          Ast_scan.iter_guarded str ~on_expr:(fun ctx e ->
              let line = Ast_scan.line_of e in
              let in_span =
                List.exists (fun (lo, hi) -> line >= lo && line <= hi) spans
              in
              (* Cold-fill idiom ([exception _ ->] branches) and
                 enable-flag-guarded branches are exempt: the first is
                 the documented miss path, the second never runs with
                 observability off — the guard itself is policed by
                 tap-zero-cost. *)
              let exempt =
                ctx.Ast_scan.cold
                || List.exists Ast_scan.mentions_on_flag ctx.Ast_scan.guards
              in
              if in_span && not exempt then
                match e.pexp_desc with
                | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ ->
                    if not (Hashtbl.mem def_funs e.pexp_loc) then
                      flag e "closure literal"
                | Pexp_tuple _ ->
                    if not (Hashtbl.mem cons_payloads e.pexp_loc) then
                      flag e "tuple construction"
                | Pexp_array _ -> flag e "array literal"
                | Pexp_record _ -> flag e "record construction"
                | Pexp_lazy _ -> flag e "lazy suspension"
                | Pexp_construct ({ txt = Lident "::"; _ }, Some payload) ->
                    Hashtbl.replace cons_payloads payload.pexp_loc ();
                    flag e "list cons"
                | Pexp_construct ({ txt = Lident "Some"; _ }, Some _) ->
                    flag e "Some boxing"
                | Pexp_apply ({ pexp_desc = Pexp_ident l; _ }, _) -> (
                    match banned_combinator (Ast_scan.flatten l.txt) with
                    | Some what ->
                        flag e
                          (Printf.sprintf "%s (%s)" what
                             (String.concat "." (Ast_scan.flatten l.txt)))
                    | None -> ())
                | _ -> ());
          marker_findings @ List.rev !acc

(* --- check: layer-deps -------------------------------------------- *)

(* Violations delegated to the dedicated checks are skipped here so a
   single bad reference reports once: fleet -> hw is fleet-monopoly's,
   any -> replay is replay-confinement's. *)
let check_layer_deps ?graph (src : Source.t) =
  match Layer.dir_of_path src.Source.path with
  | None -> []
  | Some from_dir when Layer.layer_of_dir from_dir = None -> []
  | Some from_dir ->
      let own = Option.get (Layer.layer_of_dir from_dir) in
      let g = match graph with Some g -> g | None -> Layer.create () in
      let seen = Hashtbl.create 16 in
      List.filter_map
        (fun (r : Ast_scan.lid_ref) ->
          match Layer.record g ~from_dir r with
          | None -> None
          | Some (target, sub) ->
              let delegated =
                target.Layer.dir = "replay"
                || (from_dir = "fleet" && target.Layer.dir = "hw")
              in
              let key = (r.r_line, target.Layer.dir, sub) in
              if delegated || Hashtbl.mem seen key then None
              else begin
                Hashtbl.replace seen key ();
                if not (List.mem target.Layer.dir own.Layer.allowed) then
                  Some
                    (finding ~check:"layer-deps" ~src ~line:r.r_line
                       ~col:r.r_col
                       (Printf.sprintf
                          "lib/%s must not reference %s (lib/%s): not in \
                           the layer rule table"
                          from_dir target.Layer.root_module target.Layer.dir))
                else
                  match List.assoc_opt target.Layer.dir own.Layer.constrained with
                  | Some allowed_subs
                    when sub <> "" && not (List.mem sub allowed_subs) ->
                      Some
                        (finding ~check:"layer-deps" ~src ~line:r.r_line
                           ~col:r.r_col
                           (Printf.sprintf
                              "lib/%s may only use %s.{%s} — %s.%s is \
                               outside the tap surface"
                              from_dir target.Layer.root_module
                              (String.concat ", " allowed_subs)
                              target.Layer.root_module sub))
                  | _ -> None
              end)
        (Ast_scan.refs src)

(* --- check: determinism ------------------------------------------- *)

let wallclock_idents =
  [ [ "Random"; "self_init" ]; [ "Sys"; "time" ]; [ "Unix"; "gettimeofday" ];
    [ "Unix"; "time" ] ]

let merge_layers = [ "lib/fleet"; "lib/harness" ]

let check_determinism (src : Source.t) =
  if not (in_lib src.path && src.kind = Source.Ml) then []
  else
    List.filter_map
      (fun (r : Ast_scan.lid_ref) ->
        if List.mem r.r_path wallclock_idents then
          Some
            (finding ~check:"determinism" ~src ~line:r.r_line ~col:r.r_col
               (Printf.sprintf
                  "%s breaks seeded reproducibility (DESIGN.md §11): derive \
                   every stream from the experiment seed"
                  (String.concat "." r.r_path)))
        else if
          in_any merge_layers src.path
          && (r.r_path = [ "Hashtbl"; "iter" ] || r.r_path = [ "Hashtbl"; "fold" ])
        then
          Some
            (finding ~check:"determinism" ~src ~line:r.r_line ~col:r.r_col
               (Printf.sprintf
                  "%s in a merge layer: iteration order is seed-dependent — \
                   canonicalize (sort) before merging fleet results"
                  (String.concat "." r.r_path)))
        else None)
      (Ast_scan.refs src)

(* --- tree check: mli-presence ------------------------------------- *)

let check_mli_presence (rels : string list) =
  List.filter_map
    (fun rel ->
      if in_lib rel && Filename.check_suffix rel ".ml" then
        let mli = rel ^ "i" in
        if List.mem mli rels then None
        else
          Some
            (Finding.v ~check:"mli-presence" ~file:rel ~line:1 ~col:0
               (Printf.sprintf "no interface (%s missing)" mli))
      else None)
    rels

(* --- the per-file registry ---------------------------------------- *)

let file_checks ?graph (src : Source.t) =
  check_no_print src
  @ check_guarded_obs src
  @ check_tap_zero_cost src
  @ check_fleet_monopoly src
  @ check_replay_confinement src
  @ check_warm_alloc src
  @ check_layer_deps ?graph src
  @ check_determinism src
