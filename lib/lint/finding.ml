(* A typed lint finding: one violation of one check at one source
   location.  Findings are value types — checks build them, the engine
   sorts/filters/suppresses them, and the renderers (table, JSON) are
   the only places that turn them into text. *)

type severity = Error | Warning

type t = {
  file : string;  (* repo-relative, '/'-separated *)
  line : int;  (* 1-based *)
  col : int;  (* 0-based, as the compiler reports *)
  check : string;  (* check id, e.g. "warm-alloc" *)
  severity : severity;
  message : string;
}

let v ?(severity = Error) ~check ~file ~line ~col message =
  { file; line; col; check; severity; message }

let severity_name = function Error -> "error" | Warning -> "warning"

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.check b.check

let pp ppf t =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" t.file t.line t.col t.check t.message

(* JSON rendering is hand-rolled (the repo takes no JSON dependency);
   the escaper covers the control characters findings can realistically
   carry. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  Printf.sprintf
    "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"check\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\"}"
    (json_escape t.file) t.line t.col (json_escape t.check)
    (severity_name t.severity)
    (json_escape t.message)
