(* covirt.lint — the AST-level static analyzer behind `covirt-lint`
   and `dune build @lint`.

   Covirt's protection contracts are meant to hold *by construction*;
   this library makes four of them machine-checked analyses over the
   real syntax tree (compiler-libs [Parse.implementation] — purely
   syntactic, no typing, no ppx):

   - zero-cost taps: every Obs/Sanitize/Recorder/Coverage emission
     site in the hot layers sits under a pure [!flag] guard;
   - warm-region allocation: code between [(* warm-begin *)] and
     [(* warm-end *)] markers builds no closures, tuples, list/array
     literals or boxed values outside the designated cold-fill idiom;
   - layer confinement: inter-module references obey the declared
     layer rule table (exported as a DOT graph);
   - determinism: no wall-clock or self-seeded randomness under lib/,
     no order-dependent Hashtbl iteration in the merge layers.

   plus the ported source conventions (interface presence, no direct
   printing, guarded observability, the fleet's Domain monopoly, the
   replay codec's confinement).  See docs/LINTING.md. *)

module Finding = Finding
module Source = Source
module Ast_scan = Ast_scan
module Layer = Layer
module Checks = Checks
module Engine = Engine
