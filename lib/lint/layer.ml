(* The layer-dependency contract: which lib/ layer may reference which
   other layer's wrapped library module, declared as one table and
   checked against the longidents actually harvested from source.  The
   table mirrors the dune dependency stanzas (the build's ground
   truth) but is *stricter* where the architecture demands it — lib/hw
   may touch only the observability tap surface (Metrics/Span/
   Exporter), never the exporter/profiler internals, and lib/fleet and
   lib/replay edges are owned by their dedicated checks. *)

type layer = {
  dir : string;  (* directory name under lib/ *)
  root_module : string;  (* wrapped library module, e.g. "Covirt_hw" *)
  allowed : string list;  (* referenced layer dirs this layer may use *)
  constrained : (string * string list) list;
      (* layer dir -> the only submodules of its root module that may
         be referenced (the "tap surface") *)
}

let table =
  [
    { dir = "sim"; root_module = "Covirt_sim"; allowed = []; constrained = [] };
    {
      dir = "obs";
      root_module = "Covirt_obs";
      allowed = [ "sim" ];
      constrained = [];
    };
    {
      dir = "hw";
      root_module = "Covirt_hw";
      allowed = [ "sim"; "obs" ];
      constrained = [ ("obs", [ "Metrics"; "Span"; "Exporter"; "Vmexit" ]) ];
    };
    {
      dir = "core";
      root_module = "Covirt";
      allowed = [ "sim"; "hw"; "pisces"; "obs" ];
      constrained = [];
    };
    {
      dir = "fleet";
      root_module = "Covirt_fleet";
      allowed = [ "sim" ];
      constrained = [];
    };
    {
      dir = "pisces";
      root_module = "Covirt_pisces";
      allowed = [ "sim"; "hw" ];
      constrained = [];
    };
    {
      dir = "kitten";
      root_module = "Covirt_kitten";
      allowed = [ "sim"; "hw"; "pisces" ];
      constrained = [];
    };
    {
      dir = "mckernel";
      root_module = "Covirt_mckernel";
      allowed = [ "sim"; "hw"; "pisces" ];
      constrained = [];
    };
    {
      dir = "mos";
      root_module = "Covirt_mos";
      allowed = [ "sim"; "hw"; "pisces" ];
      constrained = [];
    };
    {
      dir = "nautilus";
      root_module = "Covirt_nautilus";
      allowed = [ "sim"; "hw"; "pisces" ];
      constrained = [];
    };
    {
      dir = "xemem";
      root_module = "Covirt_xemem";
      allowed = [ "sim"; "hw"; "pisces" ];
      constrained = [];
    };
    {
      dir = "hobbes";
      root_module = "Covirt_hobbes";
      allowed = [ "sim"; "hw"; "pisces"; "kitten"; "xemem" ];
      constrained = [];
    };
    {
      dir = "workloads";
      root_module = "Covirt_workloads";
      allowed = [ "sim"; "hw"; "pisces"; "kitten" ];
      constrained = [];
    };
    {
      dir = "baselines";
      root_module = "Covirt_baselines";
      allowed = [ "sim"; "hw" ];
      constrained = [];
    };
    {
      dir = "analysis";
      root_module = "Covirt_analysis";
      allowed = [ "sim"; "hw"; "pisces"; "xemem"; "core" ];
      constrained = [];
    };
    {
      dir = "resilience";
      root_module = "Covirt_resilience";
      allowed =
        [ "sim"; "hw"; "pisces"; "kitten"; "hobbes"; "core"; "workloads";
          "obs"; "fleet" ];
      constrained = [];
    };
    {
      dir = "harness";
      root_module = "Covirt_harness";
      allowed =
        [ "sim"; "hw"; "pisces"; "kitten"; "xemem"; "hobbes"; "core";
          "workloads"; "resilience"; "baselines"; "nautilus"; "mckernel";
          "mos"; "obs"; "fleet" ];
      constrained = [];
    };
    {
      (* The load generator drives control paths only: it may not name
         lib/hw — hardware is reachable solely through the Pisces/
         Hobbes control plane it is exercising. *)
      dir = "loadgen";
      root_module = "Covirt_loadgen";
      allowed =
        [ "sim"; "obs"; "pisces"; "kitten"; "xemem"; "hobbes"; "core";
          "fleet"; "analysis"; "resilience" ];
      constrained = [];
    };
    {
      dir = "replay";
      root_module = "Covirt_replay";
      allowed =
        [ "sim"; "hw"; "kitten"; "pisces"; "hobbes"; "xemem"; "core";
          "analysis"; "resilience"; "fleet" ];
      constrained = [];
    };
    { dir = "lint"; root_module = "Covirt_lint"; allowed = []; constrained = [] };
  ]

let layer_of_dir dir = List.find_opt (fun l -> l.dir = dir) table

let layer_of_root_module m =
  List.find_opt (fun l -> l.root_module = m) table

(* "lib/hw/tlb.ml" -> Some "hw" *)
let dir_of_path path =
  match String.split_on_char '/' path with
  | "lib" :: dir :: _ :: _ -> Some dir
  | _ -> None

(* --- the reference graph --- *)

(* One edge per (from-layer, to-layer) with the set of referenced
   submodules of the target's root module ("" when the root module is
   referenced bare). *)
type edge = { e_from : string; e_to : string; mutable e_subs : string list }

type graph = { mutable edges : edge list }

let create () = { edges = [] }

let add_ref g ~from_dir ~to_dir ~sub =
  match
    List.find_opt (fun e -> e.e_from = from_dir && e.e_to = to_dir) g.edges
  with
  | Some e -> if not (List.mem sub e.e_subs) then e.e_subs <- sub :: e.e_subs
  | None -> g.edges <- { e_from = from_dir; e_to = to_dir; e_subs = [ sub ] } :: g.edges

(* Feed one harvested longident into the graph; returns the
   cross-layer target, if any, for the rule check. *)
let classify ~from_dir (r : Ast_scan.lid_ref) =
  match r.Ast_scan.r_path with
  | root :: rest -> (
      match layer_of_root_module root with
      | Some target when target.dir <> from_dir ->
          let sub = match rest with s :: _ -> s | [] -> "" in
          Some (target, sub)
      | _ -> None)
  | [] -> None

let record g ~from_dir r =
  match classify ~from_dir r with
  | Some (target, sub) ->
      add_ref g ~from_dir ~to_dir:target.dir ~sub;
      Some (target, sub)
  | None -> None

(* --- DOT rendering --- *)

let dot g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph covirt_layers {\n";
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  let nodes =
    List.sort_uniq String.compare
      (List.concat_map (fun e -> [ e.e_from; e.e_to ]) g.edges)
  in
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "  \"%s\";\n" n))
    nodes;
  let edges =
    List.sort
      (fun a b ->
        let c = String.compare a.e_from b.e_from in
        if c <> 0 then c else String.compare a.e_to b.e_to)
      g.edges
  in
  List.iter
    (fun e ->
      let subs =
        List.filter (fun s -> s <> "") (List.sort_uniq String.compare e.e_subs)
      in
      let label =
        match subs with [] -> "" | _ -> String.concat "\\n" subs
      in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%s\"];\n" e.e_from e.e_to
           label))
    edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
