(** The analysis driver: tree walk, parsing, check dispatch,
    suppression accounting and rendering. *)

type result = {
  root : string;
  files : int;  (** sources analyzed *)
  findings : Finding.t list;  (** unsuppressed, sorted *)
  suppressed : Finding.t list;
      (** findings matched by a [(* lint: allow <check-id> *)] comment *)
  parse_errors : (string * string) list;  (** rel path, message *)
  graph : Layer.graph;  (** cross-layer reference graph (DOT export) *)
}

(** Sorted .ml/.mli paths under [root]/lib and [root]/bin, repo-relative. *)
val tree_files : string -> string list

(** Run all per-file checks on an already-parsed source; returns
    (kept, suppressed).  Cross-layer edges land in [graph] if given. *)
val analyze_source :
  ?graph:Layer.graph -> Source.t -> Finding.t list * Finding.t list

(** Fixture entry point: analyze raw text under a virtual path.
    Returns (findings, suppressed, parse error if the text does not
    parse). *)
val analyze_string :
  path:string ->
  text:string ->
  Finding.t list * Finding.t list * string option

exception No_tree of string

(** Analyze [root]/lib and [root]/bin.  Raises [No_tree] when
    [root]/lib does not exist (a tool error: exit 2). *)
val run : root:string -> result

(** 0 clean, 1 findings, 2 tool error (parse failures). *)
val exit_code : result -> int

(** Human-readable table: parse errors, findings, one summary line. *)
val pp_table : Format.formatter -> result -> unit

(** The full result as a JSON document (findings, suppressed,
    parse_errors, summary). *)
val to_json : result -> string

(** The layer-dependency graph as GraphViz DOT. *)
val dot : result -> string
