(** The check catalogue: each check maps a parsed source (or, for the
    tree checks, the file list) to typed findings.  Path scoping lives
    inside each check so fixtures can exercise them under virtual
    paths. *)

(** [(check-id, one-line description)] for every check, in catalogue
    order — the CLI's [--list] and the docs' check table render this. *)
val catalogue : (string * string) list

(** The files whose warm paths carry the zero-GC contract and must
    keep at least one warm-region marker (DESIGN.md §13). *)
val warm_files : string list

val check_no_print : Source.t -> Finding.t list
val check_guarded_obs : Source.t -> Finding.t list
val check_tap_zero_cost : Source.t -> Finding.t list
val check_fleet_monopoly : Source.t -> Finding.t list
val check_replay_confinement : Source.t -> Finding.t list
val check_warm_alloc : Source.t -> Finding.t list

(** Also records every cross-layer edge into [graph] when given (the
    engine threads one graph through the whole tree for DOT export). *)
val check_layer_deps : ?graph:Layer.graph -> Source.t -> Finding.t list

val check_determinism : Source.t -> Finding.t list

(** Tree check: every lib/ .ml has a sibling .mli in the file list. *)
val check_mli_presence : string list -> Finding.t list

(** All per-file checks on one source, in catalogue order. *)
val file_checks : ?graph:Layer.graph -> Source.t -> Finding.t list
