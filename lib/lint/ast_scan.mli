(** Syntactic AST plumbing shared by the checks: longident harvesting
    and a guard-tracking expression walker.  Purely syntactic —
    Parsetree only, no typing. *)

val flatten : Longident.t -> string list

type lid_ref = {
  r_path : string list;  (** flattened longident components *)
  r_line : int;  (** 1-based *)
  r_col : int;  (** 0-based *)
}

(** Every longident carried by the file's AST (idents, constructors,
    record fields, type constructors, opens, module aliases), in
    source order; empty on parse error.  Visits .mli signatures too. *)
val refs : Source.t -> lid_ref list

type ctx = {
  guards : Parsetree.expression list;
      (** conditions of enclosing [if]-then branches, innermost first *)
  cold : bool;
      (** inside an [exception _ ->] case or [try] handler — the
          repo's designated cold-fill idiom *)
}

(** Visit every expression of a structure with its guard context;
    [on_expr] runs before descending into the node. *)
val iter_guarded :
  on_expr:(ctx -> Parsetree.expression -> unit) -> Parsetree.structure -> unit

val line_of : Parsetree.expression -> int
val col_of : Parsetree.expression -> int

(** [!flag] — the flattened target of a prefix-[!] deref of a single
    identifier, if the expression has that shape. *)
val deref_target : Parsetree.expression -> string list option

(** Is this a deref of an enable flag ([on] or [*_on])? *)
val is_on_flag_deref : Parsetree.expression -> bool

(** Does the expression tree contain an enable-flag deref anywhere? *)
val mentions_on_flag : Parsetree.expression -> bool

(** A pure flag test: only derefs, identifiers, non-string constants,
    field reads, argument-free constructors and boolean/comparison/
    integer operators.  Closures, tuples, strings and general
    applications (the partial-application surface) fail. *)
val pure_guard : Parsetree.expression -> bool

type emission =
  | Obs of string  (** [Metrics.add], [Span.instant], [Exporter.emit] … *)
  | Sanitize of string  (** [Sanitize.access], [Sanitize.tlb_install] … *)
  | Tap of string  (** application of a dereffed [*tap*] function ref *)

(** Recognize an application expression as an emission site. *)
val emission_of : Parsetree.expression -> emission option

val emission_name : emission -> string
