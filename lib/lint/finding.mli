(** Typed lint findings: file/location/check-id/severity/message. *)

type severity = Error | Warning

type t = {
  file : string;  (** repo-relative, '/'-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  check : string;  (** check id, e.g. ["warm-alloc"] *)
  severity : severity;
  message : string;
}

val v :
  ?severity:severity ->
  check:string ->
  file:string ->
  line:int ->
  col:int ->
  string ->
  t

val severity_name : severity -> string

(** Total order: file, then line, then column, then check id. *)
val compare : t -> t -> int

(** [file:line:col: [check] message] — the table renderer's row shape. *)
val pp : Format.formatter -> t -> unit

(** Escape a string for embedding in a JSON double-quoted literal. *)
val json_escape : string -> string

(** One finding as a self-contained JSON object. *)
val to_json : t -> string
