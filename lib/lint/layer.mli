(** The declared layer-dependency rule table and the reference graph
    extracted from source, with DOT rendering. *)

type layer = {
  dir : string;  (** directory name under [lib/] *)
  root_module : string;  (** wrapped library module, e.g. ["Covirt_hw"] *)
  allowed : string list;  (** layer dirs this layer may reference *)
  constrained : (string * string list) list;
      (** target layer dir -> only these submodules of its root module
          may be referenced (the tap surface) *)
}

(** The rule table, one entry per lib/ layer. *)
val table : layer list

val layer_of_dir : string -> layer option
val layer_of_root_module : string -> layer option

(** ["lib/hw/tlb.ml"] -> [Some "hw"]. *)
val dir_of_path : string -> string option

type edge = { e_from : string; e_to : string; mutable e_subs : string list }
type graph = { mutable edges : edge list }

val create : unit -> graph

(** Classify a harvested longident from a file in [from_dir]: the
    cross-layer target and first submodule component, if the root is a
    known library module of another layer. *)
val classify :
  from_dir:string -> Ast_scan.lid_ref -> (layer * string) option

(** [record g ~from_dir r] adds the cross-layer edge (if any) to the
    graph and returns it for rule checking. *)
val record :
  graph -> from_dir:string -> Ast_scan.lid_ref -> (layer * string) option

(** Render the accumulated graph as GraphViz DOT (deterministic
    ordering: nodes and edges sorted). *)
val dot : graph -> string
