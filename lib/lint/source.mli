(** Parsed source files: raw text, the syntactic AST (compiler-libs),
    and the lexical artifacts the AST does not carry — comment spans,
    warm-region markers and [(* lint: allow <check-id> *)]
    suppressions — recovered by a scanner that understands OCaml's
    string/char-literal syntax, so tokens inside literals or comments
    are never mistaken for code. *)

type kind = Ml | Mli

type ast =
  | Impl of Parsetree.structure
  | Intf of Parsetree.signature
  | Parse_error of string  (** one-line description; a tool error *)

type comment = {
  c_line : int;  (** 1-based line of the opening delimiter *)
  c_end_line : int;
  c_text : string;  (** body between the delimiters *)
}

type t = {
  path : string;  (** repo-relative, '/'-separated *)
  kind : kind;
  text : string;
  ast : ast;
  comments : comment list;  (** in source order *)
}

(** Scan [text] for comments, tracking strings, quoted strings and
    character literals so delimiters inside them are inert. *)
val scan_comments : string -> comment list

(** Parse from text under a virtual repo-relative [path] (".mli" ⇒
    interface syntax).  Never raises: parse failures land in
    [Parse_error]. *)
val of_string : path:string -> string -> t

(** Read and parse [root ^ "/" ^ rel]; [path] is set to [rel]. *)
val load : root:string -> rel:string -> t

(** Inclusive line ranges between [(* warm-begin ... *)] and
    [(* warm-end *)] markers; an unclosed span runs to end-of-file. *)
val warm_spans : t -> (int * int) list

val in_warm_span : t -> int -> bool

(** [(check-id, first-line, last-line)] for each suppression comment:
    the suppression covers the comment's own lines plus the next. *)
val suppressions : t -> (string * int * int) list

(** Does some suppression in [t] cover this finding? *)
val suppresses : t -> Finding.t -> bool
