(* The analysis driver: walk the tree, parse every source, run the
   checks, account suppressions, and render.  Exit-code contract
   (consumed by bin/covirt_lint and CI): 0 clean, 1 findings, 2 tool
   error (unparseable file or missing tree). *)

type result = {
  root : string;
  files : int;  (* sources analyzed *)
  findings : Finding.t list;  (* unsuppressed, sorted *)
  suppressed : Finding.t list;  (* matched by a (* lint: allow *) comment *)
  parse_errors : (string * string) list;  (* rel path, message *)
  graph : Layer.graph;
}

(* --- filesystem walk (stdlib only, sorted for determinism) --- *)

let rec walk dir rel_prefix acc =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.sort compare entries;
      Array.fold_left
        (fun acc e ->
          let path = Filename.concat dir e in
          let rel = if rel_prefix = "" then e else rel_prefix ^ "/" ^ e in
          if Sys.is_directory path then
            if e = "_build" || e = ".git" then acc else walk path rel acc
          else if
            Filename.check_suffix e ".ml" || Filename.check_suffix e ".mli"
          then rel :: acc
          else acc)
        acc entries

let tree_files root =
  let lib = walk (Filename.concat root "lib") "lib" [] in
  let bin = walk (Filename.concat root "bin") "bin" [] in
  List.sort String.compare (lib @ bin)

(* --- per-source analysis (fixture entry point) --- *)

(* Split raw findings into (kept, suppressed) using the source's
   suppression comments. *)
let account (src : Source.t) findings =
  List.partition (fun f -> not (Source.suppresses src f)) findings

let analyze_source ?graph (src : Source.t) =
  account src (Checks.file_checks ?graph src)

let analyze_string ~path ~text =
  let src = Source.of_string ~path text in
  let findings, suppressed = analyze_source src in
  let parse_error =
    match src.Source.ast with Source.Parse_error m -> Some m | _ -> None
  in
  (findings, suppressed, parse_error)

(* --- the tree run --- *)

exception No_tree of string

let run ~root =
  if not (Sys.file_exists (Filename.concat root "lib")) then
    raise (No_tree (Printf.sprintf "no lib/ under %s" root));
  let rels = tree_files root in
  let graph = Layer.create () in
  let findings = ref [] in
  let suppressed = ref [] in
  let parse_errors = ref [] in
  let count = ref 0 in
  List.iter
    (fun rel ->
      let src = Source.load ~root ~rel in
      incr count;
      (match src.Source.ast with
      | Source.Parse_error msg -> parse_errors := (rel, msg) :: !parse_errors
      | _ -> ());
      let keep, supp = analyze_source ~graph src in
      findings := keep :: !findings;
      suppressed := supp :: !suppressed)
    rels;
  let tree_findings = Checks.check_mli_presence rels in
  {
    root;
    files = !count;
    findings = List.sort Finding.compare (tree_findings @ List.concat !findings);
    suppressed = List.sort Finding.compare (List.concat !suppressed);
    parse_errors = List.rev !parse_errors;
    graph;
  }

let exit_code r =
  if r.parse_errors <> [] then 2 else if r.findings <> [] then 1 else 0

(* --- renderers --- *)

let pp_table ppf r =
  List.iter
    (fun (rel, msg) ->
      Format.fprintf ppf "lint: %s: parse error: %s@." rel msg)
    r.parse_errors;
  List.iter (fun f -> Format.fprintf ppf "lint: %a@." Finding.pp f) r.findings;
  let n = List.length r.findings
  and s = List.length r.suppressed
  and p = List.length r.parse_errors in
  if p > 0 then
    Format.fprintf ppf "lint: tool error: %d unparseable file(s)@." p
  else if n > 0 then
    Format.fprintf ppf "lint: %d finding(s) in %d file(s), %d suppressed@." n
      r.files s
  else
    Format.fprintf ppf "lint: clean (%d files, %d suppressed finding(s))@."
      r.files s

let to_json r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"root\": \"%s\",\n" (Finding.json_escape r.root));
  Buffer.add_string buf (Printf.sprintf "  \"files\": %d,\n" r.files);
  let arr name items render =
    Buffer.add_string buf (Printf.sprintf "  \"%s\": [" name);
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (render x))
      items;
    Buffer.add_string buf "]"
  in
  arr "findings" r.findings Finding.to_json;
  Buffer.add_string buf ",\n";
  arr "suppressed" r.suppressed Finding.to_json;
  Buffer.add_string buf ",\n";
  arr "parse_errors" r.parse_errors (fun (rel, msg) ->
      Printf.sprintf "{\"file\":\"%s\",\"message\":\"%s\"}"
        (Finding.json_escape rel) (Finding.json_escape msg));
  Buffer.add_string buf ",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"summary\": {\"findings\": %d, \"suppressed\": %d, \
        \"parse_errors\": %d, \"exit_code\": %d}\n"
       (List.length r.findings)
       (List.length r.suppressed)
       (List.length r.parse_errors)
       (exit_code r));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let dot r = Layer.dot r.graph
