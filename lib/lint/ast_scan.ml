(* Shared AST plumbing for the checks: longident harvesting (the raw
   material of the layer/confinement analyses) and a guard-tracking
   expression walker (the raw material of the tap-contract and
   warm-region analyses).  Everything here is purely syntactic —
   Parsetree from compiler-libs, no typing. *)

open Parsetree

let rec flatten (lid : Longident.t) =
  match lid with
  | Lident s -> [ s ]
  | Ldot (l, s) -> flatten l @ [ s ]
  | Lapply (a, b) -> flatten a @ flatten b

(* --- longident harvesting --- *)

type lid_ref = { r_path : string list; r_line : int; r_col : int }

let ref_of_loc lid (loc : Location.t) =
  {
    r_path = flatten lid;
    r_line = loc.loc_start.pos_lnum;
    r_col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
  }

(* Every node class that syntactically carries a [Longident.t]:
   value/constructor/field/type references, opens, module aliases.
   The iterator visits both structures and signatures, so .mli
   references participate in the layer graph too. *)
let harvest_iterator push =
  let open Ast_iterator in
  let lid (l : Longident.t Asttypes.loc) = push (ref_of_loc l.txt l.loc) in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident l | Pexp_construct (l, _) | Pexp_field (_, l) | Pexp_new l ->
        lid l
    | Pexp_setfield (_, l, _) -> lid l
    | Pexp_record (fields, _) -> List.iter (fun (l, _) -> lid l) fields
    | _ -> ());
    default_iterator.expr it e
  in
  let pat it p =
    (match p.ppat_desc with
    | Ppat_construct (l, _) | Ppat_type l | Ppat_open (l, _) -> lid l
    | Ppat_record (fields, _) -> List.iter (fun (l, _) -> lid l) fields
    | _ -> ());
    default_iterator.pat it p
  in
  let typ it t =
    (match t.ptyp_desc with
    | Ptyp_constr (l, _) | Ptyp_class (l, _) -> lid l
    | Ptyp_package (l, cstrs) ->
        lid l;
        List.iter (fun (l, _) -> lid l) cstrs
    | _ -> ());
    default_iterator.typ it t
  in
  let module_expr it m =
    (match m.pmod_desc with Pmod_ident l -> lid l | _ -> ());
    default_iterator.module_expr it m
  in
  let module_type it m =
    (match m.pmty_desc with
    | Pmty_ident l | Pmty_alias l -> lid l
    | _ -> ());
    default_iterator.module_type it m
  in
  let open_description it (o : open_description) =
    lid o.popen_expr;
    default_iterator.open_description it o
  in
  {
    default_iterator with
    expr;
    pat;
    typ;
    module_expr;
    module_type;
    open_description;
  }

let refs (src : Source.t) =
  let acc = ref [] in
  let it = harvest_iterator (fun r -> acc := r :: !acc) in
  (match src.Source.ast with
  | Source.Impl s -> it.structure it s
  | Source.Intf s -> it.signature it s
  | Source.Parse_error _ -> ());
  List.rev !acc

(* --- the guard-tracking walker --- *)

type ctx = {
  guards : expression list;
      (* conditions of the enclosing [if]-then branches, innermost first *)
  cold : bool;
      (* inside an [exception _ ->] match case or a [try] handler: the
         repo's designated cold-fill idiom *)
}

(* Visit every expression with its guard context.  [on_expr] runs
   before recursion; recursion order is depth-first, so the mutable
   stack discipline below reconstructs lexical nesting exactly. *)
let iter_guarded ~(on_expr : ctx -> expression -> unit) (str : structure) =
  let open Ast_iterator in
  let guards = ref [] in
  let cold = ref false in
  let ctx () = { guards = !guards; cold = !cold } in
  let rec it =
    {
      default_iterator with
      expr =
        (fun iter e ->
          on_expr (ctx ()) e;
          match e.pexp_desc with
          | Pexp_ifthenelse (cond, then_, else_) ->
              iter.attributes iter e.pexp_attributes;
              it.expr iter cond;
              guards := cond :: !guards;
              it.expr iter then_;
              guards := List.tl !guards;
              Option.iter (it.expr iter) else_
          | Pexp_try (body, handlers) ->
              iter.attributes iter e.pexp_attributes;
              it.expr iter body;
              let saved = !cold in
              cold := true;
              it.cases iter handlers;
              cold := saved
          | _ -> default_iterator.expr iter e);
      case =
        (fun iter c ->
          it.pat iter c.pc_lhs;
          Option.iter (it.expr iter) c.pc_guard;
          let is_exception =
            match c.pc_lhs.ppat_desc with
            | Ppat_exception _ -> true
            | _ -> false
          in
          let saved = !cold in
          if is_exception then cold := true;
          it.expr iter c.pc_rhs;
          cold := saved);
    }
  in
  it.structure it str

(* --- expression classifiers --- *)

let line_of (e : expression) = e.pexp_loc.loc_start.pos_lnum

let col_of (e : expression) =
  e.pexp_loc.loc_start.pos_cnum - e.pexp_loc.loc_start.pos_bol

let last xs = List.nth_opt xs (List.length xs - 1)

let ends_with_on path =
  match last path with
  | Some s -> s = "on" || Filename.check_suffix s "_on"
  | None -> false

(* [!flag] — a prefix-[!] application of one identifier. *)
let deref_target (e : expression) =
  match e.pexp_desc with
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident "!"; _ }; _ },
        [ (Asttypes.Nolabel, { pexp_desc = Pexp_ident l; _ }) ] ) ->
      Some (flatten l.txt)
  | _ -> None

let is_on_flag_deref e =
  match deref_target e with Some p -> ends_with_on p | None -> false

(* Does the expression tree contain a [!<...>on] deref anywhere? *)
let mentions_on_flag (e : expression) =
  let found = ref false in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun iter x ->
          if is_on_flag_deref x then found := true;
          default_iterator.expr iter x);
    }
  in
  it.expr it e;
  !found

let pure_operators =
  [ "&&"; "||"; "not"; "="; "<>"; "<"; ">"; "<="; ">="; "=="; "!="; "+"; "-";
    "land"; "lor"; "lsr"; "lsl" ]

(* A pure flag test: only [!flag] derefs, boolean/comparison/integer
   operators, identifiers, non-string constants, field reads and
   argument-free constructors.  Closures, tuples, strings and general
   applications (the partial-application surface) all fail. *)
let rec pure_guard (e : expression) =
  match e.pexp_desc with
  | Pexp_ident _ -> true
  | Pexp_constant (Pconst_string _) -> false
  | Pexp_constant _ -> true
  | Pexp_construct (_, None) -> true
  | Pexp_field (b, _) -> pure_guard b
  | Pexp_constraint (b, _) -> pure_guard b
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident "!"; _ }; _ }, [ (_, arg) ])
    -> (
      match arg.pexp_desc with Pexp_ident _ -> true | _ -> pure_guard arg)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident op; _ }; _ }, args)
    when List.mem op pure_operators ->
      List.for_all (fun (_, a) -> pure_guard a) args
  | _ -> false

(* --- emission-site recognition --- *)

type emission =
  | Obs of string  (* Metrics.add / Span.instant / Exporter.emit ... *)
  | Sanitize of string
  | Tap of string  (* application of a dereffed [*tap*] function ref *)

let obs_metrics = [ "add"; "set"; "observe" ]
let obs_span = [ "instant"; "begin_"; "finish"; "complete" ]

let sanitize_emissions =
  [ "note_enclave"; "note_ept"; "allow"; "disallow"; "drop_enclave";
    "phys_event"; "access"; "ept_write"; "tlb_install" ]

let tail2 path =
  match List.rev path with b :: a :: _ -> Some (a, b) | _ -> None

let emission_of (e : expression) =
  match e.pexp_desc with
  | Pexp_apply (fn, _) -> (
      match fn.pexp_desc with
      | Pexp_ident l -> (
          match tail2 (flatten l.txt) with
          | Some ("Metrics", f) when List.mem f obs_metrics ->
              Some (Obs ("Metrics." ^ f))
          | Some ("Span", f) when List.mem f obs_span ->
              Some (Obs ("Span." ^ f))
          | Some ("Exporter", "emit") -> Some (Obs "Exporter.emit")
          | Some ("Vmexit", "record") -> Some (Obs "Vmexit.record")
          | Some ("Sanitize", f) when List.mem f sanitize_emissions ->
              Some (Sanitize ("Sanitize." ^ f))
          | _ -> None)
      | _ -> (
          match deref_target fn with
          | Some path -> (
              match last path with
              | Some name
                when String.length name >= 3
                     && (let has_sub = ref false in
                         for i = 0 to String.length name - 3 do
                           if String.sub name i 3 = "tap" then has_sub := true
                         done;
                         !has_sub) ->
                  Some (Tap name)
              | _ -> None)
          | None -> None))
  | _ -> None

let emission_name = function Obs s | Sanitize s -> s | Tap s -> "!" ^ s
