(* A parsed source file: raw text, the syntactic AST from
   compiler-libs, and the lexical artifacts the AST does not carry —
   comments (for warm-region markers and suppressions) come from a
   small scanner that understands OCaml's string and character
   literals, so a "(* warm-begin" inside a string literal is never
   mistaken for a marker (the regex linter's false-positive surface
   this library replaces). *)

type kind = Ml | Mli

type ast =
  | Impl of Parsetree.structure
  | Intf of Parsetree.signature
  | Parse_error of string

type comment = {
  c_line : int;  (* 1-based line of the opening "(*" *)
  c_end_line : int;
  c_text : string;  (* body between the delimiters, untrimmed *)
}

type t = {
  path : string;  (* repo-relative, '/'-separated *)
  kind : kind;
  text : string;
  ast : ast;
  comments : comment list;  (* in source order *)
}

(* --- the lexical scanner --- *)

(* Walks [text] once, tracking OCaml's lexical state precisely enough
   to recover comment spans: double-quoted strings (with escapes),
   quoted strings ({id|...|id}), character literals (distinguished
   from type variables and prose apostrophes by shape), and nested
   comments — including strings *inside* comments, which the real
   lexer also tracks (so a "*)" in a commented-out string does not
   close the comment). *)

let scan_comments text =
  let n = String.length text in
  let comments = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let peek k = if !i + k < n then text.[!i + k] else '\000' in
  let advance () =
    if text.[!i] = '\n' then incr line;
    incr i
  in
  (* Skip a double-quoted string, cursor on the opening quote. *)
  let skip_string () =
    advance ();
    let fin = ref false in
    while (not !fin) && !i < n do
      match text.[!i] with
      | '\\' ->
          advance ();
          if !i < n then advance ()
      | '"' ->
          advance ();
          fin := true
      | _ -> advance ()
    done
  in
  (* Skip a quoted string {id|...|id}, cursor on the '{'.  Returns
     false (consuming nothing) if this '{' does not open one. *)
  let skip_quoted_string () =
    let j = ref (!i + 1) in
    while
      !j < n && (match text.[!j] with 'a' .. 'z' | '_' -> true | _ -> false)
    do
      incr j
    done;
    if !j < n && text.[!j] = '|' then begin
      let id = String.sub text (!i + 1) (!j - !i - 1) in
      let closer = "|" ^ id ^ "}" in
      let m = String.length closer in
      (* consume up to and including the closer *)
      let fin = ref false in
      while (not !fin) && !i < n do
        if !i + m <= n && String.sub text !i m = closer then begin
          for _ = 1 to m do
            advance ()
          done;
          fin := true
        end
        else advance ()
      done;
      true
    end
    else false
  in
  (* A '\'' opens a character literal iff it has literal shape:
     '\...' (escape) or 'X' (single char then quote).  Anything else —
     type variables, prose apostrophes in comments — is punctuation. *)
  let is_char_literal () =
    peek 1 = '\\' || (peek 1 <> '\000' && peek 1 <> '\'' && peek 2 = '\'')
  in
  let skip_char_literal () =
    advance ();
    (* opening ' *)
    if !i < n && text.[!i] = '\\' then begin
      advance ();
      while !i < n && text.[!i] <> '\'' do
        advance ()
      done;
      if !i < n then advance ()
    end
    else begin
      if !i < n then advance ();
      if !i < n && text.[!i] = '\'' then advance ()
    end
  in
  (* Skip a comment, cursor on the '('; records the span. *)
  let skip_comment () =
    let start_line = !line in
    let body_start = !i + 2 in
    advance ();
    advance ();
    let depth = ref 1 in
    while !depth > 0 && !i < n do
      if text.[!i] = '(' && peek 1 = '*' then begin
        incr depth;
        advance ();
        advance ()
      end
      else if text.[!i] = '*' && peek 1 = ')' then begin
        decr depth;
        advance ();
        advance ()
      end
      else if text.[!i] = '"' then skip_string ()
      else if text.[!i] = '\'' && is_char_literal () then skip_char_literal ()
      else advance ()
    done;
    let body_end = max body_start (!i - 2) in
    comments :=
      {
        c_line = start_line;
        c_end_line = !line;
        c_text = String.sub text body_start (body_end - body_start);
      }
      :: !comments
  in
  while !i < n do
    match text.[!i] with
    | '(' when peek 1 = '*' -> skip_comment ()
    | '"' -> skip_string ()
    | '{' -> if not (skip_quoted_string ()) then advance ()
    | '\'' when is_char_literal () -> skip_char_literal ()
    | _ -> advance ()
  done;
  List.rev !comments

(* --- parsing --- *)

let parse ~path ~kind text =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  let describe e =
    match Location.error_of_exn e with
    | Some (`Ok err) ->
        Format.asprintf "%a" Location.print_report err
        |> String.map (function '\n' -> ' ' | c -> c)
        |> String.trim
    | _ -> Printexc.to_string e
  in
  match kind with
  | Ml -> (
      match Parse.implementation lexbuf with
      | ast -> Impl ast
      | exception e -> Parse_error (describe e))
  | Mli -> (
      match Parse.interface lexbuf with
      | ast -> Intf ast
      | exception e -> Parse_error (describe e))

let of_string ~path text =
  let kind =
    if Filename.check_suffix path ".mli" then Mli
    else Ml (* callers only feed .ml/.mli *)
  in
  { path; kind; text; ast = parse ~path ~kind text; comments = scan_comments text }

let load ~root ~rel =
  let full = Filename.concat root rel in
  let ic = open_in_bin full in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string ~path:rel text

(* --- warm-region spans --- *)

(* A span opens at a comment whose body starts with "warm-begin" and
   closes at the next "warm-end" comment (inclusive line range).  An
   unterminated span extends to the end of file, matching the regex
   linter's behaviour. *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let comment_tag c =
  let s = String.trim c.c_text in
  if starts_with ~prefix:"warm-begin" s then `Begin
  else if starts_with ~prefix:"warm-end" s then `End
  else `Other

let warm_spans t =
  let rec go acc open_at = function
    | [] -> (
        match open_at with
        | Some l -> List.rev ((l, max_int) :: acc)
        | None -> List.rev acc)
    | c :: rest -> (
        match (comment_tag c, open_at) with
        | `Begin, None -> go acc (Some c.c_line) rest
        | `End, Some l -> go ((l, c.c_end_line) :: acc) None rest
        | _ -> go acc open_at rest)
  in
  go [] None t.comments

let in_warm_span t line =
  List.exists (fun (lo, hi) -> line >= lo && line <= hi) (warm_spans t)

(* --- suppressions --- *)

(* "(* lint: allow <check-id> [rationale...] *)" suppresses findings
   of <check-id> on the comment's own line and the line after it.
   The rationale is free text and ignored. *)

let suppressions t =
  List.filter_map
    (fun c ->
      let s = String.trim c.c_text in
      if starts_with ~prefix:"lint: allow " s then
        let rest =
          String.sub s 12 (String.length s - 12) |> String.trim
        in
        let id =
          match String.index_opt rest ' ' with
          | Some i -> String.sub rest 0 i
          | None -> rest
        in
        if id = "" then None else Some (id, c.c_line, c.c_end_line + 1)
      else None)
    t.comments

let suppresses t (f : Finding.t) =
  List.exists
    (fun (id, lo, hi) -> id = f.Finding.check && f.Finding.line >= lo && f.Finding.line <= hi)
    (suppressions t)
