(** covirt.lint — AST-level static analysis of the repo's protection
    contracts: zero-cost taps, warm-region allocation, layer
    confinement and determinism, plus the ported source conventions.
    See docs/LINTING.md for the check catalogue. *)

module Finding = Finding
module Source = Source
module Ast_scan = Ast_scan
module Layer = Layer
module Checks = Checks
module Engine = Engine
