open Covirt_hw
open Covirt_pisces

type t = {
  machine : Machine.t;
  enclave : Enclave.t;
  page_table : Guest_pt.t;  (* shared with the host: covers everything *)
  host_syscall : number:int -> arg:int -> int;
  mutable believed : Region.Set.t;  (* a field in shared state *)
  mutable direct_calls : int;
}

let enclave_id t = t.enclave.Enclave.id
let syscalls_direct t = t.direct_calls

let handle_host_msg t msg =
  (* mOS shares state instead of exchanging messages; under Pisces the
     framework still sends them, and the embedded LWK just updates the
     shared field and acks. *)
  let bsp = Machine.cpu t.machine (Enclave.bsp t.enclave) in
  match msg with
  | Message.Syscall_reply _ -> ()
  | other ->
      (match other with
      | Message.Add_memory { region; _ } ->
          t.believed <- Region.Set.add t.believed region
      | Message.Remove_memory { region; _ } ->
          t.believed <- Region.Set.remove t.believed region
      | Message.Xemem_map _ | Message.Xemem_unmap _
      | Message.Grant_ipi_vector _ | Message.Revoke_ipi_vector _
      | Message.Assign_device _ | Message.Revoke_device _
      | Message.Shutdown _ | Message.Syscall_reply _ -> ());
      Ctrl_channel.send_to_host t.machine ~enclave_cpu:bsp
        t.enclave.Enclave.channel
        (Message.Ack { seq = Message.seq_of_host_msg other })

let boot_core_body ~host_syscall instance_ref machine enclave (cpu : Cpu.t)
    ~bsp params =
  (* No trampoline dance: the LWK side was compiled into the host
     kernel; "booting" is flipping the core over.  Covirt still
     interposes through the same Pisces hook. *)
  Cpu.charge cpu 10_000;
  if bsp then begin
    let t =
      {
        machine;
        enclave;
        (* the host's direct map: the whole node is translatable *)
        page_table =
          Guest_pt.direct_map
            ~total_mem:(Numa.total_mem machine.Machine.topology);
        host_syscall;
        believed = Region.Set.of_list params.Boot_params.assigned_memory;
        direct_calls = 0;
      }
    in
    instance_ref := Some t;
    enclave.Enclave.msg_handler <- Some (handle_host_msg t);
    Ctrl_channel.send_to_host machine ~enclave_cpu:cpu enclave.Enclave.channel
      Message.Ready
  end;
  (match !instance_ref with
  | Some t -> cpu.Cpu.guest_pt <- Some t.page_table
  | None -> ())

let make_kernel ~host_syscall () =
  let instance_ref = ref None in
  let kernel =
    {
      Pisces.kernel_name = "mos";
      boot_core =
        (fun machine enclave cpu ~bsp params ->
          boot_core_body ~host_syscall instance_ref machine enclave cpu ~bsp
            params);
    }
  in
  (kernel, fun () -> !instance_ref)

let syscall t ~core ~number ~arg =
  let cpu = Machine.cpu t.machine core in
  t.direct_calls <- t.direct_calls + 1;
  (* a privilege-domain switch, then the shared implementation runs
     right here — no channel, no proxy, no marshalling *)
  Cpu.charge cpu 350;
  t.host_syscall ~number ~arg

let wild_write t ~core addr =
  Machine.store t.machine (Machine.cpu t.machine core) addr

let corrupt_shared_state t region =
  t.believed <- Region.Set.add t.believed region

let believes t addr = Region.Set.mem t.believed addr
