(** The mOS architecture (LWK embedded in Linux).

    mOS "sits at the extreme end of the integration axis ... fully
    embedding the LWK code into Linux so that the LWK code runs on
    cores picked at boot-time, so that state sharing between the two
    OSes is high and LWK processes are nearly indistinguishable from
    Linux processes."  The fourth and last co-kernel architecture from
    the paper's related-work taxonomy, and the hardest case for
    isolation arguments:

    - no control channel, no message protocol — the LWK side calls
      host services {e directly} (zero marshalling cost, maximal
      coupling);
    - the LWK shares the host's page tables: its direct map covers the
      {e entire} node including host-kernel memory, by design;
    - its believed resource set is a field in shared state that either
      side can update (and therefore corrupt) without a protocol.

    Running mOS under Pisces-style partitioning is exactly the
    adaptation the paper hypothesizes ("Covirt represents a unique
    capability that could be adapted to suit the full range of
    co-kernel approaches"): the embedded LWK keeps its direct host
    integration while the EPT underneath it enforces the boot-time
    core/memory partition it was supposed to respect voluntarily. *)

open Covirt_hw
open Covirt_pisces

type t

val make_kernel :
  host_syscall:(number:int -> arg:int -> int) ->
  unit ->
  Pisces.kernel * (unit -> t option)
(** [host_syscall] is the direct entry into host services (no channel:
    mOS calls Linux functions).  The Hobbes-level glue passes the same
    handler the forwarding path would use. *)

val enclave_id : t -> int
val syscall : t -> core:int -> number:int -> arg:int -> int
(** Direct dispatch into the shared host implementation: one function
    call plus a privilege-domain switch, no marshalling. *)

val syscalls_direct : t -> int

val wild_write : t -> core:int -> Addr.t -> unit
(** With a shared direct map this reaches anything on the node
    natively — the architecture's whole risk profile in one call. *)

val corrupt_shared_state : t -> Region.t -> unit
(** The mOS-specific bug class: scribble the shared resource-set state
    so the LWK believes the region is its own (no protocol existed to
    prevent it). *)

val believes : t -> Addr.t -> bool
