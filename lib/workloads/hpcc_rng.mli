(** The HPCC RandomAccess 64-bit LCG random stream.

    One canonical implementation of the GUPS update-stream generator —
    the shift-left / conditional-xor recurrence over the primitive
    polynomial [x^64 + x^2 + x + 1] — shared by every call site that
    needs a per-core HPCC stream, so the constants and the seeding
    convention ([0x9e3779b9 + core]) live in exactly one place. *)

type t

val poly : int64
(** The GF(2) feedback polynomial's low bits, [0x7]. *)

val next_ran : int64 -> int64
(** One raw step of the recurrence (pure; exposed for tests). *)

val stream : core:int -> t
(** A fresh per-core stream, seeded HPCC-style. *)

val next : t -> int64
(** Advance and return the new state. *)

val index : t -> modulus:int -> int
(** Advance and fold the state into a table index in
    [\[0, modulus)] — the benchmark's 30-bit mask then modulus. *)
