open Covirt_kitten

type bench = Lj | Eam | Chain | Chute

type result = {
  loop_seconds : float;
  steps : int;
  atoms : int;
  final_kinetic_energy : float;
  stable : bool;
}

let bench_name = function
  | Lj -> "lj"
  | Eam -> "eam"
  | Chain -> "chain"
  | Chute -> "chute"

let all_benches = [ Lj; Eam; Chain; Chute ]

(* ------------------------------------------------------------------ *)
(* Real MD engine (reduced units).                                     *)

module Md = struct
  type atoms = {
    n : int;
    x : float array;
    y : float array;
    z : float array;
    vx : float array;
    vy : float array;
    vz : float array;
    fx : float array;
    fy : float array;
    fz : float array;
  }

  let create n =
    {
      n;
      x = Array.make n 0.0;
      y = Array.make n 0.0;
      z = Array.make n 0.0;
      vx = Array.make n 0.0;
      vy = Array.make n 0.0;
      vz = Array.make n 0.0;
      fx = Array.make n 0.0;
      fy = Array.make n 0.0;
      fz = Array.make n 0.0;
    }

  (* Simple-cubic lattice fill inside a cube of side [box]. *)
  let lattice atoms ~box ~rng =
    let per_side =
      int_of_float (ceil (float_of_int atoms.n ** (1.0 /. 3.0)))
    in
    let spacing = box /. float_of_int per_side in
    for i = 0 to atoms.n - 1 do
      let ix = i mod per_side in
      let iy = i / per_side mod per_side in
      let iz = i / (per_side * per_side) in
      atoms.x.(i) <- (float_of_int ix +. 0.5) *. spacing;
      atoms.y.(i) <- (float_of_int iy +. 0.5) *. spacing;
      atoms.z.(i) <- (float_of_int iz +. 0.5) *. spacing;
      atoms.vx.(i) <- Covirt_sim.Rng.gaussian rng ~mu:0.0 ~sigma:0.3;
      atoms.vy.(i) <- Covirt_sim.Rng.gaussian rng ~mu:0.0 ~sigma:0.3;
      atoms.vz.(i) <- Covirt_sim.Rng.gaussian rng ~mu:0.0 ~sigma:0.3
    done

  let zero_forces a =
    Array.fill a.fx 0 a.n 0.0;
    Array.fill a.fy 0 a.n 0.0;
    Array.fill a.fz 0 a.n 0.0

  (* Cell-list neighbour search with minimum-image periodic boundaries
     in x/y (z stays open for the chute's floor), like the real
     benchmarks: bin atoms into cutoff-sized cells, then only the 27
     neighbouring cells are searched per atom. *)
  type cells = {
    ncell : int;  (* per side *)
    heads : int array;  (* head-of-chain per cell, -1 = empty *)
    next : int array;  (* linked list through atoms *)
  }

  let build_cells a ~box ~cutoff =
    let ncell = max 1 (int_of_float (box /. cutoff)) in
    let cell_size = box /. float_of_int ncell in
    let cells =
      {
        ncell;
        heads = Array.make (ncell * ncell * ncell) (-1);
        next = Array.make a.n (-1);
      }
    in
    let clamp v = (v mod ncell + ncell) mod ncell in
    for i = 0 to a.n - 1 do
      let cx = clamp (int_of_float (a.x.(i) /. cell_size)) in
      let cy = clamp (int_of_float (a.y.(i) /. cell_size)) in
      let cz = clamp (int_of_float (a.z.(i) /. cell_size)) in
      let c = (cz * ncell * ncell) + (cy * ncell) + cx in
      cells.next.(i) <- cells.heads.(c);
      cells.heads.(c) <- i
    done;
    cells

  (* minimum-image displacement in a periodic dimension *)
  let min_image d ~box =
    if d > box /. 2.0 then d -. box
    else if d < -.(box /. 2.0) then d +. box
    else d

  let lj_forces ?(box = 0.0) a ~cutoff ~eps ~sigma =
    zero_forces a;
    let c2 = cutoff *. cutoff in
    let s2 = sigma *. sigma in
    let pair i j =
      if i < j then begin
        let dx = a.x.(i) -. a.x.(j) in
        let dy = a.y.(i) -. a.y.(j) in
        let dz = a.z.(i) -. a.z.(j) in
        let dx = if box > 0.0 then min_image dx ~box else dx in
        let dy = if box > 0.0 then min_image dy ~box else dy in
        let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
        if r2 < c2 && r2 > 1e-12 then begin
          let sr2 = s2 /. r2 in
          let sr6 = sr2 *. sr2 *. sr2 in
          let f = 24.0 *. eps *. sr6 *. ((2.0 *. sr6) -. 1.0) /. r2 in
          a.fx.(i) <- a.fx.(i) +. (f *. dx);
          a.fy.(i) <- a.fy.(i) +. (f *. dy);
          a.fz.(i) <- a.fz.(i) +. (f *. dz);
          a.fx.(j) <- a.fx.(j) -. (f *. dx);
          a.fy.(j) <- a.fy.(j) -. (f *. dy);
          a.fz.(j) <- a.fz.(j) -. (f *. dz)
        end
      end
    in
    if box > 0.0 && a.n > 64 then begin
      let cells = build_cells a ~box ~cutoff in
      let nc = cells.ncell in
      let wrap v = (v mod nc + nc) mod nc in
      for cz = 0 to nc - 1 do
        for cy = 0 to nc - 1 do
          for cx = 0 to nc - 1 do
            let c = (cz * nc * nc) + (cy * nc) + cx in
            let rec walk_i i =
              if i >= 0 then begin
                for dz = -1 to 1 do
                  for dy = -1 to 1 do
                    for dx = -1 to 1 do
                      let cz' = cz + dz in
                      if cz' >= 0 && cz' < nc then begin
                        let c' =
                          (cz' * nc * nc) + (wrap (cy + dy) * nc) + wrap (cx + dx)
                        in
                        let rec walk_j j =
                          if j >= 0 then begin
                            pair i j;
                            walk_j cells.next.(j)
                          end
                        in
                        walk_j cells.heads.(c')
                      end
                    done
                  done
                done;
                walk_i cells.next.(i)
              end
            in
            walk_i cells.heads.(c)
          done
        done
      done
    end
    else
      (* small systems: direct double loop *)
      for i = 0 to a.n - 1 do
        for j = i + 1 to a.n - 1 do
          pair i j
        done
      done

  (* EAM-ish embedding: density from pair distances, embedding force
     proportional to d(sqrt rho). *)
  let eam_embed a ~cutoff =
    let c2 = cutoff *. cutoff in
    let rho = Array.make a.n 0.0 in
    for i = 0 to a.n - 1 do
      for j = i + 1 to a.n - 1 do
        let dx = a.x.(i) -. a.x.(j)
        and dy = a.y.(i) -. a.y.(j)
        and dz = a.z.(i) -. a.z.(j) in
        let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
        if r2 < c2 && r2 > 1e-12 then begin
          let contrib = (c2 -. r2) /. c2 in
          rho.(i) <- rho.(i) +. contrib;
          rho.(j) <- rho.(j) +. contrib
        end
      done
    done;
    (* embedding energy F(rho) = -sqrt(rho): stabilizing cohesion *)
    Array.iteri
      (fun i r ->
        let scale = if r > 1e-9 then -0.5 /. sqrt r else 0.0 in
        a.fx.(i) <- a.fx.(i) *. (1.0 -. (0.05 *. scale));
        a.fy.(i) <- a.fy.(i) *. (1.0 -. (0.05 *. scale));
        a.fz.(i) <- a.fz.(i) *. (1.0 -. (0.05 *. scale)))
      rho

  (* FENE bonds along consecutive atoms of each chain of length 32. *)
  let chain_forces a =
    let k = 30.0 and r0 = 1.5 in
    let chain_len = 32 in
    for i = 0 to a.n - 2 do
      if (i + 1) mod chain_len <> 0 then begin
        let dx = a.x.(i) -. a.x.(i + 1)
        and dy = a.y.(i) -. a.y.(i + 1)
        and dz = a.z.(i) -. a.z.(i + 1) in
        let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
        let r2 = Float.min r2 (r0 *. r0 *. 0.96) in
        let f = -.k /. (1.0 -. (r2 /. (r0 *. r0))) in
        a.fx.(i) <- a.fx.(i) +. (f *. dx);
        a.fy.(i) <- a.fy.(i) +. (f *. dy);
        a.fz.(i) <- a.fz.(i) +. (f *. dz);
        a.fx.(i + 1) <- a.fx.(i + 1) -. (f *. dx);
        a.fy.(i + 1) <- a.fy.(i + 1) -. (f *. dy);
        a.fz.(i + 1) <- a.fz.(i + 1) -. (f *. dz)
      end
    done

  (* Granular chute: gravity along -z, damped floor contact. *)
  let chute_forces a =
    let g = 1.0 and floor_k = 100.0 and damp = 0.5 in
    for i = 0 to a.n - 1 do
      a.fz.(i) <- a.fz.(i) -. g;
      if a.z.(i) < 0.5 then begin
        a.fz.(i) <- a.fz.(i) +. (floor_k *. (0.5 -. a.z.(i)));
        a.fx.(i) <- a.fx.(i) -. (damp *. a.vx.(i));
        a.fy.(i) <- a.fy.(i) -. (damp *. a.vy.(i));
        a.fz.(i) <- a.fz.(i) -. (damp *. a.vz.(i))
      end
    done

  let integrate a ~dt =
    for i = 0 to a.n - 1 do
      a.vx.(i) <- a.vx.(i) +. (dt *. a.fx.(i));
      a.vy.(i) <- a.vy.(i) +. (dt *. a.fy.(i));
      a.vz.(i) <- a.vz.(i) +. (dt *. a.fz.(i));
      a.x.(i) <- a.x.(i) +. (dt *. a.vx.(i));
      a.y.(i) <- a.y.(i) +. (dt *. a.vy.(i));
      a.z.(i) <- a.z.(i) +. (dt *. a.vz.(i))
    done

  let kinetic_energy a =
    let acc = ref 0.0 in
    for i = 0 to a.n - 1 do
      acc :=
        !acc
        +. (0.5
           *. ((a.vx.(i) *. a.vx.(i))
              +. (a.vy.(i) *. a.vy.(i))
              +. (a.vz.(i) *. a.vz.(i))))
    done;
    !acc
end

(* ------------------------------------------------------------------ *)
(* Nominal cost profiles (per atom per step unless noted).             *)

type profile = {
  neighbor_gathers : int;  (** irregular neighbour-position loads *)
  gather_ws_bytes : int;  (** working set those gathers wander over *)
  stream_bytes : int;  (** position/force streaming *)
  pair_flops : int;
  rebuild_every : int;  (** neighbour-list rebuild period (steps) *)
  rebuild_gathers : int;  (** per atom at each rebuild *)
  rebuild_ws_bytes : int;
}

let mib = 1024 * 1024

let profile_of = function
  | Lj ->
      {
        neighbor_gathers = 6;
        gather_ws_bytes = 3 * mib;
        stream_bytes = 200;
        pair_flops = 55 * 8;
        rebuild_every = 20;
        rebuild_gathers = 12;
        rebuild_ws_bytes = 8 * mib;
      }
  | Eam ->
      {
        neighbor_gathers = 10;
        gather_ws_bytes = 6 * mib;
        stream_bytes = 320;
        pair_flops = 90 * 8;
        rebuild_every = 20;
        rebuild_gathers = 12;
        rebuild_ws_bytes = 8 * mib;
      }
  | Chain ->
      {
        neighbor_gathers = 3;
        gather_ws_bytes = 2 * mib;
        stream_bytes = 150;
        pair_flops = 30 * 8;
        rebuild_every = 25;
        rebuild_gathers = 8;
        rebuild_ws_bytes = 6 * mib;
      }
  | Chute ->
      {
        (* a tall sparse domain: the cell structure alone is hundreds
           of MB and the pour makes atoms cross cells constantly *)
        neighbor_gathers = 10;
        gather_ws_bytes = 192 * mib;
        stream_bytes = 220;
        pair_flops = 40 * 8;
        rebuild_every = 4;
        rebuild_gathers = 40;
        rebuild_ws_bytes = 256 * mib;
      }

let run ctxs ~bench ?(nominal_atoms = 32768) ?(real_atoms = 2048)
    ?(steps = 100) () =
  match ctxs with
  | [] -> Error "Lammps.run: no cores"
  | primary :: _ -> (
      let profile = profile_of bench in
      let ncores = List.length ctxs in
      let atoms_per_core = nominal_atoms / ncores in
      match
        ( Exec.alloc primary ~bytes:profile.gather_ws_bytes (),
          Exec.alloc primary ~bytes:profile.rebuild_ws_bytes (),
          Exec.alloc primary ~bytes:(nominal_atoms * 100) () )
      with
      | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
      | Ok gather_ws, Ok rebuild_ws, Ok atom_arrays ->
          (* Real dynamics at reduced scale. *)
          let rng =
            Covirt_sim.Rng.split primary.Kitten.machine.Covirt_hw.Machine.rng
          in
          let a = Md.create real_atoms in
          let box = float_of_int real_atoms ** (1.0 /. 3.0) *. 1.1 in
          Md.lattice a ~box ~rng;
          let dt = 0.002 in
          let real_steps = min steps 25 in
          let start = Covirt_hw.Cpu.rdtsc primary.Kitten.cpu in
          let stable = ref true in
          for step = 1 to steps do
            (* nominal charges, per core *)
            List.iter
              (fun ctx ->
                Exec.random_ops ctx gather_ws
                  ~ops:(atoms_per_core * profile.neighbor_gathers)
                  ~sharers:ncores;
                Exec.stream_pass ctx [ atom_arrays ] ~sharers:ncores;
                Exec.flops ctx (atoms_per_core * profile.pair_flops);
                if step mod profile.rebuild_every = 0 then
                  Exec.random_ops ctx rebuild_ws
                    ~ops:(atoms_per_core * profile.rebuild_gathers)
                    ~sharers:ncores)
              ctxs;
            (* reverse-communication force exchange each step *)
            Exec.barrier ctxs;
            (* real dynamics *)
            if step <= real_steps then begin
              (match bench with
              | Lj -> Md.lj_forces ~box a ~cutoff:2.5 ~eps:1.0 ~sigma:1.0
              | Eam ->
                  Md.lj_forces ~box a ~cutoff:2.5 ~eps:1.0 ~sigma:1.0;
                  Md.eam_embed a ~cutoff:2.5
              | Chain ->
                  Md.lj_forces ~box a ~cutoff:1.12 ~eps:1.0 ~sigma:1.0;
                  Md.chain_forces a
              | Chute ->
                  Md.lj_forces ~box a ~cutoff:1.12 ~eps:1.0 ~sigma:1.0;
                  Md.chute_forces a);
              Md.integrate a ~dt;
              if Float.is_nan (Md.kinetic_energy a) then stable := false
            end
          done;
          let loop_seconds = Exec.elapsed_seconds primary ~since:start in
          Ok
            {
              loop_seconds;
              steps;
              atoms = nominal_atoms;
              final_kinetic_energy = Md.kinetic_energy a;
              stable = !stable && not (Float.is_nan (Md.kinetic_energy a));
            })
