(** HPCC RandomAccess (GUPS), OpenMP variant.

    Read-modify-write updates at pseudo-random table locations; the
    table (2^25 words, 256 MB, as the paper's parameter "25") far
    exceeds the 2M-page TLB reach, so every update pays a page walk
    with high probability.  This is the workload where the nested
    (EPT) walk is visible — Fig. 5(b): ~1.8% with memory protection,
    ~3.1% worst case with memory+IPI. *)

open Covirt_kitten

type result = {
  gups : float;
  updates : int;
  verify_errors : int;  (** self-check of the real update arithmetic *)
}

val default_log2_table : int
(** 25, per Table I. *)

val run :
  Kitten.context list ->
  ?log2_table:int ->
  ?updates_per_word:int ->
  unit ->
  (result, string) Stdlib.result
