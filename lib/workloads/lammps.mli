(** LAMMPS-style molecular dynamics (the four default benchmarks).

    A real velocity-Verlet MD engine with cell-list neighbour search
    runs the dynamics at reduced atom counts; per-step costs are
    charged for the nominal benchmark (32k atoms, 100 steps — the
    stock [bench/] inputs).  The four workloads differ exactly where
    the real LAMMPS benchmarks differ:

    - {b lj}: cut Lennard-Jones liquid.  Dense, cache-resident
      neighbour data — negligible protection overhead.
    - {b eam}: embedded-atom metal.  A second force pass (embedding
      gather) with a spline-table working set — still cache-friendly.
    - {b chain}: bead-spring polymer (FENE bonds).  Cheap bonded
      forces, small working set.
    - {b chute}: granular chute flow.  Atoms pour through a tall
      sparse domain; cell lists churn and neighbour rebuilds walk a
      working set far beyond TLB reach every few steps.  Fig. 8:
      "Chute shows the most sensitivity to the protections being
      enabled, with the native and no-feature configurations
      performing the best." *)

open Covirt_kitten

type bench = Lj | Eam | Chain | Chute

type result = {
  loop_seconds : float;  (** the "loop time" LAMMPS reports; lower is better *)
  steps : int;
  atoms : int;  (** nominal *)
  final_kinetic_energy : float;  (** real-dynamics sanity value *)
  stable : bool;  (** no NaN/blow-up in the real dynamics *)
}

val bench_name : bench -> string
val all_benches : bench list

val run :
  Kitten.context list ->
  bench:bench ->
  ?nominal_atoms:int ->
  ?real_atoms:int ->
  ?steps:int ->
  unit ->
  (result, string) Stdlib.result
(** Defaults: 32768 nominal atoms, 2048 real atoms, 100 nominal steps
    (the real dynamics integrates [min steps 25] steps). *)
