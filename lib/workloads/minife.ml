open Covirt_kitten

type result = {
  total_seconds : float;
  assembly_seconds : float;
  solve_gflops : float;
  cg_iterations : int;
  final_residual : float;
}

let default_nominal_dim = 250

(* ------------------------------------------------------------------ *)
(* Real arithmetic: CSR assembly + CG on a real_dim^3 nodal grid.      *)

module Csr = struct
  type t = {
    n : int;
    row_ptr : int array;
    col : int array;
    value : float array;
  }

  (* Assemble the 7-point FE-ish operator (hex elements collapse to
     the standard nodal stencil for the scalar Poisson problem). *)
  let assemble dim =
    let n = dim * dim * dim in
    let idx x y z = (z * dim * dim) + (y * dim) + x in
    let neighbours x y z =
      List.filter_map
        (fun (dx, dy, dz) ->
          let x' = x + dx and y' = y + dy and z' = z + dz in
          if x' >= 0 && x' < dim && y' >= 0 && y' < dim && z' >= 0 && z' < dim
          then Some (idx x' y' z')
          else None)
        [ (-1, 0, 0); (1, 0, 0); (0, -1, 0); (0, 1, 0); (0, 0, -1); (0, 0, 1) ]
    in
    let row_ptr = Array.make (n + 1) 0 in
    let entries = ref [] in
    let nnz = ref 0 in
    for z = 0 to dim - 1 do
      for y = 0 to dim - 1 do
        for x = 0 to dim - 1 do
          let row = idx x y z in
          let ns = neighbours x y z in
          let row_entries =
            (row, 6.0) :: List.map (fun c -> (c, -1.0)) ns
            |> List.sort compare
          in
          entries := row_entries :: !entries;
          nnz := !nnz + List.length row_entries;
          row_ptr.(row + 1) <- List.length row_entries
        done
      done
    done;
    for i = 1 to n do
      row_ptr.(i) <- row_ptr.(i) + row_ptr.(i - 1)
    done;
    let col = Array.make !nnz 0 in
    let value = Array.make !nnz 0.0 in
    List.iteri
      (fun rev_row row_entries ->
        let row = n - 1 - rev_row in
        List.iteri
          (fun j (c, v) ->
            col.(row_ptr.(row) + j) <- c;
            value.(row_ptr.(row) + j) <- v)
          row_entries)
      !entries;
    { n; row_ptr; col; value }

  let spmv t x y =
    for row = 0 to t.n - 1 do
      let acc = ref 0.0 in
      for j = t.row_ptr.(row) to t.row_ptr.(row + 1) - 1 do
        acc := !acc +. (t.value.(j) *. x.(t.col.(j)))
      done;
      y.(row) <- !acc
    done
end

let dot a b =
  let acc = ref 0.0 in
  Array.iteri (fun i v -> acc := !acc +. (v *. b.(i))) a;
  !acc

(* ------------------------------------------------------------------ *)
(* Nominal cost profile.                                               *)

let nnz_per_row = 27 (* nominal: full hex-element nodal stencil *)
let matrix_bytes_per_row = nnz_per_row * 12
let assembly_flops_per_row = 27 * 8 (* element matrix contributions *)
let solve_flops_per_row_per_iter = nnz_per_row * 2

(* The banded x-access of the lexicographic ordering: a small number
   of gathers stray outside the prefetch window. *)
let stray_gathers_per_row = 1
let band_ws_bytes = 16 * 1024 * 1024

let run ctxs ?(nominal_dim = default_nominal_dim) ?(real_dim = 16)
    ?(iterations = 60) () =
  match ctxs with
  | [] -> Error "Minife.run: no cores"
  | primary :: _ -> (
      let ncores = List.length ctxs in
      let rows = nominal_dim * nominal_dim * nominal_dim in
      let rows_per_core = rows / ncores in
      let matrix_bytes = rows_per_core * matrix_bytes_per_row in
      let rec alloc_all acc = function
        | [] -> Ok (List.rev acc)
        | ctx :: rest -> (
            match Exec.alloc ctx ~bytes:matrix_bytes () with
            | Ok b -> alloc_all (b :: acc) rest
            | Error e -> Error e)
      in
      match (alloc_all [] ctxs, Exec.alloc primary ~bytes:band_ws_bytes ()) with
      | Error e, _ | _, Error e -> Error e
      | Ok matrices, Ok band ->
          let t0 = Covirt_hw.Cpu.rdtsc primary.Kitten.cpu in
          (* --- Assembly (real + charged) --- *)
          let csr = Csr.assemble real_dim in
          List.iter2
            (fun ctx matrix ->
              (* write the matrix arrays once, element flops *)
              Exec.stream_pass ctx [ matrix ] ~sharers:ncores;
              Exec.flops ctx (rows_per_core * assembly_flops_per_row))
            ctxs matrices;
          Exec.barrier ctxs;
          let assembly_seconds = Exec.elapsed_seconds primary ~since:t0 in
          (* --- CG solve (real + charged) --- *)
          let n = csr.Csr.n in
          let b = Array.make n 1.0 in
          let x = Array.make n 0.0 in
          let r = Array.copy b in
          let p = Array.copy b in
          let ap = Array.make n 0.0 in
          let rr = ref (dot r r) in
          let r0 = sqrt !rr in
          let t1 = Covirt_hw.Cpu.rdtsc primary.Kitten.cpu in
          let iters_done = ref 0 in
          (try
             for _ = 1 to iterations do
               (* nominal charges *)
               List.iter2
                 (fun ctx matrix ->
                   Exec.stream_pass ctx [ matrix ] ~sharers:ncores;
                   Exec.random_ops ctx band
                     ~ops:(rows_per_core * stray_gathers_per_row)
                     ~sharers:ncores;
                   Exec.flops ctx (rows_per_core * solve_flops_per_row_per_iter))
                 ctxs matrices;
               Exec.barrier ctxs;
               (* real CG step *)
               Csr.spmv csr p ap;
               let pap = dot p ap in
               if Float.abs pap < 1e-300 then raise Exit;
               let alpha = !rr /. pap in
               Array.iteri (fun i v -> x.(i) <- x.(i) +. (alpha *. v)) p;
               Array.iteri (fun i v -> r.(i) <- r.(i) -. (alpha *. v)) ap;
               let rr' = dot r r in
               let beta = rr' /. !rr in
               rr := rr';
               Array.iteri (fun i v -> p.(i) <- v +. (beta *. p.(i))) r;
               incr iters_done
             done
           with Exit -> ());
          let solve_seconds = Exec.elapsed_seconds primary ~since:t1 in
          let flops =
            float_of_int !iters_done
            *. float_of_int rows
            *. float_of_int solve_flops_per_row_per_iter
          in
          Ok
            {
              total_seconds = Exec.elapsed_seconds primary ~since:t0;
              assembly_seconds;
              solve_gflops = flops /. solve_seconds /. 1e9;
              cg_iterations = !iters_done;
              final_residual = sqrt !rr /. r0;
            })
