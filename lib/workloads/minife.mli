(** MiniFE 2.0 (Mantevo) — implicit finite-element proxy app.

    Two phases, both real at reduced scale and cost-charged at nominal
    scale (nx=ny=nz=250, per Table I):

    - {b assembly}: build a CSR matrix from hex-element contributions
      (streaming writes over the matrix arrays, element-local flops);
    - {b solve}: unpreconditioned CG.  MiniFE's lexicographic node
      ordering keeps the SpMV's x-vector accesses inside a prefetchable
      band, so — unlike HPCG's dependency-ordered smoother — there is
      almost no TLB-hostile traffic.  That is why Fig. 6 shows no
      noticeable Covirt overhead on MiniFE in any configuration.

    "MiniFE does not require significant amounts of interprocess
    coordination": one reduction barrier per CG iteration, no
    halo-exchange phases. *)

open Covirt_kitten

type result = {
  total_seconds : float;
  assembly_seconds : float;
  solve_gflops : float;
  cg_iterations : int;
  final_residual : float;
}

val default_nominal_dim : int
(** 250. *)

val run :
  Kitten.context list ->
  ?nominal_dim:int ->
  ?real_dim:int ->
  ?iterations:int ->
  unit ->
  (result, string) Stdlib.result
