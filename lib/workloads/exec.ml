open Covirt_hw
open Covirt_kitten

type buffer = {
  base : Addr.t;
  nominal_bytes : int;
  data : float array;
}

let default_backing_cap = 1 lsl 18

let page_size = Addr.Page_2m
(* Kitten identity-maps its contiguous allocations with 2M pages. *)

let alloc (ctx : Kitten.context) ?(backing_cap = default_backing_cap) ~bytes () =
  if bytes <= 0 then invalid_arg "Exec.alloc";
  match
    Kitten.kalloc ~near_core:ctx.Kitten.cpu.Cpu.id ctx.Kitten.kernel ~bytes
  with
  | Error e -> Error e
  | Ok base ->
      let elems = min (bytes / 8) backing_cap in
      let buffer =
        { base; nominal_bytes = bytes; data = Array.make (max elems 1) 0.0 }
      in
      Machine.check_range ctx.Kitten.machine ctx.Kitten.cpu ~base ~len:bytes
        ~access:`Write;
      Ok buffer

let stream_pass (ctx : Kitten.context) buffers ~sharers =
  List.iter
    (fun b ->
      Machine.charge_stream ctx.Kitten.machine ctx.Kitten.cpu ~base:b.base
        ~bytes:b.nominal_bytes ~sharers ~page_size)
    buffers

let random_ops (ctx : Kitten.context) buffer ~ops ~sharers =
  Machine.charge_random ctx.Kitten.machine ctx.Kitten.cpu ~ops ~base:buffer.base
    ~working_set:buffer.nominal_bytes ~sharers ~page_size

let flops (ctx : Kitten.context) n =
  Machine.charge_flops ctx.Kitten.machine ctx.Kitten.cpu n

let barrier ctxs =
  match ctxs with
  | [] | [ _ ] -> ()
  | _ ->
      let latest =
        List.fold_left
          (fun acc (c : Kitten.context) -> max acc (Cpu.rdtsc c.Kitten.cpu))
          0 ctxs
      in
      List.iter
        (fun (c : Kitten.context) ->
          let wait = latest - Cpu.rdtsc c.Kitten.cpu in
          (* Spin-wait plus the cache-line bounce of the arrival word. *)
          Cpu.charge c.Kitten.cpu (wait + 120))
        ctxs

let elapsed_seconds (ctx : Kitten.context) ~since =
  Covirt_sim.Units.cycles_to_seconds
    ~ghz:ctx.Kitten.machine.Machine.model.Cost_model.ghz
    (Cpu.rdtsc ctx.Kitten.cpu - since)

let shard ~elems ~ways ~index =
  if ways <= 0 || index < 0 || index >= ways then invalid_arg "Exec.shard";
  let per = elems / ways in
  let offset = index * per in
  let len = if index = ways - 1 then elems - offset else per in
  (offset, len)
