open Covirt_hw
open Covirt_kitten

type detour = { at_us : float; duration_us : float; cause : string }

type result = {
  detours : detour list;
  histogram : Covirt_sim.Histogram.t;
  total_detour_us : float;
  noise_fraction : float;
}

let default_threshold_cycles = 100

(* Background (non-timer) noise defaults for an LWK: rare housekeeping
   and SMI-class events.  Mean interarrival 200ms, ~2.5us each — the
   kind of residue even Kitten cannot eliminate. *)
let default_background_mean_s = 0.2
let default_background_cost_cycles = 4200

let run_on_cpu machine cpu ?(duration_s = 2.0) ?(threshold_cycles = 100)
    ?(background_mean_s = default_background_mean_s)
    ?(background_cost_cycles = default_background_cost_cycles) () =
  let model = machine.Machine.model in
  let ghz = model.Cost_model.ghz in
  let rng = Covirt_sim.Rng.split machine.Machine.rng in
  let hz = Apic.timer_hz cpu.Cpu.apic in
  let duration_cycles = Covirt_sim.Units.seconds_to_cycles ~ghz duration_s in
  let tick_interval =
    if hz > 0.0 then int_of_float (ghz *. 1e9 /. hz) else max_int
  in
  let histogram =
    Covirt_sim.Histogram.create_log ~base:1.6 ~lo:0.1 ~hi:10_000.0
  in
  let detours = ref [] in
  let total = ref 0.0 in
  (* Walk the timeline merging the deterministic tick train with the
     stochastic background events; each event's duration is measured
     with the core's real mode-dependent delivery cost. *)
  let next_background = ref 0 in
  let draw_background at =
    at
    + Covirt_sim.Units.seconds_to_cycles ~ghz
        (Covirt_sim.Rng.exponential rng ~mean:background_mean_s)
  in
  next_background := draw_background 0;
  let next_tick = ref tick_interval in
  let record ~at ~cycles ~cause =
    if cycles > threshold_cycles then begin
      let d =
        {
          at_us = Covirt_sim.Units.cycles_to_us ~ghz at;
          duration_us = Covirt_sim.Units.cycles_to_us ~ghz cycles;
          cause;
        }
      in
      detours := d :: !detours;
      Covirt_sim.Histogram.add histogram d.duration_us;
      total := !total +. d.duration_us
    end
  in
  let tick_cost () =
    (* Real delivery through the machine so exit paths are exercised
       and charged; jitter models handler cache state. *)
    let before = Cpu.rdtsc cpu in
    Machine.timer_tick machine cpu;
    let measured = Cpu.rdtsc cpu - before in
    let jitter = Covirt_sim.Rng.gaussian rng ~mu:0.0 ~sigma:0.05 in
    int_of_float (float_of_int measured *. (1.0 +. jitter))
  in
  let finished at = at >= duration_cycles in
  let rec loop () =
    let at = min !next_tick !next_background in
    if not (finished at) then begin
      if !next_tick <= !next_background then begin
        record ~at ~cycles:(tick_cost ()) ~cause:"timer";
        next_tick := !next_tick + tick_interval
      end
      else begin
        let cycles =
          int_of_float
            (float_of_int background_cost_cycles
            *. (1.0 +. Covirt_sim.Rng.gaussian rng ~mu:0.0 ~sigma:0.15))
        in
        record ~at ~cycles ~cause:"background";
        next_background := draw_background !next_background
      end;
      loop ()
    end
  in
  loop ();
  (* The spin loop itself advances the core's clock. *)
  Cpu.charge cpu duration_cycles;
  {
    detours = List.rev !detours;
    histogram;
    total_detour_us = !total;
    noise_fraction = !total /. (duration_s *. 1e6);
  }

let run (ctx : Kitten.context) ?duration_s ?threshold_cycles
    ?background_mean_s ?background_cost_cycles () =
  run_on_cpu ctx.Kitten.machine ctx.Kitten.cpu ?duration_s ?threshold_cycles
    ?background_mean_s ?background_cost_cycles ()
