open Covirt_hw
open Covirt_kitten

type result = { gups : float; updates : int; verify_errors : int }

let default_log2_table = 25

let run ctxs ?(log2_table = default_log2_table) ?(updates_per_word = 4) () =
  match ctxs with
  | [] -> Error "Random_access.run: no cores"
  | primary :: _ -> (
      let table_elems = 1 lsl log2_table in
      let bytes = table_elems * 8 in
      match Exec.alloc primary ~bytes () with
      | Error e -> Error e
      | Ok table ->
          let ncores = List.length ctxs in
          let n_real = Array.length table.Exec.data in
          Array.iteri (fun i _ -> table.Exec.data.(i) <- float_of_int i)
            table.Exec.data;
          let nominal_updates = updates_per_word * table_elems in
          (* Real arithmetic on the backing at a reduced count; charges
             at nominal count. *)
          let real_updates = min nominal_updates (4 * n_real) in
          let start = Cpu.rdtsc primary.Kitten.cpu in
          let per_core_nominal = nominal_updates / ncores in
          List.iteri
            (fun i ctx ->
              Exec.random_ops ctx table ~ops:per_core_nominal ~sharers:ncores;
              (* xor-style updates on the backing *)
              let r = Hpcc_rng.stream ~core:i in
              for _ = 1 to real_updates / ncores do
                let idx = Hpcc_rng.index r ~modulus:n_real in
                table.Exec.data.(idx) <- table.Exec.data.(idx) +. 1.0
              done)
            ctxs;
          Exec.barrier ctxs;
          let dt = Exec.elapsed_seconds primary ~since:start in
          (* Verification: total increments must match. *)
          let total_incr =
            Array.fold_left ( +. ) 0.0 table.Exec.data
            -. (float_of_int (n_real - 1) *. float_of_int n_real /. 2.0)
          in
          let expected = float_of_int (real_updates / ncores * ncores) in
          let verify_errors =
            if Float.abs (total_incr -. expected) > 0.5 then 1 else 0
          in
          Ok
            {
              gups = float_of_int nominal_updates /. dt /. 1e9;
              updates = nominal_updates;
              verify_errors;
            })
