(** Workload execution support.

    Buffers and cost-charged operations for the benchmark kernels.  A
    buffer occupies {e nominal} bytes of simulated physical memory
    (allocated from the kernel heap, charged through the analytic
    cache/TLB/EPT models at nominal size) and carries a smaller real
    [float array] backing so kernels perform genuine arithmetic whose
    results tests can check.  This keeps the paper-scale working sets
    (a 256 MB GUPS table, 14 GB enclaves) affordable while preserving
    both the access-pattern cost behaviour and computational
    correctness.

    All operations run on a {!Covirt_kitten.Kitten.context} and charge
    that core; in guest mode the machine applies the
    virtualization-dependent translation costs — that is where
    Covirt's overhead (or lack of it) comes from. *)

open Covirt_hw
open Covirt_kitten

type buffer = {
  base : Addr.t;
  nominal_bytes : int;
  data : float array;  (** real backing, [<= nominal_bytes/8] elements *)
}

val default_backing_cap : int
(** 2^18 elements (2 MiB of real memory per buffer). *)

val alloc :
  Kitten.context -> ?backing_cap:int -> bytes:int -> unit ->
  (buffer, string) result
(** Allocate from the kernel heap and touch the range (the touch is a
    bulk containment check: under EPT an unassigned range faults
    here, exactly like first use on hardware). *)

val stream_pass : Kitten.context -> buffer list -> sharers:int -> unit
(** Charge one sequential sweep over each buffer's nominal size. *)

val random_ops : Kitten.context -> buffer -> ops:int -> sharers:int -> unit
(** Charge [ops] independent accesses uniform over the buffer. *)

val flops : Kitten.context -> int -> unit

val barrier : Kitten.context list -> unit
(** Synchronize the cores of a parallel phase: every core's TSC
    advances to the group maximum (spin-wait on shared memory — an LWK
    busy-waits on dedicated cores, so no HLT and no exit). *)

val elapsed_seconds : Kitten.context -> since:int -> float
(** Simulated wall time on the context's core since a [rdtsc] mark. *)

val shard : elems:int -> ways:int -> index:int -> int * int
(** [(offset, len)] of the [index]-th of [ways] contiguous shards. *)
