(** HPCG 3.1-style conjugate gradient benchmark.

    A real preconditioned CG solve on the 27-point Laplacian stencil:
    the arithmetic runs (matrix-free) on a reduced grid so residuals
    and convergence are checkable, while costs are charged for the
    paper's nominal problem (104^3 rows, ~360 MB of matrix data).
    The cost profile per iteration mixes:

    - streaming sweeps over the matrix values (SpMV, SYMGS),
    - dependency-ordered gathers in the symmetric Gauss-Seidel
      smoother that defeat the prefetcher and walk pages in effectively
      random order (this is where the 2M-TLB reach is exceeded and the
      nested walk shows up), and
    - vector streams and dot-product reductions with a barrier each.

    Fig. 7's finding: a small, roughly configuration-independent
    overhead, at worst ~1.4%. *)

open Covirt_kitten

type result = {
  gflops : float;
  iterations : int;
  final_residual : float;
  converged : bool;
}

val default_nominal_dim : int
(** 104 (the paper's "104 104 104" local grid). *)

val run :
  Kitten.context list ->
  ?nominal_dim:int ->
  ?real_dim:int ->
  ?iterations:int ->
  unit ->
  (result, string) Stdlib.result
(** [real_dim] (default 20) sizes the grid the arithmetic actually
    runs on; [iterations] defaults to 50 CG steps. *)
