(** STREAM 5.10 memory-bandwidth benchmark.

    The four canonical kernels (Copy, Scale, Add, Triad) over three
    arrays, reporting best-of-[iters] MB/s per kernel the way the
    reference STREAM does.  Sequential, prefetch-friendly traffic with
    2M pages: the TLB-miss rate is one miss per 32768 lines, so EPT
    adds effectively nothing — Fig. 5(a)'s result. *)

open Covirt_kitten

type result = {
  copy_mb_s : float;
  scale_mb_s : float;
  add_mb_s : float;
  triad_mb_s : float;
  checksum : float;  (** validates the real arithmetic *)
}

val default_elems : int
(** 10 million doubles per array (3 x 80 MB in simulated memory). *)

val run :
  Kitten.context list -> ?elems:int -> ?iters:int -> unit ->
  (result, string) Stdlib.result
(** Shard the arrays across the given cores; [iters] defaults to 10. *)

val best_rate : result -> float
(** Triad MB/s — the headline number. *)
