open Covirt_hw
open Covirt_kitten

type result = {
  copy_mb_s : float;
  scale_mb_s : float;
  add_mb_s : float;
  triad_mb_s : float;
  checksum : float;
}

let default_elems = 10_000_000
let scalar = 3.0

let run ctxs ?(elems = default_elems) ?(iters = 10) () =
  match ctxs with
  | [] -> Error "Stream.run: no cores"
  | primary :: _ -> (
      let ncores = List.length ctxs in
      let bytes = elems * 8 in
      let alloc3 ctx =
        match
          ( Exec.alloc ctx ~bytes:(bytes / ncores) (),
            Exec.alloc ctx ~bytes:(bytes / ncores) (),
            Exec.alloc ctx ~bytes:(bytes / ncores) () )
        with
        | Ok a, Ok b, Ok c -> Ok (a, b, c)
        | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
      in
      let rec alloc_all acc = function
        | [] -> Ok (List.rev acc)
        | ctx :: rest -> (
            match alloc3 ctx with
            | Ok abc -> alloc_all ((ctx, abc) :: acc) rest
            | Error e -> Error e)
      in
      match alloc_all [] ctxs with
      | Error e -> Error e
      | Ok shards ->
          (* Initialize backing arrays (real arithmetic). *)
          List.iter
            (fun (_, (a, b, c)) ->
              Array.fill a.Exec.data 0 (Array.length a.Exec.data) 1.0;
              Array.fill b.Exec.data 0 (Array.length b.Exec.data) 2.0;
              Array.fill c.Exec.data 0 (Array.length c.Exec.data) 0.0)
            shards;
          let time_kernel ~buffers_per_shard ~compute =
            (* One timed pass: every core sweeps its shard; barrier. *)
            let best = ref infinity in
            for _ = 1 to iters do
              let start = Cpu.rdtsc primary.Kitten.cpu in
              List.iter
                (fun (ctx, abc) ->
                  Exec.stream_pass ctx (buffers_per_shard abc) ~sharers:ncores;
                  compute abc)
                shards;
              Exec.barrier ctxs;
              let dt = Exec.elapsed_seconds primary ~since:start in
              if dt < !best then best := dt
            done;
            let moved =
              float_of_int
                (List.length (buffers_per_shard (List.hd shards |> snd)) * bytes)
            in
            Covirt_sim.Units.bytes_per_sec_to_mb_s (moved /. !best)
          in
          let n_real (a : Exec.buffer) = Array.length a.Exec.data in
          let copy =
            time_kernel
              ~buffers_per_shard:(fun (a, _, c) -> [ a; c ])
              ~compute:(fun (a, _, c) ->
                let n = min (n_real a) (n_real c) in
                Array.blit a.Exec.data 0 c.Exec.data 0 n)
          in
          let scale =
            time_kernel
              ~buffers_per_shard:(fun (_, b, c) -> [ b; c ])
              ~compute:(fun (_, b, c) ->
                let n = min (n_real b) (n_real c) in
                for i = 0 to n - 1 do
                  b.Exec.data.(i) <- scalar *. c.Exec.data.(i)
                done)
          in
          let add =
            time_kernel
              ~buffers_per_shard:(fun (a, b, c) -> [ a; b; c ])
              ~compute:(fun (a, b, c) ->
                let n = min (n_real a) (min (n_real b) (n_real c)) in
                for i = 0 to n - 1 do
                  c.Exec.data.(i) <- a.Exec.data.(i) +. b.Exec.data.(i)
                done)
          in
          let triad =
            time_kernel
              ~buffers_per_shard:(fun (a, b, c) -> [ a; b; c ])
              ~compute:(fun (a, b, c) ->
                let n = min (n_real a) (min (n_real b) (n_real c)) in
                for i = 0 to n - 1 do
                  a.Exec.data.(i) <- b.Exec.data.(i) +. (scalar *. c.Exec.data.(i))
                done)
          in
          let checksum =
            List.fold_left
              (fun acc (_, (a, _, _)) ->
                acc +. Array.fold_left ( +. ) 0.0 a.Exec.data)
              0.0 shards
          in
          Ok
            {
              copy_mb_s = copy;
              scale_mb_s = scale;
              add_mb_s = add;
              triad_mb_s = triad;
              checksum;
            })

let best_rate r = r.triad_mb_s
