type t = { mutable state : int64 }

(* HPCC RandomAccess: x_{n+1} = (x_n << 1) xor (poly if the top bit of
   x_n was set).  The primitive polynomial over GF(2) the benchmark
   specifies. *)
let poly = 0x0000000000000007L

let next_ran r =
  let open Int64 in
  let shifted = shift_left r 1 in
  if compare r 0L < 0 then logxor shifted poly else shifted

let stream ~core = { state = Int64.of_int (0x9e3779b9 + core) }

let next t =
  t.state <- next_ran t.state;
  t.state

let index t ~modulus =
  Int64.to_int (Int64.logand (next t) 0x3fffffffL) mod modulus
