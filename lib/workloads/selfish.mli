(** Selfish Detour 1.0.7 — OS noise profiling.

    The benchmark spins reading the TSC; whenever two consecutive
    samples differ by more than a threshold, the gap was a "detour"
    (an interruption: timer tick, kernel housekeeping, SMI).  The
    output is the classic noise scatter: detour duration vs time of
    occurrence, summarised here as a log-bucketed histogram plus the
    raw events.

    Under Covirt the {e sources} of noise are unchanged — the same
    timer ticks at the same rate — but each event's duration can grow
    by the interrupt-delivery exit cost.  Fig. 3's finding is that the
    profiles are nearly indistinguishable; the histogram makes that
    directly comparable. *)

open Covirt_kitten

type detour = { at_us : float; duration_us : float; cause : string }

type result = {
  detours : detour list;
  histogram : Covirt_sim.Histogram.t;
  total_detour_us : float;
  noise_fraction : float;  (** detour time / run time *)
}

val default_threshold_cycles : int
(** 100 cycles, the benchmark's default granularity multiple. *)

val run :
  Kitten.context -> ?duration_s:float -> ?threshold_cycles:int ->
  ?background_mean_s:float -> ?background_cost_cycles:int -> unit -> result
(** Single-core by design (the paper runs it on a one-core
    configuration).  The background-noise knobs default to LWK-grade
    residue (one ~2.5 us event every 200 ms); passing Linux-grade
    values (frequent daemon/softirq activity) turns the same probe
    into the classic general-purpose-OS noise profile. *)

val run_on_cpu :
  Covirt_hw.Machine.t -> Covirt_hw.Cpu.t -> ?duration_s:float ->
  ?threshold_cycles:int -> ?background_mean_s:float ->
  ?background_cost_cycles:int -> unit -> result
(** The same probe on a raw core (e.g. a host-OS core), without a
    Kitten context. *)
