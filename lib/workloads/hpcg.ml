open Covirt_kitten

type result = {
  gflops : float;
  iterations : int;
  final_residual : float;
  converged : bool;
}

let default_nominal_dim = 104

(* ------------------------------------------------------------------ *)
(* Real arithmetic: matrix-free 27-point stencil on a real_dim^3 grid. *)

module Grid = struct
  type t = { n : int; data : float array }

  let create n = { n; data = Array.make (n * n * n) 0.0 }
  let idx g x y z = (z * g.n * g.n) + (y * g.n) + x

  let spmv ~a ~y =
    (* y = A*x for the 27-point Laplacian: diag 26, neighbours -1. *)
    let n = a.n in
    for z = 0 to n - 1 do
      for yy = 0 to n - 1 do
        for x = 0 to n - 1 do
          let acc = ref (26.0 *. a.data.(idx a x yy z)) in
          for dz = -1 to 1 do
            for dy = -1 to 1 do
              for dx = -1 to 1 do
                if dx <> 0 || dy <> 0 || dz <> 0 then begin
                  let x' = x + dx and y' = yy + dy and z' = z + dz in
                  if
                    x' >= 0 && x' < n && y' >= 0 && y' < n && z' >= 0 && z' < n
                  then acc := !acc -. a.data.(idx a x' y' z')
                end
              done
            done
          done;
          y.data.(idx y x yy z) <- !acc
        done
      done
    done

  let dot a b =
    let acc = ref 0.0 in
    Array.iteri (fun i v -> acc := !acc +. (v *. b.data.(i))) a.data;
    !acc

  let axpy ~alpha ~x ~y =
    (* y <- y + alpha x *)
    Array.iteri (fun i v -> y.data.(i) <- y.data.(i) +. (alpha *. v)) x.data

  let scale_add ~x ~beta ~p =
    (* p <- x + beta p *)
    Array.iteri (fun i v -> p.data.(i) <- v +. (beta *. p.data.(i))) x.data

  let copy ~src ~dst = Array.blit src.data 0 dst.data 0 (Array.length src.data)
end

(* ------------------------------------------------------------------ *)
(* Nominal cost profile.                                               *)

(* Bytes per row of the CSR-ish matrix: 27 values (8B) + 27 column
   indices (4B). *)
let matrix_bytes_per_row = 27 * 12

(* Gather ops per row in the SYMGS smoother that walk the matrix in
   dependency order (effectively random at page granularity).  The
   smoother's data dependencies span the whole domain, so these
   gathers wander the full matrix, not the core-local shard — which is
   why HPCG's overhead is consistent across core/zone layouts.  The
   remaining neighbour traffic is prefetch-covered and accounted as
   streaming. *)
let symgs_random_ops_per_row = 2

let flops_per_row_per_iter = 27 * 2 * 4 (* SpMV + 2x SYMGS + vectors *)

let charge_iteration ctxs ~matrices ~symgs_ws ~xvec ~rows =
  let ncores = List.length ctxs in
  let rows_per_core = rows / ncores in
  List.iter2
    (fun ctx matrix ->
      (* SpMV: stream the matrix shard, gather from x. *)
      Exec.stream_pass ctx [ matrix ] ~sharers:ncores;
      Exec.random_ops ctx xvec ~ops:(rows_per_core * 2) ~sharers:ncores;
      (* SYMGS pre+post smooth: two more matrix sweeps plus the
         dependency-ordered gathers. *)
      Exec.stream_pass ctx [ matrix ] ~sharers:ncores;
      Exec.stream_pass ctx [ matrix ] ~sharers:ncores;
      Exec.random_ops ctx symgs_ws
        ~ops:(rows_per_core * symgs_random_ops_per_row)
        ~sharers:ncores;
      (* Vector work: r, p, Ap streams. *)
      Exec.stream_pass ctx [ xvec; xvec; xvec ] ~sharers:ncores;
      Exec.flops ctx (rows_per_core * flops_per_row_per_iter))
    ctxs matrices;
  (* Two dot-product reductions per CG iteration. *)
  Exec.barrier ctxs;
  Exec.barrier ctxs

(* ------------------------------------------------------------------ *)
(* Multigrid preconditioner: HPCG solves with a V-cycle of Jacobi-
   smoothed coarse corrections (HPCG 3.1 uses 3 coarse levels with
   SYMGS; Jacobi keeps the reduced-scale arithmetic simple while
   preserving the convergence structure). *)

module Mg = struct
  let smooth ~a ~b ~x ~sweeps =
    (* weighted Jacobi on the 27-point operator: diag = 26 *)
    let tmp = Grid.create a.Grid.n in
    for _ = 1 to sweeps do
      Grid.spmv ~a:x ~y:tmp;
      Array.iteri
        (fun i bx ->
          x.Grid.data.(i) <-
            x.Grid.data.(i) +. (0.6 /. 26.0 *. (bx -. tmp.Grid.data.(i))))
        b.Grid.data;
      ignore a
    done

  let restrict ~fine ~coarse =
    (* injection: every other point *)
    let nf = fine.Grid.n and nc = coarse.Grid.n in
    assert (nc * 2 = nf);
    for z = 0 to nc - 1 do
      for y = 0 to nc - 1 do
        for x = 0 to nc - 1 do
          coarse.Grid.data.(Grid.idx coarse x y z) <-
            fine.Grid.data.(Grid.idx fine (2 * x) (2 * y) (2 * z))
        done
      done
    done

  let prolong ~coarse ~fine =
    (* piecewise-constant interpolation added into the fine grid *)
    let nf = fine.Grid.n and nc = coarse.Grid.n in
    assert (nc * 2 = nf);
    for z = 0 to nf - 1 do
      for y = 0 to nf - 1 do
        for x = 0 to nf - 1 do
          let c =
            coarse.Grid.data.(Grid.idx coarse (min (x / 2) (nc - 1))
                                (min (y / 2) (nc - 1))
                                (min (z / 2) (nc - 1)))
          in
          fine.Grid.data.(Grid.idx fine x y z) <-
            fine.Grid.data.(Grid.idx fine x y z) +. c
        done
      done
    done

  (* One V-cycle applying M^-1 to [r], result in [z]. *)
  let v_cycle ~r ~z =
    let n = r.Grid.n in
    Array.fill z.Grid.data 0 (Array.length z.Grid.data) 0.0;
    smooth ~a:z ~b:r ~x:z ~sweeps:1;
    if n mod 2 = 0 && n >= 8 then begin
      (* coarse correction *)
      let resid = Grid.create n in
      Grid.spmv ~a:z ~y:resid;
      Array.iteri
        (fun i rv -> resid.Grid.data.(i) <- rv -. resid.Grid.data.(i))
        r.Grid.data;
      let rc = Grid.create (n / 2) in
      restrict ~fine:resid ~coarse:rc;
      let zc = Grid.create (n / 2) in
      smooth ~a:zc ~b:rc ~x:zc ~sweeps:2;
      prolong ~coarse:zc ~fine:z
    end;
    smooth ~a:z ~b:r ~x:z ~sweeps:1
end

let run ctxs ?(nominal_dim = default_nominal_dim) ?(real_dim = 20)
    ?(iterations = 50) () =
  match ctxs with
  | [] -> Error "Hpcg.run: no cores"
  | primary :: _ -> (
      let ncores = List.length ctxs in
      let rows = nominal_dim * nominal_dim * nominal_dim in
      let matrix_bytes = rows * matrix_bytes_per_row / ncores in
      let vector_bytes = rows * 8 in
      let alloc ctx bytes = Exec.alloc ctx ~bytes () in
      let rec alloc_matrices acc = function
        | [] -> Ok (List.rev acc)
        | ctx :: rest -> (
            match alloc ctx matrix_bytes with
            | Ok b -> alloc_matrices (b :: acc) rest
            | Error e -> Error e)
      in
      match
        ( alloc_matrices [] ctxs,
          alloc primary vector_bytes,
          alloc primary (rows * matrix_bytes_per_row) )
      with
      | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
      | Ok matrices, Ok xvec, Ok symgs_ws ->
          (* Real CG on the reduced grid. *)
          let n = real_dim in
          let b = Grid.create n in
          let x = Grid.create n in
          let r = Grid.create n and p = Grid.create n and ap = Grid.create n in
          (* RHS: a delta source in the middle. *)
          b.Grid.data.(Grid.idx b (n / 2) (n / 2) (n / 2)) <- 1.0;
          Grid.copy ~src:b ~dst:r;
          Grid.copy ~src:b ~dst:p;
          (* preconditioned CG: z = M^-1 r via one MG V-cycle *)
          let z = Grid.create n in
          Mg.v_cycle ~r ~z;
          Grid.copy ~src:z ~dst:p;
          let rz = ref (Grid.dot r z) in
          let r0 = sqrt (Grid.dot r r) in
          let rr = ref (Grid.dot r r) in
          let start = Covirt_hw.Cpu.rdtsc primary.Kitten.cpu in
          let iters_done = ref 0 in
          (try
             for _ = 1 to iterations do
               (* Cost charging for the nominal problem. *)
               charge_iteration ctxs ~matrices ~symgs_ws ~xvec ~rows;
               (* Real arithmetic. *)
               Grid.spmv ~a:p ~y:ap;
               let pap = Grid.dot p ap in
               if Float.abs pap < 1e-300 then raise Exit;
               let alpha = !rz /. pap in
               Grid.axpy ~alpha ~x:p ~y:x;
               Grid.axpy ~alpha:(-.alpha) ~x:ap ~y:r;
               Mg.v_cycle ~r ~z;
               let rz' = Grid.dot r z in
               let beta = rz' /. !rz in
               rz := rz';
               rr := Grid.dot r r;
               Grid.scale_add ~x:z ~beta ~p;
               incr iters_done
             done
           with Exit -> ());
          let dt = Exec.elapsed_seconds primary ~since:start in
          let flops =
            float_of_int !iters_done
            *. float_of_int rows
            *. float_of_int flops_per_row_per_iter
          in
          let final_residual = sqrt !rr /. r0 in
          Ok
            {
              gflops = flops /. dt /. 1e9;
              iterations = !iters_done;
              final_residual;
              converged = final_residual < 0.1;
            })
