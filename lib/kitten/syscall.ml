type disposition = Local | Forwarded | Unsupported

let nr_read = 0
let nr_write = 1
let nr_open = 2
let nr_close = 3
let nr_mmap = 9
let nr_brk = 12
let nr_getpid = 39
let nr_gettimeofday = 96
let nr_clock_gettime = 228
let nr_exit = 60

let disposition nr =
  if nr = nr_brk || nr = nr_mmap || nr = nr_getpid || nr = nr_gettimeofday
     || nr = nr_clock_gettime || nr = nr_exit
  then Local
  else if nr = nr_read || nr = nr_write || nr = nr_open || nr = nr_close then
    Forwarded
  else Unsupported

let name nr =
  if nr = nr_read then "read"
  else if nr = nr_write then "write"
  else if nr = nr_open then "open"
  else if nr = nr_close then "close"
  else if nr = nr_mmap then "mmap"
  else if nr = nr_brk then "brk"
  else if nr = nr_getpid then "getpid"
  else if nr = nr_gettimeofday then "gettimeofday"
  else if nr = nr_clock_gettime then "clock_gettime"
  else if nr = nr_exit then "exit"
  else Printf.sprintf "sys_%d" nr

let local_cost_cycles = 250
