(** Kitten's cooperative scheduler.

    Run-to-completion FIFO scheduling on dedicated cores: the policy
    that gives LWKs their "high performance and high repeatability".
    There is no preemption — the timer tick only keeps time — so the
    only scheduling costs are the context switches between queued
    processes, and those are counted. *)

type t

val create : unit -> t

val spawn : t -> name:string -> (Kitten.context -> int) -> Process.t
(** Enqueue a new process; pids are assigned sequentially from 1. *)

val run : t -> Kitten.context -> int
(** Drain the run queue on the given core, charging a context-switch
    cost between processes and accounting timer ticks over each
    process's execution.  Returns the number of processes that ran.
    A {!Kitten.Kernel_panic} or containment event propagates. *)

val run_queue_length : t -> int
val context_switches : t -> int
val processes : t -> Process.t list
(** Everything ever spawned, in pid order. *)
