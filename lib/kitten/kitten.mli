(** The Kitten lightweight kernel (co-kernel model).

    Provides the LWK behaviours Covirt's evaluation depends on:
    contiguous physical memory with large pages, a minimal-noise
    timer, local handling of performance-critical system calls with
    forwarding for the rest, direct IPI use, and — critically — a
    private {!Memmap} view of its resources that is synchronised with
    the host over the Pisces control channel and can therefore go
    stale.

    A kernel instance is created by {!make_kernel} and booted through
    {!Covirt_pisces.Pisces.boot}; it behaves identically whether it
    runs natively or under the Covirt hypervisor (the transparency
    property: the boot-parameter structure it receives is the same). *)

open Covirt_hw
open Covirt_pisces

type t

type context = { machine : Machine.t; kernel : t; cpu : Cpu.t }
(** Execution environment for code running on one of the kernel's
    cores (kernel threads, workload processes). *)

type stats = {
  mutable ticks : int;
  mutable syscalls_local : int;
  mutable syscalls_forwarded : int;
  mutable irqs : int;
  mutable spurious_irqs : int;
}

exception Kernel_panic of { enclave : int; reason : string }
(** Raised when the kernel trips over its own corrupted state (the
    delayed consequence of a wild write into it). *)

val make_kernel : unit -> Pisces.kernel * (unit -> t option)
(** [(kernel, get)] — pass [kernel] to {!Pisces.boot}; after a
    successful boot [get ()] returns the live instance. *)

val machine : t -> Machine.t
val enclave_id : t -> int
val memmap : t -> Memmap.t

val page_table : t -> Guest_pt.t
(** The kernel's page tables: a boot-time direct map of all physical
    RAM (static thereafter — the LWK policy). *)

val params : t -> Boot_params.pisces
val stats : t -> stats
val cores : t -> int list

val context : t -> core:int -> context
(** [Invalid_argument] if [core] is not one of the kernel's cores. *)

val kalloc : ?near_core:int -> t -> bytes:int -> (Addr.t, string) result
(** Contiguous physical allocation from the believed memory map
    (Kitten policy: simple, contiguous, 2M-aligned).  [near_core]
    prefers heap regions in that core's NUMA zone (Kitten's NUMA-aware
    first-touch analogue), falling back to any zone. *)

val run_with_ticks : context -> (unit -> 'a) -> 'a
(** Run a computation and then account the local-APIC timer ticks that
    elapsed on this core while it ran (mode-dependent delivery cost —
    this is where virtualized interrupt overhead reaches
    applications). *)

val syscall : context -> number:int -> arg:int -> int
(** Dispatch per {!Syscall.disposition}: local calls are handled in a
    few hundred cycles; forwarded ones ride the control channel to the
    host OS/R and back. *)

val set_host_poke : t -> (unit -> unit) -> unit
(** Wire the host-side channel servicing (the Hobbes runtime installs
    [fun () -> ignore (Pisces.service_channel ...)]). *)

val heartbeat : context -> unit
(** Send a {!Covirt_pisces.Message.Heartbeat} over the control channel
    — the explicit sign of life the supervision watchdog monitors. *)

val register_irq : t -> vector:int -> (context -> int -> unit) -> unit
val send_ipi : context -> dest:int -> vector:int -> unit
(** Transmit a fixed IPI; under Covirt's IPI protection this traps to
    the whitelist check. *)

val allowed_vectors : t -> (int * int) list
(** The kernel's believed view of its granted (vector, peer) pairs. *)

val health : t -> [ `Ok | `Corrupted of string ]
val assert_healthy : t -> unit
(** Raise {!Kernel_panic} if corrupted — models the kernel eventually
    tripping over smashed state. *)

(* Fault injectors: deliberate bugs from the paper's taxonomy. *)

val load_addr : context -> Addr.t -> unit
val store_addr : context -> Addr.t -> unit
(** Raw accesses through the full translation path. *)

val inject_phantom_region : t -> Region.t -> unit
(** Desynchronise the believed map: the kernel now thinks it owns
    [region]. *)

val touch_believed_memory : context -> Addr.t -> unit
(** Access an address the kernel believes is usable ([Invalid_argument]
    if it does not — the injector is for believed-but-wrong state). *)

val spin_wedged : context -> cycles:int -> unit
(** Livelock: burn cycles on the core without trapping, messaging or
    ticking.  Containment never notices (nothing errant happens); only
    the watchdog's progress tracking can. *)

val wrmsr_sensitive : context -> unit
(** Write IA32_SMM_MONITOR_CTL — a forbidden MSR. *)

val out_reset_port : context -> unit
(** Write 0x6 to port 0xCF9 (hard reset). *)

val trigger_double_fault : context -> unit

val poke_device : context -> name:string -> offset:int -> unit
(** Driver access to a delegated device's MMIO window
    ([Invalid_argument] if the kernel holds no such device or the
    offset is outside the BAR). *)

val poke_foreign_mmio : context -> Addr.t -> unit
(** The errant-driver fault: map and write MMIO space the enclave was
    never delegated. *)
