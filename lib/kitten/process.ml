type state = Ready | Running | Exited of int

type t = {
  pid : int;
  name : string;
  entry : Kitten.context -> int;
  mutable state : state;
  mutable cpu_cycles : int;
}

let create ~pid ~name entry =
  { pid; name; entry; state = Ready; cpu_cycles = 0 }

let is_exited t = match t.state with Exited _ -> true | Ready | Running -> false
let exit_code t = match t.state with Exited c -> Some c | Ready | Running -> None

let pp ppf t =
  let state =
    match t.state with
    | Ready -> "ready"
    | Running -> "running"
    | Exited c -> Printf.sprintf "exited(%d)" c
  in
  Format.fprintf ppf "pid %d (%s) %s, %d cycles" t.pid t.name state t.cpu_cycles
