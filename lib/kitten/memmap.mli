(** The co-kernel's {e believed} memory map.

    Kitten tracks the physical memory it thinks it may use: its
    assigned regions plus attached shared segments.  This is a copy of
    state owned by the host, synchronised over the control channel —
    and a copy can go stale.  The paper's central observation is that
    "even if a co-kernel is operating correctly based on its own view
    of the current system configuration, it might in fact be accessing
    hardware it should not"; the injectors at the bottom of this
    interface manufacture exactly those desynchronisations. *)

open Covirt_hw

type t

val create : Region.t list -> t
val usable : t -> Region.Set.t
(** Owned plus shared — everything the kernel believes it may touch. *)

val owned : t -> Region.Set.t
val believes_usable : t -> Addr.t -> bool

val add : t -> Region.t -> unit
val remove : t -> Region.t -> unit
val add_shared : t -> segid:int -> Region.t list -> unit
val remove_shared : t -> segid:int -> unit
val shared_segments : t -> (int * Region.t list) list
val shared_pages : t -> segid:int -> Region.t list option

val add_device : t -> name:string -> Region.t -> unit
val remove_device : t -> name:string -> unit
val device_window : t -> name:string -> Region.t option
val devices : t -> (string * Region.t) list

(* Bug injectors. *)

val inject_phantom : t -> Region.t -> unit
(** Corrupt the map with a region that was never assigned (the
    "trivial coding mistake" class: an off-by-one or bad merge makes
    the kernel believe it owns memory it does not). *)

val pp : Format.formatter -> t -> unit
