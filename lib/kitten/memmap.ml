open Covirt_hw

type t = {
  mutable owned : Region.Set.t;
  shared : (int, Region.t list) Hashtbl.t;
  device_windows : (string, Region.t) Hashtbl.t;
}

let create regions =
  {
    owned = Region.Set.of_list regions;
    shared = Hashtbl.create 8;
    device_windows = Hashtbl.create 4;
  }

let owned t = t.owned

let usable t =
  let with_shared =
    Hashtbl.fold
      (fun _ pages acc -> List.fold_left Region.Set.add acc pages)
      t.shared t.owned
  in
  Hashtbl.fold
    (fun _ window acc -> Region.Set.add acc window)
    t.device_windows with_shared

let believes_usable t addr = Region.Set.mem (usable t) addr
let add t region = t.owned <- Region.Set.add t.owned region
let remove t region = t.owned <- Region.Set.remove t.owned region

let add_shared t ~segid pages =
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.shared segid) in
  Hashtbl.replace t.shared segid (existing @ pages)

let remove_shared t ~segid = Hashtbl.remove t.shared segid

let shared_segments t =
  Hashtbl.fold (fun segid pages acc -> (segid, pages) :: acc) t.shared []
  |> List.sort compare

let shared_pages t ~segid = Hashtbl.find_opt t.shared segid
let add_device t ~name window = Hashtbl.replace t.device_windows name window
let remove_device t ~name = Hashtbl.remove t.device_windows name
let device_window t ~name = Hashtbl.find_opt t.device_windows name

let devices t =
  Hashtbl.fold (fun name window acc -> (name, window) :: acc) t.device_windows []
  |> List.sort compare

let inject_phantom t region = t.owned <- Region.Set.add t.owned region

let pp ppf t =
  Format.fprintf ppf "owned=%a shared=[%s]" Region.Set.pp t.owned
    (String.concat ";"
       (List.map (fun (s, _) -> string_of_int s) (shared_segments t)))
