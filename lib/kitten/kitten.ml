open Covirt_hw
open Covirt_pisces

type stats = {
  mutable ticks : int;
  mutable syscalls_local : int;
  mutable syscalls_forwarded : int;
  mutable irqs : int;
  mutable spurious_irqs : int;
}

type t = {
  mach : Machine.t;
  enclave : Enclave.t;
  params : Boot_params.pisces;
  memmap : Memmap.t;
  page_table : Guest_pt.t;
  mutable heap_free : Region.Set.t;
  mutable allowed_vectors : (int * int) list;
  irq_handlers : (int, ctx -> int -> unit) Hashtbl.t;
  pending_replies : (int, int) Hashtbl.t;
  mutable host_poke : (unit -> unit) option;
  mutable next_seq : int;
  stats : stats;
}

and ctx = { machine : Machine.t; kernel : t; cpu : Cpu.t }

type context = ctx = { machine : Machine.t; kernel : t; cpu : Cpu.t }

exception Kernel_panic of { enclave : int; reason : string }

let machine t = t.mach
let enclave_id t = t.enclave.Enclave.id
let memmap t = t.memmap
let page_table t = t.page_table
let params t = t.params
let stats t = t.stats
let cores t = t.params.Boot_params.assigned_cores
let allowed_vectors t = t.allowed_vectors

(* Kitten reserves the first 16 MiB of its first region for the kernel
   image, page tables and boot structures; the heap starts above. *)
let kernel_reserved = 16 * Covirt_sim.Units.mib

let timer_vector = 0xef

let context t ~core =
  if not (List.mem core (cores t)) then invalid_arg "Kitten.context: bad core";
  { machine = t.mach; kernel = t; cpu = Machine.cpu t.mach core }

(* ------------------------------------------------------------------ *)
(* Interrupt service.                                                  *)

let isr t (cpu : Cpu.t) vector =
  let c = { machine = t.mach; kernel = t; cpu } in
  t.stats.irqs <- t.stats.irqs + 1;
  if vector = timer_vector then t.stats.ticks <- t.stats.ticks + 1
  else
    match Hashtbl.find_opt t.irq_handlers vector with
    | Some handler -> handler c vector
    | None -> t.stats.spurious_irqs <- t.stats.spurious_irqs + 1

let register_irq t ~vector handler = Hashtbl.replace t.irq_handlers vector handler

(* ------------------------------------------------------------------ *)
(* Control-channel message handling (runs on the boot core).           *)

let handle_host_msg t msg =
  let bsp = Machine.cpu t.mach (Enclave.bsp t.enclave) in
  let ack seq =
    Ctrl_channel.send_to_host t.mach ~enclave_cpu:bsp t.enclave.Enclave.channel
      (Message.Ack { seq })
  in
  Cpu.charge bsp 400 (* message-loop processing *);
  match msg with
  | Message.Add_memory { seq; region } ->
      Memmap.add t.memmap region;
      t.heap_free <- Region.Set.add t.heap_free region;
      ack seq
  | Message.Remove_memory { seq; region } ->
      (* The direct map is static; only the allocator state changes.
         (This is why a stale straggler access still translates in the
         kernel's own tables — and why only the EPT can veto it.) *)
      Memmap.remove t.memmap region;
      t.heap_free <- Region.Set.remove t.heap_free region;
      ack seq
  | Message.Xemem_map { seq; segid; pages } ->
      Memmap.add_shared t.memmap ~segid pages;
      ack seq
  | Message.Xemem_unmap { seq; segid; pages } ->
      ignore pages;
      Memmap.remove_shared t.memmap ~segid;
      ack seq
  | Message.Grant_ipi_vector { seq; vector; peer_core } ->
      t.allowed_vectors <- (vector, peer_core) :: t.allowed_vectors;
      ack seq
  | Message.Revoke_ipi_vector { seq; vector; dest } ->
      t.allowed_vectors <-
        List.filter
          (fun (v, d) ->
            v <> vector || match dest with Some d' -> d <> d' | None -> false)
          t.allowed_vectors;
      ack seq
  | Message.Assign_device { seq; device; window } ->
      Memmap.add_device t.memmap ~name:device window;
      (* the driver maps the BAR into the kernel address space *)
      Guest_pt.map_region t.page_table window;
      ack seq
  | Message.Revoke_device { seq; device; window } ->
      Memmap.remove_device t.memmap ~name:device;
      Guest_pt.unmap_region t.page_table window;
      List.iter
        (fun core ->
          Tlb.flush_range (Machine.cpu t.mach core).Cpu.tlb window)
        (cores t);
      ack seq
  | Message.Syscall_reply { seq; ret } ->
      Hashtbl.replace t.pending_replies seq ret
  | Message.Shutdown { seq } -> ack seq

(* ------------------------------------------------------------------ *)
(* Boot.                                                               *)

let boot_core_body instance_ref machine enclave (cpu : Cpu.t) ~bsp params =
  (* Early hardware bring-up: these instructions trap-and-emulate
     under Covirt and run natively otherwise; the code path is
     identical (transparency). *)
  Machine.cpuid machine cpu;
  Machine.xsetbv machine cpu;
  ignore (Machine.rdmsr machine cpu Msr.ia32_pat);
  Cpu.charge cpu 50_000 (* per-core init: GDT/IDT, paging setup *);
  if bsp then begin
    let t =
      {
        mach = machine;
        enclave;
        params;
        memmap = Memmap.create params.Boot_params.assigned_memory;
        page_table =
          Guest_pt.direct_map
            ~total_mem:(Numa.total_mem machine.Machine.topology);
        heap_free = Region.Set.empty;
        allowed_vectors = [];
        irq_handlers = Hashtbl.create 8;
        pending_replies = Hashtbl.create 8;
        host_poke = None;
        next_seq = 0;
        stats =
          {
            ticks = 0;
            syscalls_local = 0;
            syscalls_forwarded = 0;
            irqs = 0;
            spurious_irqs = 0;
          };
      }
    in
    (* Heap: everything except the kernel-reserved head of the first
       region. *)
    let heap =
      match params.Boot_params.assigned_memory with
      | [] -> Region.Set.empty
      | first :: _ ->
          Region.Set.remove
            (Region.Set.of_list params.Boot_params.assigned_memory)
            (Region.make ~base:first.Region.base ~len:kernel_reserved)
    in
    t.heap_free <- heap;
    instance_ref := Some t;
    (* Touch the boot-parameter page (exercises translation under the
       freshly built virtualization context). *)
    Machine.load machine cpu
      (params.Boot_params.entry_addr - Addr.page_size_4k);
    enclave.Enclave.msg_handler <- Some (handle_host_msg t);
    Ctrl_channel.send_to_host machine ~enclave_cpu:cpu enclave.Enclave.channel
      Message.Ready
  end;
  (match !instance_ref with
  | Some t ->
      cpu.Cpu.isr <- Some (isr t);
      (* load CR3: every core runs on the shared kernel page table *)
      cpu.Cpu.guest_pt <- Some t.page_table
  | None -> ());
  Cpu.charge cpu 10_000 (* idle loop entry *)

let make_kernel () =
  let instance_ref = ref None in
  let kernel =
    {
      Pisces.kernel_name = "kitten";
      boot_core =
        (fun machine enclave cpu ~bsp params ->
          boot_core_body instance_ref machine enclave cpu ~bsp params);
    }
  in
  (kernel, fun () -> !instance_ref)

(* ------------------------------------------------------------------ *)
(* Memory allocation.                                                  *)

let kalloc ?near_core t ~bytes =
  if bytes <= 0 then invalid_arg "Kitten.kalloc";
  let bytes = Addr.page_up bytes ~size:Addr.page_size_4k in
  let topology = t.mach.Machine.topology in
  let fits r =
    let base = Addr.page_up r.Region.base ~size:Addr.page_size_2m in
    if base + bytes <= Region.limit r then Some (Region.make ~base ~len:bytes)
    else None
  in
  let regions = Region.Set.to_list t.heap_free in
  let preferred =
    match near_core with
    | None -> []
    | Some core ->
        let zone = Numa.zone_of_core topology ~core in
        List.filter
          (fun r -> Numa.zone_of_addr topology r.Region.base = zone)
          regions
  in
  let candidate =
    match List.find_map fits preferred with
    | Some _ as found -> found
    | None -> List.find_map fits regions
  in
  match candidate with
  | None ->
      Error
        (Format.asprintf "kalloc: no contiguous %a available"
           Covirt_sim.Units.pp_bytes bytes)
  | Some region ->
      t.heap_free <- Region.Set.remove t.heap_free region;
      Ok region.Region.base

(* ------------------------------------------------------------------ *)
(* Timer accounting.                                                   *)

let max_simulated_ticks = 10_000

let run_with_ticks (c : ctx) f =
  let start = Cpu.rdtsc c.cpu in
  let result = f () in
  let elapsed = Cpu.rdtsc c.cpu - start in
  let hz = Apic.timer_hz c.cpu.Cpu.apic in
  if hz > 0.0 then begin
    let seconds =
      Covirt_sim.Units.cycles_to_seconds
        ~ghz:c.machine.Machine.model.Cost_model.ghz elapsed
    in
    let ticks = int_of_float (seconds *. hz) in
    let simulated = min ticks max_simulated_ticks in
    for _ = 1 to simulated do
      Machine.timer_tick c.machine c.cpu
    done;
    if ticks > simulated then
      Cpu.charge c.cpu
        ((ticks - simulated) * Machine.timer_tick_cost c.machine c.cpu)
  end;
  result

(* ------------------------------------------------------------------ *)
(* System calls.                                                       *)

let syscall (c : ctx) ~number ~arg =
  let t = c.kernel in
  match Syscall.disposition number with
  | Syscall.Local ->
      t.stats.syscalls_local <- t.stats.syscalls_local + 1;
      Cpu.charge c.cpu Syscall.local_cost_cycles;
      if number = Syscall.nr_getpid then 1
      else if number = Syscall.nr_gettimeofday
              || number = Syscall.nr_clock_gettime
      then Cpu.rdtsc c.cpu
      else if number = Syscall.nr_mmap || number = Syscall.nr_brk then
        (* anonymous mappings come straight from the contiguous
           allocator: Kitten has no demand paging *)
        match kalloc ~near_core:c.cpu.Cpu.id t ~bytes:(max arg 4096) with
        | Ok addr -> addr
        | Error _ -> -12 (* -ENOMEM *)
      else 0
  | Syscall.Forwarded -> (
      t.stats.syscalls_forwarded <- t.stats.syscalls_forwarded + 1;
      t.next_seq <- t.next_seq - 1;
      (* Negative sequence space: enclave-originated, never collides
         with the host's positive sequences. *)
      let seq = t.next_seq in
      Ctrl_channel.send_to_host t.mach ~enclave_cpu:c.cpu
        t.enclave.Enclave.channel
        (Message.Syscall_request { seq; number; arg });
      (match t.host_poke with Some poke -> poke () | None -> ());
      match Hashtbl.find_opt t.pending_replies seq with
      | Some ret ->
          Hashtbl.remove t.pending_replies seq;
          ret
      | None -> -11 (* -EAGAIN: host never serviced the request *))
  | Syscall.Unsupported -> -38 (* -ENOSYS *)

let set_host_poke t poke = t.host_poke <- Some poke

let heartbeat (c : ctx) =
  Ctrl_channel.send_to_host c.machine ~enclave_cpu:c.cpu
    c.kernel.enclave.Enclave.channel
    (Message.Heartbeat { tsc = Cpu.rdtsc c.cpu })

(* ------------------------------------------------------------------ *)
(* IPIs.                                                               *)

let send_ipi (c : ctx) ~dest ~vector =
  Machine.send_ipi c.machine ~from:c.cpu ~dest ~vector ~kind:Apic.Fixed

(* ------------------------------------------------------------------ *)
(* Health.                                                             *)

let health t =
  match Machine.is_corrupted t.mach ~enclave:t.enclave.Enclave.id with
  | Some cause -> `Corrupted cause
  | None -> `Ok

let assert_healthy t =
  match health t with
  | `Ok -> ()
  | `Corrupted reason ->
      raise (Kernel_panic { enclave = t.enclave.Enclave.id; reason })

(* ------------------------------------------------------------------ *)
(* Fault injectors.                                                    *)

let load_addr (c : ctx) addr = Machine.load c.machine c.cpu addr
let store_addr (c : ctx) addr = Machine.store c.machine c.cpu addr
let inject_phantom_region t region = Memmap.inject_phantom t.memmap region

let touch_believed_memory (c : ctx) addr =
  if not (Memmap.believes_usable c.kernel.memmap addr) then
    invalid_arg "Kitten.touch_believed_memory: kernel does not believe this";
  store_addr c addr

let spin_wedged (c : ctx) ~cycles =
  if cycles < 0 then invalid_arg "Kitten.spin_wedged";
  (* A livelocked kernel: burns time without trapping, messaging or
     taking ticks — invisible to containment, visible to the watchdog. *)
  Cpu.charge c.cpu cycles

let wrmsr_sensitive (c : ctx) =
  Machine.wrmsr c.machine c.cpu Msr.ia32_smm_monitor_ctl 0xdeadL

let out_reset_port (c : ctx) =
  Machine.outb c.machine c.cpu Io_port.reset_port 0x6

let trigger_double_fault (c : ctx) =
  Machine.raise_abort c.machine c.cpu ~what:"double fault"


let poke_device (c : ctx) ~name ~offset =
  (* a device driver writing a register in its BAR *)
  match Memmap.device_window c.kernel.memmap ~name with
  | None -> invalid_arg (Printf.sprintf "Kitten.poke_device: no device %S" name)
  | Some window ->
      if offset < 0 || offset >= window.Region.len then
        invalid_arg "Kitten.poke_device: offset outside BAR";
      store_addr c (window.Region.base + offset)

let poke_foreign_mmio (c : ctx) addr =
  (* the device-driver bug class: an errant MMIO write to hardware the
     enclave was never given.  The kernel direct map does not cover
     MMIO space, so the buggy driver also maps the window first --
     which is exactly what buggy drivers do. *)
  Guest_pt.map_region c.kernel.page_table
    (Region.make
       ~base:(Addr.page_down addr ~size:Addr.page_size_4k)
       ~len:Addr.page_size_4k);
  store_addr c addr
