(** Kitten's system-call table.

    An LWK implements the performance-critical calls locally and
    forwards everything heavyweight to the general-purpose OS/R over
    the control channel — the "offload heavy-weight operations" half
    of the co-kernel bargain.  Numbers follow the Linux x86-64 ABI for
    the calls we model (Kitten is "partially derived from Linux" and
    keeps ABI compatibility). *)

type disposition =
  | Local  (** handled inside the LWK, no OS noise *)
  | Forwarded  (** proxied to the host OS/R *)
  | Unsupported

val nr_read : int
val nr_write : int
val nr_open : int
val nr_close : int
val nr_mmap : int
val nr_brk : int
val nr_getpid : int
val nr_gettimeofday : int
val nr_clock_gettime : int
val nr_exit : int

val disposition : int -> disposition
(** How Kitten treats a syscall number. *)

val name : int -> string
val local_cost_cycles : int
(** Cycles charged for a locally handled call (an LWK syscall is a
    couple hundred cycles). *)
