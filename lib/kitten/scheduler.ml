type t = {
  queue : Process.t Queue.t;
  mutable all : Process.t list; (* reversed *)
  mutable next_pid : int;
  mutable switches : int;
}

let context_switch_cycles = 1400
(* A Kitten context switch is a register save/restore and a runqueue
   pop; there is no address-space change (single kernel page table). *)

let create () = { queue = Queue.create (); all = []; next_pid = 1; switches = 0 }

let spawn t ~name entry =
  let process = Process.create ~pid:t.next_pid ~name entry in
  t.next_pid <- t.next_pid + 1;
  Queue.push process t.queue;
  t.all <- process :: t.all;
  process

let run t (ctx : Kitten.context) =
  let ran = ref 0 in
  let rec loop () =
    match Queue.take_opt t.queue with
    | None -> ()
    | Some process ->
        if !ran > 0 then begin
          t.switches <- t.switches + 1;
          Covirt_hw.Cpu.charge ctx.Kitten.cpu context_switch_cycles
        end;
        process.Process.state <- Process.Running;
        let start = Covirt_hw.Cpu.rdtsc ctx.Kitten.cpu in
        let code = Kitten.run_with_ticks ctx (fun () -> process.Process.entry ctx) in
        process.Process.cpu_cycles <-
          process.Process.cpu_cycles
          + (Covirt_hw.Cpu.rdtsc ctx.Kitten.cpu - start);
        process.Process.state <- Process.Exited code;
        incr ran;
        loop ()
  in
  loop ();
  !ran

let run_queue_length t = Queue.length t.queue
let context_switches t = t.switches

let processes t =
  List.sort (fun a b -> compare a.Process.pid b.Process.pid) t.all
