(** Kitten processes.

    Kitten provides "a simple, lightweight, and POSIX-like
    environment": processes are spawned with an entry function, run to
    completion under the cooperative scheduler, and leave an exit
    code.  No demand paging, no swapping — memory was allocated
    contiguously up front, as the LWK philosophy dictates. *)

type state = Ready | Running | Exited of int

type t = {
  pid : int;
  name : string;
  entry : Kitten.context -> int;
  mutable state : state;
  mutable cpu_cycles : int;  (** accumulated on-core time *)
}

val create : pid:int -> name:string -> (Kitten.context -> int) -> t
val is_exited : t -> bool
val exit_code : t -> int option
val pp : Format.formatter -> t -> unit
