(** Contained-fault reports.

    When the hypervisor terminates an enclave (or silently drops an
    errant operation) it produces a report for the master control
    process — the paper's debugging-trace capability.  Reports are the
    observable artifact fault-injection tests assert on. *)

type kind =
  | Memory_violation
  | Errant_ipi
  | Msr_violation
  | Io_violation
  | Abort_fault
  | Queue_stall
      (** a core's command ring stayed full even after an NMI drain —
          the controller could not deliver a synchronization command *)
  | Watchdog_timeout
      (** the enclave showed no VM exits and no control-channel
          activity within the watchdog deadline (wedged, not crashed) *)
  | Sanitizer
      (** the shadow isolation sanitizer flagged an ownership-boundary
          crossing ([Covirt_hw.Sanitize]); always non-fatal — detection
          is the point, recovery policy is unchanged *)

type t = {
  enclave : int;
  cpu : int;
  tsc : int;
  kind : kind;
  fatal : bool;  (** true when the enclave was terminated *)
  detail : string Lazy.t;
      (** human-readable cause, rendered on demand: the hot dropped
          paths (errant ICR writes, suppressed port reads) build the
          thunk without formatting, so enforcement stays cheap unless
          someone actually reads the report *)
}

val kind_name : kind -> string
(** Stable short name of the report kind (["memory-violation"], ...). *)

val severity : t -> Covirt_sim.Trace.severity
(** The trace severity a report renders at: [Error] when fatal, [Warn]
    for dropped operations. *)

val rendered_detail : t -> trace:Covirt_sim.Trace.t -> string
(** [rendered_detail t ~trace] forces {!field-detail} only if [trace]
    would record an event at {!severity} — the check every diagnostic
    consumer must route through, so severity-filtered events keep their
    laziness.  Below the threshold it returns {!kind_name} instead. *)

val pp : Format.formatter -> t -> unit
(** Full rendering; forces [detail] unconditionally (use
    {!rendered_detail} on paths that may be severity-filtered). *)
