open Covirt_hw
open Covirt_pisces

type t = {
  machine : Machine.t;
  cpu : Cpu.t;
  vmcs : Vmcs.t;
  boot_params : Boot_params.covirt;
  whitelist : Whitelist.t;
  config : Config.t;
  report : Fault_report.t -> unit;
  queue : Command.queue;
  mutable flushes : int;
  mutable emulations : int;
}

let create ~machine ~cpu ~vmcs ~boot_params ~whitelist ~config ~report =
  {
    machine;
    cpu;
    vmcs;
    boot_params;
    whitelist;
    config;
    report;
    queue = Command.create_queue ();
    flushes = 0;
    emulations = 0;
  }

let queue t = t.queue
let cpu t = t.cpu
let vmcs t = t.vmcs
let flushes t = t.flushes
let emulations t = t.emulations

let make_report t ~kind ~fatal detail =
  (* the master control process's debugging record: every enforcement
     event also lands in the machine trace ("provided the ability to
     collect debugging traces when it did occur") — but the detail
     string only gets rendered if the trace sink would keep it *)
  let trace = t.machine.Machine.trace in
  let severity =
    if fatal then Covirt_sim.Trace.Error else Covirt_sim.Trace.Warn
  in
  if Covirt_sim.Trace.would_record trace ~severity then
    Covirt_sim.Trace.recordf trace ~tsc:(Cpu.rdtsc t.cpu) ~cpu:t.cpu.Cpu.id
      ~severity "covirt %s: %s" (Fault_report.kind_name kind)
      (Lazy.force detail);
  {
    Fault_report.enclave = t.vmcs.Vmcs.enclave;
    cpu = t.cpu.Cpu.id;
    tsc = Cpu.rdtsc t.cpu;
    kind;
    fatal;
    detail;
  }

let emulate_cost = 200

(* Observability families (interned once; cells are looked up per label
   because the enclave/cpu pair varies per hypervisor instance).  Sites
   guard on [!Metrics.on], keeping the disabled path to one branch. *)
let m_ipi = lazy (Covirt_obs.Metrics.counter "ipi.filter")
let m_shootdown = lazy (Covirt_obs.Metrics.counter "hv.tlb_shootdown")
let m_emul = lazy (Covirt_obs.Metrics.counter "hv.emulation")

let obs_incr t fam dim =
  if !Covirt_obs.Metrics.on then
    Covirt_obs.Metrics.add
      (Covirt_obs.Metrics.cell (Lazy.force fam)
         {
           Covirt_obs.Metrics.enclave = t.vmcs.Vmcs.enclave;
           cpu = t.cpu.Cpu.id;
           dim;
         })
      1

(* Drain the command queue: the controller already rewrote the
   hardware structures; we only activate/invalidate local state. *)
let drain_queue t =
  let rec loop killed =
    match Command.dequeue t.queue with
    | None -> killed
    | Some cmd ->
        Command.note_processed t.queue;
        let killed =
          match cmd with
          | Command.Flush_tlb region ->
              Tlb.flush_range t.cpu.Cpu.tlb region;
              t.flushes <- t.flushes + 1;
              if !Covirt_obs.Metrics.on then obs_incr t m_shootdown "range";
              Cpu.charge t.cpu 300;
              killed
          | Command.Flush_tlb_all ->
              Tlb.flush_all t.cpu.Cpu.tlb;
              t.flushes <- t.flushes + 1;
              if !Covirt_obs.Metrics.on then obs_incr t m_shootdown "all";
              Cpu.charge t.cpu 500;
              killed
          | Command.Reload_vmcs ->
              Cpu.charge t.cpu t.machine.Machine.model.Cost_model.vmcs_load;
              killed
          | Command.Whitelist_updated ->
              (* Decisions are made against the live structure; nothing
                 is cached core-locally. *)
              Cpu.charge t.cpu 100;
              killed
          | Command.Halt_core -> true
        in
        loop killed
  in
  loop false

let handle_exit t (reason : Vmcs.exit_reason) : Vmcs.action =
  match reason with
  | Vmcs.Ept_violation v ->
      let detail =
        lazy
          (Format.asprintf "EPT %s violation at gpa %a"
             (match v.Ept.access with
             | `Read -> "read"
             | `Write -> "write"
             | `Exec -> "exec")
             Addr.pp v.Ept.gpa)
      in
      t.report (make_report t ~kind:Fault_report.Memory_violation ~fatal:true detail);
      Vmcs.Kill { reason = Lazy.force detail }
  | Vmcs.Icr_write icr ->
      Cpu.charge t.cpu t.machine.Machine.model.Cost_model.icr_whitelist_check;
      if Whitelist.permits t.whitelist ~icr then begin
        if !Covirt_obs.Metrics.on then obs_incr t m_ipi "allowed";
        Vmcs.Resume
      end
      else begin
        Whitelist.note_dropped t.whitelist;
        if !Covirt_obs.Metrics.on then obs_incr t m_ipi "dropped";
        t.report
          (make_report t ~kind:Fault_report.Errant_ipi ~fatal:false
             (lazy (Format.asprintf "dropped %a" Apic.pp_icr icr)));
        Vmcs.Skip
      end
  | Vmcs.Msr_access { msr; write; _ } ->
      if write then begin
        let detail = lazy (Format.asprintf "write to protected MSR 0x%x" msr) in
        t.report
          (make_report t ~kind:Fault_report.Msr_violation ~fatal:true detail);
        Vmcs.Kill { reason = Lazy.force detail }
      end
      else begin
        (* Protected reads are emulated from the live register file. *)
        t.emulations <- t.emulations + 1;
        if !Covirt_obs.Metrics.on then obs_incr t m_emul "msr-read";
        Cpu.charge t.cpu emulate_cost;
        Vmcs.Resume
      end
  | Vmcs.Io_access { port; write; _ } ->
      if write then begin
        let detail =
          lazy (Format.asprintf "write to protected I/O port 0x%x" port)
        in
        t.report
          (make_report t ~kind:Fault_report.Io_violation ~fatal:true detail);
        Vmcs.Kill { reason = Lazy.force detail }
      end
      else begin
        t.report
          (make_report t ~kind:Fault_report.Io_violation ~fatal:false
             (lazy (Format.asprintf "suppressed read of protected port 0x%x" port)));
        Vmcs.Skip
      end
  | Vmcs.Cpuid | Vmcs.Xsetbv ->
      t.emulations <- t.emulations + 1;
      if !Covirt_obs.Metrics.on then
        obs_incr t m_emul (if reason = Vmcs.Cpuid then "cpuid" else "xsetbv");
      Cpu.charge t.cpu emulate_cost;
      Vmcs.Resume
  | Vmcs.Hlt ->
      (* Emulated halt: the core idles until the next event; nothing
         to charge beyond the exit itself. *)
      t.emulations <- t.emulations + 1;
      Vmcs.Resume
  | Vmcs.External_interrupt _ ->
      (* Re-inject into the guest (cost charged by the machine). *)
      Vmcs.Resume
  | Vmcs.Nmi_exit ->
      if drain_queue t then
        Vmcs.Kill { reason = "halted by controller" }
      else Vmcs.Skip
  | Vmcs.Abort { what } ->
      let detail = lazy (Format.asprintf "abort-class exception: %s" what) in
      t.report
        (make_report t ~kind:Fault_report.Abort_fault ~fatal:true detail);
      Vmcs.Kill { reason = Lazy.force detail }

let launch t =
  (* The execution context is minimal: a preallocated stack, no
     dynamic memory.  Setup cost covers serializing the pre-written
     VMCS onto the core. *)
  assert (
    t.boot_params.Boot_params.hypervisor_stack.Region.len
    = Boot_params.hypervisor_stack_bytes);
  t.vmcs.Vmcs.exit_handler <- Some (handle_exit t);
  Vmx.vmlaunch ~model:t.machine.Machine.model t.cpu t.vmcs
