(* See admission.mli.  All arithmetic is integer and driven by caller-
   supplied clocks, so admission decisions are deterministic and
   per-tenant: one tenant's traffic (or crash) can never change the
   token arithmetic of another's bucket. *)

type reject =
  | Boot_limit of { in_flight : int; limit : int }
  | Rate_limited of { tenant : int; tokens_milli : int }

let pp_reject ppf = function
  | Boot_limit { in_flight; limit } ->
      Format.fprintf ppf "boot-limit (in-flight %d of %d)" in_flight limit
  | Rate_limited { tenant; tokens_milli } ->
      Format.fprintf ppf "rate-limited (tenant %d, %d.%03d tokens)" tenant
        (tokens_milli / 1000) (tokens_milli mod 1000)

type token = { tok_tenant : int; mutable settled : bool }

let token_tenant tok = tok.tok_tenant

type bucket = { mutable level_milli : int; mutable last : int }

type t = {
  limit : int;
  capacity_milli : int;
  refill_cycles : int;
  buckets : (int, bucket) Hashtbl.t;
  mutable in_flight : int;
  mutable peak : int;
  mutable admitted : int;
  mutable rejected_boot : int;
  mutable rejected_rate : int;
}

let create ?(bucket_capacity = 8) ?(refill_cycles = 0) ~max_in_flight () =
  if max_in_flight <= 0 then invalid_arg "Admission.create: max_in_flight";
  if bucket_capacity <= 0 then invalid_arg "Admission.create: bucket_capacity";
  if refill_cycles < 0 then invalid_arg "Admission.create: refill_cycles";
  {
    limit = max_in_flight;
    capacity_milli = bucket_capacity * 1000;
    refill_cycles;
    buckets = Hashtbl.create 64;
    in_flight = 0;
    peak = 0;
    admitted = 0;
    rejected_boot = 0;
    rejected_rate = 0;
  }

let bucket t ~tenant ~now =
  match Hashtbl.find_opt t.buckets tenant with
  | Some b -> b
  | None ->
      (* A fresh tenant starts with a full bucket. *)
      let b = { level_milli = t.capacity_milli; last = now } in
      Hashtbl.add t.buckets tenant b;
      b

(* Whole tokens only; the cycle remainder stays banked in [last] so no
   refill credit is ever lost to integer division. *)
let refill t b ~now =
  if t.refill_cycles > 0 && now > b.last then begin
    let gained = (now - b.last) / t.refill_cycles in
    if gained > 0 then begin
      b.level_milli <- min t.capacity_milli (b.level_milli + (gained * 1000));
      b.last <- b.last + (gained * t.refill_cycles)
    end
  end

let take_token t ~tenant ~now =
  if t.refill_cycles = 0 then Ok ()
  else begin
    let b = bucket t ~tenant ~now in
    refill t b ~now;
    if b.level_milli >= 1000 then begin
      b.level_milli <- b.level_milli - 1000;
      Ok ()
    end
    else Error (Rate_limited { tenant; tokens_milli = b.level_milli })
  end

let admit_op t ~tenant ~now =
  match take_token t ~tenant ~now with
  | Ok () ->
      t.admitted <- t.admitted + 1;
      Ok ()
  | Error r ->
      t.rejected_rate <- t.rejected_rate + 1;
      Error r

let admit_boot t ~tenant ~now =
  if t.in_flight >= t.limit then begin
    t.rejected_boot <- t.rejected_boot + 1;
    Error (Boot_limit { in_flight = t.in_flight; limit = t.limit })
  end
  else
    match take_token t ~tenant ~now with
    | Error r ->
        t.rejected_rate <- t.rejected_rate + 1;
        Error r
    | Ok () ->
        t.in_flight <- t.in_flight + 1;
        if t.in_flight > t.peak then t.peak <- t.in_flight;
        t.admitted <- t.admitted + 1;
        Ok { tok_tenant = tenant; settled = false }

let settle t tok =
  if not tok.settled then begin
    tok.settled <- true;
    t.in_flight <- t.in_flight - 1
  end

let forget_tenant t ~tenant = Hashtbl.remove t.buckets tenant
let in_flight t = t.in_flight
let peak_in_flight t = t.peak
let max_in_flight t = t.limit
let admitted t = t.admitted
let rejected_boot_limit t = t.rejected_boot
let rejected_rate_limited t = t.rejected_rate
let tracked_tenants t = Hashtbl.length t.buckets
