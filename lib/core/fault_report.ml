type kind =
  | Memory_violation
  | Errant_ipi
  | Msr_violation
  | Io_violation
  | Abort_fault
  | Queue_stall
  | Watchdog_timeout
  | Sanitizer

type t = {
  enclave : int;
  cpu : int;
  tsc : int;
  kind : kind;
  fatal : bool;
  detail : string Lazy.t;
      (** rendered on demand — dropped-event paths (ICR drops,
          suppressed port reads) never pay the formatting unless a
          consumer actually reads it *)
}

let kind_name = function
  | Memory_violation -> "memory-violation"
  | Errant_ipi -> "errant-ipi"
  | Msr_violation -> "msr-violation"
  | Io_violation -> "io-violation"
  | Abort_fault -> "abort"
  | Queue_stall -> "queue-stall"
  | Watchdog_timeout -> "watchdog-timeout"
  | Sanitizer -> "sanitizer"

let severity t =
  if t.fatal then Covirt_sim.Trace.Error else Covirt_sim.Trace.Warn

let rendered_detail t ~trace =
  if Covirt_sim.Trace.would_record trace ~severity:(severity t) then
    Lazy.force t.detail
  else kind_name t.kind

let pp ppf t =
  Format.fprintf ppf "[tsc %d] enclave %d cpu %d %s%s: %s" t.tsc t.enclave
    t.cpu (kind_name t.kind)
    (if t.fatal then " (fatal)" else " (dropped)")
    (Lazy.force t.detail)
