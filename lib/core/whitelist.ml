open Covirt_hw

type t = {
  enclave_cores : int list;
  mutable allowed : (int * int) list;
  mutable dropped : int;
}

let create ~enclave_cores = { enclave_cores; allowed = []; dropped = 0 }

let grant t ~vector ~dest =
  if not (List.mem (vector, dest) t.allowed) then
    t.allowed <- (vector, dest) :: t.allowed

(* [dest] narrows the revocation to one (vector, dest) grant; without
   it every destination for the vector is dropped (full revocation of
   the vector). *)
let revoke ?dest t ~vector =
  t.allowed <-
    List.filter
      (fun (v, d) ->
        v <> vector || match dest with Some d' -> d <> d' | None -> false)
      t.allowed

let clear t = t.allowed <- []

let permits t ~icr =
  let { Apic.dest; vector; kind } = icr in
  let internal = List.mem dest t.enclave_cores in
  match kind with
  | Apic.Fixed -> internal || List.mem (vector, dest) t.allowed
  | Apic.Nmi | Apic.Init | Apic.Startup ->
      (* Reset-class and NMI IPIs never leave the enclave. *)
      internal

let note_dropped t = t.dropped <- t.dropped + 1
let dropped t = t.dropped
let grants t = t.allowed
