(** Host-side EPT management.

    The controller builds and mutates the enclave's nested page tables
    directly — "configuration modifications are performed by the
    controller by directly modifying the hardware-level data
    structures associated with the co-kernel's virtualization
    context".  All maps are identity with full permissions; contiguous
    ranges coalesce into 2M/1G leaves up to the configured cap.

    Every call charges the given host core for the EPT entry writes it
    performed — these costs land on the {e controller's} core, not the
    enclave's, which is the asynchronous-update property Fig. 4
    depends on. *)

open Covirt_hw

type t

val create : max_page:Addr.page_size -> t
val ept : t -> Ept.t

val map :
  Machine.t -> host_cpu:Cpu.t -> t -> Region.t -> unit
(** Identity-map a region (page-aligned; regions from the Pisces
    allocator and XEMEM frame lists always are). *)

val unmap : Machine.t -> host_cpu:Cpu.t -> t -> Region.t -> unit

val mapped_bytes : t -> int
val leaf_counts : t -> int * int * int
