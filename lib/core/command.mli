(** The controller-to-hypervisor command queue.

    "The Covirt hypervisor is managed via a simple command queue ...
    Commands are fixed-size messages containing update notifications
    directing the hypervisor to synchronize part of its local state."
    The queue is bounded (commands are fixed-size slots in a shared
    page) and signalled with NMI IPIs so the IRQ vector space stays
    identity-mapped.  Commands carry no configuration data — the
    controller already updated the hardware structures; the hypervisor
    only activates/invalidates. *)

open Covirt_hw

type command =
  | Flush_tlb of Region.t  (** invalidate translations for a range *)
  | Flush_tlb_all
  | Reload_vmcs  (** re-serialize the virtualization context *)
  | Whitelist_updated  (** drop any cached whitelist decisions *)
  | Halt_core

type queue

val slots : int
(** Queue capacity: 64 fixed-size slots. *)

val create_queue : unit -> queue

val enqueue : queue -> command -> (unit, string) result
(** Fails when the ring is full (the controller must drain-wait —
    surfacing this in the type keeps the protocol honest). *)

val dequeue : queue -> command option
val pending : queue -> int
val enqueued_total : queue -> int
val processed_total : queue -> int
val note_processed : queue -> unit
val pp_command : Format.formatter -> command -> unit
