(** The per-core Covirt hypervisor.

    "Each hypervisor context only supports a single CPU core and is
    unaware of other hypervisor instances managing other enclave
    CPUs."  A hypervisor owns one VMCS, one command queue and an 8KB
    stack; it initializes the core's virtualization context, launches
    the guest, and thereafter only runs on exits: enforcing the
    whitelist, emulating the few trapped instructions, draining the
    command queue on NMI doorbells, and terminating the enclave on
    abort-class violations. *)

open Covirt_hw
open Covirt_pisces

type t

val create :
  machine:Machine.t ->
  cpu:Cpu.t ->
  vmcs:Vmcs.t ->
  boot_params:Boot_params.covirt ->
  whitelist:Whitelist.t ->
  config:Config.t ->
  report:(Fault_report.t -> unit) ->
  t

val launch : t -> unit
(** Install the exit handler on the VMCS and perform the VM launch;
    the caller then jumps into the co-kernel entry point, which runs
    in VMX non-root mode. *)

val queue : t -> Command.queue
val cpu : t -> Cpu.t
val vmcs : t -> Vmcs.t
val flushes : t -> int
(** TLB flushes performed on behalf of controller commands. *)

val emulations : t -> int
(** cpuid/xsetbv/hlt emulation count. *)
