(** Constructing the guest context.

    Covirt "configures the virtualization context to mirror the
    hardware state that would have resulted if the co-kernel had been
    booted normally by Pisces": entry at the co-kernel start address,
    64-bit long mode, identity mappings, and the original Pisces
    boot-parameter address in the launch register.  The controller
    calls this before the core boots; the hypervisor merely loads the
    result. *)

open Covirt_hw
open Covirt_pisces

val build :
  enclave:Enclave.t ->
  params:Boot_params.pisces ->
  core:int ->
  config:Config.t ->
  ept:Ept.t option ->
  Vmcs.t
(** [ept] must be [Some] exactly when [config.memory] is set
    ([Invalid_argument] otherwise — a memory-protected VMCS without
    tables would be a controller bug). *)

val covirt_boot_params :
  params:Boot_params.pisces -> Boot_params.covirt
(** The replacement boot structure: VM configuration, command queue,
    hypervisor stack, and the pointer to the unmodified Pisces
    structure. *)
