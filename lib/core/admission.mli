(** Control-plane admission: bounded in-flight boots and per-tenant
    token-bucket rate limits.

    A dense co-kernel node serves thousands of tenants; the master
    control process must bound how much booting it has in flight (a
    boot pins host-side work and enclave resources until the co-kernel
    settles) and must stop one chatty tenant from starving the rest of
    the control channel.  Both policies live here, as a pure
    deterministic state machine:

    - {b in-flight boot bound}: at most [max_in_flight] boots between
      {!admit_boot} and {!settle}.  Excess requests get a typed
      {!reject} — the caller keeps no partial state, so a rejected
      boot is invisible to the isolation verifier.
    - {b per-tenant token buckets}: each tenant holds up to
      [bucket_capacity] tokens, regaining one every [refill_cycles]
      simulated cycles of {e its own} clock.  Every admitted operation
      spends one token.  [refill_cycles = 0] disables rate limiting.

    Clocks are supplied by the caller ([~now], in simulated cycles).
    Pass each tenant's own core clock: refill arithmetic then depends
    only on that tenant's history, so a fault (and recovery backoff)
    in one tenant cannot shift admission decisions — and therefore
    latencies — of its neighbours.  All state is integer; equal call
    sequences yield equal decisions, bit for bit.

    Destroy-time hygiene: buckets are per-tenant state — call
    {!forget_tenant} when a tenant is retired for good, or the table
    grows monotonically under churn (the same leak class the dense
    soak's quiesce check hunts). *)

type reject =
  | Boot_limit of { in_flight : int; limit : int }
      (** the in-flight boot bound is saturated *)
  | Rate_limited of { tenant : int; tokens_milli : int }
      (** the tenant's bucket is empty; [tokens_milli] is the residual
          level in thousandths of a token *)

val pp_reject : Format.formatter -> reject -> unit

type token
(** Proof of an admitted boot; hand it back with {!settle}. *)

val token_tenant : token -> int

type t

val create :
  ?bucket_capacity:int -> ?refill_cycles:int -> max_in_flight:int -> unit -> t
(** [bucket_capacity] defaults to 8 tokens; [refill_cycles] to 0
    (rate limiting off).  [Invalid_argument] on non-positive
    [max_in_flight]/[bucket_capacity] or negative [refill_cycles]. *)

val admit_op : t -> tenant:int -> now:int -> (unit, reject) result
(** Admit one non-boot control operation for [tenant], spending a
    token.  [now] is the tenant's clock in cycles. *)

val admit_boot : t -> tenant:int -> now:int -> (token, reject) result
(** Admit a boot: checks the global in-flight bound first, then the
    tenant's bucket.  On success the boot counts against the bound
    until the returned token is {!settle}d. *)

val settle : t -> token -> unit
(** The boot completed (or its enclave died): release its in-flight
    slot.  Idempotent per token. *)

val forget_tenant : t -> tenant:int -> unit
(** Drop the tenant's bucket (retired tenant; churn hygiene). *)

(** {2 Introspection} *)

val in_flight : t -> int
val peak_in_flight : t -> int
(** High-water mark of concurrent unsettled boots — test-asserted to
    never exceed {!max_in_flight}. *)

val max_in_flight : t -> int
val admitted : t -> int
val rejected_boot_limit : t -> int
val rejected_rate_limited : t -> int

val tracked_tenants : t -> int
(** Live bucket count (leak observability). *)
