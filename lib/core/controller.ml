open Covirt_hw
open Covirt_pisces

type instance = {
  enclave : Enclave.t;
  config : Config.t;
  ept_mgr : Ept_manager.t option;
  whitelist : Whitelist.t;
  mutable hypervisors : (int * Hypervisor.t) list;
  mutable reports : Fault_report.t list;
}

(* The exact closures this controller registered with the framework,
   kept so [detach] can remove them without disturbing hooks installed
   by other consumers. *)
type registration = {
  r_created : Enclave.t -> unit;
  r_pre_map : Enclave.t -> Region.t -> unit;
  r_post_unmap : Enclave.t -> Region.t -> unit;
  r_grant : Enclave.t -> vector:int -> peer_core:int -> unit;
  r_revoke : Enclave.t -> vector:int -> dest:int option -> unit;
  r_destroyed : Enclave.t -> unit;
}

type t = {
  pisces : Pisces.t;
  default_config : Config.t;
  overrides : (string, Config.t) Hashtbl.t;
  mutable instances : (int * instance) list;
  archived : (int, Fault_report.t list) Hashtbl.t;
      (* reports survive enclave destruction: they are the master
         control process's debugging record *)
  archived_drops : (int, int) Hashtbl.t;
      (* dropped-IPI counters, archived alongside the reports *)
  mutable subscribers : (Fault_report.t -> unit) list;
  mutable registered : registration option;
}

let pisces t = t.pisces
let default_config t = t.default_config
let instances t = List.map snd t.instances

let instance_for t ~enclave_id = List.assoc_opt enclave_id t.instances

let reports_for t ~enclave_id =
  match instance_for t ~enclave_id with
  | Some i -> List.rev i.reports
  | None ->
      List.rev (Option.value ~default:[] (Hashtbl.find_opt t.archived enclave_id))

let dropped_ipis t ~enclave_id =
  match instance_for t ~enclave_id with
  | Some i -> Whitelist.dropped i.whitelist
  | None ->
      Option.value ~default:0 (Hashtbl.find_opt t.archived_drops enclave_id)

let subscribe t f = t.subscribers <- t.subscribers @ [ f ]

(* Fault-report observability: a per-kind counter and an instant on the
   faulting (enclave, cpu) trace track. *)
let m_fault = lazy (Covirt_obs.Metrics.counter "fault.report")

let obs_report (report : Fault_report.t) =
  let kind = Fault_report.kind_name report.Fault_report.kind in
  if !Covirt_obs.Metrics.on then
    Covirt_obs.Metrics.add
      (Covirt_obs.Metrics.cell (Lazy.force m_fault)
         {
           Covirt_obs.Metrics.enclave = report.Fault_report.enclave;
           cpu = report.Fault_report.cpu;
           dim = kind;
         })
      1;
  if !Covirt_obs.Exporter.on then
    Covirt_obs.Span.instant
      ~name:("fault:" ^ kind)
      ~cat:"fault"
      ~args:[ ("fatal", string_of_bool report.Fault_report.fatal) ]
      ~pid:report.Fault_report.enclave ~tid:report.Fault_report.cpu
      ~ts:report.Fault_report.tsc ()

let record_report t (report : Fault_report.t) =
  if !Covirt_obs.Metrics.on || !Covirt_obs.Exporter.on then obs_report report;
  (match instance_for t ~enclave_id:report.Fault_report.enclave with
  | Some i -> i.reports <- report :: i.reports
  | None ->
      (* Already destroyed (e.g. a report raised during teardown):
         straight to the archive so it is never lost. *)
      Hashtbl.replace t.archived report.Fault_report.enclave
        (report
        :: Option.value ~default:[]
             (Hashtbl.find_opt t.archived report.Fault_report.enclave)));
  List.iter (fun f -> f report) t.subscribers

let total_flush_commands t =
  List.fold_left
    (fun acc (_, i) ->
      List.fold_left (fun a (_, hv) -> a + Hypervisor.flushes hv) acc
        i.hypervisors)
    0 t.instances

(* Shadow-sanitizer violations surface as non-fatal reports: the
   supervisor only reacts to fatal ones, so detection never perturbs
   recovery behavior (and record_report charges no cycles). *)
let sanitizer_report t (v : Sanitize.violation) =
  {
    Fault_report.enclave = v.Sanitize.enclave;
    cpu = v.Sanitize.cpu;
    tsc = Cpu.rdtsc (Pisces.host_cpu t.pisces);
    kind = Fault_report.Sanitizer;
    fatal = false;
    detail = lazy (Format.asprintf "%a" Sanitize.pp_violation v);
  }

let config_for t enclave =
  Option.value ~default:t.default_config
    (Hashtbl.find_opt t.overrides enclave.Enclave.name)

let set_override t ~enclave_name config =
  Hashtbl.replace t.overrides enclave_name config

(* ------------------------------------------------------------------ *)
(* Hook implementations.                                               *)

let on_created t enclave =
  let config = config_for t enclave in
  if config.Config.enabled then begin
    let ept_mgr =
      if config.Config.memory then
        Some (Ept_manager.create ~max_page:config.Config.max_ept_page)
      else None
    in
    let instance =
      {
        enclave;
        config;
        ept_mgr;
        whitelist = Whitelist.create ~enclave_cores:enclave.Enclave.cores;
        hypervisors = [];
        reports = [];
      }
    in
    (* Seed the shadow sanitizer before the first EPT write, so the
       pre-built identity map is checked against a blessed set rather
       than flagged. *)
    if !Sanitize.on then begin
      Sanitize.note_enclave ~id:enclave.Enclave.id
        (Region.Set.to_list (Enclave.accessible enclave));
      match ept_mgr with
      | Some mgr ->
          Sanitize.note_ept
            ~ept_uid:(Ept.uid (Ept_manager.ept mgr))
            ~id:enclave.Enclave.id
      | None -> ()
    end;
    (* Pre-build the identity map of the assigned memory before any
       core can boot. *)
    (match ept_mgr with
    | Some mgr ->
        let machine = Pisces.machine t.pisces in
        Region.Set.iter
          (fun region ->
            Ept_manager.map machine ~host_cpu:(Pisces.host_cpu t.pisces) mgr
              region)
          enclave.Enclave.memory
    | None -> ());
    t.instances <- (enclave.Enclave.id, instance) :: t.instances
  end

let interpose t enclave (cpu : Cpu.t) ~bsp jump =
  ignore bsp;
  match instance_for t ~enclave_id:enclave.Enclave.id with
  | None -> jump () (* native boot *)
  | Some instance ->
      let machine = Pisces.machine t.pisces in
      let params =
        match enclave.Enclave.boot_params with
        | Some p -> p
        | None -> invalid_arg "Covirt interposer: enclave has no boot params"
      in
      (* The controller writes the VMCS and the Covirt boot-parameter
         structure before the CPU starts. *)
      let vmcs =
        Vmcs_builder.build ~enclave ~params ~core:cpu.Cpu.id
          ~config:instance.config
          ~ept:(Option.map Ept_manager.ept instance.ept_mgr)
      in
      let boot_params = Vmcs_builder.covirt_boot_params ~params in
      let hv =
        Hypervisor.create ~machine ~cpu ~vmcs ~boot_params
          ~whitelist:instance.whitelist ~config:instance.config
          ~report:(fun r -> record_report t r)
      in
      instance.hypervisors <- (cpu.Cpu.id, hv) :: instance.hypervisors;
      Hypervisor.launch hv;
      (* VM launch lands directly at the co-kernel entry point, with
         the original Pisces boot parameters in a register. *)
      jump ()

let with_ept instance f =
  match instance.ept_mgr with Some mgr -> f mgr | None -> ()

let on_pre_map t enclave region =
  match instance_for t ~enclave_id:enclave.Enclave.id with
  | None -> ()
  | Some instance ->
      if !Sanitize.on then Sanitize.allow ~id:enclave.Enclave.id region;
      with_ept instance (fun mgr ->
          let machine = Pisces.machine t.pisces in
          (* Map first, transmit after: the enclave only learns of
             memory that is already accessible.  No flush needed — no
             core can hold a stale translation for a new mapping. *)
          Ept_manager.map machine ~host_cpu:(Pisces.host_cpu t.pisces) mgr
            region)

let signal_all_cores t instance command =
  let machine = Pisces.machine t.pisces in
  List.iter
    (fun (core, hv) ->
      (match Command.enqueue (Hypervisor.queue hv) command with
      | Ok () -> ()
      | Error _ -> (
          (* A full ring means the core is wedged; drain by NMI first. *)
          Machine.post_host_nmi machine ~dest:core;
          match Command.enqueue (Hypervisor.queue hv) command with
          | Ok () -> ()
          | Error why ->
              (* Still full after the drain: the core is not making
                 progress and a synchronization command was lost.  This
                 must never pass silently — it is exactly the wedged
                 state the watchdog exists for. *)
              record_report t
                {
                  Fault_report.enclave = instance.enclave.Enclave.id;
                  cpu = core;
                  tsc = Cpu.rdtsc (Pisces.host_cpu t.pisces);
                  kind = Fault_report.Queue_stall;
                  fatal = false;
                  detail =
                    lazy
                      (Format.asprintf
                         "command ring on core %d still full after NMI drain \
                          (%s); %a lost"
                         core why Command.pp_command command);
                }));
      Machine.post_host_nmi machine ~dest:core)
    instance.hypervisors

let on_post_unmap t enclave region =
  match instance_for t ~enclave_id:enclave.Enclave.id with
  | None -> ()
  | Some instance ->
      with_ept instance (fun mgr ->
          let machine = Pisces.machine t.pisces in
          (* The co-kernel acked removal; pull the mapping, then force
             every enclave core to flush before the frames can be
             reused by anyone else. *)
          Ept_manager.unmap machine ~host_cpu:(Pisces.host_cpu t.pisces) mgr
            region;
          signal_all_cores t instance (Command.Flush_tlb region);
          (* The NMIs are synchronous in the simulation; assert the
             protocol's postcondition anyway. *)
          List.iter
            (fun (_, hv) -> assert (Command.pending (Hypervisor.queue hv) = 0))
            instance.hypervisors);
      if !Sanitize.on then Sanitize.disallow ~id:enclave.Enclave.id region

let on_vector_grant t enclave ~vector ~peer_core =
  match instance_for t ~enclave_id:enclave.Enclave.id with
  | None -> ()
  | Some instance ->
      Whitelist.grant instance.whitelist ~vector ~dest:peer_core;
      Cpu.charge (Pisces.host_cpu t.pisces) 150

let on_vector_revoke t enclave ~vector ~dest =
  match instance_for t ~enclave_id:enclave.Enclave.id with
  | None -> ()
  | Some instance ->
      Whitelist.revoke ?dest instance.whitelist ~vector;
      (* Revocation must synchronize: a core might be mid-decision. *)
      signal_all_cores t instance Command.Whitelist_updated

let on_destroyed t enclave =
  (match instance_for t ~enclave_id:enclave.Enclave.id with
  | Some i ->
      Hashtbl.replace t.archived enclave.Enclave.id i.reports;
      (* The whitelist dies with the instance; keep its dropped-IPI
         count so post-mortem queries stay truthful. *)
      Hashtbl.replace t.archived_drops enclave.Enclave.id
        (Whitelist.dropped i.whitelist)
  | None -> ());
  t.instances <-
    List.filter (fun (id, _) -> id <> enclave.Enclave.id) t.instances;
  if !Sanitize.on then Sanitize.drop_enclave ~id:enclave.Enclave.id;
  (* Grants aimed at the dead enclave's cores are stale the moment
     those cores return to the host; prune them from every surviving
     instance so the static verifier's stale-grant check starts from a
     clean slate. *)
  let dead = enclave.Enclave.cores in
  List.iter
    (fun (_, inst) ->
      let stale =
        List.filter
          (fun (_, d) -> List.mem d dead)
          (Whitelist.grants inst.whitelist)
      in
      if stale <> [] then begin
        List.iter
          (fun (vector, dest) ->
            Whitelist.revoke ~dest inst.whitelist ~vector)
          stale;
        signal_all_cores t inst Command.Whitelist_updated
      end)
    t.instances

(* ------------------------------------------------------------------ *)

let attach pisces ~config =
  (* Observability knobs are enable-only: one instrumented controller
     turns recording on, and a later plain attach cannot silence it. *)
  if config.Config.sanitize then Sanitize.request ();
  if config.Config.observe || config.Config.trace_spans then
    Covirt_obs.configure
      ~cycles_per_us:((Pisces.machine pisces).Machine.model.Cost_model.ghz *. 1000.)
      ~observe:config.Config.observe ~trace_spans:config.Config.trace_spans ();
  let t =
    {
      pisces;
      default_config = config;
      overrides = Hashtbl.create 4;
      instances = [];
      archived = Hashtbl.create 4;
      archived_drops = Hashtbl.create 4;
      subscribers = [];
      registered = None;
    }
  in
  let reg =
    {
      r_created = on_created t;
      r_pre_map = on_pre_map t;
      r_post_unmap = on_post_unmap t;
      r_grant = (fun e ~vector ~peer_core -> on_vector_grant t e ~vector ~peer_core);
      r_revoke = (fun e ~vector ~dest -> on_vector_revoke t e ~vector ~dest);
      r_destroyed = on_destroyed t;
    }
  in
  t.registered <- Some reg;
  (* Arm the shadow sanitizer for this machine if anyone asked for it
     (via Config.sanitize here, or Sanitize.request from a harness). *)
  if Sanitize.requested () then begin
    let mem = (Pisces.machine pisces).Machine.mem in
    Sanitize.enable ~mem_uid:(Phys_mem.uid mem)
      ~assignments:(Phys_mem.snapshot mem);
    Sanitize.set_on_violation (fun v -> record_report t (sanitizer_report t v))
  end;
  let hooks = Pisces.hooks pisces in
  hooks.Hooks.on_enclave_created <-
    hooks.Hooks.on_enclave_created @ [ reg.r_created ];
  hooks.Hooks.pre_memory_map <-
    hooks.Hooks.pre_memory_map @ [ reg.r_pre_map ];
  hooks.Hooks.post_memory_unmap <-
    hooks.Hooks.post_memory_unmap @ [ reg.r_post_unmap ];
  hooks.Hooks.pre_vector_grant <-
    hooks.Hooks.pre_vector_grant @ [ reg.r_grant ];
  hooks.Hooks.post_vector_revoke <-
    hooks.Hooks.post_vector_revoke @ [ reg.r_revoke ];
  hooks.Hooks.on_enclave_destroyed <-
    hooks.Hooks.on_enclave_destroyed @ [ reg.r_destroyed ];
  Hooks.set_boot_interposer hooks (fun e cpu ~bsp jump ->
      interpose t e cpu ~bsp jump);
  t

let detach t =
  let hooks = Pisces.hooks t.pisces in
  (* Remove only the closures this controller registered (by physical
     identity); other hook consumers survive a detach/re-attach cycle. *)
  (match t.registered with
  | None -> ()
  | Some reg ->
      let without mine = List.filter (fun f -> f != mine) in
      hooks.Hooks.on_enclave_created <-
        without reg.r_created hooks.Hooks.on_enclave_created;
      hooks.Hooks.pre_memory_map <-
        without reg.r_pre_map hooks.Hooks.pre_memory_map;
      hooks.Hooks.post_memory_unmap <-
        without reg.r_post_unmap hooks.Hooks.post_memory_unmap;
      hooks.Hooks.pre_vector_grant <-
        without reg.r_grant hooks.Hooks.pre_vector_grant;
      hooks.Hooks.post_vector_revoke <-
        without reg.r_revoke hooks.Hooks.post_vector_revoke;
      hooks.Hooks.on_enclave_destroyed <-
        without reg.r_destroyed hooks.Hooks.on_enclave_destroyed;
      t.registered <- None);
  (* No grant state may outlive the controller that installed it —
     the verifier's stale-grant check starts clean after a detach. *)
  List.iter (fun (_, inst) -> Whitelist.clear inst.whitelist) t.instances;
  Hooks.clear_boot_interposer hooks
