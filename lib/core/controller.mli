(** The Covirt controller module.

    The host-side half of the split architecture.  It attaches to the
    co-kernel framework's resource-management hook points and
    translates resource events into virtualization-context updates:

    - enclave creation: build the EPT identity map of the assigned
      memory (before any core boots);
    - boot: interpose the hypervisor into the CPU boot path
      (pre-writing the VMCS, launching, then jumping to the co-kernel);
    - memory/XEMEM map: update the EPT {e before} the page list is
      transmitted — no hypervisor involvement (nothing stale can be
      cached for a new mapping);
    - memory/XEMEM unmap: after the co-kernel's ack, remove the EPT
      entries, push flush commands to every core's queue and signal
      with NMI doorbells; only then does control return so the host
      can reclaim the frames;
    - vector grant/revoke: update the whitelist (revokes also
      synchronize via the queue).

    Configuration updates are thus asynchronous with respect to the
    enclave's execution: all computation happens here on the host
    core, and the hypervisor is only invoked to activate changes. *)

open Covirt_pisces

type instance = {
  enclave : Enclave.t;
  config : Config.t;
  ept_mgr : Ept_manager.t option;
  whitelist : Whitelist.t;
  mutable hypervisors : (int * Hypervisor.t) list;  (** core -> hv *)
  mutable reports : Fault_report.t list;  (** newest first *)
}

type t

val attach : Pisces.t -> config:Config.t -> t
(** Register all hooks (including the boot interposer) with the
    framework.  [config] applies to every subsequently created enclave
    unless overridden by name. *)

val set_override : t -> enclave_name:string -> Config.t -> unit

val subscribe : t -> (Fault_report.t -> unit) -> unit
(** Register an observer called synchronously for every fault report
    the controller records (hypervisor enforcement events, queue
    stalls, watchdog timeouts).  Observers are called in subscription
    order, after the report has been stored.  This is the feed the
    {!Covirt_resilience.Supervisor} recovery machinery runs on. *)

val record_report : t -> Fault_report.t -> unit
(** Record an externally produced report (e.g. a watchdog timeout)
    against its enclave — into the live instance if one exists,
    straight into the post-mortem archive otherwise — and notify
    subscribers. *)

val pisces : t -> Pisces.t
val default_config : t -> Config.t
val instances : t -> instance list
val instance_for : t -> enclave_id:int -> instance option
val reports_for : t -> enclave_id:int -> Fault_report.t list

(** Dropped-IPI count for a live enclave, or the archived count for a
    destroyed one (the whitelist's counter is preserved at teardown). *)
val dropped_ipis : t -> enclave_id:int -> int
val total_flush_commands : t -> int
val detach : t -> unit
(** Unregister the boot interposer and remove {e this controller's}
    hooks from the framework's hook lists (hooks installed by other
    consumers are left in place); used when reconfiguring a framework
    between experiments. *)
