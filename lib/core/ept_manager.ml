open Covirt_hw

type t = { ept : Ept.t }

let create ~max_page = { ept = Ept.create ~max_page () }
let ept t = t.ept

(* Entry-write counter, labeled by operation (map/unmap): the cost the
   paper attributes to EPT maintenance, now visible per run. *)
let m_writes = lazy (Covirt_obs.Metrics.counter "ept.entry_writes")

let charge_writes ?(op = "map") machine ~host_cpu t f =
  let before = Ept.entry_writes t.ept in
  f ();
  let writes = Ept.entry_writes t.ept - before in
  if !Covirt_obs.Metrics.on then
    Covirt_obs.Metrics.add
      (Covirt_obs.Metrics.cell (Lazy.force m_writes)
         { Covirt_obs.Metrics.no_label with dim = op })
      writes;
  Cpu.charge host_cpu
    (writes * machine.Machine.model.Cost_model.ept_entry_update)

let map machine ~host_cpu t region =
  charge_writes ~op:"map" machine ~host_cpu t (fun () ->
      Ept.map_region t.ept region)

let unmap machine ~host_cpu t region =
  charge_writes ~op:"unmap" machine ~host_cpu t (fun () ->
      Ept.unmap_region t.ept region)

let mapped_bytes t = Region.Set.total_bytes (Ept.regions t.ept)
let leaf_counts t = Ept.leaf_counts t.ept
