open Covirt_hw

type t = { ept : Ept.t }

let create ~max_page = { ept = Ept.create ~max_page () }
let ept t = t.ept

let charge_writes machine ~host_cpu t f =
  let before = Ept.entry_writes t.ept in
  f ();
  let writes = Ept.entry_writes t.ept - before in
  Cpu.charge host_cpu
    (writes * machine.Machine.model.Cost_model.ept_entry_update)

let map machine ~host_cpu t region =
  charge_writes machine ~host_cpu t (fun () -> Ept.map_region t.ept region)

let unmap machine ~host_cpu t region =
  charge_writes machine ~host_cpu t (fun () -> Ept.unmap_region t.ept region)

let mapped_bytes t = Region.Set.total_bytes (Ept.regions t.ept)
let leaf_counts t = Ept.leaf_counts t.ept
