open Covirt_hw

type ipi_mode = Ipi_off | Ipi_vapic_full | Ipi_piv

type t = {
  enabled : bool;
  memory : bool;
  ipi : ipi_mode;
  msr : bool;
  io : bool;
  max_ept_page : Addr.page_size;
  restart_budget : int;
  backoff_base : int;
  backoff_factor : int;
  backoff_cap : int;
  stability_window : int;
  watchdog_deadline : int;
  observe : bool;
  trace_spans : bool;
  sanitize : bool;
}

let native =
  {
    enabled = false;
    memory = false;
    ipi = Ipi_off;
    msr = false;
    io = false;
    max_ept_page = Addr.Page_1g;
    (* Supervision defaults: a handful of restarts with exponential
       backoff starting at 100k cycles (~40 µs at 2.4 GHz) capped at
       ~10 ms, and a watchdog deadline of 5M cycles of silence. *)
    restart_budget = 5;
    backoff_base = 100_000;
    backoff_factor = 2;
    backoff_cap = 25_000_000;
    stability_window = 50_000_000;
    watchdog_deadline = 5_000_000;
    (* Observability is opt-in: the disabled path must stay a single
       branch per instrumentation site. *)
    observe = false;
    trace_spans = false;
    (* The shadow sanitizer follows the same opt-in contract. *)
    sanitize = false;
  }

let none = { native with enabled = true }
let mem = { none with memory = true }
let ipi = { none with ipi = Ipi_piv }
let mem_ipi = { mem with ipi = Ipi_piv }
let full = { mem_ipi with msr = true; io = true }

let presets =
  [ ("native", native); ("none", none); ("mem", mem); ("ipi", ipi);
    ("mem+ipi", mem_ipi) ]

let name t =
  if not t.enabled then "native"
  else
    let features =
      List.filter_map
        (fun (label, on) -> if on then Some label else None)
        [
          ("mem", t.memory);
          ( (match t.ipi with
            | Ipi_off -> ""
            | Ipi_vapic_full -> "ipi/full"
            | Ipi_piv -> "ipi"),
            t.ipi <> Ipi_off );
          ("msr", t.msr);
          ("io", t.io);
        ]
    in
    if features = [] then "none" else String.concat "+" features

let pp ppf t = Format.pp_print_string ppf (name t)
