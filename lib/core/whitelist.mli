(** IPI transmission whitelist.

    The hypervisor "compare[s] the destination CPU and vector against
    a whitelist in order to verify that the IPI operation is
    permitted, and any errant IPIs are simply dropped".  Intra-enclave
    fixed IPIs are always permitted (the enclave owns those cores);
    cross-enclave doorbells require an explicit (vector, destination)
    grant, which the controller installs when Hobbes grants the
    vector.  INIT/SIPI/NMI never cross the enclave boundary. *)

open Covirt_hw

type t

val create : enclave_cores:int list -> t
val grant : t -> vector:int -> dest:int -> unit
val revoke : t -> vector:int -> unit
val permits : t -> icr:Apic.icr -> bool
val note_dropped : t -> unit
val dropped : t -> int
val grants : t -> (int * int) list
(** Current (vector, dest) pairs. *)
