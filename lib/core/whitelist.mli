(** IPI transmission whitelist.

    The hypervisor "compare[s] the destination CPU and vector against
    a whitelist in order to verify that the IPI operation is
    permitted, and any errant IPIs are simply dropped".  Intra-enclave
    fixed IPIs are always permitted (the enclave owns those cores);
    cross-enclave doorbells require an explicit (vector, destination)
    grant, which the controller installs when Hobbes grants the
    vector.  INIT/SIPI/NMI never cross the enclave boundary. *)

open Covirt_hw

type t

val create : enclave_cores:int list -> t
val grant : t -> vector:int -> dest:int -> unit
val revoke : ?dest:int -> t -> vector:int -> unit
(** Remove the grant for [(vector, dest)] only; with [dest] omitted,
    remove every destination granted that vector.  Other grants are
    untouched — revoking one peer's doorbell must not kill the same
    vector granted to a different core. *)

val clear : t -> unit
(** Drop every grant (controller detach — no stale entries may outlive
    the controller that installed them). *)

val permits : t -> icr:Apic.icr -> bool
val note_dropped : t -> unit
val dropped : t -> int
val grants : t -> (int * int) list
(** Current (vector, dest) pairs. *)
