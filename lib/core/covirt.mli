(** Covirt: lightweight fault isolation and resource protection for
    co-kernels.

    The public facade.  Typical use:

    {[
      let machine = Machine.create ~zones:2 ~cores_per_zone:4 ... () in
      let hobbes = Hobbes.create machine ~host_core:0 in
      let covirt = Covirt.enable (Hobbes.pisces hobbes) ~config:Covirt.Config.mem_ipi in
      (* every enclave launched from here boots under the hypervisor *)
    ]}

    Protection is transparent: co-kernels boot and run unchanged, and
    cross-enclave interfaces (XEMEM, IPC doorbells, syscall
    forwarding) work exactly as natively — the controller keeps the
    virtualization configuration synchronized with the resource
    assignment underneath them. *)

open Covirt_pisces

module Config = Config
module Command = Command
module Whitelist = Whitelist
module Fault_report = Fault_report
module Ept_manager = Ept_manager
module Vmcs_builder = Vmcs_builder
module Hypervisor = Hypervisor
module Controller = Controller
module Admission = Admission

val enable : Pisces.t -> config:Config.t -> Controller.t
(** Attach the controller module to the co-kernel framework.  Applies
    to enclaves created afterwards. *)

val disable : Controller.t -> unit

val reports : Controller.t -> enclave_id:int -> Fault_report.t list
(** Fault reports collected by the enclave's hypervisors, oldest
    first. *)

val dropped_ipis : Controller.t -> enclave_id:int -> int

val subscribe : Controller.t -> (Fault_report.t -> unit) -> unit
(** Observe every fault report as it is recorded (see
    {!Controller.subscribe}). *)

val protection_summary : Controller.t -> string
(** Human-readable status of all protected enclaves. *)
