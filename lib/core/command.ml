open Covirt_hw

type command =
  | Flush_tlb of Region.t
  | Flush_tlb_all
  | Reload_vmcs
  | Whitelist_updated
  | Halt_core

type queue = {
  ring : command Queue.t;
  mutable enqueued : int;
  mutable processed : int;
}

let slots = 64

let create_queue () = { ring = Queue.create (); enqueued = 0; processed = 0 }

let enqueue q cmd =
  if Queue.length q.ring >= slots then Error "command queue full"
  else begin
    Queue.push cmd q.ring;
    q.enqueued <- q.enqueued + 1;
    Ok ()
  end

let dequeue q = Queue.take_opt q.ring
let pending q = Queue.length q.ring
let enqueued_total q = q.enqueued
let processed_total q = q.processed
let note_processed q = q.processed <- q.processed + 1

let pp_command ppf = function
  | Flush_tlb r -> Format.fprintf ppf "flush-tlb %a" Region.pp r
  | Flush_tlb_all -> Format.pp_print_string ppf "flush-tlb-all"
  | Reload_vmcs -> Format.pp_print_string ppf "reload-vmcs"
  | Whitelist_updated -> Format.pp_print_string ppf "whitelist-updated"
  | Halt_core -> Format.pp_print_string ppf "halt-core"
