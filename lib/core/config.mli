(** Covirt protection-feature configuration.

    Covirt "implements a configurable and modular approach to resource
    protection that allows runtime configuration of hypervisor
    protection features" — should a feature cost too much for a given
    workload, the operator disables it at enclave initialization.
    These records are those switches; the five presets are the
    configurations the paper's evaluation sweeps. *)

open Covirt_hw

type ipi_mode =
  | Ipi_off
  | Ipi_vapic_full  (** trap-and-emulate APIC; incoming interrupts exit *)
  | Ipi_piv  (** posted-interrupt delivery; exitless incoming IPIs *)

type t = {
  enabled : bool;  (** false = boot natively, no hypervisor at all *)
  memory : bool;  (** EPT protection *)
  ipi : ipi_mode;
  msr : bool;
  io : bool;
  max_ept_page : Addr.page_size;
      (** coalescing cap; [Page_1g] normally, [Page_4k] for the
          ablation *)
  (* Supervision knobs, consumed by [Covirt_resilience.Supervisor] and
     [Covirt_resilience.Watchdog]; they have no effect on the
     protection features themselves. *)
  restart_budget : int;
      (** restarts a crashing enclave may consume before the circuit
          breaker quarantines it permanently *)
  backoff_base : int;  (** first relaunch delay, in simulated cycles *)
  backoff_factor : int;  (** exponential backoff multiplier *)
  backoff_cap : int;  (** upper bound on any single backoff delay *)
  stability_window : int;
      (** cycles an enclave must stay healthy after a relaunch before
          its consumed-restart counter resets (anti-flapping) *)
  watchdog_deadline : int;
      (** cycles of no VM exits and no control-channel traffic before
          the watchdog declares the enclave wedged *)
  observe : bool;
      (** enable the [Covirt_obs] metrics registry + profiler when a
          controller attaches with this config.  Enable-only: a later
          attach with [observe = false] does not switch recording back
          off.  Recording is pure measurement — it never charges
          simulated cycles, so results stay bit-identical. *)
  trace_spans : bool;
      (** additionally collect Chrome-trace spans ([Covirt_obs.Span])
          for every VM exit and fault event; export with
          [covirt-ctl stats --trace-out] or [bench --trace-out] *)
  sanitize : bool;
      (** arm the shadow isolation sanitizer
          ([Covirt_hw.Sanitize] / [Covirt_analysis.Shadow]) when a
          controller attaches with this config.  Same contract as
          [observe]: enable-only, zero simulated-cycle cost, golden
          transcript stays byte-identical. *)
}

val native : t
(** No Covirt: the baseline the paper calls "native". *)

val none : t
(** Hypervisor interposed, no protection features ("no-feature"). *)

val mem : t
val ipi : t
val mem_ipi : t
val full : t
(** memory + IPI + MSR + I/O. *)

val presets : (string * t) list
(** The evaluation sweep, in paper order: native, none, mem, ipi,
    mem+ipi. *)

val name : t -> string
val pp : Format.formatter -> t -> unit
