open Covirt_hw
open Covirt_pisces

let piv_notification_vector = 0xf2

let build ~enclave ~params ~core ~config ~ept =
  (match (config.Config.memory, ept) with
  | true, None -> invalid_arg "Vmcs_builder.build: memory protection needs EPT"
  | false, Some _ -> invalid_arg "Vmcs_builder.build: EPT without protection"
  | true, Some _ | false, None -> ());
  let controls =
    {
      Vmcs.ept;
      msr_bitmap =
        (if config.Config.msr then Some (Msr.Bitmap.default_sensitive ())
         else None);
      io_bitmap =
        (if config.Config.io then Some (Io_port.Bitmap.default_sensitive ())
         else None);
      vapic =
        (match config.Config.ipi with
        | Config.Ipi_off -> Vmcs.Vapic_off
        | Config.Ipi_vapic_full -> Vmcs.Vapic_full
        | Config.Ipi_piv ->
            Vmcs.Vapic_piv { notification_vector = piv_notification_vector });
    }
  in
  let guest =
    {
      Vmcs.entry_rip = params.Boot_params.entry_addr;
      boot_params_gpa = params.Boot_params.entry_addr - Addr.page_size_4k;
      long_mode = true;
    }
  in
  Vmcs.create ~vcpu:core ~enclave:enclave.Enclave.id ~guest ~controls

let covirt_boot_params ~params =
  let first_region =
    match params.Boot_params.assigned_memory with
    | r :: _ -> r
    | [] -> invalid_arg "Vmcs_builder.covirt_boot_params: no memory"
  in
  (* The Covirt structures live in the pages just below the co-kernel
     image, inside the enclave's first region. *)
  let base = first_region.Region.base in
  {
    Boot_params.pisces_params = params;
    vmcs_addr = base + (2 * Addr.page_size_4k);
    command_queue_addr = base + (3 * Addr.page_size_4k);
    hypervisor_stack =
      Region.make
        ~base:(base + (4 * Addr.page_size_4k))
        ~len:Boot_params.hypervisor_stack_bytes;
  }
