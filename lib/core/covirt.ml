open Covirt_pisces

module Config = Config
module Command = Command
module Whitelist = Whitelist
module Fault_report = Fault_report
module Ept_manager = Ept_manager
module Vmcs_builder = Vmcs_builder
module Hypervisor = Hypervisor
module Controller = Controller
module Admission = Admission

let enable pisces ~config = Controller.attach pisces ~config
let disable controller = Controller.detach controller
let reports controller ~enclave_id = Controller.reports_for controller ~enclave_id
let dropped_ipis controller ~enclave_id =
  Controller.dropped_ipis controller ~enclave_id

let subscribe controller f = Controller.subscribe controller f

let protection_summary controller =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  List.iter
    (fun (i : Controller.instance) ->
      let n4k, n2m, n1g =
        match i.Controller.ept_mgr with
        | Some mgr -> Ept_manager.leaf_counts mgr
        | None -> (0, 0, 0)
      in
      Format.fprintf ppf
        "enclave %d (%s): config=%a ept-leaves=4K:%d/2M:%d/1G:%d \
         dropped-ipis=%d reports=%d@."
        i.Controller.enclave.Enclave.id i.Controller.enclave.Enclave.name
        Config.pp i.Controller.config n4k n2m n1g
        (Whitelist.dropped i.Controller.whitelist)
        (List.length i.Controller.reports))
    (Controller.instances controller);
  Format.pp_print_flush ppf ();
  Buffer.contents buf
