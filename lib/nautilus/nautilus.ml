open Covirt_hw
open Covirt_pisces

type t = {
  machine : Machine.t;
  enclave : Enclave.t;
  page_table : Guest_pt.t;
  mutable threads : int;
}

let enclave_id t = t.enclave.Enclave.id
let page_table t = t.page_table
let threads_run t = t.threads

let handle_host_msg t msg =
  (* A freshly ported kernel: ack everything, implement nothing. *)
  let bsp = Machine.cpu t.machine (Enclave.bsp t.enclave) in
  match msg with
  | Message.Syscall_reply _ -> ()
  | other ->
      (match other with
      | Message.Add_memory { region; _ } -> Guest_pt.map_region t.page_table region
      | Message.Remove_memory { region; _ } ->
          Guest_pt.unmap_region t.page_table region;
          List.iter
            (fun core -> Tlb.flush_range (Machine.cpu t.machine core).Cpu.tlb region)
            t.enclave.Enclave.cores
      | Message.Assign_device { window; _ } ->
          Guest_pt.map_region t.page_table window
      | Message.Revoke_device { window; _ } ->
          Guest_pt.unmap_region t.page_table window
      | Message.Xemem_map _ | Message.Xemem_unmap _
      | Message.Grant_ipi_vector _ | Message.Revoke_ipi_vector _
      | Message.Shutdown _ | Message.Syscall_reply _ -> ());
      Ctrl_channel.send_to_host t.machine ~enclave_cpu:bsp
        t.enclave.Enclave.channel
        (Message.Ack { seq = Message.seq_of_host_msg other })

let boot_core_body instance_ref machine enclave (cpu : Cpu.t) ~bsp params =
  Machine.cpuid machine cpu;
  Machine.xsetbv machine cpu;
  Cpu.charge cpu 30_000 (* aerokernel bring-up is lean *);
  if bsp then begin
    (* Precise mappings: exactly the assigned regions, nothing else. *)
    let pt = Guest_pt.create () in
    List.iter
      (Guest_pt.map_region pt)
      params.Boot_params.assigned_memory;
    let t = { machine; enclave; page_table = pt; threads = 0 } in
    instance_ref := Some t;
    enclave.Enclave.msg_handler <- Some (handle_host_msg t);
    Ctrl_channel.send_to_host machine ~enclave_cpu:cpu enclave.Enclave.channel
      Message.Ready
  end;
  (match !instance_ref with
  | Some t -> cpu.Cpu.guest_pt <- Some t.page_table
  | None -> ());
  Cpu.charge cpu 5_000

let make_kernel () =
  let instance_ref = ref None in
  let kernel =
    {
      Pisces.kernel_name = "nautilus";
      boot_core =
        (fun machine enclave cpu ~bsp params ->
          boot_core_body instance_ref machine enclave cpu ~bsp params);
    }
  in
  (kernel, fun () -> !instance_ref)

let spawn_thread t ~core f =
  if not (List.mem core t.enclave.Enclave.cores) then
    invalid_arg "Nautilus.spawn_thread: core not owned";
  let cpu = Machine.cpu t.machine core in
  Cpu.charge cpu 300 (* thread launch: an aerokernel's forte *);
  t.threads <- t.threads + 1;
  f cpu

let map_extra t region = Guest_pt.map_region t.page_table region

let wild_write t ~core addr =
  let cpu = Machine.cpu t.machine core in
  Machine.store t.machine cpu addr
