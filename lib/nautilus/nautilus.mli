(** The Nautilus aerokernel (a second co-kernel architecture).

    The paper notes that Covirt was also used "to port other kernel
    architectures (such as the Nautilus Aero-kernel) to the Pisces
    framework", with the hypervisor containing the porting bugs that
    otherwise crash the node.  This module is that second kernel — and
    a deliberately {e different} one, to demonstrate that Covirt is
    kernel-agnostic:

    - single address space, kernel threads instead of processes;
    - {e precise} page tables: Nautilus maps only the regions it was
      assigned (no LWK-style full direct map).  Its own paging
      therefore stops most wild accesses natively ... unless the
      mapping code itself is the thing that is buggy, which during a
      port it usually is.  The {!map_extra} injector reproduces
      exactly that class: a porting bug maps a region the enclave does
      not own, the kernel's tables happily translate it, and only
      Covirt's EPT stands between the bug and the node.

    Nautilus does not implement the XEMEM or syscall-forwarding
    protocol (a freshly ported kernel would not); it acks resource
    messages and runs threads. *)

open Covirt_hw
open Covirt_pisces

type t

val make_kernel : unit -> Pisces.kernel * (unit -> t option)
val enclave_id : t -> int
val page_table : t -> Guest_pt.t
val threads_run : t -> int

val spawn_thread : t -> core:int -> (Cpu.t -> unit) -> unit
(** Run a kernel thread immediately on the core (aerokernels have no
    scheduler queue to speak of; threads are the unit of work). *)

(* Porting-bug injectors. *)

val map_extra : t -> Region.t -> unit
(** The porting bug: map a region into the kernel page tables without
    owning it. *)

val wild_write : t -> core:int -> Addr.t -> unit
(** Store through the kernel's translation path. *)
