type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = mix seed }

let split_seed ~seed ~index =
  (* Pure in (seed, index): the derivation must not depend on how many
     shards a run was cut into or which domain computes shard [index],
     so sequential and fleet-sharded runs share one seeding path.  Mix
     the parent seed first so nearby parent seeds land far apart, then
     step the mixed state along the splitmix orbit by (index + 1)
     gammas and mix twice more — adjacent indexes decorrelate even for
     tiny seeds. *)
  let z =
    Int64.add
      (mix (Int64.of_int seed))
      (Int64.mul golden_gamma (Int64.of_int (index + 1)))
  in
  (* Drop two high bits, not one: OCaml's native int carries 62 value
     bits, so a 63-bit logical shift can still wrap negative. *)
  Int64.to_int (Int64.shift_right_logical (mix (mix z)) 2)

let int t ~bound =
  assert (bound > 0);
  (* Rejection-free modulo is fine here: bound is tiny relative to 2^62
     in every call site, so the bias is far below measurement noise. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let float t =
  (* 53 high bits -> [0, 1). *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r *. (1.0 /. 9007199254740992.0)

let bool t ~p = float t < p

let exponential t ~mean =
  let u = float t in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u1 = float t in
    if u1 <= 0.0 then draw ()
    else
      let u2 = float t in
      mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  in
  draw ()

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
