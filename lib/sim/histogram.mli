(** Logarithmically bucketed histograms.

    The Selfish-Detour figure (Fig. 3) plots a noise profile: detour
    duration on a log axis against occurrence count.  This module
    provides the log-scale histogram backing that plot, plus a linear
    variant for latency distributions. *)

type t

val create_log : base:float -> lo:float -> hi:float -> t
(** [create_log ~base ~lo ~hi] buckets values by [log_base]; values
    outside [\[lo, hi\]] land in saturating under/overflow buckets.
    Requires [base > 1.0] and [0 < lo < hi]. *)

val create_linear : bucket_width:float -> lo:float -> hi:float -> t

val add : t -> float -> unit
val count : t -> int
(** Total number of samples added. *)

val buckets : t -> (float * float * int) list
(** [(lo, hi, count)] per bucket, in increasing order, empty buckets
    omitted.  Under/overflow appear with infinite bounds. *)

val merge_into : dst:t -> t -> unit
(** Add all of the source's bucket counts into [dst]; the two must have
    identical bucket geometry ([Invalid_argument] otherwise). *)

val pp : Format.formatter -> t -> unit
(** ASCII rendering: one line per non-empty bucket with a bar whose
    length is proportional to [log (1 + count)]. *)
