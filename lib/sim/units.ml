let kib = 1024
let mib = 1024 * 1024
let gib = 1024 * 1024 * 1024

let cycles_to_seconds ~ghz c = float_of_int c /. (ghz *. 1e9)
let cycles_to_us ~ghz c = float_of_int c /. (ghz *. 1e3)
let cycles_to_ns ~ghz c = float_of_int c /. ghz
let seconds_to_cycles ~ghz s = int_of_float (s *. ghz *. 1e9)
let bytes_per_sec_to_mb_s b = b /. 1e6

let pp_bytes ppf n =
  let f = float_of_int n in
  if n >= gib then Format.fprintf ppf "%.1fGiB" (f /. float_of_int gib)
  else if n >= mib then Format.fprintf ppf "%.1fMiB" (f /. float_of_int mib)
  else if n >= kib then Format.fprintf ppf "%.1fKiB" (f /. float_of_int kib)
  else Format.fprintf ppf "%dB" n

let pp_cycles ~ghz ppf c =
  let ns = cycles_to_ns ~ghz c in
  if ns >= 1e9 then Format.fprintf ppf "%.3fs" (ns /. 1e9)
  else if ns >= 1e6 then Format.fprintf ppf "%.3fms" (ns /. 1e6)
  else if ns >= 1e3 then Format.fprintf ppf "%.3fus" (ns /. 1e3)
  else Format.fprintf ppf "%.0fns" ns
