type geometry =
  | Log of { base : float; lo : float; hi : float; nbuckets : int }
  | Linear of { width : float; lo : float; hi : float; nbuckets : int }

type t = {
  geometry : geometry;
  counts : int array; (* counts.(0) = underflow, counts.(n+1) = overflow *)
  mutable total : int;
}

let nbuckets_of = function
  | Log { nbuckets; _ } | Linear { nbuckets; _ } -> nbuckets

let create_log ~base ~lo ~hi =
  if base <= 1.0 then invalid_arg "Histogram.create_log: base <= 1";
  if lo <= 0.0 || hi <= lo then invalid_arg "Histogram.create_log: bad range";
  let nbuckets = int_of_float (ceil (log (hi /. lo) /. log base)) in
  let nbuckets = max nbuckets 1 in
  {
    geometry = Log { base; lo; hi; nbuckets };
    counts = Array.make (nbuckets + 2) 0;
    total = 0;
  }

let create_linear ~bucket_width ~lo ~hi =
  if bucket_width <= 0.0 then invalid_arg "Histogram.create_linear: width";
  if hi <= lo then invalid_arg "Histogram.create_linear: bad range";
  let nbuckets = int_of_float (ceil ((hi -. lo) /. bucket_width)) in
  let nbuckets = max nbuckets 1 in
  {
    geometry = Linear { width = bucket_width; lo; hi; nbuckets };
    counts = Array.make (nbuckets + 2) 0;
    total = 0;
  }

let bucket_index t v =
  let n = nbuckets_of t.geometry in
  match t.geometry with
  | Log { base; lo; hi; _ } ->
      if v < lo then 0
      else if v >= hi then n + 1
      else 1 + int_of_float (log (v /. lo) /. log base)
  | Linear { width; lo; hi; _ } ->
      if v < lo then 0
      else if v >= hi then n + 1
      else 1 + int_of_float ((v -. lo) /. width)

let add t v =
  let i = bucket_index t v in
  let i = min i (Array.length t.counts - 1) in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let count t = t.total

let bucket_bounds t i =
  (* [i] is a 1-based interior bucket index. *)
  match t.geometry with
  | Log { base; lo; _ } ->
      let l = lo *. (base ** float_of_int (i - 1)) in
      (l, l *. base)
  | Linear { width; lo; _ } ->
      let l = lo +. (width *. float_of_int (i - 1)) in
      (l, l +. width)

let buckets t =
  let n = nbuckets_of t.geometry in
  let acc = ref [] in
  if t.counts.(n + 1) > 0 then
    acc := (fst (bucket_bounds t (n + 1)), infinity, t.counts.(n + 1)) :: !acc;
  for i = n downto 1 do
    if t.counts.(i) > 0 then
      let lo, hi = bucket_bounds t i in
      acc := (lo, hi, t.counts.(i)) :: !acc
  done;
  if t.counts.(0) > 0 then
    acc := (neg_infinity, fst (bucket_bounds t 1), t.counts.(0)) :: !acc;
  !acc

let same_geometry a b =
  match (a, b) with
  | Log g1, Log g2 ->
      g1.base = g2.base && g1.lo = g2.lo && g1.hi = g2.hi
      && g1.nbuckets = g2.nbuckets
  | Linear g1, Linear g2 ->
      g1.width = g2.width && g1.lo = g2.lo && g1.hi = g2.hi
      && g1.nbuckets = g2.nbuckets
  | Log _, Linear _ | Linear _, Log _ -> false

let merge_into ~dst src =
  if not (same_geometry dst.geometry src.geometry) then
    invalid_arg "Histogram.merge_into: geometry mismatch";
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.total <- dst.total + src.total

let pp ppf t =
  let bar c =
    let len = int_of_float (8.0 *. log (1.0 +. float_of_int c)) in
    String.make (min len 60) '#'
  in
  List.iter
    (fun (lo, hi, c) ->
      Format.fprintf ppf "[%10.3g, %10.3g) %8d %s@." lo hi c (bar c))
    (buckets t)
