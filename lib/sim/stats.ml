type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let check_nonempty name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty sample array")

let mean a =
  check_nonempty "Stats.mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let stddev a =
  check_nonempty "Stats.stddev" a;
  let n = Array.length a in
  if n = 1 then 0.0
  else
    let m = mean a in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    sqrt (ss /. float_of_int (n - 1))

let percentile a ~p =
  check_nonempty "Stats.percentile" a;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then sorted.(lo)
    else
      let frac = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let summarize a =
  check_nonempty "Stats.summarize" a;
  {
    n = Array.length a;
    mean = mean a;
    stddev = stddev a;
    min = Array.fold_left Float.min a.(0) a;
    max = Array.fold_left Float.max a.(0) a;
    median = percentile a ~p:50.0;
  }

let relative_overhead ~baseline ~measured =
  if baseline = 0.0 then invalid_arg "Stats.relative_overhead: zero baseline";
  (measured -. baseline) /. baseline

let relative_slowdown_of_rates ~baseline ~measured =
  if baseline = 0.0 then
    invalid_arg "Stats.relative_slowdown_of_rates: zero baseline";
  (baseline -. measured) /. baseline

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.3g min=%.4g med=%.4g max=%.4g" s.n
    s.mean s.stddev s.min s.median s.max
