(** Descriptive statistics over float samples.

    Used by the bench harness to summarise repeated runs, mirroring the
    paper's "all benchmarks were run ten times" methodology. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float array -> summary
(** [summarize samples] computes a full summary.  Raises
    [Invalid_argument] on an empty array. *)

val mean : float array -> float
val stddev : float array -> float

val percentile : float array -> p:float -> float
(** [percentile samples ~p] with [p] in [\[0, 100\]], linear
    interpolation between closest ranks.  Raises [Invalid_argument] on
    an empty array or out-of-range [p]. *)

val relative_overhead : baseline:float -> measured:float -> float
(** [(measured - baseline) / baseline], the "% overhead vs native"
    metric used throughout the paper's evaluation.  For
    higher-is-better metrics (bandwidth, GUPS) callers should swap the
    arguments' roles via {!relative_slowdown_of_rates}. *)

val relative_slowdown_of_rates : baseline:float -> measured:float -> float
(** Overhead when the metric is a rate (higher is better):
    [(baseline - measured) / baseline]. *)

val pp_summary : Format.formatter -> summary -> unit
