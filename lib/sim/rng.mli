(** Deterministic pseudo-random number generation.

    Every stochastic element of the simulation draws from an explicit
    generator so that experiments are reproducible bit-for-bit.  The
    implementation is splitmix64, which is fast, has a 64-bit state and
    passes BigCrush; determinism matters more here than cryptographic
    quality. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each CPU / workload its own stream so adding draws in
    one component does not perturb another. *)

val split_seed : seed:int -> index:int -> int
(** [split_seed ~seed ~index] derives a child seed for shard [index] of
    a run seeded with [seed].  The derivation is a pure function of the
    two arguments — independent of shard count, domain count and
    evaluation order — so a sequential loop over indexes and a parallel
    fleet over the same indexes seed identical generators.  Distinct
    indexes yield well-separated splitmix streams (no observed overlap
    within any realistic draw budget).  The result is non-negative. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform in [\[0, bound)].  [bound] must be
    positive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> p:float -> bool
(** [bool t ~p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean; used for
    inter-arrival times of asynchronous noise events. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normally distributed sample (Box-Muller). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
