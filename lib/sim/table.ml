type row = Cells of string list | Rule

type t = { columns : string list; mutable rows : row list (* reversed *) }

let create ~columns = { columns; rows = [] }

let add_row t cells =
  let ncols = List.length t.columns in
  let n = List.length cells in
  if n > ncols then invalid_arg "Table.add_row: too many cells";
  let padded = cells @ List.init (ncols - n) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all_cell_rows =
    t.columns :: List.filter_map (function Cells c -> Some c | Rule -> None) rows
  in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  let note_widths cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter note_widths all_cell_rows;
  let buf = Buffer.create 1024 in
  let pad i s = s ^ String.make (widths.(i) - String.length s) ' ' in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i c))
      cells;
    Buffer.add_char buf '\n'
  in
  let emit_rule () =
    Array.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  emit_cells t.columns;
  emit_rule ();
  List.iter (function Cells c -> emit_cells c | Rule -> emit_rule ()) rows;
  Buffer.contents buf

let render_tsv t =
  let buf = Buffer.create 512 in
  let emit cells = Buffer.add_string buf (String.concat "\t" cells ^ "\n") in
  emit t.columns;
  List.iter
    (function Cells c -> emit c | Rule -> ())
    (List.rev t.rows);
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let tsv_mode = ref false
let set_tsv_mode v = tsv_mode := v

let print_auto t =
  if !tsv_mode then print_string (render_tsv t)
  else print t

let cell_f v = Format.asprintf "%.4g" v
let cell_pct r = Format.asprintf "%.1f%%" (r *. 100.0)
