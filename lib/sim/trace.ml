type severity = Debug | Info | Warn | Error

type event = { tsc : int; cpu : int; severity : severity; message : string }

type t = {
  capacity : int;
  ring : event option array;
  mutable next : int; (* total number of events ever recorded *)
  mutable min_severity : severity;
}

let severity_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity";
  { capacity; ring = Array.make capacity None; next = 0; min_severity = Debug }

let set_min_severity t severity = t.min_severity <- severity
let min_severity t = t.min_severity

let would_record t ~severity =
  severity_rank severity >= severity_rank t.min_severity

let record t ~tsc ~cpu ~severity message =
  if would_record t ~severity then begin
    t.ring.(t.next mod t.capacity) <- Some { tsc; cpu; severity; message };
    t.next <- t.next + 1
  end

let recordf t ~tsc ~cpu ~severity fmt =
  if would_record t ~severity then
    Format.kasprintf (record t ~tsc ~cpu ~severity) fmt
  else Format.ikfprintf ignore Format.str_formatter fmt

let events t =
  let n = min t.next t.capacity in
  let start = t.next - n in
  List.init n (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let dropped t = max 0 (t.next - t.capacity)

let find t ~f = List.find_opt f (events t)

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0

let severity_tag = function
  | Debug -> "DBG"
  | Info -> "INF"
  | Warn -> "WRN"
  | Error -> "ERR"

let pp_event ppf e =
  Format.fprintf ppf "[%12d] cpu%-2d %s %s" e.tsc e.cpu (severity_tag e.severity)
    e.message

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t)
