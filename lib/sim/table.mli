(** ASCII table rendering for the bench harness.

    Every figure/table in the evaluation is regenerated as a text
    table; this module renders aligned columns so the output matches
    the rows/series the paper reports. *)

type t

val create : columns:string list -> t
(** [create ~columns] starts a table with the given header. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded; longer rows raise
    [Invalid_argument]. *)

val add_rule : t -> unit
(** Insert a horizontal rule. *)

val render : t -> string
val render_tsv : t -> string
(** Tab-separated (header row included, rules omitted) — the
    machine-readable form for plotting pipelines. *)

val print : t -> unit
(** [render] then write to stdout, followed by a newline. *)

val set_tsv_mode : bool -> unit
val print_auto : t -> unit
(** [print], or TSV when {!set_tsv_mode} was turned on (the bench
    harness's [--tsv] flag). *)

val cell_f : float -> string
(** Format a float for a cell: 4 significant digits. *)

val cell_pct : float -> string
(** Format a ratio as a percentage cell, e.g. [0.031] -> "3.1%". *)
