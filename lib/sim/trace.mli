(** Event trace recording.

    A bounded in-memory ring of timestamped events.  The paper argues
    Covirt's value partly as a debugging aid ("provided the ability to
    collect debugging traces when [a fault] did occur"); every fault
    path in this implementation records into a trace that examples and
    tests can inspect after a contained crash. *)

type severity = Debug | Info | Warn | Error

type event = { tsc : int; cpu : int; severity : severity; message : string }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 4096 events; older events are dropped first. *)

val set_min_severity : t -> severity -> unit
(** Drop events below this severity at the recording site.  Defaults
    to [Debug] (record everything).  [recordf] skips its formatting
    work entirely for suppressed events, so hot exit paths that trace
    at [Debug] cost nothing when the sink is raised to [Info]+. *)

val min_severity : t -> severity

val would_record : t -> severity:severity -> bool
(** [true] iff an event at this severity would be kept — callers with
    expensive-to-build payloads can gate on this before rendering. *)

val record : t -> tsc:int -> cpu:int -> severity:severity -> string -> unit
val recordf :
  t ->
  tsc:int ->
  cpu:int ->
  severity:severity ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a

val events : t -> event list
(** Oldest first. *)

val dropped : t -> int
(** Number of events lost to capacity. *)

val find : t -> f:(event -> bool) -> event option
val clear : t -> unit
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
