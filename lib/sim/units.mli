(** Unit conversions and human-readable formatting.

    The simulated machine counts in cycles; the paper reports
    microseconds, MB/s, GUPS and loop seconds.  All conversions funnel
    through this module so a single clock-frequency constant governs
    them. *)

val kib : int
val mib : int
val gib : int

val cycles_to_seconds : ghz:float -> int -> float
val cycles_to_us : ghz:float -> int -> float
val cycles_to_ns : ghz:float -> int -> float
val seconds_to_cycles : ghz:float -> float -> int

val bytes_per_sec_to_mb_s : float -> float
(** STREAM-style MB/s (decimal megabytes, as STREAM reports). *)

val pp_bytes : Format.formatter -> int -> unit
(** "4.0KiB", "14.0GiB", ... *)

val pp_cycles : ghz:float -> Format.formatter -> int -> unit
(** Render a cycle count as the most readable time unit. *)
