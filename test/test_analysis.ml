(* The isolation sanitizer: static verifier, shadow sanitizer, and the
   whitelist-lifecycle fixes that ride along with them.

   The structure mirrors the analyzer's contract: a clean protected
   stack must verify with zero violations, and each corruption class
   must produce exactly its typed violation — nothing vaguer. *)

open Covirt_test_util
open Covirt_analysis

let mib = Helpers.mib

(* A protected two-enclave stack with a legitimate XEMEM share and a
   doorbell pair — everything the verifier must bless, nothing it may
   flag. *)
let rich_stack () =
  let stack = Helpers.boot_stack () in
  let beta, _ = Helpers.second_enclave stack () in
  let xemem = Covirt_hobbes.Hobbes.xemem stack.Helpers.hobbes in
  let share =
    match
      Covirt_hw.Region.Set.to_list
        stack.Helpers.enclave.Covirt_pisces.Enclave.memory
    with
    | r :: _ -> Covirt_hw.Region.make ~base:r.Covirt_hw.Region.base ~len:(2 * mib)
    | [] -> Alcotest.fail "enclave has no memory"
  in
  (match
     Covirt_xemem.Xemem.export xemem
       ~exporter:
         (Covirt_xemem.Name_service.Enclave_export
            stack.Helpers.enclave.Covirt_pisces.Enclave.id)
       ~name:"share" ~pages:[ share ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "export: %s" e);
  (match Covirt_xemem.Xemem.attach xemem beta ~name:"share" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "attach: %s" e);
  (match
     Covirt_hobbes.Hobbes.grant_vector_pair stack.Helpers.hobbes
       stack.Helpers.enclave beta
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "grant_vector_pair: %s" e);
  (stack, beta, xemem)

let verify ?(registry = true) stack xemem =
  if registry then
    Verifier.run ~registry:(Covirt_xemem.Xemem.registry xemem)
      stack.Helpers.controller
  else Verifier.run stack.Helpers.controller

let instance_of stack (e : Covirt_pisces.Enclave.t) =
  match
    Covirt.Controller.instance_for stack.Helpers.controller
      ~enclave_id:e.Covirt_pisces.Enclave.id
  with
  | Some i -> i
  | None -> Alcotest.fail "no controller instance"

let ept_of inst =
  match inst.Covirt.Controller.ept_mgr with
  | Some mgr -> Covirt.Ept_manager.ept mgr
  | None -> Alcotest.fail "no EPT manager under full config"

let kinds report =
  List.map (fun (v : Violation.t) -> Violation.kind_name v.kind)
    report.Verifier.violations

(* ------------------------------------------------------------------ *)
(* Static verifier: clean runs                                         *)

let test_clean_stack () =
  let stack, _, xemem = rich_stack () in
  let report = verify stack xemem in
  Alcotest.(check int) "enclaves" 2 report.Verifier.enclaves_checked;
  Alcotest.(check bool) "leaves walked" true (report.Verifier.leaves_checked > 0);
  Alcotest.(check bool) "grants audited" true (report.Verifier.grants_checked >= 2);
  Alcotest.(check (list string)) "no violations" [] (kinds report)

(* The registry is what blesses a mapping when the enclave's own
   records have gone stale: wipe beta's [shared] bookkeeping and the
   attached frames (still in beta's EPT) look like a cross-owner
   mapping — unless the registry still vouches for the segment. *)
let test_registry_blesses_share () =
  let stack, beta, xemem = rich_stack () in
  beta.Covirt_pisces.Enclave.shared <- Covirt_hw.Region.Set.empty;
  let with_reg = verify stack xemem in
  let without = verify ~registry:false stack xemem in
  Alcotest.(check (list string)) "clean with registry" [] (kinds with_reg);
  Alcotest.(check bool) "share flagged without registry" true
    (List.exists
       (fun (v : Violation.t) ->
         match v.kind with Violation.Cross_owner_mapping _ -> true | _ -> false)
       without.Verifier.violations)

let test_legit_ops_stay_clean =
  Helpers.qtest ~count:15 "random legitimate ops stay clean"
    QCheck2.Gen.(list_size (int_range 1 6) (int_range 0 2))
    (fun ops ->
      let stack, _, xemem = rich_stack () in
      let p = Helpers.pisces stack in
      let enclave = stack.Helpers.enclave in
      let added = ref [] in
      List.iter
        (fun op ->
          match op with
          | 0 -> (
              match
                Covirt_pisces.Pisces.add_memory p enclave ~zone:0 ~len:(4 * mib)
              with
              | Ok r -> added := r :: !added
              | Error _ -> ())
          | 1 -> (
              match !added with
              | r :: rest -> (
                  match Covirt_pisces.Pisces.remove_memory p enclave r with
                  | Ok () -> added := rest
                  | Error _ -> ())
              | [] -> ())
          | _ ->
              Covirt_kitten.Kitten.store_addr (Helpers.ctx stack 1)
                (match
                   Covirt_hw.Region.Set.to_list
                     enclave.Covirt_pisces.Enclave.memory
                 with
                | r :: _ -> r.Covirt_hw.Region.base + 512
                | [] -> 0))
        ops;
      Verifier.clean (verify stack xemem))

(* ------------------------------------------------------------------ *)
(* Static verifier: corruption classes                                 *)

let test_cross_owner_leaf () =
  let stack, beta, xemem = rich_stack () in
  let target =
    match
      Covirt_hw.Region.Set.to_list beta.Covirt_pisces.Enclave.memory
    with
    | r :: _ -> Covirt_hw.Region.make ~base:r.Covirt_hw.Region.base ~len:(2 * mib)
    | [] -> Alcotest.fail "beta has no memory"
  in
  Covirt_hw.Ept.map_region (ept_of (instance_of stack stack.Helpers.enclave))
    target;
  let report = verify stack xemem in
  let cross =
    List.filter
      (fun (v : Violation.t) ->
        match v.kind with
        | Violation.Cross_owner_mapping { actual } ->
            Covirt_hw.Owner.equal actual
              (Covirt_hw.Owner.Enclave beta.Covirt_pisces.Enclave.id)
        | _ -> false)
      report.Verifier.violations
  in
  Alcotest.(check bool) "cross-owner leaf flagged, naming beta" true
    (cross <> []);
  Alcotest.(check bool) "critical severity" true
    (List.for_all
       (fun (v : Violation.t) -> v.Violation.severity = Violation.Critical)
       cross)

let test_unbacked_leaf () =
  let stack, _, xemem = rich_stack () in
  let mem = stack.Helpers.machine.Covirt_hw.Machine.mem in
  let r =
    match
      Covirt_hw.Phys_mem.alloc mem ~owner:Covirt_hw.Owner.Host ~zone:1
        ~len:(4 * mib)
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "alloc: %s" e
  in
  Covirt_hw.Phys_mem.release mem r;
  Covirt_hw.Ept.map_region (ept_of (instance_of stack stack.Helpers.enclave)) r;
  let report = verify stack xemem in
  Alcotest.(check bool) "unbacked mapping flagged" true
    (List.exists
       (fun (v : Violation.t) -> v.kind = Violation.Unbacked_mapping)
       report.Verifier.violations)

let test_stale_grant () =
  let stack, _, xemem = rich_stack () in
  (* Core 0 is the host's: no live enclave owns it, so a doorbell
     grant towards it is stale by definition. *)
  Covirt.Whitelist.grant
    (instance_of stack stack.Helpers.enclave).Covirt.Controller.whitelist
    ~vector:0xd1 ~dest:0;
  let report = verify stack xemem in
  match
    List.filter_map
      (fun (v : Violation.t) ->
        match v.kind with
        | Violation.Stale_grant { vector; dest } -> Some (vector, dest)
        | _ -> None)
      report.Verifier.violations
  with
  | [ (vector, dest) ] ->
      Alcotest.(check int) "vector" 0xd1 vector;
      Alcotest.(check int) "dest" 0 dest
  | other -> Alcotest.failf "expected one stale grant, got %d" (List.length other)

(* ------------------------------------------------------------------ *)
(* Shadow sanitizer                                                    *)

let with_shadow f =
  let had = Shadow.requested () in
  Shadow.request ();
  Fun.protect ~finally:(fun () -> if not had then Shadow.release ()) f

let test_shadow_clean_run () =
  with_shadow (fun () ->
      let stack, _, xemem = rich_stack () in
      Alcotest.(check bool) "shadow armed" true (Shadow.active ());
      Covirt_kitten.Kitten.store_addr (Helpers.ctx stack 1)
        (match
           Covirt_hw.Region.Set.to_list
             stack.Helpers.enclave.Covirt_pisces.Enclave.memory
         with
        | r :: _ -> r.Covirt_hw.Region.base + 128
        | [] -> 0);
      let s = Shadow.stats () in
      Alcotest.(check bool) "accesses checked" true (s.Shadow.accesses > 0);
      Alcotest.(check bool) "ept writes mirrored" true (s.Shadow.ept_writes > 0);
      Alcotest.(check (list string)) "no shadow violations" []
        (List.map
           (fun (v : Violation.t) -> Violation.kind_name v.kind)
           (Shadow.violations ()));
      ignore (verify stack xemem))

let test_shadow_freed_access () =
  with_shadow (fun () ->
      (* Unprotected on purpose: EPT enforcement would suppress the
         stale store before the shadow ever saw it. *)
      let stack = Helpers.boot_stack ~config:Covirt.Config.none () in
      let p = Helpers.pisces stack in
      let before = Shadow.violation_count () in
      let r =
        match
          Covirt_pisces.Pisces.add_memory p stack.Helpers.enclave ~zone:0
            ~len:(4 * mib)
        with
        | Ok r -> r
        | Error e -> Alcotest.failf "add_memory: %s" e
      in
      (match Covirt_pisces.Pisces.remove_memory p stack.Helpers.enclave r with
      | Ok () -> ()
      | Error e -> Alcotest.failf "remove_memory: %s" e);
      (match
         Covirt_pisces.Pisces.run_guarded p (fun () ->
             Covirt_kitten.Kitten.store_addr (Helpers.ctx stack 1)
               (r.Covirt_hw.Region.base + 64))
       with
      | Ok () | Error _ -> ());
      Alcotest.(check bool) "freed access counted" true
        (Shadow.violation_count () > before);
      Alcotest.(check bool) "typed as freed access" true
        (List.exists
           (fun (v : Violation.t) -> v.kind = Violation.Shadow_freed_access)
           (Shadow.violations ())))

let test_shadow_corrupt_install () =
  with_shadow (fun () ->
      let stack, beta, _ = rich_stack () in
      let before = Shadow.violation_count () in
      (* The corrupt EPT write itself must trip the shadow, at install
         time — before any access through the mapping. *)
      (match
         Covirt_hw.Region.Set.to_list beta.Covirt_pisces.Enclave.memory
       with
      | r :: _ ->
          Covirt_hw.Ept.map_region
            (ept_of (instance_of stack stack.Helpers.enclave))
            (Covirt_hw.Region.make ~base:r.Covirt_hw.Region.base ~len:(2 * mib))
      | [] -> Alcotest.fail "beta has no memory");
      Alcotest.(check bool) "corrupt install flagged" true
        (Shadow.violation_count () > before);
      Alcotest.(check bool) "typed as corrupt mapping" true
        (List.exists
           (fun (v : Violation.t) ->
             match v.kind with
             | Violation.Shadow_corrupt_mapping _ -> true
             | _ -> false)
           (Shadow.violations ())))

(* Sanitizer reports surface through the controller as non-fatal fault
   reports, so campaigns see them without recovery kicking in. *)
let test_shadow_reports_nonfatal () =
  with_shadow (fun () ->
      let stack, beta, _ = rich_stack () in
      (match
         Covirt_hw.Region.Set.to_list beta.Covirt_pisces.Enclave.memory
       with
      | r :: _ ->
          Covirt_hw.Ept.map_region
            (ept_of (instance_of stack stack.Helpers.enclave))
            (Covirt_hw.Region.make ~base:r.Covirt_hw.Region.base ~len:(2 * mib))
      | [] -> ());
      let sanitizer_reports =
        List.filter
          (fun (r : Covirt.Fault_report.t) ->
            r.Covirt.Fault_report.kind = Covirt.Fault_report.Sanitizer)
          (Covirt.reports stack.Helpers.controller
             ~enclave_id:stack.Helpers.enclave.Covirt_pisces.Enclave.id)
      in
      Alcotest.(check bool) "sanitizer report recorded" true
        (sanitizer_reports <> []);
      Alcotest.(check bool) "never fatal" true
        (List.for_all
           (fun (r : Covirt.Fault_report.t) ->
             not r.Covirt.Fault_report.fatal)
           sanitizer_reports))

(* ------------------------------------------------------------------ *)
(* Whitelist lifecycle (the satellite fixes)                           *)

let test_revoke_single_dest () =
  let wl = Covirt.Whitelist.create ~enclave_cores:[ 1; 2 ] in
  Covirt.Whitelist.grant wl ~vector:0x40 ~dest:4;
  Covirt.Whitelist.grant wl ~vector:0x40 ~dest:5;
  Covirt.Whitelist.grant wl ~vector:0x41 ~dest:4;
  Covirt.Whitelist.revoke ~dest:4 wl ~vector:0x40;
  let permits dest vector =
    Covirt.Whitelist.permits wl
      ~icr:{ Covirt_hw.Apic.dest; vector; kind = Covirt_hw.Apic.Fixed }
  in
  Alcotest.(check bool) "revoked pair dropped" false (permits 4 0x40);
  Alcotest.(check bool) "same vector, other dest survives" true (permits 5 0x40);
  Alcotest.(check bool) "other vector, same dest survives" true (permits 4 0x41);
  Covirt.Whitelist.revoke wl ~vector:0x40;
  Alcotest.(check bool) "dest-less revoke drops the rest" false (permits 5 0x40);
  Alcotest.(check bool) "unrelated grant untouched" true (permits 4 0x41)

let test_revoke_through_pisces () =
  let stack, beta, xemem = rich_stack () in
  let p = Helpers.pisces stack in
  let alpha = stack.Helpers.enclave in
  let beta_bsp = Covirt_pisces.Enclave.bsp beta in
  (match Covirt_pisces.Pisces.grant_ipi_vector p alpha ~vector:0x50 ~peer_core:1 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "grant: %s" e);
  (match
     Covirt_pisces.Pisces.grant_ipi_vector p alpha ~vector:0x50
       ~peer_core:beta_bsp
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "grant: %s" e);
  (match
     Covirt_pisces.Pisces.revoke_ipi_vector ~peer_core:1 p alpha ~vector:0x50
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "revoke: %s" e);
  Alcotest.(check bool) "grant to beta bsp survives the narrowed revoke" true
    (List.mem (0x50, beta_bsp) alpha.Covirt_pisces.Enclave.granted_vectors);
  Alcotest.(check bool) "revoked grant gone" false
    (List.mem (0x50, 1) alpha.Covirt_pisces.Enclave.granted_vectors);
  (* Both grants went to live cores, so the verifier stays clean. *)
  Alcotest.(check bool) "still clean" true (Verifier.clean (verify stack xemem))

let test_destroy_prunes_grants () =
  let stack, beta, xemem = rich_stack () in
  let alpha_wl = (instance_of stack stack.Helpers.enclave).Covirt.Controller.whitelist in
  let beta_bsp = Covirt_pisces.Enclave.bsp beta in
  Alcotest.(check bool) "doorbell grant installed" true
    (List.exists (fun (_, d) -> d = beta_bsp) (Covirt.Whitelist.grants alpha_wl));
  Covirt_pisces.Pisces.destroy (Helpers.pisces stack) beta;
  Alcotest.(check bool) "grants toward the dead enclave pruned" false
    (List.exists (fun (_, d) -> d = beta_bsp) (Covirt.Whitelist.grants alpha_wl));
  Alcotest.(check (list (pair int int))) "dead enclave's own grants cleared" []
    beta.Covirt_pisces.Enclave.granted_vectors;
  let report = verify stack xemem in
  Alcotest.(check bool) "no stale grants survive destroy" true
    (List.for_all
       (fun (v : Violation.t) ->
         match v.kind with Violation.Stale_grant _ -> false | _ -> true)
       report.Verifier.violations)

(* The fault-injection campaign under the sanitizer: injected
   EPT/ownership corruption is *detected by the analyzer*, not just
   observed as crashes.  Unprotected configs let wild writes through,
   so some trial must trip the shadow. *)
let test_campaign_under_sanitizer () =
  let rows = Covirt_harness.Campaign.run ~trials:6 ~seed:11 ~sanitize:true () in
  Alcotest.(check bool) "some unprotected trial flagged" true
    (List.exists
       (fun r -> r.Covirt_harness.Campaign.sanitizer_flagged > 0)
       rows);
  Alcotest.(check bool) "sanitizer released after the campaign" false
    (Shadow.active ())

(* ------------------------------------------------------------------ *)
(* The golden transcript is bit-identical with the sanitizer ON.       *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_with_sanitizer () =
  with_shadow (fun () ->
      let expected = read_file "golden/translation.expected" in
      let actual = Covirt_harness.Golden.capture () in
      if not (String.equal expected actual) then
        Alcotest.fail
          "golden transcript changed under the sanitizer — shadow checking \
           must never charge simulated cycles or alter output")

(* Same gate with the capture's fleet spread over four domains: each
   shard arms its own domain's shadow state, and none of it may leak
   into the transcript. *)
let test_golden_with_sanitizer_under_fleet () =
  with_shadow (fun () ->
      let expected = read_file "golden/translation.expected" in
      let actual = Covirt_harness.Golden.capture ~domains:4 () in
      if not (String.equal expected actual) then
        Alcotest.fail
          "golden transcript changed under sanitizer + 4-domain fleet — \
           per-domain shadow state must not alter output")

let () =
  Alcotest.run "analysis"
    [
      ( "verifier",
        [
          Alcotest.test_case "clean stack verifies" `Quick test_clean_stack;
          Alcotest.test_case "registry blesses shares" `Quick
            test_registry_blesses_share;
          test_legit_ops_stay_clean;
          Alcotest.test_case "cross-owner leaf" `Quick test_cross_owner_leaf;
          Alcotest.test_case "unbacked leaf" `Quick test_unbacked_leaf;
          Alcotest.test_case "stale grant" `Quick test_stale_grant;
        ] );
      ( "shadow",
        [
          Alcotest.test_case "clean run, zero violations" `Quick
            test_shadow_clean_run;
          Alcotest.test_case "freed-region access" `Quick
            test_shadow_freed_access;
          Alcotest.test_case "corrupt install flagged at write time" `Quick
            test_shadow_corrupt_install;
          Alcotest.test_case "reports are non-fatal" `Quick
            test_shadow_reports_nonfatal;
          Alcotest.test_case "campaign detects corruption" `Quick
            test_campaign_under_sanitizer;
        ] );
      ( "whitelist",
        [
          Alcotest.test_case "revoke targets one destination" `Quick
            test_revoke_single_dest;
          Alcotest.test_case "narrowed revoke through pisces" `Quick
            test_revoke_through_pisces;
          Alcotest.test_case "destroy prunes peer grants" `Quick
            test_destroy_prunes_grants;
        ] );
      ( "golden",
        [
          Alcotest.test_case "bit-identical with sanitizer on" `Slow
            test_golden_with_sanitizer;
          Alcotest.test_case "bit-identical with sanitizer under fleet" `Slow
            test_golden_with_sanitizer_under_fleet;
        ] );
    ]
