(* Region and Region.Set: units plus a property check against a naive
   byte-level reference model. *)

open Covirt_hw

let r ~base ~len = Region.make ~base ~len

let test_make_validation () =
  Alcotest.check_raises "len 0" (Invalid_argument "Region.make: len <= 0")
    (fun () -> ignore (r ~base:0 ~len:0));
  Alcotest.check_raises "neg base" (Invalid_argument "Region.make: negative base")
    (fun () -> ignore (r ~base:(-1) ~len:4))

let test_contains () =
  let reg = r ~base:100 ~len:50 in
  Alcotest.(check bool) "base in" true (Region.contains reg 100);
  Alcotest.(check bool) "last in" true (Region.contains reg 149);
  Alcotest.(check bool) "limit out" false (Region.contains reg 150);
  Alcotest.(check bool) "range in" true
    (Region.contains_range reg ~base:110 ~len:40);
  Alcotest.(check bool) "range over" false
    (Region.contains_range reg ~base:110 ~len:41)

let test_overlaps () =
  let a = r ~base:0 ~len:10 and b = r ~base:9 ~len:5 and c = r ~base:10 ~len:5 in
  Alcotest.(check bool) "touch overlap" true (Region.overlaps a b);
  Alcotest.(check bool) "adjacent no overlap" false (Region.overlaps a c)

let test_set_coalescing () =
  let s = Region.Set.of_list [ r ~base:0 ~len:10; r ~base:10 ~len:10 ] in
  Alcotest.(check int) "adjacent coalesced" 1 (Region.Set.cardinal s);
  Alcotest.(check int) "total" 20 (Region.Set.total_bytes s);
  let s2 = Region.Set.of_list [ r ~base:0 ~len:10; r ~base:5 ~len:10 ] in
  Alcotest.(check int) "overlap unioned" 1 (Region.Set.cardinal s2);
  Alcotest.(check int) "union total" 15 (Region.Set.total_bytes s2)

let test_set_remove_hole () =
  let s = Region.Set.of_list [ r ~base:0 ~len:100 ] in
  let s = Region.Set.remove s (r ~base:40 ~len:20) in
  Alcotest.(check int) "two pieces" 2 (Region.Set.cardinal s);
  Alcotest.(check bool) "left" true (Region.Set.mem s 39);
  Alcotest.(check bool) "hole" false (Region.Set.mem s 40);
  Alcotest.(check bool) "hole end" false (Region.Set.mem s 59);
  Alcotest.(check bool) "right" true (Region.Set.mem s 60);
  (* removing unmapped space is a no-op *)
  let s2 = Region.Set.remove s (r ~base:1000 ~len:10) in
  Alcotest.(check bool) "noop remove" true (Region.Set.equal s s2)

let test_set_mem_range_across_coalesced () =
  let s = Region.Set.of_list [ r ~base:0 ~len:10; r ~base:10 ~len:10 ] in
  Alcotest.(check bool) "spans join" true (Region.Set.mem_range s ~base:5 ~len:10);
  let gap = Region.Set.of_list [ r ~base:0 ~len:10; r ~base:20 ~len:10 ] in
  Alcotest.(check bool) "gap fails" false
    (Region.Set.mem_range gap ~base:5 ~len:20)

let test_set_ops () =
  let a = Region.Set.of_list [ r ~base:0 ~len:100 ] in
  let b = Region.Set.of_list [ r ~base:50 ~len:100 ] in
  Alcotest.(check int) "inter" 50
    (Region.Set.total_bytes (Region.Set.inter a b));
  Alcotest.(check int) "union" 150
    (Region.Set.total_bytes (Region.Set.union a b));
  Alcotest.(check int) "diff" 50
    (Region.Set.total_bytes (Region.Set.diff a b))

(* Reference model: a set of byte addresses (scaled down). *)
module Ref = Set.Make (Int)

let ref_of_ops ops =
  List.fold_left
    (fun acc (op, base, len) ->
      let bytes = List.init len (fun i -> base + i) in
      match op with
      | `Add -> List.fold_left (fun s x -> Ref.add x s) acc bytes
      | `Remove -> List.fold_left (fun s x -> Ref.remove x s) acc bytes)
    Ref.empty ops

let set_of_ops ops =
  List.fold_left
    (fun acc (op, base, len) ->
      let region = r ~base ~len in
      match op with
      | `Add -> Region.Set.add acc region
      | `Remove -> Region.Set.remove acc region)
    Region.Set.empty ops

let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 0 30)
      (triple
         (oneofl [ `Add; `Remove ])
         (int_range 0 200) (int_range 1 50)))

let prop_set_matches_reference =
  Covirt_test_util.Helpers.qtest "Region.Set matches byte-set model" gen_ops
    (fun ops ->
      let reference = ref_of_ops ops in
      let set = set_of_ops ops in
      let ok_bytes =
        List.for_all
          (fun a -> Region.Set.mem set a = Ref.mem a reference)
          (List.init 260 Fun.id)
      in
      ok_bytes && Region.Set.total_bytes set = Ref.cardinal reference)

let prop_set_normalized =
  Covirt_test_util.Helpers.qtest "Region.Set stays sorted and disjoint" gen_ops
    (fun ops ->
      let set = set_of_ops ops in
      let rec check = function
        | [] | [ _ ] -> true
        | a :: (b :: _ as rest) ->
            (* strictly increasing with gaps (coalesced) *)
            Region.limit a < b.Region.base && check rest
      in
      check (Region.Set.to_list set))

let () =
  Alcotest.run "region"
    [
      ( "region",
        [
          Alcotest.test_case "validation" `Quick test_make_validation;
          Alcotest.test_case "contains" `Quick test_contains;
          Alcotest.test_case "overlaps" `Quick test_overlaps;
        ] );
      ( "set",
        [
          Alcotest.test_case "coalescing" `Quick test_set_coalescing;
          Alcotest.test_case "remove hole" `Quick test_set_remove_hole;
          Alcotest.test_case "mem_range across join" `Quick
            test_set_mem_range_across_coalesced;
          Alcotest.test_case "inter/union/diff" `Quick test_set_ops;
          prop_set_matches_reference;
          prop_set_normalized;
        ] );
    ]
