(* Device MMIO delegation tests: the paper lists "devices' memory
   mapped I/O regions" among the hardware a misbehaving co-kernel can
   stomp on; Pisces delegates device windows to enclaves and Covirt's
   EPT polices them like any other physical resource. *)

open Covirt_hw
open Covirt_pisces
open Covirt_kitten
open Covirt_test_util

let mib = Covirt_sim.Units.mib

(* a stack whose machine carries a NIC and an accelerator *)
let device_stack ~config () =
  let s = Helpers.boot_stack ~config () in
  let nic = Phys_mem.add_device s.Helpers.machine.Machine.mem ~name:"nic" ~len:(2 * mib) in
  let fpga =
    Phys_mem.add_device s.Helpers.machine.Machine.mem ~name:"fpga" ~len:(16 * mib)
  in
  (s, nic, fpga)

let test_assign_and_drive () =
  let s, nic, _ = device_stack ~config:Covirt.Config.full () in
  let p = Helpers.pisces s in
  (match Pisces.assign_device p s.Helpers.enclave ~device:"nic" with
  | Ok window -> Alcotest.check Helpers.check_region "window" nic window
  | Error e -> Alcotest.fail e);
  (* the kernel sees its device and can drive it *)
  Alcotest.(check bool) "kernel sees window" true
    (Memmap.device_window (Kitten.memmap s.Helpers.kitten) ~name:"nic"
    = Some nic);
  let ctx = Helpers.ctx s 1 in
  Kitten.poke_device ctx ~name:"nic" ~offset:0x100;
  Alcotest.(check bool) "no fault, node alive" true
    (Machine.panicked s.Helpers.machine = None);
  (* the EPT mirrors the delegation *)
  match
    Covirt.Controller.instance_for s.Helpers.controller
      ~enclave_id:s.Helpers.enclave.Enclave.id
  with
  | Some { Covirt.Controller.ept_mgr = Some mgr; _ } ->
      Alcotest.(check bool) "EPT maps the BAR" true
        (Ept.covers (Covirt.Ept_manager.ept mgr) ~base:nic.Region.base
           ~len:nic.Region.len)
  | _ -> Alcotest.fail "no EPT"

let test_assign_validation () =
  let s, _, _ = device_stack ~config:Covirt.Config.full () in
  let p = Helpers.pisces s in
  Alcotest.(check bool) "unknown device" true
    (Result.is_error (Pisces.assign_device p s.Helpers.enclave ~device:"gpu"));
  (match Pisces.assign_device p s.Helpers.enclave ~device:"nic" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* a second enclave cannot take a delegated device *)
  let other, _ = Helpers.second_enclave s () in
  Alcotest.(check bool) "already delegated" true
    (Result.is_error (Pisces.assign_device p other ~device:"nic"))

let test_foreign_mmio_native_vs_covirt () =
  (* an errant driver pokes a device the enclave was never given *)
  let s, nic, _ = device_stack ~config:Covirt.Config.native () in
  let ctx = Helpers.ctx s 1 in
  Helpers.expect_panic "native: misprogrammed device" (fun () ->
      Kitten.poke_foreign_mmio ctx (nic.Region.base + 0x40));
  let s2, nic2, _ = device_stack ~config:Covirt.Config.mem () in
  let ctx2 = Helpers.ctx s2 1 in
  (match
     Pisces.run_guarded (Helpers.pisces s2) (fun () ->
         Kitten.poke_foreign_mmio ctx2 (nic2.Region.base + 0x40))
   with
  | Error crash ->
      Alcotest.(check int) "offender terminated" s2.Helpers.enclave.Enclave.id
        crash.Pisces.enclave_id
  | Ok () -> Alcotest.fail "not contained");
  Alcotest.(check bool) "node alive" true (Machine.panicked s2.Helpers.machine = None)

let test_delegated_device_protected_from_others () =
  (* enclave A holds the NIC; enclave B pokes it anyway *)
  let s, nic, _ = device_stack ~config:Covirt.Config.mem () in
  let p = Helpers.pisces s in
  (match Pisces.assign_device p s.Helpers.enclave ~device:"nic" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let other_enclave, other_kitten = Helpers.second_enclave s () in
  ignore other_enclave;
  let other_ctx = Kitten.context other_kitten ~core:3 in
  match
    Pisces.run_guarded p (fun () ->
        Kitten.poke_foreign_mmio other_ctx (nic.Region.base + 8))
  with
  | Error crash ->
      Alcotest.(check int) "intruder terminated" other_enclave.Enclave.id
        crash.Pisces.enclave_id;
      (* the NIC's rightful owner is unaffected *)
      Alcotest.(check bool) "owner still running" true
        (Enclave.is_running s.Helpers.enclave)
  | Ok () -> Alcotest.fail "not contained"

let test_revoke_and_stale_driver () =
  let s, nic, _ = device_stack ~config:Covirt.Config.mem () in
  let p = Helpers.pisces s in
  (match Pisces.assign_device p s.Helpers.enclave ~device:"nic" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let ctx = Helpers.ctx s 1 in
  Kitten.poke_device ctx ~name:"nic" ~offset:0;
  (match Pisces.revoke_device p s.Helpers.enclave ~device:"nic" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* ownership is back with the device *)
  (match Phys_mem.owner_at s.Helpers.machine.Machine.mem nic.Region.base with
  | Owner.Device d -> Alcotest.(check string) "returned" "nic" d
  | _ -> Alcotest.fail "ownership not returned");
  (* a stale driver pointer now kernel-page-faults: the driver unmapped
     its BAR on revoke, so its own paging catches the straggler *)
  (match Kitten.store_addr ctx nic.Region.base with
  | exception Machine.Guest_page_fault { gva; _ } ->
      Alcotest.(check int) "pf at BAR" nic.Region.base gva
  | () -> Alcotest.fail "expected kernel page fault");
  (* and the device can be delegated again *)
  let other, _ = Helpers.second_enclave s () in
  match Pisces.assign_device p other ~device:"nic" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_destroy_returns_devices () =
  let s, nic, fpga = device_stack ~config:Covirt.Config.mem () in
  let p = Helpers.pisces s in
  (match Pisces.assign_device p s.Helpers.enclave ~device:"nic" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Pisces.assign_device p s.Helpers.enclave ~device:"fpga" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Pisces.destroy p s.Helpers.enclave;
  List.iter
    (fun (window, name) ->
      match Phys_mem.owner_at s.Helpers.machine.Machine.mem window.Region.base with
      | Owner.Device d -> Alcotest.(check string) "returned" name d
      | _ -> Alcotest.fail "device not returned on destroy")
    [ (nic, "nic"); (fpga, "fpga") ]

let test_nautilus_drives_devices_too () =
  (* device delegation is kernel-agnostic *)
  let machine = Helpers.small_machine () in
  let nic = Phys_mem.add_device machine.Machine.mem ~name:"nic" ~len:(2 * mib) in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let _controller =
    Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes) ~config:Covirt.Config.mem
  in
  let pisces = Covirt_hobbes.Hobbes.pisces hobbes in
  let kernel, get = Covirt_nautilus.Nautilus.make_kernel () in
  let enclave =
    Pisces.create_enclave pisces ~name:"naut" ~cores:[ 1 ] ~mem:[ (0, 128 * mib) ] ()
    |> Result.get_ok
  in
  Pisces.boot pisces enclave ~kernel |> Result.get_ok;
  let naut = Option.get (get ()) in
  (match Pisces.assign_device pisces enclave ~device:"nic" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Covirt_nautilus.Nautilus.wild_write naut ~core:1 (nic.Region.base + 8);
  Alcotest.(check bool) "nautilus drove its NIC" true
    (Machine.panicked machine = None)

let () =
  Alcotest.run "devices"
    [
      ( "delegation",
        [
          Alcotest.test_case "assign and drive" `Quick test_assign_and_drive;
          Alcotest.test_case "validation" `Quick test_assign_validation;
          Alcotest.test_case "destroy returns" `Quick test_destroy_returns_devices;
          Alcotest.test_case "nautilus too" `Quick test_nautilus_drives_devices_too;
        ] );
      ( "protection",
        [
          Alcotest.test_case "foreign MMIO native vs covirt" `Quick
            test_foreign_mmio_native_vs_covirt;
          Alcotest.test_case "delegated device protected" `Quick
            test_delegated_device_protected_from_others;
          Alcotest.test_case "revoke and stale driver" `Quick
            test_revoke_and_stale_driver;
        ] );
    ]
