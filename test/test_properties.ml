(* Cross-cutting property tests: algebraic laws and model invariants
   that must hold for any input, checked with qcheck. *)

open Covirt_hw
open Covirt_test_util

let mib = Covirt_sim.Units.mib

(* --- Region.Set algebra --- *)

let gen_set =
  QCheck2.Gen.(
    map
      (fun regions ->
        Region.Set.of_list
          (List.map (fun (b, l) -> Region.make ~base:b ~len:l) regions))
      (list_size (int_range 0 10) (pair (int_range 0 500) (int_range 1 50))))

let prop_union_commutes =
  Helpers.qtest "union commutes" QCheck2.Gen.(pair gen_set gen_set)
    (fun (a, b) ->
      Region.Set.equal (Region.Set.union a b) (Region.Set.union b a))

let prop_inter_commutes =
  Helpers.qtest "inter commutes" QCheck2.Gen.(pair gen_set gen_set)
    (fun (a, b) ->
      Region.Set.equal (Region.Set.inter a b) (Region.Set.inter b a))

let prop_diff_then_inter_empty =
  Helpers.qtest "diff removes intersection" QCheck2.Gen.(pair gen_set gen_set)
    (fun (a, b) ->
      Region.Set.is_empty (Region.Set.inter (Region.Set.diff a b) b))

let prop_union_total_bytes =
  Helpers.qtest "inclusion-exclusion on bytes" QCheck2.Gen.(pair gen_set gen_set)
    (fun (a, b) ->
      Region.Set.total_bytes (Region.Set.union a b)
      + Region.Set.total_bytes (Region.Set.inter a b)
      = Region.Set.total_bytes a + Region.Set.total_bytes b)

let prop_add_remove_roundtrip =
  Helpers.qtest "remove undoes add on disjoint region"
    QCheck2.Gen.(pair gen_set (pair (int_range 1000 2000) (int_range 1 50)))
    (fun (s, (base, len)) ->
      (* base range chosen beyond gen_set's universe: always disjoint *)
      let r = Region.make ~base ~len in
      Region.Set.equal (Region.Set.remove (Region.Set.add s r) r) s)

(* --- Cost model monotonicity --- *)

let model = Cost_model.default

let prop_random_cost_monotone_ws =
  Helpers.qtest "random cost monotone in working set"
    QCheck2.Gen.(pair (int_range 1 28) (int_range 1 28))
    (fun (a, b) ->
      let lo = 1 lsl min a b and hi = 1 lsl max a b in
      Cost_model.expected_random_cycles model ~working_set:lo ~sharers:1
      <= Cost_model.expected_random_cycles model ~working_set:hi ~sharers:1
         +. 1e-9)

let prop_random_cost_monotone_sharers =
  Helpers.qtest "random cost monotone in sharers"
    QCheck2.Gen.(pair (int_range 20 27) (pair (int_range 1 8) (int_range 1 8)))
    (fun (ws_log, (a, b)) ->
      let ws = 1 lsl ws_log in
      let lo = min a b and hi = max a b in
      Cost_model.expected_random_cycles model ~working_set:ws ~sharers:lo
      <= Cost_model.expected_random_cycles model ~working_set:ws ~sharers:hi
         +. 1e-9)

let prop_cost_bounded_by_dram =
  Helpers.qtest "random cost within [l1, dram_local]"
    QCheck2.Gen.(int_range 1 30)
    (fun ws_log ->
      let c =
        Cost_model.expected_random_cycles model ~working_set:(1 lsl ws_log)
          ~sharers:1
      in
      c >= float_of_int model.Cost_model.l1_hit
      && c <= float_of_int model.Cost_model.dram_local)

let prop_miss_rate_bounds =
  Helpers.qtest "tlb miss rate in [0,1]"
    QCheck2.Gen.(pair (oneofl [ Addr.Page_4k; Addr.Page_2m; Addr.Page_1g ])
                   (int_range 1 34))
    (fun (ps, ws_log) ->
      let r =
        Tlb.bulk_miss_rate ~model ~page_size:ps ~working_set:(1 lsl ws_log)
      in
      r >= 0.0 && r <= 1.0)

(* --- TLB/EPT interplay --- *)

let prop_tlb_never_lies_after_flush =
  (* after flush_all, lookup must miss for every previously installed
     address *)
  Helpers.qtest "flush_all forgets everything"
    QCheck2.Gen.(list_size (int_range 1 100) (int_range 0 1000))
    (fun pages ->
      let tlb = Tlb.create ~model ~rng:(Covirt_sim.Rng.create ~seed:5) in
      List.iter
        (fun p -> Tlb.install tlb (p * Addr.page_size_4k) ~page_size:Addr.Page_4k)
        pages;
      Tlb.flush_all tlb;
      List.for_all
        (fun p -> Tlb.lookup tlb (p * Addr.page_size_4k) = None)
        pages)

let prop_flush_range_selective =
  Helpers.qtest "flush_range keeps disjoint entries"
    QCheck2.Gen.(pair (int_range 0 50) (int_range 60 120))
    (fun (flushed_page, kept_page) ->
      let tlb = Tlb.create ~model ~rng:(Covirt_sim.Rng.create ~seed:6) in
      let addr p = p * Addr.page_size_4k in
      Tlb.install tlb (addr flushed_page) ~page_size:Addr.Page_4k;
      Tlb.install tlb (addr kept_page) ~page_size:Addr.Page_4k;
      Tlb.flush_range tlb
        (Region.make ~base:(addr flushed_page) ~len:Addr.page_size_4k);
      Tlb.lookup tlb (addr flushed_page) = None
      && Tlb.lookup tlb (addr kept_page) <> None)

(* --- Phys_mem conservation --- *)

let prop_phys_mem_conservation =
  Helpers.qtest ~count:80 "alloc/release conserves free bytes"
    QCheck2.Gen.(list_size (int_range 1 15)
                   (pair (int_range 0 1) (int_range 1 32)))
    (fun requests ->
      let topology =
        Numa.create ~zones:2 ~cores_per_zone:2 ~mem_per_zone:(1024 * mib)
      in
      let mem = Phys_mem.create ~topology ~host_reserved_per_zone:(64 * mib) in
      let free0 =
        Phys_mem.free_bytes mem ~zone:0 + Phys_mem.free_bytes mem ~zone:1
      in
      let allocated =
        List.filter_map
          (fun (zone, len_mb) ->
            match
              Phys_mem.alloc mem ~owner:(Owner.Enclave 1) ~zone
                ~len:(len_mb * mib)
            with
            | Ok r -> Some r
            | Error _ -> None)
          requests
      in
      let mid =
        Phys_mem.free_bytes mem ~zone:0 + Phys_mem.free_bytes mem ~zone:1
      in
      let allocated_bytes =
        List.fold_left (fun acc r -> acc + r.Region.len) 0 allocated
      in
      List.iter (Phys_mem.release mem) allocated;
      let fin =
        Phys_mem.free_bytes mem ~zone:0 + Phys_mem.free_bytes mem ~zone:1
      in
      mid = free0 - allocated_bytes && fin = free0)

let prop_phys_mem_alloc_disjoint =
  Helpers.qtest ~count:80 "allocations never overlap"
    QCheck2.Gen.(list_size (int_range 2 12) (int_range 1 64))
    (fun sizes ->
      let topology =
        Numa.create ~zones:1 ~cores_per_zone:2 ~mem_per_zone:(1024 * mib)
      in
      let mem = Phys_mem.create ~topology ~host_reserved_per_zone:(64 * mib) in
      let regions =
        List.filter_map
          (fun len_mb ->
            Result.to_option
              (Phys_mem.alloc mem ~owner:Owner.Host ~zone:0 ~len:(len_mb * mib)))
          sizes
      in
      let rec pairwise_disjoint = function
        | [] -> true
        | r :: rest ->
            List.for_all (fun r' -> not (Region.overlaps r r')) rest
            && pairwise_disjoint rest
      in
      pairwise_disjoint regions)

(* --- Guest PT / EPT share walk semantics --- *)

let prop_guest_pt_matches_ept_semantics =
  Helpers.qtest ~count:60 "guest PT translate == EPT translate (identity)"
    QCheck2.Gen.(list_size (int_range 1 10)
                   (pair (int_range 0 100) (int_range 1 30)))
    (fun regions ->
      let pt = Guest_pt.create () in
      let ept = Ept.create () in
      List.iter
        (fun (page, pages) ->
          let r =
            Region.make ~base:(page * Addr.page_size_4k)
              ~len:(pages * Addr.page_size_4k)
          in
          Guest_pt.map_region pt r;
          Ept.map_region ept r)
        regions;
      List.for_all
        (fun page ->
          let addr = page * Addr.page_size_4k in
          Guest_pt.maps pt addr
          = Result.is_ok (Ept.translate ept addr ~access:`Read))
        (List.init 140 Fun.id))

(* --- RNG statistical sanity --- *)

let prop_rng_bool_probability =
  Helpers.qtest ~count:20 "Rng.bool respects p"
    QCheck2.Gen.(pair (int_range 0 1000) (float_range 0.1 0.9))
    (fun (seed, p) ->
      let rng = Covirt_sim.Rng.create ~seed in
      let n = 5000 in
      let hits = ref 0 in
      for _ = 1 to n do
        if Covirt_sim.Rng.bool rng ~p then incr hits
      done;
      let observed = float_of_int !hits /. float_of_int n in
      Float.abs (observed -. p) < 0.05)

let prop_rng_int_uniformish =
  Helpers.qtest ~count:10 "Rng.int covers the range"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let rng = Covirt_sim.Rng.create ~seed in
      let bound = 8 in
      let seen = Array.make bound false in
      for _ = 1 to 1000 do
        seen.(Covirt_sim.Rng.int rng ~bound) <- true
      done;
      Array.for_all Fun.id seen)

(* --- Machine-level safety: TSC monotonicity under arbitrary ops --- *)

type machine_op = Load | Store | Ipi | Timer | Stream | Random_access | Flops

let gen_machine_op =
  QCheck2.Gen.oneofl [ Load; Store; Ipi; Timer; Stream; Random_access; Flops ]

let prop_tsc_monotone =
  Helpers.qtest ~count:40 "TSCs never go backwards"
    QCheck2.Gen.(list_size (int_range 1 40) gen_machine_op)
    (fun ops ->
      let s =
        Helpers.boot_stack ~config:Covirt.Config.mem_ipi
          ~mem:[ (0, 256 * mib) ]
          ~cores:[ 1; 2 ] ()
      in
      let m = s.Helpers.machine in
      let ctx = Helpers.ctx s 1 in
      let buf =
        match Covirt_kitten.Kitten.kalloc s.Helpers.kitten ~bytes:(8 * mib) with
        | Ok a -> a
        | Error e -> failwith e
      in
      let snapshot () =
        Array.init (Machine.ncores m) (fun i -> Cpu.rdtsc (Machine.cpu m i))
      in
      let apply op =
        match op with
        | Load -> Covirt_kitten.Kitten.load_addr ctx buf
        | Store -> Covirt_kitten.Kitten.store_addr ctx (buf + 64)
        | Ipi -> Covirt_kitten.Kitten.send_ipi ctx ~dest:2 ~vector:0x50
        | Timer -> Machine.timer_tick m ctx.Covirt_kitten.Kitten.cpu
        | Stream ->
            Machine.charge_stream m ctx.Covirt_kitten.Kitten.cpu ~base:buf
              ~bytes:(1 * mib) ~sharers:1 ~page_size:Addr.Page_2m
        | Random_access ->
            Machine.charge_random m ctx.Covirt_kitten.Kitten.cpu ~ops:1000
              ~base:buf ~working_set:(8 * mib) ~sharers:1
              ~page_size:Addr.Page_2m
        | Flops -> Machine.charge_flops m ctx.Covirt_kitten.Kitten.cpu 5000
      in
      List.for_all
        (fun op ->
          let before = snapshot () in
          apply op;
          let after = snapshot () in
          Array.for_all2 (fun a b -> b >= a) before after)
        ops)

(* --- Whitelist --- *)

let prop_whitelist_grant_revoke_involution =
  Helpers.qtest "revoke undoes grant"
    QCheck2.Gen.(pair (int_range 32 255) (int_range 0 9))
    (fun (vector, dest) ->
      let wl = Covirt.Whitelist.create ~enclave_cores:[ 1 ] in
      let icr = { Apic.dest; vector; kind = Apic.Fixed } in
      let before = Covirt.Whitelist.permits wl ~icr in
      Covirt.Whitelist.grant wl ~vector ~dest;
      let during = Covirt.Whitelist.permits wl ~icr in
      Covirt.Whitelist.revoke wl ~vector;
      let after = Covirt.Whitelist.permits wl ~icr in
      during && after = before)

let () =
  Alcotest.run "properties"
    [
      ( "region-algebra",
        [
          prop_union_commutes;
          prop_inter_commutes;
          prop_diff_then_inter_empty;
          prop_union_total_bytes;
          prop_add_remove_roundtrip;
        ] );
      ( "cost-model",
        [
          prop_random_cost_monotone_ws;
          prop_random_cost_monotone_sharers;
          prop_cost_bounded_by_dram;
          prop_miss_rate_bounds;
        ] );
      ( "tlb",
        [ prop_tlb_never_lies_after_flush; prop_flush_range_selective ] );
      ( "phys-mem",
        [ prop_phys_mem_conservation; prop_phys_mem_alloc_disjoint ] );
      ("paging", [ prop_guest_pt_matches_ept_semantics ]);
      ("rng", [ prop_rng_bool_probability; prop_rng_int_uniformish ]);
      ("machine", [ prop_tsc_monotone ]);
      ("whitelist", [ prop_whitelist_grant_revoke_involution ]);
    ]
