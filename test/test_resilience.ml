(* Supervision subsystem tests: fault-injection engine determinism and
   scheduling, restart backoff and recovery-timeline determinism, the
   circuit breaker and its quarantine ledger, watchdog detection of
   wedged enclaves, blast-radius (healthy siblings untouched), the
   fault-report subscription feed, and the end-to-end supervised
   soak. *)

open Covirt_hw
open Covirt_pisces
open Covirt_kitten
open Covirt_resilience
open Covirt_test_util

let mib = Covirt_sim.Units.mib
let gib = Covirt_sim.Units.gib

(* A supervised two-enclave stack on the small test machine: "prime"
   takes the faults, "buddy" is the bystander. *)
type sstack = {
  machine : Machine.t;
  hobbes : Covirt_hobbes.Hobbes.t;
  ctrl : Covirt.Controller.t;
  sup : Supervisor.t;
}

let test_policy =
  {
    Supervisor.max_restarts = 2;
    backoff_base = 100_000;
    backoff_factor = 2;
    backoff_cap = 1_000_000;
    stability_window = 100_000_000;
    watchdog_deadline = 2_000_000;
  }

let supervised_stack ?(policy = test_policy) ?(seed = 7) ?(buddy = false) () =
  let machine =
    Machine.create ~seed ~zones:2 ~cores_per_zone:2 ~mem_per_zone:(2 * gib)
      ~host_reserved_per_zone:(128 * mib) ()
  in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let ctrl =
    Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes)
      ~config:Covirt.Config.full
  in
  let sup = Supervisor.create ~policy ~seed ctrl in
  let manage name core zone =
    match
      Supervisor.manage sup ~name ~launch:(fun () ->
          Covirt_hobbes.Hobbes.launch_enclave hobbes ~name ~cores:[ core ]
            ~mem:[ (zone, 256 * mib) ]
            ())
    with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "supervised_stack: launch %s: %s" name e
  in
  manage "prime" 1 0;
  if buddy then manage "buddy" 3 1;
  { machine; hobbes; ctrl; sup }

let host_cpu s = Pisces.host_cpu (Covirt_hobbes.Hobbes.pisces s.hobbes)

let is_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let show_timeline sup =
  List.map
    (fun e -> Format.asprintf "%a" Supervisor.pp_event e)
    (Supervisor.timeline sup)

(* ------------------------------------------------------------------ *)
(* Fault injector.                                                     *)

let test_injector_determinism () =
  let draw_seq seed =
    let inj = Fault_injector.create ~seed () in
    List.init 40 (fun _ ->
        Format.asprintf "%a"
          Fault_injector.pp_fault
          (Fault_injector.draw inj ~machine_mem:(4 * gib) ~victim_bsp:3))
  in
  Alcotest.(check (list string))
    "equal seeds, equal fault streams" (draw_seq 11) (draw_seq 11);
  Alcotest.(check bool)
    "different seeds diverge" true
    (draw_seq 11 <> draw_seq 12)

let test_injector_schedule () =
  let wedge = Fault_injector.Wedge { cycles = 1000 } in
  let inj =
    Fault_injector.create ~seed:1
      ~rules:
        [
          { Fault_injector.target = "a"; trigger = At_trial 3; fault = wedge };
          {
            Fault_injector.target = "a";
            trigger = Every_n_trials 2;
            fault = Fault_injector.Msr_write;
          };
          {
            Fault_injector.target = "b";
            trigger = At_cycle 1_000;
            fault = Fault_injector.Port_reset;
          };
        ]
      ()
  in
  let due target trial now =
    match Fault_injector.due inj ~target ~trial ~now with
    | Fault_injector.Due faults -> faults
    | Fault_injector.End_of_schedule -> []
  in
  Alcotest.(check int) "trial 1: nothing for a" 0 (List.length (due "a" 1 0));
  Alcotest.(check int) "trial 2: every-2 fires" 1 (List.length (due "a" 2 0));
  (match due "a" 3 0 with
  | [ Fault_injector.Wedge _ ] -> ()
  | l -> Alcotest.failf "trial 3: expected the wedge, got %d faults" (List.length l));
  Alcotest.(check int) "one-shot consumed" 0
    (List.length
       (List.filter Fault_injector.is_wedge (due "a" 3 0)));
  Alcotest.(check int) "trial 4: every-2 again" 1 (List.length (due "a" 4 0));
  Alcotest.(check int) "cycle trigger not yet" 0 (List.length (due "b" 1 999));
  (match due "b" 2 5_000 with
  | [ Fault_injector.Port_reset ] -> ()
  | _ -> Alcotest.fail "cycle trigger should fire once past the deadline");
  Alcotest.(check int) "cycle trigger consumed" 0
    (List.length (due "b" 3 9_000));
  Alcotest.(check int) "target filter" 0 (List.length (due "c" 2 0))

(* ------------------------------------------------------------------ *)
(* Supervisor.                                                         *)

let crash s name =
  Supervisor.run_protected s.sup ~name (fun ctx -> Kitten.wrmsr_sensitive ctx)

let test_recovery_and_timeline_determinism () =
  let run_scenario () =
    let s = supervised_stack ~seed:7 () in
    (match crash s "prime" with
    | `Recovered -> ()
    | _ -> Alcotest.fail "first crash should recover");
    Cpu.charge (host_cpu s) 500_000;
    (match
       Supervisor.run_protected s.sup ~name:"prime" (fun ctx ->
           Kitten.trigger_double_fault ctx)
     with
    | `Recovered -> ()
    | _ -> Alcotest.fail "second crash should recover");
    Alcotest.(check int) "two restarts consumed" 2
      (Supervisor.attempts s.sup ~name:"prime");
    Alcotest.(check int) "incarnation 2" 2
      (Supervisor.incarnation s.sup ~name:"prime");
    (match Supervisor.run_protected s.sup ~name:"prime" (fun _ -> ()) with
    | `Ok -> ()
    | _ -> Alcotest.fail "recovered enclave should run");
    show_timeline s.sup
  in
  let a = run_scenario () in
  let b = run_scenario () in
  Alcotest.(check (list string))
    "same seed, same recovery timeline (backoff included)" a b;
  (* The timeline tells the whole story, in order. *)
  let kinds =
    List.filter
      (fun line ->
        not
          (String.length line = 0))
      a
  in
  Alcotest.(check bool) "timeline non-trivial" true (List.length kinds >= 8)

let test_backoff_grows_and_caps () =
  let policy = { test_policy with Supervisor.max_restarts = 6 } in
  let s = supervised_stack ~policy () in
  for i = 1 to 6 do
    match crash s "prime" with
    | `Recovered -> ()
    | _ -> Alcotest.failf "crash %d should recover" i
  done;
  let delays =
    List.filter_map
      (fun (e : Supervisor.event) ->
        match e.Supervisor.kind with
        | Supervisor.Backing_off { cycles; attempt } -> Some (attempt, cycles)
        | _ -> None)
      (Supervisor.timeline s.sup)
  in
  Alcotest.(check int) "six backoffs" 6 (List.length delays);
  List.iter
    (fun (attempt, cycles) ->
      let base = test_policy.Supervisor.backoff_base in
      let jitter = base / 8 in
      let exact =
        min policy.Supervisor.backoff_cap
          (base * int_of_float (2. ** float_of_int (attempt - 1)))
      in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d delay in [%d, %d)" attempt exact
           (exact + jitter))
        true
        (cycles >= exact && cycles < exact + jitter))
    delays

let test_circuit_breaker () =
  let s = supervised_stack () in
  (match crash s "prime" with `Recovered -> () | _ -> Alcotest.fail "crash 1");
  (match crash s "prime" with `Recovered -> () | _ -> Alcotest.fail "crash 2");
  (match crash s "prime" with
  | `Quarantined why ->
      Alcotest.(check bool) "reason names the budget" true
        (is_infix ~affix:"restart budget exhausted (2/2" why)
  | _ -> Alcotest.fail "third crash should trip the breaker");
  (match Supervisor.status s.sup ~name:"prime" with
  | Supervisor.Quarantined _ -> ()
  | Supervisor.Healthy -> Alcotest.fail "status should be quarantined");
  (match Supervisor.quarantine_ledger s.sup with
  | [ (name, why) ] ->
      Alcotest.(check string) "ledger entry" "prime" name;
      Alcotest.(check bool) "ledger explains the last fault" true
        (is_infix ~affix:"msr-violation" why)
  | l -> Alcotest.failf "ledger should have one entry, has %d" (List.length l));
  (* Quarantine is permanent: nothing runs any more. *)
  let ran = ref false in
  (match Supervisor.run_protected s.sup ~name:"prime" (fun _ -> ran := true) with
  | `Quarantined _ -> ()
  | _ -> Alcotest.fail "quarantined enclave must not relaunch");
  Alcotest.(check bool) "code never ran" false !ran;
  Alcotest.(check bool) "enclave gone" true
    (Supervisor.enclave s.sup ~name:"prime" = None)

let test_stability_window_resets_budget () =
  let policy = { test_policy with Supervisor.stability_window = 1_000_000 } in
  let s = supervised_stack ~policy () in
  (match crash s "prime" with `Recovered -> () | _ -> Alcotest.fail "crash 1");
  Alcotest.(check int) "one restart consumed" 1
    (Supervisor.attempts s.sup ~name:"prime");
  (* A long healthy stretch recharges the budget... *)
  Cpu.charge (host_cpu s) 2_000_000;
  (match Supervisor.run_protected s.sup ~name:"prime" (fun _ -> ()) with
  | `Ok -> ()
  | _ -> Alcotest.fail "healthy run");
  Alcotest.(check int) "budget reset after stability window" 0
    (Supervisor.attempts s.sup ~name:"prime");
  (* ...so the breaker needs max_restarts fresh failures again. *)
  (match crash s "prime" with `Recovered -> () | _ -> Alcotest.fail "crash 2");
  Alcotest.(check int) "counting from zero again" 1
    (Supervisor.attempts s.sup ~name:"prime")

(* ------------------------------------------------------------------ *)
(* Watchdog.                                                           *)

let test_watchdog_catches_wedge () =
  let s = supervised_stack () in
  let dog = Watchdog.create s.sup in
  let old_id =
    match Supervisor.enclave s.sup ~name:"prime" with
    | Some e -> e.Enclave.id
    | None -> Alcotest.fail "prime should be up"
  in
  (* A healthy enclave is never flagged, no matter how often polled. *)
  Alcotest.(check (list string)) "first poll arms the snapshot" []
    (Watchdog.poll dog);
  (match
     Supervisor.run_protected s.sup ~name:"prime" (fun ctx ->
         Kitten.heartbeat ctx)
   with
  | `Ok -> ()
  | _ -> Alcotest.fail "heartbeat run");
  Cpu.charge (host_cpu s) 3_000_000;
  Alcotest.(check (list string)) "progress was seen, deadline re-armed" []
    (Watchdog.poll dog);
  (* Now wedge: containment sees nothing... *)
  (match
     Supervisor.run_protected s.sup ~name:"prime" (fun ctx ->
         Kitten.spin_wedged ctx ~cycles:10_000_000)
   with
  | `Ok -> ()
  | _ -> Alcotest.fail "a wedge must not trip containment");
  Cpu.charge (host_cpu s) 1_000_000;
  Alcotest.(check (list string)) "within deadline: benefit of the doubt" []
    (Watchdog.poll dog);
  Cpu.charge (host_cpu s) 2_500_000;
  (* ...but the watchdog does. *)
  Alcotest.(check (list string)) "escalated" [ "prime" ] (Watchdog.poll dog);
  Alcotest.(check int) "relaunched as a new incarnation" 1
    (Supervisor.incarnation s.sup ~name:"prime");
  (match Supervisor.status s.sup ~name:"prime" with
  | Supervisor.Healthy -> ()
  | Supervisor.Quarantined why -> Alcotest.failf "quarantined: %s" why);
  (* The wedge left a watchdog-timeout report against the dead
     incarnation — the ledger trail for post-mortems. *)
  let reports = Covirt.reports s.ctrl ~enclave_id:old_id in
  Alcotest.(check bool) "watchdog-timeout report recorded" true
    (List.exists
       (fun (r : Covirt.Fault_report.t) ->
         r.Covirt.Fault_report.kind = Covirt.Fault_report.Watchdog_timeout
         && r.Covirt.Fault_report.fatal)
       reports);
  (* And the fresh incarnation runs. *)
  match Supervisor.run_protected s.sup ~name:"prime" (fun _ -> ()) with
  | `Ok -> ()
  | _ -> Alcotest.fail "recovered wedge should run"

(* ------------------------------------------------------------------ *)
(* Blast radius.                                                       *)

let buddy_solve s =
  let res = ref nan in
  (match
     Supervisor.run_protected s.sup ~name:"buddy" (fun ctx ->
         match
           Covirt_workloads.Hpcg.run [ ctx ] ~nominal_dim:48 ~real_dim:10
             ~iterations:15 ()
         with
         | Ok r -> res := r.Covirt_workloads.Hpcg.final_residual
         | Error e -> Alcotest.failf "buddy hpcg: %s" e)
   with
  | `Ok -> ()
  | _ -> Alcotest.fail "buddy must stay healthy");
  !res

let test_sibling_untouched () =
  (* Reference: the same solve on a machine that never saw a fault. *)
  let clean = supervised_stack ~buddy:true () in
  let reference = buddy_solve clean in
  (* Stormy run: prime crashes and wedges repeatedly around buddy. *)
  let s =
    supervised_stack
      ~policy:{ test_policy with Supervisor.max_restarts = 10 }
      ~buddy:true ()
  in
  let dog = Watchdog.create s.sup in
  for _ = 1 to 3 do
    match crash s "prime" with
    | `Recovered -> ()
    | _ -> Alcotest.fail "prime should recover"
  done;
  (match
     Supervisor.run_protected s.sup ~name:"prime" (fun ctx ->
         Kitten.spin_wedged ctx ~cycles:10_000_000)
   with
  | `Ok -> ()
  | _ -> Alcotest.fail "wedge");
  (* Keep buddy visibly alive while the wedge times out. *)
  for _ = 1 to 4 do
    Cpu.charge (host_cpu s) 1_000_000;
    (match
       Supervisor.run_protected s.sup ~name:"buddy" (fun ctx ->
           Kitten.heartbeat ctx)
     with
    | `Ok -> ()
    | _ -> Alcotest.fail "buddy heartbeat");
    ignore (Watchdog.poll dog)
  done;
  Alcotest.(check int) "prime went through recoveries" 4
    (Supervisor.incarnation s.sup ~name:"prime");
  (* Buddy: never restarted, never corrupted, identical results. *)
  Alcotest.(check int) "buddy never restarted" 0
    (Supervisor.incarnation s.sup ~name:"buddy");
  (match Supervisor.kitten s.sup ~name:"buddy" with
  | Some k -> Alcotest.(check bool) "buddy uncorrupted" true (Kitten.health k = `Ok)
  | None -> Alcotest.fail "buddy should be up");
  let stormy = buddy_solve s in
  Alcotest.(check (float 0.0)) "bit-identical solve next to the storm"
    reference stormy

(* ------------------------------------------------------------------ *)
(* Controller satellites: the subscription feed, archived dropped-IPI
   counts, and surgical detach.                                        *)

let test_subscription_feed () =
  let seen = ref [] in
  let s = supervised_stack () in
  Covirt.subscribe s.ctrl (fun r -> seen := r :: !seen);
  (match crash s "prime" with `Recovered -> () | _ -> Alcotest.fail "crash");
  match !seen with
  | [ r ] ->
      Alcotest.(check bool) "fatal msr report" true
        (r.Covirt.Fault_report.fatal
        && r.Covirt.Fault_report.kind = Covirt.Fault_report.Msr_violation)
  | l -> Alcotest.failf "expected 1 report on the feed, got %d" (List.length l)

let test_dropped_ipis_survive_destroy () =
  let stack = Helpers.boot_stack () in
  let victim, _ = Helpers.second_enclave stack () in
  let ctx = Helpers.ctx stack 1 in
  (* Cross-enclave IPI on an ungranted vector: dropped, not fatal. *)
  Covirt_kitten.Kitten.send_ipi ctx ~dest:(Enclave.bsp victim) ~vector:0x77;
  let id = stack.Helpers.enclave.Enclave.id in
  Alcotest.(check int) "drop counted while live" 1
    (Covirt.dropped_ipis stack.Helpers.controller ~enclave_id:id);
  Pisces.destroy (Helpers.pisces stack) stack.Helpers.enclave;
  Alcotest.(check int) "drop count survives destruction" 1
    (Covirt.dropped_ipis stack.Helpers.controller ~enclave_id:id)

let test_detach_spares_foreign_hooks () =
  let machine = Helpers.small_machine () in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let hooks = Pisces.hooks (Covirt_hobbes.Hobbes.pisces hobbes) in
  let mine_fired = ref 0 in
  let mine (_ : Enclave.t) = incr mine_fired in
  hooks.Hooks.on_enclave_created <- hooks.Hooks.on_enclave_created @ [ mine ];
  let before = List.length hooks.Hooks.on_enclave_created in
  let ctrl =
    Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes)
      ~config:Covirt.Config.full
  in
  Alcotest.(check bool) "controller added hooks" true
    (List.length hooks.Hooks.on_enclave_created > before);
  Covirt.disable ctrl;
  Alcotest.(check int) "only the controller's hooks were removed" before
    (List.length hooks.Hooks.on_enclave_created);
  Alcotest.(check bool) "the foreign hook is still the same closure" true
    (List.memq mine hooks.Hooks.on_enclave_created);
  (* And it still fires. *)
  (match
     Covirt_hobbes.Hobbes.launch_enclave hobbes ~name:"after" ~cores:[ 1 ]
       ~mem:[ (0, 128 * mib) ]
       ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "post-detach launch: %s" e);
  Alcotest.(check int) "foreign hook fired" 1 !mine_fired

(* ------------------------------------------------------------------ *)
(* The end-to-end soak.                                                *)

let test_supervised_soak () =
  let r = Soak.run () in
  Alcotest.(check bool) "at least 100 faults injected" true
    (r.Soak.faults_injected >= 100);
  Alcotest.(check bool) "recoveries actually happened" true
    (r.Soak.fatal_recoveries >= 50);
  Alcotest.(check int) "every wedge was detected" r.Soak.wedges_injected
    r.Soak.wedges_detected;
  Alcotest.(check bool) "wedges were scheduled" true
    (r.Soak.wedges_injected >= 6);
  Alcotest.(check bool) "restart budget respected throughout" true
    r.Soak.budget_respected;
  Alcotest.(check bool) "sibling unperturbed, residual identical" true
    r.Soak.sibling_unperturbed;
  List.iter
    (fun (name, why) ->
      Alcotest.(check bool)
        (name ^ " quarantine explained")
        true
        (String.length why > 0))
    r.Soak.quarantined;
  (* Both workers took faults. *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " was restarted") true
        (List.assoc name r.Soak.incarnations > 0))
    [ "worker-a"; "worker-b" ];
  (* Same seed, same soak — timelines and all. *)
  let r2 = Soak.run () in
  Alcotest.(check (list string)) "soak is deterministic"
    (List.map (Format.asprintf "%a" Supervisor.pp_event) r.Soak.timeline)
    (List.map (Format.asprintf "%a" Supervisor.pp_event) r2.Soak.timeline);
  Alcotest.(check (float 0.0)) "soak residual deterministic"
    r.Soak.sibling_residual r2.Soak.sibling_residual

(* Dense-node blast radius: inject a wild write into the Zipf-hottest
   tenant mid-churn and compare against the identical clean run.  The
   injection is an *extra* action on its op slot (it consumes no rng
   draws), so every tenant outside the victim's warm set — the victim
   plus its export/attach ring neighbours — must see a byte-identical
   latency histogram: p99 delta exactly zero, not merely small. *)
let test_hot_tenant_fault_blast_radius () =
  let module L = Covirt_loadgen.Loadgen in
  let base = L.spec ~tenants:16 ~ops:300 ~shards:2 () in
  let clean = L.run ~domains:1 base in
  let faulted =
    L.run ~domains:1
      { base with L.fault = Some { L.tenant = 0; after_op = 100 } }
  in
  let t = L.totals faulted in
  Alcotest.(check int) "fault injected" 1 t.L.faults_injected;
  Alcotest.(check int) "victim recovered" 1 t.L.recoveries;
  Alcotest.(check bool) "faulted run audit clean" true (L.ok faulted);
  Array.iter
    (fun (s : L.shard_report) ->
      Alcotest.(check int) "no violations mid-churn fault" 0 s.L.violations)
    faulted.L.shards;
  (* Tenant 0 lives on shard 0 (8 tenants per shard); its ring
     neighbours there are tenant 1 (outgoing export) and tenant 7
     (incoming).  Everyone else is cold and must be untouched. *)
  let warm = [ 0; 1; 7 ] in
  let cold_hists r =
    List.filter (fun (g, _) -> not (List.mem g warm)) (L.per_tenant r)
  in
  let clean_cold = cold_hists clean and faulted_cold = cold_hists faulted in
  Alcotest.(check int) "same cold tenant population"
    (List.length clean_cold) (List.length faulted_cold);
  List.iter2
    (fun (g, (h1 : Covirt_obs.Metrics.Hist.t)) (g', h2) ->
      Alcotest.(check int) "tenant ids align" g g';
      let same =
        h1.Covirt_obs.Metrics.Hist.n = h2.Covirt_obs.Metrics.Hist.n
        && h1.Covirt_obs.Metrics.Hist.sum = h2.Covirt_obs.Metrics.Hist.sum
        && h1.Covirt_obs.Metrics.Hist.counts = h2.Covirt_obs.Metrics.Hist.counts
      in
      Alcotest.(check bool)
        (Printf.sprintf "cold tenant %d latency histogram untouched" g)
        true same;
      let p99 h = Covirt_obs.Metrics.Hist.quantile h ~p:99. in
      Alcotest.(check (float 0.))
        (Printf.sprintf "cold tenant %d p99 delta is zero" g)
        (p99 h1) (p99 h2))
    clean_cold faulted_cold

let () =
  Alcotest.run "resilience"
    [
      ( "injector",
        [
          Alcotest.test_case "seeded determinism" `Quick
            test_injector_determinism;
          Alcotest.test_case "schedule triggers" `Quick test_injector_schedule;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "recovery timeline determinism" `Quick
            test_recovery_and_timeline_determinism;
          Alcotest.test_case "backoff grows and caps" `Quick
            test_backoff_grows_and_caps;
          Alcotest.test_case "circuit breaker quarantines" `Quick
            test_circuit_breaker;
          Alcotest.test_case "stability window resets budget" `Quick
            test_stability_window_resets_budget;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "catches a wedged enclave" `Quick
            test_watchdog_catches_wedge;
        ] );
      ( "blast radius",
        [
          Alcotest.test_case "healthy sibling untouched" `Quick
            test_sibling_untouched;
          Alcotest.test_case "hot-tenant fault mid-churn spares cold tenants"
            `Quick test_hot_tenant_fault_blast_radius;
        ] );
      ( "controller",
        [
          Alcotest.test_case "fault-report subscription feed" `Quick
            test_subscription_feed;
          Alcotest.test_case "dropped IPIs survive destroy" `Quick
            test_dropped_ipis_survive_destroy;
          Alcotest.test_case "detach spares foreign hooks" `Quick
            test_detach_spares_foreign_hooks;
        ] );
      ( "soak",
        [ Alcotest.test_case "supervised soak" `Quick test_supervised_soak ] );
    ]
