(* Regenerate the committed golden snapshot:
     dune exec test/golden/gen_golden.exe > test/golden/translation.expected
   Only legitimate when a change intentionally alters simulated
   results; the translation fast path must keep this file stable. *)
let () = print_string (Covirt_harness.Golden.capture ())
