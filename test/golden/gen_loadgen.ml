(* Regenerate the committed dense-churn snapshot:
     dune exec test/golden/gen_loadgen.exe > test/golden/loadgen.expected
   The capture is the default load-generator spec (64 enclaves, 512
   Zipf ops, seed 9) run single-domain; only legitimate when a change
   intentionally alters control-path behaviour under churn. *)
let () =
  print_string
    Covirt_loadgen.Loadgen.(transcript (run ~domains:1 (spec ())))
