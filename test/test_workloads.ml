(* Workload tests: real-arithmetic correctness and cost-model sanity of
   the six benchmark kernels. *)

open Covirt_workloads
open Covirt_test_util

let mib = Covirt_sim.Units.mib

let stack ?(config = Covirt.Config.native) () =
  Helpers.boot_stack ~config
    ~mem:[ (0, 768 * mib); (1, 512 * mib) ]
    ()

let single_ctx s = [ Helpers.ctx s 1 ]

let test_exec_alloc_and_shard () =
  let s = stack () in
  let ctx = Helpers.ctx s 1 in
  (match Exec.alloc ctx ~bytes:(8 * mib) () with
  | Ok buffer ->
      Alcotest.(check int) "nominal" (8 * mib) buffer.Exec.nominal_bytes;
      Alcotest.(check bool) "backing capped" true
        (Array.length buffer.Exec.data <= Exec.default_backing_cap)
  | Error e -> Alcotest.fail e);
  Alcotest.(check (pair int int)) "shard 0" (0, 3) (Exec.shard ~elems:10 ~ways:3 ~index:0);
  Alcotest.(check (pair int int)) "last shard takes slack" (6, 4)
    (Exec.shard ~elems:10 ~ways:3 ~index:2)

let prop_shards_partition =
  Helpers.qtest "shards partition the range"
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 1 16))
    (fun (elems, ways) ->
      let shards = List.init ways (fun i -> Exec.shard ~elems ~ways ~index:i) in
      let total = List.fold_left (fun acc (_, len) -> acc + len) 0 shards in
      let contiguous =
        let rec check expected = function
          | [] -> true
          | (off, len) :: rest -> off = expected && check (off + len) rest
        in
        check 0 shards
      in
      total = elems && contiguous)

let test_stream_correctness () =
  let s = stack () in
  match Stream.run (single_ctx s) ~elems:100_000 ~iters:2 () with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "rates positive" true
        (r.Stream.copy_mb_s > 0.0 && r.Stream.scale_mb_s > 0.0
        && r.Stream.add_mb_s > 0.0 && r.Stream.triad_mb_s > 0.0);
      (* after the kernel sequence a[i] = b + 3c with b=3c0... the
         checksum is finite and deterministic *)
      Alcotest.(check bool) "checksum finite" true
        (Float.is_finite r.Stream.checksum);
      Alcotest.(check bool) "checksum nonzero" true (r.Stream.checksum > 0.0)

let test_stream_deterministic () =
  let run () =
    let s = stack () in
    match Stream.run (single_ctx s) ~elems:100_000 ~iters:2 () with
    | Ok r -> (r.Stream.triad_mb_s, r.Stream.checksum)
    | Error e -> Alcotest.fail e
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical reruns" true (a = b)

let test_gups_verifies () =
  let s = stack () in
  match Random_access.run (single_ctx s) ~log2_table:20 () with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check int) "verify clean" 0 r.Random_access.verify_errors;
      Alcotest.(check bool) "gups positive" true (r.Random_access.gups > 0.0);
      Alcotest.(check int) "updates 4x table" (4 * (1 lsl 20))
        r.Random_access.updates

let test_selfish_profile () =
  let s = stack () in
  let ctx = Helpers.ctx s 1 in
  let r = Selfish.run ctx ~duration_s:1.0 () in
  (* 10 Hz tick for 1s -> ~10 timer detours plus rare background *)
  let timer_detours =
    List.length
      (List.filter (fun d -> d.Selfish.cause = "timer") r.Selfish.detours)
  in
  Alcotest.(check bool) "about 10 ticks" true
    (timer_detours >= 9 && timer_detours <= 11);
  Alcotest.(check bool) "noise fraction tiny" true (r.Selfish.noise_fraction < 0.001);
  Alcotest.(check int) "histogram total matches" (List.length r.Selfish.detours)
    (Covirt_sim.Histogram.count r.Selfish.histogram)

let test_selfish_threshold_filters () =
  let s = stack () in
  let ctx = Helpers.ctx s 1 in
  let all = Selfish.run ctx ~duration_s:1.0 ~threshold_cycles:100 () in
  let s2 = stack () in
  let ctx2 = Helpers.ctx s2 1 in
  let strict = Selfish.run ctx2 ~duration_s:1.0 ~threshold_cycles:1_000_000 () in
  Alcotest.(check bool) "strict threshold filters" true
    (List.length strict.Selfish.detours < List.length all.Selfish.detours)

let test_hpcg_converges () =
  let s = stack () in
  match Hpcg.run (single_ctx s) ~real_dim:12 ~iterations:40 () with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "residual dropped" true (r.Hpcg.final_residual < 0.5);
      Alcotest.(check int) "all iterations ran" 40 r.Hpcg.iterations;
      Alcotest.(check bool) "gflops positive" true (r.Hpcg.gflops > 0.0)

let test_minife_solves () =
  let s = stack () in
  match
    Minife.run (single_ctx s) ~nominal_dim:64 ~real_dim:10 ~iterations:40 ()
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "residual dropped" true (r.Minife.final_residual < 0.5);
      Alcotest.(check bool) "assembly timed" true (r.Minife.assembly_seconds > 0.0);
      Alcotest.(check bool) "total >= assembly" true
        (r.Minife.total_seconds >= r.Minife.assembly_seconds)

let test_lammps_all_benches_stable () =
  List.iter
    (fun bench ->
      let s = stack () in
      match
        Lammps.run (single_ctx s) ~bench ~real_atoms:256 ~steps:30 ()
      with
      | Error e -> Alcotest.fail e
      | Ok r ->
          Alcotest.(check bool)
            (Lammps.bench_name bench ^ " stable")
            true r.Lammps.stable;
          Alcotest.(check bool) "ke finite" true
            (Float.is_finite r.Lammps.final_kinetic_energy);
          Alcotest.(check bool) "loop time positive" true (r.Lammps.loop_seconds > 0.0))
    Lammps.all_benches

let test_lammps_chute_detects_gravity () =
  (* chute atoms fall: kinetic energy grows from the pour *)
  let s = stack () in
  match Lammps.run (single_ctx s) ~bench:Lammps.Chute ~real_atoms:256 ~steps:30 () with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "dynamics alive" true
        (r.Lammps.final_kinetic_energy > 0.0)

let test_multicore_faster () =
  (* the same nominal problem on 2 cores finishes in less simulated
     time than on 1 *)
  let time ncores =
    let s = stack () in
    let ctxs =
      List.filteri (fun i _ -> i < ncores)
        (List.map (Helpers.ctx s) [ 1; 2 ])
    in
    match Hpcg.run ctxs ~real_dim:10 ~iterations:10 () with
    | Ok r -> r.Hpcg.gflops
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "2 cores beat 1" true (time 2 > time 1)

let test_ept_protection_slows_gups () =
  let gups config =
    let s = stack ~config () in
    match Random_access.run (single_ctx s) ~log2_table:25 () with
    | Ok r -> r.Random_access.gups
    | Error e -> Alcotest.fail e
  in
  let native = gups Covirt.Config.native in
  let mem = gups Covirt.Config.mem in
  let overhead = (native -. mem) /. native in
  Alcotest.(check bool) "visible but small (0.5%..4%)" true
    (overhead > 0.005 && overhead < 0.04)

let both_ctx s = [ Helpers.ctx s 1; Helpers.ctx s 2 ]

let test_stream_multicore () =
  let s = stack () in
  match Stream.run (both_ctx s) ~elems:100_000 ~iters:2 () with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "rates positive" true (r.Stream.triad_mb_s > 0.0);
      (* two cores move the same bytes in less simulated time *)
      let s1 = stack () in
      (match Stream.run [ Helpers.ctx s1 1 ] ~elems:100_000 ~iters:2 () with
      | Ok solo ->
          Alcotest.(check bool) "parallel >= solo" true
            (r.Stream.triad_mb_s >= solo.Stream.triad_mb_s)
      | Error e -> Alcotest.fail e)

let test_gups_multicore_splits_updates () =
  let s = stack () in
  match Random_access.run (both_ctx s) ~log2_table:20 () with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check int) "verify clean" 0 r.Random_access.verify_errors;
      Alcotest.(check int) "nominal updates unchanged" (4 * (1 lsl 20))
        r.Random_access.updates

let test_minife_multicore () =
  let s = stack () in
  match
    Minife.run (both_ctx s) ~nominal_dim:64 ~real_dim:8 ~iterations:20 ()
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "converging" true (r.Minife.final_residual < 1.0)

let test_lammps_multicore_stable () =
  let s = stack () in
  match
    Lammps.run (both_ctx s) ~bench:Lammps.Lj ~real_atoms:256 ~steps:20 ()
  with
  | Error e -> Alcotest.fail e
  | Ok r -> Alcotest.(check bool) "stable" true r.Lammps.stable

let test_alloc_failure_path () =
  let s = stack () in
  let ctx = Helpers.ctx s 1 in
  Alcotest.(check bool) "oversized alloc fails" true
    (Result.is_error (Exec.alloc ctx ~bytes:(1 lsl 50) ()))

let test_hpcg_mg_beats_plain_iteration_count () =
  (* the MG preconditioner's reason to exist: fewer iterations to a
     given residual than the iteration count alone would suggest *)
  let s = stack () in
  match Hpcg.run (single_ctx s) ~real_dim:16 ~iterations:25 () with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "preconditioned CG converges fast" true
        (r.Hpcg.final_residual < 0.05)

let () =
  Alcotest.run "workloads"
    [
      ( "exec",
        [
          Alcotest.test_case "alloc and shard" `Quick test_exec_alloc_and_shard;
          prop_shards_partition;
        ] );
      ( "stream",
        [
          Alcotest.test_case "correctness" `Quick test_stream_correctness;
          Alcotest.test_case "deterministic" `Quick test_stream_deterministic;
        ] );
      ("gups", [ Alcotest.test_case "verifies" `Quick test_gups_verifies ]);
      ( "selfish",
        [
          Alcotest.test_case "profile" `Quick test_selfish_profile;
          Alcotest.test_case "threshold" `Quick test_selfish_threshold_filters;
        ] );
      ( "hpcg",
        [
          Alcotest.test_case "converges" `Quick test_hpcg_converges;
          Alcotest.test_case "multicore faster" `Quick test_multicore_faster;
        ] );
      ("minife", [ Alcotest.test_case "solves" `Quick test_minife_solves ]);
      ( "lammps",
        [
          Alcotest.test_case "all stable" `Quick test_lammps_all_benches_stable;
          Alcotest.test_case "chute gravity" `Quick test_lammps_chute_detects_gravity;
        ] );
      ( "overheads",
        [ Alcotest.test_case "EPT slows GUPS" `Quick test_ept_protection_slows_gups ]
      );
      ( "multicore",
        [
          Alcotest.test_case "stream" `Quick test_stream_multicore;
          Alcotest.test_case "gups" `Quick test_gups_multicore_splits_updates;
          Alcotest.test_case "minife" `Quick test_minife_multicore;
          Alcotest.test_case "lammps" `Quick test_lammps_multicore_stable;
          Alcotest.test_case "alloc failure" `Quick test_alloc_failure_path;
          Alcotest.test_case "hpcg MG convergence" `Quick
            test_hpcg_mg_beats_plain_iteration_count;
        ] );
    ]
